// Quickstart: synchronize 7 simulated clocks, 2 of them Byzantine.
//
// Demonstrates the core public API in ~40 lines: pick hardware constants,
// derive feasible algorithm parameters (Section 5.2), run the Welch-Lynch
// maintenance algorithm against the worst-case splitter adversary, and
// check the Theorem 16 guarantee.

#include <iostream>

#include "analysis/experiment.h"
#include "util/table.h"

using namespace wlsync;

int main() {
  // Hardware constants (assumptions A1/A3): drift 1e-5, delays 10ms +- 1ms.
  // Designer's choice: resynchronize every P = 10 s.  make_params picks the
  // smallest feasible initial closeness beta per the Section 5.2 algebra.
  const core::Params params =
      core::make_params(/*n=*/7, /*f=*/2, /*rho=*/1e-5, /*delta=*/0.01,
                        /*eps=*/1e-3, /*P=*/10.0);
  const core::Derived derived = core::derive(params);

  std::cout << "Welch-Lynch clock synchronization, n=7, f=2\n"
            << "  beta  (initial closeness)  = " << util::fmt(params.beta) << " s\n"
            << "  gamma (agreement bound)    = " << util::fmt(derived.gamma) << " s\n"
            << "  |ADJ| bound per round      = " << util::fmt(derived.adj_bound)
            << " s\n\n";

  analysis::RunSpec spec;
  spec.params = params;
  spec.fault = analysis::FaultKind::kTwoFaced;  // worst-case Byzantine pair
  spec.fault_count = 2;
  spec.rounds = 20;
  spec.seed = 2024;

  const analysis::RunResult result = analysis::run_experiment(spec);

  std::cout << "ran " << result.completed_rounds << " rounds, "
            << result.messages << " messages\n"
            << "  initial spread of clock starts: " << util::fmt(result.tmax0 - result.tmin0)
            << " s\n"
            << "  worst steady skew (measured gamma): "
            << util::fmt(result.gamma_measured) << " s\n"
            << "  largest adjustment applied:         "
            << util::fmt(result.max_abs_adj) << " s\n"
            << "  validity envelope (Theorem 19):     "
            << (result.validity.holds ? "holds" : "VIOLATED") << "\n\n";

  const bool ok = !result.diverged &&
                  result.gamma_measured <= derived.gamma &&
                  result.validity.holds;
  std::cout << (ok ? "All guarantees hold despite 2 Byzantine processes."
                   : "Something is wrong — guarantees violated!")
            << "\n";
  return ok ? 0 : 1;
}
