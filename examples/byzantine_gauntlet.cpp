// Byzantine gauntlet: the same 10-process system survives every adversary
// class the model allows (assumption A2), on every delay regime the
// network can legally produce (assumption A3).
//
// For contrast, the final rows run the no-fault-tolerance ablation (plain
// averaging without reduce()) against a single lying clock: agreement may
// survive — the honest processes get dragged *together* — but validity
// (clock time tracking real time, Theorem 19) is destroyed.  That failure
// is exactly what the fault-tolerant averaging function prevents.

#include <iostream>

#include "analysis/parallel_runner.h"
#include "util/table.h"

using namespace wlsync;

namespace {

const char* fault_label(analysis::FaultKind kind) {
  switch (kind) {
    case analysis::FaultKind::kNone: return "none";
    case analysis::FaultKind::kSilent: return "silent (crashed)";
    case analysis::FaultKind::kSpam: return "spammer";
    case analysis::FaultKind::kTwoFaced: return "two-faced splitter";
    case analysis::FaultKind::kLiar: return "lying clock";
  }
  return "?";
}

}  // namespace

int main() {
  const core::Params params =
      core::make_params(/*n=*/10, /*f=*/3, 1e-5, 0.01, 1e-3, 10.0);
  const double gamma = core::derive(params).gamma;

  std::cout << "Byzantine gauntlet: n=10, f=3, gamma bound = "
            << util::fmt(gamma) << " s\n\n";

  // Every (adversary, delay-regime) cell is an independent trial; the whole
  // gauntlet runs as one ParallelRunner sweep.  The cells vector is built
  // in the same loop as the specs, so row labels cannot drift from the
  // trial order.
  std::vector<std::pair<analysis::FaultKind, analysis::DelayKind>> cells;
  std::vector<analysis::RunSpec> specs;
  for (auto fault :
       {analysis::FaultKind::kSilent, analysis::FaultKind::kSpam,
        analysis::FaultKind::kTwoFaced, analysis::FaultKind::kLiar}) {
    for (auto delay : {analysis::DelayKind::kUniform,
                       analysis::DelayKind::kSplit}) {
      analysis::RunSpec spec;
      spec.params = params;
      spec.fault = fault;
      spec.fault_count = 3;
      spec.delay = delay;
      spec.drift = analysis::DriftKind::kRandomWalk;
      spec.rounds = 16;
      spec.seed = 77;
      specs.push_back(spec);
      cells.emplace_back(fault, delay);
    }
  }
  const std::vector<analysis::RunResult> results =
      analysis::run_experiments(specs);

  util::Table table({"adversary (x3)", "delay regime", "steady skew",
                     "validity", "verdict"});
  bool all_ok = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto [fault, delay] = cells[i];
    const analysis::RunResult& result = results[i];
    const bool ok = !result.diverged && result.gamma_measured <= gamma &&
                    result.validity.holds;
    all_ok = all_ok && ok;
    table.add_row({fault_label(fault),
                   delay == analysis::DelayKind::kUniform ? "uniform"
                                                          : "adversarial",
                   util::fmt(result.gamma_measured),
                   result.validity.holds ? "holds" : "violated",
                   ok ? "survived" : "FAILED"});
  }

  // The ablation: plain mean + one lying clock.
  analysis::RunSpec ablation;
  ablation.params = core::make_params(4, 1, 1e-5, 0.01, 1e-3, 10.0);
  ablation.algo = analysis::Algo::kPlainMean;
  ablation.fault = analysis::FaultKind::kLiar;
  ablation.fault_count = 1;
  ablation.rounds = 16;
  ablation.seed = 77;
  const analysis::RunResult broken = analysis::run_experiment(ablation);
  table.add_row({"lying clock", "uniform (no reduce!)",
                 util::fmt(broken.gamma_measured),
                 broken.validity.holds ? "holds" : "violated",
                 broken.validity.holds ? "UNEXPECTED" : "destroyed, as expected"});
  all_ok = all_ok && !broken.validity.holds;

  table.print(std::cout);
  std::cout << "\n"
            << (all_ok ? "The fault-tolerant average survives the gauntlet; "
                         "the unguarded average does not."
                       : "Unexpected result — investigate!")
            << "\n";
  return all_ok ? 0 : 1;
}
