// Gradient frontier: how far apart can two honest clocks drift as a
// function of how far apart they sit in the exchange graph?
//
// The paper's Theorem 4 bounds the skew between ANY two honest clocks on a
// full mesh, where every pair is one hop apart.  On a sparse graph the
// gradient-clock-sync literature (Bund/Lenzen/Rosenbaum, PAPERS.md) asks
// the sharper question: skew as a function of hop distance d(i, j).  This
// example measures that frontier on a ring of cliques — first fault-free,
// then with two-faced adversaries placed ON the inter-clique joints (the
// structurally critical positions PlacementPolicy::kArticulation selects),
// lying per-neighbor.  The attack widens the frontier at every distance
// while the local quorums keep the system convergent.

#include <iostream>

#include "analysis/gradient.h"
#include "analysis/parallel_runner.h"
#include "proc/placement.h"
#include "util/table.h"

using namespace wlsync;

int main() {
  // 6 cliques of 8: diameter 7, local budget (8 - 1) / 3 = 2 faults.
  constexpr std::int32_t kN = 48;
  constexpr std::int32_t kClique = 8;

  analysis::RunSpec base;
  base.params = core::make_params(kN, /*f=*/2, 1e-5, 0.01, 1e-3, 10.0);
  base.topology.kind = net::TopologyKind::kRingOfCliques;
  base.topology.clique_size = kClique;
  base.rounds = 12;
  base.seed = 424242;
  base.measure_gradient = true;

  analysis::RunSpec attacked = base;
  attacked.fault = analysis::FaultKind::kTwoFaced;
  attacked.fault_count = 2;
  attacked.placement = proc::PlacementKind::kArticulation;

  std::cout << "Gradient frontier on a ring of " << kN / kClique
            << " cliques of " << kClique << " (diameter "
            << net::build_topology(base.topology, kN).diameter() << ")\n"
            << "fault-free vs. 2 two-faced adversaries at inter-clique "
               "joints (neighbor-scoped, per-victim faces)\n\n";

  const std::vector<analysis::RunResult> results =
      analysis::run_experiments({base, attacked});
  const analysis::GradientSummary& clean = results[0].gradient;
  const analysis::GradientSummary& split = results[1].gradient;

  util::Table table({"distance d", "pairs", "clean max skew", "attacked max skew",
                     "attacked frontier"});
  for (std::size_t b = 0; b < split.distances.size(); ++b) {
    // Bucket axes can differ (the attacked run has fewer honest pairs);
    // look the clean value up by distance.
    double clean_max = 0.0;
    for (std::size_t c = 0; c < clean.distances.size(); ++c) {
      if (clean.distances[c] == split.distances[b]) clean_max = clean.max_skew[c];
    }
    table.add_row({std::to_string(split.distances[b]),
                   std::to_string(split.pair_count[b]), util::fmt_sci(clean_max),
                   util::fmt_sci(split.max_skew[b]),
                   util::fmt_sci(split.frontier[b])});
  }
  table.print(std::cout);

  std::cout << "\nslope of max skew vs distance:  clean "
            << util::fmt_sci(clean.slope) << " s/hop,  attacked "
            << util::fmt_sci(split.slope) << " s/hop\n"
            << "far-pair skew (global):         clean "
            << util::fmt_sci(clean.far_skew()) << " s,  attacked "
            << util::fmt_sci(split.far_skew()) << " s\n"
            << (results[1].diverged
                    ? "\nattacked run DIVERGED (should not happen)\n"
                    : "\nboth runs stay convergent: the local quorums clip "
                      "the joint-placed liars\n");

  // Long-window variant: the streaming observer (analysis/observe.h)
  // measures the identical curves event-driven during the run, truncating
  // clock/CORR history behind its frontier — 4x the window in bounded
  // memory, the mode that scales to the n = 512 drift-regime study.
  analysis::RunSpec longrun = attacked;
  longrun.rounds = 4 * attacked.rounds;
  longrun.observe = true;
  longrun.retain_history = false;
  const analysis::RunResult streamed = analysis::run_experiment(longrun);
  std::cout << "\nstreaming bounded-memory run, " << longrun.rounds
            << " rounds: far skew " << util::fmt_sci(streamed.gradient.far_skew())
            << " s, slope " << util::fmt_sci(streamed.gradient.slope)
            << " s/hop\n  peak retained history "
            << streamed.observe.peak_history_bytes / 1024 << " KiB ("
            << streamed.observe.truncated_entries
            << " entries truncated behind the observation frontier)\n";
  return results[1].diverged || streamed.diverged ? 1 : 0;
}
