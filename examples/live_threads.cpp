// Live threads (Section 9.3): the exact same WelchLynchProcess object that
// runs in the deterministic simulator here drives four real OS threads with
// drift-scaled steady_clock physical clocks and a latency-injecting router
// — the conditions of the 1986 Bell Labs implementation, in-process.
//
// Runs for ~3 wall-clock seconds.

#include <iostream>

#include "runtime/runtime.h"
#include "util/table.h"

using namespace wlsync;

int main() {
  rt::Cluster::Config config;
  config.params.n = 4;
  config.params.f = 1;
  config.params.rho = 5e-3;     // amplified drift: ~5 ms/s — visible live
  config.params.delta = 8e-3;   // 8 ms router latency
  config.params.eps = 4e-3;     // +-4 ms uncertainty (incl. OS jitter)
  config.params.P = 0.25;       // resynchronize every 250 ms
  config.params.beta = core::beta_for_round_length(
                           config.params.P, config.params.rho,
                           config.params.delta, config.params.eps) *
                       1.05;
  config.seed = 31337;

  const auto problems = core::validate(config.params);
  if (!problems.empty()) {
    for (const auto& problem : problems) std::cerr << problem << "\n";
    return 1;
  }
  const core::Derived derived = core::derive(config.params);

  std::cout << "Live thread cluster: 4 nodes, drift +-0.5%, delay 8ms +- 4ms, "
               "round every 250 ms\n"
            << "gamma bound = " << util::fmt(derived.gamma * 1e3) << " ms\n"
            << "running ~3 s of wall-clock time...\n\n";

  double synced = 0.0;
  {
    rt::Cluster cluster(config);
    synced = cluster.run_and_measure(/*duration=*/3.0, /*warmup=*/0.8,
                                     /*sample_every=*/0.02);
  }

  // Control: same drift, but the first resynchronization is scheduled far
  // beyond the run, so the clocks just drift apart.
  rt::Cluster::Config control = config;
  control.params.P = 3600.0;
  control.params.beta = core::beta_for_round_length(
                            control.params.P, control.params.rho,
                            control.params.delta, control.params.eps) *
                        1.05;
  double unsynced = 0.0;
  {
    rt::Cluster cluster(control);
    unsynced = cluster.run_and_measure(1.5, 1.2, 0.05);
  }

  util::Table table({"configuration", "worst observed skew"});
  table.add_row({"synchronized (P = 250 ms)", util::fmt(synced * 1e3, 3) + " ms"});
  table.add_row({"unsynchronized (control)", util::fmt(unsynced * 1e3, 3) + " ms"});
  table.print(std::cout);

  const bool ok = synced < 4.0 * derived.gamma && unsynced > synced;
  std::cout << "\n"
            << (ok ? "Real threads, real time, same algorithm object: "
                     "synchronized."
                   : "Live run out of spec (heavy machine load can cause "
                     "this; re-run).")
            << "\n";
  return ok ? 0 : 1;
}
