// Cold start (Section 9.2): seven machines boot with clocks up to five
// seconds apart — no initial synchronization at all (A4 does not hold).
// The start-up algorithm exchanges clock values and READY messages, halving
// the disagreement every round (Lemma 20) down to ~4 eps, then hands off to
// the Section 4.2 maintenance algorithm on the T0 + iP grid.

#include <iostream>

#include "analysis/experiment.h"
#include "util/table.h"

using namespace wlsync;

int main() {
  const core::Params params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);

  analysis::StartupSpec spec;
  spec.params = params;
  spec.rounds = 12;
  spec.handoff = true;
  spec.initial_clock_spread = 5.0;  // clocks begin up to 5 s apart!
  spec.fault = analysis::FaultKind::kSilent;
  spec.fault_count = 2;  // and two machines never come up
  spec.seed = 4;

  std::cout << "Cold-start demo: 7 machines, clocks up to 5 s apart, 2 dead\n"
            << "Lemma 20: B(i+1) <= B(i)/2 + "
            << util::fmt(core::startup_round_slack(params.rho, params.delta,
                                                   params.eps))
            << ", limit ~ 4 eps = " << util::fmt(4 * params.eps) << "\n\n";

  const analysis::StartupResult result = analysis::run_startup(spec);

  util::Table table({"startup round", "clock disagreement B^i"});
  for (std::size_t i = 0; i < result.b_series.size(); ++i) {
    table.add_row({std::to_string(i), util::fmt_sci(result.b_series[i])});
  }
  table.print(std::cout);

  std::cout << "\nhandoff to maintenance: "
            << (result.handoff_done ? "completed" : "FAILED") << "\n";
  if (result.handoff_done) {
    std::cout << "steady skew under maintenance afterwards: "
              << util::fmt_sci(result.post_handoff_skew) << " s (gamma = "
              << util::fmt_sci(core::derive(params).gamma) << " s)\n";
  }
  const bool ok = result.handoff_done &&
                  result.final_b < spec.initial_clock_spread / 100 &&
                  result.post_handoff_skew <= core::derive(params).gamma;
  std::cout << "\n"
            << (ok ? "From 5 seconds apart to a few milliseconds, through "
                     "Byzantine-tolerant averaging alone."
                   : "Start-up failed to establish synchronization!")
            << "\n";
  return ok ? 0 : 1;
}
