// Crash and rejoin (Section 9.1): process 0 runs normally, dies at t=25s,
// is repaired at t=95s, observes one full round to orient itself, applies
// the ordinary fault-tolerant average to its (now arbitrary) clock, and
// rejoins — within beta of everyone else at the next round label.

#include <iostream>

#include "analysis/experiment.h"
#include "util/table.h"

using namespace wlsync;

int main() {
  const core::Params params = core::make_params(4, 1, 1e-5, 0.01, 1e-3, 10.0);

  analysis::ReintegrationSpec spec;
  spec.params = params;
  spec.crash_at = 25.0;
  spec.wake_at = 95.0;
  spec.rounds = 20;
  spec.seed = 9;

  std::cout << "Crash-and-rejoin demo (n=4, f=1, P=10s)\n\n"
            << "t=0      all four processes synchronized, rounds every 10 s\n"
            << "t=25s    process 0 crashes (counts toward the f=1 budget;\n"
            << "         the other three keep synchronizing unfazed)\n"
            << "t=95s    process 0 is repaired with an arbitrary clock\n"
            << "         - it listens for T^i round messages\n"
            << "         - the first round confirmed by f+1 senders orients it\n"
            << "         - it collects the *next* round completely, then\n"
            << "           applies ADJ = T + delta - mid(reduce(ARR))\n\n";

  const analysis::ReintegrationResult result = analysis::run_reintegration(spec);

  if (!result.rejoined) {
    std::cout << "process 0 failed to rejoin — unexpected!\n";
    return 1;
  }
  util::Table table({"event", "value"});
  table.add_row({"rejoined at (real time)", util::fmt(result.join_time) + " s"});
  table.add_row({"first full round index", std::to_string(result.join_round)});
  table.add_row({"begin spread incl. joiner",
                 util::fmt(result.spread_with_joiner) + " s"});
  table.add_row({"beta (the Section 9.1 claim)", util::fmt(result.beta) + " s"});
  table.add_row({"steady skew afterwards", util::fmt(result.skew_after) + " s"});
  table.add_row({"gamma bound", util::fmt(result.gamma_bound) + " s"});
  table.print(std::cout);

  const bool ok = result.spread_with_joiner <= result.beta &&
                  result.skew_after <= result.gamma_bound;
  std::cout << "\n"
            << (ok ? "Process 0 is back within beta and indistinguishable "
                     "from the others."
                   : "Reintegration guarantee violated!")
            << "\n";
  return ok ? 0 : 1;
}
