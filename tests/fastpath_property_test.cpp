// Randomized property pin for the widened fast path (ISSUE 8): for ANY
// spec drawn from the supported axes — topology, delay model, drift
// regime, stagger, fault roster/placement, initial spread — kAuto must be
// results_identical to the pure event engine, whether it engaged the fast
// path, bailed mid-run and re-armed, fell back to a fault-isolating
// region, or refused outright.  The draw is seeded, so every trial is
// reproducible; coverage tallies assert the distribution actually
// exercises the interesting dispatch outcomes (plain engagement,
// staggered engagement, region engagement, mid-run re-arm, refusal)
// rather than sampling around them.  A second kAuto run of each trial
// pins determinism of the dispatch itself: identical engagement,
// exchange and re-arm counts, not just identical physics.  The exact-
// count pins at the bottom freeze the accounting for four canonical
// specs so a dispatcher change that silently shifts WHERE the fast path
// hands off — while staying bitwise-correct — still trips a test.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "analysis/parallel_runner.h"

namespace wlsync::analysis {
namespace {

RunResult run_engine(RunSpec spec, EngineMode engine) {
  spec.engine = engine;
  return run_experiment(spec);
}

/// Failure breadcrumb: enough of the drawn spec to reconstruct the trial.
std::string describe(const RunSpec& spec, int trial) {
  std::ostringstream out;
  out << "trial " << trial << ": n=" << spec.params.n
      << " topo=" << net::topology_name(spec.topology.kind)
      << " delay=" << static_cast<int>(spec.delay)
      << " drift=" << static_cast<int>(spec.drift)
      << " stagger=" << spec.stagger
      << " fault=" << static_cast<int>(spec.fault) << "x" << spec.fault_count
      << " placement=" << static_cast<int>(spec.placement)
      << " spread=" << spec.initial_spread << " seed=" << spec.seed;
  return out.str();
}

/// One spec drawn from the axes the dispatcher routes on.  Faults only
/// land on sparse unstaggered topologies (the eligible region); the full
/// mesh keeps a fault arm anyway so refusals stay in the sample.
RunSpec draw_spec(std::mt19937& rng) {
  auto pick = [&rng](std::int32_t lo, std::int32_t hi) {
    return std::uniform_int_distribution<std::int32_t>(lo, hi)(rng);
  };

  RunSpec spec;
  const std::int32_t n = std::array<std::int32_t, 4>{10, 13, 16, 24}[
      static_cast<std::size_t>(pick(0, 3))];
  spec.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = pick(5, 8);
  spec.seed = static_cast<std::uint64_t>(pick(1, 4000));

  switch (pick(0, 2)) {
    case 0:
      break;  // full mesh
    case 1:
      spec.topology.kind = net::TopologyKind::kKRegular;
      spec.topology.degree = 6;
      break;
    default:
      spec.topology.kind = net::TopologyKind::kRingOfCliques;
      spec.topology.clique_size = 6;
      break;
  }

  const DelayKind delays[] = {DelayKind::kUniform, DelayKind::kFast,
                              DelayKind::kSlow, DelayKind::kSplit,
                              DelayKind::kPerLink};
  spec.delay = delays[pick(0, 4)];
  const DriftKind drifts[] = {DriftKind::kNone, DriftKind::kExtremal,
                              DriftKind::kPiecewise, DriftKind::kRandomWalk};
  spec.drift = drifts[pick(0, 3)];

  // One widening per draw: stagger, faults, or neither (never both — the
  // dispatcher refuses that combination and the fallback arm covers it).
  const std::int32_t widening = pick(0, 3);
  if (widening == 1) {
    spec.stagger = std::array<double, 2>{0.0005, 0.002}[
        static_cast<std::size_t>(pick(0, 1))];
  } else if (widening == 2) {
    const FaultKind kinds[] = {FaultKind::kSilent, FaultKind::kTwoFaced,
                               FaultKind::kSpam, FaultKind::kLiar};
    spec.fault = kinds[pick(0, 3)];
    spec.fault_count = pick(1, 2);
    const proc::PlacementKind placements[] = {proc::PlacementKind::kTrailing,
                                              proc::PlacementKind::kRandom,
                                              proc::PlacementKind::kBridge};
    spec.placement =
        spec.topology.kind == net::TopologyKind::kRingOfCliques
            ? placements[pick(0, 2)]
            : placements[pick(0, 1)];
  }

  // A wide initial spread violates round-0 phase separation, forcing a
  // transient bail and (once the event engine converges the round) a
  // re-arm at the next clean boundary.
  if (pick(0, 3) == 0) spec.initial_spread = 0.005;
  return spec;
}

TEST(FastpathProperty, RandomizedSpecsMatchEventEngineBitwise) {
  std::mt19937 rng(20260808u);
  int engaged = 0;
  int engaged_staggered = 0;
  int engaged_region = 0;
  int rearmed = 0;
  int refused = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const RunSpec spec = draw_spec(rng);
    const std::string what = describe(spec, trial);

    const RunResult event = run_engine(spec, EngineMode::kEvent);
    const RunResult autod = run_engine(spec, EngineMode::kAuto);
    EXPECT_FALSE(event.fastpath_engaged) << what;
    EXPECT_TRUE(results_identical(event, autod)) << what;

    // Dispatch determinism: the same spec takes the same path with the
    // same accounting, not merely the same physics.
    const RunResult again = run_engine(spec, EngineMode::kAuto);
    EXPECT_EQ(autod.fastpath_engaged, again.fastpath_engaged) << what;
    EXPECT_EQ(autod.fastpath_exchanges, again.fastpath_exchanges) << what;
    EXPECT_EQ(autod.fastpath_rearms, again.fastpath_rearms) << what;
    EXPECT_EQ(autod.fastpath_fast_count, again.fastpath_fast_count) << what;
    EXPECT_EQ(autod.fastpath_region_events, again.fastpath_region_events)
        << what;
    EXPECT_EQ(autod.fastpath_refusal, again.fastpath_refusal) << what;
    EXPECT_TRUE(results_identical(autod, again)) << what;

    if (autod.fastpath_engaged) {
      ++engaged;
      if (spec.stagger > 0.0) ++engaged_staggered;
      if (autod.fastpath_region_events > 0) ++engaged_region;
      if (autod.fastpath_rearms > 0) ++rearmed;
      // Forcing the engaged path explicitly must not change anything.
      const RunResult forced = run_engine(spec, EngineMode::kFastpath);
      EXPECT_TRUE(results_identical(event, forced)) << what;
      EXPECT_EQ(forced.fastpath_exchanges, autod.fastpath_exchanges) << what;
    } else if (!autod.fastpath_refusal.empty()) {
      ++refused;
    }
  }
  // The sample must hit every dispatch outcome the widened fast path owns;
  // a draw change that starves one of these arms weakens the whole pin.
  EXPECT_GE(engaged, 10);
  EXPECT_GE(engaged_staggered, 2);
  EXPECT_GE(engaged_region, 2);
  EXPECT_GE(rearmed, 1);
  EXPECT_GE(refused, 2);
}

// ------------------------------------------------- exact accounting pins ---
//
// Four canonical specs with their dispatch accounting frozen: exchanges
// advanced past the queue, re-arms after transient bails, fast-set size
// and merged-loop events for a region run.  These numbers are functions
// of the dispatcher's hand-off policy alone — a change that moves them
// while staying bitwise-correct (e.g. bailing one round earlier) must be
// a conscious edit here, not an invisible drift.

RunSpec pinned_base(std::int32_t n, std::int32_t f) {
  RunSpec spec;
  spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  spec.seed = 11;
  return spec;
}

TEST(FastpathProperty, ExactCountsPlainMesh) {
  // Clean full mesh: engages at the START stratum and never hands off —
  // every exchange boundary the horizon admits batches (the run's 6
  // measured rounds plus the horizon's trailing boundaries), zero re-arms.
  const RunResult r = run_engine(pinned_base(13, 4), EngineMode::kFastpath);
  EXPECT_TRUE(r.fastpath_engaged);
  EXPECT_EQ(r.fastpath_exchanges, 8);
  EXPECT_EQ(r.fastpath_rearms, 0);
  EXPECT_EQ(r.fastpath_fast_count, 13);
  EXPECT_EQ(r.fastpath_region_events, 0);
}

TEST(FastpathProperty, ExactCountsWideSpreadRearm) {
  // 5 ms initial spread: round 0 violates phase separation, the event
  // engine steps it, and the fast path re-arms exactly once for the rest.
  RunSpec spec = pinned_base(13, 4);
  spec.initial_spread = 0.005;
  spec.rounds = 8;
  const RunResult r = run_engine(spec, EngineMode::kFastpath);
  EXPECT_TRUE(r.fastpath_engaged);
  EXPECT_EQ(r.fastpath_rearms, 1);
  EXPECT_EQ(r.fastpath_exchanges, 9);
}

TEST(FastpathProperty, ExactCountsStaggered) {
  // Staggered mesh: the 2n-1 steady boundary batches the same exchange
  // count as the plain run — staggering moves instants, not hand-offs.
  RunSpec spec = pinned_base(10, 3);
  spec.stagger = 0.002;
  const RunResult r = run_engine(spec, EngineMode::kFastpath);
  EXPECT_TRUE(r.fastpath_engaged);
  EXPECT_EQ(r.fastpath_exchanges, 8);
  EXPECT_EQ(r.fastpath_rearms, 0);
}

TEST(FastpathProperty, ExactCountsRegion) {
  // Two trailing silent faults on a ring of cliques: the fast set is the
  // 17 honest processes outside the adversaries' closed neighborhood.
  // Region deliveries land in fast arenas as stale previous-window slots,
  // but the overlap guard's queue scan proves every such slot is
  // overwritten before any reduction reads it, so the run batches every
  // exchange with zero re-arms — the same shape as the plain mesh, plus
  // 326 region events replayed through the engine at their exact keys.
  // The frozen accounting a hand-off-policy or guard change would move.
  RunSpec spec = pinned_base(24, 7);
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 6;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  const RunResult r = run_engine(spec, EngineMode::kFastpath);
  EXPECT_TRUE(r.fastpath_engaged);
  EXPECT_EQ(r.fastpath_exchanges, 8);
  EXPECT_EQ(r.fastpath_rearms, 0);
  EXPECT_EQ(r.fastpath_fast_count, 17);
  EXPECT_EQ(r.fastpath_region_events, 326);
}

}  // namespace
}  // namespace wlsync::analysis
