// The streaming observation layer (analysis/observe.h): streaming ==
// post-hoc pins across algos x topologies x fault mixes, bounded-memory
// truncation (values identical, history shrunk), history-truncation unit
// tests on CorrLog and PhysicalClock, and observer counter cross-checks.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/observe.h"
#include "analysis/parallel_runner.h"
#include "clock/drift.h"
#include "clock/physical_clock.h"
#include "sim/corr_log.h"
#include "util/rng.h"

namespace wlsync::analysis {
namespace {

RunSpec base_spec(Algo algo, net::TopologyKind topo, FaultKind fault,
                  std::int32_t fault_count) {
  RunSpec spec;
  spec.params = core::make_params(16, 5, 1e-5, 0.01, 1e-3, 10.0);
  spec.algo = algo;
  spec.topology.kind = topo;
  spec.topology.clique_size = 8;
  spec.topology.degree = 6;
  spec.fault = fault;
  spec.fault_count = fault_count;
  spec.rounds = 8;
  spec.seed = 11;
  return spec;
}

std::string label(const RunSpec& spec) {
  return "algo=" + std::to_string(static_cast<int>(spec.algo)) +
         " topo=" + std::string(net::topology_name(spec.topology.kind)) +
         " fault=" + std::to_string(static_cast<int>(spec.fault)) +
         " gradient=" + std::to_string(spec.measure_gradient);
}

// ------------------------------------------------------------------------
// The headline pin: for runs that complete their configured rounds, the
// streaming engine lands on the identical steady-state window, so observe
// on/off (and bounded/retained) are results_identical — bitwise, not 1e-12.

TEST(Observer, StreamingMatchesPostHocAcrossConfigs) {
  std::vector<RunSpec> grid;
  for (const Algo algo : {Algo::kWelchLynch, Algo::kLM, Algo::kST, Algo::kMS}) {
    grid.push_back(base_spec(algo, net::TopologyKind::kFullMesh,
                             FaultKind::kTwoFaced, 2));
  }
  grid.push_back(base_spec(Algo::kWelchLynch, net::TopologyKind::kRingOfCliques,
                           FaultKind::kNone, 0));
  grid.push_back(base_spec(Algo::kWelchLynch, net::TopologyKind::kKRegular,
                           FaultKind::kSilent, 1));
  // Heterogeneous mixture + gradient measurement on a sparse graph.
  RunSpec mixed = base_spec(Algo::kWelchLynch, net::TopologyKind::kRingOfCliques,
                            FaultKind::kNone, 0);
  mixed.fault_mix = {{FaultKind::kSilent, 1}, {FaultKind::kTwoFaced, 1}};
  mixed.measure_gradient = true;
  grid.push_back(mixed);
  RunSpec gradient_mesh =
      base_spec(Algo::kLM, net::TopologyKind::kFullMesh, FaultKind::kNone, 0);
  gradient_mesh.measure_gradient = true;
  grid.push_back(gradient_mesh);

  for (const RunSpec& spec : grid) {
    const RunResult legacy = run_experiment(spec);
    // The bitwise pin holds when both engines anchor at the same round:
    // post-hoc uses last_complete_round / 2, streaming (rounds + 1) / 2.
    ASSERT_EQ((legacy.completed_rounds - 1) / 2, (spec.rounds + 1) / 2)
        << label(spec) << " completed=" << legacy.completed_rounds;
    RunSpec observed = spec;
    observed.observe = true;
    const RunResult streamed = run_experiment(observed);
    EXPECT_TRUE(results_identical(legacy, streamed)) << label(spec);
    observed.retain_history = false;
    const RunResult bounded = run_experiment(observed);
    EXPECT_TRUE(results_identical(streamed, bounded)) << label(spec);
    EXPECT_GT(bounded.observe.truncated_entries, 0u) << label(spec);
    EXPECT_LT(bounded.observe.peak_history_bytes,
              streamed.observe.peak_history_bytes)
        << label(spec);
  }
}

// Window-explicit pin: recompute the post-hoc pipeline on the exact window
// the observer reports and compare value-for-value (this holds even when a
// run would not complete all rounds).
TEST(Observer, StreamedSeriesMatchesExplicitPostHocOnSameWindow) {
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kRingOfCliques,
                           FaultKind::kTwoFaced, 2);
  spec.placement = proc::PlacementKind::kArticulation;
  spec.measure_gradient = true;
  spec.observe = true;  // retained: the post-hoc history stays available

  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_TRUE(result.observe.enabled);
  const double t0 = result.observe.t_steady;
  const double dt = spec.params.P / 25.0;

  const SkewSeries series = skew_series(experiment.simulator(), result.honest,
                                        t0, result.t_end, dt);
  const GradientSummary gradient = summarize_gradient(
      gradient_series(experiment.simulator(), result.honest,
                      experiment.topology(), t0, result.t_end, dt));
  EXPECT_TRUE(gradient_summaries_identical(result.gradient, gradient));
  EXPECT_EQ(result.gamma_measured, gradient.far_skew());
  EXPECT_EQ(series.max_skew, skew_series(experiment.simulator(), result.honest,
                                         t0, result.t_end, dt)
                                 .max_skew);

  const core::Derived d = core::derive(spec.params);
  const ValidityReport validity = check_validity(
      experiment.simulator(), result.honest, spec.params, result.tmin0,
      result.tmax0, result.tmax0 + d.window, result.t_end, spec.params.P / 10.0);
  EXPECT_EQ(result.validity.max_upper_violation, validity.max_upper_violation);
  EXPECT_EQ(result.validity.max_lower_violation, validity.max_lower_violation);
  EXPECT_EQ(result.validity.measured_hi_slope, validity.measured_hi_slope);
  EXPECT_EQ(result.validity.measured_lo_slope, validity.measured_lo_slope);
  EXPECT_EQ(result.final_skew,
            skew_at(experiment.simulator(), result.honest, result.t_end));
}

TEST(Observer, BoundedModeIsDeterministicAcrossEnginesAndSchedulers) {
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kKRegular,
                           FaultKind::kTwoFaced, 1);
  spec.measure_gradient = true;
  spec.observe = true;
  spec.retain_history = false;

  const RunResult reference = run_experiment(spec);
  const RunResult repeat = run_experiment(spec);
  EXPECT_TRUE(results_identical(reference, repeat));

  RunSpec scheduler = spec;
  scheduler.scheduler = engine::SchedulerKind::kCalendar;
  EXPECT_TRUE(results_identical(reference, run_experiment(scheduler)));

  RunSpec per_recipient = spec;
  per_recipient.batch_fanout = false;
  EXPECT_TRUE(results_identical(reference, run_experiment(per_recipient)));

  RunSpec legacy_ingest = spec;
  legacy_ingest.ingest = proc::IngestMode::kLegacy;
  EXPECT_TRUE(results_identical(reference, run_experiment(legacy_ingest)));
}

TEST(Observer, CountersCrossCheckAgainstSimulatorState) {
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kFullMesh,
                           FaultKind::kNone, 0);
  spec.observe = true;
  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_TRUE(result.observe.enabled);
  EXPECT_FALSE(result.observe.bounded);
  EXPECT_GT(result.observe.samples, 0u);
  EXPECT_GT(result.observe.round_marks, 0u);
  EXPECT_EQ(result.observe.nic_drops, 0u);
  EXPECT_EQ(result.observe.truncations, 0u);
  // Every CORR append in the run fires on_adjustment exactly once.
  std::size_t total_changes = 0;
  for (std::int32_t id = 0; id < spec.params.n; ++id) {
    total_changes += experiment.simulator().corr_log(id).changes();
  }
  EXPECT_EQ(result.observe.adjustments, total_changes);
  // Streaming skew extras stay close to the exact series statistics.
  EXPECT_GT(result.observe.skew_mean, 0.0);
  EXPECT_LE(result.observe.skew_mean, result.gamma_measured);
  EXPECT_GE(result.observe.skew_p99, 0.0);
}

TEST(Observer, NicDropCounterMatchesSummary) {
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kFullMesh,
                           FaultKind::kNone, 0);
  spec.delay = DelayKind::kSlow;
  spec.drift = DriftKind::kNone;
  spec.initial_spread = 0.0;
  spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/50e-6};
  spec.observe = true;
  const RunResult result = run_experiment(spec);
  EXPECT_GT(result.nic.dropped, 0u);
  EXPECT_EQ(result.observe.nic_drops, result.nic.dropped);
}

TEST(Observer, DegradedRunCollapsesWindowDeterministically) {
  // NIC starvation (service time ~ the collection window) empties whole
  // rounds: the run degrades, skew samples blow up (~1e300, exercising
  // the histogram's double-space clamp), and the anchor round may never
  // complete — the streaming window then collapses to the endpoint
  // sample, marked by t_steady == t_end.  The degraded regime must stay
  // deterministic in both retention modes.
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kFullMesh,
                           FaultKind::kNone, 0);
  spec.params = core::make_params(8, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 12;
  spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/1e-3};
  spec.observe = true;
  const RunResult streamed = run_experiment(spec);
  EXPECT_TRUE(streamed.diverged);
  EXPECT_LT(streamed.completed_rounds, spec.rounds);
  EXPECT_EQ(streamed.observe.t_steady, streamed.t_end);  // collapsed window
  EXPECT_TRUE(results_identical(streamed, run_experiment(spec)));
  spec.retain_history = false;
  EXPECT_TRUE(results_identical(streamed, run_experiment(spec)));
}

TEST(Observer, RetainHistoryWithoutObserveThrows) {
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kFullMesh,
                           FaultKind::kNone, 0);
  spec.retain_history = false;
  EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);
}

// ------------------------------------------------------------------------
// History-truncation primitives.

TEST(CorrLogTruncation, QueriesAtOrAfterFrontierAreUnchanged) {
  sim::CorrLog log(1.0);
  log.step(1.0, 2.0);
  log.ramp(2.0, -1.0, 0.5);
  log.step(4.0, 3.0);
  log.step(6.0, 5.0);

  const std::vector<double> probes = {2.2, 2.4, 2.6, 3.0, 4.0, 5.0, 6.0, 7.0};
  std::vector<double> before;
  for (const double t : probes) before.push_back(log.displayed_at(t));

  const std::size_t total = log.changes();
  const std::size_t removed = log.truncate_before(2.2);
  EXPECT_EQ(removed, 2u);  // the initial entry and the step at t=1
  EXPECT_EQ(log.trimmed(), 2u);
  EXPECT_EQ(log.changes(), total);  // total change count preserved
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(log.displayed_at(probes[i]), before[i]) << "t=" << probes[i];
  }
  EXPECT_EQ(log.current_target(), 5.0);
  // Appending after truncation keeps working.
  log.step(8.0, 9.0);
  EXPECT_EQ(log.current_target(), 9.0);
}

TEST(CorrLogTruncation, WalkerSurvivesTruncation) {
  sim::CorrLog log(0.0);
  for (int k = 1; k <= 20; ++k) {
    log.step(static_cast<double>(k), static_cast<double>(k));
  }
  sim::CorrLog::Walker walker(log);
  for (int k = 1; k <= 10; ++k) {
    const double t = static_cast<double>(k) + 0.5;
    EXPECT_EQ(walker.displayed_at(t), log.displayed_at(t));
  }
  (void)log.truncate_before(10.5);
  for (int k = 11; k <= 20; ++k) {
    const double t = static_cast<double>(k) + 0.5;
    EXPECT_EQ(walker.displayed_at(t), log.displayed_at(t));
  }
}

TEST(ClockTruncation, QueriesAtOrAfterFrontierAreUnchanged) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-3, 0.5, util::Rng(3)),
                           5.0, 1e-3);
  (void)clock.now(40.0);  // generate a long segment list
  const std::vector<double> probes = {10.0, 10.7, 13.3, 20.0, 39.9, 45.0};
  std::vector<double> now_before;
  std::vector<double> real_before;
  for (const double t : probes) {
    now_before.push_back(clock.now(t));
    real_before.push_back(clock.to_real(clock.now(t)));
  }
  const double offset = clock.offset();
  const std::size_t kept_before = clock.retained_breakpoints();
  const std::size_t removed = clock.truncate_before(10.0);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(clock.trimmed(), removed);
  EXPECT_EQ(clock.retained_breakpoints(), kept_before - removed);
  EXPECT_EQ(clock.offset(), offset);  // stored, not derived from breaks
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(clock.now(probes[i]), now_before[i]) << "t=" << probes[i];
    EXPECT_EQ(clock.to_real(clock.now(probes[i])), real_before[i]);
  }
  // Lazy extension still works past the generated horizon.
  EXPECT_GT(clock.now(80.0), clock.now(40.0));
}

TEST(ClockTruncation, WalkerSurvivesTruncation) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-3, 0.25, util::Rng(9)),
                           0.0, 1e-3);
  (void)clock.now(30.0);
  clk::PhysicalClock::Walker walker(clock);
  for (double t = 0.5; t < 15.0; t += 0.7) {
    EXPECT_EQ(walker.now(t), clock.now(t)) << "t=" << t;
  }
  (void)clock.truncate_before(15.0);
  for (double t = 15.1; t < 30.0; t += 0.7) {
    EXPECT_EQ(walker.now(t), clock.now(t)) << "t=" << t;
  }
}

TEST(SimulatorHistory, TruncateAndAccountingAgree) {
  RunSpec spec = base_spec(Algo::kWelchLynch, net::TopologyKind::kFullMesh,
                           FaultKind::kNone, 0);
  Experiment experiment(spec);
  sim::Simulator& sim = experiment.simulator();
  sim.run_until(40.0);
  const std::size_t entries = sim.history_entries();
  const std::size_t bytes = sim.history_bytes();
  EXPECT_GT(entries, 0u);
  EXPECT_GT(bytes, 0u);
  const double t = sim.current_time();
  const std::size_t removed = sim.truncate_history_before(t);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(sim.history_entries(), entries - removed);
  // Queries at/after the frontier still work (the run goes on).
  const double before = sim.local_time(0, t);
  sim.run_until(60.0);
  EXPECT_EQ(sim.local_time(0, t), before);
}

}  // namespace
}  // namespace wlsync::analysis
