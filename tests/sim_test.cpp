// Simulator engine: event ordering (execution property 4), timer semantics
// (Section 2.2), broadcast-to-self, delay validation, NIC overflow
// (Section 9.3), determinism.

#include <gtest/gtest.h>

#include <vector>

#include "clock/drift.h"
#include "proc/process.h"
#include "sim/event.h"
#include "sim/simulator.h"

namespace wlsync::sim {
namespace {

std::unique_ptr<clk::PhysicalClock> perfect_clock(double offset = 0.0) {
  return std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0), offset,
                                              1e-4);
}

TEST(EventQueue, OrdersByTimeTierSeq) {
  EventQueue queue;
  Event timer;
  timer.time = 1.0;
  timer.tier = 1;
  timer.msg = make_timer(1);
  Event msg;
  msg.time = 1.0;
  msg.tier = 0;
  msg.msg = make_app(0, 0, 0.0);
  Event later;
  later.time = 2.0;
  later.tier = 0;
  queue.push(timer);
  queue.push(later);
  queue.push(msg);
  // Property 4: the ordinary message at t=1 precedes the timer at t=1.
  EXPECT_EQ(queue.pop().msg.kind, Kind::kApp);
  EXPECT_EQ(queue.pop().msg.kind, Kind::kTimer);
  EXPECT_DOUBLE_EQ(queue.pop().time, 2.0);
}

TEST(EventQueue, FifoWithinSameTimeAndTier) {
  EventQueue queue;
  for (std::int32_t i = 0; i < 5; ++i) {
    Event event;
    event.time = 1.0;
    event.msg = make_app(i, 0, 0.0);
    queue.push(event);
  }
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(queue.pop().msg.from, i);
}

/// Records everything it receives.
class Recorder : public proc::Process {
 public:
  struct Item {
    Kind kind;
    std::int32_t from_or_tag;
    double at;
  };
  void on_start(proc::Context& ctx) override {
    items.push_back({Kind::kStart, -1, ctx.physical_time()});
  }
  void on_timer(proc::Context& ctx, std::int32_t tag) override {
    items.push_back({Kind::kTimer, tag, ctx.physical_time()});
  }
  void on_message(proc::Context& ctx, const sim::Message& m) override {
    items.push_back({Kind::kApp, m.from, ctx.physical_time()});
  }
  std::vector<Item> items;
};

/// On start: sets one timer and broadcasts.
class Starter : public proc::Process {
 public:
  void on_start(proc::Context& ctx) override {
    ctx.broadcast(/*tag=*/7, /*value=*/3.25, /*aux=*/0);
    ctx.set_timer(ctx.local_time() + 0.5, /*tag=*/42);
    ctx.set_timer(ctx.local_time() - 0.5, /*tag=*/43);  // in the past: dropped
  }
  void on_timer(proc::Context&, std::int32_t tag) override {
    fired.push_back(tag);
  }
  void on_message(proc::Context&, const sim::Message&) override {}
  std::vector<std::int32_t> fired;
};

TEST(Simulator, TimerAndBroadcastSemantics) {
  SimConfig config;
  config.delta = 0.01;
  config.eps = 0.001;
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Starter>(), perfect_clock(), 0.0, false, 0.0);
  sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, false, -1.0);
  sim.run_until(2.0);

  auto& starter = dynamic_cast<Starter&>(sim.process(0));
  ASSERT_EQ(starter.fired.size(), 1u);  // past timer (43) was never buffered
  EXPECT_EQ(starter.fired[0], 42);

  auto& recorder = dynamic_cast<Recorder&>(sim.process(1));
  ASSERT_EQ(recorder.items.size(), 1u);  // got the broadcast (not START)
  EXPECT_EQ(recorder.items[0].kind, Kind::kApp);
  EXPECT_EQ(recorder.items[0].from_or_tag, 0);
  EXPECT_GE(recorder.items[0].at, 0.009);  // >= delta - eps
  EXPECT_LE(recorder.items[0].at, 0.011);  // <= delta + eps
}

TEST(Simulator, BroadcastIncludesSelf) {
  SimConfig config;
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Starter>(), perfect_clock(), 0.0, false, 0.0);
  sim.run_until(1.0);
  EXPECT_EQ(sim.messages_sent(), 1u);  // one recipient: itself
}

TEST(Simulator, LogicalTimerHonorsCorr) {
  // A process whose CORR is +10 has local time = physical + 10; a timer for
  // local 10.5 must fire at real 0.5 on a perfect clock.
  class CorrTimer : public proc::Process {
   public:
    void on_start(proc::Context& ctx) override {
      ctx.add_corr(10.0);
      ctx.set_timer(10.5, 1);
    }
    void on_timer(proc::Context& ctx, std::int32_t) override {
      fired_at = ctx.physical_time();
    }
    void on_message(proc::Context&, const sim::Message&) override {}
    double fired_at = -1.0;
  };
  SimConfig config;
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<CorrTimer>(), perfect_clock(), 0.0, false,
                  0.0);
  sim.run_until(1.0);
  EXPECT_NEAR(dynamic_cast<CorrTimer&>(sim.process(0)).fired_at, 0.5, 1e-12);
}

TEST(Simulator, LocalTimeUsesCorrHistory) {
  class Adjuster : public proc::Process {
   public:
    void on_start(proc::Context& ctx) override {
      ctx.set_timer(ctx.local_time() + 1.0, 1);
    }
    void on_timer(proc::Context& ctx, std::int32_t) override {
      ctx.add_corr(5.0);
    }
    void on_message(proc::Context&, const sim::Message&) override {}
  };
  SimConfig config;
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Adjuster>(), perfect_clock(), 0.0, false,
                  0.0);
  sim.run_until(3.0);
  EXPECT_NEAR(sim.local_time(0, 0.5), 0.5, 1e-12);   // before the jump
  EXPECT_NEAR(sim.local_time(0, 2.0), 7.0, 1e-12);   // after +5
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimConfig config;
    config.seed = 2024;
    Simulator sim(config, nullptr);
    sim.add_process(std::make_unique<Starter>(), perfect_clock(), 0.0, false,
                    0.0);
    auto recorder = std::make_unique<Recorder>();
    Recorder* view = recorder.get();
    sim.add_process(std::move(recorder), perfect_clock(), 0.0, false, -1.0);
    sim.run_until(1.0);
    return view->items.empty() ? -1.0 : view->items[0].at;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Simulator, RejectsBadDelayModel) {
  /// A malicious/buggy delay model violating A3.
  class BadDelay : public DelayModel {
   public:
    double delay(std::int32_t, std::int32_t, double, util::Rng&) override {
      return 1e9;
    }
  };
  SimConfig config;
  Simulator sim(config, std::make_unique<BadDelay>());
  sim.add_process(std::make_unique<Starter>(), perfect_clock(), 0.0, false, 0.0);
  EXPECT_THROW(sim.run_until(1.0), std::logic_error);
}

TEST(Simulator, RequiresDeltaGeEps) {
  SimConfig config;
  config.delta = 0.001;
  config.eps = 0.01;
  EXPECT_THROW(Simulator(config, nullptr), std::invalid_argument);
}

/// Sends `count` messages to process 1 back-to-back.
class Burster : public proc::Process {
 public:
  explicit Burster(std::int32_t count) : count_(count) {}
  void on_start(proc::Context& ctx) override {
    for (std::int32_t i = 0; i < count_; ++i) ctx.send(1, 0, i, 0);
  }
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context&, const sim::Message&) override {}

 private:
  std::int32_t count_;
};

TEST(Simulator, NicOverflowDropsOldest) {
  SimConfig config;
  config.delta = 0.01;
  config.eps = 0.0001;  // near-simultaneous arrivals
  config.nic = NicConfig{/*capacity=*/4, /*service_time=*/0.01};
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Burster>(20), perfect_clock(), 0.0, false,
                  0.0);
  sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, false,
                  -1.0);
  sim.run_until(5.0);
  auto& recorder = dynamic_cast<Recorder&>(sim.process(1));
  // 20 sent; the slow NIC (10 ms service) overflows the 4-slot buffer.
  EXPECT_GT(sim.nic_dropped(), 0u);
  EXPECT_EQ(recorder.items.size() + sim.nic_dropped(), 20u);
}

TEST(Simulator, NicWithHeadroomDropsNothing) {
  SimConfig config;
  config.delta = 0.01;
  config.eps = 0.001;
  config.nic = NicConfig{/*capacity=*/64, /*service_time=*/1e-6};
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Burster>(20), perfect_clock(), 0.0, false,
                  0.0);
  sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, false,
                  -1.0);
  sim.run_until(5.0);
  EXPECT_EQ(sim.nic_dropped(), 0u);
  EXPECT_EQ(dynamic_cast<Recorder&>(sim.process(1)).items.size(), 20u);
}

TEST(Simulator, MaxEventsGuardThrows) {
  /// Two processes ping-ponging forever.
  class Pinger : public proc::Process {
   public:
    explicit Pinger(std::int32_t peer) : peer_(peer) {}
    void on_start(proc::Context& ctx) override { ctx.send(peer_, 0, 0, 0); }
    void on_timer(proc::Context&, std::int32_t) override {}
    void on_message(proc::Context& ctx, const sim::Message&) override {
      ctx.send(peer_, 0, 0, 0);
    }

   private:
    std::int32_t peer_;
  };
  SimConfig config;
  config.max_events = 1000;
  Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Pinger>(1), perfect_clock(), 0.0, false, 0.0);
  sim.add_process(std::make_unique<Pinger>(0), perfect_clock(), 0.0, false, -1.0);
  EXPECT_THROW(sim.run_until(1e9), std::runtime_error);
}

TEST(CorrLog, StepsAndRamps) {
  CorrLog log(1.0);
  EXPECT_DOUBLE_EQ(log.displayed_at(0.0), 1.0);
  log.step(1.0, 3.0);
  EXPECT_DOUBLE_EQ(log.displayed_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(log.displayed_at(1.0), 3.0);
  log.ramp(2.0, 1.0, 2.0);  // slew 3 -> 1 over [2, 4]
  EXPECT_DOUBLE_EQ(log.target_at(2.5), 1.0);     // target jumps immediately
  EXPECT_DOUBLE_EQ(log.displayed_at(2.0), 3.0);  // display slews
  EXPECT_DOUBLE_EQ(log.displayed_at(3.0), 2.0);
  EXPECT_DOUBLE_EQ(log.displayed_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(log.displayed_at(9.0), 1.0);
  EXPECT_EQ(log.changes(), 2u);
}

}  // namespace
}  // namespace wlsync::sim
