// Unit tests for the measurement layer itself: skew probes, label-crossing
// inversion, round traces.  The theorems are only as trustworthy as the
// instruments that measure them.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/round_trace.h"
#include "analysis/skew.h"
#include "clock/drift.h"
#include "proc/process.h"
#include "sim/simulator.h"

namespace wlsync::analysis {
namespace {

/// Process that applies a scripted CORR step at a given local time.
class ScriptedStepper : public proc::Process {
 public:
  ScriptedStepper(double at_local, double adj) : at_(at_local), adj_(adj) {}
  void on_start(proc::Context& ctx) override { ctx.set_timer(at_, 1); }
  void on_timer(proc::Context& ctx, std::int32_t) override { ctx.add_corr(adj_); }
  void on_message(proc::Context&, const sim::Message&) override {}

 private:
  double at_, adj_;
};

std::unique_ptr<clk::PhysicalClock> perfect_clock(double offset = 0.0) {
  return std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0), offset,
                                              1e-4);
}

TEST(SkewProbe, MeasuresKnownOffsets) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  // Clocks with offsets 0.0 and 0.25; no corrections.
  sim.add_process(std::make_unique<ScriptedStepper>(1e9, 0.0), perfect_clock(0.0),
                  0.0, false, -1.0);
  sim.add_process(std::make_unique<ScriptedStepper>(1e9, 0.0),
                  perfect_clock(0.25), 0.0, false, -1.0);
  const std::vector<std::int32_t> ids{0, 1};
  EXPECT_NEAR(skew_at(sim, ids, 5.0), 0.25, 1e-12);
  const SkewSeries series = skew_series(sim, ids, 0.0, 10.0, 1.0);
  EXPECT_NEAR(series.max_skew, 0.25, 1e-12);
  EXPECT_EQ(series.times.size(), series.skews.size());
}

TEST(SkewProbe, SeesCorrStep) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<ScriptedStepper>(2.0, 0.5), perfect_clock(),
                  0.0, false, 0.0);
  sim.add_process(std::make_unique<ScriptedStepper>(1e9, 0.0), perfect_clock(),
                  0.0, false, -1.0);
  sim.run_until(10.0);
  const std::vector<std::int32_t> ids{0, 1};
  EXPECT_NEAR(skew_at(sim, ids, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(skew_at(sim, ids, 3.0), 0.5, 1e-12);
}

TEST(CrossingTime, InvertsLocalTime) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  // Clock offset 1.0, step +0.5 at local 3.0 (real 2.0).
  sim.add_process(std::make_unique<ScriptedStepper>(3.0, 0.5), perfect_clock(1.0),
                  0.0, false, 0.0);
  sim.run_until(10.0);
  // Before the step: label 2.5 crossed at real 1.5.
  EXPECT_NEAR(crossing_time(sim, 0, 2.5, 0.0, 10.0), 1.5, 1e-6);
  // Label 4.0 after the step: local(t) = t + 1.5, crossed at 2.5.
  EXPECT_NEAR(crossing_time(sim, 0, 4.0, 0.0, 10.0), 2.5, 1e-6);
  // The jump skips labels in (3.0, 3.5): first time local >= 3.25 is the
  // step instant, real 2.0.
  EXPECT_NEAR(crossing_time(sim, 0, 3.25, 0.0, 10.0), 2.0, 1e-6);
  // Unreachable label.
  EXPECT_TRUE(std::isnan(crossing_time(sim, 0, 1e6, 0.0, 10.0)));
}

TEST(LabelSpread, MatchesConstruction) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  // Offsets 0 and -0.2: process 1's local time lags 0.2 behind, so it
  // crosses any label 0.2 later.
  sim.add_process(std::make_unique<ScriptedStepper>(1e9, 0.0), perfect_clock(0.0),
                  0.0, false, -1.0);
  sim.add_process(std::make_unique<ScriptedStepper>(1e9, 0.0),
                  perfect_clock(-0.2), 0.0, false, -1.0);
  EXPECT_NEAR(label_spread(sim, {0, 1}, 5.0, 0.0, 20.0), 0.2, 1e-6);
}

TEST(RoundTrace, IndexesAnnotations) {
  RoundTrace trace;
  trace.on_annotation(0, 1.0, {proc::Annotation::Type::kRoundBegin, 0, 100.0, 0});
  trace.on_annotation(1, 1.2, {proc::Annotation::Type::kRoundBegin, 0, 100.0, 0});
  trace.on_annotation(0, 2.0, {proc::Annotation::Type::kUpdate, 0, 0.5, 99.0});
  trace.on_annotation(1, 2.1, {proc::Annotation::Type::kUpdate, 0, -0.7, 98.0});
  trace.on_annotation(0, 3.0, {proc::Annotation::Type::kRoundBegin, 1, 110.0, 0});
  trace.on_annotation(2, 3.5, {proc::Annotation::Type::kJoined, 1, 110.0, 0});

  const std::vector<std::int32_t> both{0, 1};
  EXPECT_NEAR(trace.begin_spread(0, both), 0.2, 1e-12);
  EXPECT_TRUE(std::isnan(trace.begin_spread(1, both)));  // pid 1 missing
  EXPECT_EQ(trace.last_complete_round(both), 0);
  EXPECT_EQ(trace.last_complete_round({0}), 1);
  EXPECT_DOUBLE_EQ(trace.max_abs_adjustment(both, 0), 0.7);
  EXPECT_DOUBLE_EQ(trace.max_abs_adjustment({0}, 0), 0.5);
  EXPECT_EQ(trace.joins().size(), 1u);
  EXPECT_EQ(trace.begins().size(), 3u);
  EXPECT_EQ(trace.updates().size(), 2u);
}

TEST(RoundTrace, MaxAdjRespectsFromRound) {
  RoundTrace trace;
  trace.on_annotation(0, 1.0, {proc::Annotation::Type::kUpdate, 0, 5.0, 0});
  trace.on_annotation(0, 2.0, {proc::Annotation::Type::kUpdate, 1, 0.1, 0});
  EXPECT_DOUBLE_EQ(trace.max_abs_adjustment({0}, 1), 0.1);
}

}  // namespace
}  // namespace wlsync::analysis
