// Real-thread runtime: the same WelchLynchProcess object synchronizes live
// clocks across OS threads (Section 9.3 conditions).  Wall-clock bound:
// a few seconds.

#include <gtest/gtest.h>

#include "runtime/runtime.h"

namespace wlsync::rt {
namespace {

TEST(Runtime, DriftedClockMath) {
  const TimePoint epoch = SteadyClock::now();
  DriftedClock clock(/*offset=*/5.0, /*rate=*/2.0, epoch);
  // when() inverts now(): when(now()) ~ the current steady time.
  const double reading = clock.now();
  const TimePoint back = clock.when(reading);
  const auto error = std::chrono::duration<double>(SteadyClock::now() - back);
  EXPECT_LT(std::abs(error.count()), 0.01);
  EXPECT_GT(clock.now(), reading);  // time advances
}

TEST(Runtime, LiveClusterConverges) {
  // Real-time scale: delta = 8 ms, eps = 4 ms (generous for OS jitter),
  // P = 250 ms, amplified drift so the rounds matter.
  Cluster::Config config;
  config.params.n = 4;
  config.params.f = 1;
  config.params.rho = 5e-3;
  config.params.delta = 8e-3;
  config.params.eps = 4e-3;
  config.params.P = 0.25;
  config.params.beta =
      core::beta_for_round_length(config.params.P, config.params.rho,
                                  config.params.delta, config.params.eps) *
      1.05;
  config.params.T0 = 0.0;
  config.seed = 99;
  ASSERT_TRUE(core::validate(config.params).empty());

  Cluster cluster(config);
  // 2.5 s run, 0.8 s warmup (start lead-in + ~2 rounds), 20 ms samples.
  const double worst = cluster.run_and_measure(2.5, 0.8, 0.02);

  const core::Derived d = core::derive(config.params);
  // OS scheduling adds noise beyond the model; allow 4x gamma.
  EXPECT_LT(worst, 4.0 * d.gamma) << "gamma=" << d.gamma;
  EXPECT_GT(worst, 0.0);  // sampled something
}

TEST(Runtime, UnsynchronizedClocksDrftApartWithoutAlgorithm) {
  // Control experiment: with the algorithm effectively disabled (huge P so
  // no round completes within the run), drift at rho=5e-3 over ~1.5 s
  // separates clocks by ~ 2*rho*t ~ 15 ms, far beyond gamma.
  Cluster::Config config;
  config.params.n = 4;
  config.params.f = 1;
  config.params.rho = 5e-3;
  config.params.delta = 8e-3;
  config.params.eps = 4e-3;
  config.params.P = 3600.0;  // first resynchronization far in the future
  config.params.beta = core::beta_for_round_length(
                           config.params.P, config.params.rho,
                           config.params.delta, config.params.eps) *
                       1.05;
  config.seed = 100;

  Cluster cluster(config);
  const double worst = cluster.run_and_measure(1.5, 1.2, 0.05);
  EXPECT_GT(worst, 5e-3);  // visibly apart: the algorithm was doing real work
}

}  // namespace
}  // namespace wlsync::rt
