// Section 5.2 parameter algebra: derived bounds, validation, and the
// equivalence between the beta-feasibility inequality and P_lower <= P_upper.

#include <gtest/gtest.h>

#include "core/params.h"

namespace wlsync::core {
namespace {

Params typical() {
  Params p;
  p.n = 7;
  p.f = 2;
  p.rho = 1e-5;
  p.delta = 0.01;
  p.eps = 1e-3;
  p.P = 10.0;
  p.beta = beta_for_round_length(p.P, p.rho, p.delta, p.eps) * 1.05;
  return p;
}

TEST(Params, DerivedFormulasMatchPaper) {
  const Params p = typical();
  const Derived d = derive(p);
  const double s = p.beta + p.delta + p.eps;
  EXPECT_DOUBLE_EQ(d.window, (1 + p.rho) * s);
  EXPECT_DOUBLE_EQ(d.adj_bound, (1 + p.rho) * (p.beta + p.eps) + p.rho * p.delta);
  EXPECT_DOUBLE_EQ(d.gamma,
                   p.beta + p.eps + p.rho * (7 * p.beta + 3 * p.delta + 7 * p.eps) +
                       8 * p.rho * p.rho * s + 4 * p.rho * p.rho * p.rho * s);
  EXPECT_DOUBLE_EQ(d.alpha3, p.eps);
  EXPECT_GT(d.lambda, 0.0);
  EXPECT_DOUBLE_EQ(d.alpha1, 1 - p.rho - p.eps / d.lambda);
  EXPECT_DOUBLE_EQ(d.alpha2, 1 + p.rho + p.eps / d.lambda);
}

TEST(Params, GammaIsRoughly4EpsWhenBetaIsTight) {
  // Section 10: "clocks stay synchronized to within about 4 eps" when P is
  // small enough that the drift term is negligible.
  const double rho = 1e-6, delta = 0.01, eps = 1e-3;
  const double P = 1.0;
  const double beta = beta_for_round_length(P, rho, delta, eps);
  Params p{/*n=*/4, /*f=*/1, rho, delta, eps, beta, P, 0.0};
  const Derived d = derive(p);
  // beta ~ 4 eps + 4 rho P; gamma ~ beta + eps ~ 5 eps.
  EXPECT_NEAR(p.beta, 4 * eps, 0.5 * eps);
  EXPECT_NEAR(d.gamma, 5 * eps, 0.7 * eps);
}

TEST(Params, ValidAcceptsTypical) {
  EXPECT_TRUE(validate(typical()).empty());
}

TEST(Params, DetectsA2Violation) {
  Params p = typical();
  p.n = 3 * p.f;  // one short
  EXPECT_FALSE(validate(p).empty());
}

TEST(Params, DetectsBadDelayBand) {
  Params p = typical();
  p.eps = p.delta + 1.0;
  EXPECT_FALSE(validate(p).empty());
}

TEST(Params, DetectsTooSmallBeta) {
  Params p = typical();
  p.beta = p.eps;  // << 4 eps: infeasible
  EXPECT_FALSE(validate(p).empty());
}

TEST(Params, DetectsRoundLengthOutOfRange) {
  Params p = typical();
  p.P = derive(p).p_lower * 0.5;
  EXPECT_FALSE(validate(p).empty());
  p = typical();
  p.P = derive(p).p_upper * 2.0;
  EXPECT_FALSE(validate(p).empty());
}

TEST(Params, MinFeasibleBetaSatisfiesInequality) {
  for (double rho : {1e-6, 1e-5, 1e-4, 1e-3}) {
    for (double delta : {0.001, 0.01, 0.1}) {
      const double eps = delta / 10;
      const double beta = min_feasible_beta(rho, delta, eps);
      Params p{/*n=*/4, /*f=*/1, rho, delta, eps, beta, 1.0, 0.0};
      const Derived d = derive(p);
      EXPECT_GE(beta, d.beta_rhs - 1e-12) << "rho=" << rho << " delta=" << delta;
      // It is the *minimum*: 1% less must violate.
      Params small = p;
      small.beta = beta * 0.99;
      EXPECT_LT(small.beta, derive(small).beta_rhs);
    }
  }
}

// The paper states the beta inequality "follows" from combining the P
// bounds: check P_lower(beta) <= P_upper(beta) iff beta >= beta_rhs, over a
// sweep of betas around the threshold.
TEST(Params, FeasibilityEquivalentToPWindowNonEmpty) {
  const double rho = 1e-5, delta = 0.01, eps = 1e-3;
  const double threshold = min_feasible_beta(rho, delta, eps);
  for (double scale : {0.8, 0.9, 0.999, 1.001, 1.1, 2.0, 10.0}) {
    Params p{/*n=*/4, /*f=*/1, rho, delta, eps, threshold * scale, 1.0, 0.0};
    const Derived d = derive(p);
    const bool window_nonempty = d.p_lower <= d.p_upper;
    const bool beta_ok = p.beta >= d.beta_rhs;
    EXPECT_EQ(window_nonempty, beta_ok) << "scale=" << scale;
  }
}

TEST(Params, BetaForRoundLengthTracks4Eps4RhoP) {
  // Section 5.2: "if P is regarded as fixed, beta ... is roughly 4eps+4rhoP".
  const double rho = 1e-5, delta = 0.01, eps = 1e-3;
  for (double P : {1.0, 10.0, 100.0, 1000.0}) {
    const double beta = beta_for_round_length(P, rho, delta, eps);
    const double rough = 4 * eps + 4 * rho * P;
    EXPECT_NEAR(beta, rough, 0.05 * rough + 1e-6) << "P=" << P;
    Params p{/*n=*/4, /*f=*/1, rho, delta, eps, beta * 1.05, P, 0.0};
    EXPECT_TRUE(validate(p).empty()) << "P=" << P;
  }
}

TEST(Params, MakeParamsProducesValidSet) {
  const Params p = make_params(10, 3, 1e-5, 0.01, 1e-3, 50.0);
  EXPECT_TRUE(validate(p).empty());
  EXPECT_EQ(p.n, 10);
  EXPECT_EQ(p.f, 3);
}

TEST(Params, MakeParamsRejectsImpossible) {
  // Huge P with large rho: P_upper < P_lower no matter the beta... actually
  // beta grows with P; pick P so large that validation still passes is
  // normal — instead violate A2.
  EXPECT_THROW((void)make_params(3, 1, 1e-5, 0.01, 1e-3, 10.0),
               std::invalid_argument);
}

TEST(Params, RoundLabelGrid) {
  Params p = typical();
  p.T0 = 5.0;
  EXPECT_DOUBLE_EQ(p.round_label(0), 5.0);
  EXPECT_DOUBLE_EQ(p.round_label(3), 5.0 + 3 * p.P);
}

TEST(Params, StartupFormulas) {
  const double rho = 1e-5, delta = 0.01, eps = 1e-3;
  EXPECT_DOUBLE_EQ(startup_round_slack(rho, delta, eps),
                   2 * eps + 2 * rho * (11 * delta + 39 * eps));
  EXPECT_DOUBLE_EQ(startup_limit(rho, delta, eps),
                   2 * startup_round_slack(rho, delta, eps));
  // Lemma 20's limit is "about 4 eps" for small rho.
  EXPECT_NEAR(startup_limit(rho, delta, eps), 4 * eps, 0.1 * eps);
}

}  // namespace
}  // namespace wlsync::core
