// Gradient-skew subsystem: BFS distances / eccentricity / diameter pinned
// against hand-computed small graphs; a drift-free run's gradient is flat
// (slope 0 within 1e-12); and the sharded pair-bucketing of gradient_series
// is pinned to the naive O(m^2) per-sample reference scan (gradient_at) at
// 1e-12 — and bit-identical across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/gradient.h"
#include "analysis/parallel_runner.h"
#include "clock/drift.h"
#include "net/topology.h"
#include "proc/process.h"
#include "sim/simulator.h"

namespace wlsync {
namespace {

using analysis::GradientSeries;
using analysis::GradientSummary;
using analysis::RunResult;
using analysis::RunSpec;
using net::Topology;
using net::TopologyKind;

// ------------------------------------------------------- BFS distances ---

TEST(Distances, PathGraphPinned) {
  // 0 - 1 - 2 - 3 - 4 (from_adjacency symmetrizes and adds self-loops).
  const Topology topo = Topology::from_adjacency({{1}, {2}, {3}, {4}, {}});
  const std::vector<std::int32_t> from0 = topo.distances_from(0);
  EXPECT_EQ(from0, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
  const std::vector<std::int32_t> from2 = topo.distances_from(2);
  EXPECT_EQ(from2, (std::vector<std::int32_t>{2, 1, 0, 1, 2}));
  EXPECT_EQ(topo.eccentricity(0), 4);
  EXPECT_EQ(topo.eccentricity(2), 2);
  EXPECT_EQ(topo.diameter(), 4);
}

TEST(Distances, FullMeshIsDiameterOne) {
  const Topology topo = Topology::full_mesh(6);
  EXPECT_EQ(topo.diameter(), 1);
  for (std::int32_t p = 0; p < 6; ++p) {
    EXPECT_EQ(topo.eccentricity(p), 1);
    const std::vector<std::int32_t>& row = topo.distances_from(p);
    for (std::int32_t q = 0; q < 6; ++q) {
      EXPECT_EQ(row[static_cast<std::size_t>(q)], p == q ? 0 : 1);
    }
  }
}

TEST(Distances, RingOfCliquesPinned) {
  // Four triangles {0,1,2} {3,4,5} {6,7,8} {9,10,11}, bridged 2-3, 5-6,
  // 8-9, 11-0 into a ring.
  const Topology topo = Topology::ring_of_cliques(12, 3);
  EXPECT_EQ(topo.distances_from(0)[3], 2);   // 0-2-3
  EXPECT_EQ(topo.distances_from(1)[4], 3);   // 1-2-3-4
  EXPECT_EQ(topo.distances_from(0)[6], 4);   // 0-2-3-5-6 (or the long way)
  EXPECT_EQ(topo.distances_from(1)[7], 5);   // both ways around cost 5
  EXPECT_EQ(topo.diameter(), 5);
}

TEST(Distances, DisconnectedReportsMinusOne) {
  const Topology topo = Topology::from_adjacency({{1}, {0}, {3}, {2}});
  EXPECT_FALSE(topo.connected());
  EXPECT_EQ(topo.distances_from(0)[2], -1);
  EXPECT_EQ(topo.eccentricity(0), -1);
  EXPECT_EQ(topo.diameter(), -1);
}

TEST(Distances, SymmetricOnRandomExpander) {
  const Topology topo = Topology::k_regular(40, 6, /*seed=*/9);
  ASSERT_TRUE(topo.connected());
  EXPECT_GT(topo.diameter(), 1);
  for (std::int32_t i = 0; i < topo.n(); ++i) {
    const std::vector<std::int32_t>& row = topo.distances_from(i);
    EXPECT_EQ(row[static_cast<std::size_t>(i)], 0);
    for (std::int32_t j = 0; j < topo.n(); ++j) {
      EXPECT_EQ(row[static_cast<std::size_t>(j)],
                topo.distances_from(j)[static_cast<std::size_t>(i)])
          << "d(" << i << "," << j << ") asymmetric";
    }
  }
}

// ------------------------------------------------------- flat gradients ---

/// Honest process that does nothing: the clocks run free.
class Idle final : public proc::Process {
 public:
  void on_start(proc::Context&) override {}
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context&, const sim::Message&) override {}
};

TEST(Gradient, FlatOnDriftFreeIdenticalClocks) {
  // Perfect rate-1 clocks with identical offsets never separate: every
  // bucket is exactly zero at every sample, so the slope is exactly flat.
  const Topology topo = Topology::ring_of_cliques(12, 3);
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  std::vector<std::int32_t> ids;
  for (std::int32_t p = 0; p < topo.n(); ++p) {
    sim.add_process(std::make_unique<Idle>(),
                    std::make_unique<clk::PhysicalClock>(
                        clk::make_constant(1.0), /*offset=*/5.0, /*rho=*/1e-5),
                    /*corr0=*/0.0, /*faulty=*/false, /*start=*/0.0);
    ids.push_back(p);
  }
  sim.run_until(10.0);

  const GradientSeries series =
      analysis::gradient_series(sim, ids, topo, 1.0, 9.0, 0.5);
  EXPECT_EQ(series.diameter, 5);
  ASSERT_FALSE(series.distances.empty());
  for (double v : series.skew_by_sample) EXPECT_EQ(v, 0.0);
  for (double v : series.frontier) EXPECT_EQ(v, 0.0);
  EXPECT_NEAR(analysis::gradient_slope(series), 0.0, 1e-12);
}

TEST(Gradient, RejectsDisconnectedTopology) {
  // Cross-component pairs have no distance to bucket by; the sized-by-
  // diameter bucket table must never be indexed with the -1 sentinel.
  const Topology topo = Topology::from_adjacency({{1}, {0}, {3}, {2}});
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  for (std::int32_t p = 0; p < topo.n(); ++p) {
    sim.add_process(std::make_unique<Idle>(),
                    std::make_unique<clk::PhysicalClock>(
                        clk::make_constant(1.0), 0.0, 1e-5),
                    0.0, false, 0.0);
  }
  sim.run_until(2.0);
  EXPECT_THROW((void)analysis::gradient_series(sim, {0, 1, 2, 3}, topo, 0.0,
                                               1.0, 0.5),
               std::invalid_argument);
}

TEST(Gradient, SlopeRecoversSyntheticLine) {
  GradientSeries series;
  series.distances = {1, 2, 3, 4};
  series.max_skew = {0.5, 1.0, 1.5, 2.0};  // slope exactly 0.5
  EXPECT_NEAR(analysis::gradient_slope(series), 0.5, 1e-12);
  series.distances = {1};
  series.max_skew = {3.0};
  EXPECT_EQ(analysis::gradient_slope(series), 0.0);  // < 2 buckets
}

// -------------------------------------- sharded vs naive reference scan ---

RunSpec sparse_spec() {
  RunSpec spec;
  spec.params = core::make_params(24, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 1;
  spec.rounds = 8;
  spec.seed = 20260727;
  spec.topology.kind = TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 6;
  return spec;
}

TEST(Gradient, ShardedBucketingMatchesNaiveReference) {
  const RunSpec spec = sparse_spec();
  analysis::Experiment experiment(spec);
  const RunResult result = experiment.run();
  const Topology topo = net::build_topology(spec.topology, spec.params.n);

  const double t0 = result.tmax0 + 1.0;
  const double t1 = result.t_end;
  const double dt = spec.params.P / 5.0;
  const GradientSeries series = analysis::gradient_series(
      experiment.simulator(), result.honest, topo, t0, t1, dt, /*threads=*/4);

  ASSERT_GT(series.distances.size(), 2u);
  for (std::size_t k = 0; k < series.times.size(); ++k) {
    const std::vector<double> reference =
        analysis::gradient_at(experiment.simulator(), result.honest, topo,
                              series.distances, series.times[k]);
    ASSERT_EQ(reference.size(), series.distances.size());
    for (std::size_t b = 0; b < reference.size(); ++b) {
      EXPECT_NEAR(series.at(b, k), reference[b], 1e-12)
          << "bucket d=" << series.distances[b] << " sample " << k;
    }
  }
}

TEST(Gradient, ThreadCountInvariance) {
  const RunSpec spec = sparse_spec();
  analysis::Experiment experiment(spec);
  const RunResult result = experiment.run();
  const Topology topo = net::build_topology(spec.topology, spec.params.n);

  const double t0 = result.tmax0 + 1.0;
  const double dt = spec.params.P / 10.0;
  const GradientSeries serial = analysis::gradient_series(
      experiment.simulator(), result.honest, topo, t0, result.t_end, dt,
      /*threads=*/1);
  const GradientSeries sharded = analysis::gradient_series(
      experiment.simulator(), result.honest, topo, t0, result.t_end, dt,
      /*threads=*/4);
  ASSERT_EQ(serial.skew_by_sample.size(), sharded.skew_by_sample.size());
  for (std::size_t c = 0; c < serial.skew_by_sample.size(); ++c) {
    ASSERT_EQ(serial.skew_by_sample[c], sharded.skew_by_sample[c]) << "cell " << c;
  }
  EXPECT_TRUE(analysis::gradient_summaries_identical(
      analysis::summarize_gradient(serial),
      analysis::summarize_gradient(sharded)));
}

// --------------------------------------------------- experiment surface ---

TEST(Gradient, ExperimentFillsSummaryAndStaysDeterministic) {
  RunSpec base = sparse_spec();
  base.measure_gradient = true;
  const RunResult one = analysis::run_experiment(base);
  ASSERT_TRUE(one.gradient.measured());
  EXPECT_EQ(one.gradient.diameter, 5);
  ASSERT_EQ(one.gradient.frontier.size(), one.gradient.distances.size());
  // The frontier is non-decreasing by construction and tops out at the
  // far-pair skew.
  for (std::size_t b = 1; b < one.gradient.frontier.size(); ++b) {
    EXPECT_GE(one.gradient.frontier[b], one.gradient.frontier[b - 1]);
  }
  EXPECT_EQ(one.gradient.far_skew(), one.gradient.frontier.back());

  // results_identical covers the gradient fields: parallel sweeps must
  // reproduce the serial summaries bit-for-bit.
  const std::vector<RunSpec> specs = analysis::seed_sweep(base, 900, 4);
  const std::vector<RunResult> serial = analysis::ParallelRunner(1).run(specs);
  const std::vector<RunResult> sharded = analysis::ParallelRunner(4).run(specs);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(analysis::results_identical(serial[i], sharded[i])) << "trial " << i;
    EXPECT_TRUE(serial[i].gradient.measured());
  }
}

TEST(Gradient, GammaMeasuredExactlyUnchangedByGradientMeasurement) {
  // With measure_gradient on, gamma_measured is derived from the gradient's
  // far frontier instead of a second skew_series pass over the same grid;
  // the two must coincide bitwise (the max pairwise |L_i - L_j| is attained
  // by the max/min pair skew_series subtracts).
  RunSpec plain = sparse_spec();
  RunSpec measured = sparse_spec();
  measured.measure_gradient = true;
  const RunResult a = analysis::run_experiment(plain);
  const RunResult b = analysis::run_experiment(measured);
  EXPECT_EQ(a.gamma_measured, b.gamma_measured);
  EXPECT_EQ(a.final_skew, b.final_skew);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Gradient, MeshGradientCollapsesToGlobalSkew) {
  RunSpec spec;
  spec.params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 8;
  spec.seed = 41;
  spec.measure_gradient = true;
  const RunResult result = analysis::run_experiment(spec);
  ASSERT_TRUE(result.gradient.measured());
  // Every honest pair is one hop apart on the mesh: a single bucket whose
  // max over the window IS the measured global skew.
  ASSERT_EQ(result.gradient.distances, (std::vector<std::int32_t>{1}));
  EXPECT_EQ(result.gradient.diameter, 1);
  EXPECT_NEAR(result.gradient.max_skew[0], result.gamma_measured, 1e-12);
}

}  // namespace
}  // namespace wlsync
