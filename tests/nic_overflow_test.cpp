// The scaled NIC/datagram-overflow model (Section 9.3 at n >= 16):
// deterministic drop traces on hand-built scenarios, the unbounded-queue
// bit-identity pin, drop-policy semantics, per-process accounting, and a
// mixed-faults run under overflow.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "analysis/parallel_runner.h"
#include "clock/drift.h"
#include "clock/physical_clock.h"
#include "proc/process.h"
#include "sim/simulator.h"

namespace wlsync::analysis {
namespace {

/// All broadcasts land on every receiver at one instant: zero start spread,
/// driftless clocks, constant (all-slow) delays.  Every NIC number below is
/// an exact consequence.
RunSpec clustered_spec(std::int32_t n, std::size_t capacity) {
  RunSpec spec;
  spec.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
  spec.delay = DelayKind::kSlow;
  spec.drift = DriftKind::kNone;
  spec.initial_spread = 0.0;
  spec.rounds = 3;
  spec.seed = 5;
  spec.nic = sim::NicConfig{capacity, /*service_time=*/50e-6};
  return spec;
}

TEST(NicOverflow, DeterministicDropTraceOnClusteredMesh) {
  // Round 1: all 16 processes broadcast at the same real instant; each
  // receiver's NIC sees a burst of exactly 16 datagrams and, at capacity 4,
  // drops exactly 12 of them — per process, not just in aggregate.
  const std::int32_t n = 16;
  Experiment experiment(clustered_spec(n, 4));
  sim::Simulator& sim = experiment.simulator();
  sim.run_until(0.1);  // well past the delta + eps delivery instant
  for (std::int32_t id = 0; id < n; ++id) {
    const sim::NicStats& stats = sim.nic_stats(id);
    EXPECT_EQ(stats.arrivals, 16u) << "process " << id;
    EXPECT_EQ(stats.dropped, 12u) << "process " << id;
    EXPECT_EQ(stats.max_burst, 16u) << "process " << id;
    EXPECT_EQ(stats.peak_queue, 4u) << "process " << id;
  }
  EXPECT_EQ(sim.nic_dropped(), 16u * 12u);
}

TEST(NicOverflow, SummaryAggregatesAndConservation) {
  const RunResult result = run_experiment(clustered_spec(16, 4));
  EXPECT_GT(result.nic.dropped, 0u);
  EXPECT_EQ(result.nic.dropped, result.nic_dropped);  // legacy counter agrees
  EXPECT_EQ(result.nic.max_burst, 16u);
  EXPECT_EQ(result.nic.peak_queue, 4u);
  // Conservation: every arrival is served, dropped, or still queued (the
  // residual is bounded by total queue capacity).
  ASSERT_GE(result.nic.arrivals, result.nic.served + result.nic.dropped);
  EXPECT_LE(result.nic.arrivals - result.nic.served - result.nic.dropped,
            16u * 4u);
  EXPECT_NEAR(result.nic.drop_rate(),
              static_cast<double>(result.nic.dropped) /
                  static_cast<double>(result.nic.arrivals),
              1e-15);
}

TEST(NicOverflow, UnboundedQueueNeverDrops) {
  const RunResult result = run_experiment(clustered_spec(16, 0));
  EXPECT_EQ(result.nic.dropped, 0u);
  EXPECT_EQ(result.nic.max_burst, 16u);   // bursts still observed
  EXPECT_GE(result.nic.peak_queue, 16u);  // the whole burst queues
  EXPECT_EQ(result.nic.arrivals, result.nic.served);
}

TEST(NicOverflow, UnboundedQueueBitIdenticalToHugeCapacity) {
  // capacity = 0 (unbounded) is semantically "a queue that never
  // overflows": pinned bitwise against a finite queue too large to drop.
  RunSpec unbounded = clustered_spec(16, 0);
  RunSpec huge = clustered_spec(16, 1u << 20);
  const RunResult a = run_experiment(unbounded);
  const RunResult b = run_experiment(huge);
  EXPECT_TRUE(results_identical(a, b));
}

// ------------------------------------------------------------------------
// Drop-policy semantics on a hand-built trace: four senders fire one
// datagram each at the same instant into a capacity-2 NIC.  kDropOldest
// (Section 9.3's "old ones are overwritten") delivers the LAST two;
// kDropNewest delivers the FIRST two.

class OneShotSender final : public proc::Process {
 public:
  explicit OneShotSender(std::int32_t to) : to_(to) {}
  void on_start(proc::Context& ctx) override { ctx.send(to_, 7, 0.0, 0); }
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context&, const sim::Message&) override {}

 private:
  std::int32_t to_;
};

class Recorder final : public proc::Process {
 public:
  void on_start(proc::Context&) override {}
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context&, const sim::Message& m) override {
    senders.push_back(m.from);
  }
  std::vector<std::int32_t> senders;
};

std::vector<std::int32_t> delivered_under(sim::NicDropPolicy policy) {
  sim::SimConfig config;
  config.delta = 0.01;
  config.eps = 0.0;  // constant delay: all four datagrams land together
  config.nic = sim::NicConfig{/*capacity=*/2, /*service_time=*/1e-4, policy};
  sim::Simulator sim(config, nullptr);
  auto recorder = std::make_unique<Recorder>();
  Recorder* tape = recorder.get();
  sim.add_process(std::move(recorder),
                  std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0),
                                                       0.0, 1e-5),
                  0.0, false, /*start=*/0.0);
  for (std::int32_t s = 1; s <= 4; ++s) {
    sim.add_process(std::make_unique<OneShotSender>(0),
                    std::make_unique<clk::PhysicalClock>(
                        clk::make_constant(1.0), 0.0, 1e-5),
                    0.0, false, /*start=*/0.0);
  }
  sim.run_until(1.0);
  EXPECT_EQ(sim.nic_stats(0).dropped, 2u);
  return tape->senders;
}

TEST(NicOverflow, DropOldestKeepsTheFreshestDatagrams) {
  EXPECT_EQ(delivered_under(sim::NicDropPolicy::kDropOldest),
            (std::vector<std::int32_t>{3, 4}));
}

TEST(NicOverflow, DropNewestKeepsTheEarliestDatagrams) {
  EXPECT_EQ(delivered_under(sim::NicDropPolicy::kDropNewest),
            (std::vector<std::int32_t>{1, 2}));
}

// ------------------------------------------------------------------------

// ------------------------------------------------------------------------
// Drop-policy bias: WHICH broadcasts survive a clustered burst is a
// deterministic function of the policy — kDropOldest keeps the burst's
// LAST `capacity` arrivals, kDropNewest its FIRST `capacity`.

/// Records, per receiver, the senders of delivered datagrams in order.
class DeliveryTape final : public sim::TraceSink {
 public:
  void on_receive(std::int32_t pid, const sim::Message& msg,
                  double /*time*/) override {
    if (msg.kind == sim::Kind::kApp) senders_[pid].push_back(msg.from);
  }
  [[nodiscard]] const std::vector<std::int32_t>& senders(std::int32_t pid) {
    return senders_[pid];
  }

 private:
  std::map<std::int32_t, std::vector<std::int32_t>> senders_;
};

std::vector<std::int32_t> first_burst_survivors(sim::NicDropPolicy policy,
                                                std::size_t capacity) {
  RunSpec spec = clustered_spec(16, capacity);
  spec.nic->drop = policy;
  Experiment experiment(spec);
  DeliveryTape tape;
  experiment.simulator().add_trace_sink(&tape);
  experiment.simulator().run_until(0.1);  // past the first clustered burst
  std::vector<std::int32_t> survivors = tape.senders(0);
  if (survivors.size() > capacity) survivors.resize(capacity);
  return survivors;
}

TEST(NicOverflow, DropPolicyDecidesWhichSendersSurviveTheBurst) {
  // The burst arrival order is deterministic (fixed seed, integer event
  // ordering), so each policy keeps an exact sender set: drop-oldest the
  // burst's suffix, drop-newest its prefix.  Capture the order from an
  // unbounded run (whole burst queues, served in arrival order) and pin
  // both policies against it — a sender's survival is purely its position
  // in the burst.
  Experiment reference(clustered_spec(16, 0));
  DeliveryTape tape;
  reference.simulator().add_trace_sink(&tape);
  reference.simulator().run_until(0.1);
  std::vector<std::int32_t> arrival_order = tape.senders(0);
  ASSERT_GE(arrival_order.size(), 16u);
  arrival_order.resize(16);  // the first clustered burst: all 16 broadcasts

  constexpr std::size_t kCapacity = 4;
  const std::vector<std::int32_t> oldest =
      first_burst_survivors(sim::NicDropPolicy::kDropOldest, kCapacity);
  const std::vector<std::int32_t> newest =
      first_burst_survivors(sim::NicDropPolicy::kDropNewest, kCapacity);
  EXPECT_EQ(oldest, std::vector<std::int32_t>(arrival_order.end() - kCapacity,
                                              arrival_order.end()));
  EXPECT_EQ(newest, std::vector<std::int32_t>(
                        arrival_order.begin(),
                        arrival_order.begin() + kCapacity));
  EXPECT_NE(oldest, newest);
}

TEST(NicOverflow, DropPolicyBiasUnderTwoFacedAttack) {
  // Two-faced adversaries + tight queues: which policy survives the attack
  // is a deterministic, measured property.  On the clustered mesh at
  // capacity 4 the adversary strike volume collides with the burst
  // backlog: Section 9.3's overwrite-oldest policy keeps the system
  // convergent while tail drop (kDropNewest) loses agreement outright —
  // the skew delta is ~15 s vs ~2 ms (README "Drop-policy bias").  This is
  // genuine drop-policy physics, not the starved-window artifact: the
  // windows never empty (starved_updates stays 0 under both policies), the
  // adversary faces and surviving honest data simply differ.
  RunSpec spec;
  spec.params = core::make_params(24, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.delay = DelayKind::kSlow;
  spec.rounds = 8;
  spec.seed = 12;
  spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/50e-6};

  spec.nic->drop = sim::NicDropPolicy::kDropOldest;
  const RunResult oldest = run_experiment(spec);
  EXPECT_TRUE(results_identical(oldest, run_experiment(spec)));
  spec.nic->drop = sim::NicDropPolicy::kDropNewest;
  const RunResult newest = run_experiment(spec);
  EXPECT_TRUE(results_identical(newest, run_experiment(spec)));

  EXPECT_GT(oldest.nic.dropped, 0u);
  EXPECT_GT(newest.nic.dropped, 0u);
  EXPECT_FALSE(results_identical(oldest, newest));
  EXPECT_EQ(oldest.starved_updates, 0);
  EXPECT_EQ(newest.starved_updates, 0);
  EXPECT_FALSE(oldest.diverged);
  EXPECT_TRUE(newest.diverged);
  EXPECT_GT(newest.gamma_measured, 100.0 * oldest.gamma_measured);
  RecordProperty("skew_delta_newest_minus_oldest",
                 std::to_string(newest.gamma_measured - oldest.gamma_measured));
}

TEST(NicOverflow, StarvedWindowsSkipUpdatesAcrossAlgosAndConfigs) {
  // The starvation guard, pinned across algorithms and NIC configurations:
  // when drops / serialization empty a collection window, the UPDATE is
  // skipped like a missed round — never reduced from sentinel ARR values.
  // Welch-Lynch (both averagings) records the skips in starved_updates;
  // the baselines clamp never-arrived entries internally.  Either way the
  // observable pin is the same: every CORR step stays at adjustment scale
  // (~delta + drift), nothing within orders of magnitude of the ~1e300
  // never-arrived sentinel, and reruns are bit-identical.
  struct AlgoCase {
    Algo algo;
    core::Averaging averaging;
  };
  const AlgoCase algos[] = {
      {Algo::kWelchLynch, core::Averaging::kMidpoint},
      {Algo::kWelchLynch, core::Averaging::kReducedMean},
      {Algo::kLM, core::Averaging::kMidpoint},
      {Algo::kMS, core::Averaging::kMidpoint},
      {Algo::kPlainMean, core::Averaging::kMidpoint},
  };
  const sim::NicConfig nics[] = {
      {/*capacity=*/2, /*service_time=*/50e-6},
      {/*capacity=*/2, /*service_time=*/50e-6, sim::NicDropPolicy::kDropNewest},
      {/*capacity=*/4, /*service_time=*/2e-3},
  };
  for (const AlgoCase& a : algos) {
    for (const sim::NicConfig& nic : nics) {
      RunSpec spec = clustered_spec(16, nic.capacity);
      spec.algo = a.algo;
      spec.averaging = a.averaging;
      spec.rounds = 5;
      spec.nic = nic;
      const RunResult result = run_experiment(spec);
      const std::string label = "algo " + std::to_string(int(a.algo)) +
                                " avg " + std::to_string(int(a.averaging)) +
                                " cap " + std::to_string(nic.capacity);
      EXPECT_GT(result.nic.dropped, 0u) << label;
      EXPECT_LT(result.max_abs_adj, 1.0) << label;
      EXPECT_LT(std::abs(result.final_skew), 1e3) << label;
      EXPECT_TRUE(results_identical(result, run_experiment(spec))) << label;
      if (a.algo == Algo::kWelchLynch) {
        // Capacity 2 against a 16-wide burst empties every window: the
        // guard must fire rather than let mid() see the sentinels.
        EXPECT_GT(result.starved_updates, 0) << label;
      } else {
        EXPECT_EQ(result.starved_updates, 0) << label;  // WL-only counter
      }
    }
  }
}

TEST(NicOverflow, DropPolicyInvariantUnderJointPlacementOnCliques) {
  // The counterpoint the pin above makes meaningful: with the same
  // two-faced adversaries placed ON the inter-clique joints of a sparse
  // graph, the two policies produce bit-identical physics.  The clustered
  // burst's surviving ARR *values* are the service-slot receipt times,
  // which do not depend on which senders occupy the slots, and the
  // per-victim attack faces land outside the burst backlog — so only the
  // sender labels differ, and Welch-Lynch never reads those.
  RunSpec spec;
  spec.params = core::make_params(24, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 8;
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.placement = proc::PlacementKind::kArticulation;
  spec.delay = DelayKind::kSlow;
  spec.rounds = 8;
  spec.seed = 21;
  spec.nic = sim::NicConfig{/*capacity=*/6, /*service_time=*/50e-6};

  spec.nic->drop = sim::NicDropPolicy::kDropOldest;
  const RunResult oldest = run_experiment(spec);
  spec.nic->drop = sim::NicDropPolicy::kDropNewest;
  const RunResult newest = run_experiment(spec);
  EXPECT_GT(oldest.nic.dropped, 0u);
  EXPECT_FALSE(oldest.diverged);
  EXPECT_TRUE(results_identical(oldest, newest));
}

TEST(NicOverflow, MixedFaultsUnderOverflowStaysMeasurable) {
  // Byzantine mixture + overflowing NICs on a sparse graph: the system may
  // degrade, but the run must complete and the accounting must cohere.
  RunSpec spec;
  spec.params = core::make_params(18, 5, 1e-5, 0.01, 1e-3, 10.0);
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 6;
  spec.fault_mix = {{FaultKind::kSilent, 1},
                    {FaultKind::kSpam, 1},
                    {FaultKind::kTwoFaced, 1}};
  spec.delay = DelayKind::kSlow;
  spec.rounds = 6;
  spec.seed = 3;
  spec.nic = sim::NicConfig{/*capacity=*/5, /*service_time=*/5e-4};
  const RunResult result = run_experiment(spec);
  EXPECT_GE(result.completed_rounds, 1);
  EXPECT_GT(result.nic.dropped, 0u);
  EXPECT_GE(result.nic.arrivals, result.nic.served + result.nic.dropped);
  EXPECT_GT(result.nic.worst_dropped, 0u);
  EXPECT_LE(result.nic.worst_dropped, result.nic.dropped);
  // Determinism under overflow + faults: same spec, same trace.
  const RunResult again = run_experiment(spec);
  EXPECT_TRUE(results_identical(result, again));
}

TEST(NicOverflow, StreamedTrialsCarryWallTelemetry) {
  // Satellite: per-trial wall-time telemetry surfaces through run_streaming.
  const std::vector<RunSpec> specs = seed_sweep(clustered_spec(8, 4), 1, 3);
  std::vector<double> streamed;
  const std::vector<RunResult> results = ParallelRunner(2).run_streaming(
      specs, [&](std::size_t, const RunResult& r) {
        streamed.push_back(r.wall_seconds);
      });
  ASSERT_EQ(streamed.size(), 3u);
  for (const RunResult& r : results) EXPECT_GT(r.wall_seconds, 0.0);
  // Telemetry must not affect the physics comparison.
  RunResult a = results[0];
  RunResult b = results[0];
  b.wall_seconds = a.wall_seconds + 123.0;
  EXPECT_TRUE(results_identical(a, b));
}

}  // namespace
}  // namespace wlsync::analysis
