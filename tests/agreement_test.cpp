// Theorem 16 (gamma-agreement) and the Section 4.1/7 convergence claims.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "util/stats.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
}

class AgreementSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AgreementSeeds, GammaBoundHoldsUnderWorstAdversary) {
  RunSpec spec;
  spec.params = standard(7, 2);
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 16;
  spec.seed = GetParam();
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementSeeds,
                         ::testing::Values(3, 17, 1001, 424242, 7777777));

// The halving property.  Benign executions converge *faster* than 1/2 per
// round (with exact delays one round suffices); the 1/2 factor is the worst
// case over adversaries, realized by the two-faced splitter, which pins one
// group's average to the low end of the kept range and the other's to the
// high end (Lemma 9/24: the midpoints then sit diam/2 apart).  Under that
// attack with eps ~ 0, the round-begin spread shrinks by a factor close to
// (and no worse than) 1/2 per round until it hits the noise floor.
TEST(Convergence, SpreadHalvesPerRoundUnderWorstCaseSplitter) {
  core::Params p;
  p.n = 4;
  p.f = 1;
  p.rho = 1e-7;
  p.delta = 0.01;
  p.eps = 1e-7;
  p.P = 1.0;
  p.beta = 0.004;  // generous: room to watch the decay
  ASSERT_TRUE(core::validate(p).empty());
  RunSpec spec;
  spec.params = p;
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 1;
  spec.delay = DelayKind::kSlow;  // exact delta+eps delays: no jitter at all
  spec.drift = DriftKind::kNone;
  spec.initial_spread = p.beta * 0.95;
  spec.rounds = 12;
  spec.seed = 5;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  ASSERT_GE(result.begin_spread.size(), 8u);
  int halvings = 0;
  for (std::size_t r = 0; r + 1 < result.begin_spread.size(); ++r) {
    if (result.begin_spread[r] > 2e-4) {  // well above the eps floor
      const double ratio = result.begin_spread[r + 1] / result.begin_spread[r];
      EXPECT_LE(ratio, 0.62) << "round " << r;  // Theorem: at most ~1/2
      ++halvings;
    }
  }
  EXPECT_GE(halvings, 3);
}

// And benign executions beat the worst case: with exact delays and no
// faults, one round collapses the spread outright.
TEST(Convergence, BenignExecutionCollapsesInOneRound) {
  core::Params p;
  p.n = 7;
  p.f = 2;
  p.rho = 1e-7;
  p.delta = 0.01;
  p.eps = 1e-7;
  p.P = 1.0;
  p.beta = 0.004;
  ASSERT_TRUE(core::validate(p).empty());
  RunSpec spec;
  spec.params = p;
  spec.delay = DelayKind::kSlow;
  spec.drift = DriftKind::kNone;
  spec.initial_spread = p.beta * 0.95;
  spec.rounds = 4;
  spec.seed = 5;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  ASSERT_GE(result.begin_spread.size(), 2u);
  EXPECT_GT(result.begin_spread[0], 0.9 * p.beta * 0.95);
  EXPECT_LT(result.begin_spread[1], 0.01 * p.beta);
}

// Section 10: "clocks stay synchronized to within about 4 eps": with tight
// parameters the steady-state skew is a small multiple of eps, far below
// delta.
TEST(Convergence, SteadyStateSkewIsEpsScaleNotDeltaScale) {
  core::Params p = core::make_params(7, 2, 1e-6, /*delta=*/0.05, /*eps=*/1e-3,
                                     /*P=*/5.0);
  RunSpec spec;
  spec.params = p;
  spec.rounds = 16;
  spec.seed = 9;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  // Within ~5 eps (beta ~ 4 eps + eps), despite delta = 50 eps.
  EXPECT_LE(result.gamma_measured, 6.0 * p.eps);
  EXPECT_LT(result.gamma_measured, p.delta / 5.0);
}

// The skew-at-round series must contract from a wide start to the floor and
// then *stay* there (no oscillation growth).
TEST(Convergence, NoRegrowthAfterConvergence) {
  RunSpec spec;
  spec.params = standard(4, 1);
  spec.rounds = 24;
  spec.seed = 31;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 1;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  ASSERT_GE(result.skew_at_round.size(), 20u);
  const double floor_estimate = result.skew_at_round.back();
  for (std::size_t r = 12; r < result.skew_at_round.size(); ++r) {
    EXPECT_LE(result.skew_at_round[r], std::max(6 * floor_estimate,
                                                result.gamma_bound));
  }
}

// Agreement must hold for every pair over *time*, not just at round marks:
// sample densely between rounds (covered by gamma_measured, which samples
// at P/25) — here we verify the spot samples never exceed round samples by
// more than the drift accumulated between samples.
TEST(Convergence, InterRoundSkewConsistent) {
  RunSpec spec;
  spec.params = standard(4, 1);
  spec.rounds = 10;
  spec.seed = 77;
  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_FALSE(result.diverged);
  const SkewSeries series =
      skew_series(experiment.simulator(), result.honest,
                  result.tmax0 + spec.params.P, result.t_end, spec.params.P / 50);
  EXPECT_LE(series.max_skew, result.gamma_bound * (1 + 1e-9));
}

}  // namespace
}  // namespace wlsync::analysis
