// Oracle tests: the production x-distance (greedy two-pointer matching) is
// checked against a brute-force optimum over all injections for small
// multisets, and reduce/mid are checked against their literal definitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "multiset/multiset_ops.h"
#include "util/rng.h"

namespace wlsync::ms {
namespace {

/// Brute force: minimum over all injections U -> V (|U| <= |V|) of the
/// number of elements u with |u - c(u)| > x.  Permutation enumeration, so
/// keep |V| <= 8.
std::size_t x_distance_oracle(const Multiset& u, const Multiset& v, double x) {
  if (u.size() > v.size()) return x_distance_oracle(v, u, x);
  std::vector<std::size_t> index(v.size());
  std::iota(index.begin(), index.end(), 0);
  std::size_t best = u.size();
  do {
    std::size_t unpaired = 0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (std::abs(u[i] - v[index[i]]) > x) ++unpaired;
    }
    best = std::min(best, unpaired);
  } while (std::next_permutation(index.begin(), index.end()));
  return best;
}

class XDistanceOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XDistanceOracle, GreedyMatchesBruteForce) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const auto nu = static_cast<std::size_t>(rng.range(1, 6));
    const auto nv = static_cast<std::size_t>(rng.range(nu, 7));
    Multiset u, v;
    for (std::size_t i = 0; i < nu; ++i) u.push_back(rng.uniform(-3.0, 3.0));
    for (std::size_t i = 0; i < nv; ++i) v.push_back(rng.uniform(-3.0, 3.0));
    // Sprinkle duplicates to stress multiset semantics.
    if (nu > 2 && rng.chance(0.5)) u[0] = u[1];
    if (nv > 2 && rng.chance(0.5)) v[0] = v[1];
    for (double x : {0.0, 0.2, 0.7, 2.0, 10.0}) {
      EXPECT_EQ(x_distance(u, v, x), x_distance_oracle(u, v, x))
          << "trial " << trial << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XDistanceOracle,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 12345));

TEST(ReduceOracle, MatchesSortDefinition) {
  util::Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const auto f = static_cast<std::size_t>(rng.range(0, 3));
    const auto n = static_cast<std::size_t>(rng.range(
        static_cast<std::int64_t>(2 * f + 1), 12));
    Multiset u;
    for (std::size_t i = 0; i < n; ++i) u.push_back(rng.uniform(-5.0, 5.0));
    Multiset sorted(u);
    std::sort(sorted.begin(), sorted.end());
    const Multiset expected(sorted.begin() + static_cast<std::ptrdiff_t>(f),
                            sorted.end() - static_cast<std::ptrdiff_t>(f));
    Multiset got = reduce(u, f);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(MidOracle, EqualsMeanOfExtremes) {
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Multiset u;
    const auto n = static_cast<std::size_t>(rng.range(1, 9));
    for (std::size_t i = 0; i < n; ++i) u.push_back(rng.uniform(-5.0, 5.0));
    const double lo = *std::min_element(u.begin(), u.end());
    const double hi = *std::max_element(u.begin(), u.end());
    EXPECT_DOUBLE_EQ(mid(u), 0.5 * (lo + hi));
    EXPECT_DOUBLE_EQ(diam(u), hi - lo);
  }
}

// The translation identities used silently throughout the analysis
// (Appendix: mid(U + r) = mid(U) + r, reduce(U + r) = reduce(U) + r).
TEST(TranslationInvariance, MidAndReduceCommuteWithShift) {
  util::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const auto f = static_cast<std::size_t>(rng.range(0, 2));
    const auto n = static_cast<std::size_t>(rng.range(
        static_cast<std::int64_t>(2 * f + 1), 10));
    Multiset u;
    for (std::size_t i = 0; i < n; ++i) u.push_back(rng.uniform(-5.0, 5.0));
    const double r = rng.uniform(-100.0, 100.0);
    Multiset shifted(u);
    for (double& value : shifted) value += r;
    EXPECT_NEAR(fault_tolerant_midpoint(shifted, f),
                fault_tolerant_midpoint(u, f) + r, 1e-9);
    EXPECT_NEAR(fault_tolerant_mean(shifted, f),
                fault_tolerant_mean(u, f) + r, 1e-9);
  }
}

}  // namespace
}  // namespace wlsync::ms
