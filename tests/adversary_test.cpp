// Adversary framework: honest processes cannot use Byzantine powers; each
// adversary behaves per its contract.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "clock/drift.h"
#include "proc/adversaries.h"
#include "proc/placement.h"
#include "sim/simulator.h"

namespace wlsync::proc {
namespace {

std::unique_ptr<clk::PhysicalClock> perfect_clock() {
  return std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0), 0.0,
                                              1e-4);
}

/// An honest process that (incorrectly) tries to read real time.
class Cheater : public Process {
 public:
  void on_start(Context& ctx) override {
    (void)AdversaryContext::from(ctx).real_time();
  }
  void on_timer(Context&, std::int32_t) override {}
  void on_message(Context&, const sim::Message&) override {}
};

TEST(AdversaryPowers, HonestProcessCannotUseThem) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Cheater>(), perfect_clock(), 0.0,
                  /*faulty=*/false, 0.0);
  EXPECT_THROW(sim.run_until(1.0), std::logic_error);
}

TEST(AdversaryPowers, FaultyProcessCanUseThem) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<Cheater>(), perfect_clock(), 0.0,
                  /*faulty=*/true, 0.0);
  EXPECT_NO_THROW(sim.run_until(1.0));
}

/// Counts received messages.
class Counter : public Process {
 public:
  void on_start(Context&) override {}
  void on_timer(Context&, std::int32_t) override {}
  void on_message(Context&, const sim::Message&) override { ++count; }
  int count = 0;
};

TEST(SpamAdversary, FloodsRecipients) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  SpamAdversary::Config spam;
  spam.period = 0.01;
  spam.burst = 5;
  sim.add_process(std::make_unique<SpamAdversary>(spam), perfect_clock(), 0.0,
                  true, 0.0);
  sim.add_process(std::make_unique<Counter>(), perfect_clock(), 0.0, false,
                  -1.0);
  sim.run_until(1.0);
  EXPECT_GT(sim.messages_sent(), 100u);
}

TEST(SilentAdversary, SendsNothing) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);
  sim.add_process(std::make_unique<SilentAdversary>(), perfect_clock(), 0.0,
                  true, 0.0);
  sim.add_process(std::make_unique<Counter>(), perfect_clock(), 0.0, false,
                  -1.0);
  sim.run_until(1.0);
  EXPECT_EQ(sim.messages_sent(), 0u);
}

/// Broadcasts one message on start and on every timer.
class Beacon : public Process {
 public:
  void on_start(Context& ctx) override {
    ctx.broadcast(/*tag=*/1, /*value=*/100.0, 0);
  }
  void on_timer(Context&, std::int32_t) override {}
  void on_message(Context&, const sim::Message&) override {}
};

TEST(TwoFacedAdversary, PredictsNextRoundAndSendsTwoFaces) {
  sim::SimConfig config;
  config.delta = 0.01;
  config.eps = 0.001;
  sim::Simulator sim(config, nullptr);
  TwoFacedAdversary::Config two_faced;
  two_faced.pivot = 1;       // id 0 gets the early face
  two_faced.honest_end = 3;  // ids 1, 2 get the late face
  two_faced.tag = 1;
  two_faced.P = 0.5;
  two_faced.delta = config.delta;
  two_faced.beta = 0.1;  // wide span so the two faces are clearly separated
  // id 0, 1: counters; id 2: beacon (honest trigger); id 3: adversary.
  sim.add_process(std::make_unique<Counter>(), perfect_clock(), 0.0, false, -1.0);
  sim.add_process(std::make_unique<Counter>(), perfect_clock(), 0.0, false, -1.0);
  sim.add_process(std::make_unique<Beacon>(), perfect_clock(), 0.0, false, 0.0);
  sim.add_process(std::make_unique<TwoFacedAdversary>(two_faced),
                  perfect_clock(), 0.0, true, 0.0);

  // Beacon's broadcast reaches the adversary at ~0.01; it schedules the
  // attack for the *predicted next round* at ~0.5: early face sent at
  // ~0.5 + 0.1*0.1, late at ~0.5 + 0.9*0.1.
  auto& early = dynamic_cast<Counter&>(sim.process(0));
  auto& late = dynamic_cast<Counter&>(sim.process(1));
  sim.run_until(0.05);
  EXPECT_EQ(early.count, 1);  // beacon only, attack still pending
  EXPECT_EQ(late.count, 1);
  sim.run_until(0.55);
  EXPECT_EQ(early.count, 2);  // early face landed
  EXPECT_EQ(late.count, 1);   // late face still pending
  sim.run_until(0.75);
  EXPECT_EQ(late.count, 2);   // late face landed
  EXPECT_EQ(early.count, 2);  // and only the chosen group got each face
}

// --------------------------------------------------------- sparse graphs ---
//
// The suite above exercises adversaries on the full mesh only.  These cases
// run the same fault kinds through the experiment harness on sparse
// exchange graphs, where honest processes clamp their clipping budget to
// the local neighbor view (f_local = (deg - 1) / 3): the two-faced attack
// must stay survivable even when every adversary sits at a structurally
// critical position and lies per-neighbor.

analysis::RunSpec sparse_fault_spec(net::TopologyKind kind) {
  analysis::RunSpec spec;
  spec.params = core::make_params(24, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 1;  // clique size 6 -> f_local = (6 - 1) / 3 = 1
  spec.rounds = 10;
  spec.seed = 808;
  spec.topology.kind = kind;
  spec.topology.clique_size = 6;
  spec.topology.degree = 6;
  return spec;
}

TEST(SparseFaults, TwoFacedAtJointsOfRingOfCliques) {
  analysis::RunSpec spec = sparse_fault_spec(net::TopologyKind::kRingOfCliques);
  spec.placement = PlacementKind::kArticulation;  // joints via degree fallback
  const analysis::RunResult result = analysis::run_experiment(spec);
  EXPECT_FALSE(result.diverged);
  EXPECT_GE(result.completed_rounds, spec.rounds);
  EXPECT_LT(result.gamma_measured, 10.0 * result.gamma_bound);
}

TEST(SparseFaults, TwoFacedOnExpanderEveryPlacement) {
  for (const PlacementKind placement :
       {PlacementKind::kTrailing, PlacementKind::kRandom,
        PlacementKind::kMaxDegree, PlacementKind::kAntipodal}) {
    analysis::RunSpec spec = sparse_fault_spec(net::TopologyKind::kKRegular);
    spec.placement = placement;
    const analysis::RunResult result = analysis::run_experiment(spec);
    EXPECT_FALSE(result.diverged) << placement_name(placement);
    EXPECT_GE(result.completed_rounds, spec.rounds) << placement_name(placement);
    EXPECT_LT(result.gamma_measured, 10.0 * result.gamma_bound)
        << placement_name(placement);
  }
}

TEST(SparseFaults, SilentAndSpamRespectLocalQuorums) {
  for (const analysis::FaultKind fault :
       {analysis::FaultKind::kSilent, analysis::FaultKind::kSpam}) {
    analysis::RunSpec spec = sparse_fault_spec(net::TopologyKind::kRingOfCliques);
    spec.fault = fault;
    spec.placement = PlacementKind::kRandom;
    const analysis::RunResult result = analysis::run_experiment(spec);
    EXPECT_FALSE(result.diverged) << static_cast<int>(fault);
    EXPECT_GE(result.completed_rounds, spec.rounds);
  }
}

TEST(CrashAdversary, StopsAtCrashTime) {
  sim::SimConfig config;
  sim::Simulator sim(config, nullptr);

  /// Inner process that broadcasts on every timer tick.
  class Ticker : public Process {
   public:
    void on_start(Context& ctx) override {
      ctx.set_timer(ctx.local_time() + 0.1, 1);
    }
    void on_timer(Context& ctx, std::int32_t) override {
      ctx.broadcast(0, 0.0, 0);
      ctx.set_timer(ctx.local_time() + 0.1, 1);
    }
    void on_message(Context&, const sim::Message&) override {}
  };

  sim.add_process(
      std::make_unique<CrashAdversary>(std::make_unique<Ticker>(), 0.55),
      perfect_clock(), 0.0, true, 0.0);
  sim.add_process(std::make_unique<Counter>(), perfect_clock(), 0.0, false,
                  -1.0);
  sim.run_until(2.0);
  auto& counter = dynamic_cast<Counter&>(sim.process(1));
  // Ticks at 0.1..0.5 broadcast (5 messages to each of 2 recipients); the
  // 0.6 tick is past the crash.
  EXPECT_EQ(counter.count, 5);
  EXPECT_TRUE(
      dynamic_cast<CrashAdversary&>(sim.process(0)).crashed());
}

}  // namespace
}  // namespace wlsync::proc
