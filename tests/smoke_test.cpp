// End-to-end smoke: a fault-free Welch-Lynch system stays within gamma.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync {
namespace {

TEST(Smoke, FaultFreeSystemStaysSynchronized) {
  analysis::RunSpec spec;
  spec.params = core::make_params(/*n=*/4, /*f=*/1, /*rho=*/1e-5,
                                  /*delta=*/0.01, /*eps=*/1e-3, /*P=*/10.0);
  spec.rounds = 10;
  spec.seed = 42;
  const analysis::RunResult result = analysis::run_experiment(spec);
  EXPECT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound);
  EXPECT_LE(result.max_abs_adj, result.adj_bound + 1e-12);
  EXPECT_TRUE(result.validity.holds);
}

}  // namespace
}  // namespace wlsync
