// Bit-identity pin for the ingestion overhaul (ISSUE 4): every averaging
// algorithm run with the dense ARR arena (IngestMode::kArena) must produce
// results_identical output — bitwise-equal skews, CORR-derived series,
// message counts, NIC accounting — to the seed's sparse id-indexed path
// (kLegacy), across topologies, fault mixes, paper variants, and NIC
// configurations.  This is the same standard PR 2 held the batched fan-out
// engine to: the refactor may only move nanoseconds, never a double.

#include <gtest/gtest.h>

#include "analysis/parallel_runner.h"

namespace wlsync::analysis {
namespace {

RunResult run_with(RunSpec spec, proc::IngestMode mode) {
  spec.ingest = mode;
  return run_experiment(spec);
}

void expect_modes_identical(const RunSpec& spec, const char* what) {
  const RunResult arena = run_with(spec, proc::IngestMode::kArena);
  const RunResult legacy = run_with(spec, proc::IngestMode::kLegacy);
  EXPECT_TRUE(results_identical(arena, legacy)) << what;
}

RunSpec base_spec(std::int32_t n, std::int32_t f) {
  RunSpec spec;
  spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  spec.seed = 11;
  return spec;
}

TEST(IngestPin, WelchLynchFullMesh) {
  expect_modes_identical(base_spec(13, 4), "plain WL, full mesh");
}

TEST(IngestPin, WelchLynchVariants) {
  RunSpec mean = base_spec(13, 4);
  mean.averaging = core::Averaging::kReducedMean;
  expect_modes_identical(mean, "reduced-mean averaging");

  RunSpec k2 = base_spec(10, 3);
  k2.k_exchanges = 2;
  expect_modes_identical(k2, "k = 2 exchanges");

  RunSpec staggered = base_spec(10, 3);
  staggered.stagger = 0.004;
  expect_modes_identical(staggered, "staggered broadcasts");

  RunSpec amortized = base_spec(10, 3);
  amortized.amortize = 1.5;
  expect_modes_identical(amortized, "amortized corrections");
}

TEST(IngestPin, WelchLynchSparseTopologies) {
  RunSpec cliques = base_spec(24, 7);
  cliques.topology.kind = net::TopologyKind::kRingOfCliques;
  cliques.topology.clique_size = 6;
  expect_modes_identical(cliques, "WL on ring of cliques");

  RunSpec kreg = base_spec(24, 7);
  kreg.topology.kind = net::TopologyKind::kKRegular;
  kreg.topology.degree = 8;
  expect_modes_identical(kreg, "WL on k-regular expander");
}

TEST(IngestPin, RoundExchangeFamily) {
  for (const Algo algo : {Algo::kLM, Algo::kMS, Algo::kPlainMean}) {
    RunSpec spec = base_spec(13, 4);
    spec.algo = algo;
    expect_modes_identical(spec, "round-exchange algorithm (mesh)");

    RunSpec sparse = base_spec(24, 7);
    sparse.algo = algo;
    sparse.topology.kind = net::TopologyKind::kRingOfCliques;
    sparse.topology.clique_size = 6;
    expect_modes_identical(sparse, "round-exchange algorithm (cliques)");
  }
}

TEST(IngestPin, SrikanthToueg) {
  RunSpec st = base_spec(13, 4);
  st.algo = Algo::kST;
  expect_modes_identical(st, "ST, full mesh");

  RunSpec sparse = base_spec(24, 7);
  sparse.algo = Algo::kST;
  sparse.topology.kind = net::TopologyKind::kKRegular;
  sparse.topology.degree = 10;
  expect_modes_identical(sparse, "ST on k-regular expander");
}

TEST(IngestPin, UnderFaults) {
  RunSpec twofaced = base_spec(13, 4);
  twofaced.fault = FaultKind::kTwoFaced;
  twofaced.fault_count = 2;
  expect_modes_identical(twofaced, "WL with two-faced faults");

  RunSpec mixed = base_spec(16, 5);
  mixed.fault_mix = {{FaultKind::kSilent, 1},
                     {FaultKind::kSpam, 1},
                     {FaultKind::kTwoFaced, 1}};
  expect_modes_identical(mixed, "WL with a heterogeneous fault mix");

  RunSpec st_spam = base_spec(13, 4);
  st_spam.algo = Algo::kST;
  st_spam.fault = FaultKind::kSpam;
  st_spam.fault_count = 2;
  expect_modes_identical(st_spam, "ST under spam faults");
}

TEST(IngestPin, UnboundedNicIsBitIdenticalAcrossIngestModes) {
  // The ISSUE 4 acceptance pin: with the NIC engaged but unbounded
  // (capacity = 0, pure serialization), the refactored ingestion produces
  // the pre-refactor traces exactly.
  RunSpec spec = base_spec(12, 3);
  spec.nic = sim::NicConfig{/*capacity=*/0, /*service_time=*/50e-6};
  expect_modes_identical(spec, "WL, unbounded NIC");

  RunSpec st = spec;
  st.algo = Algo::kST;
  expect_modes_identical(st, "ST, unbounded NIC");
}

TEST(IngestPin, OverflowingNicIsBitIdenticalAcrossIngestModes) {
  // Drops change WHICH arrivals land, identically for both ingest paths.
  RunSpec spec = base_spec(12, 3);
  spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/1e-3};
  expect_modes_identical(spec, "WL, overflowing NIC");
}

TEST(IngestPin, UnbatchedFanoutStillPins) {
  // The ingest axis is orthogonal to the fan-out engine: pin the arena
  // against legacy on the per-recipient scheduler too.
  RunSpec spec = base_spec(12, 3);
  spec.batch_fanout = false;
  expect_modes_identical(spec, "WL, per-recipient fan-out");
}

}  // namespace
}  // namespace wlsync::analysis
