// Bit-identity pin for the conservative PDES engine (engine/pdes.h): every
// spec run with EngineMode::kPdes must produce results_identical output —
// bitwise-equal skews, CORR-derived series, message counts, per-round
// traces — to the pure serial event engine, for EVERY worker count.  The
// partition only decides which lane executes an event and which messages
// ride channels; per-sender RNG order, seq allocation, and delivery times
// are preserved exactly, so the sharded execution is a reordering of the
// serial one that no measured quantity can detect.  Swept here across
// topologies, delay models (each with a different lookahead floor), fault
// mixes with adversaries placed ON the cut joints, NIC ingress, and
// worker counts 1 / 2 / 8.  The second half pins the dispatcher: kAuto
// prefers the fast path, falls back to PDES with an explicit worker count
// (pdes_workers >= 2) or the auto-tuner's pick (pdes_workers <= 0, the
// default), and kPdes refuses ineligible specs loudly.

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/parallel_runner.h"
#include "engine/pdes.h"

namespace wlsync::analysis {
namespace {

RunResult run_engine(RunSpec spec, EngineMode engine,
                     std::int32_t workers = 0) {
  spec.engine = engine;
  spec.pdes_workers = workers;
  return run_experiment(spec);
}

/// The central pin: for workers in {1, 2, 8} the PDES engine runs, makes
/// epoch progress, and the measured physics are bitwise those of the
/// serial event engine.
void expect_pdes_identical(const RunSpec& spec, const char* what) {
  const RunResult event = run_engine(spec, EngineMode::kEvent);
  EXPECT_EQ(event.pdes_epochs, 0) << what;
  for (const std::int32_t workers : {1, 2, 8}) {
    const RunResult pdes = run_engine(spec, EngineMode::kPdes, workers);
    EXPECT_GE(pdes.pdes_epochs, 1) << what << ", workers " << workers;
    EXPECT_TRUE(results_identical(event, pdes))
        << what << ", workers " << workers;
  }
}

RunSpec base_spec(std::int32_t n, std::int32_t f) {
  RunSpec spec;
  spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  spec.seed = 11;
  return spec;
}

RunSpec cliques_spec(std::int32_t n, std::int32_t f) {
  RunSpec spec = base_spec(n, f);
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 6;
  return spec;
}

RunSpec expander_spec(std::int32_t n, std::int32_t f) {
  RunSpec spec = base_spec(n, f);
  spec.topology.kind = net::TopologyKind::kKRegular;
  spec.topology.degree = 8;
  return spec;
}

// ------------------------------------------------------- identity pins ---

TEST(PdesPin, Topologies) {
  expect_pdes_identical(base_spec(16, 5), "WL, full mesh");
  expect_pdes_identical(cliques_spec(24, 7), "WL on ring of cliques");
  expect_pdes_identical(expander_spec(24, 7), "WL on k-regular expander");
}

TEST(PdesPin, DelayModels) {
  // Each model contributes a different conservative lookahead floor
  // (delta - eps for the stochastic ones, the exact value for the extremal
  // ones, the per-recipient minimum for kSplit); the executions must be
  // bit-identical under all of them.
  for (const DelayKind delay : {DelayKind::kUniform, DelayKind::kFast,
                                DelayKind::kSlow, DelayKind::kSplit,
                                DelayKind::kPerLink, DelayKind::kExpTrunc}) {
    RunSpec spec = cliques_spec(24, 7);
    spec.delay = delay;
    expect_pdes_identical(spec, "delay model sweep");
  }
}

TEST(PdesPin, FaultMixes) {
  // Faulty senders ignore the topology (a two-faced adversary's streams
  // reach every victim), so the lookahead drops to the global delay floor
  // — still positive, still conservative.
  RunSpec faulty = cliques_spec(24, 7);
  faulty.fault = FaultKind::kTwoFaced;
  faulty.fault_count = 2;
  expect_pdes_identical(faulty, "two-faced faults");

  RunSpec mixed = expander_spec(24, 7);
  mixed.fault_mix = {{FaultKind::kSilent, 1},
                     {FaultKind::kSpam, 1},
                     {FaultKind::kLiar, 1}};
  expect_pdes_identical(mixed, "heterogeneous fault mix");
}

TEST(PdesPin, AdversaryOnTheCutJoints) {
  // Articulation/bridge placement puts the adversary exactly where the
  // partitioner cuts (the inter-clique joints), so its per-neighbor faces
  // cross shard boundaries every round — the worst case for channel
  // ordering.
  RunSpec spec = cliques_spec(24, 7);
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.placement = proc::PlacementKind::kArticulation;
  expect_pdes_identical(spec, "adversary on the cut joints");
}

TEST(PdesPin, NicIngress) {
  // Store-and-forward NIC arrivals ride the channels as kNicArrive events;
  // per-port service queues are lane-local state and never cross a cut.
  RunSpec nic = cliques_spec(24, 7);
  nic.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/50e-6};
  expect_pdes_identical(nic, "NIC ingress model");

  RunSpec nic_faulty = nic;
  nic_faulty.fault = FaultKind::kSpam;
  nic_faulty.fault_count = 2;
  expect_pdes_identical(nic_faulty, "NIC ingress + spam overflow");
}

TEST(PdesPin, DriftAndVariants) {
  RunSpec drift = expander_spec(24, 7);
  drift.drift = DriftKind::kRandomWalk;
  expect_pdes_identical(drift, "random-walk drift");

  RunSpec amortized = cliques_spec(24, 7);
  amortized.amortize = 1.5;
  amortized.averaging = core::Averaging::kReducedMean;
  expect_pdes_identical(amortized, "amortized reduced-mean");

  RunSpec unbatched = cliques_spec(24, 7);
  unbatched.batch_fanout = false;
  expect_pdes_identical(unbatched, "per-recipient fan-out");
}

TEST(PdesPin, MeasurementKnobs) {
  // Gradient measurement reads retained clock histories after the run;
  // per-lane RoundTraces fold back into the experiment trace, so the
  // per-round spread/skew series match bitwise too.
  RunSpec gradient = expander_spec(24, 7);
  gradient.measure_gradient = true;
  expect_pdes_identical(gradient, "gradient measurement");
}

TEST(PdesPin, DeterministicUnderParallelRunner) {
  // PDES trials inside the trial-parallel runner: worker threads nest, and
  // every (spec, workers) cell stays bit-identical whatever the pool size.
  RunSpec base = cliques_spec(24, 7);
  base.engine = EngineMode::kPdes;
  base.pdes_workers = 4;
  const std::vector<RunSpec> specs = seed_sweep(base, 700, 4);
  const std::vector<RunResult> serial = ParallelRunner(1).run(specs);
  const std::vector<RunResult> sharded = ParallelRunner(4).run(specs);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], sharded[i])) << "trial " << i;
    EXPECT_GE(serial[i].pdes_epochs, 1) << "trial " << i;
  }
}

// --------------------------------------------------- dispatch & telemetry ---

TEST(PdesDispatch, AutoPrefersTheFastPath) {
  // A fault-free full-mesh WL spec is fast-path eligible; kAuto must pick
  // the fast path even when the spec also opted into PDES.
  RunSpec spec = base_spec(13, 4);
  const RunResult autod = run_engine(spec, EngineMode::kAuto, /*workers=*/8);
  EXPECT_TRUE(autod.fastpath_engaged);
  EXPECT_EQ(autod.pdes_epochs, 0);
  EXPECT_TRUE(results_identical(run_engine(spec, EngineMode::kEvent), autod));
}

TEST(PdesDispatch, AutoPrefersRegionFastPathOverPdes) {
  // Faults on a sparse topology are fast-path eligible since ISSUE 8 (the
  // fault-isolating region mode); kAuto must pick the fast path ahead of
  // PDES even when the spec also opted into workers.
  RunSpec spec = cliques_spec(24, 7);
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  const RunResult autod = run_engine(spec, EngineMode::kAuto, /*workers=*/4);
  EXPECT_TRUE(autod.fastpath_engaged);
  EXPECT_EQ(autod.pdes_epochs, 0);
  EXPECT_TRUE(results_identical(run_engine(spec, EngineMode::kEvent), autod));
}

TEST(PdesDispatch, AutoFallsBackToPdes) {
  // Legacy ingest blocks the fast path (region mode included); with
  // pdes_workers >= 2 kAuto shards, and the refusal reason is recorded
  // instead of evaporating (the ISSUE 8 silent-fallback fix).
  RunSpec spec = cliques_spec(24, 7);
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.ingest = proc::IngestMode::kLegacy;
  const RunResult autod = run_engine(spec, EngineMode::kAuto, /*workers=*/4);
  EXPECT_FALSE(autod.fastpath_engaged);
  EXPECT_EQ(autod.fastpath_refusal, "legacy arrival ingestion");
  EXPECT_GE(autod.pdes_epochs, 1);
  EXPECT_TRUE(results_identical(run_engine(spec, EngineMode::kEvent), autod));
}

TEST(PdesDispatch, AutoTuneDeclinesAndSaysWhy) {
  // pdes_workers = 0 (the default) consults the auto-tuner when the fast
  // path cannot engage.  At n = 24 every candidate shard count leaves
  // lanes far below the 64-process floor, so the run stays serial — and
  // pdes_refusal records the auto-tune verdict instead of evaporating.
  RunSpec spec = cliques_spec(24, 7);
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.ingest = proc::IngestMode::kLegacy;
  const RunResult autod = run_engine(spec, EngineMode::kAuto);
  EXPECT_FALSE(autod.fastpath_engaged);
  EXPECT_EQ(autod.fastpath_refusal, "legacy arrival ingestion");
  EXPECT_EQ(autod.pdes_epochs, 0);
  EXPECT_EQ(autod.pdes_workers_used, 0);
  EXPECT_TRUE(autod.pdes_refusal.rfind("auto-tune declined:", 0) == 0)
      << autod.pdes_refusal;

  // pdes_workers = 1 opts kAuto out of the PDES path entirely: serial was
  // requested by name, so there is nothing to refuse.
  const RunResult serial = run_engine(spec, EngineMode::kAuto, /*workers=*/1);
  EXPECT_EQ(serial.pdes_epochs, 0);
  EXPECT_EQ(serial.pdes_refusal, "");
}

TEST(PdesDispatch, AutoTuneEngagesWhereLanesAreThickEnough) {
  // 512 processes in a ring of 6-cliques: candidate k = 8 keeps exactly 64
  // per lane and the cut is a few dozen bridge edges — the auto-tuner's
  // easiest yes.  Identical physics to the serial reference, workers_used
  // reported.
  engine::PdesTuner::instance().reset();
  RunSpec spec = cliques_spec(512, 64);
  spec.ingest = proc::IngestMode::kLegacy;  // keep the fast path out
  const RunResult serial = run_engine(spec, EngineMode::kEvent);
  const RunResult autod = run_engine(spec, EngineMode::kAuto);
  EXPECT_FALSE(autod.fastpath_engaged);
  EXPECT_EQ(autod.pdes_refusal, "") << autod.pdes_refusal;
  EXPECT_GE(autod.pdes_epochs, 1);
  EXPECT_EQ(autod.pdes_workers_used, 8);
  EXPECT_TRUE(results_identical(serial, autod));
}

TEST(PdesDispatch, StallTelemetryDemotesAWorkerCount) {
  // A recorded stall rate above the demotion ceiling steers the next
  // auto-tuned run at that (n, k) to the next candidate down.
  engine::PdesTuner::instance().reset();
  engine::PdesTuner::instance().record(512, 8, 0.9);
  RunSpec spec = cliques_spec(512, 64);
  spec.ingest = proc::IngestMode::kLegacy;
  const RunResult demoted = run_engine(spec, EngineMode::kAuto);
  EXPECT_EQ(demoted.pdes_refusal, "") << demoted.pdes_refusal;
  EXPECT_EQ(demoted.pdes_workers_used, 4);
  EXPECT_EQ(engine::PdesTuner::instance().stall_rate(512, 8), 0.9);
  engine::PdesTuner::instance().reset();
  EXPECT_LT(engine::PdesTuner::instance().stall_rate(512, 8), 0.0);
}

TEST(PdesDispatch, ForcedPdesRefusesIneligibleSpecs) {
  // Default worker count = auto-tune, which declines at n = 24 (lanes
  // thinner than the floor) — and kPdes turns that refusal into a throw.
  EXPECT_THROW((void)run_engine(cliques_spec(24, 7), EngineMode::kPdes),
               std::invalid_argument);

  // Streaming observation is a single-threaded API (one observer, one
  // monotone drain cursor) — the sharded engine must refuse it.
  RunSpec observed = cliques_spec(24, 7);
  observed.observe = true;
  EXPECT_THROW((void)run_engine(observed, EngineMode::kPdes, /*workers=*/4),
               std::invalid_argument);
}

TEST(PdesTelemetry, EpochsTrackTheLookaheadWindow) {
  // Single shard: no cut edges, infinite lookahead, the whole horizon is
  // one conservative window.
  const RunResult one = run_engine(cliques_spec(24, 7), EngineMode::kPdes,
                                   /*workers=*/1);
  EXPECT_GE(one.pdes_epochs, 1);
  EXPECT_LE(one.pdes_epochs, 2);

  // Sharded: the epoch count scales with horizon / lookahead — many
  // windows, each strictly meaningful progress (stalls bounded by epochs).
  const RunResult eight = run_engine(cliques_spec(24, 7), EngineMode::kPdes,
                                     /*workers=*/8);
  EXPECT_GT(eight.pdes_epochs, one.pdes_epochs);
  EXPECT_GE(eight.pdes_stalls, 0);
  EXPECT_LE(eight.pdes_stalls, eight.pdes_epochs);
}

}  // namespace
}  // namespace wlsync::analysis
