// Section 9.2: establishing synchronization from arbitrary clock values.
// Lemma 20: B^{i+1} <= B^i/2 + 2 eps + 2 rho (11 delta + 39 eps); the limit
// is about 4 eps.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
}

class StartupSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StartupSeeds, Lemma20ContractionAndLimit) {
  StartupSpec spec;
  spec.params = standard(7, 2);
  spec.rounds = 14;
  spec.initial_clock_spread = 5.0;  // clocks start up to 5 s apart (arbitrary)
  spec.seed = GetParam();
  const StartupResult result = run_startup(spec);
  ASSERT_GE(result.b_series.size(), 10u);

  // Per-round contraction while above the noise floor (near the floor the
  // series bounces within the Lemma 20 limit; contraction is only asserted
  // where the B/2 term dominates).  Small additive fudge: B is sampled at
  // the latest begin, a delta-scale moment after the adjustments land.
  for (std::size_t i = 0; i + 1 < result.b_series.size(); ++i) {
    if (result.b_series[i] < 3.0 * result.limit) continue;
    EXPECT_LE(result.b_series[i + 1],
              result.b_series[i] / 2 + result.round_slack +
                  2 * spec.params.eps)
        << "round " << i;
  }
  // The limit: about 4 eps (allow sampling slack).
  EXPECT_LE(result.final_b, 2.5 * result.limit + 2 * spec.params.eps);
  // And the spread really did collapse by orders of magnitude.
  EXPECT_LT(result.final_b, spec.initial_clock_spread / 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StartupSeeds, ::testing::Values(1, 2, 3, 55, 99));

TEST(Startup, ToleratesSilentFaults) {
  StartupSpec spec;
  spec.params = standard(7, 2);
  spec.rounds = 12;
  spec.initial_clock_spread = 2.0;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.seed = 4;
  const StartupResult result = run_startup(spec);
  ASSERT_GE(result.b_series.size(), 8u);
  EXPECT_LT(result.final_b, spec.initial_clock_spread / 50.0);
}

TEST(Startup, ToleratesSpamFaults) {
  StartupSpec spec;
  spec.params = standard(7, 2);
  spec.rounds = 12;
  spec.initial_clock_spread = 2.0;
  spec.fault = FaultKind::kSpam;
  spec.fault_count = 2;
  spec.seed = 5;
  const StartupResult result = run_startup(spec);
  ASSERT_GE(result.b_series.size(), 8u);
  EXPECT_LT(result.final_b, spec.initial_clock_spread / 50.0);
}

TEST(Startup, HugeInitialSpreadStillConverges) {
  StartupSpec spec;
  spec.params = standard(4, 1);
  spec.rounds = 24;
  spec.initial_clock_spread = 1000.0;  // ~17 minutes apart
  spec.seed = 6;
  const StartupResult result = run_startup(spec);
  ASSERT_GE(result.b_series.size(), 20u);
  EXPECT_LE(result.final_b, 3.0 * result.limit + 2 * spec.params.eps);
}

TEST(Startup, StreamingObservationIsBitIdentical) {
  // StartupSpec::observe used to be silently ignored; now it switches the
  // b_series measurement to the streaming round-boundary accumulator.  The
  // observer folds the same walkers in the same id order at the same
  // instants as the post-hoc skew_at scans, so every measured double must
  // be bitwise equal — across fault-free, faulty, and handoff runs.
  for (const bool faults : {false, true}) {
    StartupSpec spec;
    spec.params = standard(7, 2);
    spec.rounds = 12;
    spec.initial_clock_spread = 2.0;
    spec.handoff = true;
    spec.seed = 8;
    if (faults) {
      spec.fault = FaultKind::kSilent;
      spec.fault_count = 2;
    }
    const StartupResult plain = run_startup(spec);
    spec.observe = true;
    const StartupResult observed = run_startup(spec);

    EXPECT_FALSE(plain.observe.enabled);
    EXPECT_TRUE(observed.observe.enabled);
    EXPECT_GT(observed.observe.round_marks, 0u);
    ASSERT_EQ(plain.b_series.size(), observed.b_series.size())
        << "faults " << faults;
    for (std::size_t i = 0; i < plain.b_series.size(); ++i) {
      EXPECT_EQ(plain.b_series[i], observed.b_series[i])
          << "faults " << faults << ", round " << i;
    }
    EXPECT_EQ(plain.final_b, observed.final_b) << "faults " << faults;
    EXPECT_EQ(plain.handoff_done, observed.handoff_done);
    EXPECT_EQ(plain.post_handoff_skew, observed.post_handoff_skew);
  }
}

TEST(Startup, HandoffToMaintenanceWorks) {
  StartupSpec spec;
  spec.params = standard(4, 1);
  spec.rounds = 12;
  spec.initial_clock_spread = 2.0;
  spec.handoff = true;
  spec.seed = 7;
  const StartupResult result = run_startup(spec);
  EXPECT_TRUE(result.handoff_done);
  // Post-handoff the maintenance algorithm holds its own gamma.
  const core::Derived d = core::derive(spec.params);
  EXPECT_LE(result.post_handoff_skew, d.gamma * (1 + 1e-9));
}

}  // namespace
}  // namespace wlsync::analysis
