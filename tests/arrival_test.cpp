// The dense arrival arena (proc/arrival.h): slot mapping, allocation-free
// reductions pinned value-exact against multiset/multiset_ops.h, and the
// counters the CI perf-smoke gate relies on.

#include <gtest/gtest.h>

#include <vector>

#include "multiset/multiset_ops.h"
#include "proc/arrival.h"
#include "util/rng.h"

namespace wlsync::proc {
namespace {

std::vector<std::int32_t> identity_ids(std::int32_t n) {
  std::vector<std::int32_t> ids(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

/// The algorithm layer's "never arrived" sentinel, restated locally so the
/// arena tests stay independent of core/.
double core_sentinel() { return -1e300; }

TEST(NeighborIndex, MapsSortedNeighborhoodToDenseSlots) {
  NeighborIndex index;
  const std::vector<std::int32_t> neighbors = {2, 5, 7, 11};
  index.bind({neighbors.data(), neighbors.size()}, 16);
  EXPECT_TRUE(index.bound());
  EXPECT_EQ(index.size(), 4u);
  EXPECT_FALSE(index.identity());
  EXPECT_EQ(index.slot_of(2), 0);
  EXPECT_EQ(index.slot_of(5), 1);
  EXPECT_EQ(index.slot_of(7), 2);
  EXPECT_EQ(index.slot_of(11), 3);
  EXPECT_EQ(index.slot_of(0), -1);   // non-neighbor
  EXPECT_EQ(index.slot_of(15), -1);  // non-neighbor
  EXPECT_EQ(index.slot_of(-1), -1);  // out of range
  EXPECT_EQ(index.slot_of(99), -1);  // out of range
}

TEST(NeighborIndex, DetectsIdentityMapping) {
  NeighborIndex index;
  const auto ids = identity_ids(8);
  index.bind({ids.data(), ids.size()}, 8);
  EXPECT_TRUE(index.identity());
  // A proper subset is never the identity, even when slots line up early.
  NeighborIndex sparse;
  const std::vector<std::int32_t> prefix = {0, 1, 2};
  sparse.bind({prefix.data(), prefix.size()}, 8);
  EXPECT_FALSE(sparse.identity());
}

TEST(NeighborIndex, RejectsBadBinds) {
  NeighborIndex index;
  const std::vector<std::int32_t> bad = {0, 9};
  EXPECT_THROW(index.bind({bad.data(), bad.size()}, 4), std::invalid_argument);
  EXPECT_THROW(index.bind({bad.data(), bad.size()}, 0), std::invalid_argument);
}

TEST(ArrivalArena, RecordsByDenseSlotAndIgnoresNonNeighbors) {
  ArrivalArena arena;
  const std::vector<std::int32_t> neighbors = {1, 3, 4};
  arena.bind({neighbors.data(), neighbors.size()}, 6, -1.0);
  EXPECT_EQ(arena.size(), 3u);
  for (double v : arena.values()) EXPECT_EQ(v, -1.0);

  arena.record(3, 2.5);
  arena.record(1, 9.0);
  arena.record(5, 123.0);  // id 5 is registered but not a neighbor: dropped
  EXPECT_EQ(arena.values()[0], 9.0);
  EXPECT_EQ(arena.values()[1], 2.5);
  EXPECT_EQ(arena.values()[2], -1.0);

  arena.fill(0.25);
  for (double v : arena.values()) EXPECT_EQ(v, 0.25);
}

TEST(ArrivalArena, MidpointMatchesMultisetOpsExactly) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto m = static_cast<std::int32_t>(3 + rng.uniform() * 600);
    const auto f = static_cast<std::size_t>(rng.uniform() *
                                            static_cast<double>((m - 1) / 2));
    ArrivalArena arena;
    const auto ids = identity_ids(m);
    arena.bind({ids.data(), ids.size()}, m, 0.0);
    ms::Multiset values(static_cast<std::size_t>(m));
    for (std::size_t i = 0; i < values.size(); ++i) {
      // Mix magnitudes and force ties so the selection sees equal runs.
      double v = rng.uniform(-1.0, 1.0);
      if (rng.uniform() < 0.3) v = 0.5;
      values[i] = v;
      arena.set_slot(i, v);
    }
    ASSERT_EQ(arena.midpoint_reduced(f), ms::fault_tolerant_midpoint(values, f))
        << "m=" << m << " f=" << f << " trial=" << trial;
  }
}

TEST(ArrivalArena, MeanMatchesMultisetOpsExactly) {
  util::Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const auto m = static_cast<std::int32_t>(3 + rng.uniform() * 400);
    const auto f = static_cast<std::size_t>(rng.uniform() *
                                            static_cast<double>((m - 1) / 2));
    ArrivalArena arena;
    const auto ids = identity_ids(m);
    arena.bind({ids.data(), ids.size()}, m, 0.0);
    ms::Multiset values(static_cast<std::size_t>(m));
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = rng.uniform(-1e3, 1e3);
      arena.set_slot(i, values[i]);
    }
    // Bitwise equality: the scratch mean accumulates in the same ascending
    // order as ms::mean over the reduce() slice.
    ASSERT_EQ(arena.mean_reduced(f), ms::fault_tolerant_mean(values, f))
        << "m=" << m << " f=" << f << " trial=" << trial;
  }
}

TEST(ArrivalArena, MinimalMultisetAndSentinels) {
  // |U| = 2f + 1: reduce leaves one element; midpoint == mean == that value.
  ArrivalArena arena;
  const auto ids = identity_ids(7);
  arena.bind({ids.data(), ids.size()}, 7, core_sentinel());
  for (std::size_t i = 0; i < 7; ++i) {
    arena.set_slot(i, static_cast<double>(i));
  }
  EXPECT_EQ(arena.midpoint_reduced(3), 3.0);
  EXPECT_EQ(arena.mean_reduced(3), 3.0);
  EXPECT_THROW(arena.midpoint_reduced(4), std::invalid_argument);
}

TEST(ArrivalArena, ReductionsAreCountedAndRebindIsExplicit) {
  ArrivalArena arena;
  const auto ids = identity_ids(9);
  arena.bind({ids.data(), ids.size()}, 9, 0.0);
  EXPECT_EQ(arena.rebinds(), 1u);
  EXPECT_EQ(arena.reductions(), 0u);
  (void)arena.midpoint_reduced(2);
  (void)arena.mean_reduced(2);
  EXPECT_EQ(arena.reductions(), 2u);
}

}  // namespace
}  // namespace wlsync::proc
