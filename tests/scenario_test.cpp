// Pins for the composable scenario API:
//   - ScenarioSpec is the RunSpec's base subobject (aliasing, not a copy);
//   - the unified analysis::run() dispatches on RunSpec::mode and the three
//     historical entry points are bit-identical wrappers over it;
//   - the arbitrary-initial-state (self-stabilization) workload measures a
//     deterministic stabilization round / time;
//   - the adaptive-adversary env reproduces bit for bit under the same
//     action sequence, and different actions change the physics.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/parallel_runner.h"
#include "core/params.h"
#include "scenario/adversary_env.h"

namespace {

using namespace wlsync;
using analysis::RunResult;
using analysis::RunSpec;

RunSpec small_spec() {
  RunSpec spec;
  spec.params = core::make_params(8, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 10;
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 1;
  spec.seed = 42;
  return spec;
}

TEST(ScenarioSpec, IsTheRunSpecBaseSubobjectNotACopy) {
  RunSpec spec = small_spec();
  // The nested view IS the flat spec: same address, same bytes.
  analysis::ScenarioSpec& nested = spec.scenario();
  EXPECT_EQ(static_cast<analysis::ScenarioSpec*>(&spec), &nested);

  // Historical flat access and the nested view read the same field...
  EXPECT_EQ(spec.fault, nested.fault);
  EXPECT_EQ(spec.fault_count, nested.fault_count);

  // ...and a mutation through either side is visible through the other.
  nested.fault_count = 2;
  EXPECT_EQ(spec.fault_count, 2);
  spec.placement = proc::PlacementKind::kMaxDegree;
  EXPECT_EQ(nested.placement, proc::PlacementKind::kMaxDegree);

  const RunSpec& cspec = spec;
  EXPECT_EQ(&cspec.scenario(), static_cast<const analysis::ScenarioSpec*>(&cspec));
}

TEST(ScenarioSpec, ScenarioSliceIsCopyableAsOneValue) {
  RunSpec a = small_spec();
  a.topology.kind = net::TopologyKind::kRingOfCliques;
  a.topology.clique_size = 4;
  a.dynamics.fail_link(50.0, 0, 1).heal_link(80.0, 0, 1);

  // A scenario generator composes the WHO/WHERE/WHAT/HOW slice wholesale.
  RunSpec b;
  b.params = a.params;
  b.rounds = a.rounds;
  b.seed = a.seed;
  b.scenario() = a.scenario();
  EXPECT_EQ(b.fault, analysis::FaultKind::kTwoFaced);
  EXPECT_EQ(b.topology.kind, net::TopologyKind::kRingOfCliques);
  ASSERT_EQ(b.dynamics.events.size(), 2u);

  const RunResult ra = analysis::run(a);
  const RunResult rb = analysis::run(b);
  EXPECT_TRUE(analysis::results_identical(ra, rb));
}

TEST(UnifiedRun, RunExperimentWrapperIsBitIdentical) {
  const RunSpec spec = small_spec();
  const RunResult via_run = analysis::run(spec);
  const RunResult via_wrapper = analysis::run_experiment(spec);
  EXPECT_TRUE(analysis::results_identical(via_run, via_wrapper));
  EXPECT_FALSE(via_run.startup.has_value());
  EXPECT_FALSE(via_run.reintegration.has_value());
  EXPECT_GT(via_run.wall_seconds, 0.0);
}

TEST(UnifiedRun, StartupModeEmbedsTheLegacyResultExactly) {
  analysis::StartupSpec legacy;
  legacy.params = core::make_params(8, 1, 1e-5, 0.01, 1e-3, 10.0);
  legacy.rounds = 8;
  legacy.handoff = true;
  legacy.initial_clock_spread = 1.5;
  legacy.fault = analysis::FaultKind::kSilent;
  legacy.fault_count = 1;
  legacy.seed = 9;

  RunSpec unified;
  unified.mode = analysis::RunMode::kStartup;
  unified.params = legacy.params;
  unified.rounds = legacy.rounds;
  unified.startup_handoff = legacy.handoff;
  unified.initial_clock_spread = legacy.initial_clock_spread;
  unified.fault = legacy.fault;
  unified.fault_count = legacy.fault_count;
  unified.delay = legacy.delay;
  unified.drift = legacy.drift;
  unified.seed = legacy.seed;

  const analysis::StartupResult a = analysis::run_startup(legacy);
  const RunResult r = analysis::run(unified);
  ASSERT_TRUE(r.startup.has_value());
  const analysis::StartupResult& b = *r.startup;

  EXPECT_EQ(a.b_series, b.b_series);  // bitwise: same doubles, same order
  EXPECT_EQ(a.round_slack, b.round_slack);
  EXPECT_EQ(a.limit, b.limit);
  EXPECT_EQ(a.final_b, b.final_b);
  EXPECT_EQ(a.handoff_done, b.handoff_done);
  EXPECT_EQ(a.post_handoff_skew, b.post_handoff_skew);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(UnifiedRun, ReintegrationModeEmbedsTheLegacyResultExactly) {
  analysis::ReintegrationSpec legacy;
  legacy.params = core::make_params(8, 1, 1e-5, 0.01, 1e-3, 10.0);
  legacy.crash_at = 15.0;
  legacy.wake_at = 55.0;
  legacy.rounds = 14;
  legacy.seed = 3;

  RunSpec unified;
  unified.mode = analysis::RunMode::kReintegration;
  unified.params = legacy.params;
  unified.crash_at = legacy.crash_at;
  unified.wake_at = legacy.wake_at;
  unified.rounds = legacy.rounds;
  unified.delay = legacy.delay;
  unified.drift = legacy.drift;
  unified.seed = legacy.seed;

  const analysis::ReintegrationResult a = analysis::run_reintegration(legacy);
  const RunResult r = analysis::run(unified);
  ASSERT_TRUE(r.reintegration.has_value());
  const analysis::ReintegrationResult& b = *r.reintegration;

  EXPECT_EQ(a.rejoined, b.rejoined);
  EXPECT_EQ(a.join_time, b.join_time);
  EXPECT_EQ(a.join_round, b.join_round);
  EXPECT_EQ(a.spread_with_joiner, b.spread_with_joiner);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.skew_after, b.skew_after);
  EXPECT_EQ(a.gamma_bound, b.gamma_bound);
  EXPECT_TRUE(a.rejoined);
}

TEST(Stabilization, AlignedStartIsStableFromTheFirstRound) {
  const RunSpec spec = small_spec();
  const RunResult r = analysis::run(spec);
  // A healthy aligned run never exceeds 2 * gamma, so the suffix scan
  // reports stabilization at round 0 with zero elapsed time.
  EXPECT_EQ(r.stabilized_round, 0);
  EXPECT_EQ(r.stabilization_time, 0.0);
}

// Arbitrary-initial-state workload: the collection window must be able to
// CAPTURE the injected disagreement (arrivals outside ~beta are clipped and
// the halves never re-join — the paper's algorithm is not self-stabilizing
// at its tuned window), so the window is widened and the stabilization
// story is measured against an explicit threshold.
RunSpec arbitrary_state_spec() {
  RunSpec spec = small_spec();
  spec.fault = analysis::FaultKind::kNone;
  spec.fault_count = 0;
  spec.rounds = 16;
  spec.params.beta = 0.5;           // widened window: capture range ~0.5
  spec.initial_clock_spread = 0.2;  // CORR starts uniform in [0, 0.2); the
                                    // A4 start spread (0.9 * beta) rides on
                                    // top, so larger values escape capture
  spec.stabilize_threshold = 0.05;
  return spec;
}

TEST(Stabilization, ArbitraryInitialStateStabilizesDeterministically) {
  const RunSpec spec = arbitrary_state_spec();
  const RunResult r = analysis::run(spec);
  ASSERT_FALSE(r.diverged);
  // The arbitrary logical-clock state breaks agreement at round 0 and the
  // averaging contracts it: stabilization happens, but not instantly.
  EXPECT_GT(r.stabilized_round, 0);
  EXPECT_LT(r.stabilized_round, r.completed_rounds);
  EXPECT_GT(r.stabilization_time, 0.0);
  // Round-0 skew reflects the injected spread; the suffix is tight.
  EXPECT_GT(r.skew_at_round.front(), spec.stabilize_threshold);

  // Same seed, same measurement — bit for bit.
  const RunResult again = analysis::run(spec);
  EXPECT_TRUE(analysis::results_identical(r, again));
  EXPECT_EQ(r.stabilized_round, again.stabilized_round);
  EXPECT_EQ(r.stabilization_time, again.stabilization_time);

  // A different seed draws different arbitrary state.
  RunSpec other = spec;
  other.seed = spec.seed + 1;
  const RunResult shifted = analysis::run(other);
  EXPECT_FALSE(analysis::results_identical(r, shifted));
}

TEST(Stabilization, CustomThresholdShiftsTheMeasuredRound) {
  const RunSpec spec = arbitrary_state_spec();
  RunSpec loose = spec;
  loose.stabilize_threshold = 1.0;  // wider than the injected spread
  const RunResult tight = analysis::run(spec);
  const RunResult relaxed = analysis::run(loose);
  // The looser threshold can only stabilize earlier (same physics).
  ASSERT_GT(tight.stabilized_round, 0);
  EXPECT_LE(relaxed.stabilized_round, tight.stabilized_round);
  EXPECT_EQ(relaxed.stabilized_round, 0);
  EXPECT_EQ(relaxed.skew_at_round, tight.skew_at_round);
}

TEST(AdversaryEnv, SameActionSequenceReproducesBitForBit) {
  scenario::AdversaryEnv::Config config;
  config.spec = small_spec();
  config.spec.rounds = 8;
  config.warmup_rounds = 2;

  const auto episode = [&] {
    scenario::AdversaryEnv env(config);
    scenario::AdversaryObservation obs = env.reset();
    scenario::AdversaryAction action;
    std::vector<double> skews;
    while (!obs.done) {
      action.early_frac += 0.05;  // a nontrivial, deterministic policy
      obs = env.step(action);
      skews.push_back(obs.round_skew);
    }
    skews.push_back(env.finish());
    return skews;
  };

  const std::vector<double> a = episode();
  const std::vector<double> b = episode();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // bitwise-equal doubles, step by step
}

TEST(AdversaryEnv, RetunedActionsChangeThePhysics) {
  scenario::AdversaryEnv::Config config;
  config.spec = small_spec();
  config.spec.rounds = 8;

  const auto final_skew = [&](double early, double late) {
    scenario::AdversaryEnv env(config);
    scenario::AdversaryObservation obs = env.reset();
    scenario::AdversaryAction action;
    action.early_frac = early;
    action.late_frac = late;
    while (!obs.done) obs = env.step(action);
    return env.finish();
  };

  const double near_edges = final_skew(0.02, 0.98);
  const double near_center = final_skew(0.45, 0.55);
  EXPECT_GT(near_edges, 0.0);
  EXPECT_GT(near_center, 0.0);
  // Moving the forged faces is not a no-op: the retune reaches the
  // adversary processes and alters the measured steady-state skew.
  EXPECT_NE(near_edges, near_center);
}

TEST(AdversaryEnv, RejectsSpecsWithoutATwoFacedAdversary) {
  scenario::AdversaryEnv::Config config;
  config.spec = small_spec();
  config.spec.fault = analysis::FaultKind::kSilent;
  EXPECT_THROW(scenario::AdversaryEnv env(config), std::invalid_argument);

  scenario::AdversaryEnv::Config startup;
  startup.spec = small_spec();
  startup.spec.mode = analysis::RunMode::kStartup;
  EXPECT_THROW(scenario::AdversaryEnv env2(startup), std::invalid_argument);
}

TEST(AdversaryEnv, GreedyBaselineIsDeterministic) {
  RunSpec spec = small_spec();
  spec.params = core::make_params(16, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 4;
  spec.rounds = 8;

  const scenario::GreedyResult a = scenario::run_greedy_adversary(spec);
  const scenario::GreedyResult b = scenario::run_greedy_adversary(spec);
  EXPECT_EQ(a.best_placement, b.best_placement);
  EXPECT_EQ(a.placement_ids, b.placement_ids);
  EXPECT_EQ(a.static_skew, b.static_skew);
  EXPECT_EQ(a.adaptive_skew, b.adaptive_skew);
  EXPECT_EQ(a.env_steps, b.env_steps);
  EXPECT_GT(a.static_skew, 0.0);
  EXPECT_GT(a.adaptive_skew, 0.0);
  EXPECT_GT(a.env_steps, 0);
  EXPECT_EQ(a.placement_ids.size(), 1u);
}

}  // namespace
