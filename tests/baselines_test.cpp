// Section 10 comparators on the shared substrate: each baseline synchronizes
// fault-free; the ablation (plain mean) breaks under one Byzantine process
// while Welch-Lynch shrugs; the comparative shapes (LM ~ 2 n eps growth,
// ST ~ delta + eps) hold.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f, double P = 10.0) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, P);
}

double steady_skew(Algo algo, FaultKind fault, std::int32_t n, std::int32_t f,
                   std::uint64_t seed, bool* diverged = nullptr) {
  RunSpec spec;
  spec.params = standard(n, f);
  spec.algo = algo;
  spec.fault = fault;
  spec.fault_count = fault == FaultKind::kNone ? 0 : f;
  spec.rounds = 14;
  spec.seed = seed;
  const RunResult result = run_experiment(spec);
  if (diverged != nullptr) *diverged = result.diverged;
  return result.gamma_measured;
}

TEST(Baselines, AllConvergeFaultFree) {
  for (Algo algo : {Algo::kLM, Algo::kST, Algo::kMS, Algo::kPlainMean}) {
    bool diverged = true;
    const double skew =
        steady_skew(algo, FaultKind::kNone, 7, 2, 42, &diverged);
    EXPECT_FALSE(diverged) << "algo " << static_cast<int>(algo);
    // All should hold skew below delta + eps scale fault-free.
    EXPECT_LT(skew, 0.02) << "algo " << static_cast<int>(algo);
  }
}

TEST(Baselines, PlainMeanBreaksUnderOneLiarWelchLynchDoesNot) {
  auto run = [](Algo algo) {
    RunSpec spec;
    spec.params = standard(4, 1);
    spec.algo = algo;
    spec.fault = FaultKind::kLiar;
    spec.fault_count = 1;
    spec.rounds = 14;
    spec.seed = 7;
    return run_experiment(spec);
  };
  const RunResult wl = run(Algo::kWelchLynch);
  const RunResult pm = run(Algo::kPlainMean);
  EXPECT_FALSE(wl.diverged);
  EXPECT_LT(wl.gamma_measured, 0.01);
  EXPECT_TRUE(wl.validity.holds);
  // The liar's ~7.5 s-late messages drag the unguarded mean every round.
  // The honest processes move *together* (agreement can survive), but
  // validity — local time tracking real time — is destroyed.  That is
  // exactly the trivial-solution failure Theorem 19 exists to rule out.
  EXPECT_FALSE(pm.validity.holds);
  EXPECT_GT(pm.validity.max_lower_violation + pm.validity.max_upper_violation,
            1.0);
}

TEST(Baselines, LMToleratesByzantineWithinItsBound) {
  bool diverged = true;
  const double lm =
      steady_skew(Algo::kLM, FaultKind::kTwoFaced, 7, 2, 8, &diverged);
  EXPECT_FALSE(diverged);
  // [LM]'s bound is about 2 n eps' — generous check at 4 n eps + beta.
  const core::Params p = standard(7, 2);
  EXPECT_LT(lm, 4 * 7 * p.eps + p.beta);
}

TEST(Baselines, STAgreementIsDeltaEpsScale) {
  bool diverged = true;
  const double st =
      steady_skew(Algo::kST, FaultKind::kSilent, 7, 2, 9, &diverged);
  EXPECT_FALSE(diverged);
  const core::Params p = standard(7, 2);
  // About delta + eps; allow 2x.
  EXPECT_LT(st, 2 * (p.delta + p.eps));
}

TEST(Baselines, STSurvivesTwoFaced) {
  // The splitter's forged time messages don't match ST's tick protocol
  // (ticks carry round numbers); inject spam instead, which does.
  bool diverged = true;
  const double st =
      steady_skew(Algo::kST, FaultKind::kSpam, 7, 2, 10, &diverged);
  EXPECT_FALSE(diverged);
  const core::Params p = standard(7, 2);
  EXPECT_LT(st, 3 * (p.delta + p.eps));
}

TEST(Baselines, MSDegradesGracefullyPastF) {
  // With f+1 actual faults (beyond the design point f), MS still keeps the
  // skew bounded-ish while WL's guarantees are void.  We only require that
  // MS does not diverge.
  RunSpec spec;
  spec.params = standard(10, 3);
  spec.algo = Algo::kMS;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 4;  // > f = 3
  spec.rounds = 12;
  spec.seed = 11;
  const RunResult result = run_experiment(spec);
  EXPECT_FALSE(result.diverged);
  EXPECT_LT(result.gamma_measured, 0.05);
}

// The headline Section 10 shape under Byzantine pressure: the egocentric
// average [LM] leaves a bigger residual skew than the fault-tolerant
// midpoint, and Welch-Lynch's guarantee is independent of system scale
// (gamma depends only on beta, eps, rho, delta — not n).
TEST(Comparison, WelchLynchBeatsLMUnderAttackAndStaysFlatWithScale) {
  double lm_small = 0, lm_large = 0, wl_small = 0, wl_large = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    lm_small += steady_skew(Algo::kLM, FaultKind::kTwoFaced, 7, 2, seed) / 3;
    lm_large += steady_skew(Algo::kLM, FaultKind::kTwoFaced, 16, 5, seed) / 3;
    wl_small +=
        steady_skew(Algo::kWelchLynch, FaultKind::kTwoFaced, 7, 2, seed) / 3;
    wl_large +=
        steady_skew(Algo::kWelchLynch, FaultKind::kTwoFaced, 16, 5, seed) / 3;
  }
  EXPECT_GT(lm_small, wl_small);
  EXPECT_GT(lm_large, wl_large);
  // WL stays flat as (n, f) scale 2.3x; LM's residual is the one that moves.
  EXPECT_LT(wl_large, 1.5 * wl_small + 1e-3);
}

}  // namespace
}  // namespace wlsync::analysis
