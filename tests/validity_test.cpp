// Theorem 19: (alpha1, alpha2, alpha3)-validity.  Local clocks advance
// linearly with real time; the envelope rules out trivial "solutions" like
// resetting all clocks to 0.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

struct ValidityCase {
  std::uint64_t seed;
  FaultKind fault;
  DriftKind drift;
};

class Validity : public ::testing::TestWithParam<ValidityCase> {};

TEST_P(Validity, EnvelopeHolds) {
  const ValidityCase& c = GetParam();
  RunSpec spec;
  spec.params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = c.fault;
  spec.fault_count = c.fault == FaultKind::kNone ? 0 : 2;
  spec.drift = c.drift;
  spec.rounds = 15;
  spec.seed = c.seed;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_TRUE(result.validity.holds)
      << "upper violation " << result.validity.max_upper_violation
      << ", lower violation " << result.validity.max_lower_violation;
  // Note: the *raw* ratio (L - T0)/(t - tmin0) may exceed alpha2 shortly
  // after the start, where the +alpha3 offset dominates; the envelope check
  // above (which includes alpha3) is the actual Theorem 19 statement.
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Validity,
    ::testing::Values(ValidityCase{1, FaultKind::kNone, DriftKind::kExtremal},
                      ValidityCase{2, FaultKind::kTwoFaced, DriftKind::kExtremal},
                      ValidityCase{3, FaultKind::kSpam, DriftKind::kPiecewise},
                      ValidityCase{4, FaultKind::kSilent, DriftKind::kRandomWalk},
                      ValidityCase{5, FaultKind::kLiar, DriftKind::kExtremal}));

// Long-horizon check: over 60 rounds, elapsed local time tracks elapsed real
// time to within a slope error ~ rho + eps/lambda.
TEST(Validity, LongRunSlopeStaysNearOne) {
  RunSpec spec;
  spec.params = core::make_params(4, 1, 1e-5, 0.01, 1e-3, 5.0);
  spec.rounds = 60;
  spec.seed = 6;
  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_FALSE(result.diverged);
  const double t_end = result.t_end;
  for (std::int32_t id : result.honest) {
    const double elapsed_local =
        experiment.simulator().local_time(id, t_end) - spec.params.T0;
    const double slope = elapsed_local / (t_end - result.tmin0);
    EXPECT_NEAR(slope, 1.0, 5e-4);
  }
}

// A deliberately broken "synchronizer" that resets clocks to T0 each round
// would violate validity; our checker must be able to detect violations.
TEST(Validity, CheckerDetectsViolations) {
  RunSpec spec;
  spec.params = core::make_params(4, 1, 1e-5, 0.01, 1e-3, 5.0);
  spec.rounds = 10;
  spec.seed = 8;
  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_FALSE(result.diverged);
  // Re-check against a *fake* far-future tmin0/tmax0: the envelope must
  // break, proving the checker is not vacuous.
  const ValidityReport fake = check_validity(
      experiment.simulator(), result.honest, spec.params,
      /*tmin0=*/result.tmin0 + 20.0, /*tmax0=*/result.tmax0 + 20.0,
      result.tmax0 + spec.params.P, result.t_end, spec.params.P / 10);
  EXPECT_FALSE(fake.holds);
}

}  // namespace
}  // namespace wlsync::analysis
