// Unit-level behaviour of the Section 4.2 algorithm: single-round mechanics
// under controlled conditions, ARR semantics, resume().

#include <gtest/gtest.h>

#include "analysis/round_trace.h"
#include "clock/drift.h"
#include "core/welch_lynch.h"
#include "sim/simulator.h"

namespace wlsync::core {
namespace {

Params tiny_params() {
  // delta = 10ms, eps = 1ms, rho = 1e-5, P = 5s.
  return make_params(/*n=*/4, /*f=*/1, 1e-5, 0.01, 1e-3, 5.0);
}

std::unique_ptr<clk::PhysicalClock> perfect_clock(double rho) {
  return std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0), 0.0, rho);
}

TEST(WelchLynch, RejectsBadKExchanges) {
  WelchLynchConfig config;
  config.params = tiny_params();
  config.k_exchanges = 0;
  EXPECT_THROW(WelchLynchProcess{config}, std::invalid_argument);
}

// With perfect clocks, exact delays (eps effectively 0) and identical
// starts, the computed adjustment must be ~0 and rounds advance on the dot.
TEST(WelchLynch, PerfectConditionsYieldZeroAdjustment) {
  Params p = tiny_params();
  WelchLynchConfig config;
  config.params = p;

  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  // All delays exactly delta (legal: within [delta-eps, delta+eps]).
  class ExactDelay : public sim::DelayModel {
   public:
    explicit ExactDelay(double d) : d_(d) {}
    double delay(std::int32_t, std::int32_t, double, util::Rng&) override {
      return d_;
    }

   private:
    double d_;
  };
  sim::Simulator sim(sim_config, std::make_unique<ExactDelay>(p.delta));
  for (int id = 0; id < p.n; ++id) {
    sim.add_process(std::make_unique<WelchLynchProcess>(config),
                    perfect_clock(p.rho), p.T0, false, /*start=*/0.0);
  }
  sim.run_until(2.5 * p.P);
  for (int id = 0; id < p.n; ++id) {
    auto& process = dynamic_cast<WelchLynchProcess&>(sim.process(id));
    EXPECT_GE(process.round(), 2);
    EXPECT_NEAR(process.last_adjustment(), 0.0, 1e-9);
    EXPECT_NEAR(process.last_average(),
                process.current_label() - p.P + p.delta, 1e-9);
  }
}

// A process whose clock starts offset by X within beta gets ADJ ~ -X/2
// correction pressure from the midpoint (it sees everyone else's arrivals
// shifted by X on its clock; the midpoint of honest arrivals shifts by
// about X/2 when half the range moves).  We only check the sign and bound.
TEST(WelchLynch, OffsetProcessAdjustsTowardOthers) {
  Params p = tiny_params();
  WelchLynchConfig config;
  config.params = p;
  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  // Exact delta delays (legal within [delta-eps, delta+eps]) make the
  // midpoint shifts deterministic; under random draws the offset X = beta/2
  // is close to the 2*eps delay-noise span and the punctual sign could go
  // either way.  With n = 4 and f = 1 the reduce() clips one entry from
  // each end, so a SINGLE offset process would be clipped right back out —
  // offset two of the four ("half the range moves", per the comment above)
  // so the shift survives the reduction: each side's trimmed view is
  // [T+delta, T+delta+X] or [T+delta-X, T+delta], midpoints T+delta +- X/2.
  class ExactDelay : public sim::DelayModel {
   public:
    explicit ExactDelay(double d) : d_(d) {}
    double delay(std::int32_t, std::int32_t, double, util::Rng&) override {
      return d_;
    }

   private:
    double d_;
  };
  sim::Simulator sim(sim_config, std::make_unique<ExactDelay>(p.delta));
  const double offset = 0.5 * p.beta;
  for (int id = 0; id < p.n; ++id) {
    // Processes 0 and 1 start `offset` late along the real axis.
    const double start = id <= 1 ? offset : 0.0;
    auto clock = perfect_clock(p.rho);
    const double corr0 = p.T0 - clock->now(start);
    sim.add_process(std::make_unique<WelchLynchProcess>(config),
                    std::move(clock), corr0, false, start);
  }
  // Only through round 0: with exact delays the first UPDATE fully corrects
  // the offset, so any later round's adjustment is exactly zero.
  sim.run_until(0.5 * p.P);
  auto& late = dynamic_cast<WelchLynchProcess&>(sim.process(0));
  auto& punctual = dynamic_cast<WelchLynchProcess&>(sim.process(2));
  // The late pair's clocks lag real time by `offset`: the punctual
  // majority's broadcasts happen earlier in real time, so their arrivals
  // carry smaller local labels, AV < T + delta, and ADJ = T + delta - AV >
  // 0: the late pair moves forward.  Symmetrically the punctual pair sees
  // the late broadcasts arrive late and moves back.  Check signs and the
  // Theorem 4(a) bound.
  const Derived d = derive(p);
  EXPECT_GT(late.last_adjustment(), 0.0);
  EXPECT_LT(punctual.last_adjustment(), 0.0);
  EXPECT_LE(std::abs(late.last_adjustment()), d.adj_bound);
  EXPECT_LE(std::abs(punctual.last_adjustment()), d.adj_bound);
}

TEST(WelchLynch, AnyMessageOverwritesArrSlot) {
  // Section 4.2 records the arrival time of *any* ordinary message.  A junk
  // message from process 2 arriving late must shift 0's estimate of 2.
  Params p = tiny_params();
  WelchLynchConfig config;
  config.params = p;

  class JunkSender : public proc::Process {
   public:
    void on_start(proc::Context& ctx) override {
      ctx.set_timer(ctx.local_time() + 4.0, 1);  // late in round 0
    }
    void on_timer(proc::Context& ctx, std::int32_t) override {
      ctx.send(0, /*tag=*/99, /*value=*/0.0, 0);
    }
    void on_message(proc::Context&, const sim::Message&) override {}
  };

  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  sim::Simulator sim(sim_config, nullptr);
  sim.add_process(std::make_unique<WelchLynchProcess>(config),
                  perfect_clock(p.rho), p.T0, false, 0.0);
  for (int id = 1; id < p.n; ++id) {
    sim.add_process(std::make_unique<WelchLynchProcess>(config),
                    perfect_clock(p.rho), p.T0, false, 0.0);
  }
  sim.add_process(std::make_unique<JunkSender>(), perfect_clock(p.rho), p.T0,
                  false, 0.0);
  // n is now 5 with f=1 — the junk sender plays the faulty slot.
  sim.run_until(0.9 * p.P);
  // The junk arrives ~4s into the round, long after the window closed, so it
  // sits in ARR as a *future* entry for round 1; at round 1's update it is a
  // stale-high... actually it will be overwritten by the round-1 broadcast.
  // The behavioural check: system still healthy after round 0.
  auto& wl = dynamic_cast<WelchLynchProcess&>(sim.process(0));
  EXPECT_EQ(wl.round(), 1);
  EXPECT_LE(std::abs(wl.last_adjustment()), derive(p).adj_bound);
}

TEST(WelchLynch, ResumeSchedulesNextRound) {
  Params p = tiny_params();
  WelchLynchConfig config;
  config.params = p;

  /// Host that resumes a WL process at round 3 on start.
  class Resumer : public proc::Process {
   public:
    explicit Resumer(WelchLynchConfig config) : wl_(config) {}
    void on_start(proc::Context& ctx) override {
      wl_.resume(ctx, ctx.local_time() + 1.0, 3);
    }
    void on_timer(proc::Context& ctx, std::int32_t tag) override {
      wl_.on_timer(ctx, tag);
    }
    void on_message(proc::Context& ctx, const sim::Message& m) override {
      wl_.on_message(ctx, m);
    }
    WelchLynchProcess wl_;
  };

  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  sim::Simulator sim(sim_config, nullptr);
  auto resumer = std::make_unique<Resumer>(config);
  Resumer* view = resumer.get();
  sim.add_process(std::move(resumer), perfect_clock(p.rho), p.T0, false, 0.0);
  // Three peers so reduce() has enough entries.
  for (int id = 1; id < p.n; ++id) {
    sim.add_process(std::make_unique<WelchLynchProcess>(config),
                    perfect_clock(p.rho), p.T0, false, 0.0);
  }
  sim.run_until(3.0);
  EXPECT_GE(view->wl_.round(), 4);  // resumed at 3, then advanced
}

TEST(WelchLynch, AnnotatesRoundsAndUpdates) {
  Params p = tiny_params();
  WelchLynchConfig config;
  config.params = p;
  sim::SimConfig sim_config;
  sim_config.delta = p.delta;
  sim_config.eps = p.eps;
  sim::Simulator sim(sim_config, nullptr);
  analysis::RoundTrace trace;
  sim.add_trace_sink(&trace);
  for (int id = 0; id < p.n; ++id) {
    sim.add_process(std::make_unique<WelchLynchProcess>(config),
                    perfect_clock(p.rho), p.T0, false, 0.0);
  }
  sim.run_until(2.2 * p.P);
  std::vector<std::int32_t> ids{0, 1, 2, 3};
  EXPECT_GE(trace.last_complete_round(ids), 1);
  EXPECT_FALSE(trace.updates().empty());
  // Round 0 begins are simultaneous; round 1 begins differ only by the
  // delay jitter folded through one averaging step — well within beta
  // (Theorem 4(c)), and in fact within ~2 eps here.
  EXPECT_LT(trace.begin_spread(0, ids), 1e-9);
  EXPECT_LT(trace.begin_spread(1, ids), p.beta);
  EXPECT_LT(trace.begin_spread(1, ids), 2.5 * p.eps);
}

}  // namespace
}  // namespace wlsync::core
