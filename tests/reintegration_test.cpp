// Section 9.1: a crashed-and-repaired process resynchronizes with the
// ordinary averaging procedure and rejoins within beta.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
}

class ReintegrationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReintegrationSeeds, RejoinsWithinBeta) {
  ReintegrationSpec spec;
  spec.params = standard(4, 1);
  spec.crash_at = 25.0;
  spec.wake_at = 95.0;  // several rounds dead
  spec.rounds = 20;
  spec.seed = GetParam();
  const ReintegrationResult result = run_reintegration(spec);
  ASSERT_TRUE(result.rejoined);
  // The Section 9.1 claim: the joiner reaches T^{i+1} within beta of every
  // other nonfaulty process.
  EXPECT_LE(result.spread_with_joiner, result.beta * (1 + 1e-9));
  // Thereafter it is an ordinary participant: gamma holds for everyone.
  EXPECT_LE(result.skew_after, result.gamma_bound * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReintegrationSeeds,
                         ::testing::Values(1, 12, 123, 1234));

TEST(Reintegration, WakeMidRoundStillJoins) {
  ReintegrationSpec spec;
  spec.params = standard(4, 1);
  spec.crash_at = 22.0;
  // Wake just after a round boundary (rounds land near multiples of P=10s):
  // the orientation phase must skip the partially observed round.
  spec.wake_at = 90.3;
  spec.rounds = 20;
  spec.seed = 5;
  const ReintegrationResult result = run_reintegration(spec);
  ASSERT_TRUE(result.rejoined);
  EXPECT_LE(result.spread_with_joiner, result.beta * (1 + 1e-9));
}

TEST(Reintegration, LargerSystemWithSevenProcesses) {
  ReintegrationSpec spec;
  spec.params = standard(7, 2);
  spec.crash_at = 18.0;
  spec.wake_at = 77.0;
  spec.rounds = 18;
  spec.seed = 6;
  const ReintegrationResult result = run_reintegration(spec);
  ASSERT_TRUE(result.rejoined);
  EXPECT_LE(result.spread_with_joiner, result.beta * (1 + 1e-9));
  EXPECT_LE(result.skew_after, result.gamma_bound * (1 + 1e-9));
}

TEST(Reintegration, StreamingObservationIsBitIdentical) {
  // ReintegrationSpec::observe runs the simulation in chunks until the
  // rejoin, attaches a StreamingObserver whose skew window opens at
  // join + 2P (ObserveSpec::skew_t0), and takes skew_after from its
  // accumulators.  Chunked run_until is the same event sequence as one
  // call and the streaming grid matches the post-hoc skew_series walk, so
  // every measured field must be bitwise equal.
  for (const std::uint64_t seed : {1ull, 12ull, 1234ull}) {
    ReintegrationSpec spec;
    spec.params = standard(4, 1);
    spec.crash_at = 25.0;
    spec.wake_at = 95.0;
    spec.rounds = 20;
    spec.seed = seed;
    const ReintegrationResult plain = run_reintegration(spec);
    spec.observe = true;
    const ReintegrationResult observed = run_reintegration(spec);

    EXPECT_FALSE(plain.observe.enabled);
    EXPECT_TRUE(observed.observe.enabled);
    EXPECT_GT(observed.observe.samples, 0u);
    ASSERT_EQ(plain.rejoined, observed.rejoined) << "seed " << seed;
    EXPECT_EQ(plain.join_time, observed.join_time) << "seed " << seed;
    EXPECT_EQ(plain.join_round, observed.join_round) << "seed " << seed;
    EXPECT_EQ(plain.spread_with_joiner, observed.spread_with_joiner)
        << "seed " << seed;
    EXPECT_EQ(plain.skew_after, observed.skew_after) << "seed " << seed;
  }
}

TEST(Reintegration, RejectsTooEarlyWake) {
  ReintegrationSpec spec;
  spec.params = standard(4, 1);
  spec.crash_at = 25.0;
  spec.wake_at = 30.0;  // < crash + 2P
  EXPECT_THROW((void)run_reintegration(spec), std::invalid_argument);
}

}  // namespace
}  // namespace wlsync::analysis
