// Drift models and PhysicalClock: rho-boundedness (A1), exact inverses,
// lazy extension, and validation.

#include <gtest/gtest.h>

#include "clock/drift.h"
#include "clock/physical_clock.h"
#include "util/rng.h"

namespace wlsync::clk {
namespace {

constexpr double kRho = 1e-4;

class DriftModels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DriftModels, AllModelsStayRhoBounded) {
  const std::uint64_t seed = GetParam();
  std::vector<std::unique_ptr<DriftModel>> models;
  models.push_back(make_constant(1.0));
  models.push_back(make_constant(1.0 + kRho));
  models.push_back(make_piecewise_uniform(kRho, 0.5, util::Rng(seed)));
  models.push_back(make_random_walk(kRho, 0.5, kRho / 4, util::Rng(seed)));
  models.push_back(make_extremal(kRho, 0.5, seed % 2 == 0));
  for (auto& model : models) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      const DriftSegment segment = model->segment(i);
      EXPECT_GT(segment.duration, 0.0);
      EXPECT_GE(segment.rate, 1.0 / (1.0 + kRho) - 1e-12);
      EXPECT_LE(segment.rate, 1.0 + kRho + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriftModels, ::testing::Values(1, 2, 3, 42, 99));

TEST(PhysicalClock, ConstantRateIsLinear) {
  PhysicalClock clock(make_constant(1.0), /*offset=*/5.0, kRho);
  EXPECT_DOUBLE_EQ(clock.now(0.0), 5.0);
  EXPECT_DOUBLE_EQ(clock.now(10.0), 15.0);
  EXPECT_DOUBLE_EQ(clock.to_real(15.0), 10.0);
}

TEST(PhysicalClock, RejectsOutOfBandRate) {
  EXPECT_THROW(PhysicalClock(make_constant(1.5), 0.0, kRho),
               std::invalid_argument);
  EXPECT_THROW(PhysicalClock(make_constant(0.5), 0.0, kRho),
               std::invalid_argument);
  EXPECT_THROW(PhysicalClock(nullptr, 0.0, kRho), std::invalid_argument);
}

class ClockRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockRoundTrip, InverseIsExact) {
  const std::uint64_t seed = GetParam();
  PhysicalClock clock(make_piecewise_uniform(kRho, 0.25, util::Rng(seed)),
                      /*offset=*/seed % 17 * 1.0, kRho);
  util::Rng rng(seed ^ 0xABC);
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    const double clock_time = clock.now(t);
    EXPECT_NEAR(clock.to_real(clock_time), t, 1e-9);
  }
  for (int i = 0; i < 500; ++i) {
    const double clock_time = clock.offset() + rng.uniform(0.0, 100.0);
    EXPECT_NEAR(clock.now(clock.to_real(clock_time)), clock_time, 1e-9);
  }
}

TEST_P(ClockRoundTrip, StrictlyMonotone) {
  const std::uint64_t seed = GetParam();
  PhysicalClock clock(make_random_walk(kRho, 0.25, kRho / 3, util::Rng(seed)),
                      0.0, kRho);
  double prev = clock.now(0.0);
  for (double t = 0.01; t < 50.0; t += 0.371) {
    const double current = clock.now(t);
    EXPECT_GT(current, prev);
    prev = current;
  }
}

// Lemma 1: (t2-t1)/(1+rho) <= C(t2)-C(t1) <= (1+rho)(t2-t1).
TEST_P(ClockRoundTrip, Lemma1ElapsedTimeBounds) {
  const std::uint64_t seed = GetParam();
  PhysicalClock clock(make_piecewise_uniform(kRho, 0.4, util::Rng(seed)), 3.0,
                      kRho);
  util::Rng rng(seed * 31);
  for (int i = 0; i < 300; ++i) {
    const double t1 = rng.uniform(0.0, 50.0);
    const double t2 = t1 + rng.uniform(0.0, 20.0);
    const double elapsed = clock.now(t2) - clock.now(t1);
    EXPECT_GE(elapsed, (t2 - t1) / (1.0 + kRho) - 1e-9);
    EXPECT_LE(elapsed, (t2 - t1) * (1.0 + kRho) + 1e-9);
  }
}

// Lemma 2(a): |(C(t2)-t2) - (C(t1)-t1)| <= rho |t2-t1|.
TEST_P(ClockRoundTrip, Lemma2DriftFromRealTime) {
  const std::uint64_t seed = GetParam();
  PhysicalClock clock(make_random_walk(kRho, 0.3, kRho / 4, util::Rng(seed)),
                      0.0, kRho);
  util::Rng rng(seed * 17);
  for (int i = 0; i < 300; ++i) {
    const double t1 = rng.uniform(0.0, 40.0);
    const double t2 = rng.uniform(0.0, 40.0);
    const double lhs =
        std::abs((clock.now(t2) - t2) - (clock.now(t1) - t1));
    EXPECT_LE(lhs, kRho * std::abs(t2 - t1) + 1e-9);
  }
}

// Lemma 2(b): |(C(t2)-D(t2)) - (C(t1)-D(t1))| <= 2 rho |t2-t1|.
TEST_P(ClockRoundTrip, Lemma2TwoClockDivergenceRate) {
  const std::uint64_t seed = GetParam();
  PhysicalClock c(make_extremal(kRho, 0.5, true), 0.0, kRho);
  PhysicalClock d(make_extremal(kRho, 0.5, false), 7.0, kRho);
  util::Rng rng(seed * 13);
  for (int i = 0; i < 300; ++i) {
    const double t1 = rng.uniform(0.0, 40.0);
    const double t2 = rng.uniform(0.0, 40.0);
    const double lhs = std::abs((c.now(t2) - d.now(t2)) - (c.now(t1) - d.now(t1)));
    EXPECT_LE(lhs, 2.0 * kRho * std::abs(t2 - t1) + 1e-9);
  }
}

// Lemma 3: if the inverse clocks stay within alpha on [T1, T2], the forward
// clocks stay within (1+rho) alpha on the corresponding real interval.
TEST_P(ClockRoundTrip, Lemma3InverseBoundTransfers) {
  const std::uint64_t seed = GetParam();
  PhysicalClock c(make_piecewise_uniform(kRho, 0.5, util::Rng(seed)), 0.0, kRho);
  PhysicalClock d(make_piecewise_uniform(kRho, 0.5, util::Rng(seed + 1)), 0.2,
                  kRho);
  const double T1 = 1.0, T2 = 30.0;
  double alpha = 0.0;
  for (double T = T1; T <= T2; T += 0.1) {
    alpha = std::max(alpha, std::abs(c.to_real(T) - d.to_real(T)));
  }
  const double t1 = std::min(c.to_real(T1), d.to_real(T1));
  const double t2 = std::max(c.to_real(T2), d.to_real(T2));
  for (double t = t1; t <= t2; t += 0.1) {
    EXPECT_LE(std::abs(c.now(t) - d.now(t)), (1.0 + kRho) * alpha + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockRoundTrip,
                         ::testing::Values(1, 7, 21, 1234, 987654));

TEST(PhysicalClock, LazyExtensionIsConsistent) {
  // Querying far ahead first, then in between, must give identical answers
  // to querying in order (the function is a fixed object, extended lazily).
  PhysicalClock a(make_piecewise_uniform(kRho, 0.5, util::Rng(5)), 0.0, kRho);
  PhysicalClock b(make_piecewise_uniform(kRho, 0.5, util::Rng(5)), 0.0, kRho);
  const double far = a.now(500.0);
  for (double t = 0.0; t <= 500.0; t += 7.3) {
    EXPECT_DOUBLE_EQ(a.now(t), b.now(t));
  }
  EXPECT_DOUBLE_EQ(far, b.now(500.0));
}

}  // namespace
}  // namespace wlsync::clk
