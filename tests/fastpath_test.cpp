// Bit-identity pin for the round-synchronous fast path (ISSUE 6): every
// eligible spec run with EngineMode::kFastpath must produce
// results_identical output — bitwise-equal skews, CORR-derived series,
// message counts, annotations — to the pure event engine, across WL
// variants, topologies, delay models, and drift regimes on deterministic
// seeds.  This is the same standard the batched fan-out and arena-ingest
// refactors were held to: the engine may only move nanoseconds, never a
// double.  ISSUE 8 widened the eligible region: staggered broadcasts
// (Section 9.3) and fault-isolating regions (faults on a sparse topology,
// honest remainder batched, tainted region event-replayed) are pinned here
// across stagger values, topologies and adversary placements — including
// an adversary sitting ON a region boundary (a bridge endpoint).  The
// fallback half proves the dispatcher still refuses what it must: NIC,
// legacy ingest, bounded history, non-WL algorithms, stagger+faults, and
// faults whose neighborhood covers the whole graph (any full mesh).

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/parallel_runner.h"

namespace wlsync::analysis {
namespace {

RunResult run_engine(RunSpec spec, EngineMode engine) {
  spec.engine = engine;
  return run_experiment(spec);
}

/// The central pin: the fast path engages, advances exchanges past the
/// event queue, and the measured physics are bitwise those of the event
/// engine.  kAuto must select the fast path on its own for these specs.
void expect_engines_identical(const RunSpec& spec, const char* what) {
  const RunResult event = run_engine(spec, EngineMode::kEvent);
  const RunResult fast = run_engine(spec, EngineMode::kFastpath);
  const RunResult autod = run_engine(spec, EngineMode::kAuto);
  EXPECT_FALSE(event.fastpath_engaged) << what;
  EXPECT_TRUE(fast.fastpath_engaged) << what;
  EXPECT_GT(fast.fastpath_exchanges, 0) << what;
  EXPECT_TRUE(autod.fastpath_engaged) << what;
  EXPECT_EQ(autod.fastpath_exchanges, fast.fastpath_exchanges) << what;
  EXPECT_TRUE(results_identical(event, fast)) << what;
  EXPECT_TRUE(results_identical(event, autod)) << what;
}

/// The fallback pin: kAuto silently runs the event engine (telemetry says
/// the fast path never engaged), kFastpath refuses the spec loudly.
void expect_event_fallback(const RunSpec& spec, const char* what) {
  const RunResult event = run_engine(spec, EngineMode::kEvent);
  const RunResult autod = run_engine(spec, EngineMode::kAuto);
  EXPECT_FALSE(autod.fastpath_engaged) << what;
  EXPECT_EQ(autod.fastpath_exchanges, 0) << what;
  EXPECT_TRUE(results_identical(event, autod)) << what;
  EXPECT_THROW((void)run_engine(spec, EngineMode::kFastpath),
               std::invalid_argument)
      << what;
}

RunSpec base_spec(std::int32_t n, std::int32_t f) {
  RunSpec spec;
  spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  spec.seed = 11;
  return spec;
}

// ------------------------------------------------------- identity pins ---

TEST(FastpathPin, WelchLynchFullMesh) {
  expect_engines_identical(base_spec(13, 4), "plain WL, full mesh");
}

TEST(FastpathPin, WelchLynchVariants) {
  RunSpec mean = base_spec(13, 4);
  mean.averaging = core::Averaging::kReducedMean;
  expect_engines_identical(mean, "reduced-mean averaging");

  RunSpec k2 = base_spec(10, 3);
  k2.k_exchanges = 2;
  expect_engines_identical(k2, "k = 2 exchanges");

  RunSpec amortized = base_spec(10, 3);
  amortized.amortize = 1.5;
  expect_engines_identical(amortized, "amortized corrections");
}

TEST(FastpathPin, SparseTopologies) {
  RunSpec cliques = base_spec(24, 7);
  cliques.topology.kind = net::TopologyKind::kRingOfCliques;
  cliques.topology.clique_size = 6;
  expect_engines_identical(cliques, "WL on ring of cliques");

  RunSpec kreg = base_spec(24, 7);
  kreg.topology.kind = net::TopologyKind::kKRegular;
  kreg.topology.degree = 8;
  expect_engines_identical(kreg, "WL on k-regular expander");
}

TEST(FastpathPin, DriftRegimes) {
  for (const DriftKind drift : {DriftKind::kNone, DriftKind::kExtremal,
                                DriftKind::kPiecewise, DriftKind::kRandomWalk}) {
    RunSpec spec = base_spec(13, 4);
    spec.drift = drift;
    expect_engines_identical(spec, "drift regime sweep");
  }
}

TEST(FastpathPin, DelayModels) {
  for (const DelayKind delay : {DelayKind::kUniform, DelayKind::kFast,
                                DelayKind::kSlow, DelayKind::kSplit,
                                DelayKind::kPerLink}) {
    RunSpec spec = base_spec(13, 4);
    spec.delay = delay;
    expect_engines_identical(spec, "delay model sweep");
  }
}

TEST(FastpathPin, MeasurementAndEngineKnobs) {
  // Streaming observation attends every round boundary the fast path
  // replays; the gradient walk reads the clock histories it preserved.
  RunSpec observed = base_spec(13, 4);
  observed.observe = true;
  expect_engines_identical(observed, "streaming observer attached");

  RunSpec gradient = base_spec(13, 4);
  gradient.measure_gradient = true;
  expect_engines_identical(gradient, "gradient measurement");

  // Engine knobs that only matter when events flow: the fast path hands
  // the same queue back regardless.
  RunSpec unbatched = base_spec(13, 4);
  unbatched.batch_fanout = false;
  expect_engines_identical(unbatched, "per-recipient fan-out");

  RunSpec legacy_heap = base_spec(13, 4);
  legacy_heap.scheduler = engine::SchedulerKind::kLegacyHeap;
  expect_engines_identical(legacy_heap, "legacy-heap scheduler");
}

TEST(FastpathPin, DeterministicUnderParallelRunner) {
  RunSpec base = base_spec(16, 5);
  base.engine = EngineMode::kFastpath;
  const std::vector<RunSpec> specs = seed_sweep(base, 900, 6);
  const std::vector<RunResult> serial = ParallelRunner(1).run(specs);
  const std::vector<RunResult> sharded = ParallelRunner(4).run(specs);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], sharded[i])) << "trial " << i;
    EXPECT_TRUE(serial[i].fastpath_engaged) << "trial " << i;
  }
}

TEST(FastpathPin, StaggeredBroadcasts) {
  // Section 9.3: process p broadcasts at base + p*sigma, receivers
  // normalize arrivals by sender id.  The steady-state boundary is 2n-1
  // events (pre-armed update timers for every p > 0) and the delivery
  // kernel subtracts off[s] = s*sigma with the engine's exact expression.
  for (const double sigma : {0.0005, 0.004}) {
    RunSpec spec = base_spec(10, 3);
    spec.stagger = sigma;
    expect_engines_identical(spec, "staggered full mesh");
  }

  RunSpec cliques = base_spec(24, 7);
  cliques.stagger = 0.002;
  cliques.topology.kind = net::TopologyKind::kRingOfCliques;
  cliques.topology.clique_size = 6;
  expect_engines_identical(cliques, "staggered ring of cliques");

  RunSpec kreg = base_spec(16, 5);
  kreg.stagger = 0.001;
  kreg.topology.kind = net::TopologyKind::kKRegular;
  kreg.topology.degree = 6;
  expect_engines_identical(kreg, "staggered k-regular expander");
}

/// Region pin: engages with a PROPER fast subset (0 < fast_count < n) and
/// a live merged loop (region_events > 0 — the adversary's honest
/// neighbors still broadcast through the engine), bitwise the event engine.
void expect_region_identical(const RunSpec& spec, const char* what) {
  const RunResult event = run_engine(spec, EngineMode::kEvent);
  const RunResult fast = run_engine(spec, EngineMode::kFastpath);
  const RunResult autod = run_engine(spec, EngineMode::kAuto);
  EXPECT_FALSE(event.fastpath_engaged) << what;
  EXPECT_TRUE(fast.fastpath_engaged) << what;
  EXPECT_GT(fast.fastpath_exchanges, 0) << what;
  EXPECT_GT(fast.fastpath_fast_count, 0) << what;
  EXPECT_LT(fast.fastpath_fast_count, spec.params.n) << what;
  EXPECT_GT(fast.fastpath_region_events, 0) << what;
  EXPECT_TRUE(autod.fastpath_engaged) << what;
  EXPECT_EQ(autod.fastpath_exchanges, fast.fastpath_exchanges) << what;
  EXPECT_TRUE(results_identical(event, fast)) << what;
  EXPECT_TRUE(results_identical(event, autod)) << what;
}

TEST(FastpathPin, FaultIsolatingRegions) {
  // Trailing silent faults on a ring of cliques: the tainted region is the
  // last clique plus the bridge neighbors; the rest batches.
  RunSpec silent = base_spec(24, 7);
  silent.topology.kind = net::TopologyKind::kRingOfCliques;
  silent.topology.clique_size = 6;
  silent.fault = FaultKind::kSilent;
  silent.fault_count = 2;
  expect_region_identical(silent, "silent faults, ring of cliques");

  // Two-faced adversaries at random positions of an expander, lying to
  // their honest neighborhoods (positional placement switches the
  // neighbor-scoped attack on).
  RunSpec twofaced = base_spec(24, 7);
  twofaced.topology.kind = net::TopologyKind::kKRegular;
  twofaced.topology.degree = 6;
  twofaced.fault = FaultKind::kTwoFaced;
  twofaced.fault_count = 2;
  twofaced.placement = proc::PlacementKind::kRandom;
  expect_region_identical(twofaced, "two-faced faults, random placement");

  // The adversary ON a region boundary: bridge placement puts it at an
  // inter-clique joint, so its closed neighborhood spans two cliques and
  // the cut between fast set and region crosses the bridge edge itself.
  RunSpec bridge = base_spec(24, 7);
  bridge.topology.kind = net::TopologyKind::kRingOfCliques;
  bridge.topology.clique_size = 6;
  bridge.fault = FaultKind::kTwoFaced;
  bridge.fault_count = 1;
  bridge.placement = proc::PlacementKind::kBridge;
  expect_region_identical(bridge, "two-faced fault on a bridge endpoint");

  // Spam floods junk mid-window from inside the region; every flood
  // message crosses the merged loop at its exact key.
  RunSpec spam = base_spec(24, 7);
  spam.topology.kind = net::TopologyKind::kRingOfCliques;
  spam.topology.clique_size = 6;
  spam.fault = FaultKind::kSpam;
  spam.fault_count = 1;
  spam.placement = proc::PlacementKind::kRandom;
  expect_region_identical(spam, "spam fault, random placement");

  // A liar is an honest WL instance on a shifted schedule: its region
  // neighbors keep hearing plausible-but-wrong broadcasts through the
  // engine while the far side batches.
  RunSpec liar = base_spec(24, 7);
  liar.topology.kind = net::TopologyKind::kKRegular;
  liar.topology.degree = 6;
  liar.fault = FaultKind::kLiar;
  liar.fault_count = 1;
  expect_region_identical(liar, "liar fault, k-regular");
}

TEST(FastpathRearm, ReengagesAfterTransientBail) {
  // A wide initial spread violates round-0 phase separation (last
  // broadcast + delta + eps >= first update), which is a TRANSIENT bail:
  // the event engine steps through the irregular round, the algorithm
  // converges, and the next clean n-broadcast-timer boundary re-arms the
  // fast path for the remaining rounds.  Still bitwise the event engine.
  // Wide enough that round 0's last broadcast lands after its first
  // update, narrow enough that one event-engine round still converges
  // (beyond beta the A4 precondition is gone and the algorithm is allowed
  // to diverge — that regime bails forever, correctly).
  RunSpec spec = base_spec(13, 4);
  spec.initial_spread = 0.005;
  spec.rounds = 8;
  const RunResult event = run_engine(spec, EngineMode::kEvent);
  const RunResult fast = run_engine(spec, EngineMode::kFastpath);
  EXPECT_TRUE(fast.fastpath_engaged);
  EXPECT_GE(fast.fastpath_rearms, 1);
  EXPECT_GT(fast.fastpath_exchanges, 0);
  EXPECT_TRUE(results_identical(event, fast));

  // The default spread stays within phase separation from round 0 on: the
  // fast path never hands off mid-run, so nothing re-arms.
  const RunResult clean = run_engine(base_spec(13, 4), EngineMode::kFastpath);
  EXPECT_TRUE(clean.fastpath_engaged);
  EXPECT_EQ(clean.fastpath_rearms, 0);
}

// ----------------------------------------------------- fallback triggers ---

TEST(FastpathFallback, FaultsOnTheFullMeshForceTheEventEngine) {
  // On the full mesh every honest process neighbors the adversary: no fast
  // region exists and kAuto must record why.
  RunSpec faulty = base_spec(13, 4);
  faulty.fault = FaultKind::kTwoFaced;
  faulty.fault_count = 2;
  expect_event_fallback(faulty, "two-faced faults, full mesh");
  EXPECT_EQ(run_engine(faulty, EngineMode::kAuto).fastpath_refusal,
            "adversary neighborhood covers the exchange graph");

  RunSpec mixed = base_spec(16, 5);
  mixed.fault_mix = {{FaultKind::kSilent, 1}, {FaultKind::kSpam, 1}};
  expect_event_fallback(mixed, "heterogeneous fault mix, full mesh");
}

TEST(FastpathFallback, StaggerWithFaultsForcesTheEventEngine) {
  // Both widenings at once are out of scope: the staggered kernel assumes
  // a fault-free window and the region replay assumes sigma = 0.
  RunSpec spec = base_spec(24, 7);
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 6;
  spec.stagger = 0.002;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  expect_event_fallback(spec, "staggered broadcasts with faults");
  EXPECT_EQ(run_engine(spec, EngineMode::kAuto).fastpath_refusal,
            "staggered broadcasts with faults present");
}

TEST(FastpathFallback, CoveringAdversaryForcesTheEventEngine) {
  // A sparse custom graph whose highest id (the trailing fault slot) is a
  // hub adjacent to everyone: the closed neighborhood covers the graph, so
  // the system-level check refuses even though the spec-level gate (sparse
  // topology, no stagger) passes.
  RunSpec spec = base_spec(8, 2);
  spec.topology.kind = net::TopologyKind::kCustom;
  spec.topology.custom.assign(8, {});
  for (std::int32_t id = 0; id < 8; ++id) {
    spec.topology.custom[static_cast<std::size_t>(id)] = {
        (id + 7) % 8, id, (id + 1) % 8, 7};
  }
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 1;
  expect_event_fallback(spec, "hub adversary covers the graph");
  EXPECT_EQ(run_engine(spec, EngineMode::kAuto).fastpath_refusal,
            "adversary neighborhood covers the exchange graph");
}

TEST(FastpathFallback, NicForcesTheEventEngine) {
  RunSpec nic = base_spec(16, 5);
  nic.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/50e-6};
  expect_event_fallback(nic, "NIC ingress model");
}

TEST(FastpathFallback, LegacyIngestForcesTheEventEngine) {
  RunSpec legacy = base_spec(13, 4);
  legacy.ingest = proc::IngestMode::kLegacy;
  expect_event_fallback(legacy, "legacy sparse ingestion");
  EXPECT_EQ(run_engine(legacy, EngineMode::kAuto).fastpath_refusal,
            "legacy arrival ingestion");
}

TEST(FastpathFallback, BoundedHistoryForcesTheEventEngine) {
  // The batched delivery kernel reads clock segments for the whole
  // collection window; a truncating observer could discard them mid-round.
  RunSpec bounded = base_spec(13, 4);
  bounded.observe = true;
  bounded.retain_history = false;
  expect_event_fallback(bounded, "bounded-memory observation");
}

TEST(FastpathFallback, OtherAlgorithmsForceTheEventEngine) {
  for (const Algo algo : {Algo::kLM, Algo::kST, Algo::kMS, Algo::kPlainMean,
                          Algo::kHSSD}) {
    RunSpec spec = base_spec(13, 4);
    spec.algo = algo;
    spec.ingest = algo == Algo::kHSSD ? proc::IngestMode::kLegacy
                                      : proc::IngestMode::kArena;
    const RunResult event = run_engine(spec, EngineMode::kEvent);
    const RunResult autod = run_engine(spec, EngineMode::kAuto);
    EXPECT_FALSE(autod.fastpath_engaged) << "algo " << int(algo);
    EXPECT_TRUE(results_identical(event, autod)) << "algo " << int(algo);
    EXPECT_THROW((void)run_engine(spec, EngineMode::kFastpath),
                 std::invalid_argument)
        << "algo " << int(algo);
  }
}

}  // namespace
}  // namespace wlsync::analysis
