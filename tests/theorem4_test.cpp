// Theorem 4 invariants, checked over randomized executions across every
// adversary and delay model:
//   (a) |ADJ^i| <= (1+rho)(beta+eps) + rho*delta for every nonfaulty update;
//   (c) nonfaulty round begins are within beta of each other;
//   (b)/(d) hold implicitly: if timers were set in the past the round
//   structure stalls (completed_rounds drops), and late messages corrupt
//   ARR and blow the (a)/(c) bounds.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

struct Theorem4Case {
  std::uint64_t seed;
  FaultKind fault;
  DelayKind delay;
  DriftKind drift;
  std::int32_t n;
  std::int32_t f;
  // Variant knobs: the invariants must survive every algorithm variant too.
  std::int32_t k_exchanges = 1;
  double stagger = 0.0;
  double amortize = 0.0;
};

std::string case_name(const ::testing::TestParamInfo<Theorem4Case>& info) {
  const auto& c = info.param;
  std::string name = "s" + std::to_string(c.seed);
  name += "_fault" + std::to_string(static_cast<int>(c.fault));
  name += "_delay" + std::to_string(static_cast<int>(c.delay));
  name += "_drift" + std::to_string(static_cast<int>(c.drift));
  name += "_n" + std::to_string(c.n) + "f" + std::to_string(c.f);
  if (c.k_exchanges > 1) name += "_k" + std::to_string(c.k_exchanges);
  if (c.stagger > 0) name += "_stag";
  if (c.amortize > 0) name += "_slew";
  return name;
}

class Theorem4 : public ::testing::TestWithParam<Theorem4Case> {};

TEST_P(Theorem4, InvariantsHold) {
  const Theorem4Case& c = GetParam();
  RunSpec spec;
  spec.params = core::make_params(c.n, c.f, /*rho=*/1e-5, /*delta=*/0.01,
                                  /*eps=*/1e-3, /*P=*/10.0);
  spec.fault = c.fault;
  spec.fault_count = c.fault == FaultKind::kNone ? 0 : c.f;
  spec.delay = c.delay;
  spec.drift = c.drift;
  spec.k_exchanges = c.k_exchanges;
  spec.stagger = c.stagger;
  spec.amortize = c.amortize;
  spec.rounds = 12;
  spec.seed = c.seed;

  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  ASSERT_GE(result.completed_rounds, spec.rounds);

  // (a): every nonfaulty adjustment within the bound.
  EXPECT_LE(result.max_abs_adj, result.adj_bound * (1 + 1e-9));

  // (c): every complete round's begin spread within beta.  (Staggered mode
  // offsets broadcasts deliberately, so (c) is asserted on the plain
  // schedule only.)
  if (c.stagger == 0.0) {
    for (std::size_t r = 0; r < result.begin_spread.size(); ++r) {
      EXPECT_LE(result.begin_spread[r], spec.params.beta * (1 + 1e-9))
          << "round " << r;
    }
  }

  // Theorem 16 while we are here: the skew stays within gamma (plus one
  // adjustment of slew allowance in amortized mode).
  const double gamma_allowance = c.amortize > 0.0 ? result.adj_bound : 0.0;
  EXPECT_LE(result.gamma_measured,
            (result.gamma_bound + gamma_allowance) * (1 + 1e-9));
}

std::vector<Theorem4Case> theorem4_cases() {
  std::vector<Theorem4Case> cases;
  const FaultKind faults[] = {FaultKind::kNone, FaultKind::kSilent,
                              FaultKind::kSpam, FaultKind::kTwoFaced,
                              FaultKind::kLiar};
  const DelayKind delays[] = {DelayKind::kUniform, DelayKind::kFast,
                              DelayKind::kSlow, DelayKind::kPerLink,
                              DelayKind::kSplit};
  const DriftKind drifts[] = {DriftKind::kExtremal, DriftKind::kPiecewise,
                              DriftKind::kRandomWalk};
  std::uint64_t seed = 1;
  for (FaultKind fault : faults) {
    for (DelayKind delay : delays) {
      cases.push_back({seed++, fault, delay, DriftKind::kExtremal, 7, 2});
    }
    for (DriftKind drift : drifts) {
      cases.push_back({seed++, fault, DelayKind::kUniform, drift, 4, 1});
    }
  }
  // Larger configurations, fewer seeds.
  cases.push_back({seed++, FaultKind::kTwoFaced, DelayKind::kUniform,
                   DriftKind::kPiecewise, 10, 3});
  cases.push_back({seed++, FaultKind::kSpam, DelayKind::kSplit,
                   DriftKind::kRandomWalk, 13, 4});
  // Algorithm variants under every fault class.
  for (FaultKind fault : faults) {
    Theorem4Case kex{seed++, fault, DelayKind::kUniform, DriftKind::kExtremal,
                     7, 2};
    kex.k_exchanges = 2;
    cases.push_back(kex);
    Theorem4Case stag{seed++, fault, DelayKind::kUniform, DriftKind::kExtremal,
                      7, 2};
    stag.stagger = 0.002;
    cases.push_back(stag);
    Theorem4Case slew{seed++, fault, DelayKind::kUniform, DriftKind::kExtremal,
                      7, 2};
    slew.amortize = 0.5;
    cases.push_back(slew);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem4, ::testing::ValuesIn(theorem4_cases()),
                         case_name);

// The A2 boundary.  With n >= 3f+1 the reduce step leaves n - 2f >= f+1
// values, any two processes' kept ranges overlap in an honest value
// (Lemma 23/24), and the gamma bound holds against EVERY adversary —
// including our strongest constructive splitter.  Below the threshold the
// guarantee degrades monotonically as the splitter gains leverage over the
// kept range.  (Outright divergence at n = 3f is shown impossible to
// *prevent* by [DHS] via an indistinguishability argument; that adversary
// is not a constructive message strategy, so what a concrete attack shows
// is degradation, not explosion — see EXPERIMENTS.md.)
TEST(FaultBoundary, GuaranteeDegradesBelowThreeFPlusOne) {
  auto worst_ratio = [&](std::int32_t n, std::int32_t f) {
    core::Params p;
    p.n = n;
    p.f = f;
    p.rho = 1e-5;
    p.delta = 0.01;
    p.eps = 1e-3;
    p.P = 10.0;
    p.beta = core::beta_for_round_length(p.P, p.rho, p.delta, p.eps) * 1.05;
    double worst = 0.0;
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      RunSpec spec;
      spec.params = p;
      spec.fault = FaultKind::kTwoFaced;
      spec.fault_count = f;
      spec.rounds = 30;
      spec.seed = seed;
      const RunResult result = run_experiment(spec);
      worst = std::max(worst, result.gamma_measured / result.gamma_bound);
    }
    return worst;
  };

  // At and above the A2 threshold: gamma holds with margin.
  const double ok_f2 = worst_ratio(7, 2);
  const double ok_f3 = worst_ratio(10, 3);
  EXPECT_LE(ok_f2, 1.0);
  EXPECT_LE(ok_f3, 1.0);
  // At n = 2f+1 (deep below the threshold) the same attack does measurably
  // more damage; the trend toward breakage is monotone.
  EXPECT_GE(worst_ratio(5, 2), 1.3 * ok_f2);
  EXPECT_GE(worst_ratio(7, 3), 1.3 * ok_f3);
}

}  // namespace
}  // namespace wlsync::analysis
