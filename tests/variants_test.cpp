// The Section 7 and Section 9.3/4.1 variants: k exchanges per round, mean
// averaging, staggered broadcasts, amortized (slewed) corrections.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f, double P = 10.0) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, P);
}

// Section 7's k-exchange claim: beta >= 4 eps + 2 rho P 2^k/(2^k - 1).  The
// eps term is k-independent; the k win is in the *drift* term — halving k
// times per round shrinks the steady-state spread toward 2 rho P instead of
// 4 rho P.  Make drift dominate (rho = 1e-4, P = 10, eps = 1e-5) and pit
// the algorithm against the worst-case splitter (which enforces the halving
// dynamics); steady begin spreads must scale like 2^k/(2^k - 1):
//   k=1 : k=2 : k=3  ~  2 : 4/3 : 8/7  (ratios 1.5 and 1.75 vs k=1).
TEST(KExchange, SteadySpreadScalesLikeTwoToKOverTwoToKMinusOne) {
  core::Params p;
  p.n = 4;
  p.f = 1;
  p.rho = 1e-4;
  p.delta = 0.01;
  p.eps = 1e-5;
  p.P = 10.0;
  p.beta = 8e-3;  // ~ 2 * 4 rho P: room for the k=1 equilibrium
  ASSERT_TRUE(core::validate(p).empty());

  auto steady_spread = [&](std::int32_t k) {
    RunSpec spec;
    spec.params = p;
    spec.k_exchanges = k;
    spec.fault = FaultKind::kTwoFaced;
    spec.fault_count = 1;
    spec.delay = DelayKind::kSlow;   // jitter-free: isolate the drift term
    spec.drift = DriftKind::kExtremal;
    spec.drift_period = 1000.0;      // constant rates: sustained divergence
    spec.rounds = 14;
    spec.seed = 21;
    const RunResult result = run_experiment(spec);
    EXPECT_FALSE(result.diverged) << "k=" << k;
    // Average the last few rounds' begin spreads.
    double sum = 0.0;
    int count = 0;
    for (std::size_t r = result.begin_spread.size() - 5;
         r < result.begin_spread.size(); ++r) {
      sum += result.begin_spread[r];
      ++count;
    }
    return sum / count;
  };

  const double s1 = steady_spread(1);
  const double s2 = steady_spread(2);
  const double s3 = steady_spread(3);
  // Monotone improvement, in roughly the predicted proportions.
  EXPECT_LT(s2, 0.85 * s1);
  EXPECT_LT(s3, s2);
  EXPECT_NEAR(s1 / s2, 1.5, 0.35);
  EXPECT_NEAR(s1 / s3, 1.75, 0.45);
}

TEST(KExchange, GammaStillHoldsWithFaults) {
  RunSpec spec;
  spec.params = standard(7, 2, 12.0);
  spec.k_exchanges = 2;
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 10;
  spec.seed = 22;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
}

// Section 7's mean-vs-midpoint comparison is a statement about worst-case
// *bounds*: the adversary can shift the reduced mean by only f/(n-2f) of
// the kept spread versus up to 1/2 for the kept-range midpoint.  The rate
// itself is verified as a multiset property (MeanVariant.
// ConvergenceRateScalesWithNf in multiset_lemmas_test); the midpoint's 1/2
// is realized by the splitter only near n = 3f+1, where the kept set is
// sparse (see Convergence.SpreadHalvesPerRoundUnderWorstCaseSplitter).  At
// the system level we check what the variant must deliver: for n >> f the
// mean variant converges from a wide spread at least as fast as the
// midpoint and holds the same steady floor under active steering.
TEST(MeanVariant, ConvergesAndHoldsFloorUnderSteeringForLargeN) {
  core::Params p;
  p.n = 16;
  p.f = 2;
  p.rho = 1e-7;
  p.delta = 0.01;
  p.eps = 1e-6;
  p.P = 5.0;
  p.beta = 4e-3;
  ASSERT_TRUE(core::validate(p).empty());

  auto run = [&](core::Averaging averaging) {
    RunSpec spec;
    spec.params = p;
    spec.averaging = averaging;
    spec.fault = FaultKind::kTwoFaced;
    spec.fault_count = 2;
    spec.initial_spread = 0.9 * p.beta;
    spec.rounds = 12;
    spec.seed = 23;
    const RunResult result = run_experiment(spec);
    EXPECT_FALSE(result.diverged);
    EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
    return result;
  };

  const RunResult midpoint = run(core::Averaging::kMidpoint);
  const RunResult mean = run(core::Averaging::kReducedMean);
  ASSERT_GE(mean.begin_spread.size(), 4u);
  // One steered round cuts the mean variant's spread by at least the
  // f/(n-2f) + noise factor (far below 1/2).
  EXPECT_LT(mean.begin_spread[1], 0.35 * mean.begin_spread[0]);
  // Comparable (or better) steady behaviour vs the midpoint.
  EXPECT_LE(mean.gamma_measured, 1.5 * midpoint.gamma_measured);
}

TEST(MeanVariant, StillToleratesWorstAdversary) {
  RunSpec spec;
  spec.params = standard(16, 5, 10.0);
  spec.averaging = core::Averaging::kReducedMean;
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 5;
  spec.rounds = 12;
  spec.seed = 24;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
}

// Section 9.3: staggered broadcasts must behave "very similarly" to the
// original (no collisions configured here — pure algorithm change).
TEST(Stagger, BehavesLikeOriginalWithoutCollisions) {
  auto gamma_with_stagger = [&](double sigma) {
    RunSpec spec;
    spec.params = standard(7, 2, 10.0);
    spec.stagger = sigma;
    spec.rounds = 12;
    spec.seed = 25;
    const RunResult result = run_experiment(spec);
    EXPECT_FALSE(result.diverged) << "sigma=" << sigma;
    EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9))
        << "sigma=" << sigma;
    return result.gamma_measured;
  };
  const double plain = gamma_with_stagger(0.0);
  const double staggered = gamma_with_stagger(0.002);
  // Same ballpark: within 2x of each other.
  EXPECT_LT(staggered, 2.0 * plain + 1e-4);
}

// Section 4.1: negative adjustments can be stretched over the interval.
// The displayed local time must then be monotone, while agreement still
// holds with a modest allowance for the slew window.
TEST(Amortized, DisplayedTimeIsMonotoneAndAgrees) {
  RunSpec spec;
  spec.params = standard(4, 1, 5.0);
  spec.amortize = 0.5;  // spread each adjustment over 0.5 s
  spec.rounds = 12;
  spec.seed = 26;
  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_FALSE(result.diverged);

  // Monotonicity of displayed local time for every honest process.
  for (std::int32_t id : result.honest) {
    double prev = experiment.simulator().local_time(id, result.tmax0);
    for (double t = result.tmax0; t <= result.t_end; t += spec.params.P / 40) {
      const double current = experiment.simulator().local_time(id, t);
      EXPECT_GE(current, prev - 1e-12) << "id=" << id << " t=" << t;
      prev = current;
    }
  }
  // Agreement: slewing can lag the step by up to the largest adjustment.
  EXPECT_LE(result.gamma_measured,
            result.gamma_bound + result.adj_bound + 1e-9);
}

// Without amortization, steps can move displayed time backwards — confirm
// the contrast so the monotonicity test above is not vacuous.
TEST(Amortized, SteppedCorrectionCanGoBackwards) {
  RunSpec spec;
  spec.params = standard(4, 1, 5.0);
  spec.amortize = 0.0;
  spec.initial_spread = spec.params.beta * 0.9;  // force visible adjustments
  spec.delay = DelayKind::kSlow;
  spec.rounds = 3;
  spec.seed = 27;
  Experiment experiment(spec);
  const RunResult result = experiment.run();
  ASSERT_FALSE(result.diverged);
  // Sample at 0.5 ms: a backward step of ~beta/2 (>= 2 ms) beats the forward
  // progress between samples and shows up as a decrease.  Scan the first two
  // rounds, where the initial-offset corrections land.
  bool any_backwards = false;
  for (std::int32_t id : result.honest) {
    double prev = -1e300;
    for (double t = result.tmax0; t <= result.tmax0 + 2 * spec.params.P;
         t += 5e-4) {
      const double current = experiment.simulator().local_time(id, t);
      if (current < prev - 1e-12) any_backwards = true;
      prev = current;
    }
  }
  EXPECT_TRUE(any_backwards);
}

}  // namespace
}  // namespace wlsync::analysis
