// Cross-module integration: full lifecycles combining start-up, maintenance,
// faults, and reintegration, plus determinism of the whole pipeline.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
}

TEST(Integration, ColdStartToMaintenanceUnderFaults) {
  StartupSpec spec;
  spec.params = standard(7, 2);
  spec.rounds = 12;
  spec.handoff = true;
  spec.initial_clock_spread = 3.0;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.seed = 11;
  const StartupResult result = run_startup(spec);
  EXPECT_TRUE(result.handoff_done);
  const core::Derived d = core::derive(spec.params);
  EXPECT_LE(result.post_handoff_skew, d.gamma * (1 + 1e-9));
}

TEST(Integration, CrashRejoinWithConcurrentByzantineLoad) {
  // Seven processes: one crash/rejoin victim plus six healthy — the victim
  // occupies the f = 2 budget along with message-delay adversity.
  ReintegrationSpec spec;
  spec.params = standard(7, 2);
  spec.crash_at = 15.0;
  spec.wake_at = 80.0;
  spec.rounds = 18;
  spec.delay = DelayKind::kPerLink;
  spec.drift = DriftKind::kRandomWalk;
  spec.seed = 12;
  const ReintegrationResult result = run_reintegration(spec);
  ASSERT_TRUE(result.rejoined);
  EXPECT_LE(result.spread_with_joiner, result.beta * (1 + 1e-9));
  EXPECT_LE(result.skew_after, result.gamma_bound * (1 + 1e-9));
}

TEST(Integration, WholePipelineIsDeterministic) {
  auto fingerprint = [] {
    RunSpec spec;
    spec.params = standard(7, 2);
    spec.fault = FaultKind::kTwoFaced;
    spec.fault_count = 2;
    spec.delay = DelayKind::kPerLink;
    spec.drift = DriftKind::kPiecewise;
    spec.rounds = 10;
    spec.seed = 13;
    const RunResult result = run_experiment(spec);
    return std::make_tuple(result.gamma_measured, result.max_abs_adj,
                           result.final_skew, result.messages);
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(Integration, SeedsActuallyMatter) {
  auto gamma_for = [](std::uint64_t seed) {
    RunSpec spec;
    spec.params = standard(4, 1);
    spec.rounds = 8;
    spec.seed = seed;
    return run_experiment(spec).gamma_measured;
  };
  EXPECT_NE(gamma_for(1), gamma_for(2));
}

TEST(Integration, LongRunFortyRoundsStable) {
  RunSpec spec;
  spec.params = standard(7, 2);
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 40;
  spec.seed = 14;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  ASSERT_GE(result.completed_rounds, 40);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
  EXPECT_TRUE(result.validity.holds);
}

TEST(Integration, MixedDriftModelsAcrossProcessesStaySynchronized) {
  // Random-walk drift exercises different per-process rate paths.
  RunSpec spec;
  spec.params = standard(10, 3);
  spec.drift = DriftKind::kRandomWalk;
  spec.fault = FaultKind::kSpam;
  spec.fault_count = 3;
  spec.rounds = 15;
  spec.seed = 15;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
}

}  // namespace
}  // namespace wlsync::analysis
