// Heterogeneous failure mixes: the f-fault budget can be spent on any
// combination of behaviours (A2 places no constraint on *how* the faulty
// processes misbehave).  Theorem 4/16/19 must hold for every mixture.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

struct MixCase {
  std::uint64_t seed;
  std::vector<RunSpec::FaultSpec> mix;
};

class MixedFaults : public ::testing::TestWithParam<MixCase> {};

TEST_P(MixedFaults, AllGuaranteesHold) {
  const MixCase& c = GetParam();
  RunSpec spec;
  std::int32_t f = 0;
  for (const auto& entry : c.mix) f += entry.count;
  spec.params = core::make_params(3 * f + 1, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault_mix = c.mix;
  spec.rounds = 14;
  spec.seed = c.seed;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
  EXPECT_LE(result.max_abs_adj, result.adj_bound * (1 + 1e-9));
  for (double spread : result.begin_spread) {
    EXPECT_LE(spread, spec.params.beta * (1 + 1e-9));
  }
  EXPECT_TRUE(result.validity.holds);
}

std::vector<MixCase> mix_cases() {
  using FS = RunSpec::FaultSpec;
  std::vector<MixCase> cases;
  std::uint64_t seed = 100;
  // f = 2 mixes.
  cases.push_back({seed++, {FS{FaultKind::kSilent, 1}, FS{FaultKind::kTwoFaced, 1}}});
  cases.push_back({seed++, {FS{FaultKind::kSpam, 1}, FS{FaultKind::kTwoFaced, 1}}});
  cases.push_back({seed++, {FS{FaultKind::kLiar, 1}, FS{FaultKind::kSilent, 1}}});
  // f = 3 mixes.
  cases.push_back({seed++,
                   {FS{FaultKind::kSilent, 1}, FS{FaultKind::kSpam, 1},
                    FS{FaultKind::kTwoFaced, 1}}});
  cases.push_back({seed++,
                   {FS{FaultKind::kLiar, 1}, FS{FaultKind::kTwoFaced, 2}}});
  // f = 4, everything at once.
  cases.push_back({seed++,
                   {FS{FaultKind::kSilent, 1}, FS{FaultKind::kSpam, 1},
                    FS{FaultKind::kTwoFaced, 1}, FS{FaultKind::kLiar, 1}}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Mixes, MixedFaults, ::testing::ValuesIn(mix_cases()));

TEST(MixedFaults, MixOverridesHomogeneousFields) {
  RunSpec spec;
  spec.params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = FaultKind::kTwoFaced;  // would be 2 splitters...
  spec.fault_count = 2;
  spec.fault_mix = {RunSpec::FaultSpec{FaultKind::kSilent, 1}};  // ...but mix wins
  spec.rounds = 8;
  spec.seed = 1;
  const RunResult result = run_experiment(spec);
  // Only one faulty process: 6 honest remain.
  EXPECT_EQ(result.honest.size(), 6u);
  EXPECT_FALSE(result.diverged);
}

TEST(MixedFaults, RejectsAllFaulty) {
  RunSpec spec;
  spec.params = core::make_params(4, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault_mix = {RunSpec::FaultSpec{FaultKind::kSilent, 4}};
  EXPECT_THROW((void)Experiment{spec}, std::invalid_argument);
}

}  // namespace
}  // namespace wlsync::analysis
