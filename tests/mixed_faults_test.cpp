// Heterogeneous failure mixes: the f-fault budget can be spent on any
// combination of behaviours (A2 places no constraint on *how* the faulty
// processes misbehave).  Theorem 4/16/19 must hold for every mixture.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

struct MixCase {
  std::uint64_t seed;
  std::vector<RunSpec::FaultSpec> mix;
};

class MixedFaults : public ::testing::TestWithParam<MixCase> {};

TEST_P(MixedFaults, AllGuaranteesHold) {
  const MixCase& c = GetParam();
  RunSpec spec;
  std::int32_t f = 0;
  for (const auto& entry : c.mix) f += entry.count;
  spec.params = core::make_params(3 * f + 1, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault_mix = c.mix;
  spec.rounds = 14;
  spec.seed = c.seed;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
  EXPECT_LE(result.max_abs_adj, result.adj_bound * (1 + 1e-9));
  for (double spread : result.begin_spread) {
    EXPECT_LE(spread, spec.params.beta * (1 + 1e-9));
  }
  EXPECT_TRUE(result.validity.holds);
}

std::vector<MixCase> mix_cases() {
  using FS = RunSpec::FaultSpec;
  std::vector<MixCase> cases;
  std::uint64_t seed = 100;
  // f = 2 mixes.
  cases.push_back({seed++, {FS{FaultKind::kSilent, 1}, FS{FaultKind::kTwoFaced, 1}}});
  cases.push_back({seed++, {FS{FaultKind::kSpam, 1}, FS{FaultKind::kTwoFaced, 1}}});
  cases.push_back({seed++, {FS{FaultKind::kLiar, 1}, FS{FaultKind::kSilent, 1}}});
  // f = 3 mixes.
  cases.push_back({seed++,
                   {FS{FaultKind::kSilent, 1}, FS{FaultKind::kSpam, 1},
                    FS{FaultKind::kTwoFaced, 1}}});
  cases.push_back({seed++,
                   {FS{FaultKind::kLiar, 1}, FS{FaultKind::kTwoFaced, 2}}});
  // f = 4, everything at once.
  cases.push_back({seed++,
                   {FS{FaultKind::kSilent, 1}, FS{FaultKind::kSpam, 1},
                    FS{FaultKind::kTwoFaced, 1}, FS{FaultKind::kLiar, 1}}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Mixes, MixedFaults, ::testing::ValuesIn(mix_cases()));

TEST(MixedFaults, MixOverridesHomogeneousFields) {
  RunSpec spec;
  spec.params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = FaultKind::kTwoFaced;  // would be 2 splitters...
  spec.fault_count = 2;
  spec.fault_mix = {RunSpec::FaultSpec{FaultKind::kSilent, 1}};  // ...but mix wins
  spec.rounds = 8;
  spec.seed = 1;
  const RunResult result = run_experiment(spec);
  // Only one faulty process: 6 honest remain.
  EXPECT_EQ(result.honest.size(), 6u);
  EXPECT_FALSE(result.diverged);
}

// ------------------------------------------------------- sparse graphs ---
//
// The original suite runs every mix on the full mesh only; these cases put
// mixed faults on the PR 2 sparse exchange graphs, where the honest
// processes clamp their clipping budget to the *local* view
// (f_local = (deg - 1) / 3, welch_lynch.cpp) instead of the global f.  The
// paper's gamma bound assumes the mesh, so the assertions here are the
// sparse-regime contract: every round completes, clocks stay together, and
// nothing diverges.

struct SparseMixCase {
  const char* name;
  std::uint64_t seed;
  net::TopologySpec topology;
  proc::PlacementKind placement;
  std::vector<RunSpec::FaultSpec> mix;
};

class SparseMixedFaults : public ::testing::TestWithParam<SparseMixCase> {};

TEST_P(SparseMixedFaults, StaysTogetherUnderLocalQuorumClamp) {
  const SparseMixCase& c = GetParam();
  RunSpec spec;
  std::int32_t f = 0;
  for (const auto& entry : c.mix) f += entry.count;
  // n = 32 keeps the global A2 ratio comfortable; the binding constraint is
  // the local one — clique size 8 / degree 8 puts deg at 8..9 incl. self,
  // so f_local = (8 - 1) / 3 = 2 and the mixes below stay within it.
  spec.params = core::make_params(32, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.topology = c.topology;
  spec.placement = c.placement;
  spec.fault_mix = c.mix;
  spec.rounds = 10;
  spec.seed = c.seed;
  spec.measure_gradient = true;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged) << c.name;
  EXPECT_GE(result.completed_rounds, spec.rounds) << c.name;
  // Loose sparse-regime envelope: an order of magnitude over the mesh
  // bound, far below divergence.  (Measured values sit well inside it.)
  EXPECT_LT(result.gamma_measured, 10.0 * result.gamma_bound) << c.name;
  ASSERT_TRUE(result.gradient.measured()) << c.name;
  EXPECT_GT(result.gradient.diameter, 1) << c.name;
}

std::vector<SparseMixCase> sparse_mix_cases() {
  using FS = RunSpec::FaultSpec;
  net::TopologySpec cliques;
  cliques.kind = net::TopologyKind::kRingOfCliques;
  cliques.clique_size = 8;
  net::TopologySpec expander;
  expander.kind = net::TopologyKind::kKRegular;
  expander.degree = 8;
  return {
      {"cliques_trailing_mixed", 600, cliques, proc::PlacementKind::kTrailing,
       {FS{FaultKind::kSilent, 1}, FS{FaultKind::kTwoFaced, 1}}},
      {"cliques_joint_twofaced", 601, cliques, proc::PlacementKind::kArticulation,
       {FS{FaultKind::kTwoFaced, 2}}},
      {"cliques_random_mixed", 602, cliques, proc::PlacementKind::kRandom,
       {FS{FaultKind::kSpam, 1}, FS{FaultKind::kTwoFaced, 1}}},
      {"expander_maxdeg_mixed", 603, expander, proc::PlacementKind::kMaxDegree,
       {FS{FaultKind::kSilent, 1}, FS{FaultKind::kSpam, 1},
        FS{FaultKind::kTwoFaced, 1}}},
      {"expander_antipodal_liar", 604, expander, proc::PlacementKind::kAntipodal,
       {FS{FaultKind::kLiar, 1}, FS{FaultKind::kTwoFaced, 1}}},
  };
}

INSTANTIATE_TEST_SUITE_P(SparseMixes, SparseMixedFaults,
                         ::testing::ValuesIn(sparse_mix_cases()),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(MixedFaults, RejectsAllFaulty) {
  RunSpec spec;
  spec.params = core::make_params(4, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault_mix = {RunSpec::FaultSpec{FaultKind::kSilent, 4}};
  EXPECT_THROW((void)Experiment{spec}, std::invalid_argument);
}

}  // namespace
}  // namespace wlsync::analysis
