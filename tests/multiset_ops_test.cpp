// Unit tests for the Appendix multiset operations.

#include <gtest/gtest.h>

#include "multiset/multiset_ops.h"

namespace wlsync::ms {
namespace {

TEST(MultisetOps, MinMaxMidDiam) {
  const Multiset u{3.0, -1.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(max_of(u), 4.0);
  EXPECT_DOUBLE_EQ(min_of(u), -1.0);
  EXPECT_DOUBLE_EQ(diam(u), 5.0);
  EXPECT_DOUBLE_EQ(mid(u), 1.5);
}

TEST(MultisetOps, MidOfSingleton) {
  const Multiset u{7.0};
  EXPECT_DOUBLE_EQ(mid(u), 7.0);
  EXPECT_DOUBLE_EQ(diam(u), 0.0);
}

TEST(MultisetOps, MeanBasic) {
  const Multiset u{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(u), 2.0);
}

TEST(MultisetOps, ReduceRemovesExtremes) {
  const Multiset u{10.0, 1.0, 5.0, 7.0, 3.0};
  const Multiset kept = reduce(u, 1);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept.front(), 3.0);
  EXPECT_DOUBLE_EQ(kept.back(), 7.0);
}

TEST(MultisetOps, ReduceZeroFaultsIsIdentityAsMultiset) {
  const Multiset u{2.0, 1.0, 2.0};
  const Multiset kept = reduce(u, 0);
  EXPECT_EQ(kept.size(), 3u);
}

TEST(MultisetOps, ReduceHandlesDuplicateExtremes) {
  // Duplicates: reduce removes only f occurrences from each end.
  const Multiset u{1.0, 1.0, 5.0, 9.0, 9.0};
  const Multiset kept = reduce(u, 1);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept.front(), 1.0);
  EXPECT_DOUBLE_EQ(kept.back(), 9.0);
}

TEST(MultisetOps, FaultTolerantMidpointIgnoresOutliers) {
  // One absurd value must not move the result beyond the honest range.
  const Multiset u{0.0, 0.1, 0.2, 1e9};
  const double av = fault_tolerant_midpoint(u, 1);
  EXPECT_GE(av, 0.0);
  EXPECT_LE(av, 0.2);
}

TEST(MultisetOps, FaultTolerantMeanIgnoresOutliers) {
  const Multiset u{0.0, 0.1, 0.2, -1e9};
  const double av = fault_tolerant_mean(u, 1);
  EXPECT_GE(av, 0.0);
  EXPECT_LE(av, 0.2);
}

TEST(MultisetOps, DropMinMaxRemoveOneOccurrence) {
  const Multiset u{1.0, 1.0, 2.0};
  EXPECT_EQ(drop_min(u).size(), 2u);
  EXPECT_DOUBLE_EQ(min_of(drop_min(u)), 1.0);  // one copy survives
  EXPECT_DOUBLE_EQ(max_of(drop_max(u)), 1.0);
}

TEST(XDistance, ZeroWhenIdentical) {
  const Multiset u{1.0, 2.0, 3.0};
  EXPECT_EQ(x_distance(u, u, 0.0), 0u);
}

TEST(XDistance, CountsUnpairable) {
  const Multiset u{0.0, 10.0};
  const Multiset v{0.05, 20.0};
  EXPECT_EQ(x_distance(u, v, 0.1), 1u);   // 10 cannot pair
  EXPECT_EQ(x_distance(u, v, 10.0), 0u);  // both pair
}

TEST(XDistance, UsesOptimalMatching) {
  // Greedy-by-value traps: u = {1, 2}, v = {1.9, 2.1}, x = 1.
  // Pairing 1<->1.9 and 2<->2.1 works; a bad matcher might pair 2<->1.9
  // and strand 1.  Distance must be 0.
  const Multiset u{1.0, 2.0};
  const Multiset v{1.9, 2.1};
  EXPECT_EQ(x_distance(u, v, 1.0), 0u);
}

TEST(XDistance, SwapsWhenFirstIsLarger) {
  const Multiset u{1.0, 2.0, 3.0};
  const Multiset v{2.0};
  EXPECT_EQ(x_distance(u, v, 0.5), 0u);  // v's 2.0 pairs with u's 2.0
}

TEST(XDistance, DuplicatesNeedDistinctPartners) {
  const Multiset u{5.0, 5.0};
  const Multiset v{5.0, 100.0};
  EXPECT_EQ(x_distance(u, v, 0.1), 1u);  // only one 5-partner available
}

TEST(MultisetOps, PreconditionViolationsThrow) {
  const Multiset empty;
  EXPECT_THROW((void)max_of(empty), std::invalid_argument);
  EXPECT_THROW((void)min_of(empty), std::invalid_argument);
  EXPECT_THROW((void)mean(empty), std::invalid_argument);
  EXPECT_THROW((void)drop_min(empty), std::invalid_argument);
  EXPECT_THROW((void)drop_max(empty), std::invalid_argument);
  const Multiset four{1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW((void)reduce(four, 2), std::invalid_argument);  // needs 2f+1=5
  EXPECT_NO_THROW((void)reduce(four, 1));
}

TEST(XCovers, RequiresSizeAndDistance) {
  const Multiset w{1.0, 2.0};
  const Multiset u{1.0, 2.0, 3.0};
  EXPECT_TRUE(x_covers(w, u, 0.0));
  EXPECT_FALSE(x_covers(u, w, 0.0));  // |W| > |U|
}

}  // namespace
}  // namespace wlsync::ms
