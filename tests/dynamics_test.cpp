// Dynamic-topology schedules (net/dynamics.h): spec validation, the
// deterministic tier-2 application path, bit-identical reruns (serial and
// through the ParallelRunner), churn routing, the split/heal agreement
// story, and the named engine refusals — a dynamic run must NEVER silently
// execute on a stale static graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel_runner.h"
#include "core/params.h"
#include "net/dynamics.h"
#include "net/topology.h"

namespace wlsync {
namespace {

using analysis::EngineMode;
using analysis::RunResult;
using analysis::RunSpec;
using net::DynamicsSpec;
using net::TopologyKind;

RunSpec cliques_spec() {
  RunSpec spec;
  spec.params = core::make_params(16, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.topology.kind = TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 8;
  spec.rounds = 12;
  spec.seed = 20260808;
  return spec;
}

// ------------------------------------------------------------ validation ---

TEST(DynamicsSpec, ValidateRejectsMalformedSchedules) {
  {
    DynamicsSpec dyn;
    dyn.fail_link(5.0, 3, 16);  // id out of range
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    dyn.fail_link(5.0, 3, 3);  // self-link
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    dyn.fail_link(-1.0, 3, 4);  // negative time
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    dyn.split(5.0, {});  // empty group
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    std::vector<std::int32_t> everyone(16);
    for (std::int32_t i = 0; i < 16; ++i) everyone[i] = i;
    dyn.split(5.0, everyone);  // not a PROPER subset
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    dyn.leave(5.0, 3).leave(8.0, 3);  // double leave
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    dyn.rejoin(5.0, 3);  // rejoin without a leave
    EXPECT_THROW(dyn.validate(16, 0.0), std::invalid_argument);
  }
  {
    DynamicsSpec dyn;
    dyn.leave(5.0, 3).rejoin(10.0, 3);  // dead window below min_down
    EXPECT_THROW(dyn.validate(16, 20.0), std::invalid_argument);
    EXPECT_NO_THROW(dyn.validate(16, 5.0));
  }
  {
    DynamicsSpec dyn;
    dyn.fail_link(5.0, 3, 12).heal_link(45.0, 3, 12);
    dyn.split(50.0, {0, 1, 2}).merge(80.0, {0, 1, 2});
    EXPECT_NO_THROW(dyn.validate(16, 0.0));
    EXPECT_TRUE(dyn.topology_changing());
    EXPECT_FALSE(dyn.has_churn());
  }
}

TEST(DynamicsSpec, ChurnIntervalsExtractsSortedWindows) {
  DynamicsSpec dyn;
  dyn.leave(60.0, 7).rejoin(140.0, 7).leave(30.0, 2);
  const auto windows = net::churn_intervals(dyn);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows.at(7).front().leave, 60.0);
  EXPECT_DOUBLE_EQ(windows.at(7).front().rejoin, 140.0);
  EXPECT_DOUBLE_EQ(windows.at(2).front().leave, 30.0);
  EXPECT_EQ(windows.at(2).front().rejoin, net::kNeverRejoins);
  EXPECT_TRUE(dyn.has_churn());
  EXPECT_FALSE(dyn.topology_changing());
}

// ---------------------------------------------------------- determinism ---

TEST(Dynamics, LinkFailHealIsDeterministicAndCounted) {
  RunSpec spec = cliques_spec();
  spec.dynamics.fail_link(25.0, 0, 1).heal_link(65.0, 0, 1);

  const RunResult a = analysis::run(spec);
  const RunResult b = analysis::run(spec);
  EXPECT_TRUE(analysis::results_identical(a, b));
  EXPECT_EQ(a.dynamics_applied, 2);
  EXPECT_FALSE(a.diverged);

  // The schedule must actually change the execution relative to the
  // static graph (same seed, no dynamics).
  RunSpec static_spec = cliques_spec();
  static_spec.engine = EngineMode::kEvent;  // comparable refusal-free run
  const RunResult s = analysis::run(static_spec);
  EXPECT_EQ(s.dynamics_applied, 0);
  EXPECT_FALSE(analysis::results_identical(a, s));
}

TEST(Dynamics, ParallelRunnerMatchesSerial) {
  RunSpec spec = cliques_spec();
  spec.dynamics.fail_link(25.0, 0, 1).heal_link(65.0, 0, 1);
  spec.dynamics.leave(30.0, 4).rejoin(70.0, 4);

  const RunResult serial = analysis::run(spec);
  const std::vector<RunResult> parallel =
      analysis::run_experiments({spec, spec}, /*threads=*/2);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_TRUE(analysis::results_identical(serial, parallel[0]));
  EXPECT_TRUE(analysis::results_identical(serial, parallel[1]));
}

TEST(Dynamics, ChurnRoutesThroughReintegrationDeterministically) {
  RunSpec spec = cliques_spec();
  spec.rounds = 16;
  // Leave two rounds in, rejoin after a 5-round absence (>= the 2P dead
  // window the validator enforces).
  spec.dynamics.leave(25.0, 3).rejoin(75.0, 3);

  const RunResult a = analysis::run(spec);
  const RunResult b = analysis::run(spec);
  EXPECT_TRUE(analysis::results_identical(a, b));
  // Leave + rejoin both count as applied scenario events.
  EXPECT_EQ(a.dynamics_applied, 2);
  // The churned id is excluded from the measured honest set: steady-state
  // agreement quantifies the processes that never left.
  EXPECT_EQ(std::count(a.honest.begin(), a.honest.end(), 3), 0);
  EXPECT_EQ(static_cast<std::int32_t>(a.honest.size()), spec.params.n - 1);
  EXPECT_FALSE(a.diverged);
  // The never-left processes keep agreement throughout.
  EXPECT_LT(a.gamma_measured, a.gamma_bound);
}

// ---------------------------------------------------------- split / heal ---

TEST(Dynamics, PartitionSplitBreaksAndMergeRestoresAgreement) {
  // Split the graph into all-fast and all-slow halves: extremal drift with
  // a period longer than the run pins even ids at rate 1+rho and odd ids
  // at 1-rho, so after the split the halves each sync internally and drift
  // apart at ~2 rho per second — agreement degrades without bound until
  // the merge re-attaches the BASE cut edges and the averaging
  // re-converges.  beta is widened so the collection window can still
  // capture the diverged half at merge time; a longer split exceeds the
  // window's capture range and the halves never re-join (the Section 9.1
  // reintegration regime — deliberately out of scope here).
  RunSpec spec;
  spec.params = core::make_params(16, 1, 1e-4, 0.01, 1e-3, 10.0);
  spec.params.beta = 0.1;
  spec.topology.kind = TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 8;
  spec.rounds = 70;
  spec.seed = 7;
  spec.drift_period = 1e6;  // extremal phases never flip mid-run
  spec.stabilize_threshold = 0.03;  // ~2.5x the healthy steady-state skew
  std::vector<std::int32_t> evens;
  for (std::int32_t i = 0; i < 16; i += 2) evens.push_back(i);
  spec.dynamics.split(100.0, evens).merge(500.0, evens);

  const RunResult r = analysis::run(spec);
  EXPECT_EQ(r.dynamics_applied, 2);
  ASSERT_GE(r.completed_rounds, 60);
  EXPECT_FALSE(r.diverged);

  // Round indices: rounds are ~P = 10s, so the split spans ~rounds 10..50.
  const auto skew_max = [&](std::int32_t lo, std::int32_t hi) {
    double m = 0.0;
    for (std::int32_t round = lo; round < hi; ++round) {
      m = std::max(m, r.skew_at_round[static_cast<std::size_t>(round)]);
    }
    return m;
  };
  const double before = skew_max(2, 10);
  const double during = skew_max(12, 50);
  const double after = skew_max(58, r.completed_rounds);
  // Agreement breaks while the halves are separated...
  EXPECT_GT(during, 5.0 * before);
  EXPECT_GT(during, spec.stabilize_threshold);
  // ...and re-establishes after the heal.
  EXPECT_LT(after, spec.stabilize_threshold);
  // The suffix-scan stabilization measurement sees exactly this story: the
  // run stabilizes only after the merge (round ~50), never during the
  // split.
  EXPECT_GE(r.stabilized_round, 45);
  EXPECT_GT(r.stabilization_time, 400.0);
}

TEST(Dynamics, IsolatingANodeDoesNotDivergeTheRest) {
  // Cutting every edge of one process leaves it free-running; the other
  // processes' local-f clamps track the live graph and keep agreement.
  RunSpec spec = cliques_spec();
  spec.rounds = 10;
  spec.dynamics.split(35.0, {5});

  const RunResult r = analysis::run(spec);
  EXPECT_EQ(r.dynamics_applied, 1);
  EXPECT_FALSE(r.diverged);
}

// -------------------------------------------------------------- refusals ---

TEST(Dynamics, EnginesRefuseDynamicSpecsByName) {
  RunSpec spec = cliques_spec();
  spec.dynamics.fail_link(25.0, 0, 1);
  spec.pdes_workers = 2;  // make kAuto consider the PDES engine too
  spec.engine = EngineMode::kAuto;

  const RunResult r = analysis::run(spec);
  EXPECT_NE(r.fastpath_refusal.find("dynamic-topology"), std::string::npos)
      << "fastpath_refusal = " << r.fastpath_refusal;
  EXPECT_NE(r.pdes_refusal.find("dynamic-topology"), std::string::npos)
      << "pdes_refusal = " << r.pdes_refusal;
  EXPECT_FALSE(r.fastpath_engaged);
  EXPECT_EQ(r.pdes_epochs, 0);

  RunSpec force_fast = spec;
  force_fast.engine = EngineMode::kFastpath;
  EXPECT_THROW(analysis::run(force_fast), std::invalid_argument);

  RunSpec force_pdes = spec;
  force_pdes.engine = EngineMode::kPdes;
  EXPECT_THROW(analysis::run(force_pdes), std::invalid_argument);
}

TEST(Dynamics, RequiresWelchLynch) {
  RunSpec spec = cliques_spec();
  spec.algo = analysis::Algo::kST;
  spec.dynamics.fail_link(25.0, 0, 1);
  EXPECT_THROW(analysis::run(spec), std::invalid_argument);
}

TEST(Dynamics, ChurnIdsMustBeDisjointFromByzantineRoster) {
  RunSpec spec = cliques_spec();
  spec.fault = analysis::FaultKind::kSilent;
  spec.fault_count = 1;  // trailing layout: id 15 is faulty
  spec.dynamics.leave(25.0, 15).rejoin(75.0, 15);
  EXPECT_THROW(analysis::run(spec), std::invalid_argument);
}

// Legacy-vs-arena ingestion stays bit-identical under a schedule: both
// discard the collection window identically on a version bump.
TEST(Dynamics, IngestModesAgreeUnderSchedule) {
  RunSpec arena = cliques_spec();
  arena.dynamics.fail_link(25.0, 0, 1).heal_link(65.0, 0, 1);
  RunSpec legacy = arena;
  legacy.ingest = proc::IngestMode::kLegacy;
  EXPECT_TRUE(analysis::results_identical(analysis::run(arena),
                                          analysis::run(legacy)));
}

}  // namespace
}  // namespace wlsync
