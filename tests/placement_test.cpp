// Positional fault placement: articulation points / bridge endpoints
// verified on hand-built graphs; PlacementPolicy determinism; and the
// neighbor-scoped TwoFacedAdversary — it never delivers outside its target
// lists, and with equivalent lists it reproduces the historical pivot-mode
// adversary's delivery trace byte-for-byte.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel_runner.h"
#include "clock/drift.h"
#include "net/topology.h"
#include "proc/adversaries.h"
#include "proc/placement.h"
#include "sim/delay.h"
#include "sim/simulator.h"

namespace wlsync {
namespace {

using net::Topology;
using proc::PlacementKind;

// ------------------------------------------------------- cut structure ---

TEST(CutStructure, PathGraph) {
  // 0 - 1 - 2 - 3: interior vertices cut, every edge a bridge.
  const Topology topo = Topology::from_adjacency({{1}, {2}, {3}, {}});
  EXPECT_EQ(topo.articulation_points(), (std::vector<std::int32_t>{1, 2}));
  EXPECT_EQ(topo.bridge_endpoints(), (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(CutStructure, StarGraph) {
  const Topology topo = Topology::from_adjacency({{1, 2, 3, 4}, {}, {}, {}, {}});
  EXPECT_EQ(topo.articulation_points(), (std::vector<std::int32_t>{0}));
  EXPECT_EQ(topo.bridge_endpoints(), (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(CutStructure, CycleHasNone) {
  const Topology topo = Topology::from_adjacency({{1}, {2}, {3}, {0}});
  EXPECT_TRUE(topo.articulation_points().empty());
  EXPECT_TRUE(topo.bridge_endpoints().empty());
}

TEST(CutStructure, PathOfCliquesCutVerticesExact) {
  // Triangles {0,1,2} {3,4,5} {6,7,8} joined by bridges 2-3 and 5-6 but NOT
  // closed into a ring: the joints are exactly the cut vertices.
  const Topology topo = Topology::from_adjacency({
      {1, 2}, {0, 2}, {0, 1, 3},        // clique 0, joint 2
      {2, 4, 5}, {3, 5}, {3, 4, 6},     // clique 1, joints 3 and 5
      {5, 7, 8}, {6, 8}, {6, 7},        // clique 2, joint 6
  });
  EXPECT_EQ(topo.articulation_points(), (std::vector<std::int32_t>{2, 3, 5, 6}));
  EXPECT_EQ(topo.bridge_endpoints(), (std::vector<std::int32_t>{2, 3, 5, 6}));
}

TEST(CutStructure, ClosedRingOfCliquesIsTwoConnected) {
  // The ring closure gives every inter-clique edge a second path: no cut
  // vertices, no bridges.  (This is why kArticulation placement falls back
  // to degree rank — which leads with the joints — on this family.)
  const Topology topo = Topology::ring_of_cliques(12, 3);
  EXPECT_TRUE(topo.articulation_points().empty());
  EXPECT_TRUE(topo.bridge_endpoints().empty());
}

TEST(CutStructure, DegreeRankingLeadsWithJoints) {
  const Topology topo = Topology::ring_of_cliques(12, 3);
  // Joints 3k and 3k+2 have degree 4 (self + clique + bridge); interiors
  // 3k+1 have degree 3.  Ties break by ascending id.
  const std::vector<std::int32_t> ranking = topo.degree_ranking();
  const std::vector<std::int32_t> joints(ranking.begin(), ranking.begin() + 8);
  EXPECT_EQ(joints, (std::vector<std::int32_t>{0, 2, 3, 5, 6, 8, 9, 11}));
  const std::vector<std::int32_t> interiors(ranking.begin() + 8, ranking.end());
  EXPECT_EQ(interiors, (std::vector<std::int32_t>{1, 4, 7, 10}));
}

// ------------------------------------------------------------ placement ---

TEST(Placement, TrailingMatchesHistoricalLayout) {
  const Topology topo = Topology::full_mesh(10);
  EXPECT_EQ(proc::place_faults(topo, PlacementKind::kTrailing, 3, 1),
            (std::vector<std::int32_t>{7, 8, 9}));
  EXPECT_TRUE(proc::place_faults(topo, PlacementKind::kTrailing, 0, 1).empty());
  EXPECT_THROW((void)proc::place_faults(topo, PlacementKind::kTrailing, 11, 1),
               std::invalid_argument);
}

TEST(Placement, DeterministicForFixedSeedDistinctIds) {
  const Topology topo = Topology::ring_of_cliques(24, 6);
  for (const PlacementKind kind :
       {PlacementKind::kTrailing, PlacementKind::kRandom,
        PlacementKind::kMaxDegree, PlacementKind::kArticulation,
        PlacementKind::kBridge, PlacementKind::kAntipodal}) {
    const std::vector<std::int32_t> a = proc::place_faults(topo, kind, 5, 77);
    const std::vector<std::int32_t> b = proc::place_faults(topo, kind, 5, 77);
    EXPECT_EQ(a, b) << proc::placement_name(kind);
    ASSERT_EQ(a.size(), 5u) << proc::placement_name(kind);
    std::vector<std::int32_t> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate id under " << proc::placement_name(kind);
  }
  // Random placement actually depends on the seed.
  const std::vector<std::int32_t> s1 =
      proc::place_faults(topo, PlacementKind::kRandom, 5, 1);
  bool any_differs = false;
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    any_differs = any_differs ||
                  proc::place_faults(topo, PlacementKind::kRandom, 5, seed) != s1;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Placement, ArticulationPrefersCutVertices) {
  const Topology path_of_cliques = Topology::from_adjacency({
      {1, 2}, {0, 2}, {0, 1, 3},
      {2, 4, 5}, {3, 5}, {3, 4, 6},
      {5, 7, 8}, {6, 8}, {6, 7},
  });
  EXPECT_EQ(proc::place_faults(path_of_cliques, PlacementKind::kArticulation, 2, 1),
            (std::vector<std::int32_t>{2, 3}));
  EXPECT_EQ(proc::place_faults(path_of_cliques, PlacementKind::kBridge, 2, 1),
            (std::vector<std::int32_t>{2, 3}));
  // On the 2-connected closed ring both structural lists are empty: the
  // shortfall falls back to degree rank, i.e. the inter-clique joints.
  const Topology ring = Topology::ring_of_cliques(12, 3);
  EXPECT_EQ(proc::place_faults(ring, PlacementKind::kArticulation, 2, 1),
            (std::vector<std::int32_t>{0, 2}));
}

TEST(Placement, AntipodalRejectsDisconnectedTopology) {
  // The -1 distance sentinels of an unreachable component must not be
  // silently re-selected as duplicates by the greedy k-center.
  const Topology topo = Topology::from_adjacency({{1}, {0}, {3}, {2}});
  EXPECT_THROW((void)proc::place_faults(topo, PlacementKind::kAntipodal, 3, 1),
               std::invalid_argument);
}

TEST(Placement, AntipodalMaximizesSpread) {
  // Pure 12-cycle: the two chosen nodes must realize the diameter 6.
  std::vector<std::vector<std::int32_t>> lists(12);
  for (std::int32_t v = 0; v < 12; ++v) lists[static_cast<std::size_t>(v)] = {(v + 1) % 12};
  const Topology ring = Topology::from_adjacency(lists);
  ASSERT_EQ(ring.diameter(), 6);
  const std::vector<std::int32_t> pair =
      proc::place_faults(ring, PlacementKind::kAntipodal, 2, 1);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(ring.distances_from(pair[0])[static_cast<std::size_t>(pair[1])], 6);
}

// ------------------------------------- neighbor-scoped two-faced attack ---

std::unique_ptr<clk::PhysicalClock> perfect_clock() {
  return std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0), 0.0, 1e-4);
}

/// Counts received messages.
class Counter final : public proc::Process {
 public:
  void on_start(proc::Context&) override {}
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context&, const sim::Message&) override { ++count; }
  int count = 0;
};

/// Broadcasts once on start (the honest trigger the adversary predicts from).
class Beacon final : public proc::Process {
 public:
  void on_start(proc::Context& ctx) override { ctx.broadcast(1, 100.0, 0); }
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context&, const sim::Message&) override {}
};

/// Passive delivery recorder.  Registered faulty so it may read real time —
/// the trace is (arrival real time, sender, forged value), which pins the
/// full observable behaviour of an attack schedule.
class Recorder final : public proc::Process {
 public:
  void on_start(proc::Context&) override {}
  void on_timer(proc::Context&, std::int32_t) override {}
  void on_message(proc::Context& ctx, const sim::Message& m) override {
    log.push_back({proc::AdversaryContext::from(ctx).real_time(), m.from, m.value});
  }
  std::vector<std::tuple<double, std::int32_t, double>> log;
};

proc::TwoFacedAdversary::Config attack_base() {
  proc::TwoFacedAdversary::Config config;
  config.tag = 1;
  config.P = 0.5;
  config.delta = 0.01;
  config.beta = 0.1;
  return config;
}

TEST(ScopedTwoFaced, NeverDeliversOutsideTargetLists) {
  sim::SimConfig config;
  config.delta = 0.01;
  config.eps = 0.0;
  sim::Simulator sim(config, nullptr);
  proc::TwoFacedAdversary::Config attack = attack_base();
  attack.early_targets = {0};
  attack.late_targets = {1};
  // ids 0, 1: victims; id 2: non-neighbor bystander; id 3: beacon; id 4:
  // adversary.
  for (int i = 0; i < 3; ++i) {
    sim.add_process(std::make_unique<Counter>(), perfect_clock(), 0.0, false, -1.0);
  }
  sim.add_process(std::make_unique<Beacon>(), perfect_clock(), 0.0, false, 0.0);
  sim.add_process(std::make_unique<proc::TwoFacedAdversary>(attack),
                  perfect_clock(), 0.0, true, 0.0);
  sim.run_until(3.0);
  // Everyone saw the beacon's broadcast once; only the listed victims saw
  // a forged face on top of it.
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(0)).count, 2);
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(1)).count, 2);
  EXPECT_EQ(dynamic_cast<Counter&>(sim.process(2)).count, 1);
}

TEST(ScopedTwoFaced, PerTargetSpreadSendsOneFacePerVictim) {
  sim::SimConfig config;
  config.delta = 0.01;
  config.eps = 0.0;
  sim::Simulator sim(config, nullptr);
  proc::TwoFacedAdversary::Config attack = attack_base();
  attack.early_targets = {0};
  attack.late_targets = {1, 2};
  attack.per_target_spread = true;
  for (int i = 0; i < 3; ++i) {
    sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, true, -1.0);
  }
  sim.add_process(std::make_unique<Beacon>(), perfect_clock(), 0.0, false, 0.0);
  sim.add_process(std::make_unique<proc::TwoFacedAdversary>(attack),
                  perfect_clock(), 0.0, true, 0.0);
  sim.run_until(3.0);

  // Each victim gets the beacon broadcast plus exactly ONE forged face,
  // and the three faces leave at distinct interpolated in-span instants
  // (victim k fires at tmin + (early_frac + k*step)*beta), so arrival
  // times are strictly increasing across the victim list with eps = 0.
  std::vector<double> face_times;
  for (std::int32_t id = 0; id < 3; ++id) {
    const auto& log = dynamic_cast<Recorder&>(sim.process(id)).log;
    std::vector<std::tuple<double, std::int32_t, double>> faces;
    for (const auto& entry : log) {
      if (std::get<1>(entry) == 4) faces.push_back(entry);
    }
    ASSERT_EQ(faces.size(), 1u) << "victim " << id;
    face_times.push_back(std::get<0>(faces.front()));
  }
  EXPECT_LT(face_times[0], face_times[1]);
  EXPECT_LT(face_times[1], face_times[2]);
}

TEST(ScopedTwoFaced, ListModeReproducesPivotModeByteForByte) {
  // The historical full-mesh attack (pivot/honest_end id ranges) and an
  // explicit-list configuration naming the same victims in the same order
  // must produce identical delivery traces: same sends, same RNG-drawn
  // delays, same arrival times and values.
  const auto run_attack = [](bool list_mode) {
    sim::SimConfig config;
    config.delta = 0.01;
    config.eps = 0.001;
    config.seed = 99;
    sim::Simulator sim(config, sim::make_uniform_delay(0.01, 0.001));
    proc::TwoFacedAdversary::Config attack = attack_base();
    if (list_mode) {
      attack.early_targets = {0, 1};
      attack.late_targets = {2, 3};
    } else {
      attack.pivot = 2;
      attack.honest_end = 4;
    }
    sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, true, -1.0);
    sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, true, -1.0);
    sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, true, -1.0);
    sim.add_process(std::make_unique<Recorder>(), perfect_clock(), 0.0, true, -1.0);
    sim.add_process(std::make_unique<Beacon>(), perfect_clock(), 0.0, false, 0.0);
    sim.add_process(std::make_unique<proc::TwoFacedAdversary>(attack),
                    perfect_clock(), 0.0, true, 0.0);
    sim.run_until(3.0);
    std::vector<std::vector<std::tuple<double, std::int32_t, double>>> logs;
    for (std::int32_t id = 0; id < 4; ++id) {
      logs.push_back(dynamic_cast<Recorder&>(sim.process(id)).log);
    }
    return logs;
  };
  const auto pivot_logs = run_attack(/*list_mode=*/false);
  const auto list_logs = run_attack(/*list_mode=*/true);
  ASSERT_EQ(pivot_logs.size(), list_logs.size());
  for (std::size_t id = 0; id < pivot_logs.size(); ++id) {
    ASSERT_EQ(pivot_logs[id].size(), list_logs[id].size()) << "victim " << id;
    for (std::size_t k = 0; k < pivot_logs[id].size(); ++k) {
      EXPECT_EQ(pivot_logs[id][k], list_logs[id][k])
          << "victim " << id << " delivery " << k;
    }
    EXPECT_GT(pivot_logs[id].size(), 1u);  // the attack actually fired
  }
}

// -------------------------------------------- experiment-level placement ---

TEST(Placement, ExperimentPlacesFaultsPositionally) {
  analysis::RunSpec spec;
  spec.params = core::make_params(24, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 1;
  spec.rounds = 8;
  spec.seed = 7;
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 6;
  spec.placement = PlacementKind::kArticulation;

  const net::Topology topo = net::build_topology(spec.topology, spec.params.n);
  const std::vector<std::int32_t> placed =
      proc::place_faults(topo, spec.placement, 1, spec.seed);
  ASSERT_EQ(placed.size(), 1u);

  const analysis::RunResult result = analysis::run_experiment(spec);
  EXPECT_EQ(result.honest.size(), 23u);
  EXPECT_FALSE(std::binary_search(result.honest.begin(), result.honest.end(),
                                  placed[0]))
      << "placed adversary id must not be in the honest roster";
  EXPECT_FALSE(result.diverged);

  // Positional trials stay deterministic under the parallel runner.
  const std::vector<analysis::RunSpec> specs = analysis::seed_sweep(spec, 300, 4);
  const auto serial = analysis::ParallelRunner(1).run(specs);
  const auto sharded = analysis::ParallelRunner(4).run(specs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(analysis::results_identical(serial[i], sharded[i])) << "trial " << i;
  }
}

}  // namespace
}  // namespace wlsync
