// Section 9.3: on a datagram network, simultaneous broadcasts overflow
// receive buffers ("when the system behaves well, it is punished");
// staggering the broadcast times restores reliability.

#include <gtest/gtest.h>

#include "analysis/experiment.h"

namespace wlsync::analysis {
namespace {

RunSpec ethernet_spec(double stagger, std::uint64_t seed) {
  RunSpec spec;
  // 10 processes, so 10 near-simultaneous datagrams per receiver per round.
  spec.params = core::make_params(10, 3, 1e-5, 0.01, 1e-3, 10.0);
  spec.stagger = stagger;
  // Small NIC: 4 slots, 1 ms service — a burst of 10 in ~2 eps overflows.
  spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/1e-3};
  spec.rounds = 12;
  spec.seed = seed;
  return spec;
}

TEST(Ethernet, SimultaneousBroadcastsDropDatagrams) {
  const RunResult result = run_experiment(ethernet_spec(0.0, 1));
  EXPECT_GT(result.nic_dropped, 0u);
}

TEST(Ethernet, StaggerEliminatesDrops) {
  // sigma = 5 ms spacing >> 1 ms service: queues never build.
  const RunResult result = run_experiment(ethernet_spec(0.005, 1));
  EXPECT_EQ(result.nic_dropped, 0u);
  EXPECT_FALSE(result.diverged);
  EXPECT_LE(result.gamma_measured, result.gamma_bound * (1 + 1e-9));
}

TEST(Ethernet, StaggeredSystemNoWorseThanLossyUnstaggered) {
  const RunResult unstaggered = run_experiment(ethernet_spec(0.0, 2));
  const RunResult staggered = run_experiment(ethernet_spec(0.005, 2));
  // The staggered run keeps every guarantee; the unstaggered run at minimum
  // loses messages, and its skew cannot be meaningfully better.
  EXPECT_EQ(staggered.nic_dropped, 0u);
  EXPECT_GT(unstaggered.nic_dropped, staggered.nic_dropped);
  EXPECT_LE(staggered.gamma_measured,
            std::max(unstaggered.gamma_measured, staggered.gamma_bound));
}

TEST(Ethernet, GenerousNicNeedsNoStagger) {
  RunSpec spec = ethernet_spec(0.0, 3);
  spec.nic = sim::NicConfig{/*capacity=*/64, /*service_time=*/20e-6};
  const RunResult result = run_experiment(spec);
  EXPECT_EQ(result.nic_dropped, 0u);
  EXPECT_FALSE(result.diverged);
}

}  // namespace
}  // namespace wlsync::analysis
