// The Appendix lemmas (21-24) as executable properties over random
// multisets.  These are the facts that make mid(reduce(.)) halve the clock
// separation each round, so we test them directly and exhaustively.

#include <gtest/gtest.h>

#include <algorithm>

#include "multiset/multiset_ops.h"
#include "util/rng.h"

namespace wlsync::ms {
namespace {

struct LemmaCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t f;
};

class MultisetLemmas : public ::testing::TestWithParam<LemmaCase> {};

/// Builds W (the "nonfaulty" values) with |W| = n - f, then U and V of size
/// n whose x-distance from W is zero: each contains all of W perturbed by
/// at most x, plus f arbitrary (Byzantine) values.
struct Instance {
  Multiset w, u, v;
  double x;
};

Instance make_instance(const LemmaCase& c) {
  util::Rng rng(c.seed);
  Instance inst;
  inst.x = rng.uniform(0.0, 0.5);
  const std::size_t honest = c.n - c.f;
  for (std::size_t i = 0; i < honest; ++i) {
    inst.w.push_back(rng.uniform(-10.0, 10.0));
  }
  auto perturbed = [&](double w_val) {
    return w_val + rng.uniform(-inst.x, inst.x);
  };
  for (double w_val : inst.w) {
    inst.u.push_back(perturbed(w_val));
    inst.v.push_back(perturbed(w_val));
  }
  for (std::size_t i = 0; i < c.f; ++i) {
    inst.u.push_back(rng.uniform(-1e6, 1e6));  // Byzantine garbage
    inst.v.push_back(rng.uniform(-1e6, 1e6));
  }
  return inst;
}

TEST_P(MultisetLemmas, ConstructionHasZeroDistance) {
  const Instance inst = make_instance(GetParam());
  EXPECT_EQ(x_distance(inst.w, inst.u, inst.x * (1 + 1e-12)), 0u);
  EXPECT_EQ(x_distance(inst.w, inst.v, inst.x * (1 + 1e-12)), 0u);
}

// Lemma 21: max(reduce(U)) <= max(W) + x and min(reduce(U)) >= min(W) - x.
TEST_P(MultisetLemmas, Lemma21ReduceBoundedByWitness) {
  const LemmaCase c = GetParam();
  const Instance inst = make_instance(c);
  const Multiset kept = reduce(inst.u, c.f);
  const double x = inst.x * (1 + 1e-12) + 1e-12;
  EXPECT_LE(max_of(kept), max_of(inst.w) + x);
  EXPECT_GE(min_of(kept), min_of(inst.w) - x);
}

// Lemma 22: removing the largest (or smallest) element from both multisets
// does not increase the x-distance.
TEST_P(MultisetLemmas, Lemma22DropPreservesDistance) {
  const LemmaCase c = GetParam();
  util::Rng rng(c.seed ^ 0xD00D);
  Multiset u, v;
  for (std::size_t i = 0; i < c.n; ++i) {
    u.push_back(rng.uniform(-5.0, 5.0));
    v.push_back(rng.uniform(-5.0, 5.0));
  }
  for (double x : {0.0, 0.1, 1.0, 3.0}) {
    const std::size_t base = x_distance(u, v, x);
    EXPECT_LE(x_distance(drop_max(u), drop_max(v), x), base);
    EXPECT_LE(x_distance(drop_min(u), drop_min(v), x), base);
  }
}

// Lemma 23: min(reduce(U)) - max(reduce(V)) <= 2x.
TEST_P(MultisetLemmas, Lemma23ReducedRangesOverlapWithin2x) {
  const LemmaCase c = GetParam();
  const Instance inst = make_instance(c);
  const double x = inst.x * (1 + 1e-12) + 1e-12;
  const Multiset ru = reduce(inst.u, c.f);
  const Multiset rv = reduce(inst.v, c.f);
  EXPECT_LE(min_of(ru) - max_of(rv), 2 * x);
  EXPECT_LE(min_of(rv) - max_of(ru), 2 * x);
}

// Lemma 24: |mid(reduce(U)) - mid(reduce(V))| <= diam(W)/2 + 2x.
// This is the halving property: diam(W) is the honest spread (beta), and the
// midpoints land within half of it plus the 2x noise term.
TEST_P(MultisetLemmas, Lemma24MidpointsWithinHalfDiamPlus2x) {
  const LemmaCase c = GetParam();
  const Instance inst = make_instance(c);
  const double x = inst.x * (1 + 1e-12) + 1e-12;
  const double lhs = std::abs(fault_tolerant_midpoint(inst.u, c.f) -
                              fault_tolerant_midpoint(inst.v, c.f));
  EXPECT_LE(lhs, 0.5 * diam(inst.w) + 2 * x + 1e-9)
      << "n=" << c.n << " f=" << c.f << " seed=" << c.seed;
}

std::vector<LemmaCase> lemma_cases() {
  std::vector<LemmaCase> cases;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    for (const auto& [n, f] : std::vector<std::pair<std::size_t, std::size_t>>{
             {4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}, {5, 1}, {9, 2}}) {
      cases.push_back({seed * 7919, n, f});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, MultisetLemmas,
                         ::testing::ValuesIn(lemma_cases()));

// Section 7: using the mean, the convergence rate is ~ f/(n-2f).  With
// Byzantine values *inside* the honest range (worst case for the mean), the
// distance between two reduced means is at most
// (f/(n-2f)) * (diam(W) + 2x) + 2x, mirroring [DLPSW1].
TEST(MeanVariant, ConvergenceRateScalesWithNf) {
  util::Rng rng(404);
  const std::size_t n = 16, f = 2;
  for (int trial = 0; trial < 50; ++trial) {
    Multiset w;
    for (std::size_t i = 0; i + f < n; ++i) w.push_back(rng.uniform(0.0, 1.0));
    Multiset u(w), v(w);
    for (std::size_t i = 0; i < f; ++i) {
      u.push_back(rng.uniform(0.0, 1.0));
      v.push_back(rng.uniform(0.0, 1.0));
    }
    const double gap =
        std::abs(fault_tolerant_mean(u, f) - fault_tolerant_mean(v, f));
    const double rate =
        static_cast<double>(f) / static_cast<double>(n - 2 * f);
    EXPECT_LE(gap, rate * diam(w) + 1e-9);
  }
}

}  // namespace
}  // namespace wlsync::ms
