// Unit tests for util: rng determinism, statistics, tables, flags.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace wlsync::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowIsBounded) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, HashNameStable) {
  EXPECT_EQ(hash_name("abc"), hash_name("abc"));
  EXPECT_NE(hash_name("abc"), hash_name("abd"));
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Quantile, InterpolatesAndClamps) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(MeanContraction, HalvingSeries) {
  const std::vector<double> series{16.0, 8.0, 4.0, 2.0, 1.0};
  EXPECT_NEAR(mean_contraction(series, 1e-9), 0.5, 1e-12);
}

TEST(MeanContraction, SkipsFlooredEntries) {
  const std::vector<double> series{16.0, 8.0, 1e-12, 5.0};
  // Only the 16->8 ratio counts; 1e-12 is below the floor as denominator,
  // and 8 -> 1e-12 is a valid (tiny) ratio.
  const double c = mean_contraction(series, 1e-9);
  EXPECT_GT(c, 0.0);
}

TEST(Table, AlignsColumns) {
  Table table({"a", "long_header"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Fmt, Formats) {
  EXPECT_EQ(fmt(1.5), "1.5");
  EXPECT_EQ(fmt_sci(0.001, 1), "1.0e-03");
}

TEST(Flags, ParsesForms) {
  const char* argv[] = {"prog", "--n=7", "--rho", "0.5", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rho", 0.0), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_TRUE(flags.has("n"));
  EXPECT_FALSE(flags.has("missing"));
}

}  // namespace
}  // namespace wlsync::util
