// net/partition.h: topology-cut sharding for the PDES engine.  Correctness
// of the sharded execution never depends on the partition (any assignment
// is bit-identical — tests/pdes_test.cpp), so these tests pin the
// partitioner's own contract: structural invariants (every node assigned,
// every shard nonempty, cut_edges exactly the crossing edges, ascending
// lexicographic), connectivity of every shard's induced subgraph on
// connected inputs, determinism in (topology, k, seed), degenerate inputs
// (k > n, k < 1, k > component count on disconnected graphs), and — on
// small graphs where exhaustive enumeration is feasible — cut minimality
// against the brute-force optimum over balanced connected 2-partitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "net/partition.h"
#include "net/topology.h"

namespace wlsync::net {
namespace {

/// Undirected edge list (u < v, self-loops excluded) of a topology.
std::vector<std::pair<std::int32_t, std::int32_t>> undirected_edges(
    const Topology& topo) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t u = 0; u < topo.n(); ++u) {
    for (const std::int32_t v : topo.neighbors(u)) {
      if (v > u) edges.emplace_back(u, v);
    }
  }
  return edges;
}

/// True when every shard's induced subgraph is connected (singletons are).
bool shards_connected(const Topology& topo, const Partition& part) {
  for (std::int32_t s = 0; s < part.k; ++s) {
    std::int32_t root = -1;
    std::int32_t members = 0;
    for (std::int32_t u = 0; u < part.n(); ++u) {
      if (part.shard_of[static_cast<std::size_t>(u)] != s) continue;
      ++members;
      if (root < 0) root = u;
    }
    if (members == 0) return false;
    std::vector<char> seen(static_cast<std::size_t>(part.n()), 0);
    std::vector<std::int32_t> stack{root};
    seen[static_cast<std::size_t>(root)] = 1;
    std::int32_t reached = 0;
    while (!stack.empty()) {
      const std::int32_t u = stack.back();
      stack.pop_back();
      ++reached;
      for (const std::int32_t v : topo.neighbors(u)) {
        if (v == u || seen[static_cast<std::size_t>(v)] != 0) continue;
        if (part.shard_of[static_cast<std::size_t>(v)] != s) continue;
        seen[static_cast<std::size_t>(v)] = 1;
        stack.push_back(v);
      }
    }
    if (reached != members) return false;
  }
  return true;
}

/// The invariants every partition must satisfy, whatever the input.
void expect_valid(const Topology& topo, const Partition& part,
                  const char* what) {
  ASSERT_EQ(part.n(), topo.n()) << what;
  EXPECT_GE(part.k, 1) << what;
  EXPECT_LE(part.k, topo.n()) << what;
  ASSERT_EQ(static_cast<std::int32_t>(part.shard_sizes.size()), part.k)
      << what;
  std::vector<std::int32_t> counted(static_cast<std::size_t>(part.k), 0);
  for (const std::int32_t s : part.shard_of) {
    ASSERT_GE(s, 0) << what;
    ASSERT_LT(s, part.k) << what;
    ++counted[static_cast<std::size_t>(s)];
  }
  for (std::int32_t s = 0; s < part.k; ++s) {
    EXPECT_EQ(part.shard_sizes[static_cast<std::size_t>(s)],
              counted[static_cast<std::size_t>(s)])
        << what << ", shard " << s;
    EXPECT_GE(counted[static_cast<std::size_t>(s)], 1)
        << what << ", shard " << s;
  }
  // cut_edges is exactly the crossing subset of the edge list, in the same
  // ascending lexicographic order the edge scan produces.
  std::vector<std::pair<std::int32_t, std::int32_t>> expected;
  for (const auto& [u, v] : undirected_edges(topo)) {
    if (part.shard_of[static_cast<std::size_t>(u)] !=
        part.shard_of[static_cast<std::size_t>(v)]) {
      expected.emplace_back(u, v);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(part.cut_edges, expected) << what;
}

/// Brute-force minimum cut over all 2-partitions with both sides connected
/// and sizes within one of balanced.  Only call for n <= ~16.
std::size_t brute_force_min_cut_2(const Topology& topo) {
  const std::int32_t n = topo.n();
  const auto edges = undirected_edges(topo);
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
    const auto size1 = static_cast<std::int32_t>(std::popcount(mask));
    if (std::abs(2 * size1 - n) > 1) continue;
    Partition cand;
    cand.k = 2;
    cand.shard_of.resize(static_cast<std::size_t>(n));
    for (std::int32_t u = 0; u < n; ++u) {
      cand.shard_of[static_cast<std::size_t>(u)] =
          (mask >> static_cast<std::uint32_t>(u)) & 1u;
    }
    if (!shards_connected(topo, cand)) continue;
    std::size_t cut = 0;
    for (const auto& [u, v] : edges) {
      cut += static_cast<std::size_t>(
          cand.shard_of[static_cast<std::size_t>(u)] !=
          cand.shard_of[static_cast<std::size_t>(v)]);
    }
    best = std::min(best, cut);
  }
  return best;
}

// -------------------------------------------------------------- invariants ---

TEST(PartitionTest, InvariantsAcrossTopologiesAndK) {
  const Topology mesh = Topology::full_mesh(17);
  const Topology cliques = Topology::ring_of_cliques(24, 6);
  const Topology expander = Topology::k_regular(32, 8, /*seed=*/3);
  for (const auto* topo : {&mesh, &cliques, &expander}) {
    for (const std::int32_t k : {1, 2, 3, 4, 8}) {
      const Partition part = partition_topology(*topo, k, /*seed=*/11);
      expect_valid(*topo, part, "invariant sweep");
      EXPECT_EQ(part.k, std::min(k, topo->n()));
      EXPECT_TRUE(shards_connected(*topo, part));
    }
  }
}

TEST(PartitionTest, CutMinimalityAgainstBruteForce) {
  // Graphs with a known narrow waist: the partitioner must find the
  // brute-force optimum over balanced connected 2-partitions, not merely
  // some valid split.
  const Topology two_cliques = Topology::ring_of_cliques(12, 6);
  const Topology ring = Topology::k_regular(10, 2, /*seed=*/1);
  const Topology barbell = Topology::from_adjacency({
      // Two K4s joined by a single bridge 3 - 4.
      {1, 2, 3},
      {0, 2, 3},
      {0, 1, 3},
      {0, 1, 2, 4},
      {3, 5, 6, 7},
      {4, 6, 7},
      {4, 5, 7},
      {4, 5, 6},
  });
  for (const auto* topo : {&two_cliques, &ring, &barbell}) {
    const Partition part = partition_topology(*topo, 2, /*seed=*/11);
    expect_valid(*topo, part, "minimality sweep");
    EXPECT_TRUE(shards_connected(*topo, part));
    EXPECT_EQ(part.cut_edges.size(), brute_force_min_cut_2(*topo));
  }
}

TEST(PartitionTest, DeterministicInTopologyKAndSeed) {
  const Topology topo = Topology::k_regular(32, 8, /*seed=*/5);
  const Partition a = partition_topology(topo, 4, /*seed=*/42);
  const Partition b = partition_topology(topo, 4, /*seed=*/42);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.shard_sizes, b.shard_sizes);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
}

// -------------------------------------------------------------- degenerate ---

TEST(PartitionTest, KClampsToN) {
  const Topology topo = Topology::full_mesh(5);
  const Partition part = partition_topology(topo, 8, /*seed=*/1);
  expect_valid(topo, part, "k > n");
  EXPECT_EQ(part.k, 5);
  for (const std::int32_t size : part.shard_sizes) EXPECT_EQ(size, 1);
}

TEST(PartitionTest, KBelowOneMeansSerial) {
  const Topology topo = Topology::ring_of_cliques(12, 6);
  for (const std::int32_t k : {0, -3}) {
    const Partition part = partition_topology(topo, k, /*seed=*/1);
    expect_valid(topo, part, "k < 1");
    EXPECT_EQ(part.k, 1);
    EXPECT_TRUE(part.cut_edges.empty());
  }
}

TEST(PartitionTest, FullMeshHasNoGoodCutButStaysBalanced) {
  // Every balanced split of K_n cuts ~n^2/4 edges; the partitioner cannot
  // do better, but it must still deliver balanced nonempty shards so the
  // engine's per-lane work stays even.
  const Topology topo = Topology::full_mesh(16);
  const Partition part = partition_topology(topo, 4, /*seed=*/7);
  expect_valid(topo, part, "full mesh");
  const auto [lo, hi] =
      std::minmax_element(part.shard_sizes.begin(), part.shard_sizes.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(PartitionTest, MoreShardsThanComponents) {
  // Two disconnected triangles, k = 4: stray components attach whole to
  // the smallest shard, every shard stays nonempty, and no cut edge can
  // cross between components (there are no edges to cross).
  const Topology topo = Topology::from_adjacency({
      {1, 2},
      {0, 2},
      {0, 1},
      {4, 5},
      {3, 5},
      {3, 4},
  });
  const Partition part = partition_topology(topo, 4, /*seed=*/2);
  expect_valid(topo, part, "k > components");
  for (const auto& [u, v] : part.cut_edges) {
    EXPECT_EQ(u < 3, v < 3) << "cut edge crosses disconnected components";
  }
}

}  // namespace
}  // namespace wlsync::net
