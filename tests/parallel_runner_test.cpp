// ParallelRunner: sharded sweeps must be indistinguishable from serial ones
// — result[i] is bit-for-bit the serial run_experiment(specs[i]) — and the
// pool must cover every index exactly once and surface worker exceptions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/parallel_runner.h"

namespace wlsync::analysis {
namespace {

RunSpec cheap_spec() {
  RunSpec spec;
  spec.params = core::make_params(5, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = FaultKind::kTwoFaced;
  spec.fault_count = 1;
  spec.rounds = 5;
  return spec;
}

TEST(ParallelRunner, MatchesSerialBitForBit) {
  const std::vector<RunSpec> specs = seed_sweep(cheap_spec(), 100, 12);
  const std::vector<RunResult> serial = ParallelRunner(1).run(specs);
  const std::vector<RunResult> sharded = ParallelRunner(4).run(specs);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], sharded[i])) << "trial " << i;
  }
  // Distinct seeds really are distinct trials.
  EXPECT_FALSE(results_identical(serial[0], serial[1]));
}

TEST(ParallelRunner, MatchesSerialUnderBothSchedulers) {
  RunSpec base = cheap_spec();
  base.scheduler = engine::SchedulerKind::kCalendar;
  const std::vector<RunSpec> specs = seed_sweep(base, 7, 6);
  const std::vector<RunResult> serial = ParallelRunner(1).run(specs);
  const std::vector<RunResult> sharded = ParallelRunner(3).run(specs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], sharded[i])) << "trial " << i;
  }
}

TEST(ParallelRunner, RunIndexedCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& hit : hits) hit = 0;
  ParallelRunner(8).run_indexed(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelRunner, WorkStealingCoversSkewedCosts) {
  // One chunk holds all the expensive work; the other workers must steal
  // it rather than idle, and every index still runs exactly once.
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& hit : hits) hit = 0;
  ParallelRunner(4).run_indexed(kCount, [&](std::size_t i) {
    if (i < kCount / 4) {
      // The first worker's own chunk is pathologically slow.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ++hits[i];
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelRunner, StreamingDeliversEveryResultOnceAndMatchesRun) {
  const std::vector<RunSpec> specs = seed_sweep(cheap_spec(), 300, 9);
  const std::vector<RunResult> plain = ParallelRunner(3).run(specs);

  std::vector<int> delivered(specs.size(), 0);
  std::vector<RunResult> streamed_copies(specs.size());
  const std::vector<RunResult> streamed = ParallelRunner(3).run_streaming(
      specs, [&](std::size_t i, const RunResult& result) {
        // Serialized by the runner: plain writes are safe here.
        ++delivered[i];
        streamed_copies[i] = result;
      });

  ASSERT_EQ(streamed.size(), plain.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(delivered[i], 1) << i;
    EXPECT_TRUE(results_identical(plain[i], streamed[i])) << i;
    EXPECT_TRUE(results_identical(plain[i], streamed_copies[i])) << i;
  }
}

TEST(ParallelRunner, PropagatesWorkerExceptions) {
  ParallelRunner runner(4);
  EXPECT_THROW(runner.run_indexed(64,
                                  [](std::size_t i) {
                                    if (i == 13) {
                                      throw std::runtime_error("trial 13");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ParallelRunner, HandlesEmptyAndDefaults) {
  EXPECT_TRUE(ParallelRunner(2).run({}).empty());
  EXPECT_GE(ParallelRunner(0).threads(), 1);  // hardware default
  ParallelRunner(0).run_indexed(0, [](std::size_t) { FAIL(); });
}

// ------------------------------------------------------------------------
// Self-balancing (run_adaptive): cost-aware chunks + telemetry-guided
// stealing are scheduling-only — results stay bit-identical to the
// fixed-chunk path on skewed grids.

std::vector<RunSpec> skewed_grid() {
  // A grid deliberately mixing cheap and expensive trials: small and
  // mid-size n, mesh and sparse graphs, with and without the gradient
  // pair scan.
  std::vector<RunSpec> specs;
  for (const std::int32_t n : {4, 10, 25}) {
    RunSpec spec;
    spec.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = 5;
    if (n == 25) {
      spec.topology.kind = net::TopologyKind::kKRegular;
      spec.topology.degree = 6;
      spec.measure_gradient = true;
    }
    const std::vector<RunSpec> seeded = seed_sweep(spec, 40, 4);
    specs.insert(specs.end(), seeded.begin(), seeded.end());
  }
  return specs;
}

TEST(ParallelRunner, AdaptiveMatchesFixedChunksBitForBit) {
  const std::vector<RunSpec> specs = skewed_grid();
  const std::vector<RunResult> fixed = ParallelRunner(4).run(specs);
  const std::vector<RunResult> adaptive = ParallelRunner(4).run_adaptive(specs);
  ASSERT_EQ(fixed.size(), adaptive.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    EXPECT_TRUE(results_identical(fixed[i], adaptive[i])) << "trial " << i;
  }
}

TEST(ParallelRunner, AdaptiveIsThreadCountInvariant) {
  const std::vector<RunSpec> specs = skewed_grid();
  const std::vector<RunResult> serial = ParallelRunner(1).run_adaptive(specs);
  const std::vector<RunResult> wide = ParallelRunner(8).run_adaptive(specs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_identical(serial[i], wide[i])) << "trial " << i;
  }
}

TEST(ParallelRunner, AdaptiveStreamsEveryResultExactlyOnce) {
  const std::vector<RunSpec> specs = seed_sweep(cheap_spec(), 9, 10);
  std::vector<int> seen(specs.size(), 0);
  const std::vector<RunResult> adaptive = ParallelRunner(4).run_adaptive(
      specs, [&](std::size_t i, const RunResult& r) {
        ++seen[i];
        EXPECT_GT(r.wall_seconds, 0.0);
      });
  for (std::size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
  const std::vector<RunResult> fixed = ParallelRunner(4).run(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(results_identical(fixed[i], adaptive[i])) << "trial " << i;
  }
}

TEST(ParallelRunner, AdaptivePropagatesWorkerExceptions) {
  std::vector<RunSpec> specs = seed_sweep(cheap_spec(), 3, 6);
  specs[4].params.n = -1;  // invalid: Experiment construction throws
  EXPECT_THROW((void)ParallelRunner(3).run_adaptive(specs), std::exception);
}

TEST(ParallelRunner, CostPriorOrdersObviousCases) {
  RunSpec small = cheap_spec();
  RunSpec large = cheap_spec();
  large.params = core::make_params(512, 170, 1e-5, 0.01, 1e-3, 10.0);
  EXPECT_GT(ParallelRunner::estimate_cost(large),
            ParallelRunner::estimate_cost(small));
  RunSpec sparse = large;
  sparse.topology.kind = net::TopologyKind::kKRegular;
  sparse.topology.degree = 16;
  EXPECT_LT(ParallelRunner::estimate_cost(sparse),
            ParallelRunner::estimate_cost(large));
  RunSpec gradient = sparse;
  gradient.measure_gradient = true;
  EXPECT_GT(ParallelRunner::estimate_cost(gradient),
            ParallelRunner::estimate_cost(sparse));
}

TEST(SeedSweep, AssignsSequentialSeeds) {
  const std::vector<RunSpec> specs = seed_sweep(cheap_spec(), 40, 3);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].seed, 40u);
  EXPECT_EQ(specs[1].seed, 41u);
  EXPECT_EQ(specs[2].seed, 42u);
}

}  // namespace
}  // namespace wlsync::analysis
