// [HSSD] (Section 10): signature-based synchronization.  Key shapes:
// tolerates f >= n/3 omission faults (impossible without signatures, [DHS]);
// agreement ~ delta + eps; rushing faults speed the nonfaulty clocks up
// (validity slope > 1) without breaking agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.h"
#include "baselines/hssd.h"
#include "clock/drift.h"
#include "proc/adversaries.h"
#include "sim/simulator.h"

namespace wlsync::analysis {
namespace {

core::Params standard(std::int32_t n, std::int32_t f) {
  return core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
}

TEST(Hssd, FaultFreeAgreementIsDeltaEpsScale) {
  RunSpec spec;
  spec.params = standard(7, 2);
  spec.algo = Algo::kHSSD;
  spec.rounds = 14;
  spec.seed = 3;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  // About delta + eps (Section 10); allow 1.5x.
  EXPECT_LT(result.gamma_measured,
            1.5 * (spec.params.delta + spec.params.eps));
  EXPECT_TRUE(result.validity.holds);
}

TEST(Hssd, ToleratesHalfSilentWithSignatures) {
  // n = 4 with 2 silent faults: f = 2 > (n-1)/3, impossible for the
  // signature-free algorithms (A2), fine for [HSSD].
  core::Params p = standard(7, 2);  // algebra for beta/P
  p.n = 4;                          // but only 4 processes exist
  RunSpec spec;
  spec.params = p;
  spec.algo = Algo::kHSSD;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.rounds = 14;
  spec.seed = 4;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  ASSERT_GE(result.completed_rounds, 13);
  EXPECT_LT(result.gamma_measured, 1.5 * (p.delta + p.eps));
}

TEST(Hssd, WelchLynchCannotDoThat) {
  // The same 2-silent-of-4 setting is outside the averaging algorithm's
  // domain altogether: reduce() needs n >= 2f+1 = 5 entries.  The library
  // refuses the configuration up front.
  core::Params p = standard(7, 2);
  p.n = 4;
  RunSpec spec;
  spec.params = p;
  spec.algo = Algo::kWelchLynch;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.rounds = 14;
  spec.seed = 4;
  EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);
}

/// Rushing signer: a faulty-but-signature-abiding process that broadcasts
/// its *own* chain for round k+1 as early as the timeliness test allows,
/// dragging everyone's clock forward (Section 10's observation about
/// [HSSD]'s validity).  Because the attack itself accelerates the schedule,
/// a single predicted send could miss the acceptance window; the rusher
/// fires a burst of copies spaced 2*eps apart across the window — honest
/// processes accept whichever lands earliest and ignore the rest.
class RushingSigner final : public proc::Process {
 public:
  explicit RushingSigner(core::Params params) : params_(params) {}

  void on_start(proc::Context&) override {}
  void on_timer(proc::Context& ctx, std::int32_t) override {
    ctx.broadcast(baselines::kSignedTag, params_.round_label(next_), 1);
  }
  void on_message(proc::Context& ctx, const sim::Message& m) override {
    if (m.tag != baselines::kSignedTag) return;
    if (m.from == ctx.id()) return;  // ignore own echoes
    const auto i = static_cast<std::int32_t>(
        std::llround((m.value - params_.T0) / params_.P));
    if (i < next_) return;
    next_ = i + 1;
    // Honest acceptors require local >= ET - k(1+rho)(delta+eps), so the
    // most damaging arrival is ~delta+eps before the label.  Sweep send
    // times across [-2.5*delta, 0] relative to the predicted label.
    auto& actx = proc::AdversaryContext::from(ctx);
    const double next_label_real =
        actx.real_time() - params_.delta + params_.P;
    for (double lead = 2.5 * params_.delta; lead >= 0.0;
         lead -= 2.0 * params_.eps) {
      actx.set_timer_real(next_label_real - lead, 1);
    }
  }

 private:
  core::Params params_;
  std::int32_t next_ = 1;
};

TEST(Hssd, RushingFaultSpeedsClocksUpButAgreementHolds) {
  const core::Params p = standard(7, 2);

  auto elapsed_ratio = [&](bool with_rusher) {
    sim::SimConfig sim_config;
    sim_config.delta = p.delta;
    sim_config.eps = p.eps;
    sim_config.seed = 11;
    sim::Simulator sim(sim_config, nullptr);
    std::vector<std::int32_t> honest;
    for (std::int32_t id = 0; id < 6; ++id) {
      auto clock = std::make_unique<clk::PhysicalClock>(
          clk::make_constant(1.0), 10.0 * id, p.rho);
      const double corr0 = p.T0 - clock->now(0.0);
      honest.push_back(id);
      sim.add_process(std::make_unique<baselines::HssdProcess>(p),
                      std::move(clock), corr0, false, 0.0);
    }
    if (with_rusher) {
      auto clock = std::make_unique<clk::PhysicalClock>(clk::make_constant(1.0),
                                                        0.0, p.rho);
      sim.add_process(std::make_unique<RushingSigner>(p), std::move(clock),
                      p.T0, true, 0.0);
    }
    const double horizon = 12 * p.P;
    sim.run_until(horizon);
    double max_skew = 0.0;
    for (std::int32_t a : honest) {
      for (std::int32_t b : honest) {
        max_skew = std::max(max_skew, sim.local_time(a, horizon) -
                                          sim.local_time(b, horizon));
      }
    }
    EXPECT_LT(max_skew, 1.5 * (p.delta + p.eps));
    // Elapsed local time per elapsed real time.
    return (sim.local_time(0, horizon) - p.T0) / horizon;
  };

  const double honest_rate = elapsed_ratio(false);
  const double rushed_rate = elapsed_ratio(true);
  // Perfect clocks: without attack the rate is ~1; with the rusher every
  // round is pulled forward by up to ~delta, i.e. rate up to ~1 + d/P.
  EXPECT_NEAR(honest_rate, 1.0, 2e-3);
  EXPECT_GT(rushed_rate, honest_rate + 0.3 * (p.delta + p.eps) / p.P);
}

TEST(Hssd, AdjustmentIsDeltaScale) {
  RunSpec spec;
  spec.params = standard(7, 2);
  spec.algo = Algo::kHSSD;
  spec.fault = FaultKind::kSilent;
  spec.fault_count = 2;
  spec.rounds = 12;
  spec.seed = 5;
  const RunResult result = run_experiment(spec);
  ASSERT_FALSE(result.diverged);
  // Clocks advance to ET_i on acceptance: adjustments are delta-scale
  // (Section 10 quotes ~(f+1)(delta+eps) worst case), far above WL's ~5 eps.
  EXPECT_LT(result.max_abs_adj,
            (spec.params.f + 1) * (spec.params.delta + spec.params.eps));
}

}  // namespace
}  // namespace wlsync::analysis
