// Engine layer: slab pool handle stability and recycling, indexed d-ary
// heap order, scheduler policies (d-ary heap vs calendar queue) agreeing
// with each other and with a reference priority queue on the deterministic
// (time, tier, seq) order, and whole-execution byte-identity of RoundTraces
// across policies — the invariant that makes the scheduler a pure
// performance knob.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/parallel_runner.h"
#include "analysis/round_trace.h"
#include "engine/scheduler.h"
#include "sim/event.h"
#include "util/rng.h"

namespace wlsync {
namespace {

using engine::SchedulerKind;
using engine::SchedulerPolicy;
using sim::Event;
using sim::EventHandle;
using sim::EventPool;

TEST(SlabPool, RecyclesReleasedSlots) {
  EventPool pool;
  const EventHandle a = pool.acquire();
  const EventHandle b = pool.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1u);
  const EventHandle c = pool.acquire();
  EXPECT_EQ(c, a);  // LIFO free list reuses the slot
  EXPECT_EQ(pool.capacity(), 2u);
  pool.release(b);
  pool.release(c);
}

TEST(SlabPool, ReferencesStableAcrossGrowth) {
  EventPool pool;
  const EventHandle first = pool.acquire();
  pool[first].time = 42.0;
  const Event* address = &pool[first];
  // Force several slab allocations.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5000; ++i) handles.push_back(pool.acquire());
  EXPECT_EQ(&pool[first], address);
  EXPECT_DOUBLE_EQ(pool[first].time, 42.0);
}

/// Random (time, tier) stream with deliberate collisions so the seq
/// tiebreak is exercised; seq increases with insertion order.
std::vector<Event> random_events(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Event> events(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Draw times from a small set: many exact ties.
    events[i].time = static_cast<double>(rng.below(count / 4 + 1)) * 0.125;
    events[i].tier = static_cast<std::int32_t>(rng.below(2));
    events[i].seq = i;
    events[i].to = static_cast<std::int32_t>(i);
  }
  return events;
}

using Key = std::tuple<double, std::int32_t, std::uint64_t>;

Key key_of(const Event& event) {
  return {event.time, event.tier, event.seq};
}

TEST(IndexedEventQueue, PopsInSortedKeyOrder) {
  EventPool pool;
  sim::IndexedEventQueue queue(pool);
  const std::vector<Event> events = random_events(4096, 7);
  for (const Event& event : events) {
    const EventHandle handle = pool.acquire();
    pool[handle] = event;
    queue.push(handle);
  }
  std::vector<Key> expected;
  expected.reserve(events.size());
  for (const Event& event : events) expected.push_back(key_of(event));
  std::sort(expected.begin(), expected.end());

  for (const Key& want : expected) {
    ASSERT_FALSE(queue.empty());
    const EventHandle handle = queue.pop();
    EXPECT_EQ(key_of(pool[handle]), want);
    pool.release(handle);
  }
  EXPECT_TRUE(queue.empty());
}

/// Drives a policy and a reference std::priority_queue through an identical
/// random interleaving of pushes and pops; every pop must agree.
void check_policy_against_reference(SchedulerKind kind, std::uint64_t seed) {
  EventPool pool;
  const std::unique_ptr<SchedulerPolicy> policy =
      engine::make_scheduler(kind, pool);
  std::priority_queue<Event, std::vector<Event>, sim::EventAfter> reference;

  util::Rng rng(seed);
  std::uint64_t next_seq = 0;
  double drift = 0.0;  // occasionally advancing time base, as in a real run
  for (int op = 0; op < 20000; ++op) {
    const bool push = policy->empty() || rng.chance(0.55);
    if (push) {
      Event event;
      // Mix clustered, tied, and decreasing times (the calendar queue's
      // cursor-reset path) around the drifting base.
      event.time = drift + static_cast<double>(rng.below(64)) * 0.03125 -
                   (rng.chance(0.1) ? 1.0 : 0.0);
      event.tier = static_cast<std::int32_t>(rng.below(2));
      event.seq = next_seq++;
      const EventHandle handle = pool.acquire();
      pool[handle] = event;
      policy->push(handle);
      reference.push(event);
      if (rng.chance(0.02)) drift += rng.uniform(0.0, 3.0);
    } else {
      ASSERT_EQ(key_of(pool[policy->peek()]), key_of(reference.top()));
      const EventHandle handle = policy->pop();
      ASSERT_EQ(key_of(pool[handle]), key_of(reference.top()));
      pool.release(handle);
      reference.pop();
    }
  }
  while (!policy->empty()) {
    ASSERT_FALSE(reference.empty());
    const EventHandle handle = policy->pop();
    EXPECT_EQ(key_of(pool[handle]), key_of(reference.top()));
    pool.release(handle);
    reference.pop();
  }
  EXPECT_TRUE(reference.empty());
}

TEST(SchedulerPolicy, DaryHeapMatchesReference) {
  check_policy_against_reference(SchedulerKind::kDaryHeap, 11);
}

TEST(SchedulerPolicy, CalendarMatchesReference) {
  check_policy_against_reference(SchedulerKind::kCalendar, 11);
  check_policy_against_reference(SchedulerKind::kCalendar, 99);
}

TEST(SchedulerPolicy, LegacyHeapMatchesReference) {
  check_policy_against_reference(SchedulerKind::kLegacyHeap, 11);
}

TEST(SchedulerPolicy, AutoMatchesReference) {
  // The random stream hovers around a few thousand pending entries, so the
  // adaptive policy crosses its migration thresholds repeatedly.
  check_policy_against_reference(SchedulerKind::kAuto, 11);
  check_policy_against_reference(SchedulerKind::kAuto, 99);
}

TEST(SchedulerPolicy, AutoSurvivesDepthSwings) {
  // Force full migrations both ways: fill far past the calendar threshold,
  // drain far below the heap threshold, repeat — pops must stay sorted.
  EventPool pool;
  const auto policy = engine::make_scheduler(SchedulerKind::kAuto, pool);
  util::Rng rng(5);
  std::uint64_t next_seq = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    while (policy->size() < 3000) {
      const EventHandle handle = pool.acquire();
      pool[handle] = Event{rng.uniform(0.0, 100.0), 0, next_seq++, 0,
                           sim::EngineKind::kDeliver, {}, {}};
      policy->push(handle);
    }
    double last = -1.0;
    while (policy->size() > 50) {
      const EventHandle handle = policy->pop();
      EXPECT_GE(pool[handle].time, last);
      last = pool[handle].time;
      pool.release(handle);
    }
  }
}

TEST(SchedulerPolicy, CalendarHandlesSparseTimes) {
  // Events separated by huge gaps force the direct-search fallback.
  EventPool pool;
  const auto policy = engine::make_scheduler(SchedulerKind::kCalendar, pool);
  std::vector<double> times{0.0, 5000.0, 5000.0, 12000.0, 0.5};
  for (std::size_t i = 0; i < times.size(); ++i) {
    const EventHandle handle = pool.acquire();
    pool[handle] = Event{times[i], 0, i, 0, sim::EngineKind::kDeliver, {}, {}};
    policy->push(handle);
  }
  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  for (double want : sorted) {
    const EventHandle handle = policy->pop();
    EXPECT_DOUBLE_EQ(pool[handle].time, want);
    pool.release(handle);
  }
}

// --------------------------------------------------------------------------
// Whole-execution identity across scheduler policies.

bool traces_identical(const analysis::RoundTrace& a,
                      const analysis::RoundTrace& b) {
  auto same = [](const std::vector<analysis::RoundEvent>& u,
                 const std::vector<analysis::RoundEvent>& v) {
    if (u.size() != v.size()) return false;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (u[i].pid != v[i].pid || u[i].round != v[i].round ||
          u[i].real_time != v[i].real_time || u[i].value != v[i].value ||
          u[i].value2 != v[i].value2) {
        return false;
      }
    }
    return true;
  };
  return same(a.begins(), b.begins()) && same(a.updates(), b.updates()) &&
         same(a.joins(), b.joins());
}

analysis::RunSpec base_spec() {
  analysis::RunSpec spec;
  spec.params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 8;
  spec.seed = 424242;
  return spec;
}

TEST(SchedulerDeterminism, PoliciesProduceIdenticalExecutions) {
  analysis::RunSpec heap_spec = base_spec();
  heap_spec.scheduler = SchedulerKind::kDaryHeap;
  analysis::RunSpec calendar_spec = base_spec();
  calendar_spec.scheduler = SchedulerKind::kCalendar;

  analysis::RunSpec legacy_spec = base_spec();
  legacy_spec.scheduler = SchedulerKind::kLegacyHeap;
  analysis::RunSpec auto_spec = base_spec();
  auto_spec.scheduler = SchedulerKind::kAuto;

  analysis::Experiment heap_run(heap_spec);
  analysis::Experiment calendar_run(calendar_spec);
  analysis::Experiment legacy_run(legacy_spec);
  analysis::Experiment auto_run(auto_spec);
  const analysis::RunResult heap_result = heap_run.run();
  const analysis::RunResult calendar_result = calendar_run.run();
  const analysis::RunResult legacy_result = legacy_run.run();
  const analysis::RunResult auto_result = auto_run.run();

  EXPECT_TRUE(analysis::results_identical(heap_result, calendar_result));
  EXPECT_TRUE(analysis::results_identical(heap_result, legacy_result));
  EXPECT_TRUE(analysis::results_identical(heap_result, auto_result));
  EXPECT_TRUE(traces_identical(heap_run.trace(), calendar_run.trace()));
  EXPECT_TRUE(traces_identical(heap_run.trace(), legacy_run.trace()));
  EXPECT_TRUE(traces_identical(heap_run.trace(), auto_run.trace()));
  EXPECT_GT(heap_run.trace().begins().size(), 0u);
}

TEST(SchedulerDeterminism, PoliciesAgreeUnderNicBuffering) {
  // The NIC arrival/service events exercise same-time scheduling chains.
  analysis::RunSpec heap_spec = base_spec();
  heap_spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/5e-4};
  heap_spec.scheduler = SchedulerKind::kDaryHeap;
  analysis::RunSpec calendar_spec = heap_spec;
  calendar_spec.scheduler = SchedulerKind::kCalendar;

  const analysis::RunResult heap_result = analysis::run_experiment(heap_spec);
  const analysis::RunResult calendar_result =
      analysis::run_experiment(calendar_spec);
  EXPECT_TRUE(analysis::results_identical(heap_result, calendar_result));
}

TEST(SchedulerDeterminism, RepeatedRunsAreIdentical) {
  // Same seed + spec: byte-identical traces run-over-run (no hidden state).
  analysis::Experiment first(base_spec());
  analysis::Experiment second(base_spec());
  const analysis::RunResult r1 = first.run();
  const analysis::RunResult r2 = second.run();
  EXPECT_TRUE(analysis::results_identical(r1, r2));
  EXPECT_TRUE(traces_identical(first.trace(), second.trace()));
}

}  // namespace
}  // namespace wlsync
