// Network layer: exchange-graph construction invariants, bit-identity of
// the batched fan-out engine against the seed's per-recipient scheduling
// (the guarantee that makes batching a pure performance knob), sparse-graph
// determinism under the parallel runner, and the sharded measurement
// pipeline's 1e-12 regression against the per-sample scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/measure.h"
#include "analysis/parallel_runner.h"
#include "analysis/round_trace.h"
#include "net/topology.h"
#include "util/rng.h"

namespace wlsync {
namespace {

using analysis::DelayKind;
using analysis::RunResult;
using analysis::RunSpec;
using net::Topology;
using net::TopologyKind;

// ------------------------------------------------------------- topology ---

void expect_invariants(const Topology& topo) {
  for (std::int32_t p = 0; p < topo.n(); ++p) {
    const auto peers = topo.neighbors(p);
    EXPECT_TRUE(std::is_sorted(peers.begin(), peers.end()));
    EXPECT_EQ(std::adjacent_find(peers.begin(), peers.end()), peers.end());
    EXPECT_TRUE(std::binary_search(peers.begin(), peers.end(), p))
        << "self-loop missing at " << p;
    for (std::int32_t q : peers) {
      const auto back = topo.neighbors(q);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), p))
          << "asymmetric edge " << p << " -> " << q;
    }
  }
}

TEST(Topology, FullMeshShape) {
  const Topology topo = Topology::full_mesh(5);
  EXPECT_EQ(topo.n(), 5);
  EXPECT_TRUE(topo.is_full_mesh());
  EXPECT_TRUE(topo.connected());
  EXPECT_EQ(topo.edge_count(), 25u);
  for (std::int32_t p = 0; p < 5; ++p) {
    ASSERT_EQ(topo.degree(p), 5);
    for (std::int32_t q = 0; q < 5; ++q) EXPECT_EQ(topo.neighbors(p)[static_cast<std::size_t>(q)], q);
  }
  expect_invariants(topo);
}

TEST(Topology, RingOfCliquesShape) {
  const Topology topo = Topology::ring_of_cliques(24, 6);
  EXPECT_EQ(topo.n(), 24);
  EXPECT_FALSE(topo.is_full_mesh());
  EXPECT_TRUE(topo.connected());
  expect_invariants(topo);
  // Interior clique members see their clique only (6, self included);
  // bridge endpoints see one more.
  EXPECT_EQ(topo.degree(1), 6);
  EXPECT_EQ(topo.degree(5), 7);   // last of clique 0 bridges to 6
  EXPECT_EQ(topo.degree(6), 7);   // first of clique 1 bridged from 5
}

TEST(Topology, KRegularConnectedSymmetric) {
  const Topology topo = Topology::k_regular(64, 8, /*seed=*/7);
  EXPECT_EQ(topo.n(), 64);
  EXPECT_TRUE(topo.connected());
  EXPECT_FALSE(topo.is_full_mesh());
  expect_invariants(topo);
  for (std::int32_t p = 0; p < topo.n(); ++p) {
    EXPECT_GE(topo.degree(p), 3);  // ring + self at the very least
  }
  // Deterministic in the seed.
  const Topology again = Topology::k_regular(64, 8, /*seed=*/7);
  for (std::int32_t p = 0; p < topo.n(); ++p) {
    const auto a = topo.neighbors(p);
    const auto b = again.neighbors(p);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Topology, CustomAdjacencyNormalized) {
  // Asymmetric, unsorted, no self-loops: from_adjacency must repair all.
  const Topology topo = Topology::from_adjacency({{1}, {2}, {}, {0}});
  EXPECT_EQ(topo.n(), 4);
  expect_invariants(topo);
  EXPECT_TRUE(topo.connected());
  EXPECT_THROW(Topology::from_adjacency({{3}}), std::invalid_argument);
}

TEST(Topology, BuildValidatesConnectivityAndSize) {
  net::TopologySpec spec;
  spec.kind = TopologyKind::kCustom;
  spec.custom = {{0}, {1}};  // two isolated nodes
  EXPECT_THROW(net::build_topology(spec, 2), std::invalid_argument);
  spec.custom = {{0, 1}, {1, 0}};
  EXPECT_NO_THROW(net::build_topology(spec, 2));
  EXPECT_THROW(net::build_topology(spec, 3), std::invalid_argument);
}

// --------------------------------------------- randomized property tests ---

/// Connected random graph as raw adjacency lists: a random attachment tree
/// (guarantees connectivity) plus `extra` random edges.  Lists are left
/// asymmetric, unsorted, and self-loop-free on purpose — from_adjacency
/// must repair all of that.
std::vector<std::vector<std::int32_t>> random_adjacency(util::Rng& rng,
                                                        std::int32_t n,
                                                        std::int32_t extra) {
  std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(n));
  for (std::int32_t v = 1; v < n; ++v) {
    lists[static_cast<std::size_t>(v)].push_back(
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(v))));
  }
  for (std::int32_t e = 0; e < extra; ++e) {
    const auto a = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
    lists[a].push_back(b);
  }
  return lists;
}

TEST(TopologyProperties, RandomGraphsNormalizedConnectedRoundTrip) {
  util::Rng rng(20260727);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<std::int32_t>(2 + rng.below(40));
    const auto extra = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(2 * n)));
    const Topology topo = Topology::from_adjacency(random_adjacency(rng, n, extra));
    ASSERT_EQ(topo.n(), n);
    expect_invariants(topo);  // symmetry, self-loops, sorted, duplicate-free

    // connected() agrees with BFS reachability (the tree construction makes
    // every one of these graphs connected).
    EXPECT_TRUE(topo.connected());
    const std::vector<std::int32_t>& from0 = topo.distances_from(0);
    for (std::int32_t v = 0; v < n; ++v) {
      EXPECT_GE(from0[static_cast<std::size_t>(v)], 0) << "trial " << trial;
    }

    // CSR round-trip: feeding neighbors() back through from_adjacency must
    // reproduce the structure exactly.
    std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(n));
    for (std::int32_t p = 0; p < n; ++p) {
      const auto peers = topo.neighbors(p);
      lists[static_cast<std::size_t>(p)].assign(peers.begin(), peers.end());
    }
    const Topology rebuilt = Topology::from_adjacency(lists);
    ASSERT_EQ(rebuilt.n(), n);
    ASSERT_EQ(rebuilt.edge_count(), topo.edge_count());
    for (std::int32_t p = 0; p < n; ++p) {
      const auto a = topo.neighbors(p);
      const auto b = rebuilt.neighbors(p);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "trial " << trial << " node " << p;
    }
  }
}

TEST(TopologyProperties, RandomDisconnectedGraphsDetected) {
  util::Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    // Two random connected components with no cross edges.
    const auto n1 = static_cast<std::int32_t>(2 + rng.below(10));
    const auto n2 = static_cast<std::int32_t>(2 + rng.below(10));
    std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(n1 + n2));
    for (std::int32_t v = 1; v < n1; ++v) {
      lists[static_cast<std::size_t>(v)].push_back(
          static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(v))));
    }
    for (std::int32_t v = 1; v < n2; ++v) {
      lists[static_cast<std::size_t>(n1 + v)].push_back(
          n1 + static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(v))));
    }
    const Topology topo = Topology::from_adjacency(lists);
    expect_invariants(topo);
    EXPECT_FALSE(topo.connected());
    EXPECT_EQ(topo.diameter(), -1);
    EXPECT_EQ(topo.distances_from(0)[static_cast<std::size_t>(n1)], -1);
  }
}

TEST(TopologyProperties, RandomExpandersSeededAndSane) {
  util::Rng rng(5150);
  for (int trial = 0; trial < 8; ++trial) {
    const auto n = static_cast<std::int32_t>(16 + rng.below(100));
    const std::uint64_t seed = rng();
    const Topology topo = Topology::k_regular(n, 8, seed);
    expect_invariants(topo);
    EXPECT_TRUE(topo.connected());
    // Distances are symmetric (spot-checked along a random row).
    const auto i = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(n)));
    const std::vector<std::int32_t>& row = topo.distances_from(i);
    for (std::int32_t j = 0; j < n; ++j) {
      EXPECT_EQ(row[static_cast<std::size_t>(j)],
                topo.distances_from(j)[static_cast<std::size_t>(i)]);
    }
  }
}

// ------------------------------------------------- fan-out bit-identity ---

bool traces_identical(const analysis::RoundTrace& a,
                      const analysis::RoundTrace& b) {
  auto same = [](const std::vector<analysis::RoundEvent>& u,
                 const std::vector<analysis::RoundEvent>& v) {
    if (u.size() != v.size()) return false;
    for (std::size_t i = 0; i < u.size(); ++i) {
      if (u[i].pid != v[i].pid || u[i].round != v[i].round ||
          u[i].real_time != v[i].real_time || u[i].value != v[i].value ||
          u[i].value2 != v[i].value2) {
        return false;
      }
    }
    return true;
  };
  return same(a.begins(), b.begins()) && same(a.updates(), b.updates()) &&
         same(a.joins(), b.joins());
}

RunSpec fanout_spec() {
  RunSpec spec;
  spec.params = core::make_params(7, 2, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 8;
  spec.seed = 20260727;
  return spec;
}

/// Runs `spec` through the batched fan-out engine and the seed's
/// per-recipient engine; both executions must be indistinguishable.
void check_batched_matches_reference(RunSpec spec) {
  RunSpec batched = spec;
  batched.batch_fanout = true;
  RunSpec reference = spec;
  reference.batch_fanout = false;

  analysis::Experiment batched_run(batched);
  analysis::Experiment reference_run(reference);
  const RunResult batched_result = batched_run.run();
  const RunResult reference_result = reference_run.run();
  EXPECT_TRUE(analysis::results_identical(batched_result, reference_result));
  EXPECT_TRUE(traces_identical(batched_run.trace(), reference_run.trace()));
  EXPECT_GT(batched_run.trace().begins().size(), 0u);
  EXPECT_EQ(batched_run.simulator().messages_sent(),
            reference_run.simulator().messages_sent());
  EXPECT_EQ(batched_run.simulator().events_processed(),
            reference_run.simulator().events_processed());
}

TEST(FanoutDeterminism, MatchesPerRecipientEngineAcrossDelayModels) {
  // kFast/kSlow produce exact delivery-time ties across a whole broadcast —
  // the seq-block reservation is what keeps those ordered identically.
  for (const DelayKind delay :
       {DelayKind::kUniform, DelayKind::kFast, DelayKind::kSlow,
        DelayKind::kPerLink, DelayKind::kSplit}) {
    RunSpec spec = fanout_spec();
    spec.delay = delay;
    check_batched_matches_reference(spec);
  }
}

TEST(FanoutDeterminism, MatchesUnderNicBuffering) {
  RunSpec spec = fanout_spec();
  spec.nic = sim::NicConfig{/*capacity=*/4, /*service_time=*/5e-4};
  check_batched_matches_reference(spec);
}

TEST(FanoutDeterminism, MatchesWithStaggerAndKExchanges) {
  RunSpec spec = fanout_spec();
  spec.fault = analysis::FaultKind::kSilent;
  spec.fault_count = 2;
  spec.stagger = 2e-3;
  check_batched_matches_reference(spec);

  RunSpec multi = fanout_spec();
  multi.k_exchanges = 2;
  multi.rounds = 5;
  check_batched_matches_reference(multi);
}

TEST(FanoutDeterminism, MatchesOnSparseTopology) {
  RunSpec spec;
  spec.params = core::make_params(24, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  spec.seed = 77;
  spec.topology.kind = TopologyKind::kKRegular;
  spec.topology.degree = 8;
  check_batched_matches_reference(spec);
}

TEST(FanoutDeterminism, MatchesAcrossSchedulerPolicies) {
  // Batched fan-out on the adaptive scheduler vs the seed configuration
  // (per-recipient events on the legacy copying heap): same execution.
  RunSpec modern = fanout_spec();
  modern.batch_fanout = true;
  modern.scheduler = engine::SchedulerKind::kAuto;
  RunSpec seed_config = fanout_spec();
  seed_config.batch_fanout = false;
  seed_config.scheduler = engine::SchedulerKind::kLegacyHeap;
  const RunResult a = analysis::run_experiment(modern);
  const RunResult b = analysis::run_experiment(seed_config);
  EXPECT_TRUE(analysis::results_identical(a, b));
}

TEST(FanoutDeterminism, BatchingShrinksQueuePressure) {
  // The engineering claim behind the refactor: one entry per in-flight
  // broadcast instead of one per recipient.
  RunSpec spec;
  spec.params = core::make_params(31, 10, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 4;
  spec.delay = DelayKind::kSlow;  // clustered deliveries: the worst case
  // Queue-pressure telemetry only exists when the event engine runs the
  // rounds; the fast path would advance both configurations past the queue.
  spec.engine = analysis::EngineMode::kEvent;
  RunSpec reference = spec;
  reference.batch_fanout = false;
  analysis::Experiment batched_run(spec);
  analysis::Experiment reference_run(reference);
  (void)batched_run.run();
  (void)reference_run.run();
  EXPECT_LT(batched_run.simulator().peak_pending() * 4,
            reference_run.simulator().peak_pending());
  EXPECT_LT(batched_run.simulator().queue_ops() * 2,
            reference_run.simulator().queue_ops());
  EXPECT_GT(batched_run.simulator().fanout_direct(), 0u);
}

// ------------------------------------------- sparse-graph determinism ---

TEST(SparseTopology, DeterministicUnderParallelRunner) {
  RunSpec base;
  base.params = core::make_params(24, 1, 1e-5, 0.01, 1e-3, 10.0);
  base.rounds = 5;
  base.topology.kind = TopologyKind::kRingOfCliques;
  base.topology.clique_size = 6;
  const std::vector<RunSpec> specs = analysis::seed_sweep(base, 500, 8);
  const std::vector<RunResult> serial = analysis::ParallelRunner(1).run(specs);
  const std::vector<RunResult> sharded = analysis::ParallelRunner(4).run(specs);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(analysis::results_identical(serial[i], sharded[i]))
        << "trial " << i;
  }
  // And run-over-run: no hidden state in the net layer.
  const std::vector<RunResult> again = analysis::ParallelRunner(4).run(specs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(analysis::results_identical(serial[i], again[i]));
  }
}

TEST(SparseTopology, WelchLynchStaysBoundedOnExpander) {
  // Not a paper claim (the analysis assumes the full mesh): a sanity pin
  // that the neighbor-view algorithm keeps honest clocks together on a
  // connected expander with no faults.
  RunSpec spec;
  spec.params = core::make_params(24, 1, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 10;
  spec.topology.kind = TopologyKind::kKRegular;
  spec.topology.degree = 8;
  const RunResult result = analysis::run_experiment(spec);
  EXPECT_GE(result.completed_rounds, 10);
  EXPECT_FALSE(result.diverged);
  EXPECT_LT(result.gamma_measured, 0.1);
}

// ------------------------------------------------ measurement pipeline ---

TEST(MeasurePipeline, SampleGridsMatchHistoricalLoops) {
  const std::vector<double> open =
      analysis::sample_times_with_endpoint(1.0, 2.0, 0.3);
  ASSERT_EQ(open.size(), 5u);  // 1.0 1.3 1.6 1.9 + endpoint 2.0
  EXPECT_DOUBLE_EQ(open.back(), 2.0);
  const std::vector<double> closed = analysis::sample_times_closed(0.0, 1.0, 0.5);
  ASSERT_EQ(closed.size(), 3u);  // 0.0 0.5 1.0
}

TEST(MeasurePipeline, ShardedSkewSeriesMatchesPerSampleScan) {
  RunSpec spec = fanout_spec();
  spec.rounds = 6;
  analysis::Experiment experiment(spec);
  const RunResult result = experiment.run();
  const auto& sim = experiment.simulator();
  const std::vector<std::int32_t>& ids = result.honest;

  const double t0 = result.tmax0 + 1.0;
  const double t1 = result.t_end;
  const double dt = spec.params.P / 25.0;
  const analysis::SkewSeries series = analysis::skew_series(sim, ids, t0, t1, dt);

  // Reference: the historical per-sample scan (skew_at is unchanged).
  std::vector<double> times;
  for (double t = t0; t < t1; t += dt) times.push_back(t);
  times.push_back(t1);
  ASSERT_EQ(series.times.size(), times.size());
  double max_skew = 0.0;
  for (std::size_t k = 0; k < times.size(); ++k) {
    ASSERT_EQ(series.times[k], times[k]);
    const double reference = analysis::skew_at(sim, ids, times[k]);
    EXPECT_NEAR(series.skews[k], reference, 1e-12) << "sample " << k;
    max_skew = std::max(max_skew, reference);
  }
  EXPECT_NEAR(series.max_skew, max_skew, 1e-12);
}

TEST(MeasurePipeline, ValidityMatchesPerSampleScan) {
  RunSpec spec = fanout_spec();
  spec.rounds = 6;
  analysis::Experiment experiment(spec);
  const RunResult result = experiment.run();
  const auto& sim = experiment.simulator();
  const core::Params& p = spec.params;
  const core::Derived d = core::derive(p);

  const double t_start = result.tmax0 + d.window;
  const double t_end = result.t_end;
  const double dt = p.P / 10.0;
  const analysis::ValidityReport report = analysis::check_validity(
      sim, result.honest, p, result.tmin0, result.tmax0, t_start, t_end, dt);

  // Reference: the historical t-outer/id-inner local_time scan.
  double upper = -1e300;
  double lower = -1e300;
  for (double t = t_start; t <= t_end; t += dt) {
    for (std::int32_t id : result.honest) {
      const double elapsed = sim.local_time(id, t) - p.T0;
      upper = std::max(upper, elapsed - (d.alpha2 * (t - result.tmin0) + d.alpha3));
      lower = std::max(lower, (d.alpha1 * (t - result.tmax0) - d.alpha3) - elapsed);
    }
  }
  EXPECT_NEAR(report.max_upper_violation, upper, 1e-12);
  EXPECT_NEAR(report.max_lower_violation, lower, 1e-12);
}

TEST(MeasurePipeline, ForcedShardingIsExact) {
  RunSpec spec;
  spec.params = core::make_params(10, 3, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  analysis::Experiment experiment(spec);
  const RunResult result = experiment.run();
  const auto& sim = experiment.simulator();

  const std::vector<double> times = analysis::sample_times_with_endpoint(
      result.tmax0, result.t_end, spec.params.P / 100.0);
  const analysis::LocalTimeGrid serial =
      analysis::sample_local_times(sim, result.honest, times, /*threads=*/1);
  const analysis::LocalTimeGrid sharded =
      analysis::sample_local_times(sim, result.honest, times, /*threads=*/4);
  ASSERT_EQ(serial.values.size(), sharded.values.size());
  for (std::size_t i = 0; i < serial.values.size(); ++i) {
    ASSERT_EQ(serial.values[i], sharded.values[i]) << "cell " << i;
  }
}

}  // namespace
}  // namespace wlsync
