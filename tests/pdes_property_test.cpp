// Randomized property pins for the PDES engine (engine/pdes.h), the
// adversarial counterpart to tests/pdes_test.cpp's curated matrix: a
// deterministic PRNG sweeps (topology kind x size, delay model, fault mix,
// partition seed, worker count) and every sampled configuration must
// satisfy both engine invariants at once —
//
//   identity      the sharded run is results_identical (bitwise skews,
//                 series, counters, traces) to the serial event engine,
//                 for adaptive AND static lookahead;
//   monotonicity  the adaptive window is never narrower than the static
//                 one, so adaptive epochs <= static epochs, always.
//
// The sweep is seeded constant so failures replay; bumping kConfigs is the
// cheap way to deepen the search locally.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

#include "analysis/parallel_runner.h"
#include "engine/pdes.h"

namespace wlsync::analysis {
namespace {

constexpr int kConfigs = 14;

RunResult run_one(RunSpec spec, EngineMode engine, std::int32_t workers,
                  bool adaptive) {
  spec.engine = engine;
  spec.pdes_workers = workers;
  spec.pdes_adaptive = adaptive;
  return run_experiment(spec);
}

TEST(PdesProperty, RandomizedIdentityAndEpochMonotonicity) {
  std::mt19937_64 gen(0xF00DF00Du);
  const auto pick = [&gen](std::int32_t lo, std::int32_t hi) {
    return std::uniform_int_distribution<std::int32_t>(lo, hi)(gen);
  };

  for (int config = 0; config < kConfigs; ++config) {
    RunSpec spec;
    const std::int32_t n = 24 + 8 * pick(0, 7);  // 24..80
    const std::int32_t f = pick(0, (n - 1) / 3 < 7 ? (n - 1) / 3 : 7);
    spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = pick(3, 5);
    spec.seed = static_cast<std::uint64_t>(pick(1, 1 << 20));

    switch (pick(0, 2)) {
      case 0:
        spec.topology.kind = net::TopologyKind::kFullMesh;
        break;
      case 1:
        spec.topology.kind = net::TopologyKind::kRingOfCliques;
        spec.topology.clique_size = pick(4, 8);
        break;
      default:
        spec.topology.kind = net::TopologyKind::kKRegular;
        spec.topology.degree = 2 * pick(2, 6);  // 4..12
        break;
    }
    switch (pick(0, 3)) {
      case 0: spec.delay = DelayKind::kUniform; break;
      case 1: spec.delay = DelayKind::kSplit; break;
      case 2: spec.delay = DelayKind::kPerLink; break;
      default: spec.delay = DelayKind::kExpTrunc; break;
    }
    if (f > 0 && pick(0, 1) == 1) {
      spec.fault = pick(0, 1) == 0 ? FaultKind::kSilent : FaultKind::kTwoFaced;
      spec.fault_count = pick(1, f);
    }

    const std::int32_t workers = pick(2, 8);
    const std::string what =
        "config " + std::to_string(config) + ": n=" + std::to_string(n) +
        " f=" + std::to_string(f) + " topo=" +
        std::to_string(static_cast<int>(spec.topology.kind)) + " delay=" +
        std::to_string(static_cast<int>(spec.delay)) + " fault=" +
        std::to_string(static_cast<int>(spec.fault)) + "x" +
        std::to_string(spec.fault_count) + " workers=" +
        std::to_string(workers) + " seed=" + std::to_string(spec.seed);

    const RunResult serial = run_one(spec, EngineMode::kEvent, 0, true);
    const RunResult adaptive =
        run_one(spec, EngineMode::kPdes, workers, /*adaptive=*/true);
    const RunResult fixed =
        run_one(spec, EngineMode::kPdes, workers, /*adaptive=*/false);

    EXPECT_TRUE(results_identical(serial, adaptive)) << what;
    EXPECT_TRUE(results_identical(serial, fixed)) << what;
    EXPECT_GE(adaptive.pdes_epochs, 1) << what;
    EXPECT_GE(fixed.pdes_epochs, 1) << what;
    EXPECT_LE(adaptive.pdes_epochs, fixed.pdes_epochs) << what;
  }
}

TEST(PdesProperty, AdaptiveCollapsesTheInterRoundGap) {
  // The signature adaptive win: between exchange phases no boundary process
  // has anything pending, so one epoch swallows the whole gap where the
  // static window tiles it in lookahead-sized steps.  Pin a spec where the
  // effect is unambiguous (sparse cut, long quiet periods) and require a
  // strict epoch reduction, not just <=.
  RunSpec spec;
  spec.params = core::make_params(64, 5, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 5;
  spec.seed = 7;
  spec.topology.kind = net::TopologyKind::kRingOfCliques;
  spec.topology.clique_size = 8;

  const RunResult adaptive =
      run_one(spec, EngineMode::kPdes, 4, /*adaptive=*/true);
  const RunResult fixed =
      run_one(spec, EngineMode::kPdes, 4, /*adaptive=*/false);
  EXPECT_LT(adaptive.pdes_epochs, fixed.pdes_epochs)
      << "adaptive=" << adaptive.pdes_epochs << " static=" << fixed.pdes_epochs;
}

}  // namespace
}  // namespace wlsync::analysis
