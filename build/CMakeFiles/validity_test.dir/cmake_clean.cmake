file(REMOVE_RECURSE
  "CMakeFiles/validity_test.dir/tests/validity_test.cpp.o"
  "CMakeFiles/validity_test.dir/tests/validity_test.cpp.o.d"
  "validity_test"
  "validity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
