file(REMOVE_RECURSE
  "CMakeFiles/reintegration_test.dir/tests/reintegration_test.cpp.o"
  "CMakeFiles/reintegration_test.dir/tests/reintegration_test.cpp.o.d"
  "reintegration_test"
  "reintegration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reintegration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
