# Empty dependencies file for reintegration_test.
# This may be replaced when dependencies are built.
