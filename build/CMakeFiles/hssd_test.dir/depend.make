# Empty dependencies file for hssd_test.
# This may be replaced when dependencies are built.
