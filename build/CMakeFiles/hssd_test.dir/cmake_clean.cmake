file(REMOVE_RECURSE
  "CMakeFiles/hssd_test.dir/tests/hssd_test.cpp.o"
  "CMakeFiles/hssd_test.dir/tests/hssd_test.cpp.o.d"
  "hssd_test"
  "hssd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hssd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
