# Empty dependencies file for welch_lynch_test.
# This may be replaced when dependencies are built.
