file(REMOVE_RECURSE
  "CMakeFiles/welch_lynch_test.dir/tests/welch_lynch_test.cpp.o"
  "CMakeFiles/welch_lynch_test.dir/tests/welch_lynch_test.cpp.o.d"
  "welch_lynch_test"
  "welch_lynch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/welch_lynch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
