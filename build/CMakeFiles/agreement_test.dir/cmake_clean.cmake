file(REMOVE_RECURSE
  "CMakeFiles/agreement_test.dir/tests/agreement_test.cpp.o"
  "CMakeFiles/agreement_test.dir/tests/agreement_test.cpp.o.d"
  "agreement_test"
  "agreement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
