# Empty dependencies file for example_live_threads.
# This may be replaced when dependencies are built.
