file(REMOVE_RECURSE
  "CMakeFiles/example_live_threads.dir/examples/live_threads.cpp.o"
  "CMakeFiles/example_live_threads.dir/examples/live_threads.cpp.o.d"
  "example_live_threads"
  "example_live_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
