# Empty dependencies file for multiset_lemmas_test.
# This may be replaced when dependencies are built.
