file(REMOVE_RECURSE
  "CMakeFiles/multiset_lemmas_test.dir/tests/multiset_lemmas_test.cpp.o"
  "CMakeFiles/multiset_lemmas_test.dir/tests/multiset_lemmas_test.cpp.o.d"
  "multiset_lemmas_test"
  "multiset_lemmas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiset_lemmas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
