file(REMOVE_RECURSE
  "CMakeFiles/example_byzantine_gauntlet.dir/examples/byzantine_gauntlet.cpp.o"
  "CMakeFiles/example_byzantine_gauntlet.dir/examples/byzantine_gauntlet.cpp.o.d"
  "example_byzantine_gauntlet"
  "example_byzantine_gauntlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_byzantine_gauntlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
