# Empty dependencies file for example_byzantine_gauntlet.
# This may be replaced when dependencies are built.
