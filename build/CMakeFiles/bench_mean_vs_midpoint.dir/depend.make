# Empty dependencies file for bench_mean_vs_midpoint.
# This may be replaced when dependencies are built.
