file(REMOVE_RECURSE
  "CMakeFiles/bench_mean_vs_midpoint.dir/bench/bench_mean_vs_midpoint.cpp.o"
  "CMakeFiles/bench_mean_vs_midpoint.dir/bench/bench_mean_vs_midpoint.cpp.o.d"
  "bench_mean_vs_midpoint"
  "bench_mean_vs_midpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mean_vs_midpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
