file(REMOVE_RECURSE
  "CMakeFiles/multiset_oracle_test.dir/tests/multiset_oracle_test.cpp.o"
  "CMakeFiles/multiset_oracle_test.dir/tests/multiset_oracle_test.cpp.o.d"
  "multiset_oracle_test"
  "multiset_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiset_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
