# Empty dependencies file for multiset_oracle_test.
# This may be replaced when dependencies are built.
