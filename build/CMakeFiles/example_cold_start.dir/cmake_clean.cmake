file(REMOVE_RECURSE
  "CMakeFiles/example_cold_start.dir/examples/cold_start.cpp.o"
  "CMakeFiles/example_cold_start.dir/examples/cold_start.cpp.o.d"
  "example_cold_start"
  "example_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
