# Empty dependencies file for example_cold_start.
# This may be replaced when dependencies are built.
