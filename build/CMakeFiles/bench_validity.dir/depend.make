# Empty dependencies file for bench_validity.
# This may be replaced when dependencies are built.
