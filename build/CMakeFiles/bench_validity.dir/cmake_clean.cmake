file(REMOVE_RECURSE
  "CMakeFiles/bench_validity.dir/bench/bench_validity.cpp.o"
  "CMakeFiles/bench_validity.dir/bench/bench_validity.cpp.o.d"
  "bench_validity"
  "bench_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
