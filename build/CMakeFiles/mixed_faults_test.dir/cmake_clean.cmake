file(REMOVE_RECURSE
  "CMakeFiles/mixed_faults_test.dir/tests/mixed_faults_test.cpp.o"
  "CMakeFiles/mixed_faults_test.dir/tests/mixed_faults_test.cpp.o.d"
  "mixed_faults_test"
  "mixed_faults_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
