# Empty dependencies file for mixed_faults_test.
# This may be replaced when dependencies are built.
