# Empty dependencies file for bench_theorem4.
# This may be replaced when dependencies are built.
