file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem4.dir/bench/bench_theorem4.cpp.o"
  "CMakeFiles/bench_theorem4.dir/bench/bench_theorem4.cpp.o.d"
  "bench_theorem4"
  "bench_theorem4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
