file(REMOVE_RECURSE
  "CMakeFiles/theorem4_test.dir/tests/theorem4_test.cpp.o"
  "CMakeFiles/theorem4_test.dir/tests/theorem4_test.cpp.o.d"
  "theorem4_test"
  "theorem4_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
