# Empty dependencies file for theorem4_test.
# This may be replaced when dependencies are built.
