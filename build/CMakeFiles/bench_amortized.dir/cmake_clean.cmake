file(REMOVE_RECURSE
  "CMakeFiles/bench_amortized.dir/bench/bench_amortized.cpp.o"
  "CMakeFiles/bench_amortized.dir/bench/bench_amortized.cpp.o.d"
  "bench_amortized"
  "bench_amortized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_amortized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
