# Empty dependencies file for bench_amortized.
# This may be replaced when dependencies are built.
