file(REMOVE_RECURSE
  "CMakeFiles/parallel_runner_test.dir/tests/parallel_runner_test.cpp.o"
  "CMakeFiles/parallel_runner_test.dir/tests/parallel_runner_test.cpp.o.d"
  "parallel_runner_test"
  "parallel_runner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
