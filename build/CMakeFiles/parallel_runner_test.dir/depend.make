# Empty dependencies file for parallel_runner_test.
# This may be replaced when dependencies are built.
