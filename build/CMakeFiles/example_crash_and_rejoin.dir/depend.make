# Empty dependencies file for example_crash_and_rejoin.
# This may be replaced when dependencies are built.
