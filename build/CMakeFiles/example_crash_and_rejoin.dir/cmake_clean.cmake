file(REMOVE_RECURSE
  "CMakeFiles/example_crash_and_rejoin.dir/examples/crash_and_rejoin.cpp.o"
  "CMakeFiles/example_crash_and_rejoin.dir/examples/crash_and_rejoin.cpp.o.d"
  "example_crash_and_rejoin"
  "example_crash_and_rejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_crash_and_rejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
