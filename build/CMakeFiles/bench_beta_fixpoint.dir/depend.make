# Empty dependencies file for bench_beta_fixpoint.
# This may be replaced when dependencies are built.
