file(REMOVE_RECURSE
  "CMakeFiles/bench_beta_fixpoint.dir/bench/bench_beta_fixpoint.cpp.o"
  "CMakeFiles/bench_beta_fixpoint.dir/bench/bench_beta_fixpoint.cpp.o.d"
  "bench_beta_fixpoint"
  "bench_beta_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beta_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
