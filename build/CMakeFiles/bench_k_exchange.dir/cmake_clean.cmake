file(REMOVE_RECURSE
  "CMakeFiles/bench_k_exchange.dir/bench/bench_k_exchange.cpp.o"
  "CMakeFiles/bench_k_exchange.dir/bench/bench_k_exchange.cpp.o.d"
  "bench_k_exchange"
  "bench_k_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
