# Empty dependencies file for bench_k_exchange.
# This may be replaced when dependencies are built.
