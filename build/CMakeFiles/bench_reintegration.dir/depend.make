# Empty dependencies file for bench_reintegration.
# This may be replaced when dependencies are built.
