file(REMOVE_RECURSE
  "CMakeFiles/bench_reintegration.dir/bench/bench_reintegration.cpp.o"
  "CMakeFiles/bench_reintegration.dir/bench/bench_reintegration.cpp.o.d"
  "bench_reintegration"
  "bench_reintegration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reintegration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
