# Empty dependencies file for bench_agreement.
# This may be replaced when dependencies are built.
