file(REMOVE_RECURSE
  "CMakeFiles/bench_agreement.dir/bench/bench_agreement.cpp.o"
  "CMakeFiles/bench_agreement.dir/bench/bench_agreement.cpp.o.d"
  "bench_agreement"
  "bench_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
