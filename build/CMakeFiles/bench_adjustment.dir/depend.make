# Empty dependencies file for bench_adjustment.
# This may be replaced when dependencies are built.
