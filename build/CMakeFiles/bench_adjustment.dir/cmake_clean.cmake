file(REMOVE_RECURSE
  "CMakeFiles/bench_adjustment.dir/bench/bench_adjustment.cpp.o"
  "CMakeFiles/bench_adjustment.dir/bench/bench_adjustment.cpp.o.d"
  "bench_adjustment"
  "bench_adjustment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adjustment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
