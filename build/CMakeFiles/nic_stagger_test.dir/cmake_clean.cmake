file(REMOVE_RECURSE
  "CMakeFiles/nic_stagger_test.dir/tests/nic_stagger_test.cpp.o"
  "CMakeFiles/nic_stagger_test.dir/tests/nic_stagger_test.cpp.o.d"
  "nic_stagger_test"
  "nic_stagger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_stagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
