# Empty dependencies file for nic_stagger_test.
# This may be replaced when dependencies are built.
