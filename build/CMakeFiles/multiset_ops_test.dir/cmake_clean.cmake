file(REMOVE_RECURSE
  "CMakeFiles/multiset_ops_test.dir/tests/multiset_ops_test.cpp.o"
  "CMakeFiles/multiset_ops_test.dir/tests/multiset_ops_test.cpp.o.d"
  "multiset_ops_test"
  "multiset_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiset_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
