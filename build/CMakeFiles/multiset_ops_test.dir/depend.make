# Empty dependencies file for multiset_ops_test.
# This may be replaced when dependencies are built.
