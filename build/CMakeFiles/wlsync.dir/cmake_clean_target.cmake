file(REMOVE_RECURSE
  "libwlsync.a"
)
