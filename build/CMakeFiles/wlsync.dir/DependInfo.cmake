
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/experiment.cpp" "CMakeFiles/wlsync.dir/src/analysis/experiment.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/analysis/experiment.cpp.o.d"
  "/root/repo/src/analysis/parallel_runner.cpp" "CMakeFiles/wlsync.dir/src/analysis/parallel_runner.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/analysis/parallel_runner.cpp.o.d"
  "/root/repo/src/analysis/round_trace.cpp" "CMakeFiles/wlsync.dir/src/analysis/round_trace.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/analysis/round_trace.cpp.o.d"
  "/root/repo/src/analysis/skew.cpp" "CMakeFiles/wlsync.dir/src/analysis/skew.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/analysis/skew.cpp.o.d"
  "/root/repo/src/baselines/averaging_rounds.cpp" "CMakeFiles/wlsync.dir/src/baselines/averaging_rounds.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/baselines/averaging_rounds.cpp.o.d"
  "/root/repo/src/baselines/hssd.cpp" "CMakeFiles/wlsync.dir/src/baselines/hssd.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/baselines/hssd.cpp.o.d"
  "/root/repo/src/baselines/srikanth_toueg.cpp" "CMakeFiles/wlsync.dir/src/baselines/srikanth_toueg.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/baselines/srikanth_toueg.cpp.o.d"
  "/root/repo/src/clock/drift.cpp" "CMakeFiles/wlsync.dir/src/clock/drift.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/clock/drift.cpp.o.d"
  "/root/repo/src/clock/physical_clock.cpp" "CMakeFiles/wlsync.dir/src/clock/physical_clock.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/clock/physical_clock.cpp.o.d"
  "/root/repo/src/core/params.cpp" "CMakeFiles/wlsync.dir/src/core/params.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/core/params.cpp.o.d"
  "/root/repo/src/core/reintegration.cpp" "CMakeFiles/wlsync.dir/src/core/reintegration.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/core/reintegration.cpp.o.d"
  "/root/repo/src/core/startup.cpp" "CMakeFiles/wlsync.dir/src/core/startup.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/core/startup.cpp.o.d"
  "/root/repo/src/core/welch_lynch.cpp" "CMakeFiles/wlsync.dir/src/core/welch_lynch.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/core/welch_lynch.cpp.o.d"
  "/root/repo/src/engine/scheduler.cpp" "CMakeFiles/wlsync.dir/src/engine/scheduler.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/engine/scheduler.cpp.o.d"
  "/root/repo/src/multiset/multiset_ops.cpp" "CMakeFiles/wlsync.dir/src/multiset/multiset_ops.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/multiset/multiset_ops.cpp.o.d"
  "/root/repo/src/proc/adversaries.cpp" "CMakeFiles/wlsync.dir/src/proc/adversaries.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/proc/adversaries.cpp.o.d"
  "/root/repo/src/proc/context.cpp" "CMakeFiles/wlsync.dir/src/proc/context.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/proc/context.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "CMakeFiles/wlsync.dir/src/runtime/runtime.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/runtime/runtime.cpp.o.d"
  "/root/repo/src/sim/delay.cpp" "CMakeFiles/wlsync.dir/src/sim/delay.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/sim/delay.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/wlsync.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "CMakeFiles/wlsync.dir/src/util/flags.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/util/flags.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/wlsync.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/wlsync.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/wlsync.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
