# Empty dependencies file for wlsync.
# This may be replaced when dependencies are built.
