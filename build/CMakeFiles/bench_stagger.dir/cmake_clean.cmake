file(REMOVE_RECURSE
  "CMakeFiles/bench_stagger.dir/bench/bench_stagger.cpp.o"
  "CMakeFiles/bench_stagger.dir/bench/bench_stagger.cpp.o.d"
  "bench_stagger"
  "bench_stagger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
