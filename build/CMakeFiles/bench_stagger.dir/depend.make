# Empty dependencies file for bench_stagger.
# This may be replaced when dependencies are built.
