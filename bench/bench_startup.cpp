// EXP-START — Section 9.2 / Lemma 20: the start-up algorithm brings
// arbitrarily skewed clocks together, B^{i+1} <= B^i/2 + 2 eps +
// 2 rho(11 delta + 39 eps), converging to about 4 eps; then (optionally)
// hands off to the maintenance algorithm.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 14));
  const double spread0 = flags.get_double("spread", 5.0);

  const core::Params params = bench::default_params(7, 2);
  analysis::StartupSpec spec;
  spec.params = params;
  spec.rounds = rounds;
  spec.initial_clock_spread = spread0;
  spec.seed = 2;

  bench::print_header(
      "EXP-START (Section 9.2, Lemma 20)",
      "B^i series from clocks started up to " + util::fmt(spread0) +
          " s apart; bound B^{i+1} <= B^i/2 + slack, slack = " +
          util::fmt(core::startup_round_slack(params.rho, params.delta,
                                              params.eps)) +
          "; limit ~ 4 eps = " + util::fmt(4 * params.eps) + ".");

  const analysis::StartupResult result = analysis::run_startup(spec);
  util::Table table({"round", "B^i", "bound from B^{i-1}", "within"});
  bool all_ok = true;
  for (std::size_t i = 0; i < result.b_series.size(); ++i) {
    std::string bound = "-";
    std::string within = "-";
    if (i > 0) {
      const double limit =
          result.b_series[i - 1] / 2 + result.round_slack + 2 * params.eps;
      bound = util::fmt_sci(limit);
      const bool ok = result.b_series[i] <= limit ||
                      result.b_series[i - 1] < 3 * result.limit;
      within = bench::verdict(ok);
      all_ok = all_ok && ok;
    }
    table.add_row({std::to_string(i), util::fmt_sci(result.b_series[i]), bound,
                   within});
  }
  table.print(std::cout);
  std::cout << "\nfinal B = " << util::fmt_sci(result.final_b)
            << "  (limit 2*slack = " << util::fmt_sci(result.limit) << ")\n";

  // Handoff mode: switch to maintenance and verify gamma.
  analysis::StartupSpec handoff = spec;
  handoff.handoff = true;
  handoff.fault = analysis::FaultKind::kSilent;
  handoff.fault_count = 2;
  const analysis::StartupResult h = analysis::run_startup(handoff);
  const double gamma = core::derive(params).gamma;
  std::cout << "handoff to maintenance (with 2 silent faults): done="
            << bench::verdict(h.handoff_done)
            << ", post-handoff skew = " << util::fmt_sci(h.post_handoff_skew)
            << " <= gamma = " << util::fmt_sci(gamma) << ": "
            << bench::verdict(h.post_handoff_skew <= gamma) << "\n";
  const bool ok = all_ok && h.handoff_done && h.post_handoff_skew <= gamma &&
                  result.final_b < spread0 / 100;
  std::cout << "Lemma 20 shape holds: " << bench::verdict(ok) << "\n";
  return ok ? 0 : 1;
}
