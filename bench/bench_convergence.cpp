// EXP-CONV — Section 4.1/7: the fault-tolerant midpoint roughly halves the
// clock separation each round.  The 1/2 factor is the worst case, realized
// by the two-faced splitter; benign executions converge faster.  This
// regenerates the per-round spread series (the paper's central convergence
// claim) for both regimes.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 12));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  bench::print_header(
      "EXP-CONV (Sections 4.1, 7)",
      "Round-begin spread per round, starting at ~beta: worst-case halving "
      "under the splitter vs one-round collapse in benign executions.");

  core::Params p;
  p.n = 4;
  p.f = 1;
  p.rho = 1e-7;
  p.delta = 0.01;
  p.eps = 1e-7;
  p.P = 1.0;
  p.beta = 0.004;

  auto series = [&](analysis::FaultKind fault) {
    analysis::RunSpec spec;
    spec.params = p;
    spec.fault = fault;
    spec.fault_count = fault == analysis::FaultKind::kNone ? 0 : 1;
    spec.delay = analysis::DelayKind::kSlow;  // jitter-free
    spec.drift = analysis::DriftKind::kNone;
    spec.initial_spread = 0.95 * p.beta;
    spec.rounds = rounds;
    spec.seed = seed;
    return analysis::run_experiment(spec).begin_spread;
  };

  const auto adversarial = series(analysis::FaultKind::kTwoFaced);
  const auto benign = series(analysis::FaultKind::kNone);

  util::Table table(
      {"round", "spread (splitter)", "ratio", "spread (benign)"});
  for (std::size_t r = 0; r < adversarial.size(); ++r) {
    const std::string ratio =
        r == 0 ? "-" : util::fmt(adversarial[r] / adversarial[r - 1], 3);
    const std::string benign_cell =
        r < benign.size() ? util::fmt_sci(benign[r]) : "-";
    table.add_row({std::to_string(r), util::fmt_sci(adversarial[r]), ratio,
                   benign_cell});
  }
  table.print(std::cout);

  const double contraction = util::mean_contraction(
      std::span<const double>(adversarial.data(),
                              std::min<std::size_t>(adversarial.size(), 8)),
      2e-4);
  std::cout << "\nmean contraction under splitter (above noise floor): "
            << util::fmt(contraction, 3) << "  (paper worst case: 0.5)\n";
  const bool ok = contraction < 0.62 && benign.size() > 1 &&
                  benign[1] < 0.01 * benign[0];
  std::cout << "shape holds: " << bench::verdict(ok) << "\n";
  return ok ? 0 : 1;
}
