// EXP-REJOIN — Section 9.1: a repaired process reaches T^{i+1} within beta
// of every nonfaulty process and thereafter participates normally.  Sweeps
// crash/wake schedules and seeds.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 20));

  const core::Params params = bench::default_params(4, 1);
  bench::print_header(
      "EXP-REJOIN (Section 9.1)",
      "Crash at t_c, repair at t_w; the joiner must begin its first full "
      "round within beta = " + util::fmt(params.beta) +
          " of the others and the whole system stays within gamma after.");

  util::Table table({"crash", "wake", "seed", "rejoined", "join spread",
                     "<=beta", "skew after", "<=gamma"});
  bool all_ok = true;
  for (auto [crash, wake] : std::vector<std::pair<double, double>>{
           {25.0, 95.0}, {22.0, 90.3}, {15.0, 60.0}, {33.0, 105.7}}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      analysis::ReintegrationSpec spec;
      spec.params = params;
      spec.crash_at = crash;
      spec.wake_at = wake;
      spec.rounds = rounds;
      spec.seed = seed;
      const analysis::ReintegrationResult result =
          analysis::run_reintegration(spec);
      const bool spread_ok =
          result.rejoined &&
          result.spread_with_joiner <= result.beta * (1 + 1e-9);
      const bool gamma_ok =
          result.rejoined && result.skew_after <= result.gamma_bound;
      all_ok = all_ok && spread_ok && gamma_ok;
      table.add_row({util::fmt(crash), util::fmt(wake), std::to_string(seed),
                     bench::verdict(result.rejoined),
                     util::fmt(result.spread_with_joiner),
                     bench::verdict(spread_ok), util::fmt(result.skew_after),
                     bench::verdict(gamma_ok)});
    }
  }
  table.print(std::cout);
  std::cout << "\nSection 9.1 claim holds across schedules: "
            << bench::verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}
