// EXP-SCENARIO — the dynamic-scenario layer's measurement driver.
//
// Three modes:
//
//   --smoke       Deterministic CI gate: runs the canonical arbitrary-
//                 initial-state, churn, and adaptive-adversary scenarios
//                 TWICE each and exits 1 unless the reruns are identical
//                 bit for bit (results_identical for the runs, exact
//                 doubles for the env episode).  Fast enough for the
//                 gcc+clang driver-smoke CI step.
//
//   --stabilize   README measurement (a): stabilization time vs fault
//                 fraction, from arbitrary initial logical-clock state
//                 (the Khanchandani-Lenzen-style workload;
//                 RunSpec::initial_clock_spread), on two topologies —
//                 the full mesh and the deg-8 k-regular expander.  The
//                 collection window is widened (beta = 0.5) so the
//                 injected disagreement is inside the capture range —
//                 at the paper-tuned beta the algorithm is NOT
//                 self-stabilizing: state beyond ~beta never re-joins
//                 (tests/dynamics_test.cpp pins that regime too).
//                 Streams a CSV (--out) and prints a per-cell mean table.
//
//   --adversary   README measurement (b): the adaptive adversary loop
//                 (scenario::AdversaryEnv) vs every static placement on
//                 the 8x8 ring of cliques (n = 64).  Prints per-placement
//                 static steady-state skew, then the greedy env episode's
//                 skew on the best placement.
//
// Everything here is deterministic by construction: fixed seeds, no
// wall-clock-dependent control flow.

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "scenario/adversary_env.h"

namespace wlsync {
namespace {

// The canonical arbitrary-initial-state spec: window widened to capture
// the injected spread (see header comment), explicit threshold so the
// measured story is "disagreement 0.2 contracts below 0.05".
analysis::RunSpec stabilize_spec(std::int32_t n, std::int32_t f,
                                 net::TopologyKind topo,
                                 std::int32_t fault_count,
                                 std::uint64_t seed) {
  analysis::RunSpec spec;
  spec.params = bench::default_params(n, f);
  spec.params.beta = 0.5;
  spec.topology.kind = topo;
  spec.topology.degree = 8;
  spec.rounds = 30;
  spec.initial_clock_spread = 0.2;
  spec.stabilize_threshold = 0.05;
  spec.fault = fault_count > 0 ? analysis::FaultKind::kTwoFaced
                               : analysis::FaultKind::kNone;
  spec.fault_count = fault_count;
  spec.seed = seed;
  return spec;
}

int run_smoke() {
  int failures = 0;
  const auto gate = [&](const char* what, bool ok) {
    std::cout << (ok ? "  ok      " : "  FAILED  ") << what << "\n";
    if (!ok) ++failures;
  };

  // 1. Arbitrary-initial-state stabilization reproduces bit for bit.
  {
    const analysis::RunSpec spec =
        stabilize_spec(16, 5, net::TopologyKind::kFullMesh, 1, 7);
    const analysis::RunResult a = analysis::run(spec);
    const analysis::RunResult b = analysis::run(spec);
    gate("stabilization rerun identical", analysis::results_identical(a, b));
    gate("stabilization measured", a.stabilized_round > 0 &&
                                       a.stabilization_time > 0.0 &&
                                       !a.diverged);
  }

  // 2. A churn schedule routes through reintegration deterministically.
  {
    analysis::RunSpec spec;
    spec.params = bench::default_params(16, 1);
    spec.rounds = 12;
    spec.seed = 11;
    spec.dynamics.leave(25.0, 3).rejoin(55.0, 3);
    const analysis::RunResult a = analysis::run(spec);
    const analysis::RunResult b = analysis::run(spec);
    gate("churn rerun identical", analysis::results_identical(a, b));
    gate("churn schedule applied", a.dynamics_applied == 2 && !a.diverged);
  }

  // 3. An adversary-env episode reproduces exactly under the same actions.
  {
    scenario::AdversaryEnv::Config config;
    config.spec.params = bench::default_params(8, 1);
    config.spec.rounds = 8;
    config.spec.fault = analysis::FaultKind::kTwoFaced;
    config.spec.fault_count = 1;
    config.spec.seed = 5;
    const auto episode = [&config] {
      scenario::AdversaryEnv env(config);
      scenario::AdversaryObservation obs = env.reset();
      scenario::AdversaryAction action;
      while (!obs.done) {
        action.early_frac += 0.05;
        obs = env.step(action);
      }
      return env.finish();
    };
    const double a = episode();
    const double b = episode();
    gate("adversary env episode identical", a == b && a > 0.0);
  }

  std::cout << (failures == 0 ? "bench_scenario --smoke: PASS\n"
                              : "bench_scenario --smoke: FAIL\n");
  return failures == 0 ? 0 : 1;
}

int run_stabilize(const util::Flags& flags) {
  const auto n = static_cast<std::int32_t>(flags.get_int("n", 16));
  const std::int32_t f = (n - 1) / 3;
  const auto trials =
      static_cast<std::int32_t>(flags.get_int("trials", 5));
  const std::string out_path = flags.get_string("out", "");

  bench::print_header(
      "EXP-SCENARIO/stabilize",
      "Stabilization time vs fault fraction from arbitrary initial "
      "logical-clock state (spread 0.2, threshold 0.05, beta widened to "
      "0.5 so the state is inside the capture range).");

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "bench_scenario: cannot open --out=" << out_path << "\n";
      return 1;
    }
    file << "topology,fault_count,fault_frac,seed,stabilized_round,"
            "stabilization_time,gamma_measured,stabilized\n";
  }

  util::Table table({"topology", "faults", "frac", "mean stab round",
                     "mean stab time (s)", "never"});
  const net::TopologyKind topos[] = {net::TopologyKind::kFullMesh,
                                     net::TopologyKind::kKRegular};
  for (const net::TopologyKind topo : topos) {
    for (std::int32_t faults = 0; faults <= f; ++faults) {
      double sum_round = 0.0;
      double sum_time = 0.0;
      std::int32_t never = 0;
      std::int32_t measured = 0;
      for (std::int32_t t = 0; t < trials; ++t) {
        const std::uint64_t seed = 100 + static_cast<std::uint64_t>(t);
        const analysis::RunResult r =
            analysis::run(stabilize_spec(n, f, topo, faults, seed));
        if (file.is_open()) {
          file << net::topology_name(topo) << ',' << faults << ','
               << static_cast<double>(faults) / n << ',' << seed << ','
               << r.stabilized_round << ',' << r.stabilization_time << ','
               << r.gamma_measured << ','
               << (r.stabilized_round >= 0 ? 1 : 0) << '\n';
        }
        if (r.diverged || r.stabilized_round < 0) {
          ++never;  // residual skew never crossed below the threshold
          continue;
        }
        sum_round += r.stabilized_round;
        sum_time += r.stabilization_time;
        ++measured;
      }
      table.add_row({std::string(net::topology_name(topo)),
                     std::to_string(faults),
                     util::fmt(static_cast<double>(faults) / n, 3),
                     measured > 0 ? util::fmt(sum_round / measured, 2)
                                  : "-",
                     measured > 0 ? util::fmt(sum_time / measured, 2)
                                  : "-",
                     std::to_string(never)});
    }
  }
  table.print(std::cout);
  if (file.is_open()) {
    std::cout << "\nwrote " << out_path << "\n";
  }
  return 0;
}

int run_adversary(const util::Flags& flags) {
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 20));
  const auto fault_count =
      static_cast<std::int32_t>(flags.get_int("faults", 2));

  bench::print_header(
      "EXP-SCENARIO/adversary",
      "Adaptive two-faced adversary (greedy env policy) vs every static "
      "placement on the 8x8 ring of cliques (n = 64).  The env observes "
      "per-round honest skew mid-run and re-tunes the forged faces.");

  analysis::RunSpec base;
  base.params = bench::default_params(64, 1);
  base.topology.kind = net::TopologyKind::kRingOfCliques;
  base.topology.clique_size = 8;
  base.fault = analysis::FaultKind::kTwoFaced;
  base.fault_count = fault_count;
  base.rounds = rounds;
  base.seed = 17;

  // Static reference: every positional placement policy, default faces.
  util::Table table({"placement", "steady-state skew", "vs gamma bound"});
  const proc::PlacementKind kinds[] = {
      proc::PlacementKind::kTrailing, proc::PlacementKind::kArticulation,
      proc::PlacementKind::kBridge, proc::PlacementKind::kMaxDegree,
      proc::PlacementKind::kAntipodal};
  const net::Topology topo = net::build_topology(base.topology, base.params.n);
  double best_static = 0.0;
  for (const proc::PlacementKind kind : kinds) {
    analysis::RunSpec spec = base;
    spec.placement_ids =
        proc::place_faults(topo, kind, fault_count, base.seed);
    const analysis::RunResult r = analysis::run(spec);
    best_static = std::max(best_static, r.gamma_measured);
    table.add_row({std::string(proc::placement_name(kind)),
                   util::fmt(r.gamma_measured, 6),
                   util::fmt(r.gamma_measured / r.gamma_bound, 3)});
  }
  table.print(std::cout);

  const scenario::GreedyResult greedy = scenario::run_greedy_adversary(base);
  std::cout << "\nbest static placement: "
            << proc::placement_name(greedy.best_placement)
            << "  skew = " << greedy.static_skew << "\n"
            << "adaptive episode:      skew = " << greedy.adaptive_skew
            << "  (" << greedy.env_steps << " env steps, settled at "
            << "early_frac = " << greedy.best_action.early_frac
            << ", late_frac = " << greedy.best_action.late_frac << ")\n"
            << "adaptive / best static = "
            << greedy.adaptive_skew / best_static << "\n";
  return 0;
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  using namespace wlsync;
  const util::Flags flags(argc, argv);
  if (flags.get_bool("smoke", false)) return run_smoke();
  if (flags.get_bool("adversary", false)) return run_adversary(flags);
  if (flags.get_bool("stabilize", false)) return run_stabilize(flags);
  std::cerr << "bench_scenario: pick a mode: --smoke | --stabilize | "
               "--adversary (see the header comment)\n";
  return 2;
}
