// EXP-BETA — Section 5.2: "If P is regarded as fixed, then beta ... is
// roughly 4 eps + 4 rho P."  Sweeps the round length P, computes the
// feasibility-driven beta, and compares the *measured* worst steady
// round-begin spread against both.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 16));
  const double rho = flags.get_double("rho", 1e-4);
  const double delta = flags.get_double("delta", 0.01);
  const double eps = flags.get_double("eps", 1e-3);

  bench::print_header(
      "EXP-BETA (Section 5.2)",
      "beta(P) from the feasibility algebra vs the 4 eps + 4 rho P rule of "
      "thumb vs the measured steady begin spread (two-faced splitter, "
      "extremal drift).");

  util::Table table({"P", "beta (algebra)", "4eps+4rhoP", "measured spread",
                     "within beta"});
  bool all_ok = true;
  for (double P : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const core::Params params = core::make_params(4, 1, rho, delta, eps, P);
    analysis::RunSpec spec;
    spec.params = params;
    spec.fault = analysis::FaultKind::kTwoFaced;
    spec.fault_count = 1;
    spec.drift = analysis::DriftKind::kExtremal;
    spec.drift_period = 1000.0;  // persistent divergence pressure
    spec.rounds = rounds;
    spec.seed = 7;
    const analysis::RunResult result = analysis::run_experiment(spec);
    double steady = 0.0;
    for (std::size_t r = result.begin_spread.size() / 2;
         r < result.begin_spread.size(); ++r) {
      steady = std::max(steady, result.begin_spread[r]);
    }
    const bool ok = steady <= params.beta * (1 + 1e-9);
    all_ok = all_ok && ok;
    table.add_row({util::fmt(P), util::fmt(params.beta),
                   util::fmt(4 * eps + 4 * rho * P), util::fmt(steady),
                   bench::verdict(ok)});
  }
  table.print(std::cout);
  std::cout << "\nbeta tracks 4 eps + 4 rho P and bounds the measured spread: "
            << bench::verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}
