// EXP-KEX — Section 7: exchanging clock values k times per round gives
// beta >= 4 eps + 2 rho P * 2^k/(2^k - 1).  The eps term is k-independent;
// the win is in the drift term.  With drift dominating (rho = 1e-4,
// eps = 1e-5) and the splitter enforcing worst-case halving dynamics, the
// steady begin spread scales like 2^k/(2^k - 1).

#include <cmath>

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 14));

  bench::print_header(
      "EXP-KEX (Section 7)",
      "Steady round-begin spread vs k (exchanges per round); prediction "
      "~ 2 rho P * 2^k/(2^k - 1) + 4 eps under worst-case steering.");

  core::Params p;
  p.n = 4;
  p.f = 1;
  p.rho = 1e-4;
  p.delta = 0.01;
  p.eps = 1e-5;
  p.P = 10.0;
  p.beta = 8e-3;

  const double drift_term = 2.0 * p.rho * p.P;
  util::Table table({"k", "steady spread", "prediction", "spread/k=1"});
  double s1 = 0.0;
  bool ok = true;
  for (std::int32_t k = 1; k <= 4; ++k) {
    analysis::RunSpec spec;
    spec.params = p;
    spec.k_exchanges = k;
    spec.fault = analysis::FaultKind::kTwoFaced;
    spec.fault_count = 1;
    spec.delay = analysis::DelayKind::kSlow;
    spec.drift = analysis::DriftKind::kExtremal;
    spec.drift_period = 1000.0;
    spec.rounds = rounds;
    spec.seed = 21;
    const analysis::RunResult result = analysis::run_experiment(spec);
    double sum = 0.0;
    int count = 0;
    for (std::size_t r = result.begin_spread.size() - 5;
         r < result.begin_spread.size(); ++r) {
      sum += result.begin_spread[r];
      ++count;
    }
    const double steady = sum / std::max(count, 1);
    if (k == 1) s1 = steady;
    const double factor = std::pow(2.0, k) / (std::pow(2.0, k) - 1.0);
    table.add_row({std::to_string(k), util::fmt(steady),
                   util::fmt(drift_term * factor + 4 * p.eps),
                   util::fmt(steady / s1, 3)});
    if (k == 2) ok = ok && steady < 0.85 * s1;
    if (k >= 3) ok = ok && steady < 0.8 * s1;
  }
  table.print(std::cout);
  std::cout << "\nexpected ratios vs k=1: 1, 0.667, 0.571, 0.536\n"
            << "k-exchange drift-term scaling holds: " << bench::verdict(ok)
            << "\n";
  return ok ? 0 : 1;
}
