// EXP-ADJ — Section 10: "The size of the adjustment at each round is about
// 5 eps" for Welch-Lynch (Theorem 4(a): |ADJ| <= (1+rho)(beta+eps) +
// rho*delta ~ 5 eps when beta ~ 4 eps), versus ~(2n+1) eps' for [LM] and
// ~3(delta+eps) for [ST].  Sweeps eps and reports worst adjustments.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 14));

  bench::print_header(
      "EXP-ADJ (Theorem 4(a), Section 10)",
      "Worst per-round adjustment under the splitter: WL bound "
      "(1+rho)(beta+eps)+rho*delta ~ 5 eps; ST's is delta-scale.");

  util::Table table({"eps", "WL max|ADJ|", "WL bound", "|ADJ|/eps",
                     "within", "ST max|ADJ|"});
  bool all_ok = true;
  for (double eps : {5e-4, 1e-3, 2e-3}) {
    const core::Params params = core::make_params(7, 2, 1e-5, 0.02, eps, 10.0);
    const core::Derived derived = core::derive(params);
    auto run = [&](analysis::Algo algo) {
      double worst = 0.0;
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        analysis::RunSpec spec;
        spec.params = params;
        spec.algo = algo;
        spec.fault = analysis::FaultKind::kTwoFaced;
        spec.fault_count = 2;
        spec.rounds = rounds;
        spec.seed = seed;
        const analysis::RunResult result = analysis::run_experiment(spec);
        worst = std::max(worst, result.max_abs_adj);
      }
      return worst;
    };
    const double wl = run(analysis::Algo::kWelchLynch);
    const double st = run(analysis::Algo::kST);
    const bool ok = wl <= derived.adj_bound * (1 + 1e-9);
    all_ok = all_ok && ok;
    table.add_row({util::fmt(eps), util::fmt(wl), util::fmt(derived.adj_bound),
                   util::fmt(wl / eps, 3), bench::verdict(ok), util::fmt(st)});
  }
  table.print(std::cout);
  std::cout << "\nWL adjustments stay ~5 eps and within the Theorem 4(a) "
               "bound: "
            << bench::verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}
