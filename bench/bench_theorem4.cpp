// EXP-T4 — Theorem 4 invariants across the adversary/delay grid.
//   (a) |ADJ| <= (1+rho)(beta+eps) + rho delta
//   (c) round-begin spread <= beta
//   plus Theorem 16's gamma for the same runs.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<std::int32_t>(flags.get_int("n", 7));
  const auto f = static_cast<std::int32_t>(flags.get_int("f", 2));
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 15));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  bench::print_header(
      "EXP-T4 (Theorem 4)",
      "Every nonfaulty adjustment within (1+rho)(beta+eps)+rho*delta; every "
      "round's begin spread within beta; skew within gamma.  n=" +
          std::to_string(n) + ", f=" + std::to_string(f));

  const core::Params params = bench::default_params(n, f);
  const core::Derived derived = core::derive(params);
  std::cout << "beta = " << util::fmt(params.beta)
            << "  adj bound = " << util::fmt(derived.adj_bound)
            << "  gamma = " << util::fmt(derived.gamma) << "\n\n";

  util::Table table({"fault", "delay", "max|ADJ|", "adj ok", "max spread",
                     "<=beta", "gamma meas", "<=gamma"});
  const analysis::FaultKind faults[] = {
      analysis::FaultKind::kNone, analysis::FaultKind::kSilent,
      analysis::FaultKind::kSpam, analysis::FaultKind::kTwoFaced,
      analysis::FaultKind::kLiar};
  const analysis::DelayKind delays[] = {
      analysis::DelayKind::kUniform, analysis::DelayKind::kFast,
      analysis::DelayKind::kSlow, analysis::DelayKind::kSplit};
  bool all_ok = true;
  for (auto fault : faults) {
    for (auto delay : delays) {
      analysis::RunSpec spec;
      spec.params = params;
      spec.fault = fault;
      spec.fault_count = fault == analysis::FaultKind::kNone ? 0 : f;
      spec.delay = delay;
      spec.rounds = rounds;
      spec.seed = seed;
      const analysis::RunResult result = analysis::run_experiment(spec);
      double max_spread = 0.0;
      for (double spread : result.begin_spread) {
        max_spread = std::max(max_spread, spread);
      }
      const bool adj_ok = result.max_abs_adj <= derived.adj_bound * (1 + 1e-9);
      const bool spread_ok = max_spread <= params.beta * (1 + 1e-9);
      const bool gamma_ok =
          result.gamma_measured <= derived.gamma * (1 + 1e-9);
      all_ok = all_ok && adj_ok && spread_ok && gamma_ok && !result.diverged;
      table.add_row({bench::fault_name(fault), bench::delay_name(delay),
                     util::fmt(result.max_abs_adj), bench::verdict(adj_ok),
                     util::fmt(max_spread), bench::verdict(spread_ok),
                     util::fmt(result.gamma_measured),
                     bench::verdict(gamma_ok)});
    }
  }
  table.print(std::cout);
  std::cout << "\nAll Theorem 4 invariants hold: " << bench::verdict(all_ok)
            << "\n";
  return all_ok ? 0 : 1;
}
