// EXP-COMPARE — the Section 10 comparison on one substrate:
//   Welch-Lynch   ~ 4 eps agreement, adjustment ~ 5 eps, n^2 msgs/round
//   [LM] CNV      ~ 2 n eps' worst case (egocentric average)
//   [ST]          ~ delta + eps agreement — better or worse than WL
//                   "depending on the relative sizes of delta and eps"
//   [MS]          graceful degradation past f
//   plain mean    broken by a single liar (why reduce() exists)

#include "analysis/parallel_runner.h"
#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 14));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));

  // --- head-to-head under each fault class -------------------------------
  bench::print_header(
      "EXP-COMPARE (Section 10)",
      "All algorithms on the identical simulated substrate: n=7, f=2, "
      "delta=10ms, eps=1ms, P=10s.  gamma / max adjustment / validity.");

  const core::Params params = bench::default_params(7, 2);
  // Row labels ride along with the specs so they cannot drift from the
  // trial order.
  std::vector<std::pair<analysis::Algo, analysis::FaultKind>> cells;
  std::vector<analysis::RunSpec> specs;
  for (auto algo : {analysis::Algo::kWelchLynch, analysis::Algo::kLM,
                    analysis::Algo::kST, analysis::Algo::kMS,
                    analysis::Algo::kPlainMean}) {
    for (auto fault : {analysis::FaultKind::kNone,
                       analysis::FaultKind::kTwoFaced,
                       analysis::FaultKind::kLiar}) {
      analysis::RunSpec spec;
      spec.params = params;
      spec.algo = algo;
      spec.fault = fault;
      spec.fault_count = fault == analysis::FaultKind::kNone ? 0 : 2;
      spec.rounds = rounds;
      spec.seed = 5;
      specs.push_back(spec);
      cells.emplace_back(algo, fault);
    }
  }
  const std::vector<analysis::RunResult> results =
      analysis::run_experiments(specs, threads);

  util::Table table({"algorithm", "fault", "steady skew", "max |ADJ|",
                     "validity", "msgs/round"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto [algo, fault] = cells[i];
    const analysis::RunResult& result = results[i];
    table.add_row(
        {bench::algo_name(algo), bench::fault_name(fault),
         util::fmt(result.gamma_measured), util::fmt(result.max_abs_adj),
         bench::verdict(result.validity.holds),
         std::to_string(result.messages / std::max(1, result.completed_rounds))});
  }
  table.print(std::cout);

  // --- the WL/ST crossover in delta/eps ----------------------------------
  // Section 10 compares worst-case *bounds*: WL's gamma ~ 4-5 eps (delta
  // appears only in rho*delta terms) against ST's ~ delta + eps.  The
  // bounds cross at delta ~ 3 eps.  Benign-execution measurements sit below
  // both bounds and do not separate the algorithms — we report both.
  std::cout << "\nWL vs ST (Section 10: WL bound ~ 4-5 eps, ST bound ~ delta "
               "+ eps; who wins depends on delta/eps):\n\n";
  util::Table crossover({"delta/eps", "WL bound (gamma)", "ST bound (d+e)",
                         "bound winner", "WL measured", "ST measured",
                         "within bounds"});
  bool saw_wl_win = false, saw_st_win = false, within_all = true;
  const std::vector<double> ratios{1.5, 2.0, 3.0, 5.0, 10.0, 20.0};
  // One Params per ratio, shared by the spec builder and the bound
  // calculations below, so the bounds printed always describe the
  // experiments actually run.
  std::vector<core::Params> cross_params;
  std::vector<analysis::RunSpec> cross_specs;
  for (double ratio : ratios) {
    const double cross_eps = 1e-3;
    cross_params.push_back(
        core::make_params(7, 2, 1e-5, ratio * cross_eps, cross_eps, 10.0));
    for (auto algo : {analysis::Algo::kWelchLynch, analysis::Algo::kST}) {
      analysis::RunSpec spec;
      spec.params = cross_params.back();
      spec.algo = algo;
      spec.fault = analysis::FaultKind::kSilent;
      spec.fault_count = 2;
      spec.rounds = rounds;
      spec.seed = 6;
      cross_specs.push_back(spec);
    }
  }
  const std::vector<analysis::RunResult> cross_results =
      analysis::run_experiments(cross_specs, threads);
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    const double ratio = ratios[r];
    const core::Params& p = cross_params[r];
    const double wl_bound = core::derive(p).gamma;
    const double st_bound = p.delta + p.eps;
    const double wl = cross_results[2 * r].gamma_measured;
    const double st = cross_results[2 * r + 1].gamma_measured;
    const bool wl_wins = wl_bound < st_bound;
    saw_wl_win = saw_wl_win || wl_wins;
    saw_st_win = saw_st_win || !wl_wins;
    within_all = within_all && wl <= wl_bound && st <= st_bound;
    crossover.add_row({util::fmt(ratio), util::fmt(wl_bound),
                       util::fmt(st_bound), wl_wins ? "WL" : "ST",
                       util::fmt(wl), util::fmt(st),
                       bench::verdict(wl <= wl_bound && st <= st_bound)});
  }
  crossover.print(std::cout);

  // --- HSSD: signatures buy tolerance of f >= n/3 -------------------------
  std::cout << "\n[HSSD] with signatures vs Welch-Lynch at f = n/2 omission "
               "faults (2 silent of 4 — beyond the signature-free n >= 3f+1 "
               "bound):\n\n";
  util::Table signed_table({"algorithm", "completed rounds", "steady skew",
                            "survives"});
  {
    core::Params small = bench::default_params(7, 2);
    small.n = 4;  // only 4 processes, still f = 2
    for (auto algo : {analysis::Algo::kHSSD, analysis::Algo::kWelchLynch}) {
      analysis::RunSpec spec;
      spec.params = small;
      spec.algo = algo;
      spec.fault = analysis::FaultKind::kSilent;
      spec.fault_count = 2;
      spec.rounds = rounds;
      spec.seed = 8;
      try {
        const analysis::RunResult result = analysis::run_experiment(spec);
        const bool survives =
            !result.diverged && result.completed_rounds >= rounds - 1;
        signed_table.add_row({bench::algo_name(algo),
                              std::to_string(result.completed_rounds),
                              survives ? util::fmt(result.gamma_measured)
                                       : "broken",
                              bench::verdict(survives)});
      } catch (const std::invalid_argument&) {
        // The averaging algorithm refuses n < 2f+1 up front.
        signed_table.add_row(
            {bench::algo_name(algo), "0", "rejected (n < 2f+1)", "NO"});
      }
    }
  }
  signed_table.print(std::cout);

  // --- MS graceful degradation past f ------------------------------------
  std::cout << "\nMahaney-Schneider graceful degradation (silent faults "
               "beyond the design point f=3, n=10):\n\n";
  util::Table degradation({"actual faults", "MS skew", "MS diverged"});
  for (std::int32_t faults : {2, 3, 4, 5}) {
    analysis::RunSpec spec;
    spec.params = bench::default_params(10, 3);
    spec.algo = analysis::Algo::kMS;
    spec.fault = analysis::FaultKind::kSilent;
    spec.fault_count = faults;
    spec.rounds = rounds;
    spec.seed = 7;
    const analysis::RunResult result = analysis::run_experiment(spec);
    degradation.add_row({std::to_string(faults),
                         util::fmt(result.gamma_measured),
                         bench::verdict(result.diverged)});
  }
  degradation.print(std::cout);

  const bool ok = saw_wl_win && saw_st_win && within_all;
  std::cout << "\nbound crossover flips at delta ~ 3 eps and measurements "
               "respect both bounds: "
            << bench::verdict(ok) << "\n";
  return ok ? 0 : 1;
}
