// EXP-VALID — Theorem 19: (alpha1, alpha2, alpha3)-validity.  Long runs
// under each fault class; reports measured envelope slack against
// alpha1 = 1 - rho - eps/lambda, alpha2 = 1 + rho + eps/lambda, alpha3 = eps.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 40));

  const core::Params params = bench::default_params(7, 2);
  const core::Derived derived = core::derive(params);

  bench::print_header(
      "EXP-VALID (Theorem 19)",
      "alpha1 = " + util::fmt(derived.alpha1, 10) +
          ", alpha2 = " + util::fmt(derived.alpha2, 10) +
          ", alpha3 = " + util::fmt(derived.alpha3) +
          " (lambda = " + util::fmt(derived.lambda) +
          ").  Envelope: a1(t - tmax0) - a3 <= L(t) - T0 <= a2(t - tmin0) + "
          "a3 for all nonfaulty p.");

  util::Table table({"fault", "upper slack", "lower slack", "holds"});
  bool all_ok = true;
  for (auto fault :
       {analysis::FaultKind::kNone, analysis::FaultKind::kSilent,
        analysis::FaultKind::kSpam, analysis::FaultKind::kTwoFaced,
        analysis::FaultKind::kLiar}) {
    analysis::RunSpec spec;
    spec.params = params;
    spec.fault = fault;
    spec.fault_count = fault == analysis::FaultKind::kNone ? 0 : 2;
    spec.rounds = rounds;
    spec.seed = 3;
    const analysis::RunResult result = analysis::run_experiment(spec);
    all_ok = all_ok && result.validity.holds;
    // Slack: how far inside the envelope the worst sample sat (negative
    // violation = margin).
    table.add_row({bench::fault_name(fault),
                   util::fmt(-result.validity.max_upper_violation),
                   util::fmt(-result.validity.max_lower_violation),
                   bench::verdict(result.validity.holds)});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 19 envelope holds for every fault class: "
            << bench::verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}
