// EXP-MICRO — engineering microbenchmarks (google-benchmark): the
// fault-tolerant averaging primitives, clock queries, event queue, and
// whole simulated rounds per second.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "clock/drift.h"
#include "clock/physical_clock.h"
#include "engine/scheduler.h"
#include "multiset/multiset_ops.h"
#include "proc/process.h"
#include "sim/event.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace wlsync {
namespace {

void BM_FaultTolerantMidpoint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(1);
  ms::Multiset values(n);
  for (auto& value : values) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::fault_tolerant_midpoint(values, f));
  }
}
BENCHMARK(BM_FaultTolerantMidpoint)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FaultTolerantMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(2);
  ms::Multiset values(n);
  for (auto& value : values) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::fault_tolerant_mean(values, f));
  }
}
BENCHMARK(BM_FaultTolerantMean)->Arg(4)->Arg(64)->Arg(256);

void BM_XDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  ms::Multiset u(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform();
    v[i] = rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::x_distance(u, v, 0.1));
  }
}
BENCHMARK(BM_XDistance)->Arg(16)->Arg(256);

void BM_ClockQuery(benchmark::State& state) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-5, 0.5, util::Rng(4)),
                           0.0, 1e-5);
  (void)clock.now(1000.0);  // pre-extend
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now(rng.uniform(0.0, 1000.0)));
  }
}
BENCHMARK(BM_ClockQuery);

void BM_ClockInverse(benchmark::State& state) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-5, 0.5, util::Rng(6)),
                           0.0, 1e-5);
  (void)clock.now(1000.0);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.to_real(rng.uniform(0.0, 1000.0)));
  }
}
BENCHMARK(BM_ClockInverse);

void BM_EventQueue(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::Event event;
      event.time = rng.uniform();
      event.tier = static_cast<std::int32_t>(i % 2);
      queue.push(event);
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384);

/// The seed's queue — a std::priority_queue copying whole Events on every
/// sift — kept here as the baseline the pooled engine is measured against.
class LegacyEventQueue {
 public:
  void push(sim::Event event) {
    event.seq = next_seq_++;
    queue_.push(event);
  }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  sim::Event pop() {
    sim::Event event = queue_.top();
    queue_.pop();
    return event;
  }

 private:
  std::priority_queue<sim::Event, std::vector<sim::Event>, sim::EventAfter>
      queue_;
  std::uint64_t next_seq_ = 0;
};

void BM_LegacyEventQueue(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  for (auto _ : state) {
    LegacyEventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::Event event;
      event.time = rng.uniform();
      event.tier = static_cast<std::int32_t>(i % 2);
      queue.push(event);
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_LegacyEventQueue)->Arg(1024)->Arg(16384);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Events/sec through Simulator::step on a full Welch-Lynch workload
  // (n = 10, two-faced faults), per scheduler policy.
  const auto kind = static_cast<engine::SchedulerKind>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(10, 3, 1e-5, 0.01, 1e-3, 10.0);
    spec.fault = analysis::FaultKind::kTwoFaced;
    spec.fault_count = 2;
    spec.rounds = 10;
    spec.seed = 9;
    spec.scheduler = kind;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until(12 * spec.params.P);
    events += static_cast<std::int64_t>(
        experiment.simulator().events_processed());
  }
  state.SetItemsProcessed(events);
  state.SetLabel(engine::scheduler_name(kind));
}
BENCHMARK(BM_SimulatorEventThroughput)
    ->Arg(static_cast<int>(engine::SchedulerKind::kLegacyHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kDaryHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kCalendar));

/// Keeps `fanout` timers outstanding forever: the scheduler-bound workload.
class TimerStressProcess final : public proc::Process {
 public:
  TimerStressProcess(std::int32_t fanout, double period)
      : fanout_(fanout), period_(period) {}
  void on_start(proc::Context& ctx) override {
    for (std::int32_t k = 0; k < fanout_; ++k) {
      ctx.set_timer(ctx.local_time() +
                        period_ * static_cast<double>(k + 1) /
                            static_cast<double>(fanout_),
                    k);
    }
  }
  void on_timer(proc::Context& ctx, std::int32_t tag) override {
    ctx.set_timer(ctx.local_time() + period_, tag);
  }
  void on_message(proc::Context&, const sim::Message&) override {}

 private:
  std::int32_t fanout_;
  double period_;
};

void BM_SimulatorStepSchedulerBound(benchmark::State& state) {
  // Events/sec through Simulator::step with ~1024 events always pending and
  // a near-trivial handler: isolates the scheduling layer of step().
  const auto kind = static_cast<engine::SchedulerKind>(state.range(0));
  sim::SimConfig config;
  config.scheduler = kind;
  config.max_events = ~0ull;
  sim::Simulator sim(config, nullptr);
  for (std::int32_t p = 0; p < 4; ++p) {
    sim.add_process(std::make_unique<TimerStressProcess>(256, 1.0),
                    std::make_unique<clk::PhysicalClock>(
                        clk::make_constant(1.0), 0.0, 1e-5),
                    0.0, false, /*start=*/0.0);
  }
  double horizon = 1.0;
  sim.run_until(horizon);  // warm-up: all timers armed
  const std::uint64_t warmup = sim.events_processed();
  for (auto _ : state) {
    horizon += 1.0;
    sim.run_until(horizon);  // 4 * 256 timer events per window
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.events_processed() - warmup));
  state.SetLabel(engine::scheduler_name(kind));
}
BENCHMARK(BM_SimulatorStepSchedulerBound)
    ->Arg(static_cast<int>(engine::SchedulerKind::kLegacyHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kDaryHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kCalendar))
    ->Arg(static_cast<int>(engine::SchedulerKind::kAuto));

/// Queue pressure of the batched fan-out path vs the seed's per-recipient
/// scheduling, n = 128 full mesh (ISSUE 2's acceptance metric).  Reported
/// counters are per simulated round: scheduler push+pop operations, the
/// pending-entry high-water mark, and direct (queue-bypassing) deliveries.
/// arg0: 1 = batched, 0 = per-recipient; arg1: DelayKind (kSlow clusters a
/// broadcast's deliveries at one instant — the regime the batching wins
/// outright; kUniform spreads them, where the win is depth, not op count).
void BM_BroadcastFanoutQueueOps(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto delay = static_cast<analysis::DelayKind>(state.range(1));
  constexpr std::int32_t kRounds = 3;
  std::uint64_t ops = 0;
  std::uint64_t peak = 0;
  std::uint64_t direct = 0;
  std::int64_t rounds_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(128, 42, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = kRounds;
    spec.delay = delay;
    spec.seed = 9;
    spec.batch_fanout = batched;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until((kRounds + 2) * spec.params.P);
    ops += experiment.simulator().queue_ops();
    peak = std::max<std::uint64_t>(peak, experiment.simulator().peak_pending());
    direct += experiment.simulator().fanout_direct();
    rounds_done += kRounds;
  }
  state.counters["queue_ops/round"] =
      static_cast<double>(ops) / static_cast<double>(rounds_done);
  state.counters["peak_pending"] = static_cast<double>(peak);
  state.counters["direct/round"] =
      static_cast<double>(direct) / static_cast<double>(rounds_done);
  state.SetLabel(std::string(batched ? "batched" : "per-recipient") + "/" +
                 (delay == analysis::DelayKind::kSlow ? "slow" : "uniform"));
}
BENCHMARK(BM_BroadcastFanoutQueueOps)
    ->Args({0, static_cast<int>(analysis::DelayKind::kSlow)})
    ->Args({1, static_cast<int>(analysis::DelayKind::kSlow)})
    ->Args({0, static_cast<int>(analysis::DelayKind::kUniform)})
    ->Args({1, static_cast<int>(analysis::DelayKind::kUniform)})
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedRounds(benchmark::State& state) {
  // Whole-system throughput: one complete Welch-Lynch round (n^2 messages,
  // 2n timers) per iteration, n = state.range(0).
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto f = (n - 1) / 3;
  std::int64_t rounds_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = 10;
    spec.seed = 9;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until(12 * spec.params.P);
    rounds_done += 10;
  }
  state.SetItemsProcessed(rounds_done);
  state.SetLabel("rounds");
}
BENCHMARK(BM_SimulatedRounds)->Arg(4)->Arg(10)->Arg(31)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlsync

BENCHMARK_MAIN();
