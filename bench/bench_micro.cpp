// EXP-MICRO — engineering microbenchmarks (google-benchmark): the
// fault-tolerant averaging primitives, clock queries, event queue, and
// whole simulated rounds per second.

#include <benchmark/benchmark.h>

#include "analysis/experiment.h"
#include "clock/physical_clock.h"
#include "multiset/multiset_ops.h"
#include "sim/event.h"
#include "util/rng.h"

namespace wlsync {
namespace {

void BM_FaultTolerantMidpoint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(1);
  ms::Multiset values(n);
  for (auto& value : values) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::fault_tolerant_midpoint(values, f));
  }
}
BENCHMARK(BM_FaultTolerantMidpoint)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FaultTolerantMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(2);
  ms::Multiset values(n);
  for (auto& value : values) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::fault_tolerant_mean(values, f));
  }
}
BENCHMARK(BM_FaultTolerantMean)->Arg(4)->Arg(64)->Arg(256);

void BM_XDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  ms::Multiset u(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform();
    v[i] = rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::x_distance(u, v, 0.1));
  }
}
BENCHMARK(BM_XDistance)->Arg(16)->Arg(256);

void BM_ClockQuery(benchmark::State& state) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-5, 0.5, util::Rng(4)),
                           0.0, 1e-5);
  (void)clock.now(1000.0);  // pre-extend
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now(rng.uniform(0.0, 1000.0)));
  }
}
BENCHMARK(BM_ClockQuery);

void BM_ClockInverse(benchmark::State& state) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-5, 0.5, util::Rng(6)),
                           0.0, 1e-5);
  (void)clock.now(1000.0);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.to_real(rng.uniform(0.0, 1000.0)));
  }
}
BENCHMARK(BM_ClockInverse);

void BM_EventQueue(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::Event event;
      event.time = rng.uniform();
      event.tier = static_cast<std::int32_t>(i % 2);
      queue.push(event);
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384);

void BM_SimulatedRounds(benchmark::State& state) {
  // Whole-system throughput: one complete Welch-Lynch round (n^2 messages,
  // 2n timers) per iteration, n = state.range(0).
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto f = (n - 1) / 3;
  std::int64_t rounds_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = 10;
    spec.seed = 9;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until(12 * spec.params.P);
    rounds_done += 10;
  }
  state.SetItemsProcessed(rounds_done);
  state.SetLabel("rounds");
}
BENCHMARK(BM_SimulatedRounds)->Arg(4)->Arg(10)->Arg(31)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlsync

BENCHMARK_MAIN();
