// EXP-MICRO — engineering microbenchmarks (google-benchmark): the
// fault-tolerant averaging primitives, clock queries, event queue, the
// per-delivery ARR-ingestion hot path, and whole simulated rounds per
// second.
//
// `bench_micro --smoke [--out=micro-smoke.csv]` skips the timing runs and
// instead checks the *deterministic* ingestion counters CI can gate on
// without flaky wall-clock thresholds: heap allocations per steady-state
// round on the arena path (pinned at zero), scheduler queue operations per
// round under batched fan-out, and the NIC overflow conservation laws.
// Results are written as a CSV artifact either way; any exceeded limit
// makes the process exit nonzero, failing the CI perf-smoke step.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <queue>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/observe.h"
#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "clock/drift.h"
#include "clock/physical_clock.h"
#include "core/fastpath.h"
#include "core/welch_lynch.h"
#include "engine/pdes.h"
#include "engine/scheduler.h"
#include "net/partition.h"
#include "multiset/multiset_ops.h"
#include "proc/arrival.h"
#include "proc/process.h"
#include "proc/reduce_kernels.h"
#include "sim/delay.h"
#include "sim/event.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Allocation accounting.  The whole binary routes operator new through a
// counter that is only armed around measured regions (single-threaded), so
// the --smoke gate can pin "allocations per ingestion round" exactly.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void note_alloc() noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wlsync {
namespace {

void BM_FaultTolerantMidpoint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(1);
  ms::Multiset values(n);
  for (auto& value : values) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::fault_tolerant_midpoint(values, f));
  }
}
BENCHMARK(BM_FaultTolerantMidpoint)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FaultTolerantMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(2);
  ms::Multiset values(n);
  for (auto& value : values) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::fault_tolerant_mean(values, f));
  }
}
BENCHMARK(BM_FaultTolerantMean)->Arg(4)->Arg(64)->Arg(256);

void BM_XDistance(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  ms::Multiset u(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform();
    v[i] = rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms::x_distance(u, v, 0.1));
  }
}
BENCHMARK(BM_XDistance)->Arg(16)->Arg(256);

void BM_ClockQuery(benchmark::State& state) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-5, 0.5, util::Rng(4)),
                           0.0, 1e-5);
  (void)clock.now(1000.0);  // pre-extend
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now(rng.uniform(0.0, 1000.0)));
  }
}
BENCHMARK(BM_ClockQuery);

void BM_ClockInverse(benchmark::State& state) {
  clk::PhysicalClock clock(clk::make_piecewise_uniform(1e-5, 0.5, util::Rng(6)),
                           0.0, 1e-5);
  (void)clock.now(1000.0);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.to_real(rng.uniform(0.0, 1000.0)));
  }
}
BENCHMARK(BM_ClockInverse);

void BM_EventQueue(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::Event event;
      event.time = rng.uniform();
      event.tier = static_cast<std::int32_t>(i % 2);
      queue.push(event);
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384);

/// The seed's queue — a std::priority_queue copying whole Events on every
/// sift — kept here as the baseline the pooled engine is measured against.
class LegacyEventQueue {
 public:
  void push(sim::Event event) {
    event.seq = next_seq_++;
    queue_.push(event);
  }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  sim::Event pop() {
    sim::Event event = queue_.top();
    queue_.pop();
    return event;
  }

 private:
  std::priority_queue<sim::Event, std::vector<sim::Event>, sim::EventAfter>
      queue_;
  std::uint64_t next_seq_ = 0;
};

void BM_LegacyEventQueue(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  for (auto _ : state) {
    LegacyEventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      sim::Event event;
      event.time = rng.uniform();
      event.tier = static_cast<std::int32_t>(i % 2);
      queue.push(event);
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_LegacyEventQueue)->Arg(1024)->Arg(16384);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Events/sec through Simulator::step on a full Welch-Lynch workload
  // (n = 10, two-faced faults), per scheduler policy.
  const auto kind = static_cast<engine::SchedulerKind>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(10, 3, 1e-5, 0.01, 1e-3, 10.0);
    spec.fault = analysis::FaultKind::kTwoFaced;
    spec.fault_count = 2;
    spec.rounds = 10;
    spec.seed = 9;
    spec.scheduler = kind;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until(12 * spec.params.P);
    events += static_cast<std::int64_t>(
        experiment.simulator().events_processed());
  }
  state.SetItemsProcessed(events);
  state.SetLabel(engine::scheduler_name(kind));
}
BENCHMARK(BM_SimulatorEventThroughput)
    ->Arg(static_cast<int>(engine::SchedulerKind::kLegacyHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kDaryHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kCalendar));

/// Keeps `fanout` timers outstanding forever: the scheduler-bound workload.
class TimerStressProcess final : public proc::Process {
 public:
  TimerStressProcess(std::int32_t fanout, double period)
      : fanout_(fanout), period_(period) {}
  void on_start(proc::Context& ctx) override {
    for (std::int32_t k = 0; k < fanout_; ++k) {
      ctx.set_timer(ctx.local_time() +
                        period_ * static_cast<double>(k + 1) /
                            static_cast<double>(fanout_),
                    k);
    }
  }
  void on_timer(proc::Context& ctx, std::int32_t tag) override {
    ctx.set_timer(ctx.local_time() + period_, tag);
  }
  void on_message(proc::Context&, const sim::Message&) override {}

 private:
  std::int32_t fanout_;
  double period_;
};

void BM_SimulatorStepSchedulerBound(benchmark::State& state) {
  // Events/sec through Simulator::step with ~1024 events always pending and
  // a near-trivial handler: isolates the scheduling layer of step().
  const auto kind = static_cast<engine::SchedulerKind>(state.range(0));
  sim::SimConfig config;
  config.scheduler = kind;
  config.max_events = ~0ull;
  sim::Simulator sim(config, nullptr);
  for (std::int32_t p = 0; p < 4; ++p) {
    sim.add_process(std::make_unique<TimerStressProcess>(256, 1.0),
                    std::make_unique<clk::PhysicalClock>(
                        clk::make_constant(1.0), 0.0, 1e-5),
                    0.0, false, /*start=*/0.0);
  }
  double horizon = 1.0;
  sim.run_until(horizon);  // warm-up: all timers armed
  const std::uint64_t warmup = sim.events_processed();
  for (auto _ : state) {
    horizon += 1.0;
    sim.run_until(horizon);  // 4 * 256 timer events per window
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.events_processed() - warmup));
  state.SetLabel(engine::scheduler_name(kind));
}
BENCHMARK(BM_SimulatorStepSchedulerBound)
    ->Arg(static_cast<int>(engine::SchedulerKind::kLegacyHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kDaryHeap))
    ->Arg(static_cast<int>(engine::SchedulerKind::kCalendar))
    ->Arg(static_cast<int>(engine::SchedulerKind::kAuto));

/// Queue pressure of the batched fan-out path vs the seed's per-recipient
/// scheduling, n = 128 full mesh (ISSUE 2's acceptance metric).  Reported
/// counters are per simulated round: scheduler push+pop operations, the
/// pending-entry high-water mark, and direct (queue-bypassing) deliveries.
/// arg0: 1 = batched, 0 = per-recipient; arg1: DelayKind (kSlow clusters a
/// broadcast's deliveries at one instant — the regime the batching wins
/// outright; kUniform spreads them, where the win is depth, not op count).
void BM_BroadcastFanoutQueueOps(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const auto delay = static_cast<analysis::DelayKind>(state.range(1));
  constexpr std::int32_t kRounds = 3;
  std::uint64_t ops = 0;
  std::uint64_t peak = 0;
  std::uint64_t direct = 0;
  std::int64_t rounds_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(128, 42, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = kRounds;
    spec.delay = delay;
    spec.seed = 9;
    spec.batch_fanout = batched;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until((kRounds + 2) * spec.params.P);
    ops += experiment.simulator().queue_ops();
    peak = std::max<std::uint64_t>(peak, experiment.simulator().peak_pending());
    direct += experiment.simulator().fanout_direct();
    rounds_done += kRounds;
  }
  state.counters["queue_ops/round"] =
      static_cast<double>(ops) / static_cast<double>(rounds_done);
  state.counters["peak_pending"] = static_cast<double>(peak);
  state.counters["direct/round"] =
      static_cast<double>(direct) / static_cast<double>(rounds_done);
  state.SetLabel(std::string(batched ? "batched" : "per-recipient") + "/" +
                 (delay == analysis::DelayKind::kSlow ? "slow" : "uniform"));
}
BENCHMARK(BM_BroadcastFanoutQueueOps)
    ->Args({0, static_cast<int>(analysis::DelayKind::kSlow)})
    ->Args({1, static_cast<int>(analysis::DelayKind::kSlow)})
    ->Args({0, static_cast<int>(analysis::DelayKind::kUniform)})
    ->Args({1, static_cast<int>(analysis::DelayKind::kUniform)})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// ARR-ingestion hot path (ISSUE 4's acceptance metric): per-delivery cost of
// on_message + the amortized per-round mid(reduce(ARR)) update, legacy
// (id-indexed ARR, allocating ms::reduce) vs arena (dense neighbor slots,
// scratch reductions).  The harness drives a real WelchLynchProcess through
// a minimal Context — no scheduler, no clock segments — so the measured
// nanoseconds are the ingestion path itself.

/// Context stub for driving processes without a simulator: linear time,
/// fixed neighbor view, all outputs swallowed.
class IngestContext final : public proc::Context {
 public:
  IngestContext(std::int32_t n, std::vector<std::int32_t> neighbors)
      : n_(n), neighbors_(std::move(neighbors)) {}

  [[nodiscard]] std::int32_t id() const override { return neighbors_.front(); }
  [[nodiscard]] std::int32_t process_count() const override { return n_; }
  [[nodiscard]] std::span<const std::int32_t> neighbors() const override {
    return {neighbors_.data(), neighbors_.size()};
  }
  [[nodiscard]] double physical_time() const override { return now_; }
  [[nodiscard]] double local_time() const override { return now_; }
  [[nodiscard]] double corr() const override { return 0.0; }
  void add_corr(double) override {}
  void add_corr_amortized(double, double) override {}
  void broadcast(std::int32_t, double, std::int32_t) override {}
  void send(std::int32_t, std::int32_t, double, std::int32_t) override {}
  void set_timer(double, std::int32_t) override {}
  void set_timer_physical(double, std::int32_t) override {}
  void annotate(const proc::Annotation&) override {}

  void advance(double dt) { now_ += dt; }

 private:
  std::int32_t n_;
  std::vector<std::int32_t> neighbors_;
  double now_ = 0.0;
};

struct IngestHarness {
  core::WelchLynchConfig config;
  std::unique_ptr<core::WelchLynchProcess> process;
  std::unique_ptr<IngestContext> ctx;
  std::vector<std::int32_t> senders;

  /// n-process system; mesh = everyone exchanges with everyone, sparse =
  /// a fixed closed neighborhood of `degree + 1` ids (the arena's win on
  /// sparse graphs is skipping the O(n) gather).
  IngestHarness(std::int32_t n, proc::IngestMode mode, std::int32_t degree) {
    std::vector<std::int32_t> neighborhood;
    if (degree <= 0 || degree >= n - 1) {
      for (std::int32_t i = 0; i < n; ++i) neighborhood.push_back(i);
    } else {
      const std::int32_t stride = n / (degree + 1);
      for (std::int32_t k = 0; k <= degree; ++k) {
        neighborhood.push_back(k * stride);
      }
    }
    // Deliveries arrive in time order but the SENDERS interleave arbitrarily
    // (each link draws its own delay), so the per-slot arrival values are
    // unsorted — shuffle the delivery order so the reduction sees the real
    // regime instead of a presorted array that flatters pdqsort.
    senders = neighborhood;
    util::Rng shuffle_rng(41);
    for (std::size_t i = senders.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(shuffle_rng.uniform() *
                                              static_cast<double>(i));
      std::swap(senders[i - 1], senders[j < i ? j : i - 1]);
    }
    config.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
    config.ingest = mode;
    process = std::make_unique<core::WelchLynchProcess>(config);
    ctx = std::make_unique<IngestContext>(n, std::move(neighborhood));
    process->on_start(*ctx);
  }

  /// One collection window + update: deg+1 deliveries, then the FLAG=UPDATE
  /// step (the simulator's exact call sequence, minus the engine).
  void round() {
    core::WelchLynchProcess& p = *process;
    IngestContext& c = *ctx;
    for (const std::int32_t s : senders) {
      c.advance(1e-6);
      p.on_message(c, sim::make_app(s, core::kTimeTag, 0.0));
    }
    p.on_timer(c, core::WelchLynchProcess::kUpdateTimerTag);
  }
};

void BM_ArrIngestion(benchmark::State& state) {
  // arg0: IngestMode; arg1: n; arg2: neighborhood degree (0 = full mesh).
  const auto mode = static_cast<proc::IngestMode>(state.range(0));
  const auto n = static_cast<std::int32_t>(state.range(1));
  const auto degree = static_cast<std::int32_t>(state.range(2));
  IngestHarness harness(n, mode, degree);
  harness.round();  // warm-up: arena bound, scratch grown
  for (auto _ : state) {
    harness.round();
  }
  const auto deliveries = static_cast<std::int64_t>(harness.senders.size());
  state.SetItemsProcessed(state.iterations() * deliveries);
  state.SetLabel(std::string(proc::ingest_name(mode)) + "/n=" +
                 std::to_string(n) +
                 (degree > 0 ? "/deg=" + std::to_string(degree) : "/mesh"));
}
BENCHMARK(BM_ArrIngestion)
    ->Args({static_cast<int>(proc::IngestMode::kLegacy), 512, 0})
    ->Args({static_cast<int>(proc::IngestMode::kArena), 512, 0})
    ->Args({static_cast<int>(proc::IngestMode::kLegacy), 512, 16})
    ->Args({static_cast<int>(proc::IngestMode::kArena), 512, 16})
    ->Args({static_cast<int>(proc::IngestMode::kLegacy), 128, 0})
    ->Args({static_cast<int>(proc::IngestMode::kArena), 128, 0});

void BM_ReduceScratch(benchmark::State& state) {
  // The reduction alone: ms::fault_tolerant_midpoint (sort + 2 allocations)
  // vs ArrivalArena::midpoint_reduced (2 nth_element passes, no
  // allocations) on the same multiset.
  const auto arena_mode = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  const std::size_t f = (n - 1) / 3;
  util::Rng rng(17);
  std::vector<std::int32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::int32_t>(i);
  proc::ArrivalArena arena;
  arena.bind({ids.data(), ids.size()}, static_cast<std::int32_t>(n), 0.0);
  ms::Multiset values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = rng.uniform();
    values[i] = v;
    arena.set_slot(i, v);
  }
  for (auto _ : state) {
    if (arena_mode) {
      benchmark::DoNotOptimize(arena.midpoint_reduced(f));
    } else {
      benchmark::DoNotOptimize(ms::fault_tolerant_midpoint(values, f));
    }
  }
  state.SetLabel(arena_mode ? "arena-scratch" : "ms::reduce");
}
BENCHMARK(BM_ReduceScratch)->Args({0, 512})->Args({1, 512})->Args({0, 64})->Args({1, 64});


void BM_ArrDeliverOnly(benchmark::State& state) {
  const auto mode = static_cast<proc::IngestMode>(state.range(0));
  IngestHarness harness(512, mode, 0);
  harness.round();
  core::WelchLynchProcess& p = *harness.process;
  IngestContext& c = *harness.ctx;
  for (auto _ : state) {
    for (const std::int32_t s : harness.senders) {
      c.advance(1e-6);
      p.on_message(c, sim::make_app(s, core::kTimeTag, 0.0));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.SetLabel(proc::ingest_name(mode));
}
BENCHMARK(BM_ArrDeliverOnly)->Arg(0)->Arg(1);

void BM_ArrUpdateOnly(benchmark::State& state) {
  const auto mode = static_cast<proc::IngestMode>(state.range(0));
  IngestHarness harness(512, mode, 0);
  harness.round();
  core::WelchLynchProcess& p = *harness.process;
  IngestContext& c = *harness.ctx;
  for (auto _ : state) {
    p.on_timer(c, core::WelchLynchProcess::kUpdateTimerTag);
  }
  state.SetLabel(proc::ingest_name(mode));
}
BENCHMARK(BM_ArrUpdateOnly)->Arg(0)->Arg(1);

void BM_SimulatedRounds(benchmark::State& state) {
  // Whole-system throughput: one complete Welch-Lynch round (n^2 messages,
  // 2n timers) per iteration, n = state.range(0).
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto f = (n - 1) / 3;
  std::int64_t rounds_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    analysis::RunSpec spec;
    spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = 10;
    spec.seed = 9;
    analysis::Experiment experiment(spec);
    state.ResumeTiming();
    experiment.simulator().run_until(12 * spec.params.P);
    rounds_done += 10;
  }
  state.SetItemsProcessed(rounds_done);
  state.SetLabel("rounds");
}
BENCHMARK(BM_SimulatedRounds)->Arg(4)->Arg(10)->Arg(31)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --smoke: deterministic perf counters for CI.  No timing thresholds — every
// gated value is an exact function of the code path (allocation counts,
// queue operations, NIC conservation), so a regression fails identically on
// every machine while wall-clock noise cannot.

struct SmokeRow {
  std::string metric;
  double value = 0.0;
  double limit = 0.0;   ///< inclusive upper bound; < 0 = report-only
  bool pass = true;
};

/// Measured 2026-07 on the batched engine and re-confirmed 2026-08 after
/// the per-lane scheduler refactor (engine/pdes.h): ~1323 scheduler
/// ops/round for the n = 128 clustered-delay mesh (timers + one entry per
/// broadcast; the per-recipient engine needs ~33k).  Ratcheted from the
/// original 1460 to ~5% headroom; a real regression re-queues per
/// recipient and lands ~25x over this.
constexpr double kQueueOpsPerRoundLimit = 1390.0;

/// Heap allocations per steady-state ingestion round (n = 512 full mesh,
/// 10 measured rounds after warm-up).  The arena path is pinned at ZERO;
/// the legacy path is reported alongside for the artifact diff.
void smoke_alloc_rounds(std::vector<SmokeRow>& rows) {
  for (const proc::IngestMode mode :
       {proc::IngestMode::kArena, proc::IngestMode::kLegacy}) {
    IngestHarness harness(512, mode, 0);
    for (int r = 0; r < 3; ++r) harness.round();  // warm-up
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    constexpr int kRounds = 10;
    for (int r = 0; r < kRounds; ++r) harness.round();
    g_count_allocs.store(false);
    const double per_round =
        static_cast<double>(g_alloc_count.load()) / kRounds;
    const bool arena = mode == proc::IngestMode::kArena;
    rows.push_back({std::string("allocs_per_round_") + proc::ingest_name(mode),
                    per_round, arena ? 0.0 : -1.0,
                    !arena || per_round <= 0.0});
  }
}

/// Scheduler queue operations per round, batched fan-out, n = 128 full mesh
/// under clustered (all-slow) delays — the PR 2 acceptance scenario.  The
/// count is deterministic (fixed seed, integer event ordering); the limit
/// carries ~10% headroom over the measured 2026-07 value so only a real
/// regression (a path that starts re-queueing per recipient again) trips it.
void smoke_queue_ops(std::vector<SmokeRow>& rows) {
  analysis::RunSpec spec;
  spec.params = core::make_params(128, 42, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 3;
  spec.delay = analysis::DelayKind::kSlow;
  spec.seed = 9;
  spec.batch_fanout = true;
  analysis::Experiment experiment(spec);
  experiment.simulator().run_until(5 * spec.params.P);
  const double per_round =
      static_cast<double>(experiment.simulator().queue_ops()) / 3.0;
  rows.push_back({"queue_ops_per_round_n128", per_round,
                  kQueueOpsPerRoundLimit, per_round <= kQueueOpsPerRoundLimit});
}

/// NIC overflow conservation on the clustered-broadcast worst case
/// (n = 64 mesh, capacity 8): every arrival is served, dropped, or still
/// queued; the largest same-instant burst is exactly n (every sender's
/// datagram lands at once under all-slow delays, zero spread, no drift).
void smoke_nic_overflow(std::vector<SmokeRow>& rows) {
  analysis::RunSpec spec;
  spec.params = core::make_params(64, 21, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 4;
  spec.delay = analysis::DelayKind::kSlow;
  spec.drift = analysis::DriftKind::kNone;
  spec.initial_spread = 0.0;
  spec.seed = 9;
  spec.nic = sim::NicConfig{/*capacity=*/8, /*service_time=*/50e-6};
  const analysis::RunResult result = analysis::run_experiment(spec);
  const auto arrivals = static_cast<double>(result.nic.arrivals);
  const auto accounted =
      static_cast<double>(result.nic.served + result.nic.dropped);
  rows.push_back({"nic_arrivals", arrivals, -1.0, true});
  rows.push_back({"nic_unaccounted", arrivals - accounted,
                  static_cast<double>(spec.params.n) * 8.0,
                  arrivals - accounted >= 0.0 &&
                      arrivals - accounted <= spec.params.n * 8.0});
  rows.push_back({"nic_max_burst", static_cast<double>(result.nic.max_burst),
                  64.0, result.nic.max_burst == 64});
  rows.push_back({"nic_dropped", static_cast<double>(result.nic.dropped),
                  -1.0, true});
  // Gated companion of the report-only row above: the clustered burst MUST
  // overflow a capacity-8 queue, so "no drops detected" (value 1) means the
  // overflow model broke.
  rows.push_back({"nic_no_drops_detected", result.nic.dropped == 0 ? 1.0 : 0.0,
                  0.0, result.nic.dropped > 0});
}

/// Streaming-observer gates (analysis/observe.h).  The observer is attached
/// to an execution that is bit-identical with and without it (observation
/// is passive), so the heap-allocation DELTA between the observed and
/// unobserved runs is exactly the observer's own in-run allocation count —
/// pinned at zero in retained mode (every accumulator is preallocated
/// against the horizon; in bounded mode truncation keeps CorrLog/segment
/// vectors from ever growing, so the delta goes negative and is gated <= 0).
void smoke_observer_counters(std::vector<SmokeRow>& rows) {
  analysis::RunSpec spec;
  spec.params = core::make_params(24, 7, 1e-5, 0.01, 1e-3, 10.0);
  spec.fault = analysis::FaultKind::kTwoFaced;
  spec.fault_count = 2;
  spec.rounds = 8;
  spec.seed = 9;

  std::uint64_t adjustments = 0;
  const auto run_counted = [&](int mode /*0 none, 1 retained, 2 bounded*/) {
    analysis::Experiment experiment(spec);
    const double horizon = experiment.horizon();
    std::unique_ptr<analysis::StreamingObserver> observer;
    if (mode != 0) {
      // The exact spec production runs attach (Experiment::make_observe_spec)
      // with only the gradient/retention knobs flipped for the gate.
      analysis::ObserveSpec ospec = experiment.make_observe_spec();
      ospec.gradient = true;
      ospec.topology = &experiment.topology();
      ospec.truncate = mode == 2;
      observer = std::make_unique<analysis::StreamingObserver>(
          experiment.simulator(), std::move(ospec));
      experiment.simulator().set_observer(observer.get());
    }
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    experiment.simulator().run_until(horizon);
    g_count_allocs.store(false);
    experiment.simulator().set_observer(nullptr);
    if (observer) adjustments = observer->stats().adjustments;
    return g_alloc_count.load();
  };

  const std::uint64_t base = run_counted(0);
  const double retained_delta =
      static_cast<double>(run_counted(1)) - static_cast<double>(base);
  const double bounded_delta =
      static_cast<double>(run_counted(2)) - static_cast<double>(base);
  rows.push_back({"observer_run_alloc_delta_retained", retained_delta, 0.0,
                  retained_delta <= 0.0});
  rows.push_back({"observer_run_alloc_delta_bounded", bounded_delta, 0.0,
                  bounded_delta <= 0.0});
  rows.push_back({"observer_adjustment_events", static_cast<double>(adjustments),
                  -1.0, true});
  // Sanity companion: zero adjustments would mean the hook never fired and
  // the two deltas above gated nothing.
  rows.push_back({"observer_no_adjustments_seen", adjustments == 0 ? 1.0 : 0.0,
                  0.0, adjustments > 0});
}

/// Bounded-memory ceiling: the n = 64 mesh observe+bounded run must keep
/// its retained clock/CORR history under a fixed byte ceiling however long
/// the run is — truncation caps it at the per-round high water, ~64 KiB
/// here (measured 2026-07: ~40 KiB), while the retained-history run grows
/// O(rounds * n) past 400 KiB.
void smoke_observer_history(std::vector<SmokeRow>& rows) {
  analysis::RunSpec spec;
  spec.params = core::make_params(64, 21, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 12;
  spec.seed = 9;
  spec.observe = true;
  spec.retain_history = false;
  const analysis::RunResult bounded = analysis::run_experiment(spec);
  spec.retain_history = true;
  const analysis::RunResult retained = analysis::run_experiment(spec);
  constexpr double kHistoryCeiling = 64.0 * 1024.0;
  const auto peak = static_cast<double>(bounded.observe.peak_history_bytes);
  rows.push_back({"observer_bounded_history_peak_bytes", peak, kHistoryCeiling,
                  peak <= kHistoryCeiling});
  rows.push_back(
      {"observer_retained_history_peak_bytes",
       static_cast<double>(retained.observe.peak_history_bytes), -1.0, true});
  // The two modes must measure identical physics.
  rows.push_back({"observer_bounded_results_differ",
                  analysis::results_identical(bounded, retained) ? 0.0 : 1.0,
                  0.0, analysis::results_identical(bounded, retained)});
}

/// SIMD-kernel value-exactness gates (proc/reduce_kernels.h).  The sorting
/// networks and the dual-rank select are pinned BITWISE against std::sort /
/// std::nth_element on randomized AND tie-heavy inputs — the tie-heavy set
/// (values quantized to a handful of levels) exercises the three-way
/// partition's tie band, where an off-by-one returns a neighbor rank that
/// no uniform-random input would ever catch.  Every mismatch count gates
/// at zero: these kernels sit under every fault-tolerant reduction.
void smoke_simd_kernels(std::vector<SmokeRow>& rows) {
  util::Rng rng(29);
  const auto fill = [&](std::vector<double>& v, bool ties) {
    for (double& x : v) {
      x = ties ? std::floor(rng.uniform() * 5.0) / 4.0 : rng.uniform();
    }
  };

  double network_mismatches = 0.0;
  for (std::size_t m = 1; m <= proc::kernels::kMaxNetworkSize; ++m) {
    std::vector<double> a(m), b(m);
    for (int trial = 0; trial < 200; ++trial) {
      fill(a, trial % 2 == 1);
      b = a;
      proc::kernels::small_sort_network(a.data(), m);
      std::sort(b.begin(), b.end());
      if (a != b) network_mismatches += 1.0;
    }
  }
  rows.push_back({"simd_sort_network_mismatches", network_mismatches, 0.0,
                  network_mismatches == 0.0});

  double select_mismatches = 0.0;
  std::vector<double> tmp;
  for (const std::size_t m : {17u, 64u, 423u, 1024u}) {
    std::vector<double> a(m), b(m);
    const std::size_t f = (m - 1) / 3;
    const std::pair<std::size_t, std::size_t> ranks[] = {
        {f, m - 1 - f},          // the reduce's clip ranks
        {0, m - 1},              // window extremes
        {m / 2, m / 2},          // equal ranks (the midpoint's degenerate k)
        {f, f + 1},              // adjacent ranks straddling a tie band
    };
    for (int trial = 0; trial < 50; ++trial) {
      for (const auto& [lo, hi] : ranks) {
        fill(a, trial % 2 == 1);
        b = a;
        const auto got =
            proc::kernels::dual_rank_select(a.data(), m, lo, hi, tmp);
        std::nth_element(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(lo),
                         b.end());
        const double want_lo = b[lo];
        std::nth_element(b.begin() + static_cast<std::ptrdiff_t>(lo),
                         b.begin() + static_cast<std::ptrdiff_t>(hi), b.end());
        if (got.first != want_lo || got.second != b[hi]) {
          select_mismatches += 1.0;
        }
      }
    }
  }
  rows.push_back({"simd_dual_rank_select_mismatches", select_mismatches, 0.0,
                  select_mismatches == 0.0});

  // End-to-end: the arena reductions (which compose both kernels) against
  // the scalar multiset reference, bitwise.
  double reduce_mismatches = 0.0;
  for (const std::size_t m : {5u, 16u, 64u, 423u}) {
    const std::size_t f = (m - 1) / 3;
    std::vector<std::int32_t> ids(m);
    for (std::size_t i = 0; i < m; ++i) ids[i] = static_cast<std::int32_t>(i);
    proc::ArrivalArena arena;
    arena.bind({ids.data(), ids.size()}, static_cast<std::int32_t>(m), 0.0);
    ms::Multiset values(m);
    for (int trial = 0; trial < 50; ++trial) {
      for (std::size_t i = 0; i < m; ++i) {
        const double v = trial % 2 == 1
                             ? std::floor(rng.uniform() * 5.0) / 4.0
                             : rng.uniform();
        values[i] = v;
        arena.set_slot(i, v);
      }
      if (arena.midpoint_reduced(f) != ms::fault_tolerant_midpoint(values, f)) {
        reduce_mismatches += 1.0;
      }
      if (arena.mean_reduced(f) != ms::fault_tolerant_mean(values, f)) {
        reduce_mismatches += 1.0;
      }
    }
  }
  rows.push_back({"simd_arena_reduce_mismatches", reduce_mismatches, 0.0,
                  reduce_mismatches == 0.0});
}

/// A hand-built fault-free mesh the round fast path can drive end to end:
/// no Experiment scaffolding, no trace sinks — so the allocation counter
/// sees the fast path alone.
struct FastpathHarness {
  sim::Simulator sim;
  core::RoundFastPath fastpath;

  static sim::SimConfig make_config() {
    sim::SimConfig config;
    config.delta = 0.01;
    config.eps = 1e-3;
    config.seed = 9;
    return config;
  }

  explicit FastpathHarness(std::int32_t n)
      : sim(make_config(), sim::make_uniform_delay(0.01, 1e-3)),
        fastpath(sim) {
    core::WelchLynchConfig wl;
    wl.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
    for (std::int32_t i = 0; i < n; ++i) {
      // Deterministic legal rates in [1, 1 + rho] and sub-beta offsets.
      auto clock = std::make_unique<clk::PhysicalClock>(
          clk::make_constant(1.0 + 1e-5 * static_cast<double>(i % 7) / 7.0),
          1e-5 * static_cast<double>(i % 3), 1e-5);
      const double corr0 = -clock->now(0.0);
      sim.add_process(std::make_unique<core::WelchLynchProcess>(wl),
                      std::move(clock), corr0, /*faulty=*/false,
                      /*start_real_time=*/0.0);
    }
    // Pre-size the CORR logs like Experiment::build does; the steady-state
    // allocation gate measures the round loop, not history-vector growth.
    sim.reserve_history(32);
  }
};

/// The fast path's own steady-state gates: it must engage on the hand-built
/// mesh, advance exactly the requested exchanges, and allocate NOTHING per
/// additional round — doubling the horizon may not move the allocation
/// count (all state is bound in init / the first exchange).
void smoke_fastpath_round(std::vector<SmokeRow>& rows) {
  constexpr std::int32_t kN = 128;
  constexpr double kP = 10.0;
  const auto run_counted = [&](std::int32_t rounds) {
    FastpathHarness harness(kN);
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    harness.fastpath.run((static_cast<double>(rounds) + 0.5) * kP);
    g_count_allocs.store(false);
    return std::pair<std::uint64_t, core::FastPathStats>(
        g_alloc_count.load(), harness.fastpath.stats());
  };
  const auto [alloc_short, stats_short] = run_counted(6);
  const auto [alloc_long, stats_long] = run_counted(12);
  rows.push_back({"fastpath_engaged", stats_long.engaged ? 1.0 : 0.0, -1.0,
                  stats_long.engaged});
  const double exchange_delta =
      static_cast<double>(stats_long.exchanges - stats_short.exchanges);
  rows.push_back({"fastpath_exchanges_delta_per_6_rounds", exchange_delta, 6.0,
                  exchange_delta == 6.0});
  const double alloc_delta = static_cast<double>(alloc_long) -
                             static_cast<double>(alloc_short);
  rows.push_back({"fastpath_steady_state_allocs_per_round", alloc_delta / 6.0,
                  0.0, alloc_delta <= 0.0});
  rows.push_back({"fastpath_deliveries_per_exchange",
                  stats_long.exchanges > 0
                      ? static_cast<double>(stats_long.deliveries) /
                            static_cast<double>(stats_long.exchanges)
                      : 0.0,
                  -1.0, true});
}

/// Conservative-PDES stall-rate ceiling (the ISSUE 8 companion to the
/// BENCH_pdes.json audit).  Epoch and stall counts are exact functions of
/// the partition and the lookahead floors — bitwise deterministic across
/// machines and repetitions (unlike the wall clock, which is why the JSON
/// artifact's timing rows are NOT gates).  A stall is an epoch whose
/// conservative window admitted no events; a protocol regression that
/// shrinks the lookahead (or a partitioner regression that explodes the
/// cut) shows up here as stalls crowding out productive epochs long before
/// any timing cell moves outside its noise band.
void smoke_pdes_stalls(std::vector<SmokeRow>& rows) {
  analysis::RunSpec spec;
  spec.params = core::make_params(256, 85, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = 6;
  spec.seed = 9;
  spec.topology.kind = net::TopologyKind::kKRegular;
  spec.topology.degree = 16;
  spec.engine = analysis::EngineMode::kPdes;
  spec.pdes_workers = 8;
  const analysis::RunResult result = analysis::run_experiment(spec);
  // Pinned EXACT (was report-only): the adaptive-window fold is a pure
  // function of the partition and the delay floors, so the epoch count for
  // this spec is a constant of the code — 17 as of the ISSUE 10 adaptive
  // protocol (the static window needs 38).  Any drift, up OR down, means
  // the window fold changed and BENCH_pdes.json needs regenerating.
  constexpr double kPinnedEpochs = 17.0;
  rows.push_back({"pdes_epochs", static_cast<double>(result.pdes_epochs),
                  kPinnedEpochs,
                  static_cast<double>(result.pdes_epochs) == kPinnedEpochs});
  const double stall_rate =
      result.pdes_epochs > 0 ? static_cast<double>(result.pdes_stalls) /
                                   static_cast<double>(result.pdes_epochs)
                             : 1.0;
  // Ratcheted 0.5 -> 0.25 with ISSUE 10: the adaptive lookahead widens the
  // inter-round gap into one epoch, and this spec now measures ZERO stalls
  // (the old static window measured 6/18 = 0.33).  Beyond 0.25 the sharded
  // engine is spinning on the epoch barrier instead of simulating.
  constexpr double kStallRateCeiling = 0.25;
  rows.push_back({"pdes_stall_rate", stall_rate, kStallRateCeiling,
                  result.pdes_epochs > 0 && stall_rate <= kStallRateCeiling});
}

/// Steady-state allocations the PDES epoch loop + overlapped drain add
/// OVER the serial engine, pinned at ZERO by a double difference: for
/// each engine, two fresh runs of the canonical expander spec (6 and 12
/// rounds) — thread spawn, lane setup, channel-block seeding and
/// scheduler warm-up allocate identically at both lengths, so each
/// engine's delta is what its EXTRA steady-state rounds allocated; the
/// per-process round bookkeeping (clock-correction history etc.) is the
/// same work under either engine and cancels in pdes_delta -
/// serial_delta.  What remains is the sharded engine's own per-epoch
/// footprint.  The epoch barrier recycles spent SPSC channel blocks
/// while the workers are quiescent (engine/pdes.h), so it must be zero —
/// a positive difference means the drain path started allocating per
/// epoch.
void smoke_pdes_drain_allocs(std::vector<SmokeRow>& rows) {
  constexpr std::int32_t kN = 256;
  constexpr double kP = 10.0;
  const auto run_counted = [&](std::int32_t rounds, bool pdes) {
    analysis::RunSpec spec;
    spec.params = core::make_params(kN, (kN - 1) / 3, 1e-5, 0.01, 1e-3, kP);
    spec.rounds = rounds;
    spec.seed = 9;
    spec.topology.kind = net::TopologyKind::kKRegular;
    spec.topology.degree = 16;
    analysis::Experiment experiment(spec);
    const double horizon = (static_cast<double>(rounds) + 0.5) * kP;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    if (pdes) {
      const net::Partition part =
          net::partition_topology(experiment.topology(), 8, spec.seed);
      engine::PdesEngine engine(experiment.simulator(), part);
      engine.run_until(horizon);
    } else {
      experiment.simulator().run_until(horizon);
    }
    g_count_allocs.store(false);
    return g_alloc_count.load();
  };
  const double pdes_delta =
      static_cast<double>(run_counted(12, true)) -
      static_cast<double>(run_counted(6, true));
  const double serial_delta =
      static_cast<double>(run_counted(12, false)) -
      static_cast<double>(run_counted(6, false));
  rows.push_back({"pdes_drain_allocs_over_serial_per_6_rounds",
                  pdes_delta - serial_delta, 0.0,
                  pdes_delta - serial_delta <= 0.0});
}

int run_smoke(const util::Flags& flags) {
  std::vector<SmokeRow> rows;
  smoke_alloc_rounds(rows);
  smoke_queue_ops(rows);
  smoke_nic_overflow(rows);
  smoke_observer_counters(rows);
  smoke_observer_history(rows);
  smoke_simd_kernels(rows);
  smoke_fastpath_round(rows);
  smoke_pdes_stalls(rows);
  smoke_pdes_drain_allocs(rows);

  const std::string out_path = flags.get_string("out", "micro-smoke.csv");
  std::ofstream csv(out_path);
  csv << "metric,value,limit,pass\n";
  bool all_pass = true;
  for (const SmokeRow& row : rows) {
    csv << row.metric << ',' << row.value << ',' << row.limit << ','
        << (row.pass ? 1 : 0) << '\n';
    std::cout << (row.pass ? "  ok   " : "  FAIL ") << row.metric << " = "
              << row.value
              << (row.limit >= 0.0 ? " (limit " + std::to_string(row.limit) + ")"
                                   : " (report-only)")
              << '\n';
    all_pass = all_pass && row.pass;
  }
  std::cout << (all_pass ? "bench_micro --smoke: PASS"
                         : "bench_micro --smoke: FAIL")
            << " (" << out_path << ")\n";
  return all_pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --fastpath-json: the perf-trajectory artifact (BENCH_fastpath.json).
// One gradient run per (workload, engine) cell — the full-mesh plain cells
// are the ISSUE 6 acceptance workload; ISSUE 8 added two engine-only
// widening cells (staggered full mesh at n = 1024, fault-isolating deg-16
// expander at n = 2048) — timed wall-clock and reduced to ns/round +
// rounds/sec.  The
// event engine is the measured reference for every workload; the `speedup`
// field is fastpath-rounds-per-sec / event-rounds-per-sec per key.  CI
// uploads the file on every run to seed the bench history; timing rows are
// telemetry, not gates (the deterministic gates live in --smoke) — except
// under --fastpath-compare=OLD.json, which turns the speedup RATIOS into a
// regression gate: a fresh ratio below 0.8x the checked-in artifact's on
// any shared key fails the run.  Ratios, not raw rounds/sec, so the gate
// transfers across machines of different absolute speed.

struct FastpathCell {
  std::string key;      ///< speedup-map key: "n512", "stagger_n1024", ...
  std::string variant;  ///< "plain" | "staggered" | "region"
  std::int32_t n;
  const char* engine;
  std::int32_t rounds;
  bool engaged;
  double wall_s;
};

std::vector<FastpathCell> measure_fastpath_cells(std::int32_t max_n) {
  struct Workload {
    std::string key;
    std::string variant;
    analysis::RunSpec spec;
  };
  std::vector<Workload> workloads;
  for (std::int32_t n = 512; n <= max_n; n *= 2) {
    // Fewer rounds at large n keeps the event-engine reference cells from
    // dominating CI wall time; rates are per-round so rows stay comparable.
    Workload w;
    w.key = "n" + std::to_string(n);
    w.variant = "plain";
    w.spec.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
    w.spec.rounds = n >= 4096 ? 3 : (n >= 2048 ? 4 : 6);
    w.spec.seed = 9;
    w.spec.measure_gradient = true;
    // One n = 4096 exchange is ~16.8M deliveries; the horizon affords
    // rounds + 1 full rounds, which overruns the 50M default guard.
    w.spec.max_events = 400'000'000;
    workloads.push_back(std::move(w));
  }
  if (max_n >= 1024) {
    // The ISSUE 8 widenings, engine-only (no gradient measurement — the
    // O(n^2)-pair gradient is identical work for both engines and would
    // bury the engine gap these cells exist to track).
    Workload stagger;
    stagger.key = "stagger_n1024";
    stagger.variant = "staggered";
    stagger.spec.params =
        core::make_params(1024, 341, 1e-5, 0.01, 1e-3, 10.0);
    stagger.spec.rounds = 6;
    stagger.spec.seed = 9;
    stagger.spec.stagger = 1e-4;
    stagger.spec.max_events = 400'000'000;
    workloads.push_back(std::move(stagger));
  }
  if (max_n >= 2048) {
    // The region cell runs long (48 rounds) and large (n = 2048): the fast
    // set's per-round batches amortize the fixed per-exchange costs (entry
    // replay, arena validation, the round-overlap guard) only once the
    // honest remainder dwarfs the tainted neighborhoods, and the placed
    // silent pair keeps the tainted region at 2 closed neighborhoods
    // (~34 pids) while the other ~2014 ride the batched phases.
    Workload region;
    region.key = "region_n2048";
    region.variant = "region";
    region.spec.params =
        core::make_params(2048, 682, 1e-5, 0.01, 1e-3, 10.0);
    region.spec.rounds = 48;
    region.spec.seed = 9;
    region.spec.topology.kind = net::TopologyKind::kKRegular;
    region.spec.topology.degree = 16;
    region.spec.fault = analysis::FaultKind::kSilent;
    region.spec.fault_count = 2;
    region.spec.placement = proc::PlacementKind::kRandom;
    region.spec.max_events = 400'000'000;
    workloads.push_back(std::move(region));
  }

  std::vector<FastpathCell> cells;
  for (const Workload& w : workloads) {
    for (const analysis::EngineMode engine :
         {analysis::EngineMode::kEvent, analysis::EngineMode::kFastpath}) {
      analysis::RunSpec spec = w.spec;
      spec.engine = engine;
      const auto start = std::chrono::steady_clock::now();
      const analysis::RunResult result = analysis::run_experiment(spec);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      cells.push_back({w.key, w.variant, w.spec.params.n,
                       engine == analysis::EngineMode::kEvent ? "event"
                                                              : "fastpath",
                       result.completed_rounds, result.fastpath_engaged,
                       wall});
      std::cerr << "  " << w.key << " engine=" << cells.back().engine << " "
                << result.completed_rounds << " rounds in " << wall << " s\n";
    }
  }
  return cells;
}

double fastpath_cell_rate(const FastpathCell& c) {
  return c.wall_s > 0.0 ? static_cast<double>(c.rounds) / c.wall_s : 0.0;
}

/// The fresh per-key speedup map: cells come in (event, fastpath) pairs.
std::vector<std::pair<std::string, double>> fastpath_speedups(
    const std::vector<FastpathCell>& cells) {
  std::vector<std::pair<std::string, double>> speedups;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const double event_rate = fastpath_cell_rate(cells[i]);
    if (event_rate <= 0.0) continue;
    speedups.emplace_back(cells[i].key,
                          fastpath_cell_rate(cells[i + 1]) / event_rate);
  }
  return speedups;
}

using bench::parse_speedup_map;

int run_fastpath_json(const util::Flags& flags) {
  const std::string out_path =
      flags.get_string("fastpath-json", "BENCH_fastpath.json");
  const std::string compare_path = flags.get_string("fastpath-compare", "");
  const auto max_n =
      static_cast<std::int32_t>(flags.get_int("max-n", 4096));

  const std::vector<FastpathCell> cells = measure_fastpath_cells(max_n);

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "bench_micro: cannot open --fastpath-json=" << out_path
              << "\n";
    return 1;
  }
  json << "{\n  \"workload\": \"gradient run, P=10, seed 9; plain cells "
          "full mesh with gradient measurement, stagger/region cells "
          "engine-only (sigma=1e-4 mesh; deg-16 expander, 2 silent "
          "random, 48 rounds)\",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const FastpathCell& c = cells[i];
    json << "    {\"key\": \"" << c.key << "\", \"variant\": \"" << c.variant
         << "\", \"n\": " << c.n << ", \"engine\": \"" << c.engine
         << "\", \"rounds\": " << c.rounds
         << ", \"fastpath_engaged\": " << (c.engaged ? "true" : "false")
         << ", \"wall_s\": " << c.wall_s
         << ", \"rounds_per_sec\": " << fastpath_cell_rate(c)
         << ", \"ns_per_round\": "
         << (c.rounds > 0 ? c.wall_s * 1e9 / static_cast<double>(c.rounds)
                          : 0.0)
         << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup\": {";
  const std::vector<std::pair<std::string, double>> fresh =
      fastpath_speedups(cells);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    json << (i == 0 ? "" : ", ") << "\"" << fresh[i].first
         << "\": " << fresh[i].second;
  }
  json << "}\n}\n";
  std::cout << "bench_micro --fastpath-json: wrote " << out_path << "\n";

  if (compare_path.empty()) return 0;

  // --fastpath-compare: gate fresh speedup ratios against the baseline
  // artifact.  Keys only one side knows (e.g. the baseline's n4096 when CI
  // measures to --max-n=2048) are skipped; zero shared keys is an error,
  // not a pass.
  std::vector<std::pair<std::string, double>> baseline;
  if (!parse_speedup_map(compare_path, &baseline)) {
    std::cerr << "bench_micro: cannot parse --fastpath-compare="
              << compare_path << "\n";
    return 1;
  }
  constexpr double kRegressionFloor = 0.8;
  return bench::gate_speedups("bench_micro --fastpath-compare", fresh,
                              baseline, kRegressionFloor) == 1
             ? 0
             : 1;
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--smoke" || arg.rfind("--smoke=", 0) == 0) {
      const wlsync::util::Flags flags(argc, argv);
      return wlsync::run_smoke(flags);
    }
    if (arg == "--fastpath-json" || arg.rfind("--fastpath-json=", 0) == 0 ||
        arg.rfind("--fastpath-compare=", 0) == 0) {
      const wlsync::util::Flags flags(argc, argv);
      return wlsync::run_fastpath_json(flags);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
