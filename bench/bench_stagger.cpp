// EXP-STAGGER — Section 9.3: on a datagram network, synchronized broadcasts
// overflow bounded receive buffers ("when the system behaves well, it is
// punished"); staggering process p's broadcast to T^i + p*sigma spaces the
// traffic and restores reliability while behaving "very similarly" to the
// original algorithm.  Sweeps NIC capacity x stagger interval.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 12));

  const core::Params params = bench::default_params(10, 3);
  bench::print_header(
      "EXP-STAGGER (Section 9.3)",
      "10 processes; bounded per-recipient NIC (1 ms service).  Without "
      "stagger, each round lands ~10 datagrams at once and the buffer "
      "overwrites old entries; sigma = 5 ms spacing removes the loss.");

  util::Table table({"NIC slots", "sigma", "dropped", "completed rounds",
                     "gamma measured", "healthy"});
  const double gamma = core::derive(params).gamma;
  bool shape_ok = true;
  for (std::size_t capacity : {2, 4, 8}) {
    for (double sigma : {0.0, 0.002, 0.005}) {
      analysis::RunSpec spec;
      spec.params = params;
      spec.stagger = sigma;
      spec.nic = sim::NicConfig{capacity, /*service_time=*/1e-3};
      spec.rounds = rounds;
      spec.seed = 4;
      const analysis::RunResult result = analysis::run_experiment(spec);
      // "Punished": datagrams lost outright, or the service backlog pushed
      // arrivals past the collection window and the round structure
      // collapsed (both happen on real datagram NICs).
      const bool punished =
          result.nic_dropped > 0 || result.completed_rounds < rounds;
      const bool healthy = !punished &&
                           result.gamma_measured <= gamma * (1 + 1e-9);
      if (sigma == 0.0) {
        shape_ok = shape_ok && punished;  // simultaneity hurts
      } else if (sigma >= 0.005) {
        shape_ok = shape_ok && healthy;  // stagger heals
      }
      table.add_row({std::to_string(capacity), util::fmt(sigma),
                     std::to_string(result.nic_dropped),
                     std::to_string(result.completed_rounds),
                     healthy ? util::fmt(result.gamma_measured) : "broken",
                     bench::verdict(healthy)});
    }
  }
  table.print(std::cout);
  std::cout << "\nsimultaneous broadcasts are punished; sigma = 5 ms heals "
               "the system and preserves gamma: "
            << bench::verdict(shape_ok) << "\n";
  return shape_ok ? 0 : 1;
}
