#pragma once
// Shared scaffolding for the experiment harness binaries.  Each binary
// regenerates one of the paper's quantitative claims (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured records).

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "core/params.h"
#include "net/topology.h"
#include "proc/placement.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace wlsync::bench {

/// Default "hardware" constants used across experiments: 10 ms median
/// delay, 1 ms uncertainty, drift 1e-5; designer picks P = 10 s.
inline core::Params default_params(std::int32_t n, std::int32_t f,
                                   double P = 10.0) {
  return core::make_params(n, f, /*rho=*/1e-5, /*delta=*/0.01, /*eps=*/1e-3, P);
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline const char* fault_name(analysis::FaultKind kind) {
  switch (kind) {
    case analysis::FaultKind::kNone: return "none";
    case analysis::FaultKind::kSilent: return "silent";
    case analysis::FaultKind::kSpam: return "spam";
    case analysis::FaultKind::kTwoFaced: return "two-faced";
    case analysis::FaultKind::kLiar: return "liar";
  }
  return "?";
}

inline const char* drift_name(analysis::DriftKind kind) {
  switch (kind) {
    case analysis::DriftKind::kNone: return "none";
    case analysis::DriftKind::kExtremal: return "extremal";
    case analysis::DriftKind::kPiecewise: return "piecewise";
    case analysis::DriftKind::kRandomWalk: return "randomwalk";
  }
  return "?";
}

inline const char* delay_name(analysis::DelayKind kind) {
  switch (kind) {
    case analysis::DelayKind::kUniform: return "uniform";
    case analysis::DelayKind::kFast: return "all-fast";
    case analysis::DelayKind::kSlow: return "all-slow";
    case analysis::DelayKind::kPerLink: return "per-link";
    case analysis::DelayKind::kSplit: return "split";
    case analysis::DelayKind::kExpTrunc: return "exp-trunc";
  }
  return "?";
}

inline const char* algo_name(analysis::Algo algo) {
  switch (algo) {
    case analysis::Algo::kWelchLynch: return "Welch-Lynch";
    case analysis::Algo::kLM: return "LM-CNV";
    case analysis::Algo::kST: return "Srikanth-Toueg";
    case analysis::Algo::kMS: return "Mahaney-Schneider";
    case analysis::Algo::kPlainMean: return "plain-mean";
    case analysis::Algo::kHSSD: return "HSSD (signed)";
  }
  return "?";
}

/// Prints PASS/note column entries uniformly.
inline std::string verdict(bool ok) { return ok ? "yes" : "NO"; }

// ------------------------------------------------------ CSV grid axes ---
//
// The sweep drivers (bench_sweep, bench_gradient) share one flag
// vocabulary: comma-separated axis lists mapped through these tables.
// Adding an enum value means extending exactly one table here.

inline std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

inline std::vector<std::int64_t> split_ints(const std::string& value) {
  std::vector<std::int64_t> items;
  for (const std::string& item : split_list(value)) {
    items.push_back(std::stoll(item));
  }
  return items;
}

inline std::vector<double> split_doubles(const std::string& value) {
  std::vector<double> items;
  for (const std::string& item : split_list(value)) {
    items.push_back(std::stod(item));
  }
  return items;
}

template <typename T>
T parse_name(const std::string& name,
             const std::vector<std::pair<std::string, T>>& table,
             const char* axis) {
  for (const auto& [key, value] : table) {
    if (key == name) return value;
  }
  throw std::invalid_argument(std::string("unknown ") + axis + " '" + name + "'");
}

inline analysis::Algo parse_algo(const std::string& name) {
  return parse_name<analysis::Algo>(
      name,
      {{"wl", analysis::Algo::kWelchLynch},
       {"lm", analysis::Algo::kLM},
       {"st", analysis::Algo::kST},
       {"ms", analysis::Algo::kMS},
       {"mean", analysis::Algo::kPlainMean},
       {"hssd", analysis::Algo::kHSSD}},
      "algo");
}

inline analysis::DelayKind parse_delay(const std::string& name) {
  return parse_name<analysis::DelayKind>(
      name,
      {{"uniform", analysis::DelayKind::kUniform},
       {"fast", analysis::DelayKind::kFast},
       {"slow", analysis::DelayKind::kSlow},
       {"perlink", analysis::DelayKind::kPerLink},
       {"split", analysis::DelayKind::kSplit},
       {"exptrunc", analysis::DelayKind::kExpTrunc}},
      "delay");
}

inline analysis::DriftKind parse_drift(const std::string& name) {
  return parse_name<analysis::DriftKind>(
      name,
      {{"none", analysis::DriftKind::kNone},
       {"extremal", analysis::DriftKind::kExtremal},
       {"piecewise", analysis::DriftKind::kPiecewise},
       {"randomwalk", analysis::DriftKind::kRandomWalk}},
      "drift");
}

inline analysis::FaultKind parse_fault(const std::string& name) {
  return parse_name<analysis::FaultKind>(
      name,
      {{"none", analysis::FaultKind::kNone},
       {"silent", analysis::FaultKind::kSilent},
       {"spam", analysis::FaultKind::kSpam},
       {"twofaced", analysis::FaultKind::kTwoFaced},
       {"liar", analysis::FaultKind::kLiar}},
      "fault");
}

inline net::TopologyKind parse_topology(const std::string& name) {
  return parse_name<net::TopologyKind>(
      name,
      {{"mesh", net::TopologyKind::kFullMesh},
       {"cliques", net::TopologyKind::kRingOfCliques},
       {"kregular", net::TopologyKind::kKRegular}},
      "topology");
}

inline proc::IngestMode parse_ingest(const std::string& name) {
  return parse_name<proc::IngestMode>(
      name,
      {{"arena", proc::IngestMode::kArena},
       {"legacy", proc::IngestMode::kLegacy}},
      "ingest");
}

/// NIC axis values: "off" (no ingress model), "inf" (unbounded queue), or a
/// capacity in datagrams (> 0).  Returns the std::optional the RunSpec
/// wants; malformed tokens fail with the axis named, like parse_name.
inline std::optional<sim::NicConfig> parse_nic(const std::string& name,
                                               double service_time) {
  if (name == "off") return std::nullopt;
  sim::NicConfig config;
  config.service_time = service_time;
  if (name == "inf") {
    config.capacity = 0;  // NicConfig's "never overflows" encoding
    return config;
  }
  if (name.empty() || name.size() > 9 ||
      name.find_first_not_of("0123456789") != std::string::npos) {
    // The length cap keeps std::stoull from throwing out_of_range past
    // 64 bits; a 9-digit NIC queue is already physically absurd.
    throw std::invalid_argument("unknown nic '" + name +
                                "' (use off, inf, or a capacity > 0)");
  }
  config.capacity = static_cast<std::size_t>(std::stoull(name));
  if (config.capacity == 0) {
    // A literal 0 would silently mean unbounded (the NicConfig encoding);
    // make the sweep author say "inf" when that is what they want.
    throw std::invalid_argument("nic capacity must be > 0 (use inf for an "
                                "unbounded queue, off to disable)");
  }
  return config;
}

/// CSV echo of a NIC axis cell: "off", "inf", or the capacity.
inline std::string nic_name(const std::optional<sim::NicConfig>& nic) {
  if (!nic.has_value()) return "off";
  if (nic->capacity == 0) return "inf";
  return std::to_string(nic->capacity);
}

inline sim::NicDropPolicy parse_nic_drop(const std::string& name) {
  return parse_name<sim::NicDropPolicy>(
      name,
      {{"oldest", sim::NicDropPolicy::kDropOldest},
       {"newest", sim::NicDropPolicy::kDropNewest}},
      "nic-drop");
}

inline const char* nic_drop_name(sim::NicDropPolicy policy) {
  return policy == sim::NicDropPolicy::kDropOldest ? "oldest" : "newest";
}

/// The measurement-engine axis: "off" = post-hoc grids (the seed path),
/// "on" = streaming observation with retained history, "bounded" =
/// streaming observation with history truncated behind the observation
/// frontier (analysis/observe.h).  "on" and "bounded" are always
/// bit-identical to each other, and both match "off" bitwise for runs
/// that complete their configured rounds (every healthy cell).  A
/// degraded run that never completes round (rounds+1)/2 measures
/// observe-mode's own collapsed window instead of the post-hoc anchor —
/// ObserveStats::t_steady == t_end marks such rows.
struct ObserveMode {
  bool observe = false;
  bool retain = true;
};

inline ObserveMode parse_observe(const std::string& name) {
  if (name == "off") return {false, true};
  if (name == "on") return {true, true};
  if (name == "bounded") return {true, false};
  throw std::invalid_argument("unknown observe '" + name +
                              "' (use off, on, or bounded)");
}

inline const char* observe_name(const ObserveMode& mode) {
  if (!mode.observe) return "off";
  return mode.retain ? "on" : "bounded";
}

/// The execution-engine axis (core/fastpath.h, engine/pdes.h): "event" =
/// the event engine only (the measured reference), "fastpath" = require the
/// round fast path (the run aborts if the cell is ineligible — use it to
/// keep a sweep honest), "pdes" = require the sharded conservative engine
/// (pair with --workers; aborts on ineligible cells the same way), "auto" =
/// fast path where the spec qualifies, then PDES where the spec opted in
/// with workers >= 2.  All four are bit-identical at results_identical
/// strictness; the axis exists so the wall_s / rounds-per-sec columns can
/// show the speedup per cell.
inline analysis::EngineMode parse_engine(const std::string& name) {
  return parse_name<analysis::EngineMode>(
      name,
      {{"event", analysis::EngineMode::kEvent},
       {"fastpath", analysis::EngineMode::kFastpath},
       {"pdes", analysis::EngineMode::kPdes},
       {"auto", analysis::EngineMode::kAuto}},
      "engine");
}

inline const char* engine_name(analysis::EngineMode engine) {
  switch (engine) {
    case analysis::EngineMode::kEvent: return "event";
    case analysis::EngineMode::kFastpath: return "fastpath";
    case analysis::EngineMode::kPdes: return "pdes";
    case analysis::EngineMode::kAuto: return "auto";
  }
  return "?";
}

/// Column echo of a RunResult refusal reason (fastpath_refusal /
/// pdes_refusal): "-" when the engine ran or was never consulted, else the
/// reason with commas replaced by ';' so the string stays one CSV field.
inline std::string refusal_csv(const std::string& reason) {
  if (reason.empty()) return "-";
  std::string safe = reason;
  for (char& c : safe) {
    if (c == ',') c = ';';
  }
  return safe;
}

inline proc::PlacementKind parse_placement(const std::string& name) {
  return parse_name<proc::PlacementKind>(
      name,
      {{"trailing", proc::PlacementKind::kTrailing},
       {"random", proc::PlacementKind::kRandom},
       {"maxdeg", proc::PlacementKind::kMaxDegree},
       {"articulation", proc::PlacementKind::kArticulation},
       {"bridge", proc::PlacementKind::kBridge},
       {"antipodal", proc::PlacementKind::kAntipodal}},
      "placement");
}

/// Minimal extraction of the `"speedup": { "key": value, ... }` object from
/// a prior perf-trajectory artifact (BENCH_fastpath.json / BENCH_pdes.json).
/// Not a JSON parser — the artifacts are machine-written by the emit loops,
/// so quoted keys followed by a colon and a number inside the one speedup
/// object is the entire grammar.  Shared by bench_micro --fastpath-compare
/// and bench_sweep --pdes-compare.
inline bool parse_speedup_map(const std::string& path,
                              std::vector<std::pair<std::string, double>>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t at = text.find("\"speedup\"");
  if (at == std::string::npos) return false;
  const std::size_t open = text.find('{', at);
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return false;
  std::size_t cursor = open + 1;
  while (cursor < close) {
    const std::size_t k0 = text.find('"', cursor);
    if (k0 == std::string::npos || k0 > close) break;
    const std::size_t k1 = text.find('"', k0 + 1);
    const std::size_t colon = text.find(':', k1);
    if (k1 == std::string::npos || colon == std::string::npos ||
        colon > close) {
      return false;
    }
    out->emplace_back(text.substr(k0 + 1, k1 - k0 - 1),
                      std::stod(text.substr(colon + 1)));
    cursor = text.find(',', colon);
    if (cursor == std::string::npos || cursor > close) break;
    ++cursor;
  }
  return true;
}

/// Gates a fresh speedup map against a baseline artifact's: every shared
/// key must stay within `floor` of its baseline ratio.  Keys only one side
/// knows are skipped; zero shared keys is an error (return -1), not a
/// pass.  Returns 1 on pass, 0 on fail, printing one verdict row per
/// shared key on std::cout under `label`.
inline int gate_speedups(
    const std::string& label,
    const std::vector<std::pair<std::string, double>>& fresh,
    const std::vector<std::pair<std::string, double>>& baseline,
    double floor) {
  bool all_pass = true;
  int shared = 0;
  for (const auto& [key, fresh_ratio] : fresh) {
    for (const auto& [old_key, old_ratio] : baseline) {
      if (old_key != key) continue;
      ++shared;
      const bool pass = fresh_ratio >= floor * old_ratio;
      all_pass = all_pass && pass;
      std::cout << "  " << (pass ? "ok  " : "FAIL") << " " << key
                << " speedup " << fresh_ratio << " vs baseline " << old_ratio
                << " (floor " << floor * old_ratio << ")\n";
    }
  }
  if (shared == 0) {
    std::cerr << label << ": no shared speedup keys with the baseline\n";
    return -1;
  }
  std::cout << (all_pass ? label + ": PASS" : label + ": FAIL") << " ("
            << shared << " shared keys, floor " << floor << "x baseline)\n";
  return all_pass ? 1 : 0;
}

}  // namespace wlsync::bench
