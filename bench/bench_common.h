#pragma once
// Shared scaffolding for the experiment harness binaries.  Each binary
// regenerates one of the paper's quantitative claims (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured records).

#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "core/params.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace wlsync::bench {

/// Default "hardware" constants used across experiments: 10 ms median
/// delay, 1 ms uncertainty, drift 1e-5; designer picks P = 10 s.
inline core::Params default_params(std::int32_t n, std::int32_t f,
                                   double P = 10.0) {
  return core::make_params(n, f, /*rho=*/1e-5, /*delta=*/0.01, /*eps=*/1e-3, P);
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline const char* fault_name(analysis::FaultKind kind) {
  switch (kind) {
    case analysis::FaultKind::kNone: return "none";
    case analysis::FaultKind::kSilent: return "silent";
    case analysis::FaultKind::kSpam: return "spam";
    case analysis::FaultKind::kTwoFaced: return "two-faced";
    case analysis::FaultKind::kLiar: return "liar";
  }
  return "?";
}

inline const char* drift_name(analysis::DriftKind kind) {
  switch (kind) {
    case analysis::DriftKind::kNone: return "none";
    case analysis::DriftKind::kExtremal: return "extremal";
    case analysis::DriftKind::kPiecewise: return "piecewise";
    case analysis::DriftKind::kRandomWalk: return "randomwalk";
  }
  return "?";
}

inline const char* delay_name(analysis::DelayKind kind) {
  switch (kind) {
    case analysis::DelayKind::kUniform: return "uniform";
    case analysis::DelayKind::kFast: return "all-fast";
    case analysis::DelayKind::kSlow: return "all-slow";
    case analysis::DelayKind::kPerLink: return "per-link";
    case analysis::DelayKind::kSplit: return "split";
  }
  return "?";
}

inline const char* algo_name(analysis::Algo algo) {
  switch (algo) {
    case analysis::Algo::kWelchLynch: return "Welch-Lynch";
    case analysis::Algo::kLM: return "LM-CNV";
    case analysis::Algo::kST: return "Srikanth-Toueg";
    case analysis::Algo::kMS: return "Mahaney-Schneider";
    case analysis::Algo::kPlainMean: return "plain-mean";
    case analysis::Algo::kHSSD: return "HSSD (signed)";
  }
  return "?";
}

/// Prints PASS/note column entries uniformly.
inline std::string verdict(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace wlsync::bench
