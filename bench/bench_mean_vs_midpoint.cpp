// EXP-MEAN — Section 7: replacing the midpoint by the mean of the reduced
// multiset gives worst-case convergence rate ~ f/(n-2f) and a steady error
// approaching ~2 eps when n >> f.  Reports (a) the exact multiset-level
// worst-case steering gap for both functions, and (b) system-level
// one-round contraction and steady skew as n grows at fixed f.

#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "multiset/multiset_ops.h"
#include "util/rng.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto trials = static_cast<std::int32_t>(flags.get_int("trials", 400));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));

  bench::print_header(
      "EXP-MEAN (Section 7)",
      "(a) multiset level: worst adversarial steering gap between two "
      "processes' averages, as a fraction of the honest spread (midpoint "
      "bound: 1/2; mean bound: f/(n-2f));\n(b) system level: steady skew "
      "under the splitter for both averaging functions as n grows, f = 2.");

  // --- (a) multiset-level worst-case steering ---------------------------
  util::Table msets({"n", "f", "mid gap (worst)", "mid bound", "mean gap "
                     "(worst)", "mean bound f/(n-2f)"});
  for (auto [n, f] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 1}, {7, 2}, {10, 3}, {16, 2}, {16, 5}, {25, 2}}) {
    util::Rng rng(99);
    double worst_mid = 0.0;
    double worst_mean = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      // Honest values with spread 1; each process sees them exactly (x = 0)
      // plus f adversarial values anywhere inside the honest range.
      ms::Multiset honest;
      honest.push_back(0.0);
      honest.push_back(1.0);
      for (std::size_t i = 2; i + f < n; ++i) {
        honest.push_back(rng.uniform());
      }
      ms::Multiset u(honest), v(honest);
      for (std::size_t i = 0; i < f; ++i) {
        u.push_back(rng.uniform());  // face shown to process "u"
        v.push_back(rng.uniform());  // face shown to process "v"
      }
      worst_mid = std::max(worst_mid,
                           std::abs(ms::fault_tolerant_midpoint(u, f) -
                                    ms::fault_tolerant_midpoint(v, f)));
      worst_mean = std::max(worst_mean,
                            std::abs(ms::fault_tolerant_mean(u, f) -
                                     ms::fault_tolerant_mean(v, f)));
    }
    msets.add_row({std::to_string(n), std::to_string(f),
                   util::fmt(worst_mid, 3), "0.5", util::fmt(worst_mean, 3),
                   util::fmt(static_cast<double>(f) /
                                 static_cast<double>(n - 2 * f),
                             3)});
  }
  msets.print(std::cout);

  // --- (b) system level --------------------------------------------------
  std::cout << "\n";
  util::Table system({"n", "averaging", "round-1 contraction",
                      "steady skew", "within gamma"});
  bool ok = true;
  // Row labels ride along with the specs so they cannot drift from the
  // trial order.
  std::vector<std::pair<std::int32_t, core::Averaging>> cells;
  std::vector<analysis::RunSpec> specs;
  for (std::int32_t n : {7, 10, 16}) {
    for (auto averaging :
         {core::Averaging::kMidpoint, core::Averaging::kReducedMean}) {
      core::Params p;
      p.n = n;
      p.f = 2;
      p.rho = 1e-5;
      p.delta = 0.01;
      p.eps = 1e-3;
      p.P = 10.0;
      p.beta =
          core::beta_for_round_length(p.P, p.rho, p.delta, p.eps) * 1.05;
      analysis::RunSpec spec;
      spec.params = p;
      spec.averaging = averaging;
      spec.fault = analysis::FaultKind::kTwoFaced;
      spec.fault_count = 2;
      spec.initial_spread = 0.9 * p.beta;
      spec.rounds = 14;
      spec.seed = 31;
      specs.push_back(spec);
      cells.emplace_back(n, averaging);
    }
  }
  const std::vector<analysis::RunResult> results =
      analysis::run_experiments(specs, threads);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto [n, averaging] = cells[i];
    const analysis::RunResult& result = results[i];
    const double contraction =
        result.begin_spread.size() > 1 && result.begin_spread[0] > 0
            ? result.begin_spread[1] / result.begin_spread[0]
            : 1.0;
    const bool within =
        result.gamma_measured <= result.gamma_bound * (1 + 1e-9);
    ok = ok && within;
    system.add_row(
        {std::to_string(n),
         averaging == core::Averaging::kMidpoint ? "midpoint" : "mean",
         util::fmt(contraction, 3), util::fmt(result.gamma_measured),
         bench::verdict(within)});
  }
  system.print(std::cout);
  std::cout << "\nboth averaging functions hold gamma at every n: "
            << bench::verdict(ok) << "\n";
  return ok ? 0 : 1;
}
