// EXP-SWEEP — the one sweep driver (ROADMAP: "grid n x f x delay x drift
// without editing mains").
//
// Builds the cross product of comma-separated axis lists, runs every cell
// times every seed through the work-stealing ParallelRunner, and streams
// one CSV row per trial the moment it completes (rows carry their spec
// index; completion order is nondeterministic, sort by the first column for
// a stable view).  Example:
//
//   bench_sweep --n=8,16,32 --delay=uniform,slow --drift=extremal
//               --algo=wl,st --trials=20 --rounds=12 --out=grid.csv
//
// Axis values:
//   --algo      wl, lm, st, ms, mean, hssd
//   --delay     uniform, fast, slow, perlink, split
//   --drift     none, extremal, piecewise, randomwalk
//   --fault     none, silent, spam, twofaced, liar   (with --faults=count;
//               count < 0 means f, the tolerated maximum)
//   --topology  mesh, cliques, kregular   (--degree, --clique as needed)
//   --placement trailing, random, maxdeg, articulation, bridge, antipodal —
//               which topology positions the faulty roster occupies
//               (proc/placement.h; non-trailing switches the two-faced
//               attack to its neighbor-scoped per-victim mode).  Echoed in
//               the `placement` CSV column so rows are self-describing.
//   --churn     process-churn axis (net/dynamics.h): comma list of churned
//               process counts; 0 = the historical static membership.  A
//               count c > 0 installs a deterministic churn wave — processes
//               0 .. c-1 leave at 2P staggered by P/2 and rejoin 3P later
//               through core/reintegration — so every cell's schedule is a
//               pure function of (c, P), reproducible row for row.  Churn
//               requires the Welch-Lynch round structure and the event
//               engine (the fast path and PDES refuse dynamic schedules by
//               name), so churn > 0 cells with --algo != wl or
//               --engine=fastpath/pdes are skipped with a note.  Echoed in
//               the `churn` CSV column.
//   --f         explicit list, or auto = (n-1)/3 per cell
//   --nic       Section 9.3 ingress-queue axis: off, inf (unbounded), or a
//               capacity in datagrams (--nic-service seconds per datagram).
//               Fills the nic_* overflow columns; "off" rows stay zero.
//   --nic-drop  drop policy axis when the queue overflows: oldest (the
//               paper's "old ones are overwritten"), newest (tail drop).
//               Irrelevant (but echoed) on nic=off/inf rows — sweep it
//               only together with a finite capacity.
//   --stagger   Section 9.3 staggered-broadcast axis (seconds between
//               successive senders' broadcasts; Welch-Lynch only).  The
//               stagger x capacity x n grid maps the drop-free frontier.
//   --ingest    arena (dense neighbor-slot ARR arena), legacy (the seed's
//               id-indexed path) — results are bit-identical, only wall_s
//               moves; the axis exists for perf A/Bs
//   --engine    execution-engine axis (core/fastpath.h, engine/pdes.h):
//               event (the event engine, the measured reference), fastpath
//               (require the round fast path; aborts on ineligible cells),
//               pdes (require the sharded conservative engine; pair with
//               --workers), auto (fast path where the cell qualifies, then
//               PDES where the cell opted in with workers >= 2).
//               Bit-identical like --ingest; the wall_s / rounds_per_sec
//               columns show the speedup per cell, the fastpath column
//               records whether the fast path engaged, the
//               fastpath_refusal / pdes_refusal columns say why an engine
//               was declined ("-" when it ran or was never consulted;
//               commas become ';' so reasons stay one field), and
//               pdes_epochs / pdes_stalls record the conservative
//               protocol's windows and empty windows per trial.
//   --workers   PDES shard/worker-count axis (comma list; 0 = serial, the
//               default).  Crossed with --engine=pdes it maps wall-clock
//               vs shard count; under --engine=auto a nonzero value is the
//               opt-in that lets cells the fast path refuses shard.
//   --observe   measurement-engine axis: off (post-hoc grids), on
//               (streaming in-run observation), bounded (streaming +
//               history truncation; analysis/observe.h).  on == bounded
//               always; both == off bitwise on cells that complete their
//               rounds (degraded cells measure observe-mode's collapsed
//               window — see bench_common.h).  wall_s and hist_peak_mb
//               move.
//   --P         round length; --trials seeds per cell from --seed0
//   --gradient  also measure skew-vs-distance (analysis/gradient.h); fills
//               the gradient_slope / gradient_diameter / gradient_far_skew
//               columns (blank-zero when off)
//   --balance   adaptive (default: cost-aware chunks + telemetry-guided
//               stealing, ParallelRunner::run_adaptive) or fixed (equal
//               chunks).  Scheduling only; rows are bit-identical.
//   --smoke     tiny fixed grid for CI driver smoke tests
//
// --pdes-json=PATH bypasses the grid entirely and emits the PDES
// perf-trajectory artifact (BENCH_pdes.json, the engine/pdes.h acceptance
// workload): the deg-16 k-regular expander per (n, workers) cell, serial
// event engine as the measured reference, with per-cell epochs/stalls and
// per-n speedups.  Each cell is timed --reps times (default 3) and the
// BEST wall clock is reported: a single sample is at the mercy of the host
// scheduler — the ISSUE 8 audit of an apparently nonmonotonic n=2048 cell
// (w=4 slower than w=2) found it unreproducible across reruns (w=4 beat
// w=2 in 4/4 repetitions; epochs/stalls, which ARE deterministic, were
// unchanged), i.e. pure single-sample noise, not a partition or stall
// pathology.  Timing rows are telemetry, not gates (bit-identity is gated
// by ctest's pdes_test; the deterministic stall-rate ceiling by
// bench_micro --smoke).
//
// Every row also carries wall_s, the trial's wall-clock seconds as measured
// inside run_experiment (per-trial telemetry from the streaming runner),
// and hist_peak_mb, the peak retained clock/CORR history on observe rows.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "net/topology.h"
#include "proc/placement.h"

namespace wlsync {
namespace {

using bench::parse_algo;
using bench::parse_delay;
using bench::parse_drift;
using bench::parse_fault;
using bench::parse_placement;
using bench::parse_topology;
using bench::split_ints;
using bench::split_list;

void write_csv_header(std::ostream& out) {
  out << "spec,n,f,algo,delay,drift,fault,faults,topology,placement,churn,"
         "ingest,"
         "engine,workers,"
         "nic,nic_drop,stagger,observe,rounds,seed,completed_rounds,messages,"
         "gamma_bound,"
         "gamma_measured,adj_bound,max_abs_adj,final_skew,validity_holds,"
         "diverged,gradient_slope,gradient_diameter,gradient_far_skew,"
         "nic_dropped,nic_drop_rate,nic_peak_queue,nic_max_burst,"
         "hist_peak_mb,fastpath,fastpath_refusal,pdes_epochs,pdes_stalls,"
         "pdes_refusal,wall_s,rounds_per_sec\n";
}

// --pdes-json: the PDES perf-trajectory artifact (BENCH_pdes.json).  The
// sparse deg-16 expander is the workload the sharded engine targets (the
// full mesh cuts O(n^2) edges; an expander cuts O(degree * n / k)); the
// serial event engine is the measured reference at every n.  Wall-clock
// numbers are informational on shared runners — the interesting trajectory
// on a single-core host is the queue-depth win (k shallow heaps vs one
// deep one), which multiplies with real cores.
int run_pdes_json(const util::Flags& flags) {
  const std::string out_path =
      flags.get_string("pdes-json", "BENCH_pdes.json");
  const auto max_n = static_cast<std::int32_t>(flags.get_int("max-n", 2048));
  const auto reps =
      static_cast<std::int32_t>(std::max<std::int64_t>(flags.get_int("reps", 3), 1));

  struct Cell {
    std::int32_t n;
    std::int32_t workers;  // 0 = serial event engine
    std::int32_t rounds;
    std::int64_t epochs;
    std::int64_t stalls;
    double wall_s;
  };
  std::vector<Cell> cells;
  for (std::int32_t n = 512; n <= max_n; n *= 2) {
    const std::int32_t rounds = n >= 2048 ? 6 : 10;
    for (const std::int32_t workers : {0, 2, 4, 8}) {
      analysis::RunSpec spec;
      spec.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
      spec.rounds = rounds;
      spec.seed = 9;
      spec.topology.kind = net::TopologyKind::kKRegular;
      spec.topology.degree = 16;
      spec.engine = workers == 0 ? analysis::EngineMode::kEvent
                                 : analysis::EngineMode::kPdes;
      spec.pdes_workers = workers;
      // Best of --reps: the run itself is deterministic (epochs/stalls are
      // identical every repetition), so the repetitions only filter host
      // scheduler noise out of the wall clock.
      analysis::RunResult result;
      double wall = 0.0;
      for (std::int32_t rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        result = analysis::run_experiment(spec);
        const double sample =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (rep == 0 || sample < wall) wall = sample;
      }
      cells.push_back({n, workers, result.completed_rounds, result.pdes_epochs,
                       result.pdes_stalls, wall});
      std::cerr << "  n=" << n << " workers=" << workers << " "
                << result.completed_rounds << " rounds in " << wall
                << " s (best of " << reps << ")\n";
    }
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "bench_sweep: cannot open --pdes-json=" << out_path << "\n";
    return 1;
  }
  const auto rate = [](const Cell& c) {
    return c.wall_s > 0.0 ? static_cast<double>(c.rounds) / c.wall_s : 0.0;
  };
  json << "{\n  \"workload\": \"k-regular/16 expander, P=10, seed 9, best of "
       << reps << " reps\",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"n\": " << c.n << ", \"engine\": \""
         << (c.workers == 0 ? "event" : "pdes")
         << "\", \"workers\": " << c.workers << ", \"rounds\": " << c.rounds
         << ", \"pdes_epochs\": " << c.epochs
         << ", \"pdes_stalls\": " << c.stalls << ", \"wall_s\": " << c.wall_s
         << ", \"rounds_per_sec\": " << rate(c)
         << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup\": {";
  bool first = true;
  double event_rate = 0.0;
  for (const Cell& c : cells) {
    if (c.workers == 0) {
      event_rate = rate(c);
      continue;
    }
    if (event_rate <= 0.0) continue;
    json << (first ? "" : ", ") << "\"n" << c.n << "_w" << c.workers
         << "\": " << rate(c) / event_rate;
    first = false;
  }
  json << "}\n}\n";
  std::cout << "bench_sweep --pdes-json: wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  using namespace wlsync;
  const util::Flags flags(argc, argv);
  if (!flags.get_string("pdes-json", "").empty()) {
    return run_pdes_json(flags);
  }
  const bool smoke = flags.get_bool("smoke", false);

  const std::vector<std::int64_t> ns =
      split_ints(flags.get_string("n", smoke ? "16" : "7"));
  const std::string f_flag = flags.get_string("f", "auto");
  const std::vector<std::string> algos =
      split_list(flags.get_string("algo", "wl"));
  const std::vector<std::string> delays =
      split_list(flags.get_string("delay", "uniform"));
  const std::vector<std::string> drifts =
      split_list(flags.get_string("drift", "extremal"));
  const std::vector<std::string> faults =
      split_list(flags.get_string("fault", smoke ? "none,twofaced" : "none"));
  const std::vector<std::string> topologies =
      split_list(flags.get_string("topology", smoke ? "mesh,cliques" : "mesh"));
  const std::vector<std::string> placements =
      split_list(flags.get_string("placement", "trailing"));
  const std::vector<std::int64_t> churns =
      split_ints(flags.get_string("churn", "0"));
  const std::vector<std::string> nics =
      split_list(flags.get_string("nic", smoke ? "off,8" : "off"));
  const double nic_service = flags.get_double("nic-service", 50e-6);
  const std::vector<std::string> nic_drops =
      split_list(flags.get_string("nic-drop", "oldest"));
  const std::vector<double> staggers =
      bench::split_doubles(flags.get_string("stagger", "0"));
  const std::vector<std::string> ingests =
      split_list(flags.get_string("ingest", "arena"));
  const std::vector<std::string> engines =
      split_list(flags.get_string("engine", smoke ? "event,auto" : "auto"));
  const std::vector<std::int64_t> workers_axis =
      split_ints(flags.get_string("workers", "0"));
  const std::vector<std::string> observes =
      split_list(flags.get_string("observe", smoke ? "off,bounded" : "off"));
  const bool adaptive =
      flags.get_string("balance", "adaptive") != "fixed";
  const bool gradient = flags.get_bool("gradient", smoke);
  const auto fault_count = flags.get_int("faults", -1);
  const auto trials =
      static_cast<std::int32_t>(flags.get_int("trials", smoke ? 2 : 5));
  const auto rounds =
      static_cast<std::int32_t>(flags.get_int("rounds", smoke ? 4 : 12));
  const double P = flags.get_double("P", 10.0);
  const auto seed0 = static_cast<std::uint64_t>(flags.get_int("seed0", 1));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));
  const std::string out_path = flags.get_string("out", "");

  // ------------------------------------------------------------- grid ---
  std::vector<analysis::RunSpec> specs;
  for (const std::int64_t n : ns) {
    const std::vector<std::int64_t> fs =
        f_flag == "auto" ? std::vector<std::int64_t>{(n - 1) / 3}
                         : split_ints(f_flag);
    for (const std::int64_t f : fs) {
      for (const std::string& algo : algos) {
        for (const std::string& delay : delays) {
          for (const std::string& drift : drifts) {
            for (const std::string& fault : faults) {
              for (const std::string& topology : topologies) {
                for (const std::string& placement : placements) {
                 for (const std::int64_t churn : churns) {
                 for (const std::string& nic : nics) {
                  for (const std::string& nic_drop : nic_drops) {
                  for (const double stagger : staggers) {
                  for (const std::string& observe : observes) {
                  for (const std::string& ingest : ingests) {
                  for (const std::string& engine : engines) {
                  for (const std::int64_t workers : workers_axis) {
                  analysis::RunSpec base;
                  base.params = core::make_params(
                      static_cast<std::int32_t>(n), static_cast<std::int32_t>(f),
                      1e-5, 0.01, 1e-3, P);
                  base.algo = parse_algo(algo);
                  base.delay = parse_delay(delay);
                  base.drift = parse_drift(drift);
                  base.fault = parse_fault(fault);
                  base.fault_count =
                      base.fault == analysis::FaultKind::kNone
                          ? 0
                          : static_cast<std::int32_t>(
                                fault_count < 0 ? f : fault_count);
                  base.topology.kind = parse_topology(topology);
                  base.topology.degree =
                      static_cast<std::int32_t>(flags.get_int("degree", 8));
                  base.topology.clique_size =
                      static_cast<std::int32_t>(flags.get_int("clique", 8));
                  base.placement = parse_placement(placement);
                  base.nic = bench::parse_nic(nic, nic_service);
                  if (base.nic.has_value()) {
                    base.nic->drop = bench::parse_nic_drop(nic_drop);
                  }
                  base.stagger = stagger;
                  const bench::ObserveMode omode = bench::parse_observe(observe);
                  base.observe = omode.observe;
                  base.retain_history = omode.retain;
                  base.ingest = bench::parse_ingest(ingest);
                  base.engine = bench::parse_engine(engine);
                  base.pdes_workers = static_cast<std::int32_t>(
                      base.engine == analysis::EngineMode::kPdes
                          ? std::max<std::int64_t>(workers, 1)
                          : workers);
                  base.measure_gradient = gradient;
                  base.rounds = rounds;
                  if (churn > 0) {
                    // Deterministic wave: ids 0..c-1 leave at 2P staggered
                    // by P/2, rejoin 3P later (>= the 2P reintegration
                    // minimum).  Trailing fault placement keeps the
                    // Byzantine roster disjoint from the churned ids.
                    if (base.algo != analysis::Algo::kWelchLynch ||
                        base.engine == analysis::EngineMode::kFastpath ||
                        base.engine == analysis::EngineMode::kPdes ||
                        base.placement != proc::PlacementKind::kTrailing ||
                        !base.placement_ids.empty()) {
                      std::cerr << "bench_sweep: skipping churn=" << churn
                                << " cell (" << algo << "/" << engine << "/"
                                << placement
                                << "): churn needs wl + event-capable engine"
                                   " + trailing placement\n";
                      continue;
                    }
                    base.dynamics.churn_wave(2.0 * P,
                                             /*first=*/0,
                                             static_cast<std::int32_t>(churn),
                                             /*downtime=*/3.0 * P,
                                             /*stagger=*/0.5 * P);
                  }
                  const std::vector<analysis::RunSpec> seeded =
                      analysis::seed_sweep(base, seed0, trials);
                  specs.insert(specs.end(), seeded.begin(), seeded.end());
                  }
                  }
                  }
                  }
                  }
                  }
                 }
                 }
                }
              }
            }
          }
        }
      }
    }
  }

  // ----------------------------------------------------------- stream ---
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "bench_sweep: cannot open --out=" << out_path << "\n";
      return 1;
    }
  }
  std::ostream& csv = out_path.empty() ? std::cout : file;
  write_csv_header(csv);

  std::size_t done = 0;
  const analysis::ParallelRunner runner(threads);
  std::cerr << "bench_sweep: " << specs.size() << " trials on "
            << runner.threads() << " threads ("
            << (adaptive ? "adaptive" : "fixed") << " chunks)\n";
  const auto write_row = [&](std::size_t i, const analysis::RunResult& r) {
    const analysis::RunSpec& s = specs[i];
    const bench::ObserveMode omode{s.observe, s.retain_history};
    csv << i << ',' << s.params.n << ',' << s.params.f << ','
        << bench::algo_name(s.algo) << ',' << bench::delay_name(s.delay)
        << ',' << bench::drift_name(s.drift) << ','
        << bench::fault_name(s.fault) << ',' << s.fault_count << ','
        << net::topology_name(s.topology.kind) << ','
        << proc::placement_name(s.placement) << ','
        << net::churn_intervals(s.dynamics).size() << ','
        << proc::ingest_name(s.ingest) << ','
        << bench::engine_name(s.engine) << ',' << s.pdes_workers << ','
        << bench::nic_name(s.nic) << ','
        << (s.nic.has_value() ? bench::nic_drop_name(s.nic->drop) : "-") << ','
        << s.stagger << ',' << bench::observe_name(omode) << ','
        << s.rounds << ','
        << s.seed << ',' << r.completed_rounds << ',' << r.messages << ','
        << r.gamma_bound << ',' << r.gamma_measured << ',' << r.adj_bound
        << ',' << r.max_abs_adj << ',' << r.final_skew << ','
        << (r.validity.holds ? 1 : 0) << ',' << (r.diverged ? 1 : 0) << ','
        << r.gradient.slope << ',' << r.gradient.diameter << ','
        << r.gradient.far_skew() << ',' << r.nic.dropped << ','
        << r.nic.drop_rate() << ',' << r.nic.peak_queue << ','
        << r.nic.max_burst << ','
        << static_cast<double>(r.observe.peak_history_bytes) / (1024.0 * 1024.0)
        << ',' << (r.fastpath_engaged ? 1 : 0) << ','
        << bench::refusal_csv(r.fastpath_refusal) << ',' << r.pdes_epochs
        << ',' << r.pdes_stalls << ','
        << bench::refusal_csv(r.pdes_refusal) << ',' << r.wall_seconds << ','
        << (r.wall_seconds > 0.0 ? r.completed_rounds / r.wall_seconds : 0.0)
        << '\n';
    if (++done % 50 == 0) {
      std::cerr << "  " << done << "/" << specs.size() << " trials\n";
    }
  };
  if (adaptive) {
    (void)runner.run_adaptive(specs, write_row);
  } else {
    (void)runner.run_streaming(specs, write_row);
  }
  csv.flush();
  std::cerr << "bench_sweep: done (" << done << " trials)\n";
  return 0;
}
