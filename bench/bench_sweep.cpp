// EXP-SWEEP — the one sweep driver (ROADMAP: "grid n x f x delay x drift
// without editing mains").
//
// Builds the cross product of comma-separated axis lists, runs every cell
// times every seed through the work-stealing ParallelRunner, and streams
// one CSV row per trial the moment it completes (rows carry their spec
// index; completion order is nondeterministic, sort by the first column for
// a stable view).  Example:
//
//   bench_sweep --n=8,16,32 --delay=uniform,slow --drift=extremal
//               --algo=wl,st --trials=20 --rounds=12 --out=grid.csv
//
// Axis values:
//   --algo      wl, lm, st, ms, mean, hssd
//   --delay     uniform, fast, slow, perlink, split
//   --drift     none, extremal, piecewise, randomwalk
//   --fault     none, silent, spam, twofaced, liar   (with --faults=count;
//               count < 0 means f, the tolerated maximum)
//   --topology  mesh, cliques, kregular   (--degree, --clique as needed)
//   --f         explicit list, or auto = (n-1)/3 per cell
//   --P         round length; --trials seeds per cell from --seed0

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "net/topology.h"

namespace wlsync {
namespace {

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<std::int64_t> split_ints(const std::string& value) {
  std::vector<std::int64_t> items;
  for (const std::string& item : split_list(value)) {
    items.push_back(std::stoll(item));
  }
  return items;
}

template <typename T>
T parse_name(const std::string& name,
             const std::vector<std::pair<std::string, T>>& table,
             const char* axis) {
  for (const auto& [key, value] : table) {
    if (key == name) return value;
  }
  throw std::invalid_argument(std::string("bench_sweep: unknown ") + axis +
                              " '" + name + "'");
}

analysis::Algo parse_algo(const std::string& name) {
  return parse_name<analysis::Algo>(
      name,
      {{"wl", analysis::Algo::kWelchLynch},
       {"lm", analysis::Algo::kLM},
       {"st", analysis::Algo::kST},
       {"ms", analysis::Algo::kMS},
       {"mean", analysis::Algo::kPlainMean},
       {"hssd", analysis::Algo::kHSSD}},
      "algo");
}

analysis::DelayKind parse_delay(const std::string& name) {
  return parse_name<analysis::DelayKind>(
      name,
      {{"uniform", analysis::DelayKind::kUniform},
       {"fast", analysis::DelayKind::kFast},
       {"slow", analysis::DelayKind::kSlow},
       {"perlink", analysis::DelayKind::kPerLink},
       {"split", analysis::DelayKind::kSplit}},
      "delay");
}

analysis::DriftKind parse_drift(const std::string& name) {
  return parse_name<analysis::DriftKind>(
      name,
      {{"none", analysis::DriftKind::kNone},
       {"extremal", analysis::DriftKind::kExtremal},
       {"piecewise", analysis::DriftKind::kPiecewise},
       {"randomwalk", analysis::DriftKind::kRandomWalk}},
      "drift");
}

analysis::FaultKind parse_fault(const std::string& name) {
  return parse_name<analysis::FaultKind>(
      name,
      {{"none", analysis::FaultKind::kNone},
       {"silent", analysis::FaultKind::kSilent},
       {"spam", analysis::FaultKind::kSpam},
       {"twofaced", analysis::FaultKind::kTwoFaced},
       {"liar", analysis::FaultKind::kLiar}},
      "fault");
}

net::TopologyKind parse_topology(const std::string& name) {
  return parse_name<net::TopologyKind>(
      name,
      {{"mesh", net::TopologyKind::kFullMesh},
       {"cliques", net::TopologyKind::kRingOfCliques},
       {"kregular", net::TopologyKind::kKRegular}},
      "topology");
}

const char* topology_label(net::TopologyKind kind) {
  return net::topology_name(kind);
}

void write_csv_header(std::ostream& out) {
  out << "spec,n,f,algo,delay,drift,fault,faults,topology,rounds,seed,"
         "completed_rounds,messages,gamma_bound,gamma_measured,adj_bound,"
         "max_abs_adj,final_skew,validity_holds,diverged\n";
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  using namespace wlsync;
  const util::Flags flags(argc, argv);

  const std::vector<std::int64_t> ns = split_ints(flags.get_string("n", "7"));
  const std::string f_flag = flags.get_string("f", "auto");
  const std::vector<std::string> algos =
      split_list(flags.get_string("algo", "wl"));
  const std::vector<std::string> delays =
      split_list(flags.get_string("delay", "uniform"));
  const std::vector<std::string> drifts =
      split_list(flags.get_string("drift", "extremal"));
  const std::vector<std::string> faults =
      split_list(flags.get_string("fault", "none"));
  const std::vector<std::string> topologies =
      split_list(flags.get_string("topology", "mesh"));
  const auto fault_count = flags.get_int("faults", -1);
  const auto trials = static_cast<std::int32_t>(flags.get_int("trials", 5));
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 12));
  const double P = flags.get_double("P", 10.0);
  const auto seed0 = static_cast<std::uint64_t>(flags.get_int("seed0", 1));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));
  const std::string out_path = flags.get_string("out", "");

  // ------------------------------------------------------------- grid ---
  std::vector<analysis::RunSpec> specs;
  for (const std::int64_t n : ns) {
    const std::vector<std::int64_t> fs =
        f_flag == "auto" ? std::vector<std::int64_t>{(n - 1) / 3}
                         : split_ints(f_flag);
    for (const std::int64_t f : fs) {
      for (const std::string& algo : algos) {
        for (const std::string& delay : delays) {
          for (const std::string& drift : drifts) {
            for (const std::string& fault : faults) {
              for (const std::string& topology : topologies) {
                analysis::RunSpec base;
                base.params = core::make_params(
                    static_cast<std::int32_t>(n), static_cast<std::int32_t>(f),
                    1e-5, 0.01, 1e-3, P);
                base.algo = parse_algo(algo);
                base.delay = parse_delay(delay);
                base.drift = parse_drift(drift);
                base.fault = parse_fault(fault);
                base.fault_count =
                    base.fault == analysis::FaultKind::kNone
                        ? 0
                        : static_cast<std::int32_t>(
                              fault_count < 0 ? f : fault_count);
                base.topology.kind = parse_topology(topology);
                base.topology.degree =
                    static_cast<std::int32_t>(flags.get_int("degree", 8));
                base.topology.clique_size =
                    static_cast<std::int32_t>(flags.get_int("clique", 8));
                base.rounds = rounds;
                const std::vector<analysis::RunSpec> seeded =
                    analysis::seed_sweep(base, seed0, trials);
                specs.insert(specs.end(), seeded.begin(), seeded.end());
              }
            }
          }
        }
      }
    }
  }

  // ----------------------------------------------------------- stream ---
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "bench_sweep: cannot open --out=" << out_path << "\n";
      return 1;
    }
  }
  std::ostream& csv = out_path.empty() ? std::cout : file;
  write_csv_header(csv);

  std::size_t done = 0;
  const analysis::ParallelRunner runner(threads);
  std::cerr << "bench_sweep: " << specs.size() << " trials on "
            << runner.threads() << " threads\n";
  (void)runner.run_streaming(
      specs, [&](std::size_t i, const analysis::RunResult& r) {
        const analysis::RunSpec& s = specs[i];
        csv << i << ',' << s.params.n << ',' << s.params.f << ','
            << bench::algo_name(s.algo) << ',' << bench::delay_name(s.delay)
            << ',' << bench::drift_name(s.drift) << ','
            << bench::fault_name(s.fault) << ',' << s.fault_count << ','
            << topology_label(s.topology.kind) << ',' << s.rounds << ','
            << s.seed << ',' << r.completed_rounds << ',' << r.messages << ','
            << r.gamma_bound << ',' << r.gamma_measured << ',' << r.adj_bound
            << ',' << r.max_abs_adj << ',' << r.final_skew << ','
            << (r.validity.holds ? 1 : 0) << ',' << (r.diverged ? 1 : 0)
            << '\n';
        if (++done % 50 == 0) {
          std::cerr << "  " << done << "/" << specs.size() << " trials\n";
        }
      });
  csv.flush();
  std::cerr << "bench_sweep: done (" << done << " trials)\n";
  return 0;
}
