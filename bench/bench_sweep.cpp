// EXP-SWEEP — the one sweep driver (ROADMAP: "grid n x f x delay x drift
// without editing mains").
//
// Builds the cross product of comma-separated axis lists, runs every cell
// times every seed through the work-stealing ParallelRunner, and streams
// one CSV row per trial the moment it completes (rows carry their spec
// index; completion order is nondeterministic, sort by the first column for
// a stable view).  Example:
//
//   bench_sweep --n=8,16,32 --delay=uniform,slow --drift=extremal
//               --algo=wl,st --trials=20 --rounds=12 --out=grid.csv
//
// Axis values:
//   --algo      wl, lm, st, ms, mean, hssd
//   --delay     uniform, fast, slow, perlink, split
//   --drift     none, extremal, piecewise, randomwalk
//   --fault     none, silent, spam, twofaced, liar   (with --faults=count;
//               count < 0 means f, the tolerated maximum)
//   --topology  mesh, cliques, kregular   (--degree, --clique as needed)
//   --placement trailing, random, maxdeg, articulation, bridge, antipodal —
//               which topology positions the faulty roster occupies
//               (proc/placement.h; non-trailing switches the two-faced
//               attack to its neighbor-scoped per-victim mode).  Echoed in
//               the `placement` CSV column so rows are self-describing.
//   --churn     process-churn axis (net/dynamics.h): comma list of churned
//               process counts; 0 = the historical static membership.  A
//               count c > 0 installs a deterministic churn wave — processes
//               0 .. c-1 leave at 2P staggered by P/2 and rejoin 3P later
//               through core/reintegration — so every cell's schedule is a
//               pure function of (c, P), reproducible row for row.  Churn
//               requires the Welch-Lynch round structure and the event
//               engine (the fast path and PDES refuse dynamic schedules by
//               name), so churn > 0 cells with --algo != wl or
//               --engine=fastpath/pdes are skipped with a note.  Echoed in
//               the `churn` CSV column.
//   --f         explicit list, or auto = (n-1)/3 per cell
//   --nic       Section 9.3 ingress-queue axis: off, inf (unbounded), or a
//               capacity in datagrams (--nic-service seconds per datagram).
//               Fills the nic_* overflow columns; "off" rows stay zero.
//   --nic-drop  drop policy axis when the queue overflows: oldest (the
//               paper's "old ones are overwritten"), newest (tail drop).
//               Irrelevant (but echoed) on nic=off/inf rows — sweep it
//               only together with a finite capacity.
//   --stagger   Section 9.3 staggered-broadcast axis (seconds between
//               successive senders' broadcasts; Welch-Lynch only).  The
//               stagger x capacity x n grid maps the drop-free frontier.
//   --ingest    arena (dense neighbor-slot ARR arena), legacy (the seed's
//               id-indexed path) — results are bit-identical, only wall_s
//               moves; the axis exists for perf A/Bs
//   --engine    execution-engine axis (core/fastpath.h, engine/pdes.h):
//               event (the event engine, the measured reference), fastpath
//               (require the round fast path; aborts on ineligible cells),
//               pdes (require the sharded conservative engine; pair with
//               --workers), auto (fast path where the cell qualifies, then
//               PDES where the cell opted in with workers >= 2).
//               Bit-identical like --ingest; the wall_s / rounds_per_sec
//               columns show the speedup per cell, the fastpath column
//               records whether the fast path engaged, the
//               fastpath_refusal / pdes_refusal columns say why an engine
//               was declined ("-" when it ran or was never consulted;
//               commas become ';' so reasons stay one field), and
//               pdes_epochs / pdes_stalls record the conservative
//               protocol's windows and empty windows per trial.
//   --workers   PDES shard/worker-count axis (comma list).  0 (the
//               default) hands the shard count to the stall-aware
//               auto-tuner (engine::choose_pdes_workers; it may decline
//               back to serial — the pdes_refusal column says why), 1
//               forces serial, >= 2 pins the count.  Crossed with
//               --engine=pdes it maps wall-clock vs shard count.
//   --observe   measurement-engine axis: off (post-hoc grids), on
//               (streaming in-run observation), bounded (streaming +
//               history truncation; analysis/observe.h).  on == bounded
//               always; both == off bitwise on cells that complete their
//               rounds (degraded cells measure observe-mode's collapsed
//               window — see bench_common.h).  wall_s and hist_peak_mb
//               move.
//   --P         round length; --trials seeds per cell from --seed0
//   --gradient  also measure skew-vs-distance (analysis/gradient.h); fills
//               the gradient_slope / gradient_diameter / gradient_far_skew
//               columns (blank-zero when off)
//   --balance   adaptive (default: cost-aware chunks + telemetry-guided
//               stealing, ParallelRunner::run_adaptive) or fixed (equal
//               chunks).  Scheduling only; rows are bit-identical.
//   --smoke     tiny fixed grid for CI driver smoke tests
//
// --pdes-json=PATH bypasses the grid entirely and emits the PDES
// perf-trajectory artifact (BENCH_pdes.json, the engine/pdes.h acceptance
// workload): per (topology, n, workers) cell, serial event engine as the
// measured reference, with per-cell epochs/stalls and per-cell speedups
// keyed "nN_wK" (the historical deg-16 expander keys stay unprefixed so
// artifacts compare across revisions), "cliques_nN_wK" and "mesh_nN_wK".
// --pdes-topos picks the topology axis (default expander,cliques,mesh;
// mesh cells only materialize at --max-n >= 4096, the size where the
// memory-bound serial baseline makes sharding pay off), and workers
// rows include 16 (from n=1024, the lane-size floor) plus an `auto` row
// (pdes_workers=0, the kAuto default) recording what the stall-aware
// tuner picked.  Each cell is timed --reps times (default 3) and the
// BEST engine span (RunResult::engine_seconds — setup and measurement
// excluded, see analysis/experiment.h) feeds the speedup map: a single
// sample is at the mercy of the host scheduler — the ISSUE 8 audit of an
// apparently nonmonotonic n=2048 cell (w=4 slower than w=2) found it
// unreproducible across reruns (w=4 beat w=2 in 4/4 repetitions;
// epochs/stalls, which ARE deterministic, were unchanged), i.e. pure
// single-sample noise, not a partition or stall pathology.  Timing rows
// are telemetry, not gates (bit-identity is gated by ctest's pdes_test;
// the deterministic stall-rate ceiling by bench_micro --smoke) — EXCEPT
// under --pdes-compare=OLD.json, which re-parses a prior artifact's
// speedup map and fails (exit 1) if any shared key regressed below 0.8x
// its baseline, the same regression gate bench_micro --fastpath-compare
// applies to the fast path.  Keys whose serial reference span is under
// 100 ms are exempt from the gate (still reported): at that scale the
// best-of-reps minimum itself swings +-30% with machine state between
// runs, so their ratios measure the host, not the engine.
//
// Every row also carries wall_s, the trial's wall-clock seconds as measured
// inside run_experiment (per-trial telemetry from the streaming runner),
// and hist_peak_mb, the peak retained clock/CORR history on observe rows.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "net/topology.h"
#include "proc/placement.h"

namespace wlsync {
namespace {

using bench::parse_algo;
using bench::parse_delay;
using bench::parse_drift;
using bench::parse_fault;
using bench::parse_placement;
using bench::parse_topology;
using bench::split_ints;
using bench::split_list;

void write_csv_header(std::ostream& out) {
  out << "spec,n,f,algo,delay,drift,fault,faults,topology,placement,churn,"
         "ingest,"
         "engine,workers,"
         "nic,nic_drop,stagger,observe,rounds,seed,completed_rounds,messages,"
         "gamma_bound,"
         "gamma_measured,adj_bound,max_abs_adj,final_skew,validity_holds,"
         "diverged,gradient_slope,gradient_diameter,gradient_far_skew,"
         "nic_dropped,nic_drop_rate,nic_peak_queue,nic_max_burst,"
         "hist_peak_mb,fastpath,fastpath_refusal,pdes_epochs,pdes_stalls,"
         "pdes_refusal,wall_s,rounds_per_sec\n";
}

// --pdes-json: the PDES perf-trajectory artifact (BENCH_pdes.json).  The
// sparse deg-16 expander is the workload the sharded engine targets (the
// full mesh cuts O(n^2) edges; an expander cuts O(degree * n / k)); the
// serial event engine is the measured reference per (topology, n).  The
// ring-of-cliques (clique=64) row maps the near-ideal cut and the mesh
// row (n=4096 only, 2 rounds — every cell is ~n^2 messages per round)
// maps the adversarial one.  Wall-clock numbers are informational on
// shared runners — the interesting trajectory on a single-core host is
// the queue-depth win (k shallow heaps vs one deep one), which
// multiplies with real cores.
int run_pdes_json(const util::Flags& flags) {
  const std::string out_path =
      flags.get_string("pdes-json", "BENCH_pdes.json");
  const auto max_n = static_cast<std::int32_t>(flags.get_int("max-n", 2048));
  const auto reps =
      static_cast<std::int32_t>(std::max<std::int64_t>(flags.get_int("reps", 3), 1));
  const std::vector<std::string> topos =
      split_list(flags.get_string("pdes-topos", "expander,cliques,mesh"));
  const std::string compare_path = flags.get_string("pdes-compare", "");

  struct Cell {
    std::string key;       // speedup-map key ("" for serial reference rows)
    std::string topo;      // expander | cliques | mesh
    std::int32_t n;
    std::int32_t workers;       // 0 = serial event engine, -1 = auto-tuned
    std::int32_t workers_used;  // what actually ran (auto rows differ)
    std::int32_t rounds;
    std::int64_t epochs;
    std::int64_t stalls;
    double wall_s;    // full run_experiment (setup + engine + measurement)
    double engine_s;  // engine span only — the speedup map uses this
  };
  std::vector<Cell> cells;

  // One measured cell: best engine span (and best wall) over `cell_reps`
  // repetitions.  The run itself is deterministic (epochs/stalls are
  // identical every repetition), so the repetitions only filter host
  // scheduler noise out of the clock.
  const auto measure = [&](const std::string& topo, std::int32_t n,
                           std::int32_t workers, std::int32_t rounds,
                           std::int32_t cell_reps, std::uint64_t max_events,
                           const std::string& key) {
    analysis::RunSpec spec;
    spec.params = core::make_params(n, (n - 1) / 3, 1e-5, 0.01, 1e-3, 10.0);
    spec.rounds = rounds;
    spec.seed = 9;
    if (topo == "expander") {
      spec.topology.kind = net::TopologyKind::kKRegular;
      spec.topology.degree = 16;
    } else if (topo == "cliques") {
      spec.topology.kind = net::TopologyKind::kRingOfCliques;
      spec.topology.clique_size = 64;
    } else {
      spec.topology.kind = net::TopologyKind::kFullMesh;
    }
    if (max_events > 0) spec.max_events = max_events;
    // workers = -1 is the auto row: kPdes with pdes_workers=0 hands the
    // shard count to the stall-aware tuner (engine::choose_pdes_workers)
    // and the cell records what it picked in workers_used.
    spec.engine = workers == 0 ? analysis::EngineMode::kEvent
                               : analysis::EngineMode::kPdes;
    spec.pdes_workers = workers < 0 ? 0 : workers;
    analysis::RunResult result;
    double wall = 0.0;
    double engine = 0.0;
    for (std::int32_t rep = 0; rep < cell_reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      try {
        result = analysis::run_experiment(spec);
      } catch (const std::exception& e) {
        // An auto row the tuner declines (or a partition collapse) is a
        // skipped cell, not a dead artifact.
        std::cerr << "  " << topo << " n=" << n << " workers=" << workers
                  << ": skipped (" << e.what() << ")\n";
        return;
      }
      const double sample =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (rep == 0 || sample < wall) wall = sample;
      if (rep == 0 || result.engine_seconds < engine) {
        engine = result.engine_seconds;
      }
    }
    cells.push_back({key, topo, n, workers, result.pdes_workers_used,
                     result.completed_rounds, result.pdes_epochs,
                     result.pdes_stalls, wall, engine});
    std::cerr << "  " << topo << " n=" << n << " workers="
              << (workers < 0 ? std::string("auto(") +
                                    std::to_string(result.pdes_workers_used) +
                                    ")"
                              : std::to_string(workers))
              << " " << result.completed_rounds << " rounds in " << engine
              << " s engine / " << wall << " s total (best of " << cell_reps
              << ")\n";
  };

  for (const std::string& topo : topos) {
    if (topo != "expander" && topo != "cliques" && topo != "mesh") {
      std::cerr << "bench_sweep: unknown --pdes-topos entry '" << topo
                << "' (want expander, cliques, mesh)\n";
      return 1;
    }
    // The historical expander keys stay unprefixed so --pdes-compare finds
    // shared keys in artifacts written before the topology axis existed.
    const std::string prefix = topo == "expander" ? "" : topo + "_";
    if (topo == "mesh") {
      // Mesh is nominally the adversarial cut, but at n=4096 the serial
      // engine is memory-bound (~2 GB arena + queue working set) and
      // sharding it is the artifact's biggest win (12.9x at w=8) —
      // measured only there: below that the serial engine wins outright,
      // above it the serial reference alone runs for hours.  2 rounds
      // keeps the ~n^2-messages-per-round cell in budget, and the event
      // budget needs lifting past the 50M default.
      if (max_n < 4096) continue;
      const std::int32_t n = 4096;
      for (const std::int32_t workers : {0, 8}) {
        const std::string key =
            workers == 0 ? "" : prefix + "n" + std::to_string(n) + "_w" +
                                    std::to_string(workers);
        measure(topo, n, workers, /*rounds=*/2, std::min(reps, 2),
                /*max_events=*/400'000'000, key);
      }
      continue;
    }
    for (std::int32_t n = 512; n <= max_n; n *= 2) {
      const std::int32_t rounds = n >= 2048 ? 6 : 10;
      // Small cells are tens of milliseconds — the noisiest relative to
      // their size, and the ones the --pdes-compare gate trips on first
      // when a best-of-3 minimum fails to converge.  Double the
      // repetitions there so both the baseline artifact and the fresh CI
      // measurement carry converged minima.
      const std::int32_t cell_reps = n <= 1024 ? reps * 2 : reps;
      for (const std::int32_t workers : {0, 2, 4, 8, 16, -1}) {
        if (workers == 16 && n < 1024) continue;  // 64-process lane floor
        const std::string key =
            workers == 0
                ? ""
                : prefix + "n" + std::to_string(n) + "_w" +
                      (workers < 0 ? "auto" : std::to_string(workers));
        measure(topo, n, workers, rounds, cell_reps, /*max_events=*/0, key);
      }
    }
  }

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "bench_sweep: cannot open --pdes-json=" << out_path << "\n";
    return 1;
  }
  const auto rate = [](const Cell& c) {
    return c.engine_s > 0.0 ? static_cast<double>(c.rounds) / c.engine_s : 0.0;
  };
  json << "{\n  \"workload\": \"expander=k-regular/16, cliques=ring of "
          "64-cliques, mesh=full; P=10, seed 9, best of "
       << reps << " reps (engine span)\",\n"
       << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"topology\": \"" << c.topo << "\", \"n\": " << c.n
         << ", \"engine\": \"" << (c.workers == 0 ? "event" : "pdes")
         << "\", \"workers\": " << c.workers
         << ", \"workers_used\": " << c.workers_used
         << ", \"rounds\": " << c.rounds << ", \"pdes_epochs\": " << c.epochs
         << ", \"pdes_stalls\": " << c.stalls << ", \"wall_s\": " << c.wall_s
         << ", \"engine_s\": " << c.engine_s
         << ", \"rounds_per_sec\": " << rate(c)
         << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  // Speedup per cell vs the serial reference of the SAME (topology, n) —
  // the reference rows precede their pdes rows in `cells` by construction.
  // ref_seconds records each key's serial reference span: keys whose
  // reference runs under kGateMinRefSeconds are too noisy to ratio-gate
  // (a ~50 ms cell's best-of-reps minimum swings +-30% with machine state
  // across runs) and are excluded from --pdes-compare below — they still
  // land in the JSON for information.
  std::vector<std::pair<std::string, double>> speedups;
  std::vector<double> ref_seconds;
  {
    std::string ref_topo;
    std::int32_t ref_n = -1;
    double event_rate = 0.0;
    double event_s = 0.0;
    for (const Cell& c : cells) {
      if (c.workers == 0) {
        ref_topo = c.topo;
        ref_n = c.n;
        event_rate = rate(c);
        event_s = c.engine_s;
        continue;
      }
      if (c.topo != ref_topo || c.n != ref_n || event_rate <= 0.0) continue;
      speedups.emplace_back(c.key, rate(c) / event_rate);
      ref_seconds.push_back(event_s);
    }
  }
  json << "  ],\n  \"speedup\": {";
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    json << (i == 0 ? "" : ", ") << "\"" << speedups[i].first
         << "\": " << speedups[i].second;
  }
  json << "}\n}\n";
  json.flush();
  std::cout << "bench_sweep --pdes-json: wrote " << out_path << "\n";

  // --pdes-compare=OLD.json: the regression gate.  Every gated key shared
  // with the prior artifact must hold >= 0.8x its baseline speedup (the
  // same floor bench_micro --fastpath-compare applies); new keys inform,
  // absent keys are ignored, zero shared keys is an error (a renamed key
  // scheme would otherwise pass vacuously).  Keys whose serial reference
  // span is under kGateMinRefSeconds are skipped (see ref_seconds above):
  // their ratios are not reproducible across runs on the same machine, so
  // gating them means flaky CI, not regression coverage.
  if (!compare_path.empty()) {
    constexpr double kRegressionFloor = 0.8;
    constexpr double kGateMinRefSeconds = 0.1;
    std::vector<std::pair<std::string, double>> baseline;
    if (!bench::parse_speedup_map(compare_path, &baseline)) {
      std::cerr << "bench_sweep: cannot parse --pdes-compare=" << compare_path
                << "\n";
      return 1;
    }
    std::vector<std::pair<std::string, double>> gated;
    for (std::size_t i = 0; i < speedups.size(); ++i) {
      if (ref_seconds[i] < kGateMinRefSeconds) {
        std::cout << "  skip " << speedups[i].first
                  << " (serial reference " << ref_seconds[i] * 1e3
                  << " ms below the " << kGateMinRefSeconds * 1e3
                  << " ms gate floor)\n";
        continue;
      }
      gated.push_back(speedups[i]);
    }
    const int verdict = bench::gate_speedups("bench_sweep --pdes-compare",
                                             gated, baseline,
                                             kRegressionFloor);
    if (verdict != 1) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  using namespace wlsync;
  const util::Flags flags(argc, argv);
  if (!flags.get_string("pdes-json", "").empty()) {
    return run_pdes_json(flags);
  }
  const bool smoke = flags.get_bool("smoke", false);

  const std::vector<std::int64_t> ns =
      split_ints(flags.get_string("n", smoke ? "16" : "7"));
  const std::string f_flag = flags.get_string("f", "auto");
  const std::vector<std::string> algos =
      split_list(flags.get_string("algo", "wl"));
  const std::vector<std::string> delays =
      split_list(flags.get_string("delay", "uniform"));
  const std::vector<std::string> drifts =
      split_list(flags.get_string("drift", "extremal"));
  const std::vector<std::string> faults =
      split_list(flags.get_string("fault", smoke ? "none,twofaced" : "none"));
  const std::vector<std::string> topologies =
      split_list(flags.get_string("topology", smoke ? "mesh,cliques" : "mesh"));
  const std::vector<std::string> placements =
      split_list(flags.get_string("placement", "trailing"));
  const std::vector<std::int64_t> churns =
      split_ints(flags.get_string("churn", "0"));
  const std::vector<std::string> nics =
      split_list(flags.get_string("nic", smoke ? "off,8" : "off"));
  const double nic_service = flags.get_double("nic-service", 50e-6);
  const std::vector<std::string> nic_drops =
      split_list(flags.get_string("nic-drop", "oldest"));
  const std::vector<double> staggers =
      bench::split_doubles(flags.get_string("stagger", "0"));
  const std::vector<std::string> ingests =
      split_list(flags.get_string("ingest", "arena"));
  const std::vector<std::string> engines =
      split_list(flags.get_string("engine", smoke ? "event,auto" : "auto"));
  const std::vector<std::int64_t> workers_axis =
      split_ints(flags.get_string("workers", "0"));
  const std::vector<std::string> observes =
      split_list(flags.get_string("observe", smoke ? "off,bounded" : "off"));
  const bool adaptive =
      flags.get_string("balance", "adaptive") != "fixed";
  const bool gradient = flags.get_bool("gradient", smoke);
  const auto fault_count = flags.get_int("faults", -1);
  const auto trials =
      static_cast<std::int32_t>(flags.get_int("trials", smoke ? 2 : 5));
  const auto rounds =
      static_cast<std::int32_t>(flags.get_int("rounds", smoke ? 4 : 12));
  const double P = flags.get_double("P", 10.0);
  const auto seed0 = static_cast<std::uint64_t>(flags.get_int("seed0", 1));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));
  const std::string out_path = flags.get_string("out", "");

  // ------------------------------------------------------------- grid ---
  std::vector<analysis::RunSpec> specs;
  for (const std::int64_t n : ns) {
    const std::vector<std::int64_t> fs =
        f_flag == "auto" ? std::vector<std::int64_t>{(n - 1) / 3}
                         : split_ints(f_flag);
    for (const std::int64_t f : fs) {
      for (const std::string& algo : algos) {
        for (const std::string& delay : delays) {
          for (const std::string& drift : drifts) {
            for (const std::string& fault : faults) {
              for (const std::string& topology : topologies) {
                for (const std::string& placement : placements) {
                 for (const std::int64_t churn : churns) {
                 for (const std::string& nic : nics) {
                  for (const std::string& nic_drop : nic_drops) {
                  for (const double stagger : staggers) {
                  for (const std::string& observe : observes) {
                  for (const std::string& ingest : ingests) {
                  for (const std::string& engine : engines) {
                  for (const std::int64_t workers : workers_axis) {
                  analysis::RunSpec base;
                  base.params = core::make_params(
                      static_cast<std::int32_t>(n), static_cast<std::int32_t>(f),
                      1e-5, 0.01, 1e-3, P);
                  base.algo = parse_algo(algo);
                  base.delay = parse_delay(delay);
                  base.drift = parse_drift(drift);
                  base.fault = parse_fault(fault);
                  base.fault_count =
                      base.fault == analysis::FaultKind::kNone
                          ? 0
                          : static_cast<std::int32_t>(
                                fault_count < 0 ? f : fault_count);
                  base.topology.kind = parse_topology(topology);
                  base.topology.degree =
                      static_cast<std::int32_t>(flags.get_int("degree", 8));
                  base.topology.clique_size =
                      static_cast<std::int32_t>(flags.get_int("clique", 8));
                  base.placement = parse_placement(placement);
                  base.nic = bench::parse_nic(nic, nic_service);
                  if (base.nic.has_value()) {
                    base.nic->drop = bench::parse_nic_drop(nic_drop);
                  }
                  base.stagger = stagger;
                  const bench::ObserveMode omode = bench::parse_observe(observe);
                  base.observe = omode.observe;
                  base.retain_history = omode.retain;
                  base.ingest = bench::parse_ingest(ingest);
                  base.engine = bench::parse_engine(engine);
                  // 0 under --engine=pdes is the auto-tuner (the kAuto
                  // default): engine::choose_pdes_workers picks the shard
                  // count and the row's pdes_workers column echoes the
                  // request, not the pick.
                  base.pdes_workers = static_cast<std::int32_t>(workers);
                  base.measure_gradient = gradient;
                  base.rounds = rounds;
                  if (churn > 0) {
                    // Deterministic wave: ids 0..c-1 leave at 2P staggered
                    // by P/2, rejoin 3P later (>= the 2P reintegration
                    // minimum).  Trailing fault placement keeps the
                    // Byzantine roster disjoint from the churned ids.
                    if (base.algo != analysis::Algo::kWelchLynch ||
                        base.engine == analysis::EngineMode::kFastpath ||
                        base.engine == analysis::EngineMode::kPdes ||
                        base.placement != proc::PlacementKind::kTrailing ||
                        !base.placement_ids.empty()) {
                      std::cerr << "bench_sweep: skipping churn=" << churn
                                << " cell (" << algo << "/" << engine << "/"
                                << placement
                                << "): churn needs wl + event-capable engine"
                                   " + trailing placement\n";
                      continue;
                    }
                    base.dynamics.churn_wave(2.0 * P,
                                             /*first=*/0,
                                             static_cast<std::int32_t>(churn),
                                             /*downtime=*/3.0 * P,
                                             /*stagger=*/0.5 * P);
                  }
                  const std::vector<analysis::RunSpec> seeded =
                      analysis::seed_sweep(base, seed0, trials);
                  specs.insert(specs.end(), seeded.begin(), seeded.end());
                  }
                  }
                  }
                  }
                  }
                  }
                 }
                 }
                }
              }
            }
          }
        }
      }
    }
  }

  // ----------------------------------------------------------- stream ---
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "bench_sweep: cannot open --out=" << out_path << "\n";
      return 1;
    }
  }
  std::ostream& csv = out_path.empty() ? std::cout : file;
  write_csv_header(csv);

  std::size_t done = 0;
  const analysis::ParallelRunner runner(threads);
  std::cerr << "bench_sweep: " << specs.size() << " trials on "
            << runner.threads() << " threads ("
            << (adaptive ? "adaptive" : "fixed") << " chunks)\n";
  const auto write_row = [&](std::size_t i, const analysis::RunResult& r) {
    const analysis::RunSpec& s = specs[i];
    const bench::ObserveMode omode{s.observe, s.retain_history};
    csv << i << ',' << s.params.n << ',' << s.params.f << ','
        << bench::algo_name(s.algo) << ',' << bench::delay_name(s.delay)
        << ',' << bench::drift_name(s.drift) << ','
        << bench::fault_name(s.fault) << ',' << s.fault_count << ','
        << net::topology_name(s.topology.kind) << ','
        << proc::placement_name(s.placement) << ','
        << net::churn_intervals(s.dynamics).size() << ','
        << proc::ingest_name(s.ingest) << ','
        << bench::engine_name(s.engine) << ',' << s.pdes_workers << ','
        << bench::nic_name(s.nic) << ','
        << (s.nic.has_value() ? bench::nic_drop_name(s.nic->drop) : "-") << ','
        << s.stagger << ',' << bench::observe_name(omode) << ','
        << s.rounds << ','
        << s.seed << ',' << r.completed_rounds << ',' << r.messages << ','
        << r.gamma_bound << ',' << r.gamma_measured << ',' << r.adj_bound
        << ',' << r.max_abs_adj << ',' << r.final_skew << ','
        << (r.validity.holds ? 1 : 0) << ',' << (r.diverged ? 1 : 0) << ','
        << r.gradient.slope << ',' << r.gradient.diameter << ','
        << r.gradient.far_skew() << ',' << r.nic.dropped << ','
        << r.nic.drop_rate() << ',' << r.nic.peak_queue << ','
        << r.nic.max_burst << ','
        << static_cast<double>(r.observe.peak_history_bytes) / (1024.0 * 1024.0)
        << ',' << (r.fastpath_engaged ? 1 : 0) << ','
        << bench::refusal_csv(r.fastpath_refusal) << ',' << r.pdes_epochs
        << ',' << r.pdes_stalls << ','
        << bench::refusal_csv(r.pdes_refusal) << ',' << r.wall_seconds << ','
        << (r.wall_seconds > 0.0 ? r.completed_rounds / r.wall_seconds : 0.0)
        << '\n';
    if (++done % 50 == 0) {
      std::cerr << "  " << done << "/" << specs.size() << " trials\n";
    }
  };
  if (adaptive) {
    (void)runner.run_adaptive(specs, write_row);
  } else {
    (void)runner.run_streaming(specs, write_row);
  }
  csv.flush();
  std::cerr << "bench_sweep: done (" << done << " trials)\n";
  return 0;
}
