// EXP-AGREE — Theorem 16: gamma-agreement.  Sweeps eps and rho; reports the
// closed-form gamma next to the measured worst skew under the strongest
// adversary, and checks the Section 10 summary "clocks stay synchronized to
// within about 4 eps".

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 16));

  bench::print_header(
      "EXP-AGREE (Theorem 16)",
      "gamma = beta + eps + rho(7 beta + 3 delta + 7 eps) + O(rho^2); "
      "measured = worst steady skew under the two-faced splitter.  The "
      "steady skew tracks ~4-5 eps, not delta.");

  util::Table table({"eps", "rho", "beta", "gamma bound", "gamma measured",
                     "meas/eps", "within bound"});
  bool all_ok = true;
  for (double eps : {2e-4, 5e-4, 1e-3, 2e-3, 5e-3}) {
    for (double rho : {1e-6, 1e-5, 1e-4}) {
      const double delta = 0.02;
      const double P = 10.0;
      const core::Params params =
          core::make_params(7, 2, rho, delta, eps, P);
      const core::Derived derived = core::derive(params);
      double worst = 0.0;
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        analysis::RunSpec spec;
        spec.params = params;
        spec.fault = analysis::FaultKind::kTwoFaced;
        spec.fault_count = 2;
        spec.rounds = rounds;
        spec.seed = seed;
        const analysis::RunResult result = analysis::run_experiment(spec);
        worst = std::max(worst, result.gamma_measured);
      }
      const bool ok = worst <= derived.gamma * (1 + 1e-9);
      all_ok = all_ok && ok;
      table.add_row({util::fmt(eps), util::fmt(rho), util::fmt(params.beta),
                     util::fmt(derived.gamma), util::fmt(worst),
                     util::fmt(worst / eps, 3), bench::verdict(ok)});
    }
  }
  table.print(std::cout);
  std::cout << "\nTheorem 16 bound holds across the sweep: "
            << bench::verdict(all_ok) << "\n"
            << "(gamma bound itself is ~5.4 eps at these settings: beta ~ "
               "4 eps + 4 rho P, gamma ~ beta + eps.)\n";
  return all_ok ? 0 : 1;
}
