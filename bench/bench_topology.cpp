// EXP-TOPOLOGY — the large-n / sparse-exchange-graph workload family.
//
// Scales the Welch-Lynch maintenance algorithm across n (default up to 512,
// --max-n to change) on the paper's full mesh and on the sparse graphs of
// the net layer (k-regular expander, ring of cliques), and reports the
// engine-pressure counters the batched fan-out refactor targets: messages
// per round, scheduler push+pop operations per round, the pending-entry
// high-water mark, and wall time per round — plus the measured steady skew,
// since sparse graphs trade agreement quality for O(degree * n) traffic.
//
// --batch=0 reruns everything through the seed's per-recipient scheduling
// for an A/B of the fan-out engine on identical executions (results are
// bit-identical; only the engine counters and wall time move).
//
// --nic=off|inf|<capacity> engages the Section 9.3 datagram-ingress model
// (--nic-service seconds per datagram): the table gains drops/round and the
// largest same-instant arrival burst, making overflow at n >= 128 — the
// regime the paper's small-n study leaves open — a measured axis.
// --ingest=arena|legacy A/Bs the dense ARR-arena ingestion path the same
// way --batch A/Bs the fan-out engine.
//
// --observe=off|on|bounded A/Bs the measurement engine: post-hoc grids vs
// the streaming in-run observer (analysis/observe.h), optionally with
// history truncated behind the observation frontier.  Measured values are
// bit-identical on runs that complete their rounds (all of this table);
// the hist-MB column shows the retained-history high-water mark the
// bounded mode eliminates.
//
// --engine=event|fastpath|pdes|auto A/Bs the execution engines
// (core/fastpath.h, engine/pdes.h) the same way --batch A/Bs the fan-out
// engine: results are bit-identical, only wall-s/round and rounds/sec
// move.  The fp column records whether the fast path engaged (arena cells
// without NIC/observe-bounded pressure: yes, including staggered and
// fault-isolating-region cells); the refusal column says WHY a cell fell
// back to the event engine (RunResult::fastpath_refusal — the ISSUE 8
// silent-fallback fix); the epochs and stalls columns record the
// conservative PDES protocol's lookahead windows and empty windows.  --engine=fastpath / --engine=pdes abort on
// ineligible cells; --workers=K (default 8 for pdes, else 0) sets the
// shard count the topology is cut into (net/partition.h).

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/topology.h"
#include "util/table.h"

namespace wlsync {
namespace {

struct Row {
  std::string label;
  std::int32_t n = 0;
  analysis::RunResult result;
  std::uint64_t queue_ops = 0;
  std::size_t peak_pending = 0;
  std::uint64_t fanout_direct = 0;
  std::size_t hist_bytes = 0;
  double wall_ms = 0.0;
};

Row run_case(const std::string& label, std::int32_t n,
             const net::TopologySpec& topology, bool batch,
             std::int32_t rounds,
             const std::optional<sim::NicConfig>& nic,
             proc::IngestMode ingest, const bench::ObserveMode& observe,
             analysis::EngineMode engine, std::int32_t workers) {
  analysis::RunSpec spec;
  const std::int32_t f = (n - 1) / 3;
  spec.params = core::make_params(n, f, 1e-5, 0.01, 1e-3, 10.0);
  spec.rounds = rounds;
  spec.seed = 1;
  spec.topology = topology;
  spec.batch_fanout = batch;
  spec.nic = nic;
  spec.ingest = ingest;
  spec.observe = observe.observe;
  spec.retain_history = observe.retain;
  spec.engine = engine;
  spec.pdes_workers = workers;

  Row row;
  row.label = label;
  row.n = n;
  analysis::Experiment experiment(spec);
  const auto start = std::chrono::steady_clock::now();
  row.result = experiment.run();
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - start;
  row.wall_ms = wall.count();
  row.queue_ops = experiment.simulator().queue_ops();
  row.peak_pending = experiment.simulator().peak_pending();
  row.fanout_direct = experiment.simulator().fanout_direct();
  // Peak retained clock/CORR history: the observer tracks it in observe
  // modes; with post-hoc measurement the full history is still resident.
  row.hist_bytes = spec.observe ? row.result.observe.peak_history_bytes
                                : experiment.simulator().history_bytes();
  return row;
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  using namespace wlsync;
  const util::Flags flags(argc, argv);
  const auto max_n = static_cast<std::int32_t>(flags.get_int("max-n", 512));
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 4));
  const bool batch = flags.get_bool("batch", true);
  const auto degree = static_cast<std::int32_t>(flags.get_int("degree", 16));
  const auto clique = static_cast<std::int32_t>(flags.get_int("clique", 16));
  const std::optional<sim::NicConfig> nic = bench::parse_nic(
      flags.get_string("nic", "off"), flags.get_double("nic-service", 50e-6));
  const proc::IngestMode ingest =
      bench::parse_ingest(flags.get_string("ingest", "arena"));
  const bench::ObserveMode observe =
      bench::parse_observe(flags.get_string("observe", "off"));
  const analysis::EngineMode engine =
      bench::parse_engine(flags.get_string("engine", "auto"));
  const auto workers = static_cast<std::int32_t>(flags.get_int(
      "workers", engine == analysis::EngineMode::kPdes ? 8 : 0));

  bench::print_header(
      "EXP-TOPOLOGY",
      "Large-n scaling of one Welch-Lynch round across exchange graphs.\n"
      "Full mesh sends n^2 messages/round; sparse graphs send degree*n —\n"
      "the route to n >= 512 the ROADMAP calls for.  queue-ops and peak\n"
      "pending show the batched fan-out keeping scheduler pressure at\n"
      "O(n) entries instead of O(n^2).");
  std::cout << "fan-out engine: "
            << (batch ? "batched (one entry per broadcast)"
                      : "per-recipient (seed baseline)")
            << "; ingestion: " << proc::ingest_name(ingest)
            << "; nic: " << bench::nic_name(nic)
            << "; observe: " << bench::observe_name(observe)
            << "; engine: " << bench::engine_name(engine)
            << "; workers: " << workers << "\n\n";

  util::Table table({"topology", "n", "msgs/round", "q-ops/round",
                     "peak-pend", "direct/round", "drop/round", "burst",
                     "hist-MB", "fp", "refusal", "epochs", "stalls", "wall-s",
                     "ms/round", "rounds/sec", "skew"});
  for (std::int32_t n = 64; n <= max_n; n *= 2) {
    std::vector<std::pair<std::string, net::TopologySpec>> cases;
    cases.emplace_back("full-mesh", net::TopologySpec{});
    net::TopologySpec kreg;
    kreg.kind = net::TopologyKind::kKRegular;
    kreg.degree = degree;
    cases.emplace_back("k-regular/" + std::to_string(degree), kreg);
    net::TopologySpec cliques;
    cliques.kind = net::TopologyKind::kRingOfCliques;
    cliques.clique_size = clique;
    cases.emplace_back("cliques/" + std::to_string(clique), cliques);

    for (const auto& [label, topology] : cases) {
      const Row row = run_case(label, n, topology, batch, rounds, nic, ingest,
                               observe, engine, workers);
      const double per_round =
          row.result.completed_rounds > 0
              ? static_cast<double>(row.result.completed_rounds)
              : 1.0;
      table.add_row(
          {label, std::to_string(n),
           std::to_string(static_cast<std::uint64_t>(
               static_cast<double>(row.result.messages) / per_round)),
           std::to_string(static_cast<std::uint64_t>(
               static_cast<double>(row.queue_ops) / per_round)),
           std::to_string(row.peak_pending),
           std::to_string(static_cast<std::uint64_t>(
               static_cast<double>(row.fanout_direct) / per_round)),
           std::to_string(static_cast<std::uint64_t>(
               static_cast<double>(row.result.nic.dropped) / per_round)),
           std::to_string(row.result.nic.max_burst),
           util::fmt(static_cast<double>(row.hist_bytes) / (1024.0 * 1024.0),
                     3),
           row.result.fastpath_engaged ? "yes" : "no",
           row.result.fastpath_engaged || row.result.pdes_epochs > 0
               ? "-"
               : bench::refusal_csv(row.result.fastpath_refusal),
           std::to_string(row.result.pdes_epochs),
           std::to_string(row.result.pdes_stalls),
           util::fmt(row.wall_ms / 1000.0, 3),
           util::fmt(row.wall_ms / per_round, 4),
           util::fmt(per_round / (row.wall_ms / 1000.0), 2),
           util::fmt_sci(row.result.gamma_measured)});
    }
  }
  table.print(std::cout);
  std::cout << "\nskew on sparse graphs is NOT covered by the paper's\n"
               "full-mesh analysis; it is reported to quantify the trade.\n";
  return 0;
}
