// EXP-AMORT — Section 4.1: "there are known techniques for stretching a
// negative adjustment out over the resynchronization interval."  Compares
// stepped vs amortized (slewed) corrections: monotonicity of displayed
// local time and the cost in observed agreement.

#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 12));

  bench::print_header(
      "EXP-AMORT (Section 4.1)",
      "Backward steps of displayed local time (sampled at 0.5 ms) and "
      "steady skew, stepped vs slewed corrections.");

  const core::Params params = bench::default_params(4, 1, 5.0);
  const core::Derived derived = core::derive(params);

  util::Table table({"mode", "backward steps", "steady skew", "skew bound"});
  bool ok = true;
  for (double amortize : {0.0, 0.25, 0.5}) {
    analysis::RunSpec spec;
    spec.params = params;
    spec.amortize = amortize;
    spec.initial_spread = params.beta * 0.9;
    spec.delay = analysis::DelayKind::kSlow;
    spec.rounds = rounds;
    spec.seed = 8;
    analysis::Experiment experiment(spec);
    const analysis::RunResult result = experiment.run();

    std::int64_t backward = 0;
    for (std::int32_t id : result.honest) {
      double prev = -1e300;
      for (double t = result.tmax0; t <= result.tmax0 + 3 * params.P;
           t += 5e-4) {
        const double current = experiment.simulator().local_time(id, t);
        if (current < prev - 1e-12) ++backward;
        prev = current;
      }
    }
    const double bound = derived.gamma + (amortize > 0 ? derived.adj_bound : 0);
    const bool row_ok = result.gamma_measured <= bound &&
                        (amortize == 0.0) == (backward > 0);
    ok = ok && row_ok;
    table.add_row({amortize == 0.0 ? "stepped"
                                   : "slewed " + util::fmt(amortize) + "s",
                   std::to_string(backward), util::fmt(result.gamma_measured),
                   util::fmt(bound)});
  }
  table.print(std::cout);
  std::cout << "\nslewing removes backward steps at bounded agreement cost: "
            << bench::verdict(ok) << "\n";
  return ok ? 0 : 1;
}
