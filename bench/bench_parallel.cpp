// EXP-PARALLEL — engineering: the ParallelRunner shards independent trials
// (seed x RunSpec grid) across a thread pool.  Two claims are checked:
//   (1) correctness — the sharded sweep returns results bit-for-bit
//       identical to the serial sweep, in the same order;
//   (2) throughput — wall time scales with the worker count (hardware
//       permitting: the speedup is bounded by the physical core count, so
//       a single-core machine reports ~1x and still must pass (1)).

#include <chrono>
#include <functional>
#include <thread>

#include "analysis/parallel_runner.h"
#include "bench_common.h"

using namespace wlsync;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto trials = static_cast<std::int32_t>(flags.get_int("trials", 64));
  const auto threads = static_cast<int>(flags.get_int("threads", 8));
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 10));

  bench::print_header(
      "EXP-PARALLEL (engine)",
      "Serial vs sharded execution of one seed sweep: identical results "
      "required; speedup reported (bounded by physical cores).");

  analysis::RunSpec base;
  base.params = bench::default_params(7, 2);
  base.fault = analysis::FaultKind::kTwoFaced;
  base.fault_count = 2;
  base.rounds = rounds;
  const std::vector<analysis::RunSpec> specs =
      analysis::seed_sweep(base, /*first_seed=*/1000, trials);

  std::vector<analysis::RunResult> serial, parallel;
  const double t_serial = wall_seconds(
      [&] { serial = analysis::ParallelRunner(1).run(specs); });
  const double t_parallel = wall_seconds(
      [&] { parallel = analysis::ParallelRunner(threads).run(specs); });

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = analysis::results_identical(serial[i], parallel[i]);
  }

  util::Table table({"configuration", "trials", "wall time", "speedup"});
  table.add_row({"serial (1 thread)", std::to_string(trials),
                 util::fmt(t_serial, 3) + " s", "1.00x"});
  table.add_row({std::to_string(threads) + " threads", std::to_string(trials),
                 util::fmt(t_parallel, 3) + " s",
                 util::fmt(t_serial / t_parallel, 2) + "x"});
  table.print(std::cout);

  std::cout << "\nhardware threads available: "
            << std::thread::hardware_concurrency() << "\n"
            << "results bit-identical to serial: " << bench::verdict(identical)
            << "\n";
  return identical ? 0 : 1;
}
