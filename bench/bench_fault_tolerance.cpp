// EXP-FAULT — assumption A2 / [DHS]: n >= 3f + 1.  At and above the
// threshold the gamma bound holds against the strongest constructive
// splitter; below it the same attack does monotonically more damage.
// (Outright divergence at n = 3f is guaranteed *impossible to rule out* by
// a non-constructive indistinguishability argument; a concrete message
// adversary exhibits degradation, not explosion — see EXPERIMENTS.md.)

#include "analysis/parallel_runner.h"
#include "bench_common.h"

using namespace wlsync;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto rounds = static_cast<std::int32_t>(flags.get_int("rounds", 30));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));

  bench::print_header(
      "EXP-FAULT (A2, Section 10)",
      "Worst gamma_measured/gamma_bound over seeds, under the two-faced "
      "splitter with f active faults.  Ratio <= 1 required iff n >= 3f+1.");

  // The whole (n, f) x seed grid is one flat spec list sharded across the
  // ParallelRunner pool; each spec carries its grid index so the per-cell
  // aggregation cannot drift from the trial order.
  const std::vector<std::pair<std::int32_t, std::int32_t>> grid{
      {4, 1}, {3, 1}, {7, 2}, {6, 2}, {5, 2}, {10, 3}, {8, 3}, {7, 3},
      {13, 4}, {9, 4}};
  std::vector<std::size_t> cell_of_trial;
  std::vector<analysis::RunSpec> specs;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto [n, f] = grid[g];
    core::Params p;
    p.n = n;
    p.f = f;
    p.rho = 1e-5;
    p.delta = 0.01;
    p.eps = 1e-3;
    p.P = 10.0;
    p.beta = core::beta_for_round_length(p.P, p.rho, p.delta, p.eps) * 1.05;
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      analysis::RunSpec spec;
      spec.params = p;
      spec.fault = analysis::FaultKind::kTwoFaced;
      spec.fault_count = f;
      spec.rounds = rounds;
      spec.seed = seed;
      specs.push_back(spec);
      cell_of_trial.push_back(g);
    }
  }
  const std::vector<analysis::RunResult> results =
      analysis::run_experiments(specs, threads);

  std::vector<double> worst_ratio(grid.size(), 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    worst_ratio[cell_of_trial[i]] =
        std::max(worst_ratio[cell_of_trial[i]],
                 results[i].gamma_measured / results[i].gamma_bound);
  }

  util::Table table(
      {"n", "f", "3f+1", "regime", "gamma ratio", "bound holds"});
  bool all_ok = true;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto [n, f] = grid[g];
    const double worst = worst_ratio[g];
    const bool at_threshold = n >= 3 * f + 1;
    const bool ok = !at_threshold || worst <= 1.0;
    all_ok = all_ok && ok;
    table.add_row({std::to_string(n), std::to_string(f),
                   std::to_string(3 * f + 1),
                   at_threshold ? "n >= 3f+1" : "BELOW",
                   util::fmt(worst, 3), at_threshold ? bench::verdict(ok) : "-"});
  }
  table.print(std::cout);
  std::cout << "\nAll n >= 3f+1 configurations hold the bound: "
            << bench::verdict(all_ok)
            << "\n(below the threshold the ratio climbs monotonically)\n";
  return all_ok ? 0 : 1;
}
