// EXP-GRADIENT — skew-vs-distance grids on sparse exchange graphs (the
// measurable form of a gradient bound, Bund/Lenzen/Rosenbaum).
//
// Builds the cross product of topology x placement x fault axes, runs every
// cell times every seed through the ParallelRunner with
// RunSpec::measure_gradient on, and emits one CSV row PER DISTANCE BUCKET
// per trial, so a skew-vs-distance curve is the set of rows sharing a spec
// index.  Example:
//
//   bench_gradient --topology=kregular --degree=16 --n=256 --rounds=12
//                  --fault=twofaced --placement=random,articulation
//                  --trials=5 --out=gradient.csv
//
// CSV columns (placement knobs included so curves are self-describing):
//   spec        trial index (rows of one trial share it)
//   n,topology  system size and exchange graph (cliques carries --clique,
//               kregular carries --degree in the topo_param column)
//   topo_param  clique size (cliques) / target degree (kregular) / 0 (mesh)
//   placement   PlacementPolicy that mapped faults onto positions
//               (trailing|random|max-degree|articulation|bridge|antipodal;
//               non-trailing switches the two-faced attack to its
//               neighbor-scoped per-victim mode)
//   fault,f     fault kind and count (f < 0 on the command line = the local
//               cap min_v (deg(v) - 1) / 3 over the graph)
//   seed,rounds trial seed and configured round count
//   diameter    hop diameter of the exchange graph
//   slope       least-squares slope of max_skew against distance (s/hop)
//   distance    hop-distance bucket d(i, j) of this row
//   pairs       honest pairs at this distance
//   max_skew    max over the steady-state window of the bucket's per-sample
//               max |L_i - L_j|
//   mean_skew   window mean of the per-sample bucket max
//   p99_skew    0.99-quantile of the per-sample bucket max
//   frontier    max_skew folded over all distances <= d (non-decreasing:
//               the "skew within distance d" curve)
//   observe     measurement engine: off (post-hoc grids), on (streaming),
//               bounded (streaming + history truncation) — --observe flag
//   hist_peak_mb  peak retained clock/CORR history (observe rows; 0 = off)
//   wall_s      trial wall-clock seconds
//
// Long windows: post-hoc grids must retain the full O(rounds * n) history,
// so --rounds much beyond the default at n = 512 exhausts memory/wall
// budget; --observe=bounded streams the same values in bounded memory
// (analysis/observe.h), and --dt coarsens the sample step when even the
// per-sample gradient matrix gets large.  --smoke shrinks the grid to
// seconds for CI.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/parallel_runner.h"
#include "bench_common.h"
#include "net/topology.h"
#include "proc/placement.h"

namespace wlsync {
namespace {

using bench::parse_fault;
using bench::parse_placement;
using bench::parse_topology;
using bench::split_ints;
using bench::split_list;

/// The local A2 budget: the largest f no honest neighborhood overruns,
/// min_v (deg(v) - 1) / 3 with deg counting the self-loop (the quorum view
/// welch_lynch.cpp clamps against).
std::int32_t local_fault_cap(const net::Topology& topo) {
  std::int32_t cap = topo.n();
  for (std::int32_t v = 0; v < topo.n(); ++v) {
    cap = std::min(cap, (topo.degree(v) - 1) / 3);
  }
  return std::max(cap, std::int32_t{0});
}

std::int32_t topo_param(const net::TopologySpec& spec) {
  switch (spec.kind) {
    case net::TopologyKind::kRingOfCliques: return spec.clique_size;
    case net::TopologyKind::kKRegular: return spec.degree;
    default: return 0;
  }
}

}  // namespace
}  // namespace wlsync

int main(int argc, char** argv) {
  using namespace wlsync;
  const util::Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  const std::vector<std::int64_t> ns =
      split_ints(flags.get_string("n", smoke ? "32" : "64,256"));
  const std::vector<std::string> topologies =
      split_list(flags.get_string("topology", "cliques,kregular"));
  const std::vector<std::string> placements = split_list(
      flags.get_string("placement", smoke ? "trailing,articulation" : "trailing"));
  const std::vector<std::string> faults =
      split_list(flags.get_string("fault", smoke ? "none,twofaced" : "none"));
  const auto fault_count = flags.get_int("faults", -1);
  const auto trials =
      static_cast<std::int32_t>(flags.get_int("trials", smoke ? 1 : 5));
  const auto rounds =
      static_cast<std::int32_t>(flags.get_int("rounds", smoke ? 4 : 12));
  const auto clique =
      static_cast<std::int32_t>(flags.get_int("clique", 8));
  const auto degree =
      static_cast<std::int32_t>(flags.get_int("degree", smoke ? 8 : 16));
  const auto seed0 = static_cast<std::uint64_t>(flags.get_int("seed0", 1));
  const auto threads = static_cast<int>(flags.get_int("threads", 0));
  const bench::ObserveMode observe =
      bench::parse_observe(flags.get_string("observe", "off"));
  const double observe_dt = flags.get_double("dt", 0.0);
  const std::string out_path = flags.get_string("out", "");

  // ------------------------------------------------------------- grid ---
  std::vector<analysis::RunSpec> specs;
  for (const std::int64_t n : ns) {
    for (const std::string& topology : topologies) {
      net::TopologySpec topo_spec;
      topo_spec.kind = parse_topology(topology);
      topo_spec.clique_size = clique;
      topo_spec.degree = degree;
      const net::Topology topo =
          net::build_topology(topo_spec, static_cast<std::int32_t>(n));
      const std::int32_t cap = local_fault_cap(topo);
      for (const std::string& placement : placements) {
        for (const std::string& fault : faults) {
          analysis::RunSpec base;
          const analysis::FaultKind kind = parse_fault(fault);
          const std::int32_t count =
              kind == analysis::FaultKind::kNone
                  ? 0
                  : static_cast<std::int32_t>(fault_count < 0 ? cap : fault_count);
          if (kind != analysis::FaultKind::kNone && count == 0) {
            std::cerr << "bench_gradient: dropping fault=" << fault << " cells on "
                      << topology << " n=" << n
                      << " (local fault cap (min_deg-1)/3 = 0; pass --faults "
                         "explicitly to override)\n";
            continue;
          }
          base.params = core::make_params(
              static_cast<std::int32_t>(n), std::max(count, std::int32_t{1}),
              1e-5, 0.01, 1e-3, 10.0);
          base.topology = topo_spec;
          base.placement = parse_placement(placement);
          base.fault = kind;
          base.fault_count = count;
          base.rounds = rounds;
          base.measure_gradient = true;
          base.observe = observe.observe;
          base.retain_history = observe.retain;
          base.observe_dt = observe_dt;
          const std::vector<analysis::RunSpec> seeded =
              analysis::seed_sweep(base, seed0, trials);
          specs.insert(specs.end(), seeded.begin(), seeded.end());
        }
      }
    }
  }

  // ----------------------------------------------------------- stream ---
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "bench_gradient: cannot open --out=" << out_path << "\n";
      return 1;
    }
  }
  std::ostream& csv = out_path.empty() ? std::cout : file;
  csv << "spec,n,topology,topo_param,placement,fault,f,seed,rounds,diameter,"
         "slope,distance,pairs,max_skew,mean_skew,p99_skew,frontier,"
         "observe,hist_peak_mb,wall_s\n";

  std::size_t done = 0;
  std::size_t non_monotone = 0;
  const analysis::ParallelRunner runner(threads);
  std::cerr << "bench_gradient: " << specs.size() << " trials on "
            << runner.threads() << " threads\n";
  (void)runner.run_streaming(
      specs, [&](std::size_t i, const analysis::RunResult& r) {
        const analysis::RunSpec& s = specs[i];
        const analysis::GradientSummary& g = r.gradient;
        for (std::size_t b = 0; b < g.distances.size(); ++b) {
          csv << i << ',' << s.params.n << ','
              << net::topology_name(s.topology.kind) << ','
              << topo_param(s.topology) << ','
              << proc::placement_name(s.placement) << ','
              << bench::fault_name(s.fault) << ',' << s.fault_count << ','
              << s.seed << ',' << s.rounds << ',' << g.diameter << ','
              << g.slope << ',' << g.distances[b] << ',' << g.pair_count[b]
              << ',' << g.max_skew[b] << ',' << g.mean_skew[b] << ','
              << g.p99_skew[b] << ',' << g.frontier[b] << ','
              << bench::observe_name(observe) << ','
              << static_cast<double>(r.observe.peak_history_bytes) /
                     (1024.0 * 1024.0)
              << ',' << r.wall_seconds << '\n';
        }
        if (!std::is_sorted(g.max_skew.begin(), g.max_skew.end())) {
          ++non_monotone;
        }
        if (++done % 20 == 0) {
          std::cerr << "  " << done << "/" << specs.size() << " trials\n";
        }
      });
  csv.flush();
  std::cerr << "bench_gradient: done (" << done << " trials; raw per-distance "
            << "max was non-monotone in " << non_monotone << " of them — the "
            << "frontier column is monotone by construction)\n";
  return 0;
}
