#pragma once
// The datagram-NIC ingress model (Section 9.3), scaled to large n.
//
// The paper's Ethernet study observes that when the system behaves well —
// every process broadcasting at the same logical instant — receive buffers
// overflow: "if too many arrive at once, the old ones are overwritten."
// Under the batched fan-out engine this clustering is the common case at
// n >= 128 (one broadcast delivers its whole neighborhood in a burst), so
// the NIC is modeled explicitly: each process owns a bounded ingress queue;
// arrivals enqueue, a service loop hands one datagram to the process every
// `service_time` seconds, and arrivals that find the queue full trigger a
// drop according to the configured policy.
//
// capacity = 0 means unbounded: nothing is ever dropped and the model
// reduces to a pure serialization delay.  The per-process NicStats make
// overflow a measurable axis — drops, served datagrams, the queue
// high-water mark, and the largest same-instant arrival burst — surfaced
// through analysis/measure (NicSummary) into RunResult and the
// bench_sweep / bench_topology CSV columns.
//
// The queue itself is a flat ring over pooled Message slots (the seed used
// a std::deque): contiguous storage for the burst-drain hot path, capacity
// retained across rounds so steady-state overflow processing allocates
// nothing.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.h"

namespace wlsync::sim {

enum class NicDropPolicy : std::uint8_t {
  /// Section 9.3's Ethernet behaviour: the oldest queued datagram is
  /// overwritten by the newcomer.
  kDropOldest = 0,
  /// Tail drop: the arriving datagram is lost, the queue is untouched.
  kDropNewest = 1,
};

/// Bounded receive buffer emulating the Section 9.3 datagram NIC.
struct NicConfig {
  std::size_t capacity = 8;     ///< pending datagrams held; 0 = unbounded
  double service_time = 50e-6;  ///< time to hand one datagram to the process
  NicDropPolicy drop = NicDropPolicy::kDropOldest;
};

/// Per-process ingress accounting (drop/overflow axis of EXP-SWEEP /
/// EXP-TOPOLOGY).  All counters are deterministic functions of the run.
struct NicStats {
  std::uint64_t arrivals = 0;        ///< datagrams that reached the NIC
  std::uint64_t served = 0;          ///< datagrams handed to the process
  std::uint64_t dropped = 0;         ///< datagrams lost to overflow
  std::uint64_t service_events = 0;  ///< service-loop arms (re-arm accounting)
  std::size_t peak_queue = 0;        ///< queue depth high-water mark
  std::size_t max_burst = 0;         ///< largest same-instant arrival burst
};

/// Flat ring-buffer FIFO of Messages.  Grows by doubling (bounded NICs
/// never grow past capacity + 1); storage is retained for the life of the
/// process, so steady-state rounds are allocation-free.
class NicQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void push_back(const Message& msg) {
    if (count_ == ring_.size()) grow();
    // Ring sizes are powers of two (8, then doubling): wrap with a mask,
    // no division on the burst-drain hot path.
    ring_[(head_ + count_) & (ring_.size() - 1)] = msg;
    ++count_;
  }

  Message pop_front() {
    const Message msg = ring_[head_];
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
    return msg;
  }

 private:
  void grow() {
    std::vector<Message> bigger(ring_.empty() ? 8 : ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = ring_[(head_ + i) & (ring_.size() - 1)];
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<Message> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace wlsync::sim
