#pragma once
// Messages of the Section 2 model.
//
// Interrupts are modelled uniformly as messages (Section 2.1): an ordinary
// message carries text and the sender's name; START wakes a process up
// initially; TIMER is delivered when the process' physical clock reaches a
// designated value.  Our "text" is a fixed small payload (tag, value, aux),
// which is all any algorithm in this repository needs; value typically
// carries a clock time such as the round label T^i.

#include <cstdint>

namespace wlsync::sim {

enum class Kind : std::uint8_t {
  kStart = 0,  ///< initial system start-up
  kTimer = 1,  ///< physical clock reached a designated value
  kApp = 2,    ///< ordinary message from another process
};

struct Message {
  Kind kind = Kind::kApp;
  std::int32_t from = -1;  ///< sender id for kApp; -1 otherwise
  std::int32_t tag = 0;    ///< app: message type; timer: timer tag
  double value = 0.0;      ///< app payload (usually a clock time)
  std::int32_t aux = 0;    ///< secondary payload (round index, sub-round, ...)
};

[[nodiscard]] inline Message make_start() { return {Kind::kStart, -1, 0, 0.0, 0}; }

[[nodiscard]] inline Message make_timer(std::int32_t tag) {
  return {Kind::kTimer, -1, tag, 0.0, 0};
}

[[nodiscard]] inline Message make_app(std::int32_t from, std::int32_t tag,
                                      double value, std::int32_t aux = 0) {
  return {Kind::kApp, from, tag, value, aux};
}

}  // namespace wlsync::sim
