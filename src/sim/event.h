#pragma once
// Events and the execution-order relation of Section 2.3.
//
// The only event type in the model is receive(m, p).  Execution property 4
// requires that TIMER messages arriving at real time t be ordered after any
// non-TIMER messages for the same process arriving at t; we encode that as
// an ordering tier.  Remaining ties break by insertion sequence, which makes
// every execution of the engine deterministic.

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/message.h"

namespace wlsync::sim {

/// Internal engine routing for a popped event.
enum class EngineKind : std::uint8_t {
  kDeliver = 0,     ///< hand the message to the recipient process
  kNicArrive = 1,   ///< message reaches the recipient's bounded NIC buffer
  kNicService = 2,  ///< NIC hands the next buffered message to the process
};

struct Event {
  double time = 0.0;
  std::int32_t tier = 0;  ///< 0 = ordinary, 1 = TIMER (execution property 4)
  std::uint64_t seq = 0;  ///< insertion order; final deterministic tiebreak
  std::int32_t to = -1;
  EngineKind engine_kind = EngineKind::kDeliver;
  Message msg;
};

struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.tier != b.tier) return a.tier > b.tier;
    return a.seq > b.seq;
  }
};

/// Deterministic priority queue of pending events (the "message buffer" of
/// Section 2.2, with delivery times attached at insertion).
class EventQueue {
 public:
  void push(Event event) {
    event.seq = next_seq_++;
    queue_.push(event);
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] const Event& top() const { return queue_.top(); }

  Event pop() {
    Event event = queue_.top();
    queue_.pop();
    return event;
  }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wlsync::sim
