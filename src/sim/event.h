#pragma once
// Events and the execution-order relation of Section 2.3.
//
// The only event type in the model is receive(m, p).  Execution property 4
// requires that TIMER messages arriving at real time t be ordered after any
// non-TIMER messages for the same process arriving at t; we encode that as
// an ordering tier.  Remaining ties break by insertion sequence, which makes
// every execution of the engine deterministic.
//
// Storage and ordering live in the engine layer: payloads sit in a slab
// pool (engine/event_pool.h) and priority order is maintained over 4-byte
// handles (engine/indexed_queue.h, engine/scheduler.h).  The EventQueue
// below is the standalone pooled queue; the Simulator itself talks to a
// pluggable engine::SchedulerPolicy instead.

#include <cstdint>
#include <utility>

#include "engine/event_pool.h"
#include "engine/indexed_queue.h"
#include "sim/message.h"

namespace wlsync::sim {

/// Internal engine routing for a popped event.
enum class EngineKind : std::uint8_t {
  kDeliver = 0,     ///< hand the message to the recipient process
  kNicArrive = 1,   ///< message reaches the recipient's bounded NIC buffer
  kNicService = 2,  ///< NIC hands the next buffered message to the process
  kFanout = 3,      ///< batched broadcast: next delivery of a FanoutRecord
  /// Apply a net::DynamicsEvent to the live graph.  `to` is the index into
  /// the installed DynamicsSpec, NOT a process id; the message is empty.
  /// Scheduled at tier 2, so at its exact instant it fires after every
  /// ordinary message and TIMER — a message sent at time t still travels
  /// the graph as it was when it was sent.
  kScenario = 4,
};

struct Event {
  double time = 0.0;
  /// 0 = ordinary, 1 = TIMER (execution property 4), 2 = scenario
  /// (net/dynamics.h graph changes — last at their instant, so same-time
  /// deliveries see the pre-change graph).
  std::int32_t tier = 0;
  /// Final deterministic tiebreak: (origin id << 40) | origin-local program
  /// order (Simulator::alloc_seq).  Intrinsic to the originating process'
  /// execution, NOT a global insertion count — the property that lets a
  /// sharded engine allocate identical seqs without a shared counter.
  std::uint64_t seq = 0;
  std::int32_t to = -1;
  EngineKind engine_kind = EngineKind::kDeliver;
  /// kFanout only: handle of the broadcast's net::FanoutRecord.  The event
  /// is keyed (time, seq, to) by the record's *next* delivery and re-armed
  /// in place after each one, so one queue entry serves the whole fan-out.
  std::uint32_t link = 0xFFFFFFFFu;
  Message msg;
};

/// "a executes strictly before b" — the deterministic total order.
struct EventBefore {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (a.tier != b.tier) return a.tier < b.tier;
    return a.seq < b.seq;
  }
};

/// Inverted order for max-heap containers (kept for reference comparisons).
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    return EventBefore{}(b, a);
  }
};

/// The (time, tier, seq) order packed into 16 bytes, cached inside the
/// scheduler's containers so ordering never dereferences the pool.  Packing
/// tier into the top bits of seq assumes tier in [0, 3] and seq < 2^62 —
/// both structural in this model (tier is 0 ordinary / 1 TIMER, seq is an
/// insertion counter).
struct EventKey {
  double time = 0.0;
  std::uint64_t tier_seq = 0;

  [[nodiscard]] friend bool operator<(const EventKey& a,
                                      const EventKey& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.tier_seq < b.tier_seq;
  }
};

struct EventKeyOf {
  [[nodiscard]] EventKey operator()(const Event& event) const noexcept {
    return {event.time, (static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(event.tier))
                         << 62) |
                            event.seq};
  }
};

using EventPool = engine::SlabPool<Event>;
using EventHandle = EventPool::Handle;
using IndexedEventQueue = engine::IndexedQueue<EventPool, EventKeyOf>;

/// Deterministic priority queue of pending events (the "message buffer" of
/// Section 2.2, with delivery times attached at insertion).  Payloads are
/// stored once in a slab pool; only handles move during heap maintenance.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void push(const Event& event) { emplace(Event(event)); }
  void push(Event&& event) { emplace(std::move(event)); }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] const Event& top() const { return pool_[queue_.top()]; }

  Event pop() {
    const EventHandle handle = queue_.pop();
    Event event = std::move(pool_[handle]);
    pool_.release(handle);
    return event;
  }

 private:
  void emplace(Event&& event) {
    const EventHandle handle = pool_.acquire();
    Event& slot = pool_[handle];
    slot = std::move(event);
    slot.seq = next_seq_++;
    queue_.push(handle);
  }

  EventPool pool_;
  IndexedEventQueue queue_{pool_};
  std::uint64_t next_seq_ = 0;
};

}  // namespace wlsync::sim
