#pragma once
// Message-delay models (assumption A3: every delay lies in [delta-eps,
// delta+eps]).
//
// The analysis of the paper is worst-case over all delay assignments within
// the band, so we provide both benign (uniform) and extremal/adversarial
// models; the network layer validates that every produced delay respects A3.

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "util/rng.h"

namespace wlsync::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay for a message from -> to sent at send_time.  Must lie in
  /// [delta-eps, delta+eps]; `rng` is the model's private randomness.
  [[nodiscard]] virtual double delay(std::int32_t from, std::int32_t to,
                                     double send_time, util::Rng& rng) = 0;
};

/// Uniform in [delta-eps, delta+eps]; the benign default.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double delta, double eps) : delta_(delta), eps_(eps) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t, double,
                             util::Rng& rng) override {
    return rng.uniform(delta_ - eps_, delta_ + eps_);
  }

 private:
  double delta_, eps_;
};

/// Every message takes exactly delta + sign*eps.
class ExtremeDelay final : public DelayModel {
 public:
  ExtremeDelay(double delta, double eps, bool fast)
      : value_(fast ? delta - eps : delta + eps) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t, double,
                             util::Rng&) override {
    return value_;
  }

 private:
  double value_;
};

/// Each (from, to) link gets a fixed delay drawn once, uniform in the band.
/// Models asymmetric routes; stresses the delta-assumption in AV = T + delta - ...
class PerLinkDelay final : public DelayModel {
 public:
  PerLinkDelay(double delta, double eps, util::Rng rng)
      : delta_(delta), eps_(eps), rng_(rng) {}
  [[nodiscard]] double delay(std::int32_t from, std::int32_t to, double,
                             util::Rng&) override {
    const auto key = std::make_pair(from, to);
    auto it = link_.find(key);
    if (it == link_.end()) {
      it = link_.emplace(key, rng_.uniform(delta_ - eps_, delta_ + eps_)).first;
    }
    return it->second;
  }

 private:
  double delta_, eps_;
  util::Rng rng_;
  std::map<std::pair<std::int32_t, std::int32_t>, double> link_;
};

/// Splits recipients: low-id recipients always get the fastest legal delay,
/// high-id recipients the slowest.  An adversarial assignment that maximally
/// biases different processes' arrival-time estimates in opposite
/// directions — the worst case Lemma 5 is proved against.
class SplitDelay final : public DelayModel {
 public:
  SplitDelay(double delta, double eps, std::int32_t pivot)
      : delta_(delta), eps_(eps), pivot_(pivot) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t to, double,
                             util::Rng&) override {
    return to < pivot_ ? delta_ - eps_ : delta_ + eps_;
  }

 private:
  double delta_, eps_;
  std::int32_t pivot_;
};

[[nodiscard]] std::unique_ptr<DelayModel> make_uniform_delay(double delta, double eps);
[[nodiscard]] std::unique_ptr<DelayModel> make_extreme_delay(double delta, double eps,
                                                             bool fast);
[[nodiscard]] std::unique_ptr<DelayModel> make_per_link_delay(double delta, double eps,
                                                              util::Rng rng);
[[nodiscard]] std::unique_ptr<DelayModel> make_split_delay(double delta, double eps,
                                                           std::int32_t pivot);

}  // namespace wlsync::sim
