#pragma once
// Message-delay models (assumption A3: every delay lies in [delta-eps,
// delta+eps]).
//
// The analysis of the paper is worst-case over all delay assignments within
// the band, so we provide both benign (uniform) and extremal/adversarial
// models; the network layer validates that every produced delay respects A3.
//
// Two structural contracts matter beyond the band itself:
//
//   * Thread-safety / order-independence.  delay() receives the SENDER's
//     private Rng stream and must not keep mutable per-call state of its
//     own: the conservative PDES engine (engine/pdes.h) evaluates senders
//     from different shards concurrently, and bit-identical replay requires
//     that the value for a given (link, draw index) not depend on which
//     shard asks first.  PerLinkDelay therefore derives its fixed per-link
//     value by hashing instead of memoizing first-query draws.
//
//   * Lookahead floors.  Conservative parallel simulation advances a shard
//     while every cross-cut message is provably at least `lookahead` away;
//     that lookahead is the infimum of this model's delays over the cut
//     links, exposed by lower_bound() (per ordered pair) and
//     global_lower_bound() (over all pairs — the floor a Byzantine sender,
//     whose point-to-point sends the topology does not restrict, can
//     reach).  A model that cannot promise a positive floor reports 0 and
//     simply makes the spec ineligible for PDES.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/rng.h"

namespace wlsync::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay for a message from -> to sent at send_time.  Must lie in
  /// [delta-eps, delta+eps]; `rng` is the sender's private randomness.
  [[nodiscard]] virtual double delay(std::int32_t from, std::int32_t to,
                                     double send_time, util::Rng& rng) = 0;
  /// Greatest lower bound of the delays this model can produce on the
  /// ordered link from -> to.  0 (the default) means "no usable floor" and
  /// disqualifies the model from conservative parallel execution.
  [[nodiscard]] virtual double lower_bound(std::int32_t from,
                                           std::int32_t to) const {
    (void)from;
    (void)to;
    return 0.0;
  }
  /// Greatest lower bound over ALL ordered pairs (not just topology edges);
  /// the floor that holds even for adversarial point-to-point sends.
  [[nodiscard]] virtual double global_lower_bound() const { return 0.0; }
};

/// Uniform in [delta-eps, delta+eps]; the benign default.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(double delta, double eps) : delta_(delta), eps_(eps) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t, double,
                             util::Rng& rng) override {
    return rng.uniform(delta_ - eps_, delta_ + eps_);
  }
  [[nodiscard]] double lower_bound(std::int32_t, std::int32_t) const override {
    return delta_ - eps_;
  }
  [[nodiscard]] double global_lower_bound() const override {
    return delta_ - eps_;
  }

 private:
  double delta_, eps_;
};

/// Every message takes exactly delta + sign*eps.
class ExtremeDelay final : public DelayModel {
 public:
  ExtremeDelay(double delta, double eps, bool fast)
      : value_(fast ? delta - eps : delta + eps) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t, double,
                             util::Rng&) override {
    return value_;
  }
  [[nodiscard]] double lower_bound(std::int32_t, std::int32_t) const override {
    return value_;
  }
  [[nodiscard]] double global_lower_bound() const override { return value_; }

 private:
  double value_;
};

/// Each (from, to) link gets a fixed delay, uniform in the band.  Models
/// asymmetric routes; stresses the delta-assumption in AV = T + delta - ...
/// The value is DERIVED (seed hashed with the link), not memoized from
/// first-query draws: every caller — any thread, any query order — reads
/// the same double for the same link, which is what lets sharded engines
/// share one instance.
class PerLinkDelay final : public DelayModel {
 public:
  PerLinkDelay(double delta, double eps, util::Rng rng)
      : delta_(delta), eps_(eps), base_(rng()) {}
  [[nodiscard]] double delay(std::int32_t from, std::int32_t to, double,
                             util::Rng&) override {
    std::uint64_t sm = base_ ^
                       (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
                        << 32) ^
                       static_cast<std::uint64_t>(static_cast<std::uint32_t>(to));
    std::uint64_t z = util::splitmix64_next(sm);
    z = util::splitmix64_next(sm) ^ z;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return (delta_ - eps_) + 2.0 * eps_ * u;
  }
  [[nodiscard]] double lower_bound(std::int32_t, std::int32_t) const override {
    return delta_ - eps_;
  }
  [[nodiscard]] double global_lower_bound() const override {
    return delta_ - eps_;
  }

 private:
  double delta_, eps_;
  std::uint64_t base_;
};

/// Splits recipients: low-id recipients always get the fastest legal delay,
/// high-id recipients the slowest.  An adversarial assignment that maximally
/// biases different processes' arrival-time estimates in opposite
/// directions — the worst case Lemma 5 is proved against.
class SplitDelay final : public DelayModel {
 public:
  SplitDelay(double delta, double eps, std::int32_t pivot)
      : delta_(delta), eps_(eps), pivot_(pivot) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t to, double,
                             util::Rng&) override {
    return to < pivot_ ? delta_ - eps_ : delta_ + eps_;
  }
  [[nodiscard]] double lower_bound(std::int32_t, std::int32_t to) const override {
    return to < pivot_ ? delta_ - eps_ : delta_ + eps_;
  }
  [[nodiscard]] double global_lower_bound() const override {
    // Some recipient below the pivot may exist whenever pivot > 0.
    return pivot_ > 0 ? delta_ - eps_ : delta_ + eps_;
  }

 private:
  double delta_, eps_;
  std::int32_t pivot_;
};

/// Exponentially distributed slack over the fast floor, truncated to the A3
/// band: delay = (delta - eps) + min(Exp(eps/2), 2 eps).  The heavy-ish
/// right tail clusters most messages near the floor — the shape real
/// datagram latencies take — while truncation keeps every draw legal.  The
/// floor delta - eps is exact (infimum of the support), so the model keeps
/// full conservative-lookahead eligibility.
class TruncExpDelay final : public DelayModel {
 public:
  TruncExpDelay(double delta, double eps)
      : lo_(delta - eps), span_(2.0 * eps), mean_(eps / 2.0) {}
  [[nodiscard]] double delay(std::int32_t, std::int32_t, double,
                             util::Rng& rng) override {
    // Inverse-CDF draw; uniform() < 1 keeps log1p finite.
    const double x = -mean_ * std::log1p(-rng.uniform());
    return lo_ + std::min(x, span_);
  }
  [[nodiscard]] double lower_bound(std::int32_t, std::int32_t) const override {
    return lo_;
  }
  [[nodiscard]] double global_lower_bound() const override { return lo_; }

 private:
  double lo_, span_, mean_;
};

[[nodiscard]] std::unique_ptr<DelayModel> make_uniform_delay(double delta, double eps);
[[nodiscard]] std::unique_ptr<DelayModel> make_extreme_delay(double delta, double eps,
                                                             bool fast);
[[nodiscard]] std::unique_ptr<DelayModel> make_per_link_delay(double delta, double eps,
                                                              util::Rng rng);
[[nodiscard]] std::unique_ptr<DelayModel> make_split_delay(double delta, double eps,
                                                           std::int32_t pivot);
[[nodiscard]] std::unique_ptr<DelayModel> make_trunc_exp_delay(double delta,
                                                               double eps);

}  // namespace wlsync::sim
