#include "sim/delay.h"

namespace wlsync::sim {

std::unique_ptr<DelayModel> make_uniform_delay(double delta, double eps) {
  return std::make_unique<UniformDelay>(delta, eps);
}

std::unique_ptr<DelayModel> make_extreme_delay(double delta, double eps, bool fast) {
  return std::make_unique<ExtremeDelay>(delta, eps, fast);
}

std::unique_ptr<DelayModel> make_per_link_delay(double delta, double eps,
                                                util::Rng rng) {
  return std::make_unique<PerLinkDelay>(delta, eps, rng);
}

std::unique_ptr<DelayModel> make_split_delay(double delta, double eps,
                                             std::int32_t pivot) {
  return std::make_unique<SplitDelay>(delta, eps, pivot);
}

std::unique_ptr<DelayModel> make_trunc_exp_delay(double delta, double eps) {
  return std::make_unique<TruncExpDelay>(delta, eps);
}

}  // namespace wlsync::sim
