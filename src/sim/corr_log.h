#pragma once
// Per-process history of the CORR variable (Section 3.2).
//
// CORR_p(t) is the value of p's correction variable at real time t; the
// local time is L_p(t) = Ph_p(t) + CORR_p(t).  The simulator records every
// change so that analysis code can evaluate L_p at arbitrary real times
// after the fact, without instrumenting the algorithms.
//
// Two change shapes are supported:
//   * steps  — the basic algorithm's CORR := CORR + ADJ;
//   * ramps  — the Section 4.1 remark that a negative adjustment can be
//     "stretched out over the resynchronization interval"; during a ramp the
//     *displayed* correction moves linearly from the old to the new value
//     while the *target* correction (used for timer arithmetic) is already
//     the new value.

#include <cassert>
#include <vector>

namespace wlsync::sim {

class CorrLog {
 public:
  explicit CorrLog(double initial_corr) {
    entries_.push_back({-1e300, initial_corr, initial_corr, 0.0});
  }

  /// Instantaneous change at real time t.
  void step(double t, double new_corr) {
    assert(t >= entries_.back().t);
    entries_.push_back({t, new_corr, new_corr, 0.0});
  }

  /// Pre-sizes the entry vector for a run whose change count is known up
  /// front (rounds * exchanges), so steady-state recording never reallocates.
  void reserve(std::size_t entries) { entries_.reserve(entries + 1); }

  /// Linear slew from the current displayed value to new_corr over
  /// `duration` seconds starting at t.
  void ramp(double t, double new_corr, double duration) {
    assert(t >= entries_.back().t);
    assert(duration > 0.0);
    entries_.push_back({t, displayed_at(t), new_corr, duration});
  }

  /// Target correction at time t (what timer arithmetic uses).
  [[nodiscard]] double target_at(double t) const { return find(t).target; }

  /// Displayed correction at time t (what local-time probes see); differs
  /// from target only inside a ramp window.
  [[nodiscard]] double displayed_at(double t) const {
    const Entry& e = find(t);
    if (e.duration <= 0.0 || t >= e.t + e.duration) return e.target;
    const double frac = (t - e.t) / e.duration;
    return e.start + (e.target - e.start) * frac;
  }

  /// Latest target value (current CORR for the running process).
  [[nodiscard]] double current_target() const { return entries_.back().target; }

  [[nodiscard]] std::size_t changes() const noexcept {
    return trimmed_ + entries_.size() - 1;
  }

  /// Entries currently held (after any truncation).
  [[nodiscard]] std::size_t retained_entries() const noexcept {
    return entries_.size();
  }

  /// Approximate heap footprint of the retained history (capacity-based:
  /// truncation keeps capacity, so this is what the allocator really holds).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return entries_.capacity() * sizeof(Entry);
  }

  /// Bounded-memory mode (analysis/observe.h): discards every entry that
  /// cannot affect a query at time >= t — all entries strictly before the
  /// governing entry of t.  Queries at earlier times become invalid (they
  /// would see the governing entry's value); the streaming observer only
  /// ever truncates behind its fully-drained sample frontier.  Returns the
  /// number of entries removed; Walkers stay valid across truncation (their
  /// cursors are absolute, rebased against trimmed()).  Removal is a
  /// front-erase: no allocation, capacity retained, so steady-state
  /// truncation is allocation-free and the footprint stays bounded by the
  /// high-water entry count between truncations.
  std::size_t truncate_before(double t) {
    std::size_t keep = entries_.size() - 1;
    while (keep > 0 && entries_[keep].t > t) --keep;
    if (keep == 0) return 0;
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(keep));
    trimmed_ += keep;
    return keep;
  }

  /// Entries discarded by truncate_before so far.
  [[nodiscard]] std::size_t trimmed() const noexcept { return trimmed_; }

 private:
  struct Entry {
    double t;         ///< when the change began
    double start;     ///< displayed value at the start of the change
    double target;    ///< value after the change completes
    double duration;  ///< 0 for steps
  };

 public:
  /// Single-pass sampling cursor: displayed_at(t) for non-decreasing t,
  /// walking the entry list once instead of scanning from the back per
  /// query.  Bit-identical to CorrLog::displayed_at; one Walker per log,
  /// logs shardable across threads (reads only).  The cursor is held as an
  /// absolute entry ordinal so it survives truncate_before on its log (a
  /// truncated-away position clamps to the log's first retained entry,
  /// which is exactly the governing entry for any still-valid query time).
  class Walker {
   public:
    explicit Walker(const CorrLog& log) : log_(log) {}

    [[nodiscard]] double displayed_at(double t) {
      const std::vector<Entry>& entries = log_.entries_;
      std::size_t i = idx_ >= log_.trimmed_ ? idx_ - log_.trimmed_ : 0;
      while (i + 1 < entries.size() && entries[i + 1].t <= t) ++i;
      idx_ = log_.trimmed_ + i;
      const Entry& e = entries[i];
      if (e.duration <= 0.0 || t >= e.t + e.duration) return e.target;
      const double frac = (t - e.t) / e.duration;
      return e.start + (e.target - e.start) * frac;
    }

   private:
    const CorrLog& log_;
    std::size_t idx_ = 0;  ///< absolute ordinal (trimmed_ + vector index)
  };

 private:

  [[nodiscard]] const Entry& find(double t) const {
    // Linear scan from the back: queries overwhelmingly target recent times.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->t <= t) return *it;
    }
    return entries_.front();
  }

  std::vector<Entry> entries_;
  std::size_t trimmed_ = 0;  ///< entries dropped from the front so far
};

}  // namespace wlsync::sim
