#pragma once
// The execution engine of Section 2.3.
//
// A Simulator owns the processes, their physical clocks, the message buffer
// (a slab-pooled EventPool ordered by a pluggable engine::SchedulerPolicy),
// the network layer (an optional net::Topology exchange graph plus batched
// fan-out delivery — one scheduler entry per in-flight broadcast instead of
// one per recipient) and the delay model, and produces executions that
// satisfy the six execution properties of the model:
//   1/5. events fire exactly at their buffered delivery times, finitely many
//        before any fixed time (the priority queue);
//   2/3. configurations chain by construction (single-threaded dispatch);
//   4.   TIMER messages at real time t are ordered after ordinary messages
//        for the same time (ordering tier);
//   6.   a step changes only the recipient's state and the buffer (processes
//        only act through Context).
//
// Faulty processes (Byzantine, assumption A2) are registered as such and
// receive an AdversaryContext; everyone else gets the model-legal Context.
// An optional bounded NIC buffer per recipient reproduces the Section 9.3
// Ethernet datagram behaviour ("if too many arrive at once, the old ones
// are overwritten").

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "clock/physical_clock.h"
#include "engine/scheduler.h"
#include "net/dynamics.h"
#include "net/fanout.h"
#include "net/topology.h"
#include "proc/process.h"
#include "sim/corr_log.h"
#include "sim/delay.h"
#include "sim/event.h"
#include "sim/nic.h"
#include "sim/observer.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/spsc_queue.h"

namespace wlsync::core {
class RoundFastPath;
}  // namespace wlsync::core

namespace wlsync::engine {
class PdesEngine;
}  // namespace wlsync::engine

namespace wlsync::sim {

/// A cross-shard event in flight between PDES lanes (engine/pdes.h): the
/// sending lane draws the delay and allocates the seq on its side (both are
/// per-sender streams, so the values are exactly the serial engine's), and
/// the receiving lane schedules it verbatim.  Always ordinary tier — only
/// message deliveries cross the cut; timers, STARTs and NIC service events
/// are self-targeted.
struct RemoteEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::int32_t to = -1;
  EngineKind engine_kind = EngineKind::kDeliver;
  Message msg;
};

/// Mid-execution hook the PDES engine installs on each shard lane: run_lane
/// invokes poll() every few dispatches, so the lane ingests cross-shard
/// arrivals WHILE it executes its window instead of only at the epoch
/// barrier.  Safe because the conservative lookahead guarantees every
/// arrival lands strictly beyond the current window.  Null on the serial
/// path (one predictable branch per dispatch).
class LanePoller {
 public:
  virtual ~LanePoller() = default;
  virtual void poll() = 0;
};

struct SimConfig {
  double delta = 0.01;  ///< median message delay (A3)
  double eps = 0.001;   ///< delay uncertainty (A3)
  std::uint64_t seed = 1;
  std::optional<NicConfig> nic;       ///< engaged only for Section 9.3 studies
  std::uint64_t max_events = 50'000'000;  ///< runaway guard
  /// Event-scheduling policy; a pure performance knob — every policy
  /// dispatches the identical deterministic (time, tier, seq) order.  The
  /// kAuto default selects by observed queue depth; set an explicit kind
  /// to override.
  engine::SchedulerKind scheduler = engine::SchedulerKind::kAuto;
  /// Exchange graph broadcasts route through.  Unset = the paper's fully
  /// connected model (recipients 0..n-1), with no adjacency materialized.
  /// When set, its node count must equal the registered process count.
  std::optional<net::Topology> topology;
  /// Batched fan-out: a broadcast occupies ONE scheduler entry that re-arms
  /// per recipient (per-link delays still drawn independently, in the same
  /// order, so executions are bit-identical either way — pinned by
  /// tests/topology_test.cpp).  false = the seed's per-recipient
  /// scheduling, kept as the measured/reference baseline.
  bool batch_fanout = true;
};

class Simulator {
 public:
  /// `delay` may be null, in which case a UniformDelay(delta, eps) is used.
  Simulator(SimConfig config, std::unique_ptr<DelayModel> delay);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a process with its clock and initial CORR value.  If
  /// start_real_time >= 0, a START message is buffered for that time
  /// (assumption A4 wakes process p at real time c0_p(T0)).
  /// Returns the process id.
  std::int32_t add_process(proc::ProcessPtr process,
                           std::unique_ptr<clk::PhysicalClock> clock,
                           double initial_corr, bool faulty,
                           double start_real_time);

  /// Buffers a START for `id` at a later real time (reintegration wake-up).
  void schedule_start(std::int32_t id, double real_time);

  /// Installs a dynamics schedule (net/dynamics.h): every event becomes a
  /// tier-2 scenario entry in the queue, applied at its exact simulated
  /// instant in deterministic (time, tier, seq) order.  Topology-changing
  /// schedules require config.topology to be set (the analysis layer
  /// materializes the full mesh when needed) and rebuild it live via
  /// Topology::from_adjacency, so neighbor views, local-f clamps and
  /// batched fan-out all track the change from the next broadcast on.
  /// Messages already in flight still deliver (FanoutRecords snapshot
  /// their delivery lists), and point-to-point send stays unrestricted.
  /// Call after every process is registered and before running; an empty
  /// spec is a no-op.  The fast path and PDES engine refuse simulators
  /// with dynamics installed (see has_dynamics).
  void set_dynamics(const net::DynamicsSpec& dynamics);

  /// Whether a non-empty dynamics schedule is installed (engines that
  /// assume a static graph refuse such simulators).
  [[nodiscard]] bool has_dynamics() const noexcept { return has_dynamics_; }
  /// Bumped each time a scenario event actually changed the live graph.
  /// Processes compare against the version they last built neighbor state
  /// for (proc::Context::topology_version) and resync when it moved.
  [[nodiscard]] std::uint32_t topology_version() const noexcept {
    return topology_version_;
  }
  /// Scenario events applied so far (graph-changing or churn markers).
  [[nodiscard]] std::int64_t dynamics_applied() const noexcept {
    return dynamics_applied_;
  }

  /// Attaches a passive observer (non-owning; must outlive the run).
  void add_trace_sink(TraceSink* sink);

  /// Attaches (or, with nullptr, detaches) the streaming Observer
  /// (sim/observer.h; non-owning, must outlive the run).  At most one;
  /// with none attached the hot path pays a single always-false double
  /// compare per event and nothing else.
  void set_observer(Observer* observer);

  /// Bounded-memory mode: truncates every clock's segment list and CORR
  /// log behind `t` (see CorrLog::truncate_before).  Queries at times >= t
  /// are unaffected; the caller (the streaming observer) guarantees no
  /// future query targets an earlier time.  Returns entries removed.
  std::size_t truncate_history_before(double t);

  /// Pre-sizes every process' CORR log for a run whose adjustment count is
  /// known up front (rounds * k_exchanges + slack): steady-state recording
  /// then never reallocates, which keeps the fast path's round loop
  /// allocation-free (bench_micro gates on this).
  void reserve_history(std::size_t changes_per_process);

  /// Approximate heap footprint of all retained measurement history
  /// (CORR logs + clock segment lists, capacity-based).
  [[nodiscard]] std::size_t history_bytes() const noexcept;
  /// Retained history entries (CORR entries + clock breakpoints).
  [[nodiscard]] std::size_t history_entries() const noexcept;

  /// Runs all events with time <= real_time.
  void run_until(double real_time);

  /// Processes one event; returns false when the buffer is empty.
  bool step();

  [[nodiscard]] double current_time() const noexcept {
    return main_.current_time;
  }
  [[nodiscard]] std::int32_t process_count() const noexcept {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] bool is_faulty(std::int32_t id) const { return nodes_[idx(id)].faulty; }
  [[nodiscard]] const clk::PhysicalClock& clock(std::int32_t id) const {
    return *nodes_[idx(id)].clock;
  }
  [[nodiscard]] const CorrLog& corr_log(std::int32_t id) const {
    return nodes_[idx(id)].corr;
  }
  [[nodiscard]] proc::Process& process(std::int32_t id) {
    return *nodes_[idx(id)].process;
  }

  /// L_p(t) = Ph_p(t) + CORR_p(t) with displayed (possibly slewing) CORR.
  [[nodiscard]] double local_time(std::int32_t id, double real_time) const {
    const Node& node = nodes_[idx(id)];
    return node.clock->now(real_time) + node.corr.displayed_at(real_time);
  }

  /// Closed out-neighborhood of `id` in the exchange graph (sorted, self
  /// included); all of 0..n-1 when no topology is configured.
  [[nodiscard]] std::span<const std::int32_t> neighbors_of(std::int32_t id) const;

  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return sum_lanes(&Lane::messages_sent);
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return sum_lanes(&Lane::events_processed);
  }
  [[nodiscard]] std::uint64_t nic_dropped() const noexcept {
    return sum_lanes(&Lane::nic_dropped);
  }
  /// Whether the Section 9.3 NIC ingress model is engaged.
  [[nodiscard]] bool nic_enabled() const noexcept {
    return config_.nic.has_value();
  }
  /// Per-process ingress accounting (all zeros when the NIC is off).
  [[nodiscard]] const NicStats& nic_stats(std::int32_t id) const {
    return nodes_[idx(id)].nic.stats;
  }
  [[nodiscard]] double delta() const noexcept { return config_.delta; }
  [[nodiscard]] double eps() const noexcept { return config_.eps; }

  // Engine pressure counters (bench_micro / bench_topology):
  /// Scheduler push + pop operations performed so far.
  [[nodiscard]] std::uint64_t queue_ops() const noexcept {
    return sum_lanes(&Lane::queue_pushes) + sum_lanes(&Lane::queue_pops);
  }
  /// High-water mark of pending scheduler entries (per lane, maxed).
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    std::size_t peak = main_.peak_pending;
    for (const auto& lane : shard_lanes_) {
      peak = std::max(peak, lane->peak_pending);
    }
    return peak;
  }
  /// Fan-out deliveries made directly (no queue round-trip) because the
  /// next recipient still preceded every pending event.
  [[nodiscard]] std::uint64_t fanout_direct() const noexcept {
    return sum_lanes(&Lane::fanout_direct);
  }
  /// Number of attached trace sinks (the analysis layer uses this to decide
  /// whether a run's sinks are the mergeable set the PDES engine supports).
  [[nodiscard]] std::size_t trace_sink_count() const noexcept {
    return main_.sinks.size();
  }

 private:
  friend class SimContext;
  // The round fast path (core/fastpath.h) replays broadcast/update events
  // through the real process code with a mirrored Context, so it needs the
  // same internals SimContext touches plus the scheduler/pool for its
  // inject-and-bail protocol.
  friend class core::RoundFastPath;
  // The conservative parallel engine (engine/pdes.h) shards the event flow
  // into per-worker Lanes and runs them under epoch barriers; it needs to
  // create/dissolve lanes and move events between them.
  friend class engine::PdesEngine;

  struct Nic {
    NicQueue pending;
    NicStats stats;
    double next_free = -1e300;
    double last_arrival = -1e300;  ///< burst tracking: previous arrival time
    std::size_t burst = 0;         ///< arrivals at exactly last_arrival
    bool service_scheduled = false;
  };

  struct Node {
    proc::ProcessPtr process;
    std::unique_ptr<clk::PhysicalClock> clock;
    CorrLog corr;
    bool faulty = false;
    Nic nic;
    /// The sender's private A3 delay stream.  Delay draws consume ONLY this
    /// generator, in a per-sender order (neighbor order within a broadcast,
    /// program order across broadcasts) — never a global stream — so a
    /// sharded engine that executes senders concurrently reproduces the
    /// serial draws exactly.
    util::Rng delay_rng;
    /// Per-origin event sequence counter; see alloc_seq.
    std::uint64_t next_seq = 0;
  };

  /// One independent slice of the event flow: an event pool + scheduler +
  /// fan-out pool + clock + pressure counters.  The serial engine is
  /// exactly one lane (main_); the PDES engine adds one lane per topology
  /// shard, each driven by its own worker thread.  Everything a dispatch
  /// touches that is not per-process Node state lives here, so two lanes
  /// never share mutable state — cross-lane traffic rides SPSC channels.
  struct Lane {
    EventPool pool;
    std::unique_ptr<engine::SchedulerPolicy> scheduler;
    net::FanoutPool fanouts;
    /// Passive observers of this lane's events.  The serial engine's public
    /// add_trace_sink appends to main_'s list; the PDES engine hands each
    /// lane its own (mergeable) sinks.
    std::vector<TraceSink*> sinks;
    double current_time = 0.0;
    std::int32_t shard = 0;  ///< index into shard_lanes_ (0 for main_)
    std::uint64_t messages_sent = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t nic_dropped = 0;
    std::uint64_t queue_pushes = 0;
    std::uint64_t queue_pops = 0;
    std::uint64_t fanout_direct = 0;
    std::size_t peak_pending = 0;
    /// PDES only (engine/pdes.h): direct SPSC channels to every other lane,
    /// indexed by destination shard (own slot null).  A cross-cut send is
    /// pushed the moment it is drawn — visible to the receiving lane's
    /// mid-epoch polls — replacing the old publish-phase outbox.  Empty on
    /// the serial path.
    std::vector<util::SpscQueue<RemoteEvent>*> channels_out;
    /// PDES only: per-node flags for "an event delivered here can produce
    /// cross-cut traffic in one hop" (cut-edge endpoints plus every faulty
    /// process — Byzantine sends ignore the topology).  The engine's
    /// adaptive lookahead folds each lane's next boundary event into the
    /// epoch window.  Null serially.
    const std::vector<char>* boundary = nullptr;
    /// PDES only: min-heap (std::greater order) of pending boundary-event
    /// times in this lane.  A conservative superset — entries whose events
    /// already executed are lazily pruned against the scheduler head at
    /// each epoch fold, which can never drop a live boundary event because
    /// the scheduler head is a lower bound on everything still pending.
    std::vector<double> boundary_heap;
    /// PDES only: overlapped-drain hook, called every 64 dispatches.
    LanePoller* poller = nullptr;
    std::uint32_t poll_tick = 0;
  };

  template <typename T>
  [[nodiscard]] T sum_lanes(T Lane::* member) const noexcept {
    T total = main_.*member;
    for (const auto& lane : shard_lanes_) total += (*lane).*member;
    return total;
  }

  [[nodiscard]] std::size_t idx(std::int32_t id) const;

  /// Shard index owning `pid`: lane_of_ when the PDES engine is active,
  /// -1 (meaning main_) otherwise.
  [[nodiscard]] std::int32_t lane_index(std::int32_t pid) const {
    return lane_of_.empty() ? -1 : lane_of_[idx(pid)];
  }
  [[nodiscard]] Lane& owner_lane(std::int32_t pid) {
    const std::int32_t shard = lane_index(pid);
    return shard < 0 ? main_ : *shard_lanes_[static_cast<std::size_t>(shard)];
  }

  /// Allocates the next deterministic tie-break seq for an event originated
  /// by `origin` (the sender for message deliveries, the owning process for
  /// timers / STARTs / NIC service).  Packed (origin << 40) | local so seqs
  /// from different origins never collide, total order is (origin, local
  /// program order), and the whole value stays below the 2^62 ceiling
  /// EventKeyOf's tier packing requires (origin < 2^22, enforced at
  /// registration; 2^40 events per origin dwarfs any max_events budget).
  /// The resulting order is intrinsic to each process' execution — NOT a
  /// global insertion count — which is what makes a sharded engine's
  /// allocation identical to the serial engine's.
  [[nodiscard]] std::uint64_t alloc_seq(std::int32_t origin) {
    Node& node = nodes_[idx(origin)];
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin))
            << 40) |
           node.next_seq++;
  }

  /// Builds an event in place in the lane's pool (stamping its seq from
  /// `origin`'s counter) and hands the handle to the lane's scheduler — the
  /// one entry point for all fresh scheduling.
  void schedule_event(Lane& lane, double time, std::int32_t tier,
                      std::int32_t origin, std::int32_t to,
                      EngineKind engine_kind, const Message& msg);
  /// Schedules an event whose seq was already allocated (a RemoteEvent
  /// crossing lanes, or a leftover event migrating at lane dissolve).
  void schedule_raw(Lane& lane, double time, std::int32_t tier,
                    std::uint64_t seq, std::int32_t to, EngineKind engine_kind,
                    const Message& msg);
  /// Wraps lane.scheduler->push with the pressure counters.
  void push_handle(Lane& lane, EventHandle handle);

  /// Executes one popped event: advances the lane clock, routes by engine
  /// kind, recycles the slot.  The handle must have just been popped from
  /// this lane.  Events after `limit` must not execute: a fan-out whose
  /// next delivery lies beyond it is re-armed instead (run_until passes its
  /// horizon; step passes +infinity).
  void dispatch(Lane& lane, EventHandle handle, double limit);
  /// Batched fan-out dispatch (EngineKind::kFanout).
  void dispatch_fanout(Lane& lane, EventHandle handle, double limit);
  /// Pops and dispatches every event with time <= limit (inclusive, like
  /// pop_if_not_after).  Does NOT advance the lane clock to limit.
  void run_lane(Lane& lane, double limit);

  /// Per-delivery slice of the max_events runaway guard (lane-local; the
  /// PDES engine additionally checks the cross-lane sum at each barrier).
  void count_event(Lane& lane, EventHandle handle);

  void do_send(Lane& lane, std::int32_t from, std::int32_t to, std::int32_t tag,
               double value, std::int32_t aux);
  /// Fan-out to the sender's exchange-graph neighborhood — batched into a
  /// single scheduler entry unless config_.batch_fanout is off.  Cross-lane
  /// recipients are split into RemoteEvents (their seqs come out of the
  /// same per-sender allocation order, so the serial tie-break survives).
  void do_broadcast(Lane& lane, std::int32_t from, std::int32_t tag,
                    double value, std::int32_t aux);
  /// Draws the A3-validated per-link delay for a message sent now.
  [[nodiscard]] double draw_delay(Lane& lane, std::int32_t from, std::int32_t to);
  void do_set_timer_logical(Lane& lane, std::int32_t pid, double logical_time,
                            std::int32_t tag);
  void do_set_timer_physical(Lane& lane, std::int32_t pid, double physical_time,
                             std::int32_t tag);
  void do_set_timer_real(Lane& lane, std::int32_t pid, double real_time,
                         std::int32_t tag);
  void do_add_corr(Lane& lane, std::int32_t pid, double adj,
                   double amortize_duration);
  /// Message reaches `pid` at the lane's current time: NIC buffering when
  /// configured, direct delivery otherwise (the shared arrival path of the
  /// per-recipient and batched engines).
  void arrive(Lane& lane, std::int32_t pid, const Message& msg);
  void nic_arrive(Lane& lane, std::int32_t pid, const Message& msg);
  void deliver(Lane& lane, std::int32_t pid, const Message& msg);
  /// Applies dynamics_.events[which] to the live graph (EngineKind::
  /// kScenario dispatch); bumps topology_version_ only when the adjacency
  /// actually changed.
  void apply_dynamics(std::int32_t which);

  /// Fires Observer::on_advance when simulated time reached the cached
  /// next-interest instant.  Called right after the lane clock moves and
  /// BEFORE the event at that time is delivered, so the observer sees
  /// every instant strictly before the lane's time as final.  observer_next_
  /// is +inf with no observer attached (always, for shard lanes — the PDES
  /// engine requires no observer): the whole idle cost is one compare.
  void observe_advance(Lane& lane) {
    if (lane.current_time >= observer_next_) {
      observer_next_ = observer_->on_advance(lane.current_time);
    }
  }

  SimConfig config_;
  std::unique_ptr<DelayModel> delay_;
  std::vector<Node> nodes_;
  Observer* observer_ = nullptr;
  double observer_next_ = std::numeric_limits<double>::infinity();
  /// Identity neighbor list for the implicit full mesh, grown on demand.
  /// Warm (via neighbors_of) before spawning lane workers.
  mutable std::vector<std::int32_t> all_ids_;
  /// The serial engine's lane; also the merge target when shard lanes
  /// dissolve.  Public accessors report main_ plus any live shard lanes.
  Lane main_;
  /// PDES mode (engine/pdes.h): one lane per topology shard, unique_ptr so
  /// lane addresses stay stable (schedulers hold pool references).  Empty
  /// on the serial path.
  std::vector<std::unique_ptr<Lane>> shard_lanes_;
  /// pid -> shard index while shard_lanes_ is live; empty otherwise.
  std::vector<std::int32_t> lane_of_;
  /// Installed dynamics schedule (empty unless set_dynamics was called
  /// with events).  Scenario events index into dynamics_.events.
  net::DynamicsSpec dynamics_;
  bool has_dynamics_ = false;
  /// Live open adjacency (self-loops excluded) maintained by
  /// apply_dynamics, plus the run-start baseline kMerge restores from.
  /// Populated only for topology-changing schedules.
  std::vector<std::vector<std::int32_t>> adjacency_;
  std::vector<std::vector<std::int32_t>> base_adjacency_;
  std::uint32_t topology_version_ = 0;
  std::int64_t dynamics_applied_ = 0;
};

}  // namespace wlsync::sim
