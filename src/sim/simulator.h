#pragma once
// The execution engine of Section 2.3.
//
// A Simulator owns the processes, their physical clocks, the message buffer
// (a slab-pooled EventPool ordered by a pluggable engine::SchedulerPolicy),
// the network layer (an optional net::Topology exchange graph plus batched
// fan-out delivery — one scheduler entry per in-flight broadcast instead of
// one per recipient) and the delay model, and produces executions that
// satisfy the six execution properties of the model:
//   1/5. events fire exactly at their buffered delivery times, finitely many
//        before any fixed time (the priority queue);
//   2/3. configurations chain by construction (single-threaded dispatch);
//   4.   TIMER messages at real time t are ordered after ordinary messages
//        for the same time (ordering tier);
//   6.   a step changes only the recipient's state and the buffer (processes
//        only act through Context).
//
// Faulty processes (Byzantine, assumption A2) are registered as such and
// receive an AdversaryContext; everyone else gets the model-legal Context.
// An optional bounded NIC buffer per recipient reproduces the Section 9.3
// Ethernet datagram behaviour ("if too many arrive at once, the old ones
// are overwritten").

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "clock/physical_clock.h"
#include "engine/scheduler.h"
#include "net/fanout.h"
#include "net/topology.h"
#include "proc/process.h"
#include "sim/corr_log.h"
#include "sim/delay.h"
#include "sim/event.h"
#include "sim/nic.h"
#include "sim/observer.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace wlsync::core {
class RoundFastPath;
}  // namespace wlsync::core

namespace wlsync::sim {

struct SimConfig {
  double delta = 0.01;  ///< median message delay (A3)
  double eps = 0.001;   ///< delay uncertainty (A3)
  std::uint64_t seed = 1;
  std::optional<NicConfig> nic;       ///< engaged only for Section 9.3 studies
  std::uint64_t max_events = 50'000'000;  ///< runaway guard
  /// Event-scheduling policy; a pure performance knob — every policy
  /// dispatches the identical deterministic (time, tier, seq) order.  The
  /// kAuto default selects by observed queue depth; set an explicit kind
  /// to override.
  engine::SchedulerKind scheduler = engine::SchedulerKind::kAuto;
  /// Exchange graph broadcasts route through.  Unset = the paper's fully
  /// connected model (recipients 0..n-1), with no adjacency materialized.
  /// When set, its node count must equal the registered process count.
  std::optional<net::Topology> topology;
  /// Batched fan-out: a broadcast occupies ONE scheduler entry that re-arms
  /// per recipient (per-link delays still drawn independently, in the same
  /// order, so executions are bit-identical either way — pinned by
  /// tests/topology_test.cpp).  false = the seed's per-recipient
  /// scheduling, kept as the measured/reference baseline.
  bool batch_fanout = true;
};

class Simulator {
 public:
  /// `delay` may be null, in which case a UniformDelay(delta, eps) is used.
  Simulator(SimConfig config, std::unique_ptr<DelayModel> delay);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a process with its clock and initial CORR value.  If
  /// start_real_time >= 0, a START message is buffered for that time
  /// (assumption A4 wakes process p at real time c0_p(T0)).
  /// Returns the process id.
  std::int32_t add_process(proc::ProcessPtr process,
                           std::unique_ptr<clk::PhysicalClock> clock,
                           double initial_corr, bool faulty,
                           double start_real_time);

  /// Buffers a START for `id` at a later real time (reintegration wake-up).
  void schedule_start(std::int32_t id, double real_time);

  /// Attaches a passive observer (non-owning; must outlive the run).
  void add_trace_sink(TraceSink* sink);

  /// Attaches (or, with nullptr, detaches) the streaming Observer
  /// (sim/observer.h; non-owning, must outlive the run).  At most one;
  /// with none attached the hot path pays a single always-false double
  /// compare per event and nothing else.
  void set_observer(Observer* observer);

  /// Bounded-memory mode: truncates every clock's segment list and CORR
  /// log behind `t` (see CorrLog::truncate_before).  Queries at times >= t
  /// are unaffected; the caller (the streaming observer) guarantees no
  /// future query targets an earlier time.  Returns entries removed.
  std::size_t truncate_history_before(double t);

  /// Pre-sizes every process' CORR log for a run whose adjustment count is
  /// known up front (rounds * k_exchanges + slack): steady-state recording
  /// then never reallocates, which keeps the fast path's round loop
  /// allocation-free (bench_micro gates on this).
  void reserve_history(std::size_t changes_per_process);

  /// Approximate heap footprint of all retained measurement history
  /// (CORR logs + clock segment lists, capacity-based).
  [[nodiscard]] std::size_t history_bytes() const noexcept;
  /// Retained history entries (CORR entries + clock breakpoints).
  [[nodiscard]] std::size_t history_entries() const noexcept;

  /// Runs all events with time <= real_time.
  void run_until(double real_time);

  /// Processes one event; returns false when the buffer is empty.
  bool step();

  [[nodiscard]] double current_time() const noexcept { return current_time_; }
  [[nodiscard]] std::int32_t process_count() const noexcept {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] bool is_faulty(std::int32_t id) const { return nodes_[idx(id)].faulty; }
  [[nodiscard]] const clk::PhysicalClock& clock(std::int32_t id) const {
    return *nodes_[idx(id)].clock;
  }
  [[nodiscard]] const CorrLog& corr_log(std::int32_t id) const {
    return nodes_[idx(id)].corr;
  }
  [[nodiscard]] proc::Process& process(std::int32_t id) {
    return *nodes_[idx(id)].process;
  }

  /// L_p(t) = Ph_p(t) + CORR_p(t) with displayed (possibly slewing) CORR.
  [[nodiscard]] double local_time(std::int32_t id, double real_time) const {
    const Node& node = nodes_[idx(id)];
    return node.clock->now(real_time) + node.corr.displayed_at(real_time);
  }

  /// Closed out-neighborhood of `id` in the exchange graph (sorted, self
  /// included); all of 0..n-1 when no topology is configured.
  [[nodiscard]] std::span<const std::int32_t> neighbors_of(std::int32_t id) const;

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  [[nodiscard]] std::uint64_t nic_dropped() const noexcept { return nic_dropped_; }
  /// Whether the Section 9.3 NIC ingress model is engaged.
  [[nodiscard]] bool nic_enabled() const noexcept {
    return config_.nic.has_value();
  }
  /// Per-process ingress accounting (all zeros when the NIC is off).
  [[nodiscard]] const NicStats& nic_stats(std::int32_t id) const {
    return nodes_[idx(id)].nic.stats;
  }
  [[nodiscard]] double delta() const noexcept { return config_.delta; }
  [[nodiscard]] double eps() const noexcept { return config_.eps; }

  // Engine pressure counters (bench_micro / bench_topology):
  /// Scheduler push + pop operations performed so far.
  [[nodiscard]] std::uint64_t queue_ops() const noexcept {
    return queue_pushes_ + queue_pops_;
  }
  /// High-water mark of pending scheduler entries.
  [[nodiscard]] std::size_t peak_pending() const noexcept { return peak_pending_; }
  /// Fan-out deliveries made directly (no queue round-trip) because the
  /// next recipient still preceded every pending event.
  [[nodiscard]] std::uint64_t fanout_direct() const noexcept { return fanout_direct_; }

 private:
  friend class SimContext;
  // The round fast path (core/fastpath.h) replays broadcast/update events
  // through the real process code with a mirrored Context, so it needs the
  // same internals SimContext touches plus the scheduler/pool for its
  // inject-and-bail protocol.
  friend class core::RoundFastPath;

  struct Nic {
    NicQueue pending;
    NicStats stats;
    double next_free = -1e300;
    double last_arrival = -1e300;  ///< burst tracking: previous arrival time
    std::size_t burst = 0;         ///< arrivals at exactly last_arrival
    bool service_scheduled = false;
  };

  struct Node {
    proc::ProcessPtr process;
    std::unique_ptr<clk::PhysicalClock> clock;
    CorrLog corr;
    bool faulty = false;
    Nic nic;
  };

  [[nodiscard]] std::size_t idx(std::int32_t id) const;

  /// Builds an event in place in the pool (stamping its seq) and hands the
  /// handle to the scheduler — the one entry point for all scheduling.
  void schedule_event(double time, std::int32_t tier, std::int32_t to,
                      EngineKind engine_kind, const Message& msg);
  /// Wraps scheduler_->push with the pressure counters.
  void push_handle(EventHandle handle);

  /// Executes one popped event: advances the clock, routes by engine kind,
  /// recycles the slot.  The handle must have just been popped.  Events
  /// after `limit` must not execute: a fan-out whose next delivery lies
  /// beyond it is re-armed instead (run_until passes its horizon; step
  /// passes +infinity).
  void dispatch(EventHandle handle, double limit);
  /// Batched fan-out dispatch (EngineKind::kFanout).
  void dispatch_fanout(EventHandle handle, double limit);

  /// Per-delivery slice of the max_events runaway guard.
  void count_event(EventHandle handle);

  void do_send(std::int32_t from, std::int32_t to, std::int32_t tag, double value,
               std::int32_t aux);
  /// Fan-out to the sender's exchange-graph neighborhood — batched into a
  /// single scheduler entry unless config_.batch_fanout is off.
  void do_broadcast(std::int32_t from, std::int32_t tag, double value,
                    std::int32_t aux);
  /// Draws the A3-validated per-link delay for a message sent now.
  [[nodiscard]] double draw_delay(std::int32_t from, std::int32_t to);
  void do_set_timer_logical(std::int32_t pid, double logical_time, std::int32_t tag);
  void do_set_timer_physical(std::int32_t pid, double physical_time,
                             std::int32_t tag);
  void do_set_timer_real(std::int32_t pid, double real_time, std::int32_t tag);
  void do_add_corr(std::int32_t pid, double adj, double amortize_duration);
  /// Message reaches `pid` at current_time_: NIC buffering when configured,
  /// direct delivery otherwise (the shared arrival path of the per-recipient
  /// and batched engines).
  void arrive(std::int32_t pid, const Message& msg);
  void nic_arrive(std::int32_t pid, const Message& msg);
  void deliver(std::int32_t pid, const Message& msg);

  /// Fires Observer::on_advance when simulated time reached the cached
  /// next-interest instant.  Called right after current_time_ moves and
  /// BEFORE the event at that time is delivered, so the observer sees
  /// every instant strictly before current_time_ as final.  observer_next_
  /// is +inf with no observer attached: the whole idle cost is this one
  /// compare.
  void observe_advance() {
    if (current_time_ >= observer_next_) {
      observer_next_ = observer_->on_advance(current_time_);
    }
  }

  SimConfig config_;
  std::unique_ptr<DelayModel> delay_;
  util::Rng rng_;
  EventPool pool_;
  std::unique_ptr<engine::SchedulerPolicy> scheduler_;
  net::FanoutPool fanouts_;
  std::uint64_t next_seq_ = 0;
  std::vector<Node> nodes_;
  std::vector<TraceSink*> sinks_;
  Observer* observer_ = nullptr;
  double observer_next_ = std::numeric_limits<double>::infinity();
  /// Identity neighbor list for the implicit full mesh, grown on demand.
  mutable std::vector<std::int32_t> all_ids_;
  double current_time_ = 0.0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t nic_dropped_ = 0;
  std::uint64_t queue_pushes_ = 0;
  std::uint64_t queue_pops_ = 0;
  std::uint64_t fanout_direct_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace wlsync::sim
