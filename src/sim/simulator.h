#pragma once
// The execution engine of Section 2.3.
//
// A Simulator owns the processes, their physical clocks, the message buffer
// (a slab-pooled EventPool ordered by a pluggable engine::SchedulerPolicy)
// and the network delay model, and produces executions that satisfy the six
// execution properties of the model:
//   1/5. events fire exactly at their buffered delivery times, finitely many
//        before any fixed time (the priority queue);
//   2/3. configurations chain by construction (single-threaded dispatch);
//   4.   TIMER messages at real time t are ordered after ordinary messages
//        for the same time (ordering tier);
//   6.   a step changes only the recipient's state and the buffer (processes
//        only act through Context).
//
// Faulty processes (Byzantine, assumption A2) are registered as such and
// receive an AdversaryContext; everyone else gets the model-legal Context.
// An optional bounded NIC buffer per recipient reproduces the Section 9.3
// Ethernet datagram behaviour ("if too many arrive at once, the old ones
// are overwritten").

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "clock/physical_clock.h"
#include "engine/scheduler.h"
#include "proc/process.h"
#include "sim/corr_log.h"
#include "sim/delay.h"
#include "sim/event.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace wlsync::sim {

/// Bounded receive buffer emulating the Section 9.3 datagram NIC.
struct NicConfig {
  std::size_t capacity = 8;     ///< pending messages held per recipient
  double service_time = 50e-6;  ///< time to hand one message to the process
};

struct SimConfig {
  double delta = 0.01;  ///< median message delay (A3)
  double eps = 0.001;   ///< delay uncertainty (A3)
  std::uint64_t seed = 1;
  std::optional<NicConfig> nic;       ///< engaged only for Section 9.3 studies
  std::uint64_t max_events = 50'000'000;  ///< runaway guard
  /// Event-scheduling policy; a pure performance knob — every policy
  /// dispatches the identical deterministic (time, tier, seq) order.
  engine::SchedulerKind scheduler = engine::SchedulerKind::kDaryHeap;
};

class Simulator {
 public:
  /// `delay` may be null, in which case a UniformDelay(delta, eps) is used.
  Simulator(SimConfig config, std::unique_ptr<DelayModel> delay);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a process with its clock and initial CORR value.  If
  /// start_real_time >= 0, a START message is buffered for that time
  /// (assumption A4 wakes process p at real time c0_p(T0)).
  /// Returns the process id.
  std::int32_t add_process(proc::ProcessPtr process,
                           std::unique_ptr<clk::PhysicalClock> clock,
                           double initial_corr, bool faulty,
                           double start_real_time);

  /// Buffers a START for `id` at a later real time (reintegration wake-up).
  void schedule_start(std::int32_t id, double real_time);

  /// Attaches a passive observer (non-owning; must outlive the run).
  void add_trace_sink(TraceSink* sink);

  /// Runs all events with time <= real_time.
  void run_until(double real_time);

  /// Processes one event; returns false when the buffer is empty.
  bool step();

  [[nodiscard]] double current_time() const noexcept { return current_time_; }
  [[nodiscard]] std::int32_t process_count() const noexcept {
    return static_cast<std::int32_t>(nodes_.size());
  }
  [[nodiscard]] bool is_faulty(std::int32_t id) const { return nodes_[idx(id)].faulty; }
  [[nodiscard]] const clk::PhysicalClock& clock(std::int32_t id) const {
    return *nodes_[idx(id)].clock;
  }
  [[nodiscard]] const CorrLog& corr_log(std::int32_t id) const {
    return nodes_[idx(id)].corr;
  }
  [[nodiscard]] proc::Process& process(std::int32_t id) {
    return *nodes_[idx(id)].process;
  }

  /// L_p(t) = Ph_p(t) + CORR_p(t) with displayed (possibly slewing) CORR.
  [[nodiscard]] double local_time(std::int32_t id, double real_time) const {
    const Node& node = nodes_[idx(id)];
    return node.clock->now(real_time) + node.corr.displayed_at(real_time);
  }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  [[nodiscard]] std::uint64_t nic_dropped() const noexcept { return nic_dropped_; }
  [[nodiscard]] double delta() const noexcept { return config_.delta; }
  [[nodiscard]] double eps() const noexcept { return config_.eps; }

 private:
  friend class SimContext;

  struct Nic {
    std::deque<Message> pending;
    double next_free = -1e300;
    bool service_scheduled = false;
  };

  struct Node {
    proc::ProcessPtr process;
    std::unique_ptr<clk::PhysicalClock> clock;
    CorrLog corr;
    bool faulty = false;
    Nic nic;
  };

  [[nodiscard]] std::size_t idx(std::int32_t id) const;

  /// Builds an event in place in the pool (stamping its seq) and hands the
  /// handle to the scheduler — the one entry point for all scheduling.
  void schedule_event(double time, std::int32_t tier, std::int32_t to,
                      EngineKind engine_kind, const Message& msg);

  /// Executes one popped event: advances the clock, routes by engine kind,
  /// recycles the slot.  The handle must have just been popped.
  void dispatch(EventHandle handle);

  void do_send(std::int32_t from, std::int32_t to, std::int32_t tag, double value,
               std::int32_t aux);
  void do_set_timer_logical(std::int32_t pid, double logical_time, std::int32_t tag);
  void do_set_timer_physical(std::int32_t pid, double physical_time,
                             std::int32_t tag);
  void do_set_timer_real(std::int32_t pid, double real_time, std::int32_t tag);
  void do_add_corr(std::int32_t pid, double adj, double amortize_duration);
  void deliver(std::int32_t pid, const Message& msg);

  SimConfig config_;
  std::unique_ptr<DelayModel> delay_;
  util::Rng rng_;
  EventPool pool_;
  std::unique_ptr<engine::SchedulerPolicy> scheduler_;
  std::uint64_t next_seq_ = 0;
  std::vector<Node> nodes_;
  std::vector<TraceSink*> sinks_;
  double current_time_ = 0.0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t nic_dropped_ = 0;
};

}  // namespace wlsync::sim
