#pragma once
// In-run observation hook (the streaming counterpart of trace.h).
//
// TraceSinks receive every raw action of the execution; the Observer is the
// narrower, measurement-oriented hook the streaming analysis layer
// (analysis/observe.h) attaches: it is fired on clock adjustments (CORR
// appends), on round boundaries (kRoundBegin annotations), on NIC drops,
// and — through a time-of-interest contract — whenever simulated time
// advances past an instant the observer asked to see.
//
// The time contract keeps the no-observer and idle-observer hot paths flat:
// the simulator caches the observer's next time of interest and performs a
// single double comparison per dispatched event; with no observer attached
// the cached time is +infinity, so the whole mechanism costs one
// always-false compare and nothing else.  on_advance is called with the new
// current time only once that time reaches the cached instant, and returns
// the next instant of interest (+infinity = never).
//
// Semantics an observer may rely on:
//   * on_advance(now) fires after current time moved to `now` and BEFORE
//     the event at `now` is delivered, so every CORR entry with time < now
//     is final — sampling local times at instants strictly before `now` is
//     exact and can never be invalidated by later events.
//   * on_adjustment / on_round_begin / on_nic_drop fire at the instant the
//     underlying action happens (current simulated time).
//   * all hooks are called on the simulation thread; observers need no
//     locking and must not mutate the execution (measurement is passive,
//     like TraceSink — with the one sanctioned exception of history
//     truncation behind the observation frontier, see
//     Simulator::truncate_history_before).

#include <cstdint>

namespace wlsync::sim {

class Observer {
 public:
  virtual ~Observer() = default;

  /// Simulated time advanced to `now` (>= the last value this call
  /// returned).  Returns the next real time of interest; the simulator
  /// will not call again before that time is reached.
  virtual double on_advance(double now) = 0;

  /// Process `pid`'s CORR log gained an entry (step or ramp start) at real
  /// time `t`; the target moved old_target -> new_target.
  virtual void on_adjustment(std::int32_t pid, double t, double old_target,
                             double new_target) = 0;

  /// Process `pid` annotated a round begin (round boundary) at real time
  /// `t`.  May change the observer's next time of interest: the simulator
  /// re-reads next_interest() after this hook.
  virtual void on_round_begin(std::int32_t pid, std::int32_t round,
                              double t) = 0;

  /// A datagram was dropped by `pid`'s NIC ingress queue at real time `t`.
  virtual void on_nic_drop(std::int32_t pid, double t) = 0;

  /// The next real time on_advance should fire at (+infinity = never).
  [[nodiscard]] virtual double next_interest() const = 0;
};

}  // namespace wlsync::sim
