#pragma once
// Observation hooks for executions (Section 2.3).
//
// Trace sinks receive every action of the execution plus algorithm-level
// annotations.  Measurement is strictly passive: sinks cannot influence the
// run, which keeps the executions the analysis sees identical to the
// executions the theorems quantify over.

#include <cstdint>

#include "proc/context.h"
#include "sim/event.h"
#include "sim/message.h"

namespace wlsync::sim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Whether this sink consumes the per-message callbacks (on_send,
  /// on_receive, on_nic_drop).  The round fast path (core/fastpath.h) may
  /// batch whole collection windows past the event queue ONLY when every
  /// attached sink returns false — it still replays on_corr_change and
  /// on_annotation at their exact instants, but per-message callbacks are
  /// skipped wholesale.  Defaults to true (conservative: an unknown sink
  /// keeps the event engine); aggregate sinks like analysis::RoundTrace
  /// override to false.
  [[nodiscard]] virtual bool wants_message_events() const { return true; }

  /// A message was accepted into the message buffer.
  virtual void on_send(std::int32_t /*from*/, std::int32_t /*to*/,
                       const Message& /*msg*/, double /*send_time*/,
                       double /*deliver_time*/) {}

  /// receive(m, p) occurred at real time `time`.
  virtual void on_receive(std::int32_t /*pid*/, const Message& /*msg*/,
                          double /*time*/) {}

  /// Process `pid`'s CORR changed (step or ramp start) at real time `time`.
  virtual void on_corr_change(std::int32_t /*pid*/, double /*time*/,
                              double /*old_target*/, double /*new_target*/) {}

  /// Algorithm-level annotation from process `pid` at real time `time`.
  virtual void on_annotation(std::int32_t /*pid*/, double /*time*/,
                             const proc::Annotation& /*annotation*/) {}

  /// A NIC buffer overflowed and overwrote its oldest pending message
  /// (Section 9.3 datagram loss).
  virtual void on_nic_drop(std::int32_t /*pid*/, double /*time*/) {}
};

}  // namespace wlsync::sim
