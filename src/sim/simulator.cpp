#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace wlsync::sim {

namespace {
constexpr double kDelayTolerance = 1e-12;
}

/// Context implementation handed to processes during a step.  A single
/// class serves both roles; the adversary-only entry points verify the
/// process is registered faulty, so an honest process cannot use them even
/// accidentally.  The context is bound to the LANE executing the step: all
/// clock reads, scheduling and tracing go through that lane, which is what
/// keeps concurrent shard lanes disjoint.
class SimContext final : public proc::AdversaryContext {
 public:
  SimContext(Simulator& sim, Simulator::Lane& lane, std::int32_t pid,
             bool faulty)
      : sim_(sim), lane_(lane), pid_(pid), faulty_(faulty) {
    topology_version_ = sim.topology_version_;
  }

  [[nodiscard]] std::int32_t id() const override { return pid_; }
  [[nodiscard]] std::int32_t process_count() const override {
    return sim_.process_count();
  }
  [[nodiscard]] double physical_time() const override {
    return sim_.nodes_[sim_.idx(pid_)].clock->now(lane_.current_time);
  }
  [[nodiscard]] double local_time() const override {
    return physical_time() + corr();
  }
  [[nodiscard]] double corr() const override {
    return sim_.nodes_[sim_.idx(pid_)].corr.current_target();
  }
  void add_corr(double adj) override { sim_.do_add_corr(lane_, pid_, adj, 0.0); }
  void add_corr_amortized(double adj, double duration) override {
    sim_.do_add_corr(lane_, pid_, adj, duration);
  }
  [[nodiscard]] std::span<const std::int32_t> neighbors() const override {
    return sim_.neighbors_of(pid_);
  }
  void broadcast(std::int32_t tag, double value, std::int32_t aux) override {
    sim_.do_broadcast(lane_, pid_, tag, value, aux);
  }
  void send(std::int32_t to, std::int32_t tag, double value,
            std::int32_t aux) override {
    sim_.do_send(lane_, pid_, to, tag, value, aux);
  }
  void set_timer(double logical_time, std::int32_t tag) override {
    sim_.do_set_timer_logical(lane_, pid_, logical_time, tag);
  }
  void set_timer_physical(double physical_time, std::int32_t tag) override {
    sim_.do_set_timer_physical(lane_, pid_, physical_time, tag);
  }
  void annotate(const proc::Annotation& annotation) override {
    for (TraceSink* sink : lane_.sinks) {
      sink->on_annotation(pid_, lane_.current_time, annotation);
    }
    if (sim_.observer_ != nullptr &&
        annotation.type == proc::Annotation::Type::kRoundBegin) {
      sim_.observer_->on_round_begin(pid_, annotation.round,
                                     lane_.current_time);
      // A round boundary may open a sampling window (the steady-state
      // anchor); re-read the next instant of interest.
      sim_.observer_next_ = sim_.observer_->next_interest();
    }
  }

  // --- adversary-only powers ---
  [[nodiscard]] double real_time() const override {
    require_faulty();
    return lane_.current_time;
  }
  void set_timer_real(double real_time, std::int32_t tag) override {
    require_faulty();
    sim_.do_set_timer_real(lane_, pid_, real_time, tag);
  }

 private:
  void require_faulty() const {
    if (!faulty_) {
      throw std::logic_error(
          "adversary power used by a process not registered as faulty");
    }
  }

  Simulator& sim_;
  Simulator::Lane& lane_;
  std::int32_t pid_;
  bool faulty_;
};

Simulator::Simulator(SimConfig config, std::unique_ptr<DelayModel> delay)
    : config_(std::move(config)),
      delay_(delay ? std::move(delay)
                   : make_uniform_delay(config_.delta, config_.eps)) {
  if (config_.eps < 0 || config_.delta < config_.eps) {
    throw std::invalid_argument("Simulator: require delta >= eps >= 0 (A3)");
  }
  main_.scheduler = engine::make_scheduler(config_.scheduler, main_.pool);
}

Simulator::~Simulator() = default;

std::size_t Simulator::idx(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::out_of_range("Simulator: process id " + std::to_string(id) +
                            " is not registered (valid ids are [0, " +
                            std::to_string(nodes_.size()) + "))");
  }
  return static_cast<std::size_t>(id);
}

void Simulator::push_handle(Lane& lane, EventHandle handle) {
  lane.scheduler->push(handle);
  ++lane.queue_pushes;
  lane.peak_pending = std::max(lane.peak_pending, lane.scheduler->size());
}

void Simulator::schedule_event(Lane& lane, double time, std::int32_t tier,
                               std::int32_t origin, std::int32_t to,
                               EngineKind engine_kind, const Message& msg) {
  schedule_raw(lane, time, tier, alloc_seq(origin), to, engine_kind, msg);
}

void Simulator::schedule_raw(Lane& lane, double time, std::int32_t tier,
                             std::uint64_t seq, std::int32_t to,
                             EngineKind engine_kind, const Message& msg) {
  // Adaptive-lookahead bookkeeping (PDES lanes only): an event delivered to
  // a boundary process is the earliest thing that could cross the cut.
  // kScenario events never reach shard lanes (the engine refuses dynamics),
  // so `to` is always a process id when the flag vector is installed.
  if (lane.boundary != nullptr && (*lane.boundary)[idx(to)] != 0) {
    lane.boundary_heap.push_back(time);
    std::push_heap(lane.boundary_heap.begin(), lane.boundary_heap.end(),
                   std::greater<>{});
  }
  const EventHandle handle = lane.pool.acquire();
  Event& event = lane.pool[handle];
  event.time = time;
  event.tier = tier;
  event.seq = seq;
  event.to = to;
  event.engine_kind = engine_kind;
  event.msg = msg;
  push_handle(lane, handle);
}

std::span<const std::int32_t> Simulator::neighbors_of(std::int32_t id) const {
  (void)idx(id);
  if (config_.topology.has_value()) {
    if (config_.topology->n() != process_count()) {
      throw std::logic_error(
          "Simulator: topology node count does not match process count");
    }
    return config_.topology->neighbors(id);
  }
  // Implicit full mesh: an identity list shared by every process.  Grown
  // lazily — the PDES engine warms it before spawning workers.
  if (all_ids_.size() != nodes_.size()) {
    all_ids_.resize(nodes_.size());
    for (std::size_t i = 0; i < all_ids_.size(); ++i) {
      all_ids_[i] = static_cast<std::int32_t>(i);
    }
  }
  return {all_ids_.data(), all_ids_.size()};
}

std::int32_t Simulator::add_process(proc::ProcessPtr process,
                                    std::unique_ptr<clk::PhysicalClock> clock,
                                    double initial_corr, bool faulty,
                                    double start_real_time) {
  if (!process || !clock) throw std::invalid_argument("null process or clock");
  if (nodes_.size() >= (std::size_t{1} << 22)) {
    // alloc_seq packs the origin id into bits [40, 62); more processes than
    // that would collide with EventKeyOf's tier bits.
    throw std::invalid_argument("Simulator: at most 2^22 processes");
  }
  Node node{std::move(process), std::move(clock), CorrLog(initial_corr), faulty,
            Nic{}, util::Rng{}, 0};
  nodes_.push_back(std::move(node));
  const auto id = static_cast<std::int32_t>(nodes_.size() - 1);
  // The sender's private delay stream, derived from the config seed and the
  // id alone (registration order does not matter).
  nodes_.back().delay_rng.reseed(
      config_.seed + 0x9E3779B97F4A7C15ULL *
                         (static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(id)) +
                          1));
  if (start_real_time >= 0.0) schedule_start(id, start_real_time);
  return id;
}

void Simulator::schedule_start(std::int32_t id, double real_time) {
  schedule_event(owner_lane(id), real_time, /*tier=*/0, /*origin=*/id, id,
                 EngineKind::kDeliver, make_start());
}

void Simulator::set_dynamics(const net::DynamicsSpec& dynamics) {
  if (dynamics.empty()) return;
  if (has_dynamics_) {
    throw std::logic_error("Simulator: dynamics schedule already installed");
  }
  if (nodes_.empty()) {
    throw std::logic_error(
        "Simulator: register processes before installing dynamics");
  }
  dynamics.validate(process_count(), /*min_down=*/0.0);
  if (dynamics.topology_changing()) {
    if (!config_.topology.has_value()) {
      throw std::logic_error(
          "Simulator: topology-changing dynamics require an explicit "
          "topology (materialize the full mesh to mutate it)");
    }
    if (config_.topology->n() != process_count()) {
      throw std::logic_error(
          "Simulator: topology node count does not match process count");
    }
    // Open-neighborhood working copy; from_adjacency restores self-loops
    // on every rebuild.
    const std::size_t n = nodes_.size();
    base_adjacency_.assign(n, {});
    for (std::size_t p = 0; p < n; ++p) {
      for (const std::int32_t q :
           config_.topology->neighbors(static_cast<std::int32_t>(p))) {
        if (q != static_cast<std::int32_t>(p)) {
          base_adjacency_[p].push_back(q);
        }
      }
    }
    adjacency_ = base_adjacency_;
  }
  dynamics_ = dynamics;
  has_dynamics_ = true;
  // Install in (time, append index) order so same-instant scenario events
  // fire in append order (seqs are allocated here, in sorted order).
  std::vector<std::size_t> order(dynamics_.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return dynamics_.events[a].at < dynamics_.events[b].at;
                   });
  for (const std::size_t i : order) {
    schedule_event(main_, dynamics_.events[i].at, /*tier=*/2, /*origin=*/0,
                   static_cast<std::int32_t>(i), EngineKind::kScenario,
                   Message{});
  }
}

void Simulator::apply_dynamics(std::int32_t which) {
  const net::DynamicsEvent& e =
      dynamics_.events[static_cast<std::size_t>(which)];
  ++dynamics_applied_;

  const auto erase_dir = [this](std::int32_t a, std::int32_t b) {
    auto& list = adjacency_[static_cast<std::size_t>(a)];
    const auto it = std::find(list.begin(), list.end(), b);
    if (it == list.end()) return false;
    list.erase(it);
    return true;
  };
  const auto add_dir = [this](std::int32_t a, std::int32_t b) {
    auto& list = adjacency_[static_cast<std::size_t>(a)];
    if (std::find(list.begin(), list.end(), b) != list.end()) return false;
    list.push_back(b);  // from_adjacency re-sorts
    return true;
  };

  bool changed = false;
  switch (e.kind) {
    case net::DynamicsKind::kLinkFail:
      changed = erase_dir(e.a, e.b);
      changed = erase_dir(e.b, e.a) || changed;
      break;
    case net::DynamicsKind::kLinkHeal:
      changed = add_dir(e.a, e.b);
      changed = add_dir(e.b, e.a) || changed;
      break;
    case net::DynamicsKind::kSplit: {
      std::vector<char> in_group(nodes_.size(), 0);
      for (const std::int32_t id : e.group) {
        in_group[static_cast<std::size_t>(id)] = 1;
      }
      for (std::size_t p = 0; p < adjacency_.size(); ++p) {
        auto& list = adjacency_[p];
        const std::size_t before = list.size();
        const char side = in_group[p];
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](std::int32_t q) {
                                    return in_group[static_cast<std::size_t>(
                                               q)] != side;
                                  }),
                   list.end());
        changed = changed || list.size() != before;
      }
      break;
    }
    case net::DynamicsKind::kMerge: {
      std::vector<char> in_group(nodes_.size(), 0);
      for (const std::int32_t id : e.group) {
        in_group[static_cast<std::size_t>(id)] = 1;
      }
      // Restore the BASE graph's cut edges — the adjacency the run started
      // with, not whatever fail/heal history accumulated since.
      for (std::size_t p = 0; p < base_adjacency_.size(); ++p) {
        const char side = in_group[p];
        for (const std::int32_t q : base_adjacency_[p]) {
          if (in_group[static_cast<std::size_t>(q)] != side) {
            changed = add_dir(static_cast<std::int32_t>(p), q) || changed;
          }
        }
      }
      break;
    }
    case net::DynamicsKind::kLeave:
    case net::DynamicsKind::kRejoin:
      // Pure churn markers: the process routing (core/reintegration.h
      // ChurnProcess) carries the physics; the schedule entry exists so
      // dynamics_applied() counts it and the engines refuse the run.
      break;
  }
  if (changed) {
    ++topology_version_;
    config_.topology = net::Topology::from_adjacency(adjacency_);
  }
}

void Simulator::add_trace_sink(TraceSink* sink) {
  if (sink != nullptr) main_.sinks.push_back(sink);
}

void Simulator::set_observer(Observer* observer) {
  observer_ = observer;
  observer_next_ = observer_ != nullptr
                       ? observer_->next_interest()
                       : std::numeric_limits<double>::infinity();
}

std::size_t Simulator::truncate_history_before(double t) {
  std::size_t removed = 0;
  for (Node& node : nodes_) {
    removed += node.corr.truncate_before(t);
    removed += node.clock->truncate_before(t);
  }
  return removed;
}

void Simulator::reserve_history(std::size_t changes_per_process) {
  for (Node& node : nodes_) node.corr.reserve(changes_per_process);
}

std::size_t Simulator::history_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += node.corr.approx_bytes() + node.clock->approx_bytes();
  }
  return bytes;
}

std::size_t Simulator::history_entries() const noexcept {
  std::size_t entries = 0;
  for (const Node& node : nodes_) {
    entries += node.corr.retained_entries() + node.clock->retained_breakpoints();
  }
  return entries;
}

double Simulator::draw_delay(Lane& lane, std::int32_t from, std::int32_t to) {
  const double delay =
      delay_->delay(from, to, lane.current_time, nodes_[idx(from)].delay_rng);
  if (delay < config_.delta - config_.eps - kDelayTolerance ||
      delay > config_.delta + config_.eps + kDelayTolerance) {
    throw std::logic_error("delay model produced a delay outside A3 bounds");
  }
  return delay;
}

void Simulator::do_send(Lane& lane, std::int32_t from, std::int32_t to,
                        std::int32_t tag, double value, std::int32_t aux) {
  (void)idx(to);  // validates the recipient id
  const double deliver_time = lane.current_time + draw_delay(lane, from, to);
  const Message msg = make_app(from, tag, value, aux);
  ++lane.messages_sent;
  for (TraceSink* sink : lane.sinks) {
    sink->on_send(from, to, msg, lane.current_time, deliver_time);
  }
  const EngineKind kind = config_.nic.has_value() ? EngineKind::kNicArrive
                                                  : EngineKind::kDeliver;
  const std::int32_t dest = lane_index(to);
  if (!lane_of_.empty() && dest != lane.shard) {
    // Cross-cut: the delay and seq are already drawn/allocated from the
    // sender's streams, so the receiving lane schedules exactly the event
    // the serial engine would have.  The push is immediately visible to the
    // receiver's mid-epoch polls (conservative lookahead keeps it beyond
    // the receiver's current window).
    lane.channels_out[static_cast<std::size_t>(dest)]->push(
        {deliver_time, alloc_seq(from), to, kind, msg});
  } else {
    schedule_event(lane, deliver_time, /*tier=*/0, /*origin=*/from, to, kind,
                   msg);
  }
}

void Simulator::do_broadcast(Lane& lane, std::int32_t from, std::int32_t tag,
                             double value, std::int32_t aux) {
  const std::span<const std::int32_t> recipients = neighbors_of(from);
  if (!config_.batch_fanout) {
    // Reference path: one scheduler entry per recipient (the seed engine).
    for (std::int32_t to : recipients) do_send(lane, from, to, tag, value, aux);
    return;
  }
  if (recipients.empty()) return;

  // Batched path.  Everything observable happens exactly as in the
  // reference path and in the same order: delays are drawn per link in
  // neighbor order from the same RNG stream, seq numbers are the block the
  // per-recipient loop would have consumed, and on_send fires per
  // recipient at send time.  Only the scheduler sees a difference — one
  // entry, keyed by the earliest remaining delivery.  Cross-lane
  // recipients leave the batch as RemoteEvents carrying their pre-drawn
  // delay and pre-allocated seq; splitting a batch is invisible because
  // batching itself is observable-identical to per-recipient sends.
  const Message msg = make_app(from, tag, value, aux);
  const net::FanoutHandle record_handle = lane.fanouts.acquire();
  net::FanoutRecord& record = lane.fanouts[record_handle];
  record.msg = msg;
  record.deliveries.clear();
  record.cursor = 0;
  record.deliveries.reserve(recipients.size());
  const bool sharded = !lane_of_.empty();
  const EngineKind remote_kind = config_.nic.has_value()
                                     ? EngineKind::kNicArrive
                                     : EngineKind::kDeliver;
  for (std::int32_t to : recipients) {
    const double deliver_time = lane.current_time + draw_delay(lane, from, to);
    ++lane.messages_sent;
    for (TraceSink* sink : lane.sinks) {
      sink->on_send(from, to, msg, lane.current_time, deliver_time);
    }
    const std::int32_t dest = sharded ? lane_of_[idx(to)] : -1;
    if (sharded && dest != lane.shard) {
      lane.channels_out[static_cast<std::size_t>(dest)]->push(
          {deliver_time, alloc_seq(from), to, remote_kind, msg});
    } else {
      record.deliveries.push_back({deliver_time, alloc_seq(from), to});
      // In-lane boundary recipients enter the adaptive-lookahead horizon
      // here: the batched kFanout entry only exposes its first delivery to
      // the scheduler, so each recipient's time is tracked individually.
      if (lane.boundary != nullptr && (*lane.boundary)[idx(to)] != 0) {
        lane.boundary_heap.push_back(deliver_time);
        std::push_heap(lane.boundary_heap.begin(), lane.boundary_heap.end(),
                       std::greater<>{});
      }
    }
  }
  if (record.deliveries.empty()) {  // every recipient was remote
    lane.fanouts.release(record_handle);
    return;
  }
  std::sort(record.deliveries.begin(), record.deliveries.end(),
            [](const net::FanoutDelivery& a, const net::FanoutDelivery& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;  // equal-time order of the seed engine
            });

  const net::FanoutDelivery& first = record.deliveries.front();
  const EventHandle handle = lane.pool.acquire();
  Event& event = lane.pool[handle];
  event.time = first.time;
  event.tier = 0;
  event.seq = first.seq;
  event.to = first.to;
  event.engine_kind = EngineKind::kFanout;
  event.link = record_handle;
  push_handle(lane, handle);
}

void Simulator::do_set_timer_logical(Lane& lane, std::int32_t pid,
                                     double logical_time, std::int32_t tag) {
  const Node& node = nodes_[idx(pid)];
  // Section 4.2 set-timer(T): physical target is T - CORR for current CORR.
  const double physical_target = logical_time - node.corr.current_target();
  do_set_timer_physical(lane, pid, physical_target, tag);
}

void Simulator::do_set_timer_physical(Lane& lane, std::int32_t pid,
                                      double physical_time, std::int32_t tag) {
  const Node& node = nodes_[idx(pid)];
  const double real = node.clock->to_real(physical_time);
  do_set_timer_real(lane, pid, real, tag);
}

void Simulator::do_set_timer_real(Lane& lane, std::int32_t pid,
                                  double real_time, std::int32_t tag) {
  // Section 2.2: the TIMER is buffered only if its delivery time is in the
  // future; otherwise nothing is placed in the buffer.
  if (real_time <= lane.current_time) return;
  schedule_event(lane, real_time, /*tier=*/1 /* execution property 4 */,
                 /*origin=*/pid, pid, EngineKind::kDeliver, make_timer(tag));
}

void Simulator::do_add_corr(Lane& lane, std::int32_t pid, double adj,
                            double amortize_duration) {
  Node& node = nodes_[idx(pid)];
  const double old_target = node.corr.current_target();
  const double new_target = old_target + adj;
  if (amortize_duration > 0.0) {
    node.corr.ramp(lane.current_time, new_target, amortize_duration);
  } else {
    node.corr.step(lane.current_time, new_target);
  }
  for (TraceSink* sink : lane.sinks) {
    sink->on_corr_change(pid, lane.current_time, old_target, new_target);
  }
  if (observer_ != nullptr) {
    observer_->on_adjustment(pid, lane.current_time, old_target, new_target);
  }
}

void Simulator::deliver(Lane& lane, std::int32_t pid, const Message& msg) {
  Node& node = nodes_[idx(pid)];
  for (TraceSink* sink : lane.sinks) {
    sink->on_receive(pid, msg, lane.current_time);
  }
  SimContext ctx(*this, lane, pid, node.faulty);
  switch (msg.kind) {
    case Kind::kStart:
      node.process->on_start(ctx);
      break;
    case Kind::kTimer:
      node.process->on_timer(ctx, msg.tag);
      break;
    case Kind::kApp:
      node.process->on_message(ctx, msg);
      break;
  }
}

bool Simulator::step() {
  if (main_.scheduler->empty()) return false;
  ++main_.queue_pops;
  dispatch(main_, main_.scheduler->pop(),
           std::numeric_limits<double>::infinity());
  return true;
}

void Simulator::count_event(Lane& lane, EventHandle handle) {
  if (++lane.events_processed > config_.max_events) {
    lane.pool.release(handle);
    throw std::runtime_error("Simulator: max_events exceeded (runaway execution?)");
  }
}

void Simulator::nic_arrive(Lane& lane, std::int32_t pid, const Message& msg) {
  Nic& nic = nodes_[idx(pid)].nic;
  const NicConfig& cfg = *config_.nic;
  ++nic.stats.arrivals;
  // Burst clustering: under batched fan-out a broadcast's whole delivery
  // list can land on one recipient set at a single instant (extremal
  // delays), the Section 9.3 "punished for behaving well" regime.
  if (lane.current_time == nic.last_arrival) {
    ++nic.burst;
  } else {
    nic.last_arrival = lane.current_time;
    nic.burst = 1;
  }
  nic.stats.max_burst = std::max(nic.stats.max_burst, nic.burst);

  if (cfg.capacity > 0 && nic.pending.size() >= cfg.capacity) {
    ++nic.stats.dropped;
    ++lane.nic_dropped;
    for (TraceSink* sink : lane.sinks) sink->on_nic_drop(pid, lane.current_time);
    if (observer_ != nullptr) observer_->on_nic_drop(pid, lane.current_time);
    if (cfg.drop == NicDropPolicy::kDropNewest) {
      // Tail drop: the arriving datagram is lost.  The queue is non-empty,
      // so a service event is already in flight.
      return;
    }
    // Section 9.3: "if too many arrive at once, the old ones are
    // overwritten."
    nic.pending.pop_front();
  }
  nic.pending.push_back(msg);
  nic.stats.peak_queue = std::max(nic.stats.peak_queue, nic.pending.size());
  if (!nic.service_scheduled) {
    // Store-and-forward: handing over a datagram takes service_time even
    // when the NIC is idle.  This also keeps the service event strictly
    // after its triggering instant, so a same-time burst fully lands before
    // any handoff — an ordering that would otherwise depend on how event
    // seqs interleave across senders (per-origin seqs put the receiver's
    // service event before higher-id senders' arrivals).
    schedule_event(lane,
                   std::max(lane.current_time + cfg.service_time, nic.next_free),
                   /*tier=*/0,
                   /*origin=*/pid, pid, EngineKind::kNicService, Message{});
    nic.service_scheduled = true;
    ++nic.stats.service_events;
  }
}

void Simulator::arrive(Lane& lane, std::int32_t pid, const Message& msg) {
  if (config_.nic.has_value()) {
    nic_arrive(lane, pid, msg);
  } else {
    deliver(lane, pid, msg);
  }
}

void Simulator::dispatch_fanout(Lane& lane, EventHandle handle, double limit) {
  // Slab storage keeps both references valid while handlers broadcast into
  // the same pools.
  net::FanoutRecord& record = lane.fanouts[lane.pool[handle].link];
  for (;;) {
    const net::FanoutDelivery due = record.next();
    count_event(lane, handle);
    lane.current_time = due.time;
    observe_advance(lane);
    arrive(lane, due.to, record.msg);
    ++record.cursor;
    if (record.done()) break;

    const net::FanoutDelivery& next = record.next();
    bool requeue = next.time > limit;
    if (!requeue && lane.scheduler->size() > 0) {
      // Run extension: deliver the next recipient without a queue
      // round-trip only while its key still precedes every pending event
      // (the handler above may have scheduled earlier ones).
      const EventKey head = EventKeyOf{}(lane.pool[lane.scheduler->peek()]);
      const EventKey ours{next.time, next.seq};  // tier 0: top bits clear
      requeue = !(ours < head);
    }
    if (requeue) {
      Event& event = lane.pool[handle];
      event.time = next.time;
      event.seq = next.seq;
      event.to = next.to;
      push_handle(lane, handle);
      return;  // the entry stays live, re-armed for the next recipient
    }
    ++lane.fanout_direct;
  }
  lane.fanouts.release(lane.pool[handle].link);
  lane.pool.release(handle);
}

void Simulator::dispatch(Lane& lane, EventHandle handle, double limit) {
  // Slab storage keeps this reference valid while the handler schedules new
  // events into the same pool; the slot is recycled only after dispatch.
  const Event& event = lane.pool[handle];
  if (event.time < lane.current_time) {
    lane.pool.release(handle);
    throw std::logic_error("Simulator: event scheduled in the past");
  }
  if (event.engine_kind == EngineKind::kFanout) {
    dispatch_fanout(lane, handle, limit);
    return;
  }
  count_event(lane, handle);
  lane.current_time = event.time;
  observe_advance(lane);
  switch (event.engine_kind) {
    case EngineKind::kDeliver:
      deliver(lane, event.to, event.msg);
      break;
    case EngineKind::kNicArrive:
      nic_arrive(lane, event.to, event.msg);
      break;
    case EngineKind::kNicService: {
      Nic& nic = nodes_[idx(event.to)].nic;
      nic.service_scheduled = false;
      if (nic.pending.empty()) break;
      const Message msg = nic.pending.pop_front();
      nic.next_free = lane.current_time + config_.nic->service_time;
      ++nic.stats.served;
      deliver(lane, event.to, msg);
      if (!nic.pending.empty()) {
        schedule_event(lane, nic.next_free, /*tier=*/0, /*origin=*/event.to,
                       event.to, EngineKind::kNicService, Message{});
        nic.service_scheduled = true;
        ++nic.stats.service_events;
      }
      break;
    }
    case EngineKind::kScenario:
      // event.to indexes the installed dynamics schedule, not a process.
      apply_dynamics(event.to);
      break;
    case EngineKind::kFanout:
      break;  // handled above
  }
  lane.pool.release(handle);
}

void Simulator::run_lane(Lane& lane, double limit) {
  for (;;) {
    const EventHandle handle = lane.scheduler->pop_if_not_after(limit);
    if (handle == EventPool::kInvalidHandle) break;
    ++lane.queue_pops;
    dispatch(lane, handle, limit);
    // Overlapped channel drain (PDES lanes only): ingest cross-shard
    // arrivals every 64 dispatches.  Everything drained lands strictly
    // beyond `limit`, so the current window's pop order is unaffected.
    if (lane.poller != nullptr && (++lane.poll_tick & 63u) == 0) {
      lane.poller->poll();
    }
  }
}

void Simulator::run_until(double real_time) {
  run_lane(main_, real_time);
  if (real_time > main_.current_time) main_.current_time = real_time;
}

}  // namespace wlsync::sim
