#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace wlsync::sim {

namespace {
constexpr double kDelayTolerance = 1e-12;
}

/// Context implementation handed to processes during a step.  A single
/// class serves both roles; the adversary-only entry points verify the
/// process is registered faulty, so an honest process cannot use them even
/// accidentally.
class SimContext final : public proc::AdversaryContext {
 public:
  SimContext(Simulator& sim, std::int32_t pid, bool faulty)
      : sim_(sim), pid_(pid), faulty_(faulty) {}

  [[nodiscard]] std::int32_t id() const override { return pid_; }
  [[nodiscard]] std::int32_t process_count() const override {
    return sim_.process_count();
  }
  [[nodiscard]] double physical_time() const override {
    return sim_.nodes_[sim_.idx(pid_)].clock->now(sim_.current_time_);
  }
  [[nodiscard]] double local_time() const override {
    return physical_time() + corr();
  }
  [[nodiscard]] double corr() const override {
    return sim_.nodes_[sim_.idx(pid_)].corr.current_target();
  }
  void add_corr(double adj) override { sim_.do_add_corr(pid_, adj, 0.0); }
  void add_corr_amortized(double adj, double duration) override {
    sim_.do_add_corr(pid_, adj, duration);
  }
  [[nodiscard]] std::span<const std::int32_t> neighbors() const override {
    return sim_.neighbors_of(pid_);
  }
  void broadcast(std::int32_t tag, double value, std::int32_t aux) override {
    sim_.do_broadcast(pid_, tag, value, aux);
  }
  void send(std::int32_t to, std::int32_t tag, double value,
            std::int32_t aux) override {
    sim_.do_send(pid_, to, tag, value, aux);
  }
  void set_timer(double logical_time, std::int32_t tag) override {
    sim_.do_set_timer_logical(pid_, logical_time, tag);
  }
  void set_timer_physical(double physical_time, std::int32_t tag) override {
    sim_.do_set_timer_physical(pid_, physical_time, tag);
  }
  void annotate(const proc::Annotation& annotation) override {
    for (TraceSink* sink : sim_.sinks_) {
      sink->on_annotation(pid_, sim_.current_time_, annotation);
    }
    if (sim_.observer_ != nullptr &&
        annotation.type == proc::Annotation::Type::kRoundBegin) {
      sim_.observer_->on_round_begin(pid_, annotation.round,
                                     sim_.current_time_);
      // A round boundary may open a sampling window (the steady-state
      // anchor); re-read the next instant of interest.
      sim_.observer_next_ = sim_.observer_->next_interest();
    }
  }

  // --- adversary-only powers ---
  [[nodiscard]] double real_time() const override {
    require_faulty();
    return sim_.current_time_;
  }
  void set_timer_real(double real_time, std::int32_t tag) override {
    require_faulty();
    sim_.do_set_timer_real(pid_, real_time, tag);
  }

 private:
  void require_faulty() const {
    if (!faulty_) {
      throw std::logic_error(
          "adversary power used by a process not registered as faulty");
    }
  }

  Simulator& sim_;
  std::int32_t pid_;
  bool faulty_;
};

Simulator::Simulator(SimConfig config, std::unique_ptr<DelayModel> delay)
    : config_(std::move(config)),
      delay_(delay ? std::move(delay)
                   : make_uniform_delay(config_.delta, config_.eps)),
      rng_(config_.seed),
      scheduler_(engine::make_scheduler(config_.scheduler, pool_)) {
  if (config_.eps < 0 || config_.delta < config_.eps) {
    throw std::invalid_argument("Simulator: require delta >= eps >= 0 (A3)");
  }
}

Simulator::~Simulator() = default;

std::size_t Simulator::idx(std::int32_t id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::out_of_range("Simulator: process id " + std::to_string(id) +
                            " is not registered (valid ids are [0, " +
                            std::to_string(nodes_.size()) + "))");
  }
  return static_cast<std::size_t>(id);
}

void Simulator::push_handle(EventHandle handle) {
  scheduler_->push(handle);
  ++queue_pushes_;
  peak_pending_ = std::max(peak_pending_, scheduler_->size());
}

void Simulator::schedule_event(double time, std::int32_t tier, std::int32_t to,
                               EngineKind engine_kind, const Message& msg) {
  const EventHandle handle = pool_.acquire();
  Event& event = pool_[handle];
  event.time = time;
  event.tier = tier;
  event.seq = next_seq_++;
  event.to = to;
  event.engine_kind = engine_kind;
  event.msg = msg;
  push_handle(handle);
}

std::span<const std::int32_t> Simulator::neighbors_of(std::int32_t id) const {
  (void)idx(id);
  if (config_.topology.has_value()) {
    if (config_.topology->n() != process_count()) {
      throw std::logic_error(
          "Simulator: topology node count does not match process count");
    }
    return config_.topology->neighbors(id);
  }
  // Implicit full mesh: an identity list shared by every process.
  if (all_ids_.size() != nodes_.size()) {
    all_ids_.resize(nodes_.size());
    for (std::size_t i = 0; i < all_ids_.size(); ++i) {
      all_ids_[i] = static_cast<std::int32_t>(i);
    }
  }
  return {all_ids_.data(), all_ids_.size()};
}

std::int32_t Simulator::add_process(proc::ProcessPtr process,
                                    std::unique_ptr<clk::PhysicalClock> clock,
                                    double initial_corr, bool faulty,
                                    double start_real_time) {
  if (!process || !clock) throw std::invalid_argument("null process or clock");
  Node node{std::move(process), std::move(clock), CorrLog(initial_corr), faulty,
            Nic{}};
  nodes_.push_back(std::move(node));
  const auto id = static_cast<std::int32_t>(nodes_.size() - 1);
  if (start_real_time >= 0.0) schedule_start(id, start_real_time);
  return id;
}

void Simulator::schedule_start(std::int32_t id, double real_time) {
  schedule_event(real_time, /*tier=*/0, id, EngineKind::kDeliver, make_start());
}

void Simulator::add_trace_sink(TraceSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
}

void Simulator::set_observer(Observer* observer) {
  observer_ = observer;
  observer_next_ = observer_ != nullptr
                       ? observer_->next_interest()
                       : std::numeric_limits<double>::infinity();
}

std::size_t Simulator::truncate_history_before(double t) {
  std::size_t removed = 0;
  for (Node& node : nodes_) {
    removed += node.corr.truncate_before(t);
    removed += node.clock->truncate_before(t);
  }
  return removed;
}

void Simulator::reserve_history(std::size_t changes_per_process) {
  for (Node& node : nodes_) node.corr.reserve(changes_per_process);
}

std::size_t Simulator::history_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += node.corr.approx_bytes() + node.clock->approx_bytes();
  }
  return bytes;
}

std::size_t Simulator::history_entries() const noexcept {
  std::size_t entries = 0;
  for (const Node& node : nodes_) {
    entries += node.corr.retained_entries() + node.clock->retained_breakpoints();
  }
  return entries;
}

double Simulator::draw_delay(std::int32_t from, std::int32_t to) {
  const double delay = delay_->delay(from, to, current_time_, rng_);
  if (delay < config_.delta - config_.eps - kDelayTolerance ||
      delay > config_.delta + config_.eps + kDelayTolerance) {
    throw std::logic_error("delay model produced a delay outside A3 bounds");
  }
  return delay;
}

void Simulator::do_send(std::int32_t from, std::int32_t to, std::int32_t tag,
                        double value, std::int32_t aux) {
  (void)idx(to);  // validates the recipient id
  const double deliver_time = current_time_ + draw_delay(from, to);
  const Message msg = make_app(from, tag, value, aux);
  ++messages_sent_;
  for (TraceSink* sink : sinks_) {
    sink->on_send(from, to, msg, current_time_, deliver_time);
  }
  schedule_event(deliver_time, /*tier=*/0, to,
                 config_.nic.has_value() ? EngineKind::kNicArrive
                                         : EngineKind::kDeliver,
                 msg);
}

void Simulator::do_broadcast(std::int32_t from, std::int32_t tag, double value,
                             std::int32_t aux) {
  const std::span<const std::int32_t> recipients = neighbors_of(from);
  if (!config_.batch_fanout) {
    // Reference path: one scheduler entry per recipient (the seed engine).
    for (std::int32_t to : recipients) do_send(from, to, tag, value, aux);
    return;
  }
  if (recipients.empty()) return;

  // Batched path.  Everything observable happens exactly as in the
  // reference path and in the same order: delays are drawn per link in
  // neighbor order from the same RNG stream, seq numbers are the block the
  // per-recipient loop would have consumed, and on_send fires per
  // recipient at send time.  Only the scheduler sees a difference — one
  // entry, keyed by the earliest remaining delivery.
  const Message msg = make_app(from, tag, value, aux);
  const net::FanoutHandle record_handle = fanouts_.acquire();
  net::FanoutRecord& record = fanouts_[record_handle];
  record.msg = msg;
  record.deliveries.clear();
  record.cursor = 0;
  record.deliveries.reserve(recipients.size());
  for (std::int32_t to : recipients) {
    const double deliver_time = current_time_ + draw_delay(from, to);
    ++messages_sent_;
    for (TraceSink* sink : sinks_) {
      sink->on_send(from, to, msg, current_time_, deliver_time);
    }
    record.deliveries.push_back({deliver_time, next_seq_++, to});
  }
  std::sort(record.deliveries.begin(), record.deliveries.end(),
            [](const net::FanoutDelivery& a, const net::FanoutDelivery& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;  // equal-time order of the seed engine
            });

  const net::FanoutDelivery& first = record.deliveries.front();
  const EventHandle handle = pool_.acquire();
  Event& event = pool_[handle];
  event.time = first.time;
  event.tier = 0;
  event.seq = first.seq;
  event.to = first.to;
  event.engine_kind = EngineKind::kFanout;
  event.link = record_handle;
  push_handle(handle);
}

void Simulator::do_set_timer_logical(std::int32_t pid, double logical_time,
                                     std::int32_t tag) {
  const Node& node = nodes_[idx(pid)];
  // Section 4.2 set-timer(T): physical target is T - CORR for current CORR.
  const double physical_target = logical_time - node.corr.current_target();
  do_set_timer_physical(pid, physical_target, tag);
}

void Simulator::do_set_timer_physical(std::int32_t pid, double physical_time,
                                      std::int32_t tag) {
  const Node& node = nodes_[idx(pid)];
  const double real = node.clock->to_real(physical_time);
  do_set_timer_real(pid, real, tag);
}

void Simulator::do_set_timer_real(std::int32_t pid, double real_time,
                                  std::int32_t tag) {
  // Section 2.2: the TIMER is buffered only if its delivery time is in the
  // future; otherwise nothing is placed in the buffer.
  if (real_time <= current_time_) return;
  schedule_event(real_time, /*tier=*/1 /* execution property 4 */, pid,
                 EngineKind::kDeliver, make_timer(tag));
}

void Simulator::do_add_corr(std::int32_t pid, double adj, double amortize_duration) {
  Node& node = nodes_[idx(pid)];
  const double old_target = node.corr.current_target();
  const double new_target = old_target + adj;
  if (amortize_duration > 0.0) {
    node.corr.ramp(current_time_, new_target, amortize_duration);
  } else {
    node.corr.step(current_time_, new_target);
  }
  for (TraceSink* sink : sinks_) {
    sink->on_corr_change(pid, current_time_, old_target, new_target);
  }
  if (observer_ != nullptr) {
    observer_->on_adjustment(pid, current_time_, old_target, new_target);
  }
}

void Simulator::deliver(std::int32_t pid, const Message& msg) {
  Node& node = nodes_[idx(pid)];
  for (TraceSink* sink : sinks_) sink->on_receive(pid, msg, current_time_);
  SimContext ctx(*this, pid, node.faulty);
  switch (msg.kind) {
    case Kind::kStart:
      node.process->on_start(ctx);
      break;
    case Kind::kTimer:
      node.process->on_timer(ctx, msg.tag);
      break;
    case Kind::kApp:
      node.process->on_message(ctx, msg);
      break;
  }
}

bool Simulator::step() {
  if (scheduler_->empty()) return false;
  ++queue_pops_;
  dispatch(scheduler_->pop(), std::numeric_limits<double>::infinity());
  return true;
}

void Simulator::count_event(EventHandle handle) {
  if (++events_processed_ > config_.max_events) {
    pool_.release(handle);
    throw std::runtime_error("Simulator: max_events exceeded (runaway execution?)");
  }
}

void Simulator::nic_arrive(std::int32_t pid, const Message& msg) {
  Nic& nic = nodes_[idx(pid)].nic;
  const NicConfig& cfg = *config_.nic;
  ++nic.stats.arrivals;
  // Burst clustering: under batched fan-out a broadcast's whole delivery
  // list can land on one recipient set at a single instant (extremal
  // delays), the Section 9.3 "punished for behaving well" regime.
  if (current_time_ == nic.last_arrival) {
    ++nic.burst;
  } else {
    nic.last_arrival = current_time_;
    nic.burst = 1;
  }
  nic.stats.max_burst = std::max(nic.stats.max_burst, nic.burst);

  if (cfg.capacity > 0 && nic.pending.size() >= cfg.capacity) {
    ++nic.stats.dropped;
    ++nic_dropped_;
    for (TraceSink* sink : sinks_) sink->on_nic_drop(pid, current_time_);
    if (observer_ != nullptr) observer_->on_nic_drop(pid, current_time_);
    if (cfg.drop == NicDropPolicy::kDropNewest) {
      // Tail drop: the arriving datagram is lost.  The queue is non-empty,
      // so a service event is already in flight.
      return;
    }
    // Section 9.3: "if too many arrive at once, the old ones are
    // overwritten."
    nic.pending.pop_front();
  }
  nic.pending.push_back(msg);
  nic.stats.peak_queue = std::max(nic.stats.peak_queue, nic.pending.size());
  if (!nic.service_scheduled) {
    schedule_event(std::max(current_time_, nic.next_free), /*tier=*/0, pid,
                   EngineKind::kNicService, Message{});
    nic.service_scheduled = true;
    ++nic.stats.service_events;
  }
}

void Simulator::arrive(std::int32_t pid, const Message& msg) {
  if (config_.nic.has_value()) {
    nic_arrive(pid, msg);
  } else {
    deliver(pid, msg);
  }
}

void Simulator::dispatch_fanout(EventHandle handle, double limit) {
  // Slab storage keeps both references valid while handlers broadcast into
  // the same pools.
  net::FanoutRecord& record = fanouts_[pool_[handle].link];
  for (;;) {
    const net::FanoutDelivery due = record.next();
    count_event(handle);
    current_time_ = due.time;
    observe_advance();
    arrive(due.to, record.msg);
    ++record.cursor;
    if (record.done()) break;

    const net::FanoutDelivery& next = record.next();
    bool requeue = next.time > limit;
    if (!requeue && scheduler_->size() > 0) {
      // Run extension: deliver the next recipient without a queue
      // round-trip only while its key still precedes every pending event
      // (the handler above may have scheduled earlier ones).
      const EventKey head = EventKeyOf{}(pool_[scheduler_->peek()]);
      const EventKey ours{next.time, next.seq};  // tier 0: top bits clear
      requeue = !(ours < head);
    }
    if (requeue) {
      Event& event = pool_[handle];
      event.time = next.time;
      event.seq = next.seq;
      event.to = next.to;
      push_handle(handle);
      return;  // the entry stays live, re-armed for the next recipient
    }
    ++fanout_direct_;
  }
  fanouts_.release(pool_[handle].link);
  pool_.release(handle);
}

void Simulator::dispatch(EventHandle handle, double limit) {
  // Slab storage keeps this reference valid while the handler schedules new
  // events into the same pool; the slot is recycled only after dispatch.
  const Event& event = pool_[handle];
  if (event.time < current_time_) {
    pool_.release(handle);
    throw std::logic_error("Simulator: event scheduled in the past");
  }
  if (event.engine_kind == EngineKind::kFanout) {
    dispatch_fanout(handle, limit);
    return;
  }
  count_event(handle);
  current_time_ = event.time;
  observe_advance();
  switch (event.engine_kind) {
    case EngineKind::kDeliver:
      deliver(event.to, event.msg);
      break;
    case EngineKind::kNicArrive:
      nic_arrive(event.to, event.msg);
      break;
    case EngineKind::kNicService: {
      Nic& nic = nodes_[idx(event.to)].nic;
      nic.service_scheduled = false;
      if (nic.pending.empty()) break;
      const Message msg = nic.pending.pop_front();
      nic.next_free = current_time_ + config_.nic->service_time;
      ++nic.stats.served;
      deliver(event.to, msg);
      if (!nic.pending.empty()) {
        schedule_event(nic.next_free, /*tier=*/0, event.to,
                       EngineKind::kNicService, Message{});
        nic.service_scheduled = true;
        ++nic.stats.service_events;
      }
      break;
    }
    case EngineKind::kFanout:
      break;  // handled above
  }
  pool_.release(handle);
}

void Simulator::run_until(double real_time) {
  for (;;) {
    const EventHandle handle = scheduler_->pop_if_not_after(real_time);
    if (handle == EventPool::kInvalidHandle) break;
    ++queue_pops_;
    dispatch(handle, real_time);
  }
  if (real_time > current_time_) current_time_ = real_time;
}

}  // namespace wlsync::sim
