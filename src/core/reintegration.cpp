#include "core/reintegration.h"

#include <cmath>
#include <stdexcept>

#include "multiset/multiset_ops.h"

namespace wlsync::core {

namespace {
constexpr std::int32_t kCloseTimer = 21;
}

ReintegrationProcess::ReintegrationProcess(WelchLynchConfig config)
    : config_(config), wl_(config) {
  arr_.assign(static_cast<std::size_t>(config_.params.n), kNeverArrived);
}

bool ReintegrationProcess::matches(double value, double label) const {
  // Round labels are exchanged as exact doubles, but tolerate rounding from
  // independently accumulated T := T + P chains.
  return std::abs(value - label) <=
         1e-9 * std::max(1.0, std::abs(label)) + 1e-12;
}

void ReintegrationProcess::on_start(proc::Context& ctx) {
  if (joined_) return wl_.on_start(ctx);
  if (phase_ == Phase::kDormant) {
    phase_ = Phase::kOrienting;
    seen_.clear();
  }
}

void ReintegrationProcess::begin_collection(proc::Context& ctx, double target) {
  phase_ = Phase::kCollecting;
  target_ = target;
  arr_.assign(static_cast<std::size_t>(config_.params.n), kNeverArrived);
  target_senders_.clear();
  window_armed_ = false;
  (void)ctx;
}

void ReintegrationProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (joined_) return wl_.on_message(ctx, m);
  if (m.tag != kTimeTag) return;

  if (phase_ == Phase::kOrienting) {
    auto& senders = seen_[m.value];
    senders.insert(m.from);
    if (static_cast<std::int32_t>(senders.size()) >= config_.params.f + 1) {
      // Round m.value is genuine (>= 1 nonfaulty sender) and may be only
      // partially observed; target the next one.
      begin_collection(ctx, m.value + config_.params.P);
    }
    return;
  }

  if (phase_ == Phase::kCollecting && matches(m.value, target_)) {
    arr_[static_cast<std::size_t>(m.from)] = ctx.local_time();
    target_senders_.insert(m.from);
    if (!window_armed_ &&
        static_cast<std::int32_t>(target_senders_.size()) >=
            config_.params.f + 1) {
      // At least one nonfaulty broadcast has arrived; the rest arrive within
      // beta + 2 eps real time.  Close on our own physical clock.
      const Params& p = config_.params;
      const double span = (1.0 + p.rho) * (p.beta + 2.0 * p.eps) + 1e-9;
      ctx.set_timer_physical(ctx.physical_time() + span, kCloseTimer);
      window_armed_ = true;
    }
  }
}

void ReintegrationProcess::on_timer(proc::Context& ctx, std::int32_t tag) {
  if (joined_) return wl_.on_timer(ctx, tag);
  if (tag == kCloseTimer && phase_ == Phase::kCollecting) close_window(ctx);
}

void ReintegrationProcess::close_window(proc::Context& ctx) {
  const Params& p = config_.params;
  if (static_cast<std::int32_t>(target_senders_.size()) < p.n - p.f) {
    // Too few senders heard (heavy loss): re-target the next round.
    begin_collection(ctx, target_ + p.P);
    return;
  }
  const double av =
      ms::fault_tolerant_midpoint(arr_, static_cast<std::size_t>(p.f));
  const double adj = target_ + p.delta - av;
  ctx.add_corr(adj);
  joined_ = true;
  const double next_label = target_ + p.P;
  const auto next_round =
      static_cast<std::int32_t>(std::llround((next_label - p.T0) / p.P));
  ctx.annotate({proc::Annotation::Type::kJoined, next_round, next_label, adj});
  wl_.resume(ctx, next_label, next_round);
}

// ----------------------------------------------------------------- churn ---

ChurnProcess::ChurnProcess(WelchLynchConfig config,
                           std::vector<Downtime> downtimes)
    : config_(config), wl_(config), down_(std::move(downtimes)) {
  for (std::size_t i = 0; i < down_.size(); ++i) {
    if (down_[i].rejoin < down_[i].leave) {
      throw std::invalid_argument("ChurnProcess: rejoin precedes leave");
    }
    if (i > 0 && down_[i].leave < down_[i - 1].rejoin) {
      throw std::invalid_argument(
          "ChurnProcess: downtime intervals must be sorted and disjoint");
    }
  }
}

ChurnProcess::Route ChurnProcess::route(proc::Context& ctx) {
  const double now = proc::AdversaryContext::from(ctx).real_time();
  // k = number of leaves at or before now.
  std::size_t k = 0;
  while (k < down_.size() && down_[k].leave <= now) ++k;
  if (k == 0) return Route::kWl;
  if (now < down_[k - 1].rejoin) return Route::kDead;
  if (rejoin_segment_ != k) {
    // First event at or past this segment's rejoin instant: start a fresh
    // Section 9.1 procedure.  The previous one (if any) is discarded with
    // all its state — its pending timers route here and die as stale.
    rejoin_ = std::make_unique<ReintegrationProcess>(config_);
    rejoin_segment_ = k;
  }
  return Route::kRejoin;
}

bool ChurnProcess::participating(proc::Context& ctx) {
  switch (route(ctx)) {
    case Route::kWl:
      return true;
    case Route::kDead:
      return false;
    case Route::kRejoin:
      return rejoin_->joined();
  }
  return false;
}

void ChurnProcess::on_start(proc::Context& ctx) {
  switch (route(ctx)) {
    case Route::kWl:
      wl_.on_start(ctx);
      break;
    case Route::kDead:
      break;
    case Route::kRejoin:
      rejoin_->on_start(ctx);
      break;
  }
}

void ChurnProcess::on_timer(proc::Context& ctx, std::int32_t tag) {
  switch (route(ctx)) {
    case Route::kWl:
      wl_.on_timer(ctx, tag);
      break;
    case Route::kDead:
      break;
    case Route::kRejoin:
      rejoin_->on_timer(ctx, tag);
      break;
  }
}

void ChurnProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  switch (route(ctx)) {
    case Route::kWl:
      wl_.on_message(ctx, m);
      break;
    case Route::kDead:
      break;
    case Route::kRejoin:
      rejoin_->on_message(ctx, m);
      break;
  }
}

}  // namespace wlsync::core
