#include "core/fastpath.h"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>

#include "clock/physical_clock.h"
#include "core/welch_lynch.h"
#include "proc/arrival.h"
#include "proc/reduce_kernels.h"
#include "sim/simulator.h"

namespace wlsync::core {

namespace {
/// Safety margin on the phase-separation and round-overlap predicates.
/// Both comparisons are conservative-by-construction (a false negative
/// merely bails to the event engine); the slack absorbs the delay model's
/// own kDelayTolerance band.
constexpr double kSeparationSlack = 1e-9;

constexpr std::int32_t kBcastTimer = WelchLynchProcess::kBcastTimerTag;
constexpr std::int32_t kUpdateTimer = WelchLynchProcess::kUpdateTimerTag;

/// Final bail reasons — compared by pointer in try_rearm, so every
/// inject_pending call for these must use these exact constants.  Anything
/// else is transient: the event engine may clear the irregular stretch
/// (a spread-out round 0, an overlap near-miss) and reach a clean boundary.
constexpr const char* kBailHorizon = "horizon reached";
constexpr const char* kBailBudget = "event budget";
}  // namespace

/// The Context the replayed process code sees.  Every entry point forwards
/// to a RoundFastPath mirror of the corresponding SimContext method; the
/// read-only queries are the literal SimContext expressions, so the process
/// observes exactly the state it would observe inside a dispatched event.
class FastPathContext final : public proc::Context {
 public:
  FastPathContext(RoundFastPath& fp, std::int32_t pid) : fp_(fp), pid_(pid) {}

  [[nodiscard]] std::int32_t id() const override { return pid_; }
  [[nodiscard]] std::int32_t process_count() const override;
  [[nodiscard]] std::span<const std::int32_t> neighbors() const override;
  [[nodiscard]] double physical_time() const override {
    return fp_.ctx_physical_time(pid_);
  }
  [[nodiscard]] double local_time() const override {
    return physical_time() + corr();
  }
  [[nodiscard]] double corr() const override { return fp_.ctx_corr(pid_); }
  void add_corr(double adj) override { fp_.ctx_add_corr(pid_, adj, 0.0); }
  void add_corr_amortized(double adj, double duration) override {
    fp_.ctx_add_corr(pid_, adj, duration);
  }
  void broadcast(std::int32_t tag, double value, std::int32_t aux) override {
    fp_.on_broadcast(pid_, tag, value, aux);
  }
  void send(std::int32_t /*to*/, std::int32_t /*tag*/, double /*value*/,
            std::int32_t /*aux*/) override {
    // Welch-Lynch only ever broadcasts; a send would mean the replayed code
    // is not the algorithm eligibility vetted.
    throw std::logic_error("RoundFastPath: unexpected point-to-point send");
  }
  void set_timer(double logical_time, std::int32_t tag) override {
    fp_.on_set_timer_logical(pid_, logical_time, tag);
  }
  void set_timer_physical(double /*physical_time*/, std::int32_t /*tag*/) override {
    throw std::logic_error("RoundFastPath: unexpected set_timer_physical");
  }
  void annotate(const proc::Annotation& annotation) override {
    fp_.on_annotate(pid_, annotation);
  }

 private:
  RoundFastPath& fp_;
  std::int32_t pid_;
};

std::int32_t FastPathContext::process_count() const {
  return fp_.sim_.process_count();
}

std::span<const std::int32_t> FastPathContext::neighbors() const {
  return fp_.sim_.neighbors_of(pid_);
}

RoundFastPath::RoundFastPath(sim::Simulator& sim) : sim_(sim) {}
RoundFastPath::~RoundFastPath() = default;

const char* RoundFastPath::ineligible_reason(sim::Simulator& sim) {
  if (sim.process_count() == 0) return "no processes registered";
  if (sim.nic_enabled()) return "Section 9.3 NIC ingress model engaged";
  for (std::int32_t id = 0; id < sim.process_count(); ++id) {
    if (sim.is_faulty(id)) return "faulty processes registered";
    auto* wl = dynamic_cast<WelchLynchProcess*>(&sim.process(id));
    if (wl == nullptr) return "a process is not WelchLynchProcess";
    if (wl->config().stagger > 0.0) return "staggered broadcasts (Section 9.3)";
    if (wl->config().ingest != proc::IngestMode::kArena) {
      return "legacy arrival ingestion";
    }
  }
  for (sim::TraceSink* sink : sim.main_.sinks) {
    if (sink->wants_message_events()) {
      return "a trace sink consumes per-message events";
    }
  }
  return nullptr;
}

// --- SimContext mirrors ----------------------------------------------------

double RoundFastPath::ctx_physical_time(std::int32_t pid) const {
  const auto i = static_cast<std::size_t>(pid);
  return sim_.nodes_[i].clock->now(sim_.main_.current_time);
}

double RoundFastPath::ctx_corr(std::int32_t pid) const {
  const auto i = static_cast<std::size_t>(pid);
  return sim_.nodes_[i].corr.current_target();
}

void RoundFastPath::ctx_add_corr(std::int32_t pid, double adj, double duration) {
  // do_add_corr fires on_corr_change sinks and Observer::on_adjustment at
  // sim_.main_.current_time, which phase 3 has set to the update's exact instant.
  sim_.do_add_corr(sim_.main_, pid, adj, duration);
}

void RoundFastPath::on_annotate(std::int32_t pid,
                                const proc::Annotation& annotation) {
  // Verbatim SimContext::annotate: sinks in attachment order, then the
  // round-begin hook and the next-interest re-read.
  for (sim::TraceSink* sink : sim_.main_.sinks) {
    sink->on_annotation(pid, sim_.main_.current_time, annotation);
  }
  if (sim_.observer_ != nullptr &&
      annotation.type == proc::Annotation::Type::kRoundBegin) {
    sim_.observer_->on_round_begin(pid, annotation.round, sim_.main_.current_time);
    sim_.observer_next_ = sim_.observer_->next_interest();
  }
}

void RoundFastPath::on_broadcast(std::int32_t from, std::int32_t /*tag*/,
                                 double /*value*/, std::int32_t /*aux*/) {
  // Mirror of do_broadcast's observable effects: per recipient in neighbor
  // order, draw the A3-validated delay (the engine's only runtime RNG
  // consumer — same stream, same order), count the message and consume one
  // seq (the engine stamps one per delivery whether fanned out batched or
  // per-recipient).  The payload is not stored: without stagger the
  // algorithm records arrival TIMES only, never message contents, and the
  // bail protocol never needs to re-inject a delivery (every bail point
  // precedes the first draw of its exchange).
  const std::span<const std::int32_t> recipients = sim_.neighbors_of(from);
  double* row = times_.data() + row_offset_[static_cast<std::size_t>(from)];
  for (std::size_t j = 0; j < recipients.size(); ++j) {
    const double deliver_time =
        sim_.main_.current_time + sim_.draw_delay(sim_.main_, from, recipients[j]);
    ++sim_.main_.messages_sent;
    (void)sim_.alloc_seq(from);
    row[j] = deliver_time;
    deliver_min_ = std::min(deliver_min_, deliver_time);
    deliver_max_ = std::max(deliver_max_, deliver_time);
  }
  ++broadcasts_recorded_;
}

void RoundFastPath::on_set_timer_logical(std::int32_t pid, double logical_time,
                                         std::int32_t tag) {
  // Verbatim do_set_timer_logical -> do_set_timer_physical ->
  // do_set_timer_real chain, recording instead of scheduling.  The drop
  // rule consumes no seq in the engine either (schedule_event is never
  // reached), so seq streams stay aligned.
  const auto i = static_cast<std::size_t>(pid);
  const double physical_target =
      logical_time - sim_.nodes_[i].corr.current_target();
  const double real = sim_.nodes_[i].clock->to_real(physical_target);
  if (real <= sim_.main_.current_time) return;
  record_->push_back({real, sim_.alloc_seq(pid), pid, tag});
}

// --- setup -----------------------------------------------------------------

void RoundFastPath::init() {
  n_ = sim_.process_count();
  const auto n = static_cast<std::size_t>(n_);
  mesh_ = !sim_.config_.topology.has_value();

  wl_.resize(n);
  row_offset_.assign(n + 1, 0);
  total_deg_ = 0;
  for (std::int32_t id = 0; id < n_; ++id) {
    const auto i = static_cast<std::size_t>(id);
    wl_[i] = dynamic_cast<WelchLynchProcess*>(&sim_.process(id));
    row_offset_[i] = static_cast<std::size_t>(total_deg_);
    total_deg_ += sim_.neighbors_of(id).size();
    // Bind the arena up front (the engine binds lazily at the first
    // delivery, with the same arguments and the same all-sentinel fill, so
    // the observable state and the rebind counter are identical).
    if (!wl_[i]->arena_.bound()) {
      wl_[i]->arena_.bind(sim_.neighbors_of(id), n_, kNeverArrived);
    }
  }
  row_offset_[n] = static_cast<std::size_t>(total_deg_);
  times_.resize(static_cast<std::size_t>(total_deg_));

  if (!mesh_) {
    // Receiver-major view of the delivery matrix, built once: for each
    // sender row entry (s -> to), the receiving arena slot of s.  Entries
    // whose sender is not in the receiver's neighborhood (slot < 0) are
    // skipped outright — ArrivalArena::record drops them the same way.
    std::vector<std::size_t> counts(n + 1, 0);
    for (std::int32_t s = 0; s < n_; ++s) {
      for (std::int32_t to : sim_.neighbors_of(s)) {
        if (wl_[static_cast<std::size_t>(to)]->arena_.slot_of(s) >= 0) {
          ++counts[static_cast<std::size_t>(to)];
        }
      }
    }
    recv_offset_.assign(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
      recv_offset_[r + 1] = recv_offset_[r] + counts[r];
    }
    recv_flat_.resize(recv_offset_[n]);
    recv_slot_.resize(recv_offset_[n]);
    std::vector<std::size_t> cursor(recv_offset_.begin(), recv_offset_.end() - 1);
    for (std::int32_t s = 0; s < n_; ++s) {
      const std::span<const std::int32_t> recipients = sim_.neighbors_of(s);
      for (std::size_t j = 0; j < recipients.size(); ++j) {
        const auto r = static_cast<std::size_t>(recipients[j]);
        const std::int32_t slot = wl_[r]->arena_.slot_of(s);
        if (slot < 0) continue;
        recv_flat_[cursor[r]] = row_offset_[static_cast<std::size_t>(s)] + j;
        recv_slot_[cursor[r]] = slot;
        ++cursor[r];
      }
    }
  }

  pending_.reserve(n);
  timers_.reserve(n);
  next_timers_.reserve(n);
  pred_update_.resize(n);
  pred_wend_.resize(n);
}

bool RoundFastPath::take_entry_events() {
  // The entry stratum must be exactly one START per process (the A4
  // schedule Experiment::build lays down) OR one tier-1 broadcast timer per
  // process — the shape of a clean exchange boundary, which is what re-arm
  // finds mid-run.  Anything else — a partially run simulator, a
  // reintegration wake-up, extra app events — goes back into the scheduler
  // untouched: the handles still hold their seqs, so pushing them back
  // reconstructs the identical queue.
  const auto n = static_cast<std::size_t>(n_);
  std::vector<sim::EventHandle> handles;
  handles.reserve(n);
  while (!sim_.main_.scheduler->empty()) {
    handles.push_back(sim_.main_.scheduler->pop());
    ++sim_.main_.queue_pops;
  }
  bool ok = handles.size() == n;
  seen_.assign(n, 0);
  for (const sim::EventHandle h : handles) {
    if (!ok) break;
    const sim::Event& e = sim_.main_.pool[h];
    const bool start = e.engine_kind == sim::EngineKind::kDeliver &&
                       e.msg.kind == sim::Kind::kStart && e.tier == 0;
    const bool bcast_timer = e.engine_kind == sim::EngineKind::kDeliver &&
                             e.msg.kind == sim::Kind::kTimer && e.tier == 1 &&
                             e.msg.tag == kBcastTimer;
    const bool fresh = e.to >= 0 && e.to < n_ &&
                       seen_[static_cast<std::size_t>(e.to)] == 0;
    ok = (start || bcast_timer) && fresh;
    if (fresh) seen_[static_cast<std::size_t>(e.to)] = 1;
  }
  if (!ok) {
    for (const sim::EventHandle h : handles) sim_.push_handle(sim_.main_, h);
    stats_.handoff = "unexpected initial queue";
    return false;
  }
  pending_.clear();
  for (const sim::EventHandle h : handles) {
    const sim::Event& e = sim_.main_.pool[h];
    const bool start = e.msg.kind == sim::Kind::kStart;
    pending_.push_back({e.time, e.tier, e.seq, e.to,
                        start ? 0 : e.msg.tag,
                        start ? Kind::kStart : Kind::kTimer});
    sim_.main_.pool.release(h);
  }
  return true;
}

bool RoundFastPath::try_rearm(double horizon) {
  if (stats_.handoff == kBailHorizon || stats_.handoff == kBailBudget) {
    return false;  // final: the caller's run_until owns what remains
  }
  const char* bail = stats_.handoff;  // keep the real reason if we give up
  sim::Simulator::Lane& lane = sim_.main_;
  const auto n = static_cast<std::size_t>(n_);
  for (;;) {
    // Step FIRST: the queue right now is the stratum inject_pending just
    // restored, and phase 0 is deterministic — re-taking it unchanged
    // would reproduce the bail forever.  Only after the event engine has
    // consumed at least one event can a genuinely new boundary emerge.
    if (lane.scheduler->empty()) return false;
    if (lane.pool[lane.scheduler->peek()].time > horizon) return false;
    // One engine event, exactly as run_until would dispatch it (count_event
    // enforces the budget and throws where the engine would).
    ++lane.queue_pops;
    sim_.dispatch(lane, lane.scheduler->pop(), horizon);
    if (lane.scheduler->size() == n) {
      // Cheap pre-check before draining: a boundary's head is a tier-1
      // broadcast timer (or a START, for systems still waking up).
      const sim::Event& head = lane.pool[lane.scheduler->peek()];
      const bool boundary_head =
          head.engine_kind == sim::EngineKind::kDeliver &&
          ((head.msg.kind == sim::Kind::kTimer && head.tier == 1 &&
            head.msg.tag == kBcastTimer) ||
           (head.msg.kind == sim::Kind::kStart && head.tier == 0));
      if (boundary_head && take_entry_events()) return true;
      stats_.handoff = bail;
    }
  }
}

void RoundFastPath::inject_pending(const char* reason) {
  stats_.handoff = reason;
  // A deliver/timer event keyed (time, tier, seq) is indistinguishable from
  // the scheduler entry the engine would have held — same EventKey, same
  // dispatch.  The run_exchange invariants keep every pending time at or
  // after current_time_; the min() is defensive only.
  double tmin = sim_.main_.current_time;
  for (const PendingEvent& e : pending_) tmin = std::min(tmin, e.time);
  sim_.main_.current_time = tmin;
  for (const PendingEvent& e : pending_) {
    const sim::EventHandle h = sim_.main_.pool.acquire();
    sim::Event& ev = sim_.main_.pool[h];
    ev.time = e.time;
    ev.tier = e.tier;
    ev.seq = e.seq;
    ev.to = e.pid;
    ev.engine_kind = sim::EngineKind::kDeliver;
    ev.link = 0xFFFFFFFFu;
    ev.msg = e.kind == Kind::kStart ? sim::make_start() : sim::make_timer(e.tag);
    sim_.push_handle(sim_.main_, h);
  }
  pending_.clear();
}

// --- the per-exchange loop -------------------------------------------------

void RoundFastPath::run(double horizon) {
  const char* reason = ineligible_reason(sim_);
  if (reason != nullptr) {
    stats_.handoff = reason;
    return;
  }
  init();
  if (!take_entry_events()) return;
  stats_.engaged = true;
  for (;;) {
    while (run_exchange(horizon)) ++stats_.exchanges;
    // A transient bail (phase separation, overlap risk, malformed stratum)
    // hands the irregular stretch to the event engine; once it reaches a
    // clean exchange boundary again, resume batching.
    if (!try_rearm(horizon)) return;
    ++stats_.rearms;
  }
}

bool RoundFastPath::run_exchange(double horizon) {
  const auto n = static_cast<std::size_t>(n_);

  // --- phase 0: validate the stratum and predict the whole exchange ---
  if (pending_.size() != n) {
    inject_pending("pending stratum incomplete");
    return false;
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.tier != b.tier) return a.tier < b.tier;
              return a.seq < b.seq;
            });
  seen_.assign(n, 0);
  for (const PendingEvent& e : pending_) {
    const bool legal =
        e.kind == Kind::kStart || (e.kind == Kind::kTimer && e.tag == kBcastTimer);
    if (!legal || e.pid < 0 || e.pid >= n_ ||
        seen_[static_cast<std::size_t>(e.pid)] != 0) {
      inject_pending("pending stratum malformed");
      return false;
    }
    seen_[static_cast<std::size_t>(e.pid)] = 1;
  }
  const double b_max = pending_.back().time;
  if (b_max > horizon) {
    inject_pending(kBailHorizon);
    return false;
  }
  if (sim_.main_.events_processed + n + total_deg_ + n > sim_.config_.max_events) {
    // The engine must own the exact event at which max_events trips.
    inject_pending(kBailBudget);
    return false;
  }

  // Exact update-instant prediction: window_end depends only on label_ /
  // exchange_ / the static config, and CORR cannot change between now and
  // the broadcast that arms the timer, so this IS the double
  // do_set_timer_logical will compute in phase 1.
  double u_min = std::numeric_limits<double>::infinity();
  double u_max = -std::numeric_limits<double>::infinity();
  for (std::int32_t pid = 0; pid < n_; ++pid) {
    const auto i = static_cast<std::size_t>(pid);
    FastPathContext ctx(*this, pid);
    const double wend = wl_[i]->window_end(ctx);
    const double physical = wend - sim_.nodes_[i].corr.current_target();
    const double u = sim_.nodes_[i].clock->to_real(physical);
    pred_wend_[i] = wend;
    pred_update_[i] = u;
    u_min = std::min(u_min, u);
    u_max = std::max(u_max, u);
  }
  if (u_max > horizon) {
    inject_pending(kBailHorizon);
    return false;
  }
  // Strict phase separation: every delivery (<= send + delta + eps + the
  // delay tolerance) must precede every update, or the engine's global
  // order would interleave collection with adjustment.
  if (!(b_max + sim_.config_.delta + sim_.config_.eps + kSeparationSlack <=
        u_min)) {
    inject_pending("phase separation violated");
    return false;
  }

  // --- phase 1: broadcasts through the real process code ---
  timers_.clear();
  record_ = &timers_;
  broadcasts_recorded_ = 0;
  deliver_min_ = std::numeric_limits<double>::infinity();
  deliver_max_ = -std::numeric_limits<double>::infinity();
  for (const PendingEvent& e : pending_) {
    ++sim_.main_.events_processed;
    sim_.main_.current_time = e.time;
    sim_.observe_advance(sim_.main_);
    FastPathContext ctx(*this, e.pid);
    if (e.kind == Kind::kStart) {
      wl_[static_cast<std::size_t>(e.pid)]->on_start(ctx);
    } else {
      wl_[static_cast<std::size_t>(e.pid)]->on_timer(ctx, e.tag);
    }
  }
  // Contract, not a dynamic condition: eligibility pinned the process type,
  // so each broadcast event yields exactly one fanout and one update timer
  // at its predicted instant.  A violation means the replay diverged — fail
  // loudly rather than desynchronize silently.
  if (broadcasts_recorded_ != n || timers_.size() != n) {
    throw std::logic_error("RoundFastPath: broadcast phase contract violated");
  }
  for (const PendingTimer& t : timers_) {
    if (t.tag != kUpdateTimer ||
        t.time != pred_update_[static_cast<std::size_t>(t.pid)]) {
      throw std::logic_error("RoundFastPath: update timer diverged from prediction");
    }
  }

  // --- phase 2: batched arrival evaluation ---
  sim_.main_.events_processed += total_deg_;
  stats_.deliveries += total_deg_;
  do_batched_deliveries();

  // Round-overlap guard, BEFORE updates consume seqs: if any process'
  // NEXT broadcast could fire at or before this round's last update, the
  // engine would interleave the two rounds' seq allocations and our
  // phase-ordered replay could diverge on exact-time ties.  Bound the next
  // broadcast from below without running the update: ADJ = base + delta -
  // AV with AV inside the arena's [min, max] (the reduction is an order
  // statistic / mean of a subset), and real elapsed >= physical gap /
  // (1 + rho).  Conservative: a false alarm just hands the round's update
  // stratum to the event engine.
  {
    for (std::int32_t pid = 0; pid < n_; ++pid) {
      const auto i = static_cast<std::size_t>(pid);
      const WelchLynchProcess& wl = *wl_[i];
      FastPathContext ctx(*this, pid);
      const double sub = wl.sub_period(ctx);
      const double base =
          wl.label_ + static_cast<double>(wl.exchange_) * sub;
      const std::int32_t e2 = wl.exchange_ + 1;
      const double next_base = e2 >= wl.config_.k_exchanges
                                   ? wl.label_ + wl.config_.params.P
                                   : wl.label_ + static_cast<double>(e2) * sub;
      double arr_min = std::numeric_limits<double>::infinity();
      for (const double v : wl.arena_.values()) arr_min = std::min(arr_min, v);
      const double adj_hi = base + wl.config_.params.delta - arr_min;
      const double physical_gap = (next_base - pred_wend_[i]) - adj_hi;
      const double bound =
          pred_update_[i] + physical_gap / (1.0 + wl.config_.params.rho);
      if (!(physical_gap > 0.0) || !(bound > u_max + kSeparationSlack)) {
        pending_.clear();
        for (const PendingTimer& t : timers_) {
          pending_.push_back({t.time, 1, t.seq, t.pid, t.tag, Kind::kTimer});
        }
        inject_pending("round overlap risk");
        return false;
      }
    }
  }

  // --- phase 3: updates through the real process code ---
  std::sort(timers_.begin(), timers_.end(),
            [](const PendingTimer& a, const PendingTimer& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;  // all tier 1
            });
  next_timers_.clear();
  record_ = &next_timers_;
  for (const PendingTimer& t : timers_) {
    ++sim_.main_.events_processed;
    sim_.main_.current_time = t.time;
    sim_.observe_advance(sim_.main_);
    FastPathContext ctx(*this, t.pid);
    wl_[static_cast<std::size_t>(t.pid)]->on_timer(ctx, t.tag);
  }
  for (const PendingTimer& t : next_timers_) {
    if (t.tag != kBcastTimer) {
      throw std::logic_error("RoundFastPath: update phase contract violated");
    }
  }
  pending_.clear();
  for (const PendingTimer& t : next_timers_) {
    pending_.push_back({t.time, 1, t.seq, t.pid, t.tag, Kind::kTimer});
  }
  // A dropped next-broadcast timer (pathologically short P) leaves the
  // stratum short; the next iteration's shape check hands off cleanly.
  return true;
}

// --- the batched delivery kernel -------------------------------------------

void RoundFastPath::do_batched_deliveries() {
  if (mesh_) {
    deliver_mesh(deliver_min_, deliver_max_);
  } else {
    deliver_generic(deliver_min_, deliver_max_);
  }
}

void RoundFastPath::deliver_generic(double t0, double t1) {
  // Sparse graphs: per receiver, gather its delivery times from the flat
  // matrix, evaluate ARR = local-time(t) with the affine kernel (or exact
  // per-point now() when a drift breakpoint splits the window), scatter
  // into the arena slots.  Degrees are small; the strided gather is cheap.
  for (std::int32_t r = 0; r < n_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const std::size_t begin = recv_offset_[i];
    const std::size_t end = recv_offset_[i + 1];
    const std::size_t m = end - begin;
    if (m == 0) continue;
    proc::ArrivalArena& arena = wl_[i]->arena_;
    const double corr = sim_.nodes_[i].corr.current_target();
    const clk::PhysicalClock& clock = *sim_.nodes_[i].clock;
    gather_t_.resize(m);
    gather_v_.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      gather_t_[k] = times_[recv_flat_[begin + k]];
    }
    clk::PhysicalClock::AffineSpan span;
    if (clock.affine_span(t0, t1, span)) {
      proc::kernels::affine_arrival_eval(gather_v_.data(), gather_t_.data(), m,
                                         span.real, span.clock, span.rate, corr);
    } else {
      for (std::size_t k = 0; k < m; ++k) {
        gather_v_[k] = clock.now(gather_t_[k]) + corr;
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      arena.set_slot(static_cast<std::size_t>(recv_slot_[begin + k]),
                     gather_v_[k]);
    }
  }
}

void RoundFastPath::deliver_mesh(double t0, double t1) {
  // Full mesh: sender s's row is contiguous in recipient id order and the
  // arena slot of sender s at every receiver is s, so the matrix transposes
  // with a receiver-blocked sweep — for each block of receivers, walk the
  // sender rows once (contiguous loads) and append slot s to each
  // receiver's arena (each arena advances sequentially, one cache line per
  // eight senders).  The inner expression is affine_arrival_eval's, kept
  // inline so the compiler vectorizes across the receiver block.
  constexpr std::size_t kBlock = 64;
  const auto n = static_cast<std::size_t>(n_);
  double a_c[kBlock];   // segment clock reading
  double o_c[kBlock];   // segment real start
  double r_c[kBlock];   // segment rate
  double c_c[kBlock];   // CORR target
  double* dst[kBlock];  // arena slot base
  bool affine[kBlock];

  for (std::size_t rb = 0; rb < n; rb += kBlock) {
    const std::size_t blk = std::min(kBlock, n - rb);
    bool all_affine = true;
    for (std::size_t i = 0; i < blk; ++i) {
      const std::size_t r = rb + i;
      c_c[i] = sim_.nodes_[r].corr.current_target();
      dst[i] = wl_[r]->arena_.slot_data();
      clk::PhysicalClock::AffineSpan span;
      affine[i] = sim_.nodes_[r].clock->affine_span(t0, t1, span);
      a_c[i] = span.clock;
      o_c[i] = span.real;
      r_c[i] = span.rate;
      all_affine = all_affine && affine[i];
    }
    if (all_affine) {
      for (std::size_t s = 0; s < n; ++s) {
        const double* trow = times_.data() + s * n + rb;
        for (std::size_t i = 0; i < blk; ++i) {
          dst[i][s] = (a_c[i] + (trow[i] - o_c[i]) * r_c[i]) + c_c[i];
        }
      }
      continue;
    }
    // A drift breakpoint inside the window for some receiver in the block:
    // evaluate those receivers per point through now() (bit-identical on
    // any window) and the rest with the affine expression.
    for (std::size_t i = 0; i < blk; ++i) {
      const std::size_t r = rb + i;
      if (affine[i]) {
        for (std::size_t s = 0; s < n; ++s) {
          const double t = times_[s * n + r];
          dst[i][s] = (a_c[i] + (t - o_c[i]) * r_c[i]) + c_c[i];
        }
      } else {
        const clk::PhysicalClock& clock = *sim_.nodes_[r].clock;
        for (std::size_t s = 0; s < n; ++s) {
          dst[i][s] = clock.now(times_[s * n + r]) + c_c[i];
        }
      }
    }
  }
}

}  // namespace wlsync::core
