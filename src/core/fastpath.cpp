#include "core/fastpath.h"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>

#include "clock/physical_clock.h"
#include "core/welch_lynch.h"
#include "net/topology.h"
#include "proc/arrival.h"
#include "proc/reduce_kernels.h"
#include "sim/simulator.h"

namespace wlsync::core {

namespace {
/// Safety margin on the phase-separation and round-overlap predicates.
/// Both comparisons are conservative-by-construction (a false negative
/// merely bails to the event engine); the slack absorbs the delay model's
/// own kDelayTolerance band.
constexpr double kSeparationSlack = 1e-9;

constexpr std::int32_t kBcastTimer = WelchLynchProcess::kBcastTimerTag;
constexpr std::int32_t kUpdateTimer = WelchLynchProcess::kUpdateTimerTag;

/// Final bail reasons — compared by pointer in try_rearm, so every
/// inject_pending call for these must use these exact constants.  Anything
/// else is transient: the event engine may clear the irregular stretch
/// (a spread-out round 0, an overlap near-miss) and reach a clean boundary.
constexpr const char* kBailHorizon = "horizon reached";
constexpr const char* kBailBudget = "event budget";
}  // namespace

/// The Context the replayed process code sees.  Every entry point forwards
/// to a RoundFastPath mirror of the corresponding SimContext method; the
/// read-only queries are the literal SimContext expressions, so the process
/// observes exactly the state it would observe inside a dispatched event.
class FastPathContext final : public proc::Context {
 public:
  FastPathContext(RoundFastPath& fp, std::int32_t pid) : fp_(fp), pid_(pid) {}

  [[nodiscard]] std::int32_t id() const override { return pid_; }
  [[nodiscard]] std::int32_t process_count() const override;
  [[nodiscard]] std::span<const std::int32_t> neighbors() const override;
  [[nodiscard]] double physical_time() const override {
    return fp_.ctx_physical_time(pid_);
  }
  [[nodiscard]] double local_time() const override {
    return physical_time() + corr();
  }
  [[nodiscard]] double corr() const override { return fp_.ctx_corr(pid_); }
  void add_corr(double adj) override { fp_.ctx_add_corr(pid_, adj, 0.0); }
  void add_corr_amortized(double adj, double duration) override {
    fp_.ctx_add_corr(pid_, adj, duration);
  }
  void broadcast(std::int32_t tag, double value, std::int32_t aux) override {
    fp_.on_broadcast(pid_, tag, value, aux);
  }
  void send(std::int32_t /*to*/, std::int32_t /*tag*/, double /*value*/,
            std::int32_t /*aux*/) override {
    // Welch-Lynch only ever broadcasts; a send would mean the replayed code
    // is not the algorithm eligibility vetted.
    throw std::logic_error("RoundFastPath: unexpected point-to-point send");
  }
  void set_timer(double logical_time, std::int32_t tag) override {
    fp_.on_set_timer_logical(pid_, logical_time, tag);
  }
  void set_timer_physical(double /*physical_time*/, std::int32_t /*tag*/) override {
    throw std::logic_error("RoundFastPath: unexpected set_timer_physical");
  }
  void annotate(const proc::Annotation& annotation) override {
    fp_.on_annotate(pid_, annotation);
  }

 private:
  RoundFastPath& fp_;
  std::int32_t pid_;
};

std::int32_t FastPathContext::process_count() const {
  return fp_.sim_.process_count();
}

std::span<const std::int32_t> FastPathContext::neighbors() const {
  return fp_.sim_.neighbors_of(pid_);
}

RoundFastPath::RoundFastPath(sim::Simulator& sim) : sim_(sim) {}
RoundFastPath::~RoundFastPath() = default;

const char* RoundFastPath::ineligible_reason(sim::Simulator& sim) {
  if (sim.process_count() == 0) return "no processes registered";
  if (sim.has_dynamics()) return "dynamic-topology schedule installed";
  if (sim.nic_enabled()) return "Section 9.3 NIC ingress model engaged";
  const std::int32_t n = sim.process_count();
  std::vector<std::int32_t> faulty;
  for (std::int32_t id = 0; id < n; ++id) {
    if (sim.is_faulty(id)) faulty.push_back(id);
  }
  // The fast set: everyone when fault-free; the honest remainder outside
  // the adversaries' closed neighborhood otherwise.  A fast pid has no
  // faulty neighbor by construction, so its collection window can only be
  // fed by the batched kernel and by honest region senders the merged loop
  // dispatches at their exact instants.
  std::vector<char> fast(static_cast<std::size_t>(n), 1);
  if (!faulty.empty()) {
    if (!sim.config_.topology.has_value()) {
      // Implicit full mesh: every honest process is the adversary's
      // neighbor, so no fast region exists.
      return "adversary neighborhood covers the exchange graph";
    }
    for (std::int32_t r : sim.config_.topology->closed_neighborhood(faulty)) {
      fast[static_cast<std::size_t>(r)] = 0;
    }
    bool any_fast = false;
    for (std::int32_t id = 0; id < n && !any_fast; ++id) {
      any_fast = fast[static_cast<std::size_t>(id)] != 0;
    }
    if (!any_fast) return "adversary neighborhood covers the exchange graph";
  }
  double stagger = 0.0;
  bool stagger_seen = false;
  for (std::int32_t id = 0; id < n; ++id) {
    if (!fast[static_cast<std::size_t>(id)]) continue;
    auto* wl = dynamic_cast<WelchLynchProcess*>(&sim.process(id));
    if (wl == nullptr) return "a process is not WelchLynchProcess";
    if (wl->config().ingest != proc::IngestMode::kArena) {
      return "legacy arrival ingestion";
    }
    if (!stagger_seen) {
      stagger = wl->config().stagger;
      stagger_seen = true;
    } else if (wl->config().stagger != stagger) {
      return "inconsistent stagger across processes";
    }
  }
  if (stagger > 0.0 && !faulty.empty()) {
    return "staggered broadcasts with faults present";
  }
  for (sim::TraceSink* sink : sim.main_.sinks) {
    if (sink->wants_message_events()) {
      return "a trace sink consumes per-message events";
    }
  }
  return nullptr;
}

// --- SimContext mirrors ----------------------------------------------------

double RoundFastPath::ctx_physical_time(std::int32_t pid) const {
  const auto i = static_cast<std::size_t>(pid);
  return sim_.nodes_[i].clock->now(sim_.main_.current_time);
}

double RoundFastPath::ctx_corr(std::int32_t pid) const {
  const auto i = static_cast<std::size_t>(pid);
  return sim_.nodes_[i].corr.current_target();
}

void RoundFastPath::ctx_add_corr(std::int32_t pid, double adj, double duration) {
  // do_add_corr fires on_corr_change sinks and Observer::on_adjustment at
  // sim_.main_.current_time, which phase 3 has set to the update's exact instant.
  sim_.do_add_corr(sim_.main_, pid, adj, duration);
}

void RoundFastPath::on_annotate(std::int32_t pid,
                                const proc::Annotation& annotation) {
  // Verbatim SimContext::annotate: sinks in attachment order, then the
  // round-begin hook and the next-interest re-read.
  for (sim::TraceSink* sink : sim_.main_.sinks) {
    sink->on_annotation(pid, sim_.main_.current_time, annotation);
  }
  if (sim_.observer_ != nullptr &&
      annotation.type == proc::Annotation::Type::kRoundBegin) {
    sim_.observer_->on_round_begin(pid, annotation.round, sim_.main_.current_time);
    sim_.observer_next_ = sim_.observer_->next_interest();
  }
}

void RoundFastPath::on_broadcast(std::int32_t from, std::int32_t tag,
                                 double value, std::int32_t aux) {
  // Mirror of do_broadcast's observable effects: per recipient in neighbor
  // order, draw the A3-validated delay (the engine's only runtime RNG
  // consumer — same stream, same order), count the message and consume one
  // seq (the engine stamps one per delivery whether fanned out batched or
  // per-recipient).  Fast recipients go into the delivery matrix; in
  // kRegion, recipients inside the tainted region get a real scheduler
  // entry carrying the pre-drawn delay and pre-allocated seq — exactly the
  // kDeliver event the serial engine's fan-out would have keyed.  The
  // payload matters only for those: the fast-side algorithm records
  // arrival TIMES, and the bail protocol never needs to re-inject a
  // kernel delivery (every bail point precedes the first draw of its
  // exchange).
  const std::span<const std::int32_t> recipients = sim_.neighbors_of(from);
  double* row = times_.data() + row_offset_[static_cast<std::size_t>(from)];
  std::size_t cursor = 0;
  const bool region = mode_ == Mode::kRegion;
  sim::Message msg;
  if (region) msg = sim::make_app(from, tag, value, aux);
  for (std::size_t j = 0; j < recipients.size(); ++j) {
    const std::int32_t to = recipients[j];
    const double deliver_time =
        sim_.main_.current_time + sim_.draw_delay(sim_.main_, from, to);
    ++sim_.main_.messages_sent;
    const std::uint64_t seq = sim_.alloc_seq(from);
    if (!region || fast_[static_cast<std::size_t>(to)]) {
      (void)seq;
      row[cursor++] = deliver_time;
      deliver_min_ = std::min(deliver_min_, deliver_time);
      deliver_max_ = std::max(deliver_max_, deliver_time);
    } else {
      sim_.schedule_raw(sim_.main_, deliver_time, /*tier=*/0, seq, to,
                        sim::EngineKind::kDeliver, msg);
      engine_head_valid_ = false;
    }
  }
  ++broadcasts_recorded_;
}

void RoundFastPath::on_set_timer_logical(std::int32_t pid, double logical_time,
                                         std::int32_t tag) {
  // Verbatim do_set_timer_logical -> do_set_timer_physical ->
  // do_set_timer_real chain, recording instead of scheduling.  The drop
  // rule consumes no seq in the engine either (schedule_event is never
  // reached), so seq streams stay aligned.  Records route by tag: update
  // timers into the active update set; broadcast timers into the phase-1
  // worklist while it runs (a staggered START arms its broadcast timer for
  // later in the SAME exchange) or into the next-exchange stratum during
  // phase 3.
  const auto i = static_cast<std::size_t>(pid);
  const double physical_target =
      logical_time - sim_.nodes_[i].corr.current_target();
  const double real = sim_.nodes_[i].clock->to_real(physical_target);
  if (real <= sim_.main_.current_time) return;
  const std::uint64_t seq = sim_.alloc_seq(pid);
  if (tag == kBcastTimer) {
    if (worklist_active_) {
      worklist_.push_back({real, 1, seq, pid, tag, Kind::kTimer});
      std::push_heap(worklist_.begin(), worklist_.end(),
                     [](const PendingEvent& a, const PendingEvent& b) {
                       if (a.time != b.time) return a.time > b.time;
                       if (a.tier != b.tier) return a.tier > b.tier;
                       return a.seq > b.seq;
                     });
    } else if (record_bcast_ != nullptr) {
      record_bcast_->push_back({real, seq, pid, tag});
    } else {
      throw std::logic_error(
          "RoundFastPath: broadcast timer armed outside a replay phase");
    }
  } else if (tag == kUpdateTimer) {
    if (record_update_ == nullptr) {
      throw std::logic_error(
          "RoundFastPath: update timer armed outside a replay phase");
    }
    record_update_->push_back({real, seq, pid, tag});
  } else {
    throw std::logic_error("RoundFastPath: unexpected timer tag");
  }
}

// --- setup -----------------------------------------------------------------

void RoundFastPath::init() {
  n_ = sim_.process_count();
  const auto n = static_cast<std::size_t>(n_);
  mesh_ = !sim_.config_.topology.has_value();

  // Mode + fast set: mirrors ineligible_reason, which already vetted the
  // combination (faults imply an explicit topology and a nonempty honest
  // remainder; stagger implies no faults).
  std::vector<std::int32_t> faulty;
  for (std::int32_t id = 0; id < n_; ++id) {
    if (sim_.is_faulty(id)) faulty.push_back(id);
  }
  fast_.assign(n, 1);
  if (!faulty.empty()) {
    for (std::int32_t r : sim_.config_.topology->closed_neighborhood(faulty)) {
      fast_[static_cast<std::size_t>(r)] = 0;
    }
  }
  fast_ids_.clear();
  for (std::int32_t id = 0; id < n_; ++id) {
    if (fast_[static_cast<std::size_t>(id)]) fast_ids_.push_back(id);
  }
  wl_.assign(n, nullptr);
  for (std::int32_t id : fast_ids_) {
    wl_[static_cast<std::size_t>(id)] =
        dynamic_cast<WelchLynchProcess*>(&sim_.process(id));
  }
  stagger_ = wl_[static_cast<std::size_t>(fast_ids_.front())]->config().stagger;
  mode_ = !faulty.empty() ? Mode::kRegion
                          : (stagger_ > 0.0 ? Mode::kStaggered : Mode::kPlain);
  stats_.fast_count = static_cast<std::int32_t>(fast_ids_.size());
  if (mode_ == Mode::kStaggered) {
    // The receiver-side normalization the engine applies per time message:
    // arrival -= (double)from * stagger.  Same product, same double.
    off_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
      off_[s] = static_cast<double>(s) * stagger_;
    }
  }

  row_offset_.assign(n + 1, 0);
  total_deg_ = 0;
  for (std::int32_t id = 0; id < n_; ++id) {
    const auto i = static_cast<std::size_t>(id);
    row_offset_[i] = static_cast<std::size_t>(total_deg_);
    if (!fast_[i]) continue;
    if (mode_ == Mode::kRegion) {
      for (std::int32_t to : sim_.neighbors_of(id)) {
        if (fast_[static_cast<std::size_t>(to)]) ++total_deg_;
      }
    } else {
      total_deg_ += sim_.neighbors_of(id).size();
    }
    // Bind the arena up front (the engine binds lazily at the first
    // delivery, with the same arguments and the same all-sentinel fill, so
    // the observable state and the rebind counter are identical).
    if (!wl_[i]->arena_.bound()) {
      wl_[i]->arena_.bind(sim_.neighbors_of(id), n_, kNeverArrived);
    }
  }
  row_offset_[n] = static_cast<std::size_t>(total_deg_);
  times_.resize(static_cast<std::size_t>(total_deg_));

  if (!mesh_) {
    // Receiver-major view of the delivery matrix, built once: for each
    // kernel entry (s -> to), the receiving arena slot of s (plus s's
    // stagger offset when staggered).  Entries whose sender is not in the
    // receiver's neighborhood (slot < 0) are skipped outright —
    // ArrivalArena::record drops them the same way.
    std::vector<std::size_t> counts(n + 1, 0);
    for (std::int32_t s : fast_ids_) {
      for (std::int32_t to : sim_.neighbors_of(s)) {
        const auto r = static_cast<std::size_t>(to);
        if (!fast_[r]) continue;
        if (wl_[r]->arena_.slot_of(s) >= 0) ++counts[r];
      }
    }
    recv_offset_.assign(n + 1, 0);
    for (std::size_t r = 0; r < n; ++r) {
      recv_offset_[r + 1] = recv_offset_[r] + counts[r];
    }
    recv_flat_.resize(recv_offset_[n]);
    recv_slot_.resize(recv_offset_[n]);
    recv_off_.assign(mode_ == Mode::kStaggered ? recv_offset_[n] : 0, 0.0);
    std::vector<std::size_t> cursor(recv_offset_.begin(), recv_offset_.end() - 1);
    for (std::int32_t s : fast_ids_) {
      const std::span<const std::int32_t> recipients = sim_.neighbors_of(s);
      std::size_t pos = row_offset_[static_cast<std::size_t>(s)];
      for (std::size_t j = 0; j < recipients.size(); ++j) {
        const auto r = static_cast<std::size_t>(recipients[j]);
        if (mode_ == Mode::kRegion && !fast_[r]) continue;  // scheduled, not matrixed
        const std::int32_t slot = wl_[r]->arena_.slot_of(s);
        if (slot >= 0) {
          recv_flat_[cursor[r]] = pos;
          recv_slot_[cursor[r]] = slot;
          if (mode_ == Mode::kStaggered) {
            recv_off_[cursor[r]] = off_[static_cast<std::size_t>(s)];
          }
          ++cursor[r];
        }
        ++pos;
      }
    }
  }

  pending_.reserve(n);
  timers_.reserve(n);
  next_timers_.reserve(n);
  entry_updates_.reserve(n);
  pred_update_.resize(n);
  pred_wend_.resize(n);
}

bool RoundFastPath::take_entry_events() {
  // The entry stratum must be a clean exchange boundary.  kPlain: exactly
  // one START (the A4 schedule Experiment::build lays down) or one tier-1
  // broadcast timer per process.  kStaggered additionally accepts the
  // steady-state 2n-1 shape: one broadcast timer per process plus the
  // pre-armed update timer begin_exchange gave every p > 0 (p = 0 arms its
  // update at its broadcast).  kRegion extracts one START-or-broadcast-
  // timer per FAST pid and leaves region events scheduled; any pending
  // fast-pid update timer means the fast set is mid-exchange — not a
  // boundary.  Anything else goes back into the scheduler untouched: the
  // handles still hold their seqs, so pushing them back reconstructs the
  // identical queue.
  const auto n = static_cast<std::size_t>(n_);
  engine_head_valid_ = false;
  sim::Simulator::Lane& lane = sim_.main_;
  std::vector<sim::EventHandle> handles;   // boundary candidates
  std::vector<sim::EventHandle> others;    // kRegion: stays with the engine
  handles.reserve(n);
  bool ok = true;
  bool any_start = false;
  std::size_t bcount = 0;
  std::size_t ucount = 0;
  seen_.assign(n, 0);
  std::vector<char> upd(n, 0);
  while (!lane.scheduler->empty()) {
    const sim::EventHandle h = lane.scheduler->pop();
    ++lane.queue_pops;
    const sim::Event& e = lane.pool[h];
    const bool deliver = e.engine_kind == sim::EngineKind::kDeliver;
    const bool in_range = e.to >= 0 && e.to < n_;
    const bool start = deliver && e.msg.kind == sim::Kind::kStart && e.tier == 0;
    const bool bcast_timer = deliver && e.msg.kind == sim::Kind::kTimer &&
                             e.tier == 1 && e.msg.tag == kBcastTimer;
    const bool update_timer = deliver && e.msg.kind == sim::Kind::kTimer &&
                              e.tier == 1 && e.msg.tag == kUpdateTimer;
    if (mode_ == Mode::kRegion) {
      const bool to_fast =
          in_range && fast_[static_cast<std::size_t>(e.to)] != 0;
      if (to_fast && (start || bcast_timer)) {
        if (seen_[static_cast<std::size_t>(e.to)] != 0) ok = false;
        seen_[static_cast<std::size_t>(e.to)] = 1;
        ++bcount;
        handles.push_back(h);
      } else {
        // A fast-pid timer that is not a boundary broadcast timer (its
        // update timer, in particular) means we are mid-exchange.
        if (to_fast && deliver && e.msg.kind == sim::Kind::kTimer) ok = false;
        others.push_back(h);
      }
      continue;
    }
    handles.push_back(h);
    if ((start || bcast_timer) && in_range &&
        seen_[static_cast<std::size_t>(e.to)] == 0) {
      seen_[static_cast<std::size_t>(e.to)] = 1;
      ++bcount;
      any_start = any_start || start;
    } else if (update_timer && mode_ == Mode::kStaggered && in_range &&
               e.to > 0 && upd[static_cast<std::size_t>(e.to)] == 0) {
      upd[static_cast<std::size_t>(e.to)] = 1;
      ++ucount;
    } else {
      ok = false;
    }
  }
  ok = ok && bcount == fast_ids_.size();
  if (mode_ != Mode::kRegion && ucount != 0) {
    // The pre-armed shape is all-or-nothing: n broadcast timers (no
    // STARTs) and one update timer for every p > 0.
    ok = ok && mode_ == Mode::kStaggered && !any_start && ucount == n - 1;
  }
  if (!ok) {
    for (const sim::EventHandle h : handles) sim_.push_handle(lane, h);
    for (const sim::EventHandle h : others) sim_.push_handle(lane, h);
    stats_.handoff = mode_ == Mode::kRegion ? "fast region boundary not clean"
                                            : "unexpected initial queue";
    return false;
  }
  for (const sim::EventHandle h : others) sim_.push_handle(lane, h);
  pending_.clear();
  entry_updates_.clear();
  for (const sim::EventHandle h : handles) {
    const sim::Event& e = lane.pool[h];
    if (e.msg.kind == sim::Kind::kTimer && e.msg.tag == kUpdateTimer) {
      entry_updates_.push_back({e.time, e.seq, e.to, e.msg.tag});
    } else {
      const bool start = e.msg.kind == sim::Kind::kStart;
      pending_.push_back({e.time, e.tier, e.seq, e.to,
                          start ? 0 : e.msg.tag,
                          start ? Kind::kStart : Kind::kTimer});
    }
    lane.pool.release(h);
  }
  return true;
}

bool RoundFastPath::try_rearm(double horizon) {
  if (stats_.handoff == kBailHorizon || stats_.handoff == kBailBudget) {
    return false;  // final: the caller's run_until owns what remains
  }
  const char* bail = stats_.handoff;  // keep the real reason if we give up
  sim::Simulator::Lane& lane = sim_.main_;
  const auto n = static_cast<std::size_t>(n_);
  for (;;) {
    // Step FIRST: the queue right now is the stratum inject_pending just
    // restored, and phase 0 is deterministic — re-taking it unchanged
    // would reproduce the bail forever.  Only after the event engine has
    // consumed at least one event can a genuinely new boundary emerge.
    if (lane.scheduler->empty()) return false;
    if (lane.pool[lane.scheduler->peek()].time > horizon) return false;
    bool attempt = false;
    if (mode_ == Mode::kRegion) {
      // While disengaged the fast pids run on the engine like everyone
      // else; a boundary can only complete right after a fast pid's
      // update (arming its next broadcast timer) or START.
      const sim::Event& e = lane.pool[lane.scheduler->peek()];
      attempt = e.engine_kind == sim::EngineKind::kDeliver && e.to >= 0 &&
                e.to < n_ && fast_[static_cast<std::size_t>(e.to)] != 0 &&
                ((e.msg.kind == sim::Kind::kTimer && e.tier == 1 &&
                  e.msg.tag == kUpdateTimer) ||
                 e.msg.kind == sim::Kind::kStart);
    }
    // One engine event, exactly as run_until would dispatch it (count_event
    // enforces the budget and throws where the engine would).
    ++lane.queue_pops;
    sim_.dispatch(lane, lane.scheduler->pop(), horizon);
    if (mode_ == Mode::kRegion) {
      if (attempt) {
        if (take_entry_events()) return true;
        stats_.handoff = bail;
      }
      continue;
    }
    if (lane.scheduler->size() == n ||
        (mode_ == Mode::kStaggered && lane.scheduler->size() == 2 * n - 1)) {
      // Cheap pre-check before draining: a boundary's head is a tier-1
      // broadcast timer (or a START, for systems still waking up).
      const sim::Event& head = lane.pool[lane.scheduler->peek()];
      const bool boundary_head =
          head.engine_kind == sim::EngineKind::kDeliver &&
          ((head.msg.kind == sim::Kind::kTimer && head.tier == 1 &&
            head.msg.tag == kBcastTimer) ||
           (head.msg.kind == sim::Kind::kStart && head.tier == 0));
      if (boundary_head && take_entry_events()) return true;
      stats_.handoff = bail;
    }
  }
}

void RoundFastPath::inject_pending(const char* reason) {
  engine_head_valid_ = false;
  stats_.handoff = reason;
  // A deliver/timer event keyed (time, tier, seq) is indistinguishable from
  // the scheduler entry the engine would have held — same EventKey, same
  // dispatch.  Pre-armed staggered update timers held across the boundary
  // are part of the stratum and go back with it.  The run_exchange
  // invariants keep every pending time at or after current_time_; the
  // min() is defensive only.
  for (const PendingTimer& t : entry_updates_) {
    pending_.push_back({t.time, 1, t.seq, t.pid, t.tag, Kind::kTimer});
  }
  entry_updates_.clear();
  double tmin = sim_.main_.current_time;
  for (const PendingEvent& e : pending_) tmin = std::min(tmin, e.time);
  sim_.main_.current_time = tmin;
  for (const PendingEvent& e : pending_) {
    const sim::EventHandle h = sim_.main_.pool.acquire();
    sim::Event& ev = sim_.main_.pool[h];
    ev.time = e.time;
    ev.tier = e.tier;
    ev.seq = e.seq;
    ev.to = e.pid;
    ev.engine_kind = sim::EngineKind::kDeliver;
    ev.link = 0xFFFFFFFFu;
    ev.msg = e.kind == Kind::kStart ? sim::make_start() : sim::make_timer(e.tag);
    sim_.push_handle(sim_.main_, h);
  }
  pending_.clear();
}

void RoundFastPath::advance_engine_to(double time, std::int32_t tier,
                                      std::uint64_t seq) {
  // kRegion merged loop: everything the scheduler holds strictly before the
  // fast event's (time, tier, seq) key runs through the regular engine
  // first — region timers and fan-outs, deliveries into the fast arenas,
  // adversary sends — so observable state at the fast replay instant is
  // exactly the serial engine's.  The fast event's time caps fan-out run
  // extension (dispatch_fanout requeues past the limit), so nothing leaks
  // beyond the boundary key.
  sim::Simulator::Lane& lane = sim_.main_;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tier)) << 62) | seq;
  if (engine_head_valid_ &&
      !(engine_head_time_ < time ||
        (engine_head_time_ == time && engine_head_key_ < key))) {
    return;  // head unchanged since last look and not yet due
  }
  while (!lane.scheduler->empty()) {
    const sim::Event& head = lane.pool[lane.scheduler->peek()];
    const std::uint64_t head_key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(head.tier))
         << 62) |
        head.seq;
    if (!(head.time < time || (head.time == time && head_key < key))) break;
    if (head.engine_kind == sim::EngineKind::kDeliver &&
        head.msg.kind == sim::Kind::kTimer && head.to >= 0 && head.to < n_ &&
        fast_[static_cast<std::size_t>(head.to)] != 0) {
      // While engaged, every fast-pid timer lives in pending_/timers_ —
      // processes only arm their own timers, so one in the scheduler means
      // the replay diverged.  Fail loudly rather than desynchronize.
      throw std::logic_error(
          "RoundFastPath: fast-region timer escaped to the scheduler");
    }
    ++lane.queue_pops;
    ++stats_.region_events;
    sim_.dispatch(lane, lane.scheduler->pop(), time);
  }
  if (lane.scheduler->empty()) {
    engine_head_time_ = std::numeric_limits<double>::infinity();
    engine_head_key_ = ~std::uint64_t{0};
  } else {
    const sim::Event& head = lane.pool[lane.scheduler->peek()];
    engine_head_time_ = head.time;
    engine_head_key_ =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(head.tier))
         << 62) |
        head.seq;
  }
  engine_head_valid_ = true;
}

// --- the per-exchange loop -------------------------------------------------

void RoundFastPath::run(double horizon) {
  const char* reason = ineligible_reason(sim_);
  if (reason != nullptr) {
    stats_.handoff = reason;
    return;
  }
  init();
  if (!take_entry_events()) return;
  stats_.engaged = true;
  for (;;) {
    while (run_exchange(horizon)) ++stats_.exchanges;
    // A transient bail (phase separation, overlap risk, malformed stratum)
    // hands the irregular stretch to the event engine; once it reaches a
    // clean exchange boundary again, resume batching.
    if (!try_rearm(horizon)) return;
    ++stats_.rearms;
  }
}


bool RoundFastPath::run_exchange(double horizon) {
  const std::size_t nf = fast_ids_.size();

  // --- phase 0: validate the stratum and predict the whole exchange ---
  if (pending_.size() != nf) {
    inject_pending("pending stratum incomplete");
    return false;
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.tier != b.tier) return a.tier < b.tier;
              return a.seq < b.seq;
            });
  seen_.assign(static_cast<std::size_t>(n_), 0);
  double b_max = -std::numeric_limits<double>::infinity();
  for (const PendingEvent& e : pending_) {
    const bool legal =
        e.kind == Kind::kStart || (e.kind == Kind::kTimer && e.tag == kBcastTimer);
    if (!legal || e.pid < 0 || e.pid >= n_ ||
        !fast_[static_cast<std::size_t>(e.pid)] ||
        seen_[static_cast<std::size_t>(e.pid)] != 0) {
      inject_pending("pending stratum malformed");
      return false;
    }
    seen_[static_cast<std::size_t>(e.pid)] = 1;
    // The broadcast instant this event leads to.  A staggered START does
    // not broadcast at its own time: begin_exchange arms a broadcast timer
    // at broadcast_label for p > 0 — predict it through the same
    // CORR/to_real chain set_timer will use (CORR cannot change first).
    double b = e.time;
    if (mode_ == Mode::kStaggered && e.kind == Kind::kStart && e.pid > 0) {
      const auto i = static_cast<std::size_t>(e.pid);
      FastPathContext ctx(*this, e.pid);
      const double bl = wl_[i]->broadcast_label(ctx);
      const double physical = bl - sim_.nodes_[i].corr.current_target();
      b = sim_.nodes_[i].clock->to_real(physical);
      if (!(b > e.time)) {
        // The engine would drop the timer and the pid would never
        // broadcast — a shape this phase structure cannot represent.
        inject_pending("pending stratum malformed");
        return false;
      }
    }
    b_max = std::max(b_max, b);
  }
  if (b_max > horizon) {
    inject_pending(kBailHorizon);
    return false;
  }
  if (sim_.main_.events_processed + nf + total_deg_ + nf >
      sim_.config_.max_events) {
    // The engine must own the exact event at which max_events trips.  (In
    // kRegion the merged loop's engine events may still trip it mid-
    // exchange; count_event throws there exactly as the serial run would.)
    inject_pending(kBailBudget);
    return false;
  }

  // Exact update-instant prediction: window_end depends only on label_ /
  // exchange_ / the static config, and CORR cannot change between now and
  // the broadcast that arms the timer, so this IS the double
  // do_set_timer_logical will compute in phase 1.
  double u_min = std::numeric_limits<double>::infinity();
  double u_max = -std::numeric_limits<double>::infinity();
  for (std::int32_t pid : fast_ids_) {
    const auto i = static_cast<std::size_t>(pid);
    FastPathContext ctx(*this, pid);
    const double wend = wl_[i]->window_end(ctx);
    const double physical = wend - sim_.nodes_[i].corr.current_target();
    const double u = sim_.nodes_[i].clock->to_real(physical);
    pred_wend_[i] = wend;
    pred_update_[i] = u;
    u_min = std::min(u_min, u);
    u_max = std::max(u_max, u);
  }
  if (!entry_updates_.empty()) {
    // kStaggered steady state: one pre-armed update timer per p > 0, each
    // at its predicted instant bit-for-bit (armed by the same formula with
    // the same inputs).  Anything else is not the boundary we took.
    bool valid = mode_ == Mode::kStaggered && entry_updates_.size() == nf - 1;
    seen_.assign(static_cast<std::size_t>(n_), 0);
    for (const PendingTimer& t : entry_updates_) {
      valid = valid && t.pid > 0 && t.pid < n_ && t.tag == kUpdateTimer &&
              seen_[static_cast<std::size_t>(t.pid)] == 0 &&
              t.time == pred_update_[static_cast<std::size_t>(t.pid)];
      if (!valid) break;
      seen_[static_cast<std::size_t>(t.pid)] = 1;
    }
    if (!valid) {
      inject_pending("pending stratum malformed");
      return false;
    }
  }
  if (u_max > horizon) {
    inject_pending(kBailHorizon);
    return false;
  }
  // Strict phase separation: every kernel delivery (<= send + delta + eps +
  // the delay tolerance) must precede every fast update, or the engine's
  // global order would interleave collection with adjustment.
  if (!(b_max + sim_.config_.delta + sim_.config_.eps + kSeparationSlack <=
        u_min)) {
    inject_pending("phase separation violated");
    return false;
  }

  // --- phase 1: broadcasts through the real process code ---
  // Swap, not move-assign: a moved-from vector has no capacity, and these
  // four buffers (timers_/entry_updates_, worklist_/pending_) rotate every
  // exchange — moving would regrow them by doubling each round, breaking
  // the steady-state zero-allocation guarantee bench_micro --smoke pins.
  std::swap(timers_, entry_updates_);
  entry_updates_.clear();
  record_update_ = &timers_;
  record_bcast_ = nullptr;
  std::swap(worklist_, pending_);
  pending_.clear();
  const auto after = [](const PendingEvent& a, const PendingEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.tier != b.tier) return a.tier > b.tier;
    return a.seq > b.seq;
  };
  std::make_heap(worklist_.begin(), worklist_.end(), after);
  worklist_active_ = true;
  broadcasts_recorded_ = 0;
  deliver_min_ = std::numeric_limits<double>::infinity();
  deliver_max_ = -std::numeric_limits<double>::infinity();
  while (!worklist_.empty()) {
    std::pop_heap(worklist_.begin(), worklist_.end(), after);
    const PendingEvent e = worklist_.back();
    worklist_.pop_back();
    if (mode_ == Mode::kRegion) advance_engine_to(e.time, e.tier, e.seq);
    ++sim_.main_.events_processed;
    sim_.main_.current_time = e.time;
    sim_.observe_advance(sim_.main_);
    FastPathContext ctx(*this, e.pid);
    if (e.kind == Kind::kStart) {
      wl_[static_cast<std::size_t>(e.pid)]->on_start(ctx);
    } else {
      wl_[static_cast<std::size_t>(e.pid)]->on_timer(ctx, e.tag);
    }
  }
  worklist_active_ = false;
  // Contract, not a dynamic condition: eligibility pinned the process type,
  // so each broadcast event yields exactly one fanout and each fast pid one
  // update timer at its predicted instant.  A violation means the replay
  // diverged — fail loudly rather than desynchronize silently.
  if (broadcasts_recorded_ != nf || timers_.size() != nf) {
    throw std::logic_error("RoundFastPath: broadcast phase contract violated");
  }
  for (const PendingTimer& t : timers_) {
    if (t.tag != kUpdateTimer ||
        t.time != pred_update_[static_cast<std::size_t>(t.pid)]) {
      throw std::logic_error("RoundFastPath: update timer diverged from prediction");
    }
  }

  // --- phase 2: batched arrival evaluation ---
  sim_.main_.events_processed += total_deg_;
  stats_.deliveries += total_deg_;
  do_batched_deliveries();

  // Round-overlap guard, BEFORE updates consume seqs: if any fast process'
  // NEXT broadcast could fire at or before this round's last fast update,
  // the engine would interleave the two rounds' seq allocations and our
  // phase-ordered replay could diverge on exact-time ties.  Bound the next
  // broadcast from below without running the update: ADJ = base + delta -
  // AV with AV inside the arena's [min, max] (the reduction is an order
  // statistic / mean of a subset), and real elapsed >= physical gap /
  // (1 + rho).  Conservative: a false alarm just hands the round's update
  // stratum to the event engine.
  {
    // kRegion: region senders' deliveries for this window may still sit in
    // the scheduler, so fast arena slots can hold sentinels or the PREVIOUS
    // window's values at guard time.  Two discharge routes, tried in order:
    //
    //   1. Overwrite proof.  Every stale slot's sender is honest (faulty
    //      pids have no fast neighbors — the region is their closed
    //      neighborhood) and engine-run, so its current-window activity is
    //      still queued: a fan-out mid-delivery, an undelivered unicast,
    //      or a broadcast timer / START yet to fire.  One drain of the
    //      scheduler bounds when the last such write can land; if that
    //      precedes every fast update, every stale slot is overwritten —
    //      with an ARR >= the receiver's current local time (now() is
    //      monotone and CORR is fixed until its update) — before any
    //      reduction reads it, so no slot counts against the clip budget.
    //   2. Clip budget.  Failing the proof, garbage slots that fit inside
    //      the reduction's f-clip are discarded whatever they hold, so AV
    //      still comes from the survivors.
    //
    // Either way AV >= m_lb = min(current-window values, local time) below.
    // The scan drains and rebuilds the whole queue, so it runs lazily — only
    // once the cheap budget test actually fails for some pid — and its
    // verdict is memoized for the rest of the loop.
    int overwrite_proven = -1;  // -1 unknown, 0 disproven, 1 proven
    const auto prove_overwrites = [this, u_min]() -> bool {
      sim::Simulator::Lane& lane = sim_.main_;
      double writes_by = -std::numeric_limits<double>::infinity();
      scan_handles_.clear();
      while (!lane.scheduler->empty()) {
        const sim::EventHandle h = lane.scheduler->pop();
        scan_handles_.push_back(h);
        const sim::Event& e = lane.pool[h];
        if (e.engine_kind == sim::EngineKind::kFanout) {
          // Remaining deliveries are [cursor, end), sorted ascending; only
          // the ones landing on fast pids write fast arenas.  (A faulty
          // sender's fan-out has no fast recipients at all.)
          const net::FanoutRecord& rec = lane.fanouts[e.link];
          for (std::size_t d = rec.cursor; d < rec.deliveries.size(); ++d) {
            const std::int32_t to = rec.deliveries[d].to;
            if (to >= 0 && to < n_ && fast_[static_cast<std::size_t>(to)]) {
              writes_by = std::max(writes_by, rec.deliveries[d].time);
            }
          }
        } else if (e.engine_kind != sim::EngineKind::kDeliver) {
          writes_by = std::numeric_limits<double>::infinity();
        } else if (e.msg.kind == sim::Kind::kApp) {
          // A unicast writes its recipient's arena at dispatch time.
          if (e.to >= 0 && e.to < n_ && fast_[static_cast<std::size_t>(e.to)]) {
            writes_by = std::max(writes_by, e.time);
          }
        } else if (e.to >= 0 && e.to < n_ && sim_.is_faulty(e.to)) {
          // An adversary's own timers/START drive sends into the region
          // only: every neighbor of a faulty pid is inside the closed
          // neighborhood, so nothing it does can touch a fast arena.
        } else if (e.msg.kind == sim::Kind::kStart ||
                   (e.msg.kind == sim::Kind::kTimer && e.tier == 1 &&
                    e.msg.tag == kBcastTimer)) {
          // Fires, broadcasts, and every delivery lands within the delay
          // ceiling — the same bound the phase-separation predicate uses.
          writes_by = std::max(
              writes_by, e.time + sim_.config_.delta + sim_.config_.eps);
        } else if (!(e.msg.kind == sim::Kind::kTimer && e.tier == 1 &&
                     e.msg.tag == kUpdateTimer)) {
          // An honest pid's update timer sends nothing before its NEXT
          // window (that window's broadcast already happened, so its
          // deliveries are accounted above or already landed).  Anything
          // else we cannot bound — give up on the proof, keep scanning so
          // the queue is rebuilt whole.
          writes_by = std::numeric_limits<double>::infinity();
        }
      }
      // Handles still hold their seqs; pushing them back reconstructs the
      // identical queue (the take_entry_events contract).
      for (const std::uint32_t h : scan_handles_) sim_.push_handle(lane, h);
      engine_head_valid_ = false;
      return writes_by + kSeparationSlack <= u_min;
    };
    for (std::int32_t pid : fast_ids_) {
      const auto i = static_cast<std::size_t>(pid);
      const WelchLynchProcess& wl = *wl_[i];
      FastPathContext ctx(*this, pid);
      const double sub = wl.sub_period(ctx);
      const double base =
          wl.label_ + static_cast<double>(wl.exchange_) * sub;
      const std::int32_t e2 = wl.exchange_ + 1;
      const double next_base = e2 >= wl.config_.k_exchanges
                                   ? wl.label_ + wl.config_.params.P
                                   : wl.label_ + static_cast<double>(e2) * sub;
      double adj_hi;
      if (mode_ == Mode::kRegion) {
        // "Current window" = within half a period of base: stale values sit
        // a full period back, and a spread wide enough to blur that line
        // misclassifies toward MORE garbage, i.e. toward bailing.  A
        // starved window skips the UPDATE entirely (ADJ = 0) — hence the
        // max() with zero on adj_hi.
        double m_lb = ctx.local_time();
        std::int32_t garbage = 0;
        const double window_floor = base - 0.5 * wl.config_.params.P;
        for (const double v : wl.arena_.values()) {
          if (v >= window_floor) {
            m_lb = std::min(m_lb, v);
          } else {
            ++garbage;
          }
        }
        std::int32_t clip_budget = wl.config_.params.f;
        const auto arena_n = static_cast<std::int32_t>(wl.arena_.size());
        if (arena_n != n_) {
          // update_arena's own clamp for neighborhood-sized arenas.
          clip_budget = std::min(clip_budget, (arena_n - 1) / 3);
        }
        if (garbage > clip_budget) {
          if (overwrite_proven < 0) overwrite_proven = prove_overwrites() ? 1 : 0;
        }
        if (garbage > clip_budget && overwrite_proven != 1) {
          pending_.clear();
          for (const PendingTimer& t : timers_) {
            pending_.push_back({t.time, 1, t.seq, t.pid, t.tag, Kind::kTimer});
          }
          inject_pending("round overlap risk");
          return false;
        }
        adj_hi = std::max(base + wl.config_.params.delta - m_lb, 0.0);
      } else {
        double arr_min = std::numeric_limits<double>::infinity();
        for (const double v : wl.arena_.values()) arr_min = std::min(arr_min, v);
        adj_hi = base + wl.config_.params.delta - arr_min;
      }
      const double physical_gap = (next_base - pred_wend_[i]) - adj_hi;
      const double bound =
          pred_update_[i] + physical_gap / (1.0 + wl.config_.params.rho);
      if (!(physical_gap > 0.0) || !(bound > u_max + kSeparationSlack)) {
        pending_.clear();
        for (const PendingTimer& t : timers_) {
          pending_.push_back({t.time, 1, t.seq, t.pid, t.tag, Kind::kTimer});
        }
        inject_pending("round overlap risk");
        return false;
      }
    }
  }

  // --- phase 3: updates through the real process code ---
  std::sort(timers_.begin(), timers_.end(),
            [](const PendingTimer& a, const PendingTimer& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;  // all tier 1
            });
  next_timers_.clear();
  entry_updates_.clear();
  record_bcast_ = &next_timers_;
  record_update_ = &entry_updates_;  // staggered p > 0 arms both for next round
  for (const PendingTimer& t : timers_) {
    if (mode_ == Mode::kRegion) advance_engine_to(t.time, 1, t.seq);
    ++sim_.main_.events_processed;
    sim_.main_.current_time = t.time;
    sim_.observe_advance(sim_.main_);
    FastPathContext ctx(*this, t.pid);
    wl_[static_cast<std::size_t>(t.pid)]->on_timer(ctx, t.tag);
  }
  record_bcast_ = nullptr;
  record_update_ = nullptr;
  if (mode_ != Mode::kStaggered && !entry_updates_.empty()) {
    throw std::logic_error("RoundFastPath: update phase contract violated");
  }
  pending_.clear();
  for (const PendingTimer& t : next_timers_) {
    pending_.push_back({t.time, 1, t.seq, t.pid, t.tag, Kind::kTimer});
  }
  // A dropped next-broadcast timer (pathologically short P) leaves the
  // stratum short; the next iteration's shape check hands off cleanly.
  return true;
}

// --- the batched delivery kernel -------------------------------------------

void RoundFastPath::do_batched_deliveries() {
  if (mesh_) {
    deliver_mesh(deliver_min_, deliver_max_);
  } else {
    deliver_generic(deliver_min_, deliver_max_);
  }
}

void RoundFastPath::deliver_generic(double t0, double t1) {
  // Sparse graphs: per receiver, gather its delivery times from the flat
  // matrix, evaluate ARR = local-time(t) with the affine kernel (or exact
  // per-point now() when a drift breakpoint splits the window), scatter
  // into the arena slots.  Degrees are small; the strided gather is cheap.
  // In kStaggered the receiver subtracts the sender's known offset with
  // the engine's exact expression (local - s*sigma); recv_off_ carries the
  // per-entry offsets contiguously per receiver.
  const bool staggered = mode_ == Mode::kStaggered;
  for (std::int32_t r : fast_ids_) {
    const auto i = static_cast<std::size_t>(r);
    const std::size_t begin = recv_offset_[i];
    const std::size_t end = recv_offset_[i + 1];
    const std::size_t m = end - begin;
    if (m == 0) continue;
    proc::ArrivalArena& arena = wl_[i]->arena_;
    const double corr = sim_.nodes_[i].corr.current_target();
    const clk::PhysicalClock& clock = *sim_.nodes_[i].clock;
    gather_t_.resize(m);
    gather_v_.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      gather_t_[k] = times_[recv_flat_[begin + k]];
    }
    clk::PhysicalClock::AffineSpan span;
    if (clock.affine_span(t0, t1, span)) {
      if (staggered) {
        proc::kernels::affine_arrival_eval_offset(
            gather_v_.data(), gather_t_.data(), recv_off_.data() + begin, m,
            span.real, span.clock, span.rate, corr);
      } else {
        proc::kernels::affine_arrival_eval(gather_v_.data(), gather_t_.data(),
                                           m, span.real, span.clock, span.rate,
                                           corr);
      }
    } else {
      for (std::size_t k = 0; k < m; ++k) {
        gather_v_[k] = clock.now(gather_t_[k]) + corr;
      }
      if (staggered) {
        for (std::size_t k = 0; k < m; ++k) {
          gather_v_[k] -= recv_off_[begin + k];
        }
      }
    }
    for (std::size_t k = 0; k < m; ++k) {
      arena.set_slot(static_cast<std::size_t>(recv_slot_[begin + k]),
                     gather_v_[k]);
    }
  }
}

void RoundFastPath::deliver_mesh(double t0, double t1) {
  // Full mesh: sender s's row is contiguous in recipient id order and the
  // arena slot of sender s at every receiver is s, so the matrix transposes
  // with a receiver-blocked sweep — for each block of receivers, walk the
  // sender rows once (contiguous loads) and append slot s to each
  // receiver's arena (each arena advances sequentially, one cache line per
  // eight senders).  The inner expression is affine_arrival_eval's, kept
  // inline so the compiler vectorizes across the receiver block; the
  // staggered variant appends the engine's receiver-side normalization
  // (- s*sigma) as the last operation, exactly as on_message does.
  constexpr std::size_t kBlock = 64;
  const auto n = static_cast<std::size_t>(n_);
  const bool staggered = mode_ == Mode::kStaggered;
  double a_c[kBlock];   // segment clock reading
  double o_c[kBlock];   // segment real start
  double r_c[kBlock];   // segment rate
  double c_c[kBlock];   // CORR target
  double* dst[kBlock];  // arena slot base
  bool affine[kBlock];

  for (std::size_t rb = 0; rb < n; rb += kBlock) {
    const std::size_t blk = std::min(kBlock, n - rb);
    bool all_affine = true;
    for (std::size_t i = 0; i < blk; ++i) {
      const std::size_t r = rb + i;
      c_c[i] = sim_.nodes_[r].corr.current_target();
      dst[i] = wl_[r]->arena_.slot_data();
      clk::PhysicalClock::AffineSpan span;
      affine[i] = sim_.nodes_[r].clock->affine_span(t0, t1, span);
      a_c[i] = span.clock;
      o_c[i] = span.real;
      r_c[i] = span.rate;
      all_affine = all_affine && affine[i];
    }
    if (all_affine) {
      if (staggered) {
        for (std::size_t s = 0; s < n; ++s) {
          const double* trow = times_.data() + s * n + rb;
          const double off_s = off_[s];
          for (std::size_t i = 0; i < blk; ++i) {
            dst[i][s] = ((a_c[i] + (trow[i] - o_c[i]) * r_c[i]) + c_c[i]) - off_s;
          }
        }
      } else {
        for (std::size_t s = 0; s < n; ++s) {
          const double* trow = times_.data() + s * n + rb;
          for (std::size_t i = 0; i < blk; ++i) {
            dst[i][s] = (a_c[i] + (trow[i] - o_c[i]) * r_c[i]) + c_c[i];
          }
        }
      }
      continue;
    }
    // A drift breakpoint inside the window for some receiver in the block:
    // evaluate those receivers per point through now() (bit-identical on
    // any window) and the rest with the affine expression.
    for (std::size_t i = 0; i < blk; ++i) {
      const std::size_t r = rb + i;
      if (affine[i]) {
        for (std::size_t s = 0; s < n; ++s) {
          const double t = times_[s * n + r];
          const double v = (a_c[i] + (t - o_c[i]) * r_c[i]) + c_c[i];
          dst[i][s] = staggered ? v - off_[s] : v;
        }
      } else {
        const clk::PhysicalClock& clock = *sim_.nodes_[r].clock;
        for (std::size_t s = 0; s < n; ++s) {
          const double v = clock.now(times_[s * n + r]) + c_c[i];
          dst[i][s] = staggered ? v - off_[s] : v;
        }
      }
    }
  }
}

}  // namespace wlsync::core
