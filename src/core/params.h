#pragma once
// System parameters and the Section 5.2 constraint algebra.
//
// rho (drift), delta (median delay) and eps (delay uncertainty) are fixed by
// the "hardware" (assumptions A1/A3); the designer chooses the round length
// P and the initial closeness beta (A4), subject to the paper's
// inequalities.  This header encodes every closed form the analysis
// produces, so tests and benches can compare measured behaviour against the
// paper's bounds by name:
//
//   window      (1+rho)(beta+delta+eps)                  — Section 4.1
//   P_lower     (1+rho)(2(beta+eps) + max(delta, beta+eps)) + rho*delta
//               (Lemmas 8 and 12 both hold iff P >= this)
//   P_upper     beta/(4 rho) - eps/rho - rho(beta+delta+eps)
//               - 2 beta - delta - 2 eps                 — Section 5.2
//   beta_rhs    4 eps + 4 rho (4 beta + delta + 4 eps + m)
//               + 4 rho^2 (3 beta + 2 delta + 3 eps + m), m = max(delta,
//               beta+eps); feasibility is beta >= beta_rhs, and it is
//               algebraically equivalent to P_lower <= P_upper.
//   adj_bound   (1+rho)(beta+eps) + rho*delta            — Theorem 4(a)
//   gamma       beta + eps + rho(7 beta + 3 delta + 7 eps)
//               + 8 rho^2 (beta+delta+eps) + 4 rho^3 (beta+delta+eps)
//                                                        — Theorem 16
//   lambda      (P - (1+rho)(beta+eps) - rho delta)/(1+rho) — Section 8
//   alpha1..3   1 - rho - eps/lambda, 1 + rho + eps/lambda, eps — Theorem 19

#include <cstdint>
#include <string>
#include <vector>

namespace wlsync::core {

struct Params {
  std::int32_t n = 4;   ///< total processes (A2: n >= 3f + 1)
  std::int32_t f = 1;   ///< faults tolerated
  double rho = 1e-5;    ///< drift bound (A1)
  double delta = 0.01;  ///< median message delay (A3)
  double eps = 1e-3;    ///< delay uncertainty (A3)
  double beta = 0.0;    ///< initial closeness along the real-time axis (A4)
  double P = 0.0;       ///< round length in local time (Section 4.1)
  double T0 = 0.0;      ///< first round label (A4)

  /// T^i = T0 + i P (Section 5.1).
  [[nodiscard]] double round_label(std::int32_t i) const {
    return T0 + static_cast<double>(i) * P;
  }
};

/// Everything the analysis derives from Params.
struct Derived {
  double window = 0.0;     ///< (1+rho)(beta+delta+eps)
  double p_lower = 0.0;
  double p_upper = 0.0;
  double beta_rhs = 0.0;   ///< feasibility requires beta >= beta_rhs
  double adj_bound = 0.0;  ///< Theorem 4(a)
  double gamma = 0.0;      ///< Theorem 16 agreement bound
  double lambda = 0.0;     ///< shortest round in real time (Section 8)
  double alpha1 = 0.0;     ///< Theorem 19 validity slopes / offset
  double alpha2 = 0.0;
  double alpha3 = 0.0;
  /// U^i - T^i, i.e. the collection window length in clock time.
  [[nodiscard]] double u_offset() const { return window; }
};

[[nodiscard]] Derived derive(const Params& params);

/// Returns human-readable violations; empty means the parameter set
/// satisfies A2/A3 and the Section 5.2 inequalities.
[[nodiscard]] std::vector<std::string> validate(const Params& params);

/// Smallest beta satisfying the Section 5.2 feasibility inequality for the
/// given hardware constants (fixed-point iteration; converges for rho < 0.1).
[[nodiscard]] double min_feasible_beta(double rho, double delta, double eps);

/// Smallest beta that additionally supports round length P (i.e. also
/// satisfies P <= P_upper(beta)); the paper's "beta is roughly
/// 4 eps + 4 rho P" appears here.
[[nodiscard]] double beta_for_round_length(double P, double rho, double delta,
                                           double eps);

/// Convenience constructor: given hardware constants and a desired round
/// length, picks the smallest feasible beta (times `slack` >= 1 for margin)
/// and validates the result.  Throws std::invalid_argument on infeasibility.
[[nodiscard]] Params make_params(std::int32_t n, std::int32_t f, double rho,
                                 double delta, double eps, double P,
                                 double slack = 1.05, double T0 = 0.0);

/// Lemma 20 (start-up): per-round bound B^{i+1} <= B^i/2 + startup_slack,
/// where startup_slack = 2 eps + 2 rho (11 delta + 39 eps); the limit is
/// twice the slack.
[[nodiscard]] double startup_round_slack(double rho, double delta, double eps);
[[nodiscard]] double startup_limit(double rho, double delta, double eps);

}  // namespace wlsync::core
