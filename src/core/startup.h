#pragma once
// Establishing synchronization (Section 9.2).
//
// Clocks start with arbitrary values, so rounds cannot be triggered by local
// times; instead each round combines elapsed physical time with a READY
// message exchange.  Per round, each process:
//   1. broadcasts its local time T and collects DIFF[q] = T_q + delta -
//      local-time() estimates for (1+rho)(2 delta + 4 eps) on its clock;
//   2. computes A := mid(reduce(DIFF)) but does not apply it yet;
//   3. waits a second interval so its next messages cannot arrive before
//      slower processes finish their first interval, then broadcasts READY —
//      early if it has already received f+1 READYs (the [DLS] trick);
//   4. on receiving n-f READYs, applies A and begins the next round.
// The fault-tolerant average halves the spread per round (Lemma 20):
//   B^{i+1} <= B^i/2 + 2 eps + 2 rho (11 delta + 39 eps).
//
// An optional handoff switches to the maintenance algorithm after
// `handoff_rounds` rounds: the process picks the first label T on the
// maintenance grid (T0 + iP) at least half a round ahead of its local time
// and schedules a WelchLynchProcess to resume there.  With the spread
// already down to ~4 eps << P, every nonfaulty process picks the same label
// (the [Lu1] switch protocol, concretized).

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/params.h"
#include "core/welch_lynch.h"
#include "proc/process.h"

namespace wlsync::core {

inline constexpr std::int32_t kReadyTag = 2;

struct StartupConfig {
  Params params;             ///< n, f, rho, delta, eps (beta/P used on handoff)
  std::int32_t handoff_rounds = 0;  ///< 0 = run the start-up algorithm forever
};

class StartupProcess final : public proc::Process {
 public:
  explicit StartupProcess(StartupConfig config);

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] std::int32_t round() const noexcept { return round_; }
  [[nodiscard]] bool handed_off() const noexcept { return wl_ != nullptr; }
  [[nodiscard]] const WelchLynchProcess* maintenance() const noexcept {
    return wl_.get();
  }

 private:
  void begin_round(proc::Context& ctx);
  void on_ready(proc::Context& ctx, std::int32_t from);
  void handoff(proc::Context& ctx);

  StartupConfig config_;
  // Local variables of the Section 9.2 code.
  double a_ = 0.0;                    ///< A: adjustment for the current round
  bool asleep_ = true;                ///< ASLEEP
  std::vector<double> diff_;          ///< DIFF[1..n]
  bool early_end_ = false;            ///< EARLY-END
  std::set<std::int32_t> rcvd_ready_; ///< RCVD-READY
  double t_ = 0.0;                    ///< T: local time at round start
  double u_ = -1.0;                   ///< U: end of first waiting interval
  double v_ = -1.0;                   ///< V: time to broadcast READY
  std::int32_t round_ = 0;
  std::unique_ptr<WelchLynchProcess> wl_;  ///< set after handoff
};

}  // namespace wlsync::core
