#pragma once
// The maintenance algorithm of Section 4.2.
//
// Each process keeps ARR[1..n] (arrival local times of the most recent
// message from each process), CORR (the correction variable), FLAG
// (alternating broadcast/update) and T (the current round label).  When the
// logical clock reaches T^i the process broadcasts T^i; after waiting
// (1+rho)(beta+delta+eps) on its clock — just long enough to have heard
// every nonfaulty process — it sets
//
//     AV  := mid(reduce(ARR))          (the fault-tolerant average)
//     ADJ := T + delta - AV
//     CORR := CORR + ADJ
//
// and schedules the next round at T + P.  We realize FLAG's two cases as two
// timer tags (equivalent: the flag records exactly which timer is pending).
//
// Three paper variants are folded in behind configuration:
//   * Section 7, k exchanges per round (k_exchanges > 1): the round contains
//     k broadcast/collect/adjust sub-exchanges, cutting the error by ~2^k;
//   * Section 7, mean averaging (Averaging::kReducedMean): convergence rate
//     ~ f/(n-2f) instead of 1/2;
//   * Section 9.3, staggered broadcasts (stagger > 0): process p broadcasts
//     at T^i + p*sigma and recipients subtract the known offset from the
//     recorded arrival time; the collection window stretches by (n-1)*sigma.
//   * Section 4.1 remark, amortized corrections (amortize > 0): CORR jumps
//     for timer arithmetic but the *displayed* local time slews linearly
//     over the given duration, keeping observable time monotone.
//
// Faithfulness note: as in the paper, the arrival of *any* ordinary message
// overwrites ARR[sender] — the algorithm never inspects message contents,
// only arrival times.  (Staggered mode must subtract the sender's known
// offset and therefore does check that the tag is a time message; spam then
// lands in ARR unnormalized, exactly as a Byzantine sender would want.)

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "proc/arrival.h"
#include "proc/process.h"

namespace wlsync::core {

class RoundFastPath;

/// Message tag used by round broadcasts ("the T^i messages").
inline constexpr std::int32_t kTimeTag = 1;

/// Sentinel for "no message recorded" — an arbitrarily old local time, as
/// allowed by "ARR: initially arbitrary" (Section 4.2).  At most f entries
/// can be stale for a nonfaulty host, and reduce() removes them.
inline constexpr double kNeverArrived = -1e300;

enum class Averaging : std::uint8_t {
  kMidpoint = 0,     ///< mid(reduce(.)) — the paper's choice; halves error
  kReducedMean = 1,  ///< mean(reduce(.)) — Section 7; rate ~ f/(n-2f)
};

struct WelchLynchConfig {
  Params params;
  Averaging averaging = Averaging::kMidpoint;
  std::int32_t k_exchanges = 1;  ///< Section 7 variant; 1 = paper's algorithm
  double stagger = 0.0;          ///< sigma of Section 9.3; 0 = simultaneous
  double amortize = 0.0;         ///< slew duration for displayed time; 0 = step
  /// Arrival-ingestion engine: the dense neighbor-slot arena (default) or
  /// the seed's sparse id-indexed path.  Executions are bit-identical either
  /// way (tests/ingest_pin_test.cpp); kLegacy is the measured baseline.
  proc::IngestMode ingest = proc::IngestMode::kArena;
};

class WelchLynchProcess final : public proc::Process {
 public:
  /// Timer tags (FLAG's two cases realized as timers — see header comment).
  /// Public so ingestion harnesses (bench_micro) can drive the update step
  /// directly without a simulator.
  static constexpr std::int32_t kBcastTimerTag = 1;
  static constexpr std::int32_t kUpdateTimerTag = 2;

  explicit WelchLynchProcess(WelchLynchConfig config);

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  /// Reintegration support (Section 9.1): adopt round state as if the
  /// process had just completed the update step for the round labelled
  /// `next_label` - P, and schedule the next broadcast.  CORR must already
  /// be set by the caller.
  void resume(proc::Context& ctx, double next_label, std::int32_t next_round);

  // --- introspection for tests and analysis ---
  [[nodiscard]] std::int32_t round() const noexcept { return round_; }
  [[nodiscard]] double current_label() const noexcept { return label_; }
  [[nodiscard]] double last_adjustment() const noexcept { return last_adj_; }
  [[nodiscard]] double last_average() const noexcept { return last_av_; }
  [[nodiscard]] const WelchLynchConfig& config() const noexcept { return config_; }
  /// Collection windows that ended with too few live arrivals to reduce
  /// safely and therefore skipped their UPDATE (the Section 9.3 starvation
  /// guard — see do_update).
  [[nodiscard]] std::uint64_t starved_updates() const noexcept {
    return starved_updates_;
  }

 private:
  /// The round fast path (core/fastpath.h) replays this process' broadcast
  /// and update steps through the regular on_start/on_timer entry points
  /// but writes arrivals straight into the arena with its batched delivery
  /// kernel, and reads label_/exchange_ to predict the phase structure of
  /// the next exchange before committing to it.
  friend class RoundFastPath;

  /// Scheduled broadcast instant for this process in the current exchange:
  /// base + id*stagger (Section 9.3); base without stagger.
  [[nodiscard]] double broadcast_label(const proc::Context& ctx) const;
  /// End of the collection window for the current exchange.
  [[nodiscard]] double window_end(const proc::Context& ctx) const;
  /// Local-time spacing between the k sub-exchanges of one round.
  [[nodiscard]] double sub_period(const proc::Context& ctx) const;

  void begin_exchange(proc::Context& ctx);
  void do_broadcast(proc::Context& ctx);
  void do_update(proc::Context& ctx);
  /// Binds the arena to the neighbor view on the first Context-bearing step.
  void ensure_arena(const proc::Context& ctx);
  /// Dynamic-topology resync (net/dynamics.h): when the context reports a
  /// newer graph version than the one this process last built its view
  /// for, discard the current collection window — legacy ARR refills with
  /// sentinels, the arena rebinds to the new neighbor list.  The local-f
  /// clamps then read the LIVE degree at the next update.  A change that
  /// lands mid-window may starve that update (too few arrivals survive)
  /// — that is a missed round, exactly the Section 9.3 guard's semantics.
  /// Free on static graphs: the version stays 0 and this early-returns.
  void sync_topology(const proc::Context& ctx);
  /// Section 9.3 starvation guard: true when so many slots of the current
  /// neighbor view still hold kNeverArrived that reduce() cannot clip them
  /// all — the f-th order statistic itself would be the sentinel and the
  /// "average" would be ~ -0.5e300.  Happens only when NIC drops or
  /// serialization emptied the collection window (at most f honest slots
  /// can legitimately be stale); the update is skipped like a missed round.
  [[nodiscard]] bool window_starved(const proc::Context& ctx) const;
  [[nodiscard]] double update_legacy(const proc::Context& ctx);
  [[nodiscard]] double update_arena(const proc::Context& ctx);

  WelchLynchConfig config_;
  Derived derived_;
  proc::ArrivalArena arena_;     ///< dense ingestion path (kArena)
  std::vector<double> arr_;      ///< legacy id-indexed ARR (kLegacy)
  std::vector<double> scratch_;  ///< legacy neighbor-view gather (kLegacy)
  double label_ = 0.0;        ///< T: start label of the current round
  std::int32_t round_ = 0;    ///< i
  std::int32_t exchange_ = 0; ///< sub-exchange j in [0, k)
  double last_adj_ = 0.0;
  double last_av_ = 0.0;
  std::uint64_t starved_updates_ = 0;
  std::uint32_t topo_seen_ = 0;  ///< graph version the view was built for
  bool started_ = false;
};

}  // namespace wlsync::core
