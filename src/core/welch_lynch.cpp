#include "core/welch_lynch.h"

#include <algorithm>
#include <stdexcept>

#include "multiset/multiset_ops.h"

namespace wlsync::core {

namespace {
constexpr std::int32_t kBcastTimer = WelchLynchProcess::kBcastTimerTag;
constexpr std::int32_t kUpdateTimer = WelchLynchProcess::kUpdateTimerTag;
}  // namespace

WelchLynchProcess::WelchLynchProcess(WelchLynchConfig config)
    : config_(std::move(config)), derived_(derive(config_.params)) {
  if (config_.k_exchanges < 1) {
    throw std::invalid_argument("WelchLynch: k_exchanges must be >= 1");
  }
  if (config_.params.n < 2 * config_.params.f + 1) {
    // reduce() must leave at least one value.  (A2 asks for n >= 3f+1; the
    // weaker check here lets boundary experiments run out-of-spec configs
    // like n = 3f on purpose.)
    throw std::invalid_argument("WelchLynch: need n >= 2f+1 for reduce()");
  }
  if (config_.ingest == proc::IngestMode::kLegacy) {
    arr_.assign(static_cast<std::size_t>(config_.params.n), kNeverArrived);
  }
  label_ = config_.params.T0;
}

void WelchLynchProcess::ensure_arena(const proc::Context& ctx) {
  if (!arena_.bound()) {
    arena_.bind(ctx.neighbors(), ctx.process_count(), kNeverArrived);
    topo_seen_ = ctx.topology_version();
  }
}

void WelchLynchProcess::sync_topology(const proc::Context& ctx) {
  const std::uint32_t version = ctx.topology_version();
  if (version == topo_seen_) return;
  topo_seen_ = version;
  // The exchange graph moved under us: arrivals recorded against the old
  // neighbor view are no longer comparable (a vanished neighbor's slot
  // would masquerade as a live arrival).  Discard the window in both
  // ingestion modes — identically, so arena and legacy stay bit-identical.
  if (config_.ingest == proc::IngestMode::kLegacy) {
    std::fill(arr_.begin(), arr_.end(), kNeverArrived);
  } else if (arena_.bound()) {
    arena_.bind(ctx.neighbors(), ctx.process_count(), kNeverArrived);
  }
}

// In staggered mode (Section 9.3) process p broadcasts at base + p*sigma and
// everyone's collection window stretches by the full stagger span; the
// plain algorithm is the sigma = 0 special case throughout.

double WelchLynchProcess::broadcast_label(const proc::Context& ctx) const {
  const double base = label_ + static_cast<double>(exchange_) * sub_period(ctx);
  return base + static_cast<double>(ctx.id()) * config_.stagger;
}

double WelchLynchProcess::window_end(const proc::Context& ctx) const {
  const double base = label_ + static_cast<double>(exchange_) * sub_period(ctx);
  const double stagger_span =
      static_cast<double>(ctx.process_count() - 1) * config_.stagger;
  // Section 4.1: (1+rho)(beta+delta+eps) past the round start is just long
  // enough to hear every nonfaulty process; staggered senders are up to
  // (n-1)*sigma later.
  return base + derived_.window + (1.0 + config_.params.rho) * stagger_span;
}

double WelchLynchProcess::sub_period(const proc::Context& ctx) const {
  if (config_.k_exchanges == 1) return config_.params.P;
  // Section 7 variant: k sub-exchanges per round.  Each needs its window
  // plus Lemma 8/12-style margins for the adjustment either way.
  const double stagger_span =
      static_cast<double>(ctx.process_count() - 1) * config_.stagger;
  return derived_.window + (1.0 + config_.params.rho) * stagger_span +
         2.0 * derived_.adj_bound + config_.params.beta + config_.params.eps;
}

void WelchLynchProcess::on_start(proc::Context& ctx) {
  if (started_) return;  // duplicate START: ignore
  started_ = true;
  begin_exchange(ctx);
}

void WelchLynchProcess::begin_exchange(proc::Context& ctx) {
  if (config_.stagger > 0.0 && ctx.id() > 0) {
    ctx.set_timer(broadcast_label(ctx), kBcastTimer);
    ctx.set_timer(window_end(ctx), kUpdateTimer);
  } else {
    do_broadcast(ctx);  // broadcast due now; also arms the update timer
  }
}

void WelchLynchProcess::do_broadcast(proc::Context& ctx) {
  const double base = label_ + static_cast<double>(exchange_) * sub_period(ctx);
  if (exchange_ == 0) {
    ctx.annotate({proc::Annotation::Type::kRoundBegin, round_, base, 0.0});
  }
  // broadcast(T): the value is the round's base label (all senders share
  // it); recipients normalize staggered arrivals by sender id, not value.
  ctx.broadcast(kTimeTag, base, exchange_);
  if (!(config_.stagger > 0.0 && ctx.id() > 0)) {
    ctx.set_timer(window_end(ctx), kUpdateTimer);
  }
}

void WelchLynchProcess::on_timer(proc::Context& ctx, std::int32_t tag) {
  switch (tag) {
    case kBcastTimer:
      // FLAG = BCAST case of Section 4.2.
      if (config_.stagger > 0.0 && ctx.id() > 0) {
        do_broadcast(ctx);  // update timer was armed by begin_exchange
      } else {
        begin_exchange(ctx);
      }
      break;
    case kUpdateTimer:
      // FLAG = UPDATE case of Section 4.2.
      do_update(ctx);
      break;
    default:
      break;  // no applicable cluster (Section 4.2 convention)
  }
}

void WelchLynchProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  // "receive(m) from q: ARR[q] := local-time()" — any ordinary message
  // updates the slot; contents are never inspected by the basic algorithm.
  // In staggered mode a time message from q was sent q*sigma later than the
  // shared base, so subtract the known offset to make arrivals comparable.
  sync_topology(ctx);
  double arrival = ctx.local_time();
  if (config_.stagger > 0.0 && m.tag == kTimeTag) {
    arrival -= static_cast<double>(m.from) * config_.stagger;
  }
  if (config_.ingest == proc::IngestMode::kLegacy) {
    arr_[static_cast<std::size_t>(m.from)] = arrival;
  } else {
    // The bound() probe is inline; the out-of-line bind happens once.
    if (!arena_.bound()) ensure_arena(ctx);
    arena_.record(m.from, arrival);
  }
}

double WelchLynchProcess::update_legacy(const proc::Context& ctx) {
  // The multiset is the neighbor view: on the paper's full mesh that is all
  // of ARR; on a sparse exchange graph only neighbors can have arrived, so
  // the non-neighbor slots (permanently kNeverArrived) must not be allowed
  // to masquerade as f stale entries for reduce() to clip.
  auto f = static_cast<std::size_t>(config_.params.f);
  const std::span<const std::int32_t> peers = ctx.neighbors();
  const ms::Multiset* values = &arr_;
  if (static_cast<std::int32_t>(peers.size()) != ctx.process_count()) {
    scratch_.clear();
    scratch_.reserve(peers.size());
    for (std::int32_t q : peers) {
      scratch_.push_back(arr_[static_cast<std::size_t>(q)]);
    }
    values = &scratch_;
    // The A2 ratio applied to the neighborhood: a process can only clip
    // the faults that can actually reach it, so the global budget f caps
    // at (deg - 1) / 3 locally (deg >= 3 f_local + 1, as n >= 3f + 1).
    f = std::min(f, (scratch_.size() - 1) / 3);
  }
  return config_.averaging == Averaging::kMidpoint
             ? ms::fault_tolerant_midpoint(*values, f)
             : ms::fault_tolerant_mean(*values, f);
}

double WelchLynchProcess::update_arena(const proc::Context& ctx) {
  // Same multiset and same local-f clamp as the legacy path, read straight
  // out of the dense arena (no gather) and reduced over its scratch (no
  // allocations).  On the full mesh the neighbor order is id order, so the
  // multiset is the historical one element for element.
  auto f = static_cast<std::size_t>(config_.params.f);
  if (static_cast<std::int32_t>(arena_.size()) != ctx.process_count()) {
    f = std::min(f, (arena_.size() - 1) / 3);
  }
  return config_.averaging == Averaging::kMidpoint
             ? arena_.midpoint_reduced(f)
             : arena_.mean_reduced(f);
}

bool WelchLynchProcess::window_starved(const proc::Context& ctx) const {
  auto f = static_cast<std::size_t>(config_.params.f);
  std::size_t sentinels = 0;
  if (config_.ingest == proc::IngestMode::kLegacy) {
    const std::span<const std::int32_t> peers = ctx.neighbors();
    if (static_cast<std::int32_t>(peers.size()) != ctx.process_count()) {
      f = std::min(f, (peers.size() - 1) / 3);  // update_legacy's local clamp
    }
    for (std::int32_t q : peers) {
      sentinels += arr_[static_cast<std::size_t>(q)] == kNeverArrived ? 1 : 0;
    }
  } else {
    if (static_cast<std::int32_t>(arena_.size()) != ctx.process_count()) {
      f = std::min(f, (arena_.size() - 1) / 3);  // update_arena's local clamp
    }
    for (const double v : arena_.values()) {
      sentinels += v == kNeverArrived ? 1 : 0;
    }
  }
  // reduce() clips the f smallest entries; sentinels sort below every real
  // arrival, so the f-th order statistic is a sentinel iff more than f
  // slots hold one.
  return sentinels > f;
}

void WelchLynchProcess::do_update(proc::Context& ctx) {
  const double base = label_ + static_cast<double>(exchange_) * sub_period(ctx);
  // Starvation guard (ROADMAP "do first"): when NIC drops or serialization
  // emptied the collection window, more than f slots still hold the
  // kNeverArrived sentinel and reduce() would hand mid() a ~ -1e300
  // operand, stepping CORR by ~ +0.5e300 in one round.  A process that
  // heard too few peers this round learned nothing it can average — skip
  // the UPDATE exactly like a missed round (no ADJ, no annotation) and
  // rejoin the schedule at the next broadcast.
  if (config_.ingest != proc::IngestMode::kLegacy) {
    ensure_arena(ctx);  // a process that heard nobody still has a view
  }
  sync_topology(ctx);  // a change since the last arrival still resyncs
  if (window_starved(ctx)) {
    ++starved_updates_;
  } else {
    // AV := mid(reduce(ARR)); ADJ := T + delta - AV; CORR := CORR + ADJ.
    const double av = config_.ingest == proc::IngestMode::kLegacy
                          ? update_legacy(ctx)
                          : update_arena(ctx);
    const double adj = base + config_.params.delta - av;
    last_av_ = av;
    last_adj_ = adj;
    if (config_.amortize > 0.0) {
      ctx.add_corr_amortized(adj, config_.amortize);
    } else {
      ctx.add_corr(adj);
    }
    ctx.annotate({proc::Annotation::Type::kUpdate, round_, adj, av});
  }

  ++exchange_;
  if (exchange_ >= config_.k_exchanges) {
    // T := T + P; set-timer(T): next round begins on the new clock.
    exchange_ = 0;
    ++round_;
    label_ += config_.params.P;
  }
  if (config_.stagger > 0.0 && ctx.id() > 0) {
    begin_exchange(ctx);  // arms both timers for the staggered next round
  } else {
    const double next = label_ + static_cast<double>(exchange_) * sub_period(ctx);
    ctx.set_timer(next, kBcastTimer);
  }
}

void WelchLynchProcess::resume(proc::Context& ctx, double next_label,
                               std::int32_t next_round) {
  started_ = true;
  exchange_ = 0;
  round_ = next_round;
  label_ = next_label;
  if (config_.stagger > 0.0 && ctx.id() > 0) {
    begin_exchange(ctx);
  } else {
    ctx.set_timer(label_, kBcastTimer);
  }
}

}  // namespace wlsync::core
