#pragma once
// Reintegrating a repaired process (Section 9.1).
//
// A repaired process p wakes at an arbitrary time, possibly mid-round.  It
// first orients itself by watching the T^i traffic; once it has identified a
// round it can observe *completely*, it collects that round's messages,
// applies the ordinary mid(reduce(.)) update to its (arbitrary) clock, and
// rejoins the main algorithm at the following label.  The paper's three
// observations carry over exactly:
//   * the arbitrary initial clock cancels in "ADJ = T + delta - AV";
//   * until it rejoins, p counts as one of the f faulty processes (it sends
//     nothing — a failure mode the averaging already tolerates);
//   * the adjustment is an additive constant, so applying it the moment the
//     collection window closes (rather than at U^i) changes nothing.
//
// Concretization of the [Lu1] details (the paper defers them):
//   orientation  — the first round label V0 confirmed by f+1 distinct
//                  senders is treated as "the round in progress"; since f+1
//                  senders include at least one nonfaulty process, V0 is a
//                  real round.  p targets V1 = V0 + P, the first round it is
//                  guaranteed to observe from its very first message.
//   collection   — arrivals of V1-labelled messages are recorded per sender
//                  (most recent wins, as in ARR).  When f+1 distinct senders
//                  have been seen — i.e. at least one nonfaulty broadcast has
//                  arrived — every other nonfaulty broadcast lands within
//                  beta + 2 eps real time, so the window closes
//                  (1+rho)(beta + 2 eps) later on p's physical clock.
//   join         — if at close n-f senders were heard, p applies
//                  ADJ = V1 + delta - mid(reduce(ARR)) and resumes the
//                  maintenance algorithm at V1 + P; otherwise it re-targets
//                  V1 + P and repeats (a Byzantine quorum cannot fake f+1
//                  distinct senders, so this only happens under heavy loss).

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/params.h"
#include "core/welch_lynch.h"
#include "proc/process.h"

namespace wlsync::core {

class ReintegrationProcess final : public proc::Process {
 public:
  explicit ReintegrationProcess(WelchLynchConfig config);

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] bool joined() const noexcept { return joined_; }
  [[nodiscard]] const WelchLynchProcess& maintenance() const noexcept {
    return wl_;
  }

 private:
  enum class Phase : std::uint8_t { kDormant, kOrienting, kCollecting };

  [[nodiscard]] bool matches(double value, double label) const;
  void begin_collection(proc::Context& ctx, double target);
  void close_window(proc::Context& ctx);

  WelchLynchConfig config_;
  WelchLynchProcess wl_;  ///< delegate after joining
  Phase phase_ = Phase::kDormant;
  bool joined_ = false;

  /// Orientation: distinct senders seen per round label since wake-up.
  std::map<double, std::set<std::int32_t>> seen_;
  double target_ = 0.0;
  std::vector<double> arr_;
  std::set<std::int32_t> target_senders_;
  bool window_armed_ = false;
};

}  // namespace wlsync::core
