#pragma once
// Reintegrating a repaired process (Section 9.1).
//
// A repaired process p wakes at an arbitrary time, possibly mid-round.  It
// first orients itself by watching the T^i traffic; once it has identified a
// round it can observe *completely*, it collects that round's messages,
// applies the ordinary mid(reduce(.)) update to its (arbitrary) clock, and
// rejoins the main algorithm at the following label.  The paper's three
// observations carry over exactly:
//   * the arbitrary initial clock cancels in "ADJ = T + delta - AV";
//   * until it rejoins, p counts as one of the f faulty processes (it sends
//     nothing — a failure mode the averaging already tolerates);
//   * the adjustment is an additive constant, so applying it the moment the
//     collection window closes (rather than at U^i) changes nothing.
//
// Concretization of the [Lu1] details (the paper defers them):
//   orientation  — the first round label V0 confirmed by f+1 distinct
//                  senders is treated as "the round in progress"; since f+1
//                  senders include at least one nonfaulty process, V0 is a
//                  real round.  p targets V1 = V0 + P, the first round it is
//                  guaranteed to observe from its very first message.
//   collection   — arrivals of V1-labelled messages are recorded per sender
//                  (most recent wins, as in ARR).  When f+1 distinct senders
//                  have been seen — i.e. at least one nonfaulty broadcast has
//                  arrived — every other nonfaulty broadcast lands within
//                  beta + 2 eps real time, so the window closes
//                  (1+rho)(beta + 2 eps) later on p's physical clock.
//   join         — if at close n-f senders were heard, p applies
//                  ADJ = V1 + delta - mid(reduce(ARR)) and resumes the
//                  maintenance algorithm at V1 + P; otherwise it re-targets
//                  V1 + P and repeats (a Byzantine quorum cannot fake f+1
//                  distinct senders, so this only happens under heavy loss).

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/params.h"
#include "core/welch_lynch.h"
#include "proc/process.h"

namespace wlsync::core {

class ReintegrationProcess final : public proc::Process {
 public:
  explicit ReintegrationProcess(WelchLynchConfig config);

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  [[nodiscard]] bool joined() const noexcept { return joined_; }
  [[nodiscard]] const WelchLynchProcess& maintenance() const noexcept {
    return wl_;
  }

 private:
  enum class Phase : std::uint8_t { kDormant, kOrienting, kCollecting };

  [[nodiscard]] bool matches(double value, double label) const;
  void begin_collection(proc::Context& ctx, double target);
  void close_window(proc::Context& ctx);

  WelchLynchConfig config_;
  WelchLynchProcess wl_;  ///< delegate after joining
  Phase phase_ = Phase::kDormant;
  bool joined_ = false;

  /// Orientation: distinct senders seen per round label since wake-up.
  std::map<double, std::set<std::int32_t>> seen_;
  double target_ = 0.0;
  std::vector<double> arr_;
  std::set<std::int32_t> target_senders_;
  bool window_armed_ = false;
};

/// Churn lifecycle (net/dynamics.h kLeave/kRejoin schedules): an honest
/// Welch-Lynch participant that leaves and rejoins the system repeatedly.
/// Each downtime interval [leave, rejoin) silences the process completely
/// (stale timers and deliveries are dropped, exactly like a crash); at the
/// rejoin instant a FRESH Section 9.1 reintegration procedure starts from
/// scratch — the previous incarnation's round state is deliberately lost,
/// since an arbitrarily long absence makes it worthless (the paper's
/// "repaired process wakes with arbitrary clock" premise).  The driver
/// (analysis::Experiment) schedules one START per rejoin; intervals must be
/// sorted, non-overlapping, and >= 2P apart from their rejoin to the next
/// leave so the fresh procedure's timers cannot collide with stale ones
/// (the same margin run_reintegration has always required).
class ChurnProcess final : public proc::Process {
 public:
  struct Downtime {
    double leave = 0.0;
    double rejoin = 1e300;  ///< net::kNeverRejoins when the leave is final
  };

  /// Throws std::invalid_argument unless the intervals are sorted by leave
  /// time and non-overlapping (each rejoin precedes the next leave).
  ChurnProcess(WelchLynchConfig config, std::vector<Downtime> downtimes);

  void on_start(proc::Context& ctx) override;
  void on_timer(proc::Context& ctx, std::int32_t tag) override;
  void on_message(proc::Context& ctx, const sim::Message& m) override;

  /// The reintegration procedure of the most recent rejoin; nullptr before
  /// the first rejoin fires.
  [[nodiscard]] const ReintegrationProcess* rejoin() const noexcept {
    return rejoin_.get();
  }
  /// True while the process is participating (initial tenure, or rejoined
  /// and past the Section 9.1 join).
  [[nodiscard]] bool participating(proc::Context& ctx);

 private:
  enum class Route : std::uint8_t { kWl, kDead, kRejoin };
  /// Routing by real time: before the first leave the original maintenance
  /// instance runs; inside [leave, rejoin) everything is dropped; from the
  /// k-th rejoin on, the k-th reintegration procedure owns the process.
  [[nodiscard]] Route route(proc::Context& ctx);

  WelchLynchConfig config_;
  WelchLynchProcess wl_;  ///< the initial tenure's maintenance instance
  std::vector<Downtime> down_;
  std::unique_ptr<ReintegrationProcess> rejoin_;
  std::size_t rejoin_segment_ = 0;  ///< 1 + index of the segment rejoin_ serves
};

}  // namespace wlsync::core
