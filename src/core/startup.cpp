#include "core/startup.h"

#include <cmath>

#include "multiset/multiset_ops.h"

namespace wlsync::core {

namespace {
constexpr std::int32_t kUTimer = 11;
constexpr std::int32_t kVTimer = 12;
}  // namespace

StartupProcess::StartupProcess(StartupConfig config) : config_(std::move(config)) {
  diff_.assign(static_cast<std::size_t>(config_.params.n), kNeverArrived);
}

void StartupProcess::begin_round(proc::Context& ctx) {
  const Params& p = config_.params;
  // begin-round macro of Section 9.2.
  t_ = ctx.local_time();
  ctx.annotate({proc::Annotation::Type::kRoundBegin, round_, t_, 0.0});
  ctx.broadcast(kTimeTag, t_, round_);
  u_ = t_ + (1.0 + p.rho) * (2.0 * p.delta + 4.0 * p.eps);
  ctx.set_timer(u_, kUTimer);
  early_end_ = false;
  rcvd_ready_.clear();
}

void StartupProcess::on_start(proc::Context& ctx) {
  if (wl_) return wl_->on_start(ctx);
  // receive(START) and ASLEEP.
  if (!asleep_) return;
  asleep_ = false;
  begin_round(ctx);
}

void StartupProcess::on_message(proc::Context& ctx, const sim::Message& m) {
  if (wl_) return wl_->on_message(ctx, m);
  if (m.tag == kTimeTag) {
    // receive(T) from q.
    diff_[static_cast<std::size_t>(m.from)] =
        m.value + config_.params.delta - ctx.local_time();
    if (asleep_) {
      asleep_ = false;
      begin_round(ctx);
    }
  } else if (m.tag == kReadyTag) {
    on_ready(ctx, m.from);
  }
}

void StartupProcess::on_timer(proc::Context& ctx, std::int32_t tag) {
  if (wl_) return wl_->on_timer(ctx, tag);
  const Params& p = config_.params;
  // The Section 9.2 clusters are guarded by "local-time() = U" (resp. V):
  // a timer left over from a round that ended early fires at a stale value
  // and must match no cluster.  Timers fire exactly at their set logical
  // times here, so equality is an epsilon-comparison against the *current*
  // U/V.
  const double now = ctx.local_time();
  auto matches = [&](double target) {
    return target >= 0.0 && std::abs(now - target) <= 1e-9 * (1.0 + std::abs(target));
  };
  switch (tag) {
    case kUTimer: {
      if (!matches(u_)) break;
      a_ = ms::fault_tolerant_midpoint(diff_, static_cast<std::size_t>(p.f));
      v_ = u_ + (1.0 + p.rho) *
                    (4.0 * p.eps + 4.0 * p.rho * (p.delta + 2.0 * p.eps) +
                     2.0 * p.rho * p.rho * (p.delta + 4.0 * p.eps));
      ctx.set_timer(v_, kVTimer);
      break;
    }
    case kVTimer:
      if (!matches(v_)) break;
      if (!early_end_) ctx.broadcast(kReadyTag, 0.0, round_);
      break;
    default:
      break;
  }
}

void StartupProcess::on_ready(proc::Context& ctx, std::int32_t from) {
  const Params& p = config_.params;
  rcvd_ready_.insert(from);
  const auto count = static_cast<std::int32_t>(rcvd_ready_.size());
  if (count == p.f + 1 && v_ >= 0.0 && ctx.local_time() < v_ && !early_end_) {
    // Second interval ended early: f+1 processes are already READY.
    ctx.broadcast(kReadyTag, 0.0, round_);
    early_end_ = true;
  }
  if (count == p.n - p.f) {
    // Apply the adjustment computed at U and begin the next round.
    for (auto& d : diff_) {
      if (d != kNeverArrived) d -= a_;
    }
    ctx.add_corr(a_);
    ctx.annotate({proc::Annotation::Type::kUpdate, round_, a_, 0.0});
    ++round_;
    if (config_.handoff_rounds > 0 && round_ >= config_.handoff_rounds) {
      handoff(ctx);
    } else {
      begin_round(ctx);
    }
  }
}

void StartupProcess::handoff(proc::Context& ctx) {
  // Concretized [Lu1] switch: pick the first maintenance label at least half
  // a round ahead.  Post-startup spread (~4 eps) is far below P/2, so all
  // nonfaulty processes compute the same label.
  const Params& p = config_.params;
  const double now = ctx.local_time();
  const double steps = std::ceil((now + 0.5 * p.P - p.T0) / p.P);
  const double label = p.T0 + steps * p.P;
  const auto round_index = static_cast<std::int32_t>(steps);
  WelchLynchConfig wl_config;
  wl_config.params = p;
  wl_ = std::make_unique<WelchLynchProcess>(wl_config);
  wl_->resume(ctx, label, round_index);
  ctx.annotate({proc::Annotation::Type::kJoined, round_, label, 0.0});
}

}  // namespace wlsync::core
