#pragma once
// Round-synchronous fast path over the event engine.
//
// In the NIC-free regime the Section 4.2 execution has a rigid shape: every
// nonfaulty process broadcasts once per exchange, every message lands within
// (delta - eps, delta + eps) of its send, and every process updates once
// after its collection window — so the event queue holds the same three
// strata (n broadcasts, sum-of-degree deliveries, n updates) round after
// round.  The event engine pays a scheduler round-trip, a virtual dispatch
// and a clock locate per delivery; at n = 4096 on the full mesh that is
// ~16.7M heap-ordered events per round.
//
// RoundFastPath advances the system one whole exchange at a time instead:
//
//   phase 0  predict every process' update instant exactly (the window-end
//            logical time through the process' own window_end(), converted
//            by the same CORR/to_real chain set_timer uses — CORR cannot
//            change during collection, so the prediction is the double the
//            timer would carry) and verify strict phase separation:
//            last broadcast + delta + eps < first update.  Any violation
//            bails BEFORE mutating anything.
//   phase 1  run the broadcast events in (time, tier, seq) order through
//            the REAL WelchLynchProcess::on_start/on_timer with a mirrored
//            Context: delays are drawn per link in the engine's exact RNG
//            order and recorded into a flat delivery matrix instead of
//            being scheduled; seq numbers advance exactly as the engine's
//            fanout blocks would.
//   phase 2  evaluate all arrivals with one batched kernel per receiver:
//            a single affine clock segment covering the window turns
//            ARR = local-time(t) into (seg.clock + (t - seg.real) *
//            seg.rate) + CORR — the exact expression of now() + corr, so
//            the stored doubles are bit-identical (proc/reduce_kernels.h);
//            windows split by a drift breakpoint fall back to per-point
//            now().  No events, no observer work: arrivals allocate no
//            seqs and the streaming observer's drains are idempotent, so
//            draining in bigger steps at broadcast/update instants leaves
//            identical observer state at every interaction point.
//   phase 3  run the update events in order through the real process code
//            (CORR steps, annotations and trace callbacks fire at their
//            exact instants); the next broadcast timers they set become
//            the next iteration's pending stratum.
//
// Three operating modes widen the eligible region (ISSUE 8):
//
//   * kPlain — the PR 6 regime: simultaneous broadcasts, no faults.
//   * kStaggered — the Section 9.3 variant (stagger > 0, fault-free).
//     Process p broadcasts at base + p*sigma, so a steady-state exchange
//     boundary holds 2n-1 events: n broadcast timers plus one PRE-ARMED
//     update timer per p > 0 (begin_exchange arms both together; p = 0
//     arms its update at its broadcast).  Phase 1 runs a worklist ordered
//     by (time, tier, seq) so broadcast timers armed by replayed STARTs
//     fire inside the same exchange, and the delivery kernel subtracts the
//     receiver-side normalization off[s] = s * sigma with the engine's
//     exact FP expression.  Only the phase-separation predicate and the
//     predicted instants change; the matrix machinery is shared.
//   * kRegion — fault-isolating regions (faults present, stagger = 0, a
//     sparse exchange graph).  The tainted region is the union of the
//     adversaries' closed neighborhoods (Topology::closed_neighborhood);
//     the honest remainder — the FAST set, whose members have no faulty
//     neighbors by construction — runs through the batched kernel, while
//     region events stay in the scheduler and are dispatched by a merged
//     loop in global (time, tier, seq) order before each fast replay step
//     (advance_engine_to), re-merging at update instants.  Fast-to-region
//     deliveries are scheduled as ordinary events with their pre-drawn
//     delays and pre-allocated seqs; region-to-fast deliveries ride the
//     engine into the fast arenas at their exact instants.  Any
//     cross-boundary surprise bails to full event replay.
//
// The moment any precondition breaks — pending stratum malformed, horizon
// or max_events budget reached, phase separation violated, or a next-round
// broadcast that could overtake this round's last update — the pending
// events are re-injected into the scheduler WITH THEIR RECORDED SEQS (a
// deliver/timer event keyed (time, tier, seq) is indistinguishable from the
// entry the engine would have held) and the event engine resumes.
// Executions are pinned bit-identical to the pure event engine at
// results_identical strictness by tests/fastpath_test.cpp.

#include <cstdint>
#include <vector>

#include "proc/context.h"

namespace wlsync::sim {
class Simulator;
}  // namespace wlsync::sim

namespace wlsync::core {

class WelchLynchProcess;
class FastPathContext;

/// Telemetry for one RoundFastPath::run.  NOT part of results_identical —
/// like RunResult::wall_seconds it describes how the run was computed, not
/// what it measured.
struct FastPathStats {
  bool engaged = false;          ///< entry validation passed; exchanges ran
  std::int64_t exchanges = 0;    ///< exchanges advanced past the event queue
  std::uint64_t deliveries = 0;  ///< arrivals evaluated by the batched kernel
  const char* handoff = "";      ///< why control returned to the event engine
  /// Times the fast path re-engaged after a transient bail: the event
  /// engine stepped through the irregular stretch (e.g. a round-0 phase
  /// separation violated by a large initial spread) and handed back a
  /// clean exchange boundary.
  std::int64_t rearms = 0;
  /// Size of the fast set: n in kPlain/kStaggered, the honest pids outside
  /// the adversary's closed neighborhood in kRegion.
  std::int32_t fast_count = 0;
  /// kRegion only: scheduler entries the merged loop dispatched through the
  /// event engine while engaged (region timers, region fan-outs, deliveries
  /// crossing the region boundary).
  std::int64_t region_events = 0;
};

class RoundFastPath {
 public:
  explicit RoundFastPath(sim::Simulator& sim);
  ~RoundFastPath();

  RoundFastPath(const RoundFastPath&) = delete;
  RoundFastPath& operator=(const RoundFastPath&) = delete;

  /// Static eligibility: nullptr when the registered system can run on the
  /// fast path, else a human-readable reason.  Requires: no NIC, every fast
  /// process a WelchLynchProcess with arena ingestion and one consistent
  /// stagger, no trace sink consuming per-message events, and — when faults
  /// are registered — an unstaggered run on an explicit topology where the
  /// adversaries' closed neighborhood leaves a nonempty honest remainder.
  /// Dynamic conditions (queue shape, phase separation, budgets) are
  /// handled by run()'s bail protocol, not here.  The caller must also
  /// guarantee retained history (analysis::RunSpec::retain_history): a
  /// truncating observer could discard clock segments the batched kernel
  /// still reads.
  [[nodiscard]] static const char* ineligible_reason(sim::Simulator& sim);

  /// Advances exchanges until a precondition breaks or `horizon` is
  /// reached, then re-injects the pending stratum; the caller finishes with
  /// Simulator::run_until(horizon) exactly as without a fast path.  Safe to
  /// call on an ineligible system (records the reason and does nothing).
  void run(double horizon);

  [[nodiscard]] const FastPathStats& stats() const noexcept { return stats_; }

 private:
  friend class FastPathContext;

  enum class Kind : std::uint8_t { kStart, kTimer };
  enum class Mode : std::uint8_t { kPlain, kStaggered, kRegion };

  /// A queue entry held outside the scheduler: enough to replay it (pid +
  /// payload) and to re-inject it losslessly (time, tier, seq).
  struct PendingEvent {
    double time = 0.0;
    std::int32_t tier = 0;
    std::uint64_t seq = 0;
    std::int32_t pid = -1;
    std::int32_t tag = 0;
    Kind kind = Kind::kTimer;
  };

  struct PendingTimer {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::int32_t pid = -1;
    std::int32_t tag = 0;
  };

  void init();
  /// Drains the scheduler and validates the entry stratum; pushes
  /// everything back untouched (same handles, same seqs) on any surprise.
  /// kPlain accepts exactly one START or tier-1 broadcast timer per
  /// process; kStaggered additionally accepts the 2n-1 steady-state shape
  /// (broadcast timers plus pre-armed update timers for p > 0); kRegion
  /// extracts one START-or-broadcast-timer per FAST pid and leaves every
  /// region event in place (in-flight deliveries into the fast set
  /// included — the merged loop dispatches those at their exact keys).
  [[nodiscard]] bool take_entry_events();
  /// After a transient bail: advance the event engine one event at a time
  /// (never past `horizon` or the event budget) until the queue is again a
  /// clean exchange boundary, then re-take it.  False = the bail was final
  /// (horizon/budget) or no boundary emerged before the horizon.
  [[nodiscard]] bool try_rearm(double horizon);
  /// One exchange; false = bailed (pending events re-injected).
  [[nodiscard]] bool run_exchange(double horizon);
  void inject_pending(const char* reason);
  /// kRegion: dispatch every scheduler event strictly before the key
  /// (time, tier, seq) through the regular engine, so region activity and
  /// fast replays interleave in the global deterministic order.
  void advance_engine_to(double time, std::int32_t tier, std::uint64_t seq);
  void do_batched_deliveries();
  void deliver_mesh(double t0, double t1);
  void deliver_generic(double t0, double t1);

  // --- FastPathContext callbacks (mirrors of the SimContext entry points;
  // see fastpath.cpp for the per-call equivalence argument) ---
  void on_broadcast(std::int32_t from, std::int32_t tag, double value,
                    std::int32_t aux);
  void on_set_timer_logical(std::int32_t pid, double logical_time,
                            std::int32_t tag);
  void on_annotate(std::int32_t pid, const proc::Annotation& annotation);
  [[nodiscard]] double ctx_physical_time(std::int32_t pid) const;
  [[nodiscard]] double ctx_corr(std::int32_t pid) const;
  void ctx_add_corr(std::int32_t pid, double adj, double duration);

  sim::Simulator& sim_;
  FastPathStats stats_;
  Mode mode_ = Mode::kPlain;
  std::int32_t n_ = 0;
  bool mesh_ = false;  ///< implicit full mesh: sender id IS the dense slot
  double stagger_ = 0.0;          ///< kStaggered: the shared sigma
  std::uint64_t total_deg_ = 0;   ///< kernel-evaluated deliveries per exchange
  std::vector<WelchLynchProcess*> wl_;   ///< per-pid; nullptr outside the fast set
  std::vector<char> fast_;               ///< pid -> in the fast set
  std::vector<std::int32_t> fast_ids_;   ///< ascending fast pids
  std::vector<double> off_;              ///< kStaggered: off[s] = s * sigma
  std::vector<std::size_t> row_offset_;  ///< sender -> first flat index
  std::vector<double> times_;            ///< flat deliver-time matrix
  // Generic-topology receiver view: entries k in [recv_offset_[r],
  // recv_offset_[r+1]) give (flat position, dense arena slot, sender
  // stagger offset) of every kernel delivery receiver r collects, senders
  // ascending.  kRegion restricts both sides to the fast set.
  std::vector<std::size_t> recv_offset_;
  std::vector<std::size_t> recv_flat_;
  std::vector<std::int32_t> recv_slot_;
  std::vector<double> recv_off_;

  std::vector<PendingEvent> pending_;    ///< current broadcast stratum
  std::vector<PendingEvent> worklist_;   ///< phase-1 min-heap (staggered STARTs
                                         ///< arm broadcast timers mid-phase)
  bool worklist_active_ = false;         ///< route kBcastTimer records to it
  std::vector<PendingTimer> timers_;     ///< update timers due this exchange
  std::vector<PendingTimer> entry_updates_;  ///< kStaggered: pre-armed updates
                                             ///< held across the boundary
  std::vector<PendingTimer> next_timers_;  ///< broadcast timers from phase 3
  std::vector<PendingTimer>* record_bcast_ = nullptr;   ///< phase-3 target
  std::vector<PendingTimer>* record_update_ = nullptr;  ///< active target
  std::vector<double> pred_update_;  ///< exact predicted update instants
  std::vector<double> pred_wend_;    ///< window-end logical times (overlap guard)
  std::vector<double> gather_t_;     ///< per-receiver gather scratch
  std::vector<double> gather_v_;
  std::vector<char> seen_;           ///< pid-uniqueness scratch
  std::vector<std::uint32_t> scan_handles_;  ///< kRegion guard queue scan
  /// Cached scheduler head for advance_engine_to's fast-out (kRegion): the
  /// head only moves when the merged loop dispatches or a region send is
  /// scheduled, so consecutive fast events between engine events skip the
  /// peek entirely.  Invalidated on every queue mutation outside dispatch.
  double engine_head_time_ = 0.0;
  std::uint64_t engine_head_key_ = 0;
  bool engine_head_valid_ = false;
  std::uint64_t broadcasts_recorded_ = 0;
  double deliver_min_ = 0.0;
  double deliver_max_ = 0.0;
};

}  // namespace wlsync::core
