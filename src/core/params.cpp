#include "core/params.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wlsync::core {

Derived derive(const Params& p) {
  Derived d;
  const double s = p.beta + p.delta + p.eps;  // recurring aggregate
  const double m = std::max(p.delta, p.beta + p.eps);
  d.window = (1.0 + p.rho) * s;
  d.p_lower = (1.0 + p.rho) * (2.0 * (p.beta + p.eps) + m) + p.rho * p.delta;
  d.p_upper = p.beta / (4.0 * p.rho) - p.eps / p.rho - p.rho * s - 2.0 * p.beta -
              p.delta - 2.0 * p.eps;
  d.beta_rhs = 4.0 * p.eps +
               4.0 * p.rho * (4.0 * p.beta + p.delta + 4.0 * p.eps + m) +
               4.0 * p.rho * p.rho *
                   (3.0 * p.beta + 2.0 * p.delta + 3.0 * p.eps + m);
  d.adj_bound = (1.0 + p.rho) * (p.beta + p.eps) + p.rho * p.delta;
  d.gamma = p.beta + p.eps +
            p.rho * (7.0 * p.beta + 3.0 * p.delta + 7.0 * p.eps) +
            8.0 * p.rho * p.rho * s + 4.0 * p.rho * p.rho * p.rho * s;
  d.lambda = (p.P - (1.0 + p.rho) * (p.beta + p.eps) - p.rho * p.delta) /
             (1.0 + p.rho);
  const double eps_over_lambda = d.lambda > 0.0 ? p.eps / d.lambda : 1e300;
  d.alpha1 = 1.0 - p.rho - eps_over_lambda;
  d.alpha2 = 1.0 + p.rho + eps_over_lambda;
  d.alpha3 = p.eps;
  return d;
}

std::vector<std::string> validate(const Params& p) {
  std::vector<std::string> problems;
  if (p.n < 1) problems.push_back("n must be positive");
  if (p.f < 0) problems.push_back("f must be nonnegative");
  if (p.n < 3 * p.f + 1) problems.push_back("A2 violated: need n >= 3f + 1");
  if (p.rho <= 0.0 || p.rho >= 0.1) {
    problems.push_back("rho must be a small positive constant (0, 0.1)");
  }
  if (p.eps < 0.0) problems.push_back("eps must be nonnegative");
  if (p.delta <= p.eps) problems.push_back("A3 violated: need delta > eps");
  if (p.beta <= 0.0) problems.push_back("beta must be positive");
  if (p.P <= 0.0) problems.push_back("P must be positive");
  const Derived d = derive(p);
  if (p.beta < d.beta_rhs) {
    problems.push_back("Section 5.2 infeasible: beta < required " +
                       std::to_string(d.beta_rhs));
  }
  if (p.P < d.p_lower) {
    problems.push_back("round length too short: P < P_lower = " +
                       std::to_string(d.p_lower));
  }
  if (p.P > d.p_upper) {
    problems.push_back("round length too long: P > P_upper = " +
                       std::to_string(d.p_upper));
  }
  return problems;
}

namespace {

/// Iterates beta := max(rhs(beta), floor_fn(beta)) to a fixed point.
template <typename Fn>
double fixed_point(double beta0, Fn rhs) {
  double beta = beta0;
  for (int iter = 0; iter < 200; ++iter) {
    const double next = rhs(beta);
    if (std::abs(next - beta) <= 1e-15 * std::max(1.0, std::abs(beta))) {
      return next;
    }
    beta = next;
  }
  return beta;
}

}  // namespace

double min_feasible_beta(double rho, double delta, double eps) {
  return fixed_point(4.0 * eps, [&](double beta) {
    const double m = std::max(delta, beta + eps);
    return 4.0 * eps + 4.0 * rho * (4.0 * beta + delta + 4.0 * eps + m) +
           4.0 * rho * rho * (3.0 * beta + 2.0 * delta + 3.0 * eps + m);
  });
}

double beta_for_round_length(double P, double rho, double delta, double eps) {
  const double feasible = min_feasible_beta(rho, delta, eps);
  // Invert P <= P_upper(beta):
  //   beta >= 4 rho (P + eps/rho + rho(beta+delta+eps) + 2 beta + delta + 2 eps)
  // which is the Section 5.2 remark "beta is roughly 4 eps + 4 rho P".
  const double from_p = fixed_point(4.0 * eps + 4.0 * rho * P, [&](double beta) {
    return 4.0 * rho *
           (P + eps / rho + rho * (beta + delta + eps) + 2.0 * beta + delta +
            2.0 * eps);
  });
  return std::max(feasible, from_p);
}

Params make_params(std::int32_t n, std::int32_t f, double rho, double delta,
                   double eps, double P, double slack, double T0) {
  Params p;
  p.n = n;
  p.f = f;
  p.rho = rho;
  p.delta = delta;
  p.eps = eps;
  p.P = P;
  p.T0 = T0;
  p.beta = beta_for_round_length(P, rho, delta, eps) * slack;
  const auto problems = validate(p);
  if (!problems.empty()) {
    std::string joined = "make_params: infeasible:";
    for (const auto& problem : problems) joined += " [" + problem + "]";
    throw std::invalid_argument(joined);
  }
  return p;
}

double startup_round_slack(double rho, double delta, double eps) {
  return 2.0 * eps + 2.0 * rho * (11.0 * delta + 39.0 * eps);
}

double startup_limit(double rho, double delta, double eps) {
  return 2.0 * startup_round_slack(rho, delta, eps);
}

}  // namespace wlsync::core
