#pragma once
// Positional fault placement (the sparse-graph fault model).
//
// On the paper's full mesh every process sees every other, so *which* f
// processes are Byzantine is irrelevant by symmetry and the harness has
// always put them at the highest ids.  On a sparse exchange graph position
// is the whole game: an adversary at a cut vertex or bridge endpoint sits
// on every cross-cluster path and can split the network's halves, while
// the same adversary buried inside a clique is clipped by a dense honest
// quorum.  PlacementPolicy maps a fault budget onto topology positions so
// experiments can compare those regimes.

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace wlsync::proc {

enum class PlacementKind : std::uint8_t {
  /// The historical layout: the `count` highest ids.  Keeps every
  /// pre-placement experiment byte-identical.
  kTrailing = 0,
  /// Uniform random distinct positions (deterministic in the seed).
  kRandom = 1,
  /// Highest-degree nodes first (ties by ascending id).
  kMaxDegree = 2,
  /// Articulation points first; a 2-connected graph (e.g. a *closed* ring
  /// of cliques) has none, so the shortfall falls back to bridge endpoints,
  /// then to degree rank — the structurally critical positions in order.
  kArticulation = 3,
  /// Bridge endpoints first, then degree rank.
  kBridge = 4,
  /// Greedy farthest-point set: a diameter endpoint first, then nodes
  /// maximizing the minimum distance to everything already chosen (ties by
  /// ascending id) — adversaries spread as far apart as the graph allows.
  kAntipodal = 5,
};

[[nodiscard]] const char* placement_name(PlacementKind kind) noexcept;

/// Picks `count` distinct node ids of `topo` for the faulty roster.
/// Deterministic: the same (topology, kind, count, seed) always returns the
/// same ids, in the same order (seed only matters for kRandom).  Throws
/// std::invalid_argument when count < 0 or count > n.
[[nodiscard]] std::vector<std::int32_t> place_faults(const net::Topology& topo,
                                                     PlacementKind kind,
                                                     std::int32_t count,
                                                     std::uint64_t seed);

}  // namespace wlsync::proc
