#pragma once
// Byzantine adversaries (assumption A2).
//
// Faulty processes are unconstrained: they may change state arbitrarily,
// take steps whenever they like (via real-time timers) and send anything to
// anyone — but their messages still traverse the network, so they cannot
// forge delivery delays (A3 binds the *channel*, not the sender).  The
// strategies here cover the failure shapes the paper's analysis must
// tolerate:
//
//   Silent     — sends nothing, ever (crashed from the start).  Exercises
//                the "missing entry falls to reduce()" path.
//   Crash      — runs a wrapped honest process until a real time, then stops
//                (used by the reintegration experiments).
//   Spam       — floods everyone with junk messages at random times; since
//                the Section 4.2 algorithm records the arrival time of *any*
//                message, spam directly attacks the ARR array.
//   TwoFaced   — the classical splitter: each round it makes its broadcast
//                appear at the early extreme of the legal window to one half
//                of the recipients and at the late extreme to the other
//                half, dragging their averages apart.  This is the strategy
//                that breaks n = 3f configurations.
//
// A "liar with a skewed clock" needs no adversary code at all: register an
// honest process as faulty with an absurd initial CORR (see
// analysis/experiment.h).

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "proc/process.h"
#include "util/rng.h"

namespace wlsync::proc {

class SilentAdversary final : public Process {
 public:
  void on_start(Context&) override {}
  void on_timer(Context&, std::int32_t) override {}
  void on_message(Context&, const sim::Message&) override {}
};

/// Runs `inner` honestly until real time `crash_at`, then goes silent.
/// The wrapped process must be registered as faulty (the wrapper reads real
/// time through the adversary context).
class CrashAdversary final : public Process {
 public:
  CrashAdversary(ProcessPtr inner, double crash_at);

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::int32_t tag) override;
  void on_message(Context& ctx, const sim::Message& m) override;

  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] Process& inner() noexcept { return *inner_; }

 private:
  [[nodiscard]] bool alive(Context& ctx);

  ProcessPtr inner_;
  double crash_at_;
  bool crashed_ = false;
};

/// Sends `burst` junk messages to random recipients every ~`period` real
/// seconds, with random values; wakes itself with real-time timers.
class SpamAdversary final : public Process {
 public:
  struct Config {
    double period = 0.05;   ///< mean real time between bursts
    std::int32_t burst = 4; ///< messages per burst
    std::int32_t tag = 0;   ///< tag to stamp on junk (algorithms record any)
    double value_span = 1e6;///< junk values drawn from [-span, span]
    std::uint64_t seed = 7;
  };

  explicit SpamAdversary(Config config) : config_(config), rng_(config.seed) {}

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::int32_t tag) override;
  void on_message(Context&, const sim::Message&) override {}

 private:
  void schedule_next(AdversaryContext& ctx);
  Config config_;
  util::Rng rng_;
};

/// The splitter.  Rounds are periodic (labels advance by P, begins advance
/// by ~P of real time), so the adversary *predicts* the next round from the
/// first arrival of the current one and times its sends to land *inside*
/// the honest arrival span at each victim: recipients with id < pivot see
/// the adversary near the early edge (arrival ~ tmin + early_frac*beta),
/// the rest near the late edge.  In-span arrivals survive reduce() (Lemma 6
/// only clips values outside the nonfaulty range) and pull the two groups'
/// averages in opposite directions — the worst case Lemma 9 bounds, and the
/// attack that separates n = 3f+1 from n = 3f.
///
/// Two victim-selection modes:
///   * id ranges (the historical full-mesh layout): ids < pivot get the
///     early face, ids in [pivot, honest_end) the late face;
///   * explicit target lists (`early_targets` / `late_targets`), the
///     neighbor-scoped mode for sparse exchange graphs — a positional
///     adversary lies only to its actual neighborhood instead of assuming
///     full-mesh visibility.  With `per_target_spread` each victim gets its
///     OWN arrival instant interpolated across the in-span window (the
///     inferred clock value differs per neighbor), not one global
///     early/late pair.
/// With targets empty and per_target_spread off, the send schedule is
/// byte-identical to the historical pivot-mode adversary
/// (tests/placement_test.cpp pins an equivalent-list configuration to it).
class TwoFacedAdversary final : public Process {
 public:
  struct Config {
    std::int32_t pivot = 0;      ///< ids < pivot get the early face
    std::int32_t honest_end = 0; ///< ids in [pivot, honest_end) get the late
                                 ///< face (avoid confusing fellow adversaries)
    /// Neighbor-scoped mode: when either list is non-empty the id ranges
    /// above are ignored and faces go to exactly these ids (in list order).
    std::vector<std::int32_t> early_targets;
    std::vector<std::int32_t> late_targets;
    /// Per-neighbor faces: victim k of the concatenated early+late lists
    /// fires at tmin + frac_k * beta with frac_k interpolated linearly from
    /// early_frac to late_frac — every neighbor sees a different forged
    /// clock, the strongest per-neighborhood split.
    bool per_target_spread = false;
    std::int32_t tag = 0;        ///< tag honest processes broadcast with
    double P = 1.0;              ///< round period (local ~ real time)
    double delta = 0.0;          ///< median network delay
    double beta = 0.0;           ///< honest round-begin spread bound
    double early_frac = 0.1;     ///< target arrival at tmin + frac*beta
    double late_frac = 0.9;
    /// Omniscient first strike: if first_tmin >= 0, round `first_label` is
    /// attacked directly at the known schedule (the adversary knows T0 and
    /// the A4 wake-up window), so even round 0 sees the worst case.
    double first_tmin = -1.0;
    double first_label = 0.0;
  };

  explicit TwoFacedAdversary(Config config) : config_(std::move(config)) {}

  void on_start(Context& ctx) override;
  void on_timer(Context& ctx, std::int32_t tag) override;
  void on_message(Context& ctx, const sim::Message& m) override;

  /// Adaptive re-targeting (scenario/adversary_env.h): move the two faces
  /// within the legal in-span window.  Takes effect at the NEXT
  /// schedule_attack — faces already in pending_ keep their committed fire
  /// times, so a retune between rounds deterministically shapes the next
  /// strike and nothing else.  Values are clamped to [0, 1]: the adversary
  /// cannot leave the in-span window (an out-of-span arrival is clipped by
  /// reduce() and wasted — see the class comment).
  void retune(double early_frac, double late_frac);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct Face {
    double value;  ///< label to forge
    bool early;    ///< early face (group A) or late face (group B)
    /// Per-target face: send to exactly this id (per_target_spread mode);
    /// -1 = the whole face group.
    std::int32_t victim = -1;
  };

  [[nodiscard]] bool scoped() const noexcept {
    return !config_.early_targets.empty() || !config_.late_targets.empty();
  }

  void schedule_attack(AdversaryContext& ctx, double tmin, double value);
  void fire_due_faces(Context& ctx);

  Config config_;
  double last_value_ = -1e300;          ///< largest label already handled
  std::multimap<double, Face> pending_; ///< fire real-time -> face
};

}  // namespace wlsync::proc
