#include "proc/adversaries.h"

#include <algorithm>

namespace wlsync::proc {

namespace {
constexpr std::int32_t kSpamTimerTag = 9001;
constexpr std::int32_t kFaceTimerTag = 9002;
}  // namespace

// ---------------------------------------------------------------- Crash ---

CrashAdversary::CrashAdversary(ProcessPtr inner, double crash_at)
    : inner_(std::move(inner)), crash_at_(crash_at) {}

bool CrashAdversary::alive(Context& ctx) {
  if (!crashed_ && AdversaryContext::from(ctx).real_time() >= crash_at_) {
    crashed_ = true;
  }
  return !crashed_;
}

void CrashAdversary::on_start(Context& ctx) {
  if (alive(ctx)) inner_->on_start(ctx);
}

void CrashAdversary::on_timer(Context& ctx, std::int32_t tag) {
  if (alive(ctx)) inner_->on_timer(ctx, tag);
}

void CrashAdversary::on_message(Context& ctx, const sim::Message& m) {
  if (alive(ctx)) inner_->on_message(ctx, m);
}

// ----------------------------------------------------------------- Spam ---

void SpamAdversary::schedule_next(AdversaryContext& ctx) {
  const double gap = config_.period * (0.5 + rng_.uniform());
  ctx.set_timer_real(ctx.real_time() + gap, kSpamTimerTag);
}

void SpamAdversary::on_start(Context& ctx) {
  schedule_next(AdversaryContext::from(ctx));
}

void SpamAdversary::on_timer(Context& ctx, std::int32_t tag) {
  if (tag != kSpamTimerTag) return;
  auto& actx = AdversaryContext::from(ctx);
  for (std::int32_t i = 0; i < config_.burst; ++i) {
    const auto to =
        static_cast<std::int32_t>(rng_.below(static_cast<std::uint64_t>(
            ctx.process_count())));
    const double value = rng_.uniform(-config_.value_span, config_.value_span);
    ctx.send(to, config_.tag, value, /*aux=*/0);
  }
  schedule_next(actx);
}

// ------------------------------------------------------------- TwoFaced ---

void TwoFacedAdversary::schedule_attack(AdversaryContext& ctx, double tmin,
                                        double value) {
  const double span = config_.beta;
  if (scoped() && config_.per_target_spread) {
    // One face per victim, arrival fractions interpolated across the
    // in-span window in concatenated early+late list order.
    const std::size_t total =
        config_.early_targets.size() + config_.late_targets.size();
    const double step =
        total > 1 ? (config_.late_frac - config_.early_frac) /
                        static_cast<double>(total - 1)
                  : 0.0;
    std::size_t k = 0;
    for (const std::vector<std::int32_t>* group :
         {&config_.early_targets, &config_.late_targets}) {
      for (std::int32_t to : *group) {
        const double frac = config_.early_frac + static_cast<double>(k) * step;
        const double t = tmin + frac * span;
        pending_.emplace(t, Face{value, /*early=*/true, to});
        ctx.set_timer_real(t, kFaceTimerTag);
        ++k;
      }
    }
    return;
  }
  const double t_early = tmin + config_.early_frac * span;
  const double t_late = tmin + config_.late_frac * span;
  pending_.emplace(t_early, Face{value, /*early=*/true, /*victim=*/-1});
  pending_.emplace(t_late, Face{value, /*early=*/false, /*victim=*/-1});
  ctx.set_timer_real(t_early, kFaceTimerTag);
  ctx.set_timer_real(t_late, kFaceTimerTag);
}

void TwoFacedAdversary::fire_due_faces(Context& ctx) {
  auto& actx = AdversaryContext::from(ctx);
  const double now = actx.real_time();
  while (!pending_.empty() && pending_.begin()->first <= now + 1e-12) {
    const Face face = pending_.begin()->second;
    pending_.erase(pending_.begin());
    if (face.victim >= 0) {
      ctx.send(face.victim, config_.tag, face.value, /*aux=*/0);
    } else if (scoped()) {
      const std::vector<std::int32_t>& group =
          face.early ? config_.early_targets : config_.late_targets;
      for (std::int32_t to : group) {
        ctx.send(to, config_.tag, face.value, /*aux=*/0);
      }
    } else if (face.early) {
      for (std::int32_t to = 0; to < config_.pivot && to < ctx.process_count();
           ++to) {
        ctx.send(to, config_.tag, face.value, /*aux=*/0);
      }
    } else {
      const std::int32_t end = std::min(config_.honest_end, ctx.process_count());
      for (std::int32_t to = config_.pivot; to < end; ++to) {
        ctx.send(to, config_.tag, face.value, /*aux=*/0);
      }
    }
  }
}

void TwoFacedAdversary::retune(double early_frac, double late_frac) {
  config_.early_frac = std::clamp(early_frac, 0.0, 1.0);
  config_.late_frac = std::clamp(late_frac, 0.0, 1.0);
}

void TwoFacedAdversary::on_start(Context& ctx) {
  if (config_.first_tmin >= 0.0) {
    // Strike the very first round off the known A4 schedule.
    schedule_attack(AdversaryContext::from(ctx), config_.first_tmin,
                    config_.first_label);
  }
}

void TwoFacedAdversary::on_message(Context& ctx, const sim::Message& m) {
  if (m.tag != config_.tag) return;
  if (m.value <= last_value_) return;  // label already handled
  last_value_ = m.value;
  // First arrival of round/exchange `m.value`: its sender is that
  // exchange's earliest broadcaster, so the *same* exchange of the next
  // round begins ~ now - delta + P (the schedule is P-periodic, which also
  // covers every sub-exchange of the Section 7 k-exchange variant).  Time
  // the two faces so that after the ~delta transit they land inside the
  // honest arrival span [tmin + delta - eps, tmin + beta + delta + eps].
  auto& actx = AdversaryContext::from(ctx);
  const double next_tmin = actx.real_time() - config_.delta + config_.P;
  schedule_attack(actx, next_tmin, m.value + config_.P);
}

void TwoFacedAdversary::on_timer(Context& ctx, std::int32_t tag) {
  if (tag == kFaceTimerTag) fire_due_faces(ctx);
}

}  // namespace wlsync::proc
