#include "proc/placement.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace wlsync::proc {

namespace {

/// Appends ids from `candidates` (in order) that are not yet chosen, until
/// `chosen` reaches `count`.
void take_from(std::vector<std::int32_t>& chosen, std::vector<char>& used,
               const std::vector<std::int32_t>& candidates, std::int32_t count) {
  for (std::int32_t id : candidates) {
    if (static_cast<std::int32_t>(chosen.size()) >= count) return;
    if (!used[static_cast<std::size_t>(id)]) {
      used[static_cast<std::size_t>(id)] = 1;
      chosen.push_back(id);
    }
  }
}

std::vector<std::int32_t> antipodal_set(const net::Topology& topo,
                                        std::int32_t count) {
  // Greedy k-center: seed with the smallest id realizing the diameter, then
  // repeatedly add the node with the largest min-distance to the chosen set.
  const std::int32_t n = topo.n();
  const std::int32_t diam = topo.diameter();
  if (diam < 0) {
    // The -1 distance sentinels of an unreachable component would compare
    // below already-chosen nodes (min-distance 0) and re-select duplicates.
    throw std::invalid_argument(
        "place_faults: kAntipodal needs a connected topology");
  }
  std::int32_t first = 0;
  for (std::int32_t p = 0; p < n; ++p) {
    if (topo.eccentricity(p) == diam) {
      first = p;
      break;
    }
  }
  std::vector<std::int32_t> chosen{first};
  std::vector<std::int32_t> min_dist = topo.distances_from(first);
  while (static_cast<std::int32_t>(chosen.size()) < count) {
    std::int32_t best = -1;
    std::int32_t best_dist = -1;
    for (std::int32_t p = 0; p < n; ++p) {
      if (min_dist[static_cast<std::size_t>(p)] > best_dist) {
        best = p;
        best_dist = min_dist[static_cast<std::size_t>(p)];
      }
    }
    chosen.push_back(best);
    const std::vector<std::int32_t>& row = topo.distances_from(best);
    for (std::int32_t p = 0; p < n; ++p) {
      min_dist[static_cast<std::size_t>(p)] =
          std::min(min_dist[static_cast<std::size_t>(p)],
                   row[static_cast<std::size_t>(p)]);
    }
  }
  return chosen;
}

}  // namespace

const char* placement_name(PlacementKind kind) noexcept {
  switch (kind) {
    case PlacementKind::kTrailing: return "trailing";
    case PlacementKind::kRandom: return "random";
    case PlacementKind::kMaxDegree: return "max-degree";
    case PlacementKind::kArticulation: return "articulation";
    case PlacementKind::kBridge: return "bridge";
    case PlacementKind::kAntipodal: return "antipodal";
  }
  return "?";
}

std::vector<std::int32_t> place_faults(const net::Topology& topo,
                                       PlacementKind kind, std::int32_t count,
                                       std::uint64_t seed) {
  const std::int32_t n = topo.n();
  if (count < 0 || count > n) {
    throw std::invalid_argument("place_faults: count out of range");
  }
  if (count == 0) return {};

  switch (kind) {
    case PlacementKind::kTrailing: {
      std::vector<std::int32_t> chosen;
      for (std::int32_t id = n - count; id < n; ++id) chosen.push_back(id);
      return chosen;
    }
    case PlacementKind::kRandom: {
      // Partial Fisher-Yates over 0..n-1: the first `count` entries.
      std::vector<std::int32_t> ids(static_cast<std::size_t>(n));
      for (std::int32_t p = 0; p < n; ++p) ids[static_cast<std::size_t>(p)] = p;
      util::Rng rng(seed);
      for (std::int32_t i = 0; i < count; ++i) {
        const auto j = i + static_cast<std::int32_t>(rng.below(
                               static_cast<std::uint64_t>(n - i)));
        std::swap(ids[static_cast<std::size_t>(i)],
                  ids[static_cast<std::size_t>(j)]);
      }
      ids.resize(static_cast<std::size_t>(count));
      return ids;
    }
    case PlacementKind::kMaxDegree: {
      std::vector<std::int32_t> chosen;
      std::vector<char> used(static_cast<std::size_t>(n), 0);
      take_from(chosen, used, topo.degree_ranking(), count);
      return chosen;
    }
    case PlacementKind::kArticulation: {
      std::vector<std::int32_t> chosen;
      std::vector<char> used(static_cast<std::size_t>(n), 0);
      const net::Topology::CutStructure cut = topo.cut_structure();
      take_from(chosen, used, cut.articulation, count);
      take_from(chosen, used, cut.bridge_ends, count);
      take_from(chosen, used, topo.degree_ranking(), count);
      return chosen;
    }
    case PlacementKind::kBridge: {
      std::vector<std::int32_t> chosen;
      std::vector<char> used(static_cast<std::size_t>(n), 0);
      take_from(chosen, used, topo.bridge_endpoints(), count);
      take_from(chosen, used, topo.degree_ranking(), count);
      return chosen;
    }
    case PlacementKind::kAntipodal:
      return antipodal_set(topo, count);
  }
  throw std::invalid_argument("place_faults: unknown PlacementKind");
}

}  // namespace wlsync::proc
