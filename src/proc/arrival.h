#pragma once
// Dense per-neighbor arrival arena — the ingestion hot path.
//
// Every averaging algorithm in this repository keeps one datum per peer
// ("ARR[q] := local-time()" in Section 4.2, DIFF[q] for the Section 10
// comparison algorithms) and reduces that multiset once per round.  The
// seed stored those slots indexed by *sender id* (a length-n array even on
// a degree-d exchange graph) and reduced them through ms::reduce(), which
// sorts an allocated copy and returns a second allocated slice — two heap
// allocations and an O(n log n) sort per process per round, plus a sparse
// gather that touches n slots to find d live ones.
//
// ArrivalArena replaces both halves:
//   * storage is a flat array indexed by dense neighbor slot (the position
//     of the sender in the process' sorted closed neighborhood), so a
//     degree-d process touches d contiguous doubles, not n sparse ones, and
//     the reduction reads the multiset straight out of the arena with no
//     gather;
//   * reductions run over a reusable scratch buffer owned by the arena —
//     mid(reduce(.)) needs only the f-th smallest and f-th largest
//     surviving elements, found with two std::nth_element passes (O(m)
//     instead of O(m log m)), and mean(reduce(.)) sorts the scratch in
//     place.  Steady-state rounds perform zero heap allocations; the
//     counters below let benchmarks and the CI perf-smoke gate pin that.
//
// Bit-identity: the reductions produce exactly the doubles
// ms::fault_tolerant_midpoint / ms::fault_tolerant_mean produce on the same
// multiset (order statistics are value-exact, and the mean accumulates in
// the same ascending order) — tests/arrival_test.cpp holds them to ==, and
// tests/ingest_pin_test.cpp pins whole-system traces against the legacy
// ingestion path (IngestMode::kLegacy) at results_identical strictness.

#include <cstdint>
#include <span>
#include <vector>

namespace wlsync::proc {

/// Which ingestion engine an algorithm instance runs.  kLegacy keeps the
/// seed's id-indexed arrays + allocating ms::reduce() as the measured and
/// pinned reference, exactly as SimConfig::batch_fanout = false keeps the
/// per-recipient scheduler.
enum class IngestMode : std::uint8_t {
  kArena = 0,   ///< dense neighbor-slot arena, allocation-free reductions
  kLegacy = 1,  ///< the seed's sparse id-indexed path (reference baseline)
};

[[nodiscard]] const char* ingest_name(IngestMode mode);

/// Sender-id -> dense-slot map over a process' closed neighborhood.  The
/// slot of a sender is its position in the sorted neighbor list; non-
/// neighbors map to -1.  Shared by ArrivalArena (value slots) and the
/// quorum-counting algorithms ([ST]'s per-round sender bitsets).
class NeighborIndex {
 public:
  void bind(std::span<const std::int32_t> neighbors, std::int32_t n);

  [[nodiscard]] bool bound() const noexcept { return bound_; }
  /// Number of dense slots (the closed-neighborhood size).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::int32_t slot_of(std::int32_t sender) const {
    if (sender < 0 || static_cast<std::size_t>(sender) >= slot_of_.size()) {
      return -1;
    }
    return slot_of_[static_cast<std::size_t>(sender)];
  }

  /// slot_of without the range check, for callers that already know the id
  /// is a registered process (the simulator validates every delivery).
  [[nodiscard]] std::int32_t slot_of_valid(std::int32_t sender) const {
    return slot_of_[static_cast<std::size_t>(sender)];
  }

  /// True when the slot map is the identity (the paper's full mesh, where
  /// the closed neighborhood is 0..n-1): sender id IS the dense slot, so
  /// the per-delivery lookup can skip the table entirely.
  [[nodiscard]] bool identity() const noexcept { return identity_; }

 private:
  std::vector<std::int32_t> slot_of_;  ///< sender id -> dense slot, -1 = none
  std::size_t size_ = 0;
  bool bound_ = false;
  bool identity_ = false;
};

class ArrivalArena {
 public:
  /// Binds the arena to a closed neighborhood (sorted ids, self included)
  /// over processes 0..n-1 and fills every slot with `initial`.  Binding
  /// always resets the slots — callers guard with bound() and bind from
  /// their first Context-bearing step (the neighborhood is not known at
  /// construction time).  On a static exchange graph that is the only
  /// bind; under a net/dynamics.h schedule the algorithm re-binds when
  /// Context::topology_version moves, discarding the collection window
  /// (rebinds() counts these — bench_micro gates steady state at one).
  void bind(std::span<const std::int32_t> neighbors, std::int32_t n,
            double initial);

  [[nodiscard]] bool bound() const noexcept { return bound_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Dense slot of `sender` in the bound neighborhood; -1 if the sender is
  /// not a neighbor (its messages cannot contribute to the reduction).
  [[nodiscard]] std::int32_t slot_of(std::int32_t sender) const {
    return index_.slot_of(sender);
  }

  /// Records `value` for `sender`; non-neighbor senders are dropped (the
  /// legacy path wrote them into the id-indexed array, but the reduction
  /// only ever read neighbor slots, so the observable behaviour is equal).
  /// Precondition: sender is a registered process id in [0, n) — the
  /// per-delivery hot path trusts the simulator's id validation and spends
  /// exactly one load + one predicate on the slot lookup.
  void record(std::int32_t sender, double value) {
    if (index_.identity()) {  // full mesh: sender id IS the slot
      values_[static_cast<std::size_t>(sender)] = value;
      return;
    }
    const std::int32_t slot = index_.slot_of_valid(sender);
    if (slot >= 0) values_[static_cast<std::size_t>(slot)] = value;
  }

  void set_slot(std::size_t slot, double value) { values_[slot] = value; }
  /// Mutable base of the dense slot array — the round fast path's batched
  /// delivery kernel (core/fastpath.h) writes a whole collection window of
  /// arrivals straight into the arena, one store per (sender, receiver)
  /// pair, instead of calling record() per simulated delivery event.
  [[nodiscard]] double* slot_data() noexcept { return values_.data(); }
  [[nodiscard]] double slot_value(std::size_t slot) const {
    return values_[slot];
  }

  /// Per-round reset for the algorithms whose estimates expire (the
  /// Section 10 round-exchange family).  O(degree), not O(n).
  void fill(double value);

  /// The dense multiset, in neighbor order — ready to be reduced directly.
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// == ms::fault_tolerant_midpoint(values(), f), allocation-free.  Small
  /// neighborhoods (<= 16) sort the scratch with a branchless network;
  /// larger ones run the vectorized dual-rank select (proc/reduce_kernels.h)
  /// to find the f-th smallest and f-th largest survivors in O(m).  Order
  /// statistics are value-exact under every route, ties included.
  /// Precondition: size() >= 2f + 1.
  [[nodiscard]] double midpoint_reduced(std::size_t f);

  /// == ms::fault_tolerant_mean(values(), f), allocation-free: sorts the
  /// scratch (network for <= 16 elements, std::sort above) and accumulates
  /// the survivors in the same ascending order as the legacy reduce()
  /// slice.  Precondition: size() >= 2f + 1.
  [[nodiscard]] double mean_reduced(std::size_t f);

  // --- counters for the CI perf-smoke gate (bench_micro --smoke) ---
  /// Times bind() rebuilt the slot table (should be 1 per run).
  [[nodiscard]] std::uint64_t rebinds() const noexcept { return rebinds_; }
  /// Reductions performed since bind.
  [[nodiscard]] std::uint64_t reductions() const noexcept { return reductions_; }

 private:
  void load_scratch();

  NeighborIndex index_;
  std::vector<double> values_;   ///< dense, neighbor order
  std::vector<double> scratch_;  ///< reusable reduction workspace
  std::vector<double> select_tmp_;  ///< dual_rank_select partition buffer
  bool bound_ = false;
  std::uint64_t rebinds_ = 0;
  std::uint64_t reductions_ = 0;
};

}  // namespace wlsync::proc
