#pragma once
// Process automaton interface (Section 2.1).
//
// Processes are interrupt-driven: the transition function fires on receipt
// of START, TIMER, or an ordinary message, as a function of current state,
// the received message, and the physical clock time — all mediated through
// Context.  Implementations must be deterministic (Section 4.2's convention:
// for each received message at most one cluster applies).

#include <cstdint>
#include <memory>

#include "proc/context.h"
#include "sim/message.h"

namespace wlsync::proc {

class Process {
 public:
  virtual ~Process() = default;

  /// START interrupt: begin the algorithm.
  virtual void on_start(Context& ctx) = 0;

  /// TIMER interrupt with the tag passed to set_timer*.
  virtual void on_timer(Context& ctx, std::int32_t tag) = 0;

  /// Ordinary message from process `m.from`.
  virtual void on_message(Context& ctx, const sim::Message& m) = 0;
};

using ProcessPtr = std::unique_ptr<Process>;

}  // namespace wlsync::proc
