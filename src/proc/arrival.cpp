#include "proc/arrival.h"

#include <algorithm>
#include <stdexcept>

#include "proc/reduce_kernels.h"

namespace wlsync::proc {

const char* ingest_name(IngestMode mode) {
  switch (mode) {
    case IngestMode::kArena:
      return "arena";
    case IngestMode::kLegacy:
      return "legacy";
  }
  return "?";
}

void NeighborIndex::bind(std::span<const std::int32_t> neighbors,
                         std::int32_t n) {
  if (n < 1) throw std::invalid_argument("NeighborIndex: need n >= 1");
  slot_of_.assign(static_cast<std::size_t>(n), -1);
  identity_ = neighbors.size() == static_cast<std::size_t>(n);
  for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
    const std::int32_t id = neighbors[slot];
    if (id < 0 || id >= n) {
      throw std::invalid_argument("NeighborIndex: neighbor id out of range");
    }
    identity_ = identity_ && static_cast<std::size_t>(id) == slot;
    slot_of_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(slot);
  }
  size_ = neighbors.size();
  bound_ = true;
}

void ArrivalArena::bind(std::span<const std::int32_t> neighbors,
                        std::int32_t n, double initial) {
  index_.bind(neighbors, n);
  values_.assign(neighbors.size(), initial);
  scratch_.reserve(neighbors.size());
  select_tmp_.reserve(neighbors.size());
  bound_ = true;
  ++rebinds_;
}

void ArrivalArena::fill(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

void ArrivalArena::load_scratch() {
  // assign() into retained capacity: no allocation once scratch_ has grown
  // to the (fixed) neighborhood size.
  scratch_.assign(values_.begin(), values_.end());
  ++reductions_;
}

double ArrivalArena::midpoint_reduced(std::size_t f) {
  const std::size_t m = values_.size();
  if (m < 2 * f + 1) {
    throw std::invalid_argument("ArrivalArena: reduce needs |U| >= 2f+1");
  }
  load_scratch();
  // reduce() keeps the sorted slice [f, m-f); its min is the f-th order
  // statistic and its max the (m-1-f)-th.  Small neighborhoods sort with
  // the branchless network and read both ranks directly; larger ones run
  // the vectorized dual-rank select — either route yields the identical
  // order-statistic doubles (ties included) in O(m)-ish work with no
  // allocation past the first round.
  double lo;
  double hi;
  if (m <= kernels::kMaxNetworkSize) {
    kernels::small_sort_network(scratch_.data(), m);
    lo = scratch_[f];
    hi = scratch_[m - 1 - f];
  } else {
    const auto [sel_lo, sel_hi] = kernels::dual_rank_select(
        scratch_.data(), m, f, m - 1 - f, select_tmp_);
    lo = sel_lo;
    hi = sel_hi;
  }
  // Same operands as ms::mid(): 0.5 * (max + min).
  return 0.5 * (hi + lo);
}

double ArrivalArena::mean_reduced(std::size_t f) {
  const std::size_t m = values_.size();
  if (m < 2 * f + 1) {
    throw std::invalid_argument("ArrivalArena: reduce needs |U| >= 2f+1");
  }
  load_scratch();
  if (m <= kernels::kMaxNetworkSize) {
    kernels::small_sort_network(scratch_.data(), m);
  } else {
    std::sort(scratch_.begin(), scratch_.end());
  }
  // ms::mean over the reduce() slice accumulates ascending; do the same so
  // the floating-point sum is bit-identical.
  double sum = 0.0;
  for (std::size_t i = f; i < m - f; ++i) sum += scratch_[i];
  return sum / static_cast<double>(m - 2 * f);
}

}  // namespace wlsync::proc
