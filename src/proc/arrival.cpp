#include "proc/arrival.h"

#include <algorithm>
#include <stdexcept>

namespace wlsync::proc {

const char* ingest_name(IngestMode mode) {
  switch (mode) {
    case IngestMode::kArena:
      return "arena";
    case IngestMode::kLegacy:
      return "legacy";
  }
  return "?";
}

void NeighborIndex::bind(std::span<const std::int32_t> neighbors,
                         std::int32_t n) {
  if (n < 1) throw std::invalid_argument("NeighborIndex: need n >= 1");
  slot_of_.assign(static_cast<std::size_t>(n), -1);
  identity_ = neighbors.size() == static_cast<std::size_t>(n);
  for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
    const std::int32_t id = neighbors[slot];
    if (id < 0 || id >= n) {
      throw std::invalid_argument("NeighborIndex: neighbor id out of range");
    }
    identity_ = identity_ && static_cast<std::size_t>(id) == slot;
    slot_of_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(slot);
  }
  size_ = neighbors.size();
  bound_ = true;
}

void ArrivalArena::bind(std::span<const std::int32_t> neighbors,
                        std::int32_t n, double initial) {
  index_.bind(neighbors, n);
  values_.assign(neighbors.size(), initial);
  scratch_.reserve(neighbors.size());
  bound_ = true;
  ++rebinds_;
}

void ArrivalArena::fill(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

void ArrivalArena::load_scratch() {
  // assign() into retained capacity: no allocation once scratch_ has grown
  // to the (fixed) neighborhood size.
  scratch_.assign(values_.begin(), values_.end());
  ++reductions_;
}

namespace {

/// Hoare partition of a[l..r] around a median-of-3 pivot value.  Returns j
/// with a[l..j] <= pivot <= a[j+1..r]; any rank <= j lives in the left
/// part, any rank > j in the right.
std::ptrdiff_t hoare_partition(double* a, std::ptrdiff_t l, std::ptrdiff_t r) {
  const double x = a[l];
  const double y = a[l + (r - l) / 2];
  const double z = a[r];
  const double pivot =
      std::max(std::min(x, y), std::min(std::max(x, y), z));
  std::ptrdiff_t i = l - 1;
  std::ptrdiff_t j = r + 1;
  for (;;) {
    do {
      ++i;
    } while (a[i] < pivot);
    do {
      --j;
    } while (a[j] > pivot);
    if (i >= j) return j;
    std::swap(a[i], a[j]);
  }
}

/// Places the order statistics `lo` and `hi` (absolute ranks, lo <= hi) of
/// a[0..m) at their sorted positions.  One quickselect walk narrows the
/// range while both ranks sit on the same side of the pivot; once a
/// partition separates them, each finishes with std::nth_element on its own
/// (smaller) side.  ~35% fewer element visits than two independent
/// nth_element passes, and still value-exact: any correct selection yields
/// the identical doubles.
void dual_select(double* a, std::ptrdiff_t m, std::ptrdiff_t lo,
                 std::ptrdiff_t hi) {
  std::ptrdiff_t l = 0;
  std::ptrdiff_t r = m - 1;
  int rounds = 0;
  while (r - l > 48 && rounds++ < 64) {
    const std::ptrdiff_t j = hoare_partition(a, l, r);
    if (j <= l || j >= r) break;  // degenerate pivot: finish below
    if (hi <= j) {
      r = j;
    } else if (lo > j) {
      l = j + 1;
    } else {
      std::nth_element(a + l, a + lo, a + j + 1);
      std::nth_element(a + j + 1, a + hi, a + r + 1);
      return;
    }
  }
  std::nth_element(a + l, a + lo, a + r + 1);
  if (hi > lo) std::nth_element(a + lo + 1, a + hi, a + r + 1);
}

}  // namespace

double ArrivalArena::midpoint_reduced(std::size_t f) {
  const std::size_t m = values_.size();
  if (m < 2 * f + 1) {
    throw std::invalid_argument("ArrivalArena: reduce needs |U| >= 2f+1");
  }
  load_scratch();
  // reduce() keeps the sorted slice [f, m-f); its min is the f-th order
  // statistic and its max the (m-1-f)-th.  A shared dual-rank selection
  // finds both in O(m) without sorting or allocating.
  dual_select(scratch_.data(), static_cast<std::ptrdiff_t>(m),
              static_cast<std::ptrdiff_t>(f),
              static_cast<std::ptrdiff_t>(m - 1 - f));
  const double lo = scratch_[f];
  const double hi = scratch_[m - 1 - f];
  // Same operands as ms::mid(): 0.5 * (max + min).
  return 0.5 * (hi + lo);
}

double ArrivalArena::mean_reduced(std::size_t f) {
  const std::size_t m = values_.size();
  if (m < 2 * f + 1) {
    throw std::invalid_argument("ArrivalArena: reduce needs |U| >= 2f+1");
  }
  load_scratch();
  std::sort(scratch_.begin(), scratch_.end());
  // ms::mean over the reduce() slice accumulates ascending; do the same so
  // the floating-point sum is bit-identical.
  double sum = 0.0;
  for (std::size_t i = f; i < m - f; ++i) sum += scratch_[i];
  return sum / static_cast<double>(m - 2 * f);
}

}  // namespace wlsync::proc
