#include "proc/reduce_kernels.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace wlsync::proc::kernels {

namespace {

/// One compare-exchange: after the call a[i] <= a[j].  std::min/std::max on
/// doubles lower to minsd/maxsd (packed when the network's parallel layers
/// unroll), with no data-dependent branch.
inline void cmpx(double* a, std::size_t i, std::size_t j) {
  const double lo = std::min(a[i], a[j]);
  const double hi = std::max(a[i], a[j]);
  a[i] = lo;
  a[j] = hi;
}

// Optimal-depth networks for the sizes the sparse-topology reductions see
// most (Knuth 5.3.4 / Batcher merge-exchange for the rest).  Each layer's
// exchanges touch disjoint indices, so the compiler is free to execute
// them as packed min/max.

void sort4(double* a) {
  cmpx(a, 0, 1); cmpx(a, 2, 3);
  cmpx(a, 0, 2); cmpx(a, 1, 3);
  cmpx(a, 1, 2);
}

void sort8(double* a) {
  cmpx(a, 0, 1); cmpx(a, 2, 3); cmpx(a, 4, 5); cmpx(a, 6, 7);
  cmpx(a, 0, 2); cmpx(a, 1, 3); cmpx(a, 4, 6); cmpx(a, 5, 7);
  cmpx(a, 1, 2); cmpx(a, 5, 6); cmpx(a, 0, 4); cmpx(a, 3, 7);
  cmpx(a, 1, 5); cmpx(a, 2, 6);
  cmpx(a, 1, 4); cmpx(a, 3, 6);
  cmpx(a, 2, 4); cmpx(a, 3, 5);
  cmpx(a, 3, 4);
}

/// Batcher odd-even mergesort for arbitrary m (Knuth 5.3.4, iterative
/// form).  The comparator schedule is data-independent — the i/j loop
/// bounds depend only on m — so the body stays branchless min/max; the
/// index guard simply omits comparators that fall off the end for
/// non-power-of-two sizes (equivalent to padding with +inf sentinels).
void batcher_sort(double* a, std::size_t m) {
  std::size_t t = 1;
  while (t < m) t *= 2;  // padded width
  for (std::size_t p = 1; p < t; p *= 2) {
    for (std::size_t k = p; k >= 1; k /= 2) {
      for (std::size_t j = k % p; j + k < t; j += 2 * k) {
        for (std::size_t i = 0; i < k; ++i) {
          if ((i + j) / (2 * p) == (i + j + k) / (2 * p) && i + j + k < m) {
            cmpx(a, i + j, i + j + k);
          }
        }
      }
    }
  }
}

void insert_tail(double* a, std::size_t sorted, std::size_t m) {
  for (std::size_t i = sorted; i < m; ++i) {
    const double v = a[i];
    std::size_t j = i;
    while (j > 0 && a[j - 1] > v) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = v;
  }
}

}  // namespace

void small_sort_network(double* a, std::size_t m) {
  if (m == 0 || m > kMaxNetworkSize) {
    throw std::invalid_argument("small_sort_network: need 0 < m <= 16");
  }
  if (m > 8) { batcher_sort(a, m); return; }
  if (m == 8) { sort8(a); return; }
  if (m >= 4) { sort4(a); insert_tail(a, 4, m); return; }
  insert_tail(a, 1, m);
}

std::pair<double, double> dual_rank_select(double* a, std::size_t m,
                                           std::size_t lo, std::size_t hi,
                                           std::vector<double>& tmp) {
  if (m == 0 || lo > hi || hi >= m) {
    throw std::invalid_argument("dual_rank_select: bad ranks");
  }
  if (tmp.size() < m) tmp.resize(m);

  // Invariant: cur[l..r) holds exactly the elements of absolute ranks
  // [l, r) (each three-way partition places blocks at their final rank
  // positions), so within-window index == absolute rank throughout.
  double* cur = a;
  double* other = tmp.data();
  std::size_t l = 0;
  std::size_t r = m;
  std::size_t want_lo = lo;
  std::size_t want_hi = hi;

  while (r - l > static_cast<std::size_t>(kMaxNetworkSize)) {
    // Median-of-3 pivot over the window extremes and middle.
    const double x = cur[l];
    const double y = cur[l + (r - l) / 2];
    const double z = cur[r - 1];
    const double pivot = std::max(std::min(x, y), std::min(std::max(x, y), z));

    // Predicated three-way partition into `other`: strictly-less elements
    // pack forward from l, strictly-greater pack backward from r, equals
    // are counted and materialized afterwards.  The loop body has no
    // data-dependent branch — each store is unconditional and its cursor
    // bumps only when the element belongs to that side, so a non-member
    // write is junk that the side's next member overwrites.  The pivot is
    // an element of the window, so the tie band holds at least one slot
    // and the final junk write at back_w lands inside it.
    std::size_t front = l;
    std::size_t back_w = r - 1;
    for (std::size_t i = l; i < r; ++i) {
      const double v = cur[i];
      const bool less = v < pivot;
      const bool greater = v > pivot;
      other[front] = v;
      front += less ? 1 : 0;
      other[back_w] = v;
      back_w -= greater ? 1 : 0;
    }
    // [front, back) is the pivot's tie band.
    const std::size_t back = back_w + 1;
    for (std::size_t i = front; i < back; ++i) other[i] = pivot;
    std::swap(cur, other);

    if (want_hi < front) {
      r = front;  // both ranks in the strict-less block
    } else if (want_lo >= back) {
      l = back;  // both ranks in the strict-greater block
    } else if (want_lo >= front && want_hi < back) {
      return {pivot, pivot};  // both ranks hit the tie band
    } else {
      // The ranks separated: finish each side independently.
      double lo_val;
      double hi_val;
      if (want_lo < front) {
        std::nth_element(cur + l, cur + want_lo, cur + front);
        lo_val = cur[want_lo];
      } else {
        lo_val = pivot;  // want_lo in the tie band
      }
      if (want_hi >= back) {
        std::nth_element(cur + back, cur + want_hi, cur + r);
        hi_val = cur[want_hi];
      } else {
        hi_val = pivot;  // want_hi in the tie band
      }
      return {lo_val, hi_val};
    }
  }

  small_sort_network(cur + l, r - l);
  return {cur[want_lo], cur[want_hi]};
}

}  // namespace wlsync::proc::kernels
