#include "proc/context.h"

#include <stdexcept>

namespace wlsync::proc {

AdversaryContext& AdversaryContext::from(Context& ctx) {
  auto* adversary = dynamic_cast<AdversaryContext*>(&ctx);
  if (adversary == nullptr) {
    throw std::logic_error(
        "AdversaryContext::from: process not registered as faulty");
  }
  return *adversary;
}

}  // namespace wlsync::proc
