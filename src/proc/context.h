#pragma once
// The interface a process transition sees (Section 2.1).
//
// At a step, a process receives a message, reads its physical clock, changes
// state, sends messages, and sets timers.  Context is exactly that window
// onto the system: it never exposes real time or other processes' state to a
// nonfaulty process.  Faulty processes (assumption A2: Byzantine) receive an
// AdversaryContext instead, which adds the powers the model grants them —
// taking steps whenever they like and sending anything to anyone — while
// still routing messages through the network (they cannot control delays).

#include <cstdint>
#include <span>

#include "sim/message.h"

namespace wlsync::proc {

/// Marker emitted by algorithms so analysis code can observe round
/// structure without reaching into process internals.
struct Annotation {
  enum class Type : std::uint8_t {
    kRoundBegin = 0,  ///< logical clock reached T^i; broadcast sent
    kUpdate = 1,      ///< CORR adjusted at U^i (value = ADJ, value2 = AV)
    kJoined = 2,      ///< reintegration complete
    kCustom = 3,
  };
  Type type = Type::kCustom;
  std::int32_t round = 0;
  double value = 0.0;
  double value2 = 0.0;
};

class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual std::int32_t id() const = 0;
  [[nodiscard]] virtual std::int32_t process_count() const = 0;

  /// The processes this one exchanges messages with (its closed
  /// neighborhood in the exchange graph, itself included), sorted by id.
  /// In the paper's fully connected model this is every process; under a
  /// sparse net::Topology algorithms must size their quorums and averages
  /// from this view instead of process_count().
  [[nodiscard]] virtual std::span<const std::int32_t> neighbors() const = 0;

  /// neighbors().size() as the std::int32_t the quorum arithmetic wants.
  [[nodiscard]] std::int32_t neighbor_count() const {
    return static_cast<std::int32_t>(neighbors().size());
  }

  /// Version counter of the exchange graph behind neighbors().  0 forever
  /// on a static graph; under a net/dynamics.h schedule the simulator
  /// bumps it whenever the live graph changes, and algorithms holding
  /// neighbor-derived state (arrival windows, local-f clamps) compare it
  /// against the version they last built that state for.  Non-virtual:
  /// contexts that track dynamics stamp the protected member at
  /// construction; everyone else leaves the static default.
  [[nodiscard]] std::uint32_t topology_version() const noexcept {
    return topology_version_;
  }

  /// Current physical clock reading Ph_p (read-only, Section 2.1).
  [[nodiscard]] virtual double physical_time() const = 0;

  /// local-time() of Section 4.2: physical clock + CORR.
  [[nodiscard]] virtual double local_time() const = 0;

  /// Current value of the CORR variable.
  [[nodiscard]] virtual double corr() const = 0;

  /// CORR := CORR + adj (instantaneous, the basic algorithm's update).
  virtual void add_corr(double adj) = 0;

  /// CORR := CORR + adj, with the *displayed* local time slewed linearly
  /// over `duration` local seconds (Section 4.1's stretched adjustment).
  /// Timer arithmetic uses the post-adjustment clock immediately.
  virtual void add_corr_amortized(double adj, double duration) = 0;

  /// broadcast(m): send to every process, including self (Section 2.2).
  virtual void broadcast(std::int32_t tag, double value, std::int32_t aux) = 0;

  /// Point-to-point send (the model is fully connected).
  virtual void send(std::int32_t to, std::int32_t tag, double value,
                    std::int32_t aux) = 0;

  /// set-timer(T): timer fires when the *logical* clock reaches T, i.e. when
  /// the physical clock reaches T - CORR (Section 4.2).  If that real time
  /// is already past, no timer is placed (Section 2.2).
  virtual void set_timer(double logical_time, std::int32_t tag) = 0;

  /// Timer on the raw physical clock (used by start-up orientation logic).
  virtual void set_timer_physical(double physical_time, std::int32_t tag) = 0;

  /// Emits an annotation to any attached trace sinks.
  virtual void annotate(const Annotation& annotation) = 0;

 protected:
  std::uint32_t topology_version_ = 0;  ///< see topology_version()
};

/// Extra powers for Byzantine processes.  The simulator hands this subclass
/// to processes registered as faulty; `AdversaryContext::from` asserts the
/// downcast.
class AdversaryContext : public Context {
 public:
  /// Real time — an omniscient adversary schedules against the real clock.
  [[nodiscard]] virtual double real_time() const = 0;

  /// Wake up at an arbitrary real time (faulty processes "can choose when
  /// they take steps", Section 2.3).
  virtual void set_timer_real(double real_time, std::int32_t tag) = 0;

  [[nodiscard]] static AdversaryContext& from(Context& ctx);
};

}  // namespace wlsync::proc
