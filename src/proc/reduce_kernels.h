#pragma once
// Branchless, vectorization-friendly reduction kernels for the round hot
// path (ISSUE 6).
//
// Every averaging algorithm reduces one small multiset per process per
// round; on the paper's full mesh that multiset has n elements and the
// reduction is the second-largest per-round cost after arrival ingestion.
// The kernels here replace the branchy scalar paths with forms the
// auto-vectorizer lowers to packed min/max and packed compares at the
// baseline x86-64 target (SSE2 — CMakeLists deliberately sets no -march,
// so executions stay bit-identical across hosts):
//
//   * small_sort_network: branchless sorting networks (Batcher-style
//     compare-exchange as std::min/std::max pairs) for m <= 16, the degree
//     range of every sparse-topology cell and the k-regular default;
//   * dual_rank_select: an out-of-place two-rank quickselect whose
//     partition pass is a predicated copy — no data-dependent branches in
//     the loop body, so the compare and both cursor advances vectorize —
//     replacing the in-place Hoare walk for large m;
//   * affine_arrival_eval: the fast-path delivery kernel — evaluates a
//     receiver's local time (one affine clock segment + constant CORR) over
//     a batch of delivery instants with exactly the scalar expression
//     PhysicalClock::now + Context::local_time compute, term for term.
//
// Value-exactness contract: order statistics are properties of the sorted
// multiset, so ANY correct selection or sort yields the identical doubles
// the scalar std::nth_element / std::sort paths yield, including under
// heavy ties (duplicated arrival times); bench_micro --smoke gates this
// against randomized and tie-heavy inputs, and tests/arrival_test.cpp pins
// the reductions that consume these kernels against ms:: bit-for-bit.

#include <cstddef>
#include <utility>
#include <vector>

namespace wlsync::proc::kernels {

/// Largest m small_sort_network accepts (covers every sorting network we
/// instantiate; larger multisets go through dual_rank_select / std::sort).
inline constexpr std::size_t kMaxNetworkSize = 16;

/// Sorts a[0..m) ascending with a branchless compare-exchange network.
/// Precondition: 0 < m <= kMaxNetworkSize.  Produces exactly the sorted
/// order std::sort produces (the value sequence of a sorted multiset is
/// unique, ties included).
void small_sort_network(double* a, std::size_t m);

/// Places order statistics `lo` and `hi` (absolute ranks, lo <= hi < m)
/// and returns {a-sorted[lo], a-sorted[hi]} for the multiset a[0..m).
/// `tmp` is caller-owned scratch of capacity >= m (reused across calls so
/// steady-state rounds allocate nothing).  a[] is clobbered.  Partitions
/// are predicated copies a -> tmp -> a (branchless bodies, vectorizable);
/// the doubles returned equal the std::nth_element results on the same
/// input, value for value.
[[nodiscard]] std::pair<double, double> dual_rank_select(double* a,
                                                         std::size_t m,
                                                         std::size_t lo,
                                                         std::size_t hi,
                                                         std::vector<double>& tmp);

/// The round fast path's delivery kernel: for each i,
///   dst[i] = (seg_clock + (t[i] - seg_real) * seg_rate) + corr
/// — the exact expression (and FP evaluation order) of
/// PhysicalClock::now(t) followed by Context::local_time()'s `+ CORR`, so
/// the arrival doubles are bit-identical to the event engine's per-message
/// path whenever every t[i] lies inside the given clock segment.  Plain
/// mul+add at the baseline target (no FMA contraction: x86-64 SSE2 has no
/// fused instruction), trivially vectorizable.
inline void affine_arrival_eval(double* dst, const double* t, std::size_t m,
                                double seg_real, double seg_clock,
                                double seg_rate, double corr) {
  for (std::size_t i = 0; i < m; ++i) {
    dst[i] = (seg_clock + (t[i] - seg_real) * seg_rate) + corr;
  }
}

/// Staggered-broadcast variant (Section 9.3): the receiver normalizes each
/// arrival by the sender's known offset, so
///   dst[i] = ((seg_clock + (t[i] - seg_real) * seg_rate) + corr) - off[i]
/// — affine_arrival_eval followed by WelchLynchProcess::on_message's
/// `arrival -= from * stagger`, term for term, keeping the doubles
/// bit-identical to the event engine's staggered per-message path.
inline void affine_arrival_eval_offset(double* dst, const double* t,
                                       const double* off, std::size_t m,
                                       double seg_real, double seg_clock,
                                       double seg_rate, double corr) {
  for (std::size_t i = 0; i < m; ++i) {
    dst[i] = ((seg_clock + (t[i] - seg_real) * seg_rate) + corr) - off[i];
  }
}

}  // namespace wlsync::proc::kernels
