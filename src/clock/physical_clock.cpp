#include "clock/physical_clock.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace wlsync::clk {

namespace {
constexpr double kRateTolerance = 1e-12;
}

PhysicalClock::PhysicalClock(std::unique_ptr<DriftModel> drift, double offset,
                             double rho)
    : drift_(std::move(drift)), rho_(rho), offset0_(offset) {
  if (!drift_) throw std::invalid_argument("PhysicalClock: null drift model");
  const DriftSegment seg = drift_->segment(next_segment_++);
  if (seg.rate < 1.0 / (1.0 + rho_) - kRateTolerance ||
      seg.rate > 1.0 + rho_ + kRateTolerance) {
    throw std::invalid_argument("PhysicalClock: drift rate violates rho bound");
  }
  breaks_.push_back({0.0, offset, seg.rate});
  breaks_.push_back({seg.duration, offset + seg.duration * seg.rate, seg.rate});
}

void PhysicalClock::extend_real(double real_time) const {
  while (breaks_.back().real < real_time) {
    const DriftSegment seg = drift_->segment(next_segment_++);
    if (seg.duration <= 0.0) throw std::logic_error("drift segment duration <= 0");
    if (seg.rate < 1.0 / (1.0 + rho_) - kRateTolerance ||
        seg.rate > 1.0 + rho_ + kRateTolerance) {
      throw std::logic_error("drift rate violates rho bound");
    }
    Breakpoint& last = breaks_.back();
    last.rate = seg.rate;
    breaks_.push_back(
        {last.real + seg.duration, last.clock + seg.duration * seg.rate, seg.rate});
  }
}

void PhysicalClock::extend_clock(double clock_time) const {
  // Clock values are strictly increasing along breakpoints (rates > 0), so
  // extending real time far enough also covers any clock time.
  while (breaks_.back().clock < clock_time) {
    const double deficit = clock_time - breaks_.back().clock;
    // Advance real time generously; rate >= 1/(1+rho) so this terminates.
    extend_real(breaks_.back().real + deficit * (1.0 + rho_) + 1.0);
  }
}

std::size_t PhysicalClock::locate_real(double real_time) const {
  // Index of the last breakpoint with break.real <= real_time (0 if none).
  // Callers have already extended coverage past real_time.
  const std::size_t last = breaks_.size() - 1;
  std::size_t i = hint_real_ <= last ? hint_real_ : last;
  if (breaks_[i].real <= real_time) {
    if (i == last || real_time < breaks_[i + 1].real) return hint_real_ = i;
    ++i;  // the common forward step to the adjacent segment
    if (i == last || real_time < breaks_[i + 1].real) return hint_real_ = i;
  }
  const auto it = std::upper_bound(
      breaks_.begin(), breaks_.end(), real_time,
      [](double t, const Breakpoint& b) { return t < b.real; });
  i = it == breaks_.begin()
          ? 0
          : static_cast<std::size_t>(it - breaks_.begin()) - 1;
  return hint_real_ = i;
}

std::size_t PhysicalClock::locate_clock(double clock_time) const {
  const std::size_t last = breaks_.size() - 1;
  std::size_t i = hint_clock_ <= last ? hint_clock_ : last;
  if (breaks_[i].clock <= clock_time) {
    if (i == last || clock_time < breaks_[i + 1].clock) return hint_clock_ = i;
    ++i;
    if (i == last || clock_time < breaks_[i + 1].clock) return hint_clock_ = i;
  }
  const auto it = std::upper_bound(
      breaks_.begin(), breaks_.end(), clock_time,
      [](double c, const Breakpoint& b) { return c < b.clock; });
  i = it == breaks_.begin()
          ? 0
          : static_cast<std::size_t>(it - breaks_.begin()) - 1;
  return hint_clock_ = i;
}

std::size_t PhysicalClock::truncate_before(double real_time) {
  // Keep the segment containing real_time (the last breakpoint with
  // break.real <= real_time) and everything after it; the clock stays a
  // valid piecewise-linear function on [real_time, +inf).  The final
  // breakpoint is never removed — extension works off breaks_.back().
  std::size_t keep = breaks_.size() - 1;
  while (keep > 0 && breaks_[keep].real > real_time) --keep;
  if (keep == 0) return 0;
  breaks_.erase(breaks_.begin(),
                breaks_.begin() + static_cast<std::ptrdiff_t>(keep));
  trimmed_ += keep;
  // Hint caches index the vector directly: rebase, clamping positions that
  // pointed into the discarded prefix onto the first retained segment.
  hint_real_ = hint_real_ > keep ? hint_real_ - keep : 0;
  hint_clock_ = hint_clock_ > keep ? hint_clock_ - keep : 0;
  return keep;
}

double PhysicalClock::now(double real_time) const {
  extend_real(real_time);
  const Breakpoint& seg = breaks_[locate_real(real_time)];
  return seg.clock + (real_time - seg.real) * seg.rate;
}

bool PhysicalClock::affine_span(double t0, double t1, AffineSpan& out) const {
  extend_real(t1);
  const std::size_t i = locate_real(t0);
  // The segment covers [breaks_[i].real, breaks_[i+1].real); the last
  // breakpoint extends to +inf until lazily grown (extend_real above
  // guarantees coverage of t1, so i+1 existing with real <= t1 means a
  // rate change inside the window).
  if (i + 1 < breaks_.size() && breaks_[i + 1].real <= t1) return false;
  out.real = breaks_[i].real;
  out.clock = breaks_[i].clock;
  out.rate = breaks_[i].rate;
  return true;
}

double PhysicalClock::to_real(double clock_time) const {
  extend_clock(clock_time);
  const Breakpoint& seg = breaks_[locate_clock(clock_time)];
  return seg.real + (clock_time - seg.clock) / seg.rate;
}

}  // namespace wlsync::clk
