#include "clock/drift.h"

#include <algorithm>
#include <cassert>

namespace wlsync::clk {

DriftSegment PiecewiseUniformDrift::segment(std::uint64_t index) {
  // Segments are generated in order; the simulator only ever asks for the
  // next one, but we defend against repeats of the latest index.
  assert(index <= next_index_);
  if (index < next_index_) return {period_, last_rate_};
  ++next_index_;
  const double lo = 1.0 / (1.0 + rho_);
  const double hi = 1.0 + rho_;
  last_rate_ = rng_.uniform(lo, hi);
  return {period_, last_rate_};
}

DriftSegment RandomWalkDrift::segment(std::uint64_t index) {
  assert(index <= next_index_);
  if (index < next_index_) return {period_, rate_};
  ++next_index_;
  const double lo = 1.0 / (1.0 + rho_);
  const double hi = 1.0 + rho_;
  if (!initialized_) {
    rate_ = rng_.uniform(lo, hi);
    initialized_ = true;
  } else {
    rate_ += rng_.uniform(-step_, step_);
    // Reflect back into the legal band.
    if (rate_ > hi) rate_ = hi - (rate_ - hi);
    if (rate_ < lo) rate_ = lo + (lo - rate_);
    rate_ = std::clamp(rate_, lo, hi);
  }
  return {period_, rate_};
}

std::unique_ptr<DriftModel> make_constant(double rate) {
  return std::make_unique<ConstantDrift>(rate);
}

std::unique_ptr<DriftModel> make_piecewise_uniform(double rho, double period,
                                                   util::Rng rng) {
  return std::make_unique<PiecewiseUniformDrift>(rho, period, rng);
}

std::unique_ptr<DriftModel> make_random_walk(double rho, double period, double step,
                                             util::Rng rng) {
  return std::make_unique<RandomWalkDrift>(rho, period, step, rng);
}

std::unique_ptr<DriftModel> make_extremal(double rho, double period, bool start_fast) {
  return std::make_unique<ExtremalDrift>(rho, period, start_fast);
}

}  // namespace wlsync::clk
