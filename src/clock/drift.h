#pragma once
// Drift-rate models for rho-bounded physical clocks (Section 3.1).
//
// A clock C is rho-bounded when 1/(1+rho) <= dC/dt <= 1+rho everywhere
// (assumption A1).  We realize clocks as piecewise-linear functions; a
// DriftModel produces the successive (segment length, rate) pairs.  All
// models keep every rate strictly inside the legal band, so assumption A1
// holds by construction and is re-checked by PhysicalClock.

#include <cstdint>
#include <memory>

#include "util/rng.h"

namespace wlsync::clk {

/// One linear segment of a physical clock: the clock runs at `rate` clock
/// seconds per real second for `duration` real seconds.
struct DriftSegment {
  double duration = 0.0;  ///< real-time length; must be > 0
  double rate = 1.0;      ///< in [1/(1+rho), 1+rho]
};

/// Produces the clock's successive segments, deterministically.
class DriftModel {
 public:
  virtual ~DriftModel() = default;
  /// Returns segment `index` (0-based).  Must be deterministic in `index`.
  [[nodiscard]] virtual DriftSegment segment(std::uint64_t index) = 0;
};

/// A perfect or constant-rate clock: one infinite segment at `rate`.
class ConstantDrift final : public DriftModel {
 public:
  explicit ConstantDrift(double rate) : rate_(rate) {}
  [[nodiscard]] DriftSegment segment(std::uint64_t) override {
    return {1e9, rate_};  // effectively infinite pieces of the same rate
  }

 private:
  double rate_;
};

/// Rate drawn uniformly from [1/(1+rho), 1+rho] every `period` real seconds.
/// Models an oscillator wandering within its specification band.
class PiecewiseUniformDrift final : public DriftModel {
 public:
  PiecewiseUniformDrift(double rho, double period, util::Rng rng)
      : rho_(rho), period_(period), rng_(rng) {}
  [[nodiscard]] DriftSegment segment(std::uint64_t index) override;

 private:
  double rho_;
  double period_;
  util::Rng rng_;
  std::uint64_t next_index_ = 0;
  double last_rate_ = 1.0;
};

/// Bounded random walk: each period the rate moves by a small step and is
/// reflected back into [1/(1+rho), 1+rho].  Models slowly varying drift
/// (temperature effects), the hardest legal case for the analysis.
class RandomWalkDrift final : public DriftModel {
 public:
  RandomWalkDrift(double rho, double period, double step, util::Rng rng)
      : rho_(rho), period_(period), step_(step), rng_(rng) {}
  [[nodiscard]] DriftSegment segment(std::uint64_t index) override;

 private:
  double rho_;
  double period_;
  double step_;
  util::Rng rng_;
  std::uint64_t next_index_ = 0;
  double rate_ = 1.0;
  bool initialized_ = false;
};

/// Worst-case two-rate clock: alternates between the extreme legal rates,
/// starting fast or slow.  Adversarially maximizes relative drift.
class ExtremalDrift final : public DriftModel {
 public:
  ExtremalDrift(double rho, double period, bool start_fast)
      : rho_(rho), period_(period), start_fast_(start_fast) {}
  [[nodiscard]] DriftSegment segment(std::uint64_t index) override {
    const bool fast = ((index % 2 == 0) == start_fast_);
    return {period_, fast ? 1.0 + rho_ : 1.0 / (1.0 + rho_)};
  }

 private:
  double rho_;
  double period_;
  bool start_fast_;
};

/// Factory helpers returning owning pointers.
[[nodiscard]] std::unique_ptr<DriftModel> make_constant(double rate);
[[nodiscard]] std::unique_ptr<DriftModel> make_piecewise_uniform(double rho,
                                                                 double period,
                                                                 util::Rng rng);
[[nodiscard]] std::unique_ptr<DriftModel> make_random_walk(double rho, double period,
                                                           double step, util::Rng rng);
[[nodiscard]] std::unique_ptr<DriftModel> make_extremal(double rho, double period,
                                                        bool start_fast);

}  // namespace wlsync::clk
