#pragma once
// The read-only physical clock Ph_p of Section 2.1.
//
// A clock is a monotonically increasing function from real times to clock
// times (Section 2.1); we realize it as a piecewise-linear function whose
// segment rates come from a DriftModel and therefore stay rho-bounded.
// Because segments are linear, the inverse c(T) = C^{-1}(T) is exact, which
// the message system needs: setting a timer for clock time T schedules a
// TIMER message at real time Ph^{-1}(T) (Section 2.2).
//
// Segments are generated lazily as queries move forward in time, so a clock
// supports unbounded executions with O(log n) queries.

#include <cstdint>
#include <memory>
#include <vector>

#include "clock/drift.h"

namespace wlsync::clk {

class PhysicalClock {
 private:
  struct Breakpoint {
    double real;   ///< real time at segment start
    double clock;  ///< clock reading at segment start
    double rate;   ///< slope over this segment
  };

 public:
  /// A clock reading `offset` at real time 0, advancing per `drift`.
  /// `rho` is the asserted bound; every segment rate is validated against it.
  PhysicalClock(std::unique_ptr<DriftModel> drift, double offset, double rho);

  /// C(t): clock time at real time t.  t may be any value >= the earliest
  /// generated time (segments extend backward linearly from t = 0 at the
  /// first segment's rate).
  [[nodiscard]] double now(double real_time) const;

  /// c(T) = C^{-1}(T): the real time at which the clock reads T.
  [[nodiscard]] double to_real(double clock_time) const;

  /// One affine piece of the clock: C(t) = clock + (t - real) * rate on the
  /// segment's span.  Exposed for the round fast path's batched delivery
  /// kernel (proc/reduce_kernels.h), whose per-arrival expression matches
  /// now() term for term.
  struct AffineSpan {
    double real = 0.0;   ///< segment start (real time)
    double clock = 0.0;  ///< clock reading at segment start
    double rate = 0.0;   ///< slope
  };

  /// The single affine segment covering [t0, t1], if one exists (t0 <= t1;
  /// extends the clock lazily as needed).  Returns false when a drift
  /// breakpoint falls inside the window — callers then evaluate per point
  /// through now(), which is exact on any window.
  [[nodiscard]] bool affine_span(double t0, double t1, AffineSpan& out) const;

  /// The asserted drift bound rho.
  [[nodiscard]] double rho() const noexcept { return rho_; }

  /// Clock value at real time 0 (stored at construction; survives
  /// truncate_before, which may discard the t = 0 breakpoint).
  [[nodiscard]] double offset() const noexcept { return offset0_; }

  /// Bounded-memory mode (analysis/observe.h): discards every breakpoint
  /// strictly before the segment containing real time t.  Queries (now,
  /// to_real, Walker::now) at times >= t are unaffected bit-for-bit;
  /// queries before t become invalid (they extrapolate backward from the
  /// first retained segment).  The streaming observer only truncates
  /// behind its fully-drained sample frontier.  Returns the number of
  /// breakpoints removed; front-erase, no allocation, capacity retained.
  std::size_t truncate_before(double real_time);

  /// Breakpoints discarded by truncate_before so far.
  [[nodiscard]] std::size_t trimmed() const noexcept { return trimmed_; }

  /// Breakpoints currently held (after any truncation).
  [[nodiscard]] std::size_t retained_breakpoints() const noexcept {
    return breaks_.size();
  }

  /// Approximate heap footprint of the retained segment list
  /// (capacity-based, like CorrLog::approx_bytes).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return breaks_.capacity() * sizeof(Breakpoint);
  }

  /// Single-pass sampling cursor for the batched measurement pipeline:
  /// repeated now(t) calls with non-decreasing t walk the segment list once
  /// (amortized O(1) per sample) through a private index, never the clock's
  /// shared hint caches — so Walkers over *distinct* clocks are safe to
  /// drive from different threads.  Queries past the generated horizon
  /// still extend the walked clock lazily; shard by clock, never share one
  /// clock across threads.  Produces bit-identical values to now().  The
  /// cursor is an absolute segment ordinal, so the Walker survives
  /// truncate_before on its clock (like sim::CorrLog::Walker).
  class Walker {
   public:
    explicit Walker(const PhysicalClock& clock) : clock_(clock) {}

    [[nodiscard]] double now(double real_time) {
      clock_.extend_real(real_time);
      const std::vector<Breakpoint>& breaks = clock_.breaks_;
      std::size_t i = seg_ >= clock_.trimmed_ ? seg_ - clock_.trimmed_ : 0;
      while (i + 1 < breaks.size() && breaks[i + 1].real <= real_time) {
        ++i;
      }
      seg_ = clock_.trimmed_ + i;
      const Breakpoint& seg = breaks[i];
      return seg.clock + (real_time - seg.real) * seg.rate;
    }

   private:
    const PhysicalClock& clock_;
    std::size_t seg_ = 0;  ///< absolute ordinal (trimmed_ + vector index)
  };

 private:
  void extend_real(double real_time) const;
  void extend_clock(double clock_time) const;
  [[nodiscard]] std::size_t locate_real(double real_time) const;
  [[nodiscard]] std::size_t locate_clock(double clock_time) const;

  std::unique_ptr<DriftModel> drift_;
  double rho_;
  double offset0_ = 0.0;     ///< clock reading at real time 0
  std::size_t trimmed_ = 0;  ///< breakpoints dropped from the front so far
  // Lazily extended; mutable because extension does not change the abstract
  // (infinite) function the clock denotes.
  mutable std::vector<Breakpoint> breaks_;
  mutable std::uint64_t next_segment_ = 0;
  // Last-hit segment per axis: queries are temporally local, so most hit
  // the same or the next segment and skip the binary search entirely.
  mutable std::size_t hint_real_ = 0;
  mutable std::size_t hint_clock_ = 0;
};

}  // namespace wlsync::clk
