#pragma once
// Topology sharding for the conservative PDES engine (engine/pdes.h).
//
// The engine gives each shard its own event queue and worker thread;
// correctness does not depend on the partition at all (any assignment is
// bit-identical — cross-shard messages ride channels), but PERFORMANCE
// does: every cut edge is a channel that carries messages every round, and
// the conservative lookahead window is the minimum delay floor over the
// cut.  So the partitioner's one job is minimizing cut edges while keeping
// shards balanced and internally connected.
//
// The algorithm is METIS-shaped greedy growth, specialized to the exchange
// graphs this codebase builds:
//
//   1. seed selection — structural cut candidates first (articulation
//      points and bridge endpoints from Topology::cut_structure(), the
//      PR 3 queries), spread by farthest-point sampling over BFS hop
//      distance, so regions meet at the narrow joints instead of cutting
//      through cliques;
//   2. balanced multi-source BFS growth — the smallest shard with a live
//      frontier claims its next frontier node, which keeps shards
//      connected by construction and within one frontier layer of balanced;
//   3. boundary refinement — Kernighan-Lin-style single-node moves that
//      strictly reduce the cut without unbalancing; adopted only if every
//      shard stays connected (checked once, whole-pass, and rolled back
//      otherwise so the connectivity invariant is unconditional on
//      connected input graphs).
//
// Everything is deterministic in (topology, k, seed): the seed feeds one
// draw (which structural candidate anchors shard 0); every other step
// breaks ties by ascending id.

#include <cstdint>
#include <utility>
#include <vector>

#include "net/topology.h"

namespace wlsync::net {

struct Partition {
  std::int32_t k = 1;                  ///< effective shard count (>= 1)
  std::vector<std::int32_t> shard_of;  ///< node id -> shard index, size n
  std::vector<std::int32_t> shard_sizes;  ///< size k, every entry >= 1
  /// Undirected cut edges (u < v, self-loops excluded): topology edges
  /// whose endpoints landed in different shards.  Ascending lexicographic.
  std::vector<std::pair<std::int32_t, std::int32_t>> cut_edges;
  /// Per-shard incident cut edges, as indices into cut_edges (ascending).
  /// An edge appears under BOTH endpoint shards; the PDES engine folds each
  /// shard's outgoing delay floor from its list without rescanning the
  /// graph.  Size k; every list empty when the cut is (k == 1).
  std::vector<std::vector<std::int32_t>> shard_cuts;
  /// boundary[v] != 0 iff v is an endpoint of some cut edge — the only
  /// honest processes whose events can produce cross-shard traffic in one
  /// hop (honest sends follow the topology).  Size n, all zero when k == 1.
  std::vector<char> boundary;
  /// Undirected non-cut edges (both endpoints in one shard).  Together with
  /// cut_edges.size() this is the cut fraction the worker auto-tuner scores
  /// candidate shard counts by.  0 when k == 1 (no edge scan happens).
  std::int64_t internal_edges = 0;

  [[nodiscard]] std::int32_t n() const noexcept {
    return static_cast<std::int32_t>(shard_of.size());
  }
};

/// Partitions `topo` into min(k, n) shards (k < 1 is treated as 1).  On a
/// connected topology every shard's induced subgraph is connected; on a
/// disconnected one, whole stray components are attached to the smallest
/// shard (connectivity within a shard then mirrors the input's).
[[nodiscard]] Partition partition_topology(const Topology& topo, std::int32_t k,
                                           std::uint64_t seed);

}  // namespace wlsync::net
