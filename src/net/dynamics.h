#pragma once
// Time-varying exchange graphs: a declarative schedule of topology and
// membership changes the Simulator applies at exact simulated instants.
//
// Everything before this layer ran on a static graph: the Topology was
// materialized once, adversaries were placed once, and the only dynamism
// was a single scripted crash in run_reintegration.  A DynamicsSpec is the
// scenario-facing answer — an ordered list of events
//
//   * kLinkFail / kLinkHeal  — one undirected edge leaves / re-enters the
//     live graph;
//   * kSplit / kMerge        — a whole vertex group is cut off from (or
//     re-attached to) the rest: kSplit removes every live edge crossing
//     the (group, complement) cut, kMerge restores the BASE graph's cut
//     edges (the adjacency the run started with);
//   * kLeave / kRejoin       — process churn: the process goes silent and
//     later re-enters through the core/reintegration machinery.  These do
//     not touch the graph; the analysis layer routes the process through a
//     ChurnProcess (core/reintegration.h) and the events exist in the
//     schedule so the Simulator can count them and the engines can refuse.
//
// The Simulator installs the schedule as tier-2 scenario events in its
// deterministic (time, tier, seq) order (sim/event.h), so the live graph —
// and with it Topology neighbor views, the (deg-1)/3 local-f clamps in
// core/welch_lynch, and the batched fan-out — tracks the schedule
// bit-reproducibly in seed.  Messages already in flight when an edge fails
// still deliver (they are on the wire; A3 constrains channels going
// forward, not retroactively), exactly as FanoutRecord snapshots already
// behave.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wlsync::net {

enum class DynamicsKind : std::uint8_t {
  kLinkFail = 0,
  kLinkHeal = 1,
  kSplit = 2,
  kMerge = 3,
  kLeave = 4,
  kRejoin = 5,
};

[[nodiscard]] const char* dynamics_name(DynamicsKind kind) noexcept;

struct DynamicsEvent {
  double at = 0.0;       ///< simulated (real) time the event applies
  DynamicsKind kind = DynamicsKind::kLinkFail;
  std::int32_t a = -1;   ///< link endpoint / churned process id
  std::int32_t b = -1;   ///< link endpoint (links only)
  std::vector<std::int32_t> group;  ///< one side of the cut (split/merge)
};

/// Per-process downtime window extracted from a churn schedule.  A leave
/// with no matching rejoin holds rejoin = kNeverRejoins.
struct ChurnInterval {
  double leave = 0.0;
  double rejoin = 1e300;
};
inline constexpr double kNeverRejoins = 1e300;

/// An ordered schedule of dynamics events.  Builders are chainable:
///
///   net::DynamicsSpec dyn;
///   dyn.fail_link(5.0, 3, 12).heal_link(45.0, 3, 12)
///      .split(100.0, {0, 1, 2, 3}).merge(180.0, {0, 1, 2, 3})
///      .leave(60.0, 7).rejoin(140.0, 7);
///
/// Events need not be appended in time order; the Simulator sorts by
/// (at, insertion index) when installing, so ties resolve in append order.
struct DynamicsSpec {
  std::vector<DynamicsEvent> events;

  DynamicsSpec& fail_link(double at, std::int32_t a, std::int32_t b);
  DynamicsSpec& heal_link(double at, std::int32_t a, std::int32_t b);
  DynamicsSpec& split(double at, std::vector<std::int32_t> group);
  DynamicsSpec& merge(double at, std::vector<std::int32_t> group);
  DynamicsSpec& leave(double at, std::int32_t pid);
  DynamicsSpec& rejoin(double at, std::int32_t pid);

  /// Mass churn: processes `first .. first + count - 1` each leave at
  /// `t0 + i * stagger` and rejoin `downtime` later.  Deterministic by
  /// construction — the wave is a pure function of its arguments.
  DynamicsSpec& churn_wave(double t0, std::int32_t first, std::int32_t count,
                           double downtime, double stagger);

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// True when any event rewrites the live graph (link or partition
  /// events).  Pure-churn schedules leave the topology alone.
  [[nodiscard]] bool topology_changing() const noexcept;

  /// True when any event is process churn (leave/rejoin).
  [[nodiscard]] bool has_churn() const noexcept;

  /// Validates against an n-process system.  Throws std::invalid_argument
  /// when: an id is out of [0, n); an event time is negative; a link event
  /// has a == b; a group is empty, has duplicates, or is not a proper
  /// subset of [0, n); a process's leave/rejoin events do not alternate
  /// starting with leave (in time order); or a rejoin comes earlier than
  /// `min_down` after its leave (reintegration needs a dead window — the
  /// analysis layer passes 2P).
  void validate(std::int32_t n, double min_down) const;
};

/// Per-process downtime windows of a schedule, keyed by process id, each
/// process's intervals sorted by leave time.  An unmatched leave yields
/// rejoin = kNeverRejoins.  Assumes the schedule validates.
[[nodiscard]] std::map<std::int32_t, std::vector<ChurnInterval>> churn_intervals(
    const DynamicsSpec& spec);

}  // namespace wlsync::net
