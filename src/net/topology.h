#pragma once
// The exchange graph of the network layer.
//
// The paper's model is fully connected: broadcast(m) reaches every process,
// including the sender (Section 2.2).  That is the faithful default here —
// but at n >= 64 the n^2 messages per round dominate everything, and the
// sparse/structured exchange graphs of the gradient-clock-sync literature
// (Bund/Lenzen/Rosenbaum; Khanchandani/Lenzen) are the route to scale.  A
// Topology is the pluggable answer: a symmetric adjacency, stored CSR for
// cache-friendly fan-out walks, that Context::broadcast routes through.
//
// Invariants every constructor establishes (and from_adjacency repairs):
//   * each node's neighbor list contains the node itself (a process always
//     hears its own broadcast, as in the paper);
//   * lists are sorted ascending and duplicate-free — the batched fan-out
//     draws per-link delays in neighbor order, so this ordering is what
//     makes full-mesh runs bit-identical to the unbatched engine;
//   * the graph is symmetric (p hears q iff q hears p), matching the
//     bidirectional-link reading of assumption A3.
//
// Point-to-point Context::send is NOT restricted by the topology: Byzantine
// processes may address anyone (A2 constrains channels, not senders), and
// the two-faced adversary depends on that.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wlsync::net {

class Topology {
 public:
  /// Every pair of processes exchanges messages (the paper's model).
  [[nodiscard]] static Topology full_mesh(std::int32_t n);

  /// Cliques of `clique_size` consecutive ids, closed into a ring by one
  /// bridge edge between adjacent cliques (last node of clique k to first
  /// node of clique k+1).  Diameter ~ n / clique_size; the cheapest
  /// structured graph that keeps local quorums dense.
  [[nodiscard]] static Topology ring_of_cliques(std::int32_t n,
                                                std::int32_t clique_size);

  /// Random circulant graph of degree ~`degree`: stride 1 (a ring, which
  /// guarantees connectivity) plus degree/2 - 1 distinct random strides,
  /// each contributing edges i <-> i +- s (mod n).  Random circulants are
  /// expanders with high probability — the classic constant-degree
  /// exchange graph for large-n synchronization studies.
  [[nodiscard]] static Topology k_regular(std::int32_t n, std::int32_t degree,
                                          std::uint64_t seed);

  /// User-supplied adjacency (`lists[p]` = p's neighbors).  Ids are
  /// validated, the graph is symmetrized, self-loops are added, and lists
  /// are sorted/deduplicated.
  [[nodiscard]] static Topology from_adjacency(
      const std::vector<std::vector<std::int32_t>>& lists);

  Topology() = default;

  [[nodiscard]] std::int32_t n() const noexcept {
    return static_cast<std::int32_t>(offsets_.size()) - 1;
  }

  /// Sorted neighbor ids of p, p itself included.
  [[nodiscard]] std::span<const std::int32_t> neighbors(std::int32_t p) const {
    const auto i = static_cast<std::size_t>(p);
    return {targets_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  [[nodiscard]] std::int32_t degree(std::int32_t p) const {
    return static_cast<std::int32_t>(neighbors(p).size());
  }

  /// Directed edge count (self-loops included); messages per broadcast sum.
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return targets_.size();
  }

  [[nodiscard]] bool is_full_mesh() const noexcept {
    return edge_count() ==
           static_cast<std::size_t>(n()) * static_cast<std::size_t>(n());
  }

  /// True when every process can reach every other (ignoring self-loops).
  /// Synchronization is hopeless across disconnected components, so the
  /// experiment harness validates this up front.
  [[nodiscard]] bool connected() const;

  // --- distance queries (the gradient-skew subsystem's graph metric) ---
  //
  // Gradient clock synchronization (Bund/Lenzen/Rosenbaum) bounds skew as a
  // function of hop distance d(i, j), so the analysis layer needs BFS rows
  // and the diameter.  Rows are computed lazily and cached per source;
  // first computation mutates the cache, so warm every row you need (or
  // call diameter(), which warms all of them) BEFORE sharing one Topology
  // across measurement threads.  Reads of warmed rows are const and safe.

  /// BFS hop distances from p to every node (self-loops ignored; d(p,p) =
  /// 0).  Unreachable nodes hold -1.  The reference stays valid for the
  /// lifetime of this Topology (cache row, never evicted).
  [[nodiscard]] const std::vector<std::int32_t>& distances_from(std::int32_t p) const;

  /// max_q d(p, q); -1 when some node is unreachable from p.
  [[nodiscard]] std::int32_t eccentricity(std::int32_t p) const;

  /// max_p eccentricity(p); -1 when disconnected.  Warms every cache row.
  [[nodiscard]] std::int32_t diameter() const;

  // --- structural queries (positional adversary placement) ---

  /// Both cut-structure lists from ONE iterative Tarjan DFS (callers that
  /// need articulation points AND bridges — proc/placement.cpp — should use
  /// this instead of the two single-list accessors below, which each run
  /// the full pass).  Self-loops ignored; both lists ascending.
  struct CutStructure {
    std::vector<std::int32_t> articulation;  ///< cut vertices
    std::vector<std::int32_t> bridge_ends;   ///< bridge endpoints, deduped
  };
  [[nodiscard]] CutStructure cut_structure() const;

  /// Cut vertices (Tarjan), ascending ids.  Self-loops ignored.  A closed
  /// ring of cliques is 2-connected and has none; a path of cliques has
  /// one per inter-clique joint.
  [[nodiscard]] std::vector<std::int32_t> articulation_points() const;

  /// Endpoints of bridge edges (edges whose removal disconnects), ascending
  /// and deduplicated.  Self-loops ignored.
  [[nodiscard]] std::vector<std::int32_t> bridge_endpoints() const;

  /// Ids sorted by degree descending, ties broken by ascending id.  On a
  /// ring of cliques this leads with the bridge endpoints (degree
  /// clique_size + 1 vs clique_size inside).
  [[nodiscard]] std::vector<std::int32_t> degree_ranking() const;

  /// Union of the closed neighborhoods N[s] of the seed vertices, sorted
  /// ascending and deduplicated (seeds themselves included — the lists
  /// carry self-loops).  This is the fault-isolating fast path's "tainted
  /// region": everything a Byzantine seed can deliver to over an exchange
  /// edge.  Out-of-range seed ids throw.
  [[nodiscard]] std::vector<std::int32_t> closed_neighborhood(
      std::span<const std::int32_t> seeds) const;

 private:
  void ensure_distance_row(std::int32_t p) const;

  /// CSR: neighbors of p are targets_[offsets_[p] .. offsets_[p+1]).
  std::vector<std::int32_t> offsets_;  // size n + 1
  std::vector<std::int32_t> targets_;
  /// Lazy per-source BFS rows; an empty row means "not yet computed".
  /// Purely derived data, so copies carrying it stay consistent.
  mutable std::vector<std::vector<std::int32_t>> dist_cache_;
};

// ---------------------------------------------------------------------------
// Declarative topology selection, the RunSpec- and sweep-facing surface.

enum class TopologyKind : std::uint8_t {
  kFullMesh = 0,       ///< the paper's model; the batched-fan-out fast path
  kRingOfCliques = 1,
  kKRegular = 2,
  kCustom = 3,         ///< TopologySpec::custom adjacency lists
};

[[nodiscard]] const char* topology_name(TopologyKind kind) noexcept;

struct TopologySpec {
  TopologyKind kind = TopologyKind::kFullMesh;
  std::int32_t clique_size = 8;  ///< kRingOfCliques
  std::int32_t degree = 8;       ///< kKRegular (effective degree ~ 2*(degree/2))
  std::uint64_t seed = 1;        ///< kKRegular stride draw
  std::vector<std::vector<std::int32_t>> custom;  ///< kCustom
};

/// Materializes the spec for an n-process system.  Throws
/// std::invalid_argument on malformed specs (including a kCustom adjacency
/// whose size differs from n, or any disconnected result).
[[nodiscard]] Topology build_topology(const TopologySpec& spec, std::int32_t n);

}  // namespace wlsync::net
