#pragma once
// Batched fan-out records for broadcast delivery.
//
// The unbatched engine turns one broadcast into deg(p) separate queue
// entries that all sit in the scheduler at once — O(n^2) pending events per
// round on a full mesh, the large-n bottleneck flagged in ROADMAP.  The
// batched path stores the whole fan-out once: at broadcast time the
// simulator draws every per-link delay (in neighbor order, from the same
// DelayModel/RNG stream as the unbatched path — this is what keeps
// full-mesh executions bit-identical), sorts the deliveries, and enqueues
// ONE pooled event keyed by the earliest one.  Each pop delivers the next
// recipient and either re-arms the same event for the following recipient
// or, when that recipient's key still precedes everything else in the
// scheduler, delivers it directly without a queue round-trip.  Queue
// pressure per round drops from O(n^2) pending entries to O(n).
//
// Sequence numbers are reserved in a block at broadcast time, one per
// recipient in neighbor order — exactly the numbers the unbatched path
// would have assigned — so the global (time, tier, seq) order, including
// exact-tie behaviour under extremal delay models, is unchanged.

#include <cstdint>
#include <vector>

#include "engine/event_pool.h"
#include "sim/message.h"

namespace wlsync::net {

/// One recipient of an in-flight broadcast.
struct FanoutDelivery {
  double time = 0.0;       ///< real delivery time (send time + link delay)
  std::uint64_t seq = 0;   ///< the seq the unbatched path would have used
  std::int32_t to = -1;
};

/// An in-flight broadcast: the shared payload plus its remaining
/// deliveries, sorted ascending by (time, seq).  Slab-pooled and recycled;
/// the vector keeps its capacity across reuse, so steady-state broadcasts
/// allocate nothing.
struct FanoutRecord {
  sim::Message msg;
  std::vector<FanoutDelivery> deliveries;
  std::uint32_t cursor = 0;  ///< index of the next undelivered recipient

  [[nodiscard]] bool done() const noexcept {
    return cursor >= deliveries.size();
  }
  [[nodiscard]] const FanoutDelivery& next() const noexcept {
    return deliveries[cursor];
  }
};

using FanoutPool = engine::SlabPool<FanoutRecord>;
using FanoutHandle = FanoutPool::Handle;

}  // namespace wlsync::net
