#include "net/dynamics.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace wlsync::net {

const char* dynamics_name(DynamicsKind kind) noexcept {
  switch (kind) {
    case DynamicsKind::kLinkFail: return "link_fail";
    case DynamicsKind::kLinkHeal: return "link_heal";
    case DynamicsKind::kSplit: return "split";
    case DynamicsKind::kMerge: return "merge";
    case DynamicsKind::kLeave: return "leave";
    case DynamicsKind::kRejoin: return "rejoin";
  }
  return "?";
}

DynamicsSpec& DynamicsSpec::fail_link(double at, std::int32_t a,
                                      std::int32_t b) {
  events.push_back({at, DynamicsKind::kLinkFail, a, b, {}});
  return *this;
}

DynamicsSpec& DynamicsSpec::heal_link(double at, std::int32_t a,
                                      std::int32_t b) {
  events.push_back({at, DynamicsKind::kLinkHeal, a, b, {}});
  return *this;
}

DynamicsSpec& DynamicsSpec::split(double at, std::vector<std::int32_t> group) {
  events.push_back({at, DynamicsKind::kSplit, -1, -1, std::move(group)});
  return *this;
}

DynamicsSpec& DynamicsSpec::merge(double at, std::vector<std::int32_t> group) {
  events.push_back({at, DynamicsKind::kMerge, -1, -1, std::move(group)});
  return *this;
}

DynamicsSpec& DynamicsSpec::leave(double at, std::int32_t pid) {
  events.push_back({at, DynamicsKind::kLeave, pid, -1, {}});
  return *this;
}

DynamicsSpec& DynamicsSpec::rejoin(double at, std::int32_t pid) {
  events.push_back({at, DynamicsKind::kRejoin, pid, -1, {}});
  return *this;
}

DynamicsSpec& DynamicsSpec::churn_wave(double t0, std::int32_t first,
                                       std::int32_t count, double downtime,
                                       double stagger) {
  for (std::int32_t i = 0; i < count; ++i) {
    const double off = t0 + static_cast<double>(i) * stagger;
    leave(off, first + i);
    rejoin(off + downtime, first + i);
  }
  return *this;
}

bool DynamicsSpec::topology_changing() const noexcept {
  for (const DynamicsEvent& e : events) {
    switch (e.kind) {
      case DynamicsKind::kLinkFail:
      case DynamicsKind::kLinkHeal:
      case DynamicsKind::kSplit:
      case DynamicsKind::kMerge:
        return true;
      default:
        break;
    }
  }
  return false;
}

bool DynamicsSpec::has_churn() const noexcept {
  for (const DynamicsEvent& e : events) {
    if (e.kind == DynamicsKind::kLeave || e.kind == DynamicsKind::kRejoin) {
      return true;
    }
  }
  return false;
}

void DynamicsSpec::validate(std::int32_t n, double min_down) const {
  const auto check_id = [n](std::int32_t id, const char* what) {
    if (id < 0 || id >= n) {
      throw std::invalid_argument(std::string("DynamicsSpec: ") + what +
                                  " id out of range");
    }
  };
  for (const DynamicsEvent& e : events) {
    if (!(e.at >= 0.0)) {
      throw std::invalid_argument("DynamicsSpec: event time must be >= 0");
    }
    switch (e.kind) {
      case DynamicsKind::kLinkFail:
      case DynamicsKind::kLinkHeal:
        check_id(e.a, "link");
        check_id(e.b, "link");
        if (e.a == e.b) {
          throw std::invalid_argument(
              "DynamicsSpec: link event needs two distinct endpoints");
        }
        break;
      case DynamicsKind::kSplit:
      case DynamicsKind::kMerge: {
        if (e.group.empty() ||
            e.group.size() >= static_cast<std::size_t>(n)) {
          throw std::invalid_argument(
              "DynamicsSpec: split/merge group must be a nonempty proper "
              "subset");
        }
        std::unordered_set<std::int32_t> seen;
        for (const std::int32_t id : e.group) {
          check_id(id, "group");
          if (!seen.insert(id).second) {
            throw std::invalid_argument(
                "DynamicsSpec: split/merge group has duplicate ids");
          }
        }
        break;
      }
      case DynamicsKind::kLeave:
      case DynamicsKind::kRejoin:
        check_id(e.a, "churn");
        break;
    }
  }
  // Churn alternation: in time order every process's events must read
  // leave, rejoin, leave, ... with rejoin >= leave + min_down.
  std::map<std::int32_t, std::vector<std::pair<double, DynamicsKind>>> per;
  for (const DynamicsEvent& e : events) {
    if (e.kind == DynamicsKind::kLeave || e.kind == DynamicsKind::kRejoin) {
      per[e.a].push_back({e.at, e.kind});
    }
  }
  for (auto& [pid, seq] : per) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    double last_leave = 0.0;
    bool down = false;
    for (const auto& [at, kind] : seq) {
      if (kind == DynamicsKind::kLeave) {
        if (down) {
          throw std::invalid_argument(
              "DynamicsSpec: process " + std::to_string(pid) +
              " leaves twice without rejoining");
        }
        down = true;
        last_leave = at;
      } else {
        if (!down) {
          throw std::invalid_argument(
              "DynamicsSpec: process " + std::to_string(pid) +
              " rejoins without having left");
        }
        if (at < last_leave + min_down) {
          throw std::invalid_argument(
              "DynamicsSpec: process " + std::to_string(pid) +
              " rejoins before its dead window elapsed (need >= " +
              std::to_string(min_down) + " down)");
        }
        down = false;
      }
    }
  }
}

std::map<std::int32_t, std::vector<ChurnInterval>> churn_intervals(
    const DynamicsSpec& spec) {
  std::map<std::int32_t, std::vector<std::pair<double, DynamicsKind>>> per;
  for (const DynamicsEvent& e : spec.events) {
    if (e.kind == DynamicsKind::kLeave || e.kind == DynamicsKind::kRejoin) {
      per[e.a].push_back({e.at, e.kind});
    }
  }
  std::map<std::int32_t, std::vector<ChurnInterval>> out;
  for (auto& [pid, seq] : per) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    std::vector<ChurnInterval>& windows = out[pid];
    for (const auto& [at, kind] : seq) {
      if (kind == DynamicsKind::kLeave) {
        windows.push_back({at, kNeverRejoins});
      } else if (!windows.empty()) {
        windows.back().rejoin = at;
      }
    }
  }
  return out;
}

}  // namespace wlsync::net
