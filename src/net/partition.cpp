#include "net/partition.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace wlsync::net {
namespace {

constexpr std::int32_t kUnassigned = -1;
constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();

/// BFS hop distance treated as "infinitely far" for unreachable nodes, so
/// farthest-point sampling lands one seed in each component before it starts
/// subdividing any single one.
[[nodiscard]] std::int32_t hop(const std::vector<std::int32_t>& row,
                               std::int32_t v) {
  const std::int32_t d = row[static_cast<std::size_t>(v)];
  return d < 0 ? kInf : d;
}

/// Farthest-point seed placement.  The first seed is the rng's one draw —
/// a structural cut candidate when the topology has any (articulation
/// points / bridge endpoints), otherwise any node.  Each later seed
/// maximizes hop distance to the chosen set, preferring structural
/// candidates at equal distance, then the lowest id.
[[nodiscard]] std::vector<std::int32_t> pick_seeds(const Topology& topo,
                                                   std::int32_t k,
                                                   std::uint64_t seed) {
  const std::int32_t n = topo.n();
  const Topology::CutStructure cuts = topo.cut_structure();
  std::vector<char> structural(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> candidates = cuts.articulation;
  candidates.insert(candidates.end(), cuts.bridge_ends.begin(),
                    cuts.bridge_ends.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const std::int32_t v : candidates) {
    structural[static_cast<std::size_t>(v)] = 1;
  }

  util::Rng rng(seed);
  std::vector<std::int32_t> seeds;
  seeds.reserve(static_cast<std::size_t>(k));
  seeds.push_back(candidates.empty()
                      ? static_cast<std::int32_t>(
                            rng.below(static_cast<std::uint64_t>(n)))
                      : candidates[rng.below(candidates.size())]);

  // min hop distance from each node to the seed set, updated incrementally.
  std::vector<std::int32_t> nearest(static_cast<std::size_t>(n));
  {
    const auto& row = topo.distances_from(seeds.back());
    for (std::int32_t v = 0; v < n; ++v) nearest[v] = hop(row, v);
  }
  while (static_cast<std::int32_t>(seeds.size()) < k) {
    std::int32_t best = -1;
    std::int32_t best_d = -1;
    for (std::int32_t v = 0; v < n; ++v) {
      if (nearest[v] == 0) continue;  // already a seed
      const std::int32_t d = nearest[v];
      const bool wins =
          d > best_d ||
          (d == best_d && best >= 0 &&
           structural[static_cast<std::size_t>(v)] >
               structural[static_cast<std::size_t>(best)]);
      if (wins) {
        best = v;
        best_d = d;
      }
    }
    if (best < 0) {
      // Fewer distinct positions than shards requested (tiny graphs): pad
      // with the lowest unused ids so every shard still owns one node.
      for (std::int32_t v = 0; v < n && static_cast<std::int32_t>(
                                            seeds.size()) < k;
           ++v) {
        if (std::find(seeds.begin(), seeds.end(), v) == seeds.end()) {
          seeds.push_back(v);
        }
      }
      break;
    }
    seeds.push_back(best);
    const auto& row = topo.distances_from(best);
    for (std::int32_t v = 0; v < n; ++v) {
      nearest[v] = std::min(nearest[v], hop(row, v));
    }
  }
  return seeds;
}

/// Balanced multi-source BFS: the smallest shard with a live frontier claims
/// its next unassigned frontier node (ties: lowest shard id), so regions grow
/// in lockstep and each shard stays connected by construction.
void grow_regions(const Topology& topo, const std::vector<std::int32_t>& seeds,
                  std::vector<std::int32_t>& shard_of,
                  std::vector<std::int32_t>& sizes) {
  const std::int32_t k = static_cast<std::int32_t>(seeds.size());
  std::vector<std::deque<std::int32_t>> frontier(
      static_cast<std::size_t>(k));
  for (std::int32_t s = 0; s < k; ++s) {
    shard_of[static_cast<std::size_t>(seeds[s])] = s;
    sizes[static_cast<std::size_t>(s)] = 1;
    for (const std::int32_t w : topo.neighbors(seeds[s])) {
      if (w != seeds[s]) frontier[static_cast<std::size_t>(s)].push_back(w);
    }
  }
  for (;;) {
    std::int32_t s = -1;
    for (std::int32_t c = 0; c < k; ++c) {
      if (frontier[static_cast<std::size_t>(c)].empty()) continue;
      if (s < 0 || sizes[static_cast<std::size_t>(c)] <
                       sizes[static_cast<std::size_t>(s)]) {
        s = c;
      }
    }
    if (s < 0) break;
    auto& queue = frontier[static_cast<std::size_t>(s)];
    bool claimed = false;
    while (!queue.empty() && !claimed) {
      const std::int32_t v = queue.front();
      queue.pop_front();
      if (shard_of[static_cast<std::size_t>(v)] != kUnassigned) continue;
      shard_of[static_cast<std::size_t>(v)] = s;
      ++sizes[static_cast<std::size_t>(s)];
      for (const std::int32_t w : topo.neighbors(v)) {
        if (w != v && shard_of[static_cast<std::size_t>(w)] == kUnassigned) {
          queue.push_back(w);
        }
      }
      claimed = true;
    }
  }
}

/// Disconnected input only: each stray component (unreachable from every
/// seed) is attached wholesale to the currently smallest shard.
void absorb_stray_components(const Topology& topo,
                             std::vector<std::int32_t>& shard_of,
                             std::vector<std::int32_t>& sizes) {
  const std::int32_t n = static_cast<std::int32_t>(shard_of.size());
  std::deque<std::int32_t> queue;
  for (std::int32_t v = 0; v < n; ++v) {
    if (shard_of[static_cast<std::size_t>(v)] != kUnassigned) continue;
    const auto smallest = std::min_element(sizes.begin(), sizes.end());
    const std::int32_t s =
        static_cast<std::int32_t>(smallest - sizes.begin());
    queue.clear();
    queue.push_back(v);
    shard_of[static_cast<std::size_t>(v)] = s;
    ++*smallest;
    while (!queue.empty()) {
      const std::int32_t u = queue.front();
      queue.pop_front();
      for (const std::int32_t w : topo.neighbors(u)) {
        if (w != u && shard_of[static_cast<std::size_t>(w)] == kUnassigned) {
          shard_of[static_cast<std::size_t>(w)] = s;
          ++sizes[static_cast<std::size_t>(s)];
          queue.push_back(w);
        }
      }
    }
  }
}

/// True when every shard's induced subgraph is connected.  Used to validate
/// (and possibly roll back) the refinement pass; growth-phase assignments
/// are connected by construction.
[[nodiscard]] bool shards_connected(const Topology& topo,
                                    const std::vector<std::int32_t>& shard_of,
                                    std::int32_t k) {
  const std::int32_t n = static_cast<std::int32_t>(shard_of.size());
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> reached(static_cast<std::size_t>(k), 0);
  std::vector<std::int32_t> total(static_cast<std::size_t>(k), 0);
  for (std::int32_t v = 0; v < n; ++v) {
    ++total[static_cast<std::size_t>(shard_of[static_cast<std::size_t>(v)])];
  }
  std::deque<std::int32_t> queue;
  for (std::int32_t v = 0; v < n; ++v) {
    const std::int32_t s = shard_of[static_cast<std::size_t>(v)];
    if (seen[static_cast<std::size_t>(v)] ||
        reached[static_cast<std::size_t>(s)] != 0) {
      continue;  // not the first visit into this shard
    }
    queue.clear();
    queue.push_back(v);
    seen[static_cast<std::size_t>(v)] = 1;
    std::int32_t count = 0;
    while (!queue.empty()) {
      const std::int32_t u = queue.front();
      queue.pop_front();
      ++count;
      for (const std::int32_t w : topo.neighbors(u)) {
        if (w == u || seen[static_cast<std::size_t>(w)] ||
            shard_of[static_cast<std::size_t>(w)] != s) {
          continue;
        }
        seen[static_cast<std::size_t>(w)] = 1;
        queue.push_back(w);
      }
    }
    reached[static_cast<std::size_t>(s)] = count;
  }
  for (std::int32_t s = 0; s < k; ++s) {
    if (reached[static_cast<std::size_t>(s)] !=
        total[static_cast<std::size_t>(s)]) {
      return false;
    }
  }
  return true;
}

/// Kernighan-Lin-flavored boundary refinement: move a node to the adjacent
/// shard holding strictly more of its neighbors, when that also respects the
/// balance cap.  Pure cut reduction, deterministic (id order), few passes.
void refine(const Topology& topo, std::vector<std::int32_t>& shard_of,
            std::vector<std::int32_t>& sizes, std::int32_t k) {
  // On a complete graph cut and balance are directly opposed (the cut
  // sum_{s<t} |s||t| shrinks exactly as the shards unbalance), so every
  // "improving" move here would drain the growth phase's perfectly
  // balanced assignment toward one big shard.  No cut is better than any
  // other at equal sizes — keep the balanced one.
  if (topo.is_full_mesh()) return;
  const std::int32_t n = static_cast<std::int32_t>(shard_of.size());
  const std::int32_t cap =
      (n + k - 1) / k + std::max<std::int32_t>(2, n / (8 * k));
  std::vector<std::int32_t> links(static_cast<std::size_t>(k));
  for (int pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (std::int32_t v = 0; v < n; ++v) {
      const std::int32_t from = shard_of[static_cast<std::size_t>(v)];
      if (sizes[static_cast<std::size_t>(from)] <= 1) continue;
      std::fill(links.begin(), links.end(), 0);
      for (const std::int32_t w : topo.neighbors(v)) {
        if (w != v) {
          ++links[static_cast<std::size_t>(
              shard_of[static_cast<std::size_t>(w)])];
        }
      }
      std::int32_t to = from;
      std::int32_t best_links = links[static_cast<std::size_t>(from)];
      for (std::int32_t s = 0; s < k; ++s) {
        if (s == from || sizes[static_cast<std::size_t>(s)] >= cap) continue;
        if (links[static_cast<std::size_t>(s)] > best_links) {
          to = s;
          best_links = links[static_cast<std::size_t>(s)];
        }
      }
      if (to != from) {
        shard_of[static_cast<std::size_t>(v)] = to;
        --sizes[static_cast<std::size_t>(from)];
        ++sizes[static_cast<std::size_t>(to)];
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

Partition partition_topology(const Topology& topo, std::int32_t k,
                             std::uint64_t seed) {
  const std::int32_t n = topo.n();
  if (n <= 0) {
    throw std::invalid_argument("partition_topology: empty topology");
  }
  Partition part;
  part.k = std::clamp<std::int32_t>(k, 1, n);
  part.shard_of.assign(static_cast<std::size_t>(n), kUnassigned);
  part.shard_sizes.assign(static_cast<std::size_t>(part.k), 0);

  part.boundary.assign(static_cast<std::size_t>(n), 0);
  part.shard_cuts.assign(static_cast<std::size_t>(part.k), {});

  if (part.k == 1) {
    std::fill(part.shard_of.begin(), part.shard_of.end(), 0);
    part.shard_sizes[0] = n;
    return part;
  }

  const std::vector<std::int32_t> seeds = pick_seeds(topo, part.k, seed);
  grow_regions(topo, seeds, part.shard_of, part.shard_sizes);
  absorb_stray_components(topo, part.shard_of, part.shard_sizes);

  // Refine on a copy; adopt only if no shard got disconnected.
  std::vector<std::int32_t> refined = part.shard_of;
  std::vector<std::int32_t> refined_sizes = part.shard_sizes;
  refine(topo, refined, refined_sizes, part.k);
  if (refined != part.shard_of &&
      shards_connected(topo, refined, part.k)) {
    part.shard_of = std::move(refined);
    part.shard_sizes = std::move(refined_sizes);
  }

  for (std::int32_t u = 0; u < n; ++u) {
    const std::int32_t su = part.shard_of[static_cast<std::size_t>(u)];
    for (const std::int32_t v : topo.neighbors(u)) {
      if (v <= u) continue;  // one direction per undirected edge, no loops
      const std::int32_t sv = part.shard_of[static_cast<std::size_t>(v)];
      if (su != sv) {
        const auto e = static_cast<std::int32_t>(part.cut_edges.size());
        part.cut_edges.emplace_back(u, v);
        part.shard_cuts[static_cast<std::size_t>(su)].push_back(e);
        part.shard_cuts[static_cast<std::size_t>(sv)].push_back(e);
        part.boundary[static_cast<std::size_t>(u)] = 1;
        part.boundary[static_cast<std::size_t>(v)] = 1;
      } else {
        ++part.internal_edges;
      }
    }
  }
  return part;
}

}  // namespace wlsync::net
