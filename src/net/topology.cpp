#include "net/topology.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/rng.h"

namespace wlsync::net {

namespace {

Topology from_sets(std::vector<std::set<std::int32_t>> adjacency);

void require_positive_n(std::int32_t n) {
  if (n < 1) throw std::invalid_argument("Topology: need n >= 1");
}

/// Shared finishing step: self-loops, symmetry, CSR packing (std::set keeps
/// the lists sorted and unique for free).
Topology from_sets(std::vector<std::set<std::int32_t>> adjacency) {
  const auto n = static_cast<std::int32_t>(adjacency.size());
  for (std::int32_t p = 0; p < n; ++p) {
    adjacency[static_cast<std::size_t>(p)].insert(p);
    for (std::int32_t q : adjacency[static_cast<std::size_t>(p)]) {
      if (q < 0 || q >= n) {
        throw std::invalid_argument("Topology: neighbor id out of range");
      }
      adjacency[static_cast<std::size_t>(q)].insert(p);
    }
  }
  return Topology::from_adjacency([&] {
    std::vector<std::vector<std::int32_t>> lists(adjacency.size());
    for (std::size_t p = 0; p < adjacency.size(); ++p) {
      lists[p].assign(adjacency[p].begin(), adjacency[p].end());
    }
    return lists;
  }());
}

}  // namespace

Topology Topology::full_mesh(std::int32_t n) {
  require_positive_n(n);
  Topology topo;
  topo.offsets_.resize(static_cast<std::size_t>(n) + 1);
  topo.targets_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (std::int32_t p = 0; p <= n; ++p) {
    topo.offsets_[static_cast<std::size_t>(p)] =
        static_cast<std::int32_t>(p * n);
  }
  for (std::int32_t p = 0; p < n; ++p) {
    for (std::int32_t q = 0; q < n; ++q) {
      topo.targets_[static_cast<std::size_t>(p) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(q)] = q;
    }
  }
  return topo;
}

Topology Topology::ring_of_cliques(std::int32_t n, std::int32_t clique_size) {
  require_positive_n(n);
  if (clique_size < 1) {
    throw std::invalid_argument("Topology: need clique_size >= 1");
  }
  std::vector<std::set<std::int32_t>> adjacency(static_cast<std::size_t>(n));
  const std::int32_t cliques = (n + clique_size - 1) / clique_size;
  for (std::int32_t c = 0; c < cliques; ++c) {
    const std::int32_t lo = c * clique_size;
    const std::int32_t hi = std::min(n, lo + clique_size);
    for (std::int32_t p = lo; p < hi; ++p) {
      for (std::int32_t q = lo; q < hi; ++q) {
        adjacency[static_cast<std::size_t>(p)].insert(q);
      }
    }
    if (cliques > 1) {
      // Bridge: last node of this clique to the first node of the next.
      const std::int32_t next_lo = ((c + 1) % cliques) * clique_size;
      adjacency[static_cast<std::size_t>(hi - 1)].insert(next_lo);
    }
  }
  return from_sets(std::move(adjacency));
}

Topology Topology::k_regular(std::int32_t n, std::int32_t degree,
                             std::uint64_t seed) {
  require_positive_n(n);
  if (degree < 2) throw std::invalid_argument("Topology: need degree >= 2");
  std::vector<std::set<std::int32_t>> adjacency(static_cast<std::size_t>(n));
  std::set<std::int32_t> strides{1};  // the connectivity-guaranteeing ring
  util::Rng rng(seed);
  const std::int32_t wanted = std::max(1, degree / 2);
  // n/2 caps the number of distinct strides; stop when the id space is used up.
  for (int attempts = 0;
       static_cast<std::int32_t>(strides.size()) < wanted &&
       attempts < 64 * wanted && n > 4;
       ++attempts) {
    strides.insert(2 + static_cast<std::int32_t>(rng.below(
                           static_cast<std::uint64_t>(n / 2 - 1 > 0 ? n / 2 - 1
                                                                    : 1))));
  }
  for (std::int32_t p = 0; p < n; ++p) {
    for (std::int32_t s : strides) {
      adjacency[static_cast<std::size_t>(p)].insert((p + s) % n);
      adjacency[static_cast<std::size_t>(p)].insert(((p - s) % n + n) % n);
    }
  }
  return from_sets(std::move(adjacency));
}

Topology Topology::from_adjacency(
    const std::vector<std::vector<std::int32_t>>& lists) {
  const auto n = static_cast<std::int32_t>(lists.size());
  require_positive_n(n);
  // Normalize through sets unless the input already satisfies the
  // invariants; from_sets calls back into this function with clean lists.
  bool clean = true;
  for (std::int32_t p = 0; p < n && clean; ++p) {
    const auto& list = lists[static_cast<std::size_t>(p)];
    clean = std::is_sorted(list.begin(), list.end()) &&
            std::adjacent_find(list.begin(), list.end()) == list.end() &&
            std::binary_search(list.begin(), list.end(), p);
    for (std::int32_t q : list) {
      if (q < 0 || q >= n) {
        throw std::invalid_argument("Topology: neighbor id out of range");
      }
      if (clean) {
        const auto& back = lists[static_cast<std::size_t>(q)];
        clean = std::binary_search(back.begin(), back.end(), p);
      }
    }
  }
  if (!clean) {
    std::vector<std::set<std::int32_t>> adjacency(lists.size());
    for (std::size_t p = 0; p < lists.size(); ++p) {
      adjacency[p].insert(lists[p].begin(), lists[p].end());
    }
    return from_sets(std::move(adjacency));
  }

  Topology topo;
  topo.offsets_.reserve(static_cast<std::size_t>(n) + 1);
  topo.offsets_.push_back(0);
  for (const auto& list : lists) {
    topo.targets_.insert(topo.targets_.end(), list.begin(), list.end());
    topo.offsets_.push_back(static_cast<std::int32_t>(topo.targets_.size()));
  }
  return topo;
}

void Topology::ensure_distance_row(std::int32_t p) const {
  if (dist_cache_.empty()) {
    dist_cache_.resize(static_cast<std::size_t>(n()));
  }
  std::vector<std::int32_t>& row = dist_cache_[static_cast<std::size_t>(p)];
  if (!row.empty()) return;
  row.assign(static_cast<std::size_t>(n()), -1);
  row[static_cast<std::size_t>(p)] = 0;
  std::vector<std::int32_t> frontier{p};
  std::vector<std::int32_t> next;
  for (std::int32_t d = 1; !frontier.empty(); ++d) {
    next.clear();
    for (std::int32_t u : frontier) {
      for (std::int32_t v : neighbors(u)) {
        if (row[static_cast<std::size_t>(v)] < 0) {
          row[static_cast<std::size_t>(v)] = d;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
}

const std::vector<std::int32_t>& Topology::distances_from(std::int32_t p) const {
  if (p < 0 || p >= n()) {
    throw std::invalid_argument("Topology::distances_from: id out of range");
  }
  ensure_distance_row(p);
  return dist_cache_[static_cast<std::size_t>(p)];
}

std::int32_t Topology::eccentricity(std::int32_t p) const {
  std::int32_t ecc = 0;
  for (std::int32_t d : distances_from(p)) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t Topology::diameter() const {
  std::int32_t diam = 0;
  for (std::int32_t p = 0; p < n(); ++p) {
    const std::int32_t ecc = eccentricity(p);
    if (ecc < 0) return -1;
    diam = std::max(diam, ecc);
  }
  return diam;
}

Topology::CutStructure Topology::cut_structure() const {
  // Iterative Tarjan over the explicit DFS stack (graphs can be path-like,
  // so recursion depth could reach n).  Self-loops are skipped; the lists
  // are duplicate-free, so "skip the parent once by id" is a faithful
  // parent-edge test.
  const std::int32_t count = n();
  std::vector<std::int32_t> disc(static_cast<std::size_t>(count), -1);
  std::vector<std::int32_t> low(static_cast<std::size_t>(count), 0);
  std::vector<std::int32_t> parent(static_cast<std::size_t>(count), -1);
  std::vector<char> is_cut(static_cast<std::size_t>(count), 0);
  std::set<std::int32_t> bridge_ends;
  std::int32_t timer = 0;

  struct Frame {
    std::int32_t v;
    std::size_t next;  ///< index into neighbors(v) to resume from
  };
  std::vector<Frame> stack;
  for (std::int32_t root = 0; root < count; ++root) {
    if (disc[static_cast<std::size_t>(root)] >= 0) continue;
    std::int32_t root_children = 0;
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = timer++;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::int32_t v = frame.v;
      const auto peers = neighbors(v);
      if (frame.next < peers.size()) {
        const std::int32_t w = peers[frame.next++];
        if (w == v || w == parent[static_cast<std::size_t>(v)]) continue;
        if (disc[static_cast<std::size_t>(w)] < 0) {
          parent[static_cast<std::size_t>(w)] = v;
          if (v == root) ++root_children;
          disc[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] = timer++;
          stack.push_back({w, 0});
        } else {
          low[static_cast<std::size_t>(v)] =
              std::min(low[static_cast<std::size_t>(v)], disc[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      stack.pop_back();
      const std::int32_t p = parent[static_cast<std::size_t>(v)];
      if (p < 0) continue;
      low[static_cast<std::size_t>(p)] =
          std::min(low[static_cast<std::size_t>(p)], low[static_cast<std::size_t>(v)]);
      if (low[static_cast<std::size_t>(v)] > disc[static_cast<std::size_t>(p)]) {
        bridge_ends.insert(p);
        bridge_ends.insert(v);
      }
      if (p != root && low[static_cast<std::size_t>(v)] >= disc[static_cast<std::size_t>(p)]) {
        is_cut[static_cast<std::size_t>(p)] = 1;
      }
    }
    if (root_children >= 2) is_cut[static_cast<std::size_t>(root)] = 1;
  }

  CutStructure result;
  for (std::int32_t v = 0; v < count; ++v) {
    if (is_cut[static_cast<std::size_t>(v)]) result.articulation.push_back(v);
  }
  result.bridge_ends.assign(bridge_ends.begin(), bridge_ends.end());
  return result;
}

std::vector<std::int32_t> Topology::articulation_points() const {
  return cut_structure().articulation;
}

std::vector<std::int32_t> Topology::bridge_endpoints() const {
  return cut_structure().bridge_ends;
}

std::vector<std::int32_t> Topology::closed_neighborhood(
    std::span<const std::int32_t> seeds) const {
  std::vector<char> in(static_cast<std::size_t>(n()), 0);
  for (std::int32_t s : seeds) {
    if (s < 0 || s >= n()) {
      throw std::invalid_argument(
          "Topology::closed_neighborhood: seed id out of range");
    }
    for (std::int32_t q : neighbors(s)) in[static_cast<std::size_t>(q)] = 1;
  }
  std::vector<std::int32_t> region;
  for (std::int32_t p = 0; p < n(); ++p) {
    if (in[static_cast<std::size_t>(p)]) region.push_back(p);
  }
  return region;
}

std::vector<std::int32_t> Topology::degree_ranking() const {
  std::vector<std::int32_t> ids(static_cast<std::size_t>(n()));
  for (std::int32_t p = 0; p < n(); ++p) ids[static_cast<std::size_t>(p)] = p;
  std::stable_sort(ids.begin(), ids.end(), [&](std::int32_t a, std::int32_t b) {
    return degree(a) > degree(b);
  });
  return ids;
}

bool Topology::connected() const {
  const std::int32_t count = n();
  if (count <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(count), 0);
  std::vector<std::int32_t> stack{0};
  seen[0] = 1;
  std::int32_t reached = 1;
  while (!stack.empty()) {
    const std::int32_t p = stack.back();
    stack.pop_back();
    for (std::int32_t q : neighbors(p)) {
      if (!seen[static_cast<std::size_t>(q)]) {
        seen[static_cast<std::size_t>(q)] = 1;
        ++reached;
        stack.push_back(q);
      }
    }
  }
  return reached == count;
}

const char* topology_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kFullMesh: return "full-mesh";
    case TopologyKind::kRingOfCliques: return "ring-of-cliques";
    case TopologyKind::kKRegular: return "k-regular";
    case TopologyKind::kCustom: return "custom";
  }
  return "?";
}

Topology build_topology(const TopologySpec& spec, std::int32_t n) {
  Topology topo;
  switch (spec.kind) {
    case TopologyKind::kFullMesh:
      topo = Topology::full_mesh(n);
      break;
    case TopologyKind::kRingOfCliques:
      topo = Topology::ring_of_cliques(n, spec.clique_size);
      break;
    case TopologyKind::kKRegular:
      topo = Topology::k_regular(n, spec.degree, spec.seed);
      break;
    case TopologyKind::kCustom:
      topo = Topology::from_adjacency(spec.custom);
      break;
  }
  if (topo.n() != n) {
    throw std::invalid_argument(
        "build_topology: adjacency size does not match process count");
  }
  if (!topo.connected()) {
    throw std::invalid_argument(
        "build_topology: exchange graph is disconnected");
  }
  return topo;
}

}  // namespace wlsync::net
