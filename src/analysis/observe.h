#pragma once
// Streaming in-run observation: the incremental counterpart of the
// post-hoc measurement grids.
//
// The post-hoc pipeline (analysis/measure.h, skew.h, gradient.h) re-walks
// every clock's segment list and CORR log over dense sample grids after
// the run ends, which requires retaining the complete O(rounds * n)
// history in memory and makes the measurement pass the dominant large-n
// cost (ROADMAP).  The StreamingObserver inverts this: it attaches to the
// simulator through the sim::Observer hook and evaluates the *same* sample
// grids incrementally, event-driven, while the run advances — each sample
// instant t is drained as soon as simulated time passes it, at which point
// every CORR entry and clock segment governing t is final.  Values are
// bit-identical to the post-hoc pipeline on the same windows (the same
// Walker cursors, the same fold orders; pinned by tests/observer_test.cpp
// at 1e-12), so streaming and post-hoc results are interchangeable.
//
// Three sample streams share the run:
//   * the skew/gradient grid — opens at the steady-state anchor (the last
//     honest begin of round `anchor_round`) and steps by skew_dt, exactly
//     the window Experiment::run measures gamma over;
//   * the validity grid — opens at validity_t0 (tmax0 + window) and steps
//     by validity_dt, the check_validity window;
//   * round boundaries — the skew at each round's last honest begin
//     (the skew_at_round series), evaluated at the annotation instants.
//
// Bounded-memory mode (ObserveSpec::truncate): once a round's samples are
// drained, the history behind the observation frontier can never be read
// again, so the observer truncates every CORR log and clock segment list
// behind it (Simulator::truncate_history_before).  Peak retained history
// becomes O(history per round) instead of O(rounds * n), which is what
// makes 10-100x longer windows at n = 512 affordable.  All accumulators
// are preallocated against the run horizon, so draining allocates nothing
// (gated by bench_micro --smoke).

#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/gradient.h"
#include "analysis/skew.h"
#include "core/params.h"
#include "net/topology.h"
#include "sim/observer.h"
#include "sim/simulator.h"

namespace wlsync::analysis {

/// What to observe; built by Experiment::run from the RunSpec, usable
/// directly for hand-driven simulations.
struct ObserveSpec {
  std::vector<std::int32_t> ids;  ///< measured ids (the fold order)
  core::Params params;            ///< for the validity envelope folds
  double tmin0 = 0.0;
  double tmax0 = 0.0;
  /// Run horizon (upper bound on t_end); sizes the preallocated sample
  /// storage so the drain hot path never allocates.
  double horizon = 0.0;
  /// The skew/gradient window opens at the last measured begin of this
  /// round (the steady-state anchor).  If the round never completes the
  /// window collapses to the single endpoint sample at t_end.
  std::int32_t anchor_round = 0;
  /// When >= 0, the skew/gradient window opens unconditionally at this
  /// real time instead of waiting for the anchor round — for harnesses
  /// whose measurement window is an explicit instant rather than a round
  /// boundary (run_reintegration opens at join_time + 2P).  The grid then
  /// samples skew_t0, skew_t0 + skew_dt, ... exactly like the post-hoc
  /// skew_series on [skew_t0, t_end].  A skew_t0 past t_end degenerates to
  /// the endpoint sample, matching the post-hoc skew_at fallback.
  double skew_t0 = -1.0;
  /// Configured round count (presizes the skew_at_round stream).
  std::int32_t max_rounds = 0;
  double skew_dt = 0.0;      ///< skew/gradient grid step (P/25 post-hoc grid)
  double validity_dt = 0.0;  ///< validity grid step (P/10 post-hoc grid)
  double validity_t0 = 0.0;  ///< validity window start (tmax0 + window)
  /// Also bucket pairwise skew by hop distance (analysis/gradient.h).
  bool gradient = false;
  /// Exchange graph for the gradient buckets (non-owning; required and
  /// used only when `gradient`).  Its BFS cache is warmed at construction.
  const net::Topology* topology = nullptr;
  /// Bounded-memory mode: truncate clock/CORR history behind the
  /// observation frontier as the run progresses.
  bool truncate = false;
  /// Fixed-bucket histogram for the streaming skew p99 (kSkewHistBuckets
  /// equal-width buckets on [0, skew_hist_max), last bucket catches
  /// overflow).
  double skew_hist_max = 0.0;
};

/// Observation telemetry.  Deterministic for a fixed spec, but NOT part of
/// results_identical (like RunResult::wall_seconds): the history numbers
/// intentionally differ between retained and bounded runs of the same
/// physics.
struct ObserveStats {
  bool enabled = false;
  bool bounded = false;
  double t_steady = 0.0;  ///< where the skew/gradient window actually opened
  std::uint64_t samples = 0;       ///< grid instants evaluated
  std::uint64_t adjustments = 0;   ///< CORR appends observed
  std::uint64_t round_marks = 0;   ///< measured round-begin boundaries seen
  std::uint64_t nic_drops = 0;     ///< NIC overflow drops observed
  std::uint64_t truncations = 0;   ///< truncate_history_before calls
  std::uint64_t truncated_entries = 0;  ///< history entries discarded
  std::size_t peak_history_bytes = 0;   ///< high-water retained history
  std::size_t final_history_bytes = 0;  ///< retained history at finalize
  /// Streaming extras over the skew series (no post-hoc counterpart):
  double skew_mean = 0.0;  ///< mean of the per-sample global skew
  double skew_p99 = 0.0;   ///< histogram p99 (upper bucket edge)
};

/// Everything the observer measured, in the same shapes the post-hoc
/// pipeline produces.
struct StreamingSummary {
  SkewSeries skew;            ///< == skew_series on [t_steady, t_end]
  ValidityReport validity;    ///< == check_validity on the validity window
  GradientSummary gradient;   ///< == summarize_gradient(gradient_series(...))
  /// Skew at each round's last measured begin (== the skew_at_round loop);
  /// NaN for rounds with no begin observed.
  std::vector<double> skew_at_round;
  double final_skew = 0.0;    ///< == skew_at(t_end)
  ObserveStats stats;
};

class StreamingObserver final : public sim::Observer {
 public:
  static constexpr std::size_t kSkewHistBuckets = 128;

  /// Preallocates every accumulator (walkers, sample storage, gradient
  /// matrix, histogram) against spec.horizon; with `gradient` set, builds
  /// the distance-bucket axis (one O(m^2) pass, warms the BFS cache).
  /// The simulator must outlive the observer; attach with
  /// sim.set_observer(&observer).
  StreamingObserver(sim::Simulator& sim, ObserveSpec spec);

  // sim::Observer:
  double on_advance(double now) override;
  void on_adjustment(std::int32_t pid, double t, double old_target,
                     double new_target) override;
  void on_round_begin(std::int32_t pid, std::int32_t round, double t) override;
  void on_nic_drop(std::int32_t pid, double t) override;
  [[nodiscard]] double next_interest() const override {
    return skew_next_ < validity_next_ ? skew_next_ : validity_next_;
  }

  /// Drains every remaining sample through t_end (>= the last event time),
  /// samples the endpoint, and assembles the summary.  Call exactly once,
  /// after the run; detach the observer before driving the simulator
  /// further.
  [[nodiscard]] StreamingSummary finalize(double t_end);

  [[nodiscard]] const ObserveStats& stats() const noexcept { return stats_; }

  /// Live view of the round-boundary skew stream (NaN = round not observed
  /// yet).  Round r's entry flushes when the first begin of round r+1
  /// arrives — the scenario::AdversaryEnv step loop reads this mid-run to
  /// hand per-round observations to a policy without finalizing.
  [[nodiscard]] const std::vector<double>& round_skews() const noexcept {
    return round_skew_;
  }

 private:
  /// Evaluates all measured local times at `t` into locals_ via the grid
  /// walkers (non-decreasing t across calls).
  void sample_locals(double t);
  /// One skew/gradient grid instant (locals_ already sampled at t).
  void apply_skew_sample(double t);
  /// One validity grid instant (locals_ already sampled at t).
  void apply_validity_sample(double t);
  /// Drains all pending grid instants strictly before `limit` (or, with
  /// `closed`, validity instants <= limit — the closed-grid endpoint).
  void drain(double limit, bool closed);
  /// Evaluates the round-boundary skew for `round` at instant `t` via the
  /// round walkers and records it.
  void eval_round_skew(std::int32_t round, double t);
  /// Flushes the pending round (if any) and, in bounded mode, truncates
  /// history behind the observation frontier.
  void flush_round_and_truncate(double now);
  void note_history();

  sim::Simulator& sim_;
  ObserveSpec spec_;
  core::Derived derived_;

  // Grid walkers (skew/gradient + validity streams, merged monotone) and
  // round walkers (round-boundary stream) — separate cursor sets because
  // the two streams interleave arbitrarily in time.
  std::vector<clk::PhysicalClock::Walker> grid_clock_;
  std::vector<sim::CorrLog::Walker> grid_corr_;
  std::vector<clk::PhysicalClock::Walker> round_clock_;
  std::vector<sim::CorrLog::Walker> round_corr_;
  std::vector<double> locals_;  ///< per-id scratch for one instant

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  // Skew/gradient stream.
  bool skew_open_ = false;
  double t_steady_ = 0.0;
  double skew_next_ = kNever;
  std::int32_t anchor_seen_ = 0;  ///< measured begins of the anchor round
  std::vector<double> skew_times_;
  std::vector<double> skew_values_;
  double skew_max_ = 0.0;
  double skew_sum_ = 0.0;
  std::vector<std::uint64_t> skew_hist_;
  double hist_bucket_width_ = 0.0;

  // Gradient stream (rides the skew grid).
  GradientAxis axis_;
  std::size_t gradient_capacity_ = 0;  ///< per-bucket sample capacity
  /// buckets x capacity, bucket-major; column k holds sample k's
  /// per-bucket max |L_i - L_j|.
  std::vector<double> gradient_rows_;

  // Validity stream.
  double validity_next_ = kNever;
  double max_upper_ = 0.0;
  double max_lower_ = 0.0;
  double hi_slope_ = 0.0;
  double lo_slope_ = 0.0;

  // Round-boundary stream.
  std::vector<char> measured_;        ///< pid -> is measured
  std::vector<double> round_skew_;    ///< per round; NaN = not observed
  std::int32_t pending_round_ = -1;   ///< round accumulating begins
  double pending_instant_ = 0.0;      ///< latest begin time of that round
  double last_round_query_ = -kNever; ///< round-walker monotonicity guard

  ObserveStats stats_;
  bool finalized_ = false;
};

}  // namespace wlsync::analysis
