#include "analysis/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wlsync::analysis {

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void ParallelRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> ParallelRunner::run(
    const std::vector<RunSpec>& specs) const {
  std::vector<RunResult> results(specs.size());
  // Each task writes only its own slot, so the merge is by construction
  // deterministic: position i is trial i regardless of completion order.
  run_indexed(specs.size(),
              [&](std::size_t i) { results[i] = run_experiment(specs[i]); });
  return results;
}

std::vector<RunSpec> seed_sweep(const RunSpec& base, std::uint64_t first_seed,
                                std::int32_t count) {
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    specs.push_back(base);
    specs.back().seed = first_seed + static_cast<std::uint64_t>(i);
  }
  return specs;
}

std::vector<RunResult> run_experiments(const std::vector<RunSpec>& specs,
                                       int threads) {
  return ParallelRunner(threads).run(specs);
}

bool results_identical(const RunResult& a, const RunResult& b) {
  return a.honest == b.honest && a.gamma_bound == b.gamma_bound &&
         a.gamma_measured == b.gamma_measured && a.adj_bound == b.adj_bound &&
         a.max_abs_adj == b.max_abs_adj && a.begin_spread == b.begin_spread &&
         a.skew_at_round == b.skew_at_round &&
         a.validity.holds == b.validity.holds &&
         a.validity.max_upper_violation == b.validity.max_upper_violation &&
         a.validity.max_lower_violation == b.validity.max_lower_violation &&
         a.validity.measured_hi_slope == b.validity.measured_hi_slope &&
         a.validity.measured_lo_slope == b.validity.measured_lo_slope &&
         a.final_skew == b.final_skew && a.diverged == b.diverged &&
         a.messages == b.messages && a.nic_dropped == b.nic_dropped &&
         a.tmin0 == b.tmin0 && a.tmax0 == b.tmax0 && a.t_end == b.t_end &&
         a.completed_rounds == b.completed_rounds;
}

}  // namespace wlsync::analysis
