#include "analysis/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wlsync::analysis {

namespace {
thread_local bool t_in_runner_worker = false;
}

bool ParallelRunner::in_worker() noexcept { return t_in_runner_worker; }

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void ParallelRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Contiguous chunk per worker, drained front-to-back through an atomic
  // cursor; exhausted workers steal from the other chunks in ring order.
  // The cursor may overshoot `end` by one per visiting worker — bounded,
  // and claims beyond the chunk simply fall through to the next victim.
  struct Chunk {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  std::vector<Chunk> chunks(workers);
  const std::size_t base = count / workers;
  const std::size_t extra = count % workers;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    chunks[w].next.store(begin, std::memory_order_relaxed);
    begin += base + (w < extra ? 1 : 0);
    chunks[w].end = begin;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_one = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  auto drain = [&](Chunk& chunk) {
    for (;;) {
      const std::size_t i = chunk.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunk.end) return;
      run_one(i);
    }
  };
  auto worker = [&](std::size_t w) {
    t_in_runner_worker = true;  // pool threads die with the call: no reset
    drain(chunks[w]);
    for (std::size_t lap = 1; lap < workers; ++lap) {
      drain(chunks[(w + lap) % workers]);  // steal from the others
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> ParallelRunner::run(
    const std::vector<RunSpec>& specs) const {
  std::vector<RunResult> results(specs.size());
  // Each task writes only its own slot, so the merge is by construction
  // deterministic: position i is trial i regardless of completion order.
  run_indexed(specs.size(),
              [&](std::size_t i) { results[i] = run_experiment(specs[i]); });
  return results;
}

std::vector<RunResult> ParallelRunner::run_streaming(
    const std::vector<RunSpec>& specs,
    const std::function<void(std::size_t, const RunResult&)>& on_result)
    const {
  if (!on_result) return run(specs);
  std::vector<RunResult> results(specs.size());
  std::mutex stream_mutex;
  run_indexed(specs.size(), [&](std::size_t i) {
    results[i] = run_experiment(specs[i]);
    const std::lock_guard<std::mutex> lock(stream_mutex);
    on_result(i, results[i]);
  });
  return results;
}

double ParallelRunner::estimate_cost(const RunSpec& spec) {
  const double n = static_cast<double>(spec.params.n);
  double per_round;  // messages per round under the exchange graph
  switch (spec.topology.kind) {
    case net::TopologyKind::kKRegular:
      per_round = n * static_cast<double>(spec.topology.degree + 1);
      break;
    case net::TopologyKind::kRingOfCliques:
      per_round = n * static_cast<double>(spec.topology.clique_size + 2);
      break;
    default:  // full mesh / custom adjacency
      per_round = n * n;
      break;
  }
  double cost = per_round * static_cast<double>(std::max(spec.rounds, 1));
  if (spec.measure_gradient) {
    // The measurement pair scan is O(n^2) per sample, 25 samples/round
    // over roughly half the run.
    cost += n * n * 12.5 * static_cast<double>(std::max(spec.rounds, 1));
  }
  return cost + 1.0;
}

std::vector<RunResult> ParallelRunner::run_adaptive(
    const std::vector<RunSpec>& specs,
    const std::function<void(std::size_t, const RunResult&)>& on_result)
    const {
  const std::size_t count = specs.size();
  std::vector<RunResult> results(count);
  if (count == 0) return results;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = run_experiment(specs[i]);
      if (on_result) on_result(i, results[i]);
    }
    return results;
  }

  // Static priors and the online cost model.  Trials are keyed by their
  // dominant cost axis (n): once a cell has completed trials, its measured
  // mean wall time replaces the prior for every remaining trial of that n.
  std::vector<double> prior(count);
  double prior_total = 0.0;
  std::vector<std::size_t> cell_of(count);
  std::vector<std::int32_t> cell_n;
  for (std::size_t i = 0; i < count; ++i) {
    prior[i] = estimate_cost(specs[i]);
    prior_total += prior[i];
    const std::int32_t n = specs[i].params.n;
    std::size_t c = 0;
    while (c < cell_n.size() && cell_n[c] != n) ++c;
    if (c == cell_n.size()) cell_n.push_back(n);
    cell_of[i] = c;
  }
  struct CostCell {
    std::atomic<double> wall{0.0};
    std::atomic<std::uint64_t> done{0};
  };
  std::vector<CostCell> cells(cell_n.size());
  std::atomic<double> wall_sum{0.0};
  std::atomic<double> prior_done_sum{0.0};

  // Contiguous chunks holding ~equal prior mass (not equal counts): a
  // worker whose slice is all n = 512 gets fewer trials up front.
  struct Chunk {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  std::vector<Chunk> chunks(workers);
  {
    std::size_t begin = 0;
    double acc = 0.0;
    for (std::size_t w = 0; w < workers; ++w) {
      const double target =
          prior_total * static_cast<double>(w + 1) / static_cast<double>(workers);
      std::size_t end = begin;
      // Leave enough indices for the remaining chunks to be nonempty.
      const std::size_t reserve_tail = workers - 1 - w;
      while (end < count - reserve_tail && (acc < target || end <= begin)) {
        acc += prior[end];
        ++end;
      }
      if (w + 1 == workers) end = count;
      chunks[w].next.store(begin, std::memory_order_relaxed);
      chunks[w].end = end;
      begin = end;
    }
  }

  // est(i): measured mean wall for the trial's n-cell when available, else
  // the prior rescaled into wall seconds by the global measured ratio.
  const auto estimate = [&](std::size_t i) {
    const CostCell& cell = cells[cell_of[i]];
    const std::uint64_t done = cell.done.load(std::memory_order_relaxed);
    if (done > 0) {
      return cell.wall.load(std::memory_order_relaxed) /
             static_cast<double>(done);
    }
    const double scaled = prior_done_sum.load(std::memory_order_relaxed);
    const double scale =
        scaled > 0.0 ? wall_sum.load(std::memory_order_relaxed) / scaled : 1.0;
    return prior[i] * scale;
  };
  const auto remaining_estimate = [&](const Chunk& chunk) {
    double sum = 0.0;
    for (std::size_t i = chunk.next.load(std::memory_order_relaxed);
         i < chunk.end; ++i) {
      sum += estimate(i);
    }
    return sum;
  };

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex stream_mutex;
  const auto run_one = [&](std::size_t i) {
    try {
      results[i] = run_experiment(specs[i]);
      CostCell& cell = cells[cell_of[i]];
      cell.wall.fetch_add(results[i].wall_seconds, std::memory_order_relaxed);
      cell.done.fetch_add(1, std::memory_order_relaxed);
      wall_sum.fetch_add(results[i].wall_seconds, std::memory_order_relaxed);
      prior_done_sum.fetch_add(prior[i], std::memory_order_relaxed);
      if (on_result) {
        const std::lock_guard<std::mutex> lock(stream_mutex);
        on_result(i, results[i]);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  const auto worker = [&](std::size_t w) {
    t_in_runner_worker = true;  // pool threads die with the call: no reset
    for (;;) {
      const std::size_t i =
          chunks[w].next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks[w].end) break;
      run_one(i);
    }
    // Steal from the chunk with the most estimated work left, one trial at
    // a time (estimates move as telemetry lands, so re-pick per steal).
    for (;;) {
      std::size_t victim = workers;
      double best = 0.0;
      for (std::size_t v = 0; v < workers; ++v) {
        if (v == w) continue;
        if (chunks[v].next.load(std::memory_order_relaxed) >= chunks[v].end) {
          continue;
        }
        const double rem = remaining_estimate(chunks[v]);
        if (victim == workers || rem > best) {
          victim = v;
          best = rem;
        }
      }
      if (victim == workers) return;
      const std::size_t i =
          chunks[victim].next.fetch_add(1, std::memory_order_relaxed);
      if (i < chunks[victim].end) run_one(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<RunSpec> seed_sweep(const RunSpec& base, std::uint64_t first_seed,
                                std::int32_t count) {
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    specs.push_back(base);
    specs.back().seed = first_seed + static_cast<std::uint64_t>(i);
  }
  return specs;
}

std::vector<RunResult> run_experiments(const std::vector<RunSpec>& specs,
                                       int threads) {
  return ParallelRunner(threads).run(specs);
}

bool results_identical(const RunResult& a, const RunResult& b) {
  return a.honest == b.honest && a.gamma_bound == b.gamma_bound &&
         a.gamma_measured == b.gamma_measured && a.adj_bound == b.adj_bound &&
         a.max_abs_adj == b.max_abs_adj && a.begin_spread == b.begin_spread &&
         a.skew_at_round == b.skew_at_round &&
         a.validity.holds == b.validity.holds &&
         a.validity.max_upper_violation == b.validity.max_upper_violation &&
         a.validity.max_lower_violation == b.validity.max_lower_violation &&
         a.validity.measured_hi_slope == b.validity.measured_hi_slope &&
         a.validity.measured_lo_slope == b.validity.measured_lo_slope &&
         a.final_skew == b.final_skew && a.diverged == b.diverged &&
         a.messages == b.messages && a.nic_dropped == b.nic_dropped &&
         a.starved_updates == b.starved_updates &&
         nic_summaries_identical(a.nic, b.nic) &&
         a.tmin0 == b.tmin0 && a.tmax0 == b.tmax0 && a.t_end == b.t_end &&
         a.completed_rounds == b.completed_rounds &&
         a.stabilized_round == b.stabilized_round &&
         a.stabilization_time == b.stabilization_time &&
         a.dynamics_applied == b.dynamics_applied &&
         gradient_summaries_identical(a.gradient, b.gradient);
  // wall_seconds, the ObserveStats telemetry, the fast-path telemetry
  // (fastpath_engaged / fastpath_exchanges / fastpath_rearms), and the PDES
  // telemetry (pdes_epochs / pdes_stalls) are deliberately excluded: they
  // describe how the run was computed and measured (timing, history
  // footprint, engine selection, shard-protocol windows), not what it
  // measured — retained and bounded observe runs, and event-engine,
  // fast-path, and sharded-PDES runs, of identical physics intentionally
  // differ there.
}

}  // namespace wlsync::analysis
