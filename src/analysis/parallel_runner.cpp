#include "analysis/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace wlsync::analysis {

namespace {
thread_local bool t_in_runner_worker = false;
}

bool ParallelRunner::in_worker() noexcept { return t_in_runner_worker; }

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void ParallelRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Contiguous chunk per worker, drained front-to-back through an atomic
  // cursor; exhausted workers steal from the other chunks in ring order.
  // The cursor may overshoot `end` by one per visiting worker — bounded,
  // and claims beyond the chunk simply fall through to the next victim.
  struct Chunk {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  std::vector<Chunk> chunks(workers);
  const std::size_t base = count / workers;
  const std::size_t extra = count % workers;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    chunks[w].next.store(begin, std::memory_order_relaxed);
    begin += base + (w < extra ? 1 : 0);
    chunks[w].end = begin;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_one = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  auto drain = [&](Chunk& chunk) {
    for (;;) {
      const std::size_t i = chunk.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunk.end) return;
      run_one(i);
    }
  };
  auto worker = [&](std::size_t w) {
    t_in_runner_worker = true;  // pool threads die with the call: no reset
    drain(chunks[w]);
    for (std::size_t lap = 1; lap < workers; ++lap) {
      drain(chunks[(w + lap) % workers]);  // steal from the others
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> ParallelRunner::run(
    const std::vector<RunSpec>& specs) const {
  std::vector<RunResult> results(specs.size());
  // Each task writes only its own slot, so the merge is by construction
  // deterministic: position i is trial i regardless of completion order.
  run_indexed(specs.size(),
              [&](std::size_t i) { results[i] = run_experiment(specs[i]); });
  return results;
}

std::vector<RunResult> ParallelRunner::run_streaming(
    const std::vector<RunSpec>& specs,
    const std::function<void(std::size_t, const RunResult&)>& on_result)
    const {
  if (!on_result) return run(specs);
  std::vector<RunResult> results(specs.size());
  std::mutex stream_mutex;
  run_indexed(specs.size(), [&](std::size_t i) {
    results[i] = run_experiment(specs[i]);
    const std::lock_guard<std::mutex> lock(stream_mutex);
    on_result(i, results[i]);
  });
  return results;
}

std::vector<RunSpec> seed_sweep(const RunSpec& base, std::uint64_t first_seed,
                                std::int32_t count) {
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    specs.push_back(base);
    specs.back().seed = first_seed + static_cast<std::uint64_t>(i);
  }
  return specs;
}

std::vector<RunResult> run_experiments(const std::vector<RunSpec>& specs,
                                       int threads) {
  return ParallelRunner(threads).run(specs);
}

bool results_identical(const RunResult& a, const RunResult& b) {
  return a.honest == b.honest && a.gamma_bound == b.gamma_bound &&
         a.gamma_measured == b.gamma_measured && a.adj_bound == b.adj_bound &&
         a.max_abs_adj == b.max_abs_adj && a.begin_spread == b.begin_spread &&
         a.skew_at_round == b.skew_at_round &&
         a.validity.holds == b.validity.holds &&
         a.validity.max_upper_violation == b.validity.max_upper_violation &&
         a.validity.max_lower_violation == b.validity.max_lower_violation &&
         a.validity.measured_hi_slope == b.validity.measured_hi_slope &&
         a.validity.measured_lo_slope == b.validity.measured_lo_slope &&
         a.final_skew == b.final_skew && a.diverged == b.diverged &&
         a.messages == b.messages && a.nic_dropped == b.nic_dropped &&
         nic_summaries_identical(a.nic, b.nic) &&
         a.tmin0 == b.tmin0 && a.tmax0 == b.tmax0 && a.t_end == b.t_end &&
         a.completed_rounds == b.completed_rounds &&
         gradient_summaries_identical(a.gradient, b.gradient);
  // wall_seconds is telemetry, deliberately excluded.
}

}  // namespace wlsync::analysis
