#pragma once
// Post-hoc skew and validity measurement.
//
// The simulator records clocks and CORR histories, so local times
// L_p(t) = Ph_p(t) + CORR_p(t) can be evaluated at any real time after the
// run.  These helpers compute the quantities in the problem statement
// (Section 3.2): the agreement spread max |L_p(t) - L_q(t)| and the
// validity envelope alpha1 (t - tmax0) - alpha3 <= L_p(t) - T0 <=
// alpha2 (t - tmin0) + alpha3.
//
// skew_series and check_validity run on the sharded single-pass pipeline of
// analysis/measure.h (each clock walked once per window); skew_at is the
// per-sample reference scan the pipeline is regression-pinned against.

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "sim/simulator.h"

namespace wlsync::analysis {

/// max over p, q in ids of |L_p(t) - L_q(t)|.
[[nodiscard]] double skew_at(const sim::Simulator& sim,
                             const std::vector<std::int32_t>& ids, double t);

struct SkewSeries {
  std::vector<double> times;
  std::vector<double> skews;
  double max_skew = 0.0;
};

/// Samples the skew on [t0, t1] every dt (plus the endpoints).
[[nodiscard]] SkewSeries skew_series(const sim::Simulator& sim,
                                     const std::vector<std::int32_t>& ids,
                                     double t0, double t1, double dt);

/// First real time >= t_lo at which L_id reaches `label` (bisection over a
/// coarse forward scan).  Returns NaN if not reached by t_hi.
[[nodiscard]] double crossing_time(const sim::Simulator& sim, std::int32_t id,
                                   double label, double t_lo, double t_hi);

/// Real-time spread of `ids` reaching `label`: the B^i series quantity.
[[nodiscard]] double label_spread(const sim::Simulator& sim,
                                  const std::vector<std::int32_t>& ids,
                                  double label, double t_lo, double t_hi);

struct ValidityReport {
  bool holds = true;
  /// Worst-case signed envelope excursions over all samples and processes;
  /// negative values are margin, positive values are violations.
  double max_upper_violation = 0.0;  ///< max of L - T0 - (a2 (t-tmin0) + a3)
  double max_lower_violation = 0.0;  ///< max of (a1 (t-tmax0) - a3) - (L - T0)
  /// Measured extremes of (L_p(t) - T0)/(t - tmin0) resp. (t - tmax0).
  double measured_hi_slope = 0.0;
  double measured_lo_slope = 0.0;
};

[[nodiscard]] ValidityReport check_validity(
    const sim::Simulator& sim, const std::vector<std::int32_t>& ids,
    const core::Params& params, double tmin0, double tmax0, double t_start,
    double t_end, double dt);

}  // namespace wlsync::analysis
