#pragma once
// Gradient-skew analysis: skew as a function of graph distance.
//
// The paper bounds the *global* skew max |L_i - L_j| on a full mesh, where
// every pair is one hop apart.  On the sparse exchange graphs of the net
// layer the interesting quantity is the *gradient* (Bund/Lenzen/Rosenbaum,
// "Fault Tolerant Gradient Clock Synchronization"): how the worst skew
// between two processes grows with their hop distance d(i, j).  This module
// buckets every honest pair by distance and reports, per distance, the
// skew's max / mean / p99 over a sample window, plus a least-squares slope
// summary — the measurable form of a gradient bound.
//
// gradient_series rides the sharded measurement pipeline of
// analysis/measure.h: local times come from one cursor walk per clock, and
// the O(m^2) pair-bucketing shards over node pairs across threads.  Every
// reduction is a max (order-insensitive over doubles), so any thread count
// produces bit-identical buckets — gradient_at is the naive per-sample
// reference scan the sharded path is regression-pinned against
// (tests/gradient_test.cpp, 1e-12).

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/simulator.h"

namespace wlsync::analysis {

/// Skew-vs-distance curves over a sample window.  Distances are the hop
/// distances that actually occur between the measured ids (ascending;
/// distance 0 — a pair with itself — is excluded).
struct GradientSeries {
  std::vector<double> times;            ///< ascending sample instants
  std::vector<std::int32_t> distances;  ///< bucket axis (ascending, >= 1)
  /// Row-major distances.size() x times.size(): max |L_i - L_j| over the
  /// pairs at that distance, per sample instant.
  std::vector<double> skew_by_sample;
  /// Number of measured-id pairs in each distance bucket.
  std::vector<std::int64_t> pair_count;

  // Per-distance summaries over the sample window:
  std::vector<double> max_skew;   ///< max over samples
  std::vector<double> mean_skew;  ///< mean of the per-sample bucket max
  std::vector<double> p99_skew;   ///< 0.99-quantile of the per-sample max
  /// Monotone frontier: max_skew folded over all distances <= d.  The raw
  /// per-distance max is *typically* non-decreasing in d (more room to
  /// drift apart); the frontier is non-decreasing by construction and is
  /// the clean "skew within distance d" curve.
  std::vector<double> frontier;

  std::int32_t diameter = 0;  ///< of the whole topology (all nodes)

  [[nodiscard]] double at(std::size_t distance_index, std::size_t sample) const {
    return skew_by_sample[distance_index * times.size() + sample];
  }
};

/// The distance-bucket axis shared by the post-hoc scan (gradient_series)
/// and the streaming observer (analysis/observe.h): the hop distances that
/// occur between measured pairs, the pair count per bucket, and the
/// distance -> bucket lookup table.
struct GradientAxis {
  std::vector<std::int32_t> distances;   ///< ascending, >= 1
  std::vector<std::int64_t> pair_count;  ///< measured-id pairs per bucket
  std::vector<std::int32_t> bucket_of;   ///< distance -> bucket index, -1 = none
  std::int32_t diameter = 0;             ///< of the whole topology
};

/// Builds the bucket axis with one O(m^2) integer pass; warms the
/// topology's BFS distance cache.  Throws std::invalid_argument on a
/// disconnected topology (cross-component skew has no distance bucket).
[[nodiscard]] GradientAxis build_gradient_axis(
    const net::Topology& topo, const std::vector<std::int32_t>& ids);

/// Fills the per-distance window summaries (max / mean / p99 / frontier)
/// from an already-populated skew_by_sample matrix.  Shared by the
/// post-hoc and streaming paths so both produce the identical doubles.
/// `cols` is the number of valid samples per bucket row and `stride` the
/// allocated row length (>= cols); 0 means times.size() — the tight
/// post-hoc layout.  The streaming observer passes its capacity-strided
/// accumulation matrix directly, with no repacking.
void finish_gradient_window_summaries(GradientSeries& series,
                                      std::size_t cols = 0,
                                      std::size_t stride = 0);

/// Buckets every pair of `ids` by hop distance in `topo` and evaluates the
/// per-bucket max skew at every instant of the grid {t0, t0+dt, ..., t1}
/// (the same endpoint-closed grid as skew_series).  threads = 0 auto-shards
/// the pair scan for large workloads and stays serial inside an outer
/// ParallelRunner sweep; any thread count yields bit-identical values.
/// Warms the topology's distance cache (so the Topology may be shared
/// read-only afterwards).  Throws std::invalid_argument on a disconnected
/// topology (cross-component skew has no distance to bucket by).
[[nodiscard]] GradientSeries gradient_series(const sim::Simulator& sim,
                                             const std::vector<std::int32_t>& ids,
                                             const net::Topology& topo,
                                             double t0, double t1, double dt,
                                             int threads = 0);

/// Naive reference scan: max |L_i - L_j| per distance bucket at one instant
/// via O(m^2) Simulator::local_time calls.  `distances` must be the bucket
/// axis of the series under test; returns one value per bucket.
[[nodiscard]] std::vector<double> gradient_at(
    const sim::Simulator& sim, const std::vector<std::int32_t>& ids,
    const net::Topology& topo, const std::vector<std::int32_t>& distances,
    double t);

/// Least-squares slope of per-distance max skew against distance — the
/// one-number gradient summary (0 for a flat curve, e.g. identical clocks).
/// Buckets with no pairs are skipped; fewer than two buckets give 0.
[[nodiscard]] double gradient_slope(const GradientSeries& series);

/// The sweep-facing condensation of a GradientSeries: per-distance curves
/// without the per-sample matrix, sized for a RunResult that is copied
/// across ParallelRunner result vectors.
struct GradientSummary {
  std::vector<std::int32_t> distances;
  std::vector<double> max_skew;
  std::vector<double> mean_skew;
  std::vector<double> p99_skew;
  std::vector<double> frontier;
  std::vector<std::int64_t> pair_count;
  double slope = 0.0;
  std::int32_t diameter = 0;

  [[nodiscard]] bool measured() const noexcept { return !distances.empty(); }
  /// Frontier value at the largest distance (the global skew), 0 if empty.
  [[nodiscard]] double far_skew() const noexcept {
    return frontier.empty() ? 0.0 : frontier.back();
  }
};

[[nodiscard]] GradientSummary summarize_gradient(const GradientSeries& series);

[[nodiscard]] bool gradient_summaries_identical(const GradientSummary& a,
                                                const GradientSummary& b);

}  // namespace wlsync::analysis
