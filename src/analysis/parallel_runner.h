#pragma once
// Parallel multi-trial experiment runner.
//
// Large n/f/seed sweeps dominate the wall time of every study in this
// repository, and the trials are embarrassingly parallel: each Experiment
// owns its Simulator, its RNG streams (derived from RunSpec::seed alone),
// and its trace sinks, and touches no shared mutable state.  ParallelRunner
// shards a vector of independent RunSpecs across a thread pool and merges
// results deterministically: result[i] always corresponds to specs[i], and
// is bit-for-bit the RunResult a serial run_experiment(specs[i]) produces,
// whatever the thread count or interleaving (pinned by
// tests/parallel_runner_test.cpp).
//
// Scheduling is work-stealing over contiguous chunks: each worker owns an
// equal slice of the index space (locality for cache- and NUMA-friendly
// sweeps) and drains it through a per-chunk atomic cursor; workers that
// finish early steal from the slices with work remaining, so heterogeneous
// trial costs — a grid mixing n = 4 with n = 512 — keep every core busy to
// the end instead of waiting on whichever worker drew the expensive tail.
// run_streaming additionally surfaces each trial's result the moment it
// completes, for CSV writers and progress meters over long grids.
// run_adaptive goes one step further on skewed grids: chunks equalize
// *estimated* cost instead of trial count, and steal decisions are guided
// by the per-trial wall_seconds telemetry of already-completed trials.

#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/experiment.h"

namespace wlsync::analysis {

class ParallelRunner {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit ParallelRunner(int threads = 0);

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Invokes fn(0) ... fn(count - 1), each exactly once, sharded across the
  /// pool (work-stealing chunks — see the header comment).  fn must be safe
  /// to call concurrently for distinct indices.  The first exception thrown
  /// by any task is rethrown to the caller after all workers have drained.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;

  /// True on a thread currently executing run_indexed work.  Auto-parallel
  /// helpers (analysis/measure.cpp) consult this to stay serial inside an
  /// outer sweep instead of oversubscribing the machine with nested pools.
  [[nodiscard]] static bool in_worker() noexcept;

  /// Runs one Experiment per spec; result[i] corresponds to specs[i].
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<RunSpec>& specs) const;

  /// Like run(), but additionally invokes on_result(i, result) as each
  /// trial finishes — completion order, not spec order; calls are
  /// serialized, so the callback may write to shared sinks (CSV, progress
  /// bars) without its own locking.  The returned vector is still in spec
  /// order and bit-identical to run()'s.
  std::vector<RunResult> run_streaming(
      const std::vector<RunSpec>& specs,
      const std::function<void(std::size_t, const RunResult&)>& on_result)
      const;

  /// Self-balancing variant of run_streaming for skewed grids (n mixing 4
  /// and 512): the initial contiguous chunks equalize *estimated* cost
  /// (estimate_cost) rather than trial count, and a worker that drains its
  /// chunk steals from the chunk with the most estimated work remaining —
  /// with estimates refined online from the per-trial wall_seconds
  /// telemetry of completed trials (the measured mean wall per distinct n
  /// replaces the static prior as cells finish).  Purely a scheduling
  /// change: result[i] still corresponds to specs[i] and is bit-identical
  /// to run()'s, whatever the thread count (pinned by
  /// tests/parallel_runner_test.cpp).  on_result may be empty.
  std::vector<RunResult> run_adaptive(
      const std::vector<RunSpec>& specs,
      const std::function<void(std::size_t, const RunResult&)>& on_result = {})
      const;

  /// Static relative cost prior for one trial (message volume over the
  /// run, plus the pair-scan term when the gradient is measured).  Units
  /// are arbitrary; run_adaptive only uses ratios.
  [[nodiscard]] static double estimate_cost(const RunSpec& spec);

 private:
  int threads_;
};

/// The common sweep axis: `count` copies of `base` with seeds
/// first_seed, first_seed + 1, ...  Per-trial RNG streams are derived from
/// the seed inside Experiment, so distinct seeds give independent trials.
[[nodiscard]] std::vector<RunSpec> seed_sweep(const RunSpec& base,
                                              std::uint64_t first_seed,
                                              std::int32_t count);

/// One-shot convenience: sweep `specs` across `threads` workers.
[[nodiscard]] std::vector<RunResult> run_experiments(
    const std::vector<RunSpec>& specs, int threads = 0);

/// Exact (bitwise, no tolerance) equality of every measured field — the
/// standard the parallel runner and the scheduler policies are held to.
[[nodiscard]] bool results_identical(const RunResult& a, const RunResult& b);

}  // namespace wlsync::analysis
